#include <gtest/gtest.h>

#include "library/resource.hpp"
#include "util/error.hpp"

namespace rchls::library {
namespace {

TEST(Library, ClassOfOps) {
  EXPECT_EQ(class_of(dfg::OpType::kAdd), ResourceClass::kAdder);
  EXPECT_EQ(class_of(dfg::OpType::kSub), ResourceClass::kAdder);
  EXPECT_EQ(class_of(dfg::OpType::kLt), ResourceClass::kAdder);
  EXPECT_EQ(class_of(dfg::OpType::kMul), ResourceClass::kMultiplier);
}

TEST(Library, PaperLibraryMatchesTable1) {
  ResourceLibrary lib = paper_library();
  ASSERT_EQ(lib.size(), 5u);

  const auto& a1 = lib.version(lib.find("adder_1"));
  EXPECT_EQ(a1.cls, ResourceClass::kAdder);
  EXPECT_DOUBLE_EQ(a1.area, 1.0);
  EXPECT_EQ(a1.delay, 2);
  EXPECT_DOUBLE_EQ(a1.reliability, 0.999);

  const auto& a2 = lib.version(lib.find("adder_2"));
  EXPECT_DOUBLE_EQ(a2.area, 2.0);
  EXPECT_EQ(a2.delay, 1);
  EXPECT_DOUBLE_EQ(a2.reliability, 0.969);

  const auto& a3 = lib.version(lib.find("adder_3"));
  EXPECT_DOUBLE_EQ(a3.area, 4.0);
  EXPECT_EQ(a3.delay, 1);
  EXPECT_DOUBLE_EQ(a3.reliability, 0.987);

  const auto& m1 = lib.version(lib.find("mult_1"));
  EXPECT_EQ(m1.cls, ResourceClass::kMultiplier);
  EXPECT_DOUBLE_EQ(m1.area, 2.0);
  EXPECT_EQ(m1.delay, 2);
  EXPECT_DOUBLE_EQ(m1.reliability, 0.999);

  const auto& m2 = lib.version(lib.find("mult_2"));
  EXPECT_DOUBLE_EQ(m2.area, 4.0);
  EXPECT_EQ(m2.delay, 1);
  EXPECT_DOUBLE_EQ(m2.reliability, 0.969);
}

TEST(Library, MostReliableAndFastest) {
  ResourceLibrary lib = paper_library();
  EXPECT_EQ(lib.most_reliable(ResourceClass::kAdder), lib.find("adder_1"));
  EXPECT_EQ(lib.most_reliable(ResourceClass::kMultiplier),
            lib.find("mult_1"));
  EXPECT_EQ(lib.fastest(ResourceClass::kAdder), lib.find("adder_3"));
  EXPECT_EQ(lib.fastest(ResourceClass::kMultiplier), lib.find("mult_2"));
}

TEST(Library, FasterVersionsSortedByReliability) {
  ResourceLibrary lib = paper_library();
  auto faster = lib.faster_versions(lib.find("adder_1"));
  ASSERT_EQ(faster.size(), 2u);
  EXPECT_EQ(faster[0], lib.find("adder_3"));  // 0.987 first
  EXPECT_EQ(faster[1], lib.find("adder_2"));
  EXPECT_TRUE(lib.faster_versions(lib.find("adder_2")).empty());
  EXPECT_TRUE(lib.faster_versions(lib.find("mult_2")).empty());
}

TEST(Library, SmallerVersionsRespectDelayRule) {
  ResourceLibrary lib = paper_library();
  // adder_3 (4, 1) -> adder_2 (2, 1) allowed; adder_1 excluded (slower).
  auto smaller = lib.smaller_versions(lib.find("adder_3"));
  ASSERT_EQ(smaller.size(), 1u);
  EXPECT_EQ(smaller[0], lib.find("adder_2"));
  // adder_2 (2, 1): adder_1 is smaller but slower -> none.
  EXPECT_TRUE(lib.smaller_versions(lib.find("adder_2")).empty());
  // mult_2 (4, 1): mult_1 is smaller but slower -> none.
  EXPECT_TRUE(lib.smaller_versions(lib.find("mult_2")).empty());
}

TEST(Library, VersionsOfThrowsOnMissingClass) {
  ResourceLibrary lib;
  lib.add({"only_adder", ResourceClass::kAdder, 1.0, 1, 0.9});
  EXPECT_TRUE(lib.has_class(ResourceClass::kAdder));
  EXPECT_FALSE(lib.has_class(ResourceClass::kMultiplier));
  EXPECT_THROW(lib.versions_of(ResourceClass::kMultiplier), Error);
}

TEST(Library, AddValidation) {
  ResourceLibrary lib;
  EXPECT_THROW(lib.add({"", ResourceClass::kAdder, 1, 1, 0.9}), Error);
  EXPECT_THROW(lib.add({"x", ResourceClass::kAdder, 0, 1, 0.9}), Error);
  EXPECT_THROW(lib.add({"x", ResourceClass::kAdder, 1, 0, 0.9}), Error);
  EXPECT_THROW(lib.add({"x", ResourceClass::kAdder, 1, 1, 0.0}), Error);
  EXPECT_THROW(lib.add({"x", ResourceClass::kAdder, 1, 1, 1.1}), Error);
  lib.add({"x", ResourceClass::kAdder, 1, 1, 0.9});
  EXPECT_THROW(lib.add({"x", ResourceClass::kAdder, 2, 1, 0.8}), Error);
  EXPECT_THROW(lib.find("y"), Error);
  EXPECT_THROW(lib.version(77), Error);
}

TEST(Library, UniformDelays) {
  ResourceLibrary lib = paper_library();
  dfg::Graph g("t");
  g.add_node("a", dfg::OpType::kAdd);
  g.add_node("m", dfg::OpType::kMul);
  g.add_node("s", dfg::OpType::kSub);
  auto d = uniform_delays(g, lib, lib.find("adder_1"), lib.find("mult_2"));
  EXPECT_EQ(d, (std::vector<int>{2, 1, 2}));
  EXPECT_THROW(
      uniform_delays(g, lib, lib.find("mult_1"), lib.find("mult_2")), Error);
}

}  // namespace
}  // namespace rchls::library

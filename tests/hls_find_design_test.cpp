#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/suite.hpp"
#include "dfg/timing.hpp"
#include "hls/find_design.hpp"
#include "util/error.hpp"

namespace rchls::hls {
namespace {

using library::ResourceLibrary;

constexpr double kUniformFig4 = 0.82783;   // 0.969^6  (paper Fig 5a)
constexpr double kUniformFir = 0.48467;    // 0.969^23 (paper Fig 7a)

TEST(FindDesign, UnconstrainedUsesMostReliableVersionsOnly) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  // Generous bounds: the initial all-most-reliable solution stands.
  Design d = find_design(g, lib, 100, 1000.0);
  validate_design(d, g, lib);
  EXPECT_NEAR(d.reliability, std::pow(0.999, 23), 1e-12);
}

TEST(FindDesign, RespectsBoundsOnAllBenchmarks) {
  ResourceLibrary lib = library::paper_library();
  int solved = 0;
  for (const auto& name : benchmarks::all_names()) {
    auto g = benchmarks::by_name(name);
    // A mid-tight setting: fastest-version min latency + 2, area 20.
    // (ar_lattice is infeasible below ~20 here: its two multiply stages
    // force four multiplier instances at this latency.)
    std::vector<library::VersionId> fastest(g.node_count());
    for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
      fastest[id] = lib.fastest(library::class_of(g.node(id).op));
    }
    int lmin = dfg::asap_latency(g, delays_for(g, lib, fastest));
    try {
      Design d = find_design(g, lib, lmin + 2, 20.0);
      validate_design(d, g, lib);
      EXPECT_LE(d.latency, lmin + 2) << name;
      EXPECT_LE(d.area, 20.0 + 1e-9) << name;
      ++solved;
    } catch (const NoSolutionError&) {
      // acceptable for genuinely infeasible bound combinations
    }
  }
  EXPECT_GE(solved, 4);
}

TEST(FindDesign, BeatsUniformFastestOnFig4WithSlack) {
  // At Ld = 6, Ad = 4 the mixed design dominates the uniform type-2 one
  // (paper Fig. 5; see EXPERIMENTS.md on the +1 latency-semantics shift).
  auto g = benchmarks::fig4_example();
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 6, 4.0);
  validate_design(d, g, lib);
  EXPECT_LE(d.area, 4.0 + 1e-9);
  EXPECT_GT(d.reliability, kUniformFig4);
}

TEST(FindDesign, BeatsUniformFastestOnFir) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 12, 8.0);
  validate_design(d, g, lib);
  EXPECT_LE(d.area, 8.0 + 1e-9);
  EXPECT_LE(d.latency, 12);
  EXPECT_GT(d.reliability, kUniformFir);
}

TEST(FindDesign, ThrowsWhenLatencyUnreachable) {
  auto g = benchmarks::fir16();  // fastest-version chain depth is 9
  ResourceLibrary lib = library::paper_library();
  EXPECT_THROW(find_design(g, lib, 5, 100.0), NoSolutionError);
}

TEST(FindDesign, ThrowsWhenAreaUnreachable) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  // Less area than one adder + one multiplier (1 + 2 = 3) can ever provide.
  EXPECT_THROW(find_design(g, lib, 60, 2.0), NoSolutionError);
}

TEST(FindDesign, RejectsBadArguments) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  EXPECT_THROW(find_design(g, lib, 0, 8.0), Error);
  EXPECT_THROW(find_design(g, lib, 8, 0.0), Error);
  dfg::Graph empty("empty");
  EXPECT_THROW(find_design(empty, lib, 8, 8.0), Error);
}

TEST(FindDesign, LooserAreaNeverReducesReliabilityMuch) {
  // The heuristic is not provably monotone, but loosening the area bound
  // should never cost more than a whisker on these benchmarks.
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  std::vector<library::VersionId> fastest(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    fastest[id] = lib.fastest(library::class_of(g.node(id).op));
  }
  int lmin = dfg::asap_latency(g, delays_for(g, lib, fastest));
  double prev = 0.0;
  for (double ad : {8.0, 10.0, 12.0, 16.0, 24.0}) {
    try {
      Design d = find_design(g, lib, lmin + 2, ad);
      EXPECT_GE(d.reliability, prev - 0.02) << "area " << ad;
      prev = std::max(prev, d.reliability);
    } catch (const NoSolutionError&) {
      EXPECT_EQ(prev, 0.0) << "solution disappeared as area loosened";
    }
  }
}

TEST(FindDesign, ForceDirectedSchedulerAlsoWorks) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  FindDesignOptions opts;
  opts.scheduler = SchedulerKind::kForceDirected;
  Design d = find_design(g, lib, 12, 10.0, opts);
  validate_design(d, g, lib);
  EXPECT_LE(d.area, 10.0 + 1e-9);
}

TEST(FindDesign, PolishNeverHurts) {
  auto g = benchmarks::ewf();
  ResourceLibrary lib = library::paper_library();
  std::vector<library::VersionId> fastest(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    fastest[id] = lib.fastest(library::class_of(g.node(id).op));
  }
  int lmin = dfg::asap_latency(g, delays_for(g, lib, fastest));

  FindDesignOptions plain;
  FindDesignOptions polished;
  polished.enable_polish = true;
  Design a = find_design(g, lib, lmin + 3, 10.0, plain);
  Design b = find_design(g, lib, lmin + 3, 10.0, polished);
  validate_design(b, g, lib);
  EXPECT_GE(b.reliability, a.reliability - 1e-12);
  EXPECT_LE(b.area, 10.0 + 1e-9);
}

TEST(FindDesign, SingleNodeGraph) {
  dfg::Graph g("one");
  g.add_node("m", dfg::OpType::kMul);
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 2, 2.0);
  EXPECT_EQ(d.version_of[0], lib.find("mult_1"));
  EXPECT_NEAR(d.reliability, 0.999, 1e-12);
}

TEST(FindDesign, TightLatencyForcesFastVersions) {
  dfg::Graph g("one");
  g.add_node("m", dfg::OpType::kMul);
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 1, 4.0);
  EXPECT_EQ(d.version_of[0], lib.find("mult_2"));
  EXPECT_NEAR(d.reliability, 0.969, 1e-12);
}

}  // namespace
}  // namespace rchls::hls

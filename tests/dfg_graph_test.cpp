#include <gtest/gtest.h>

#include <algorithm>

#include "dfg/graph.hpp"
#include "util/error.hpp"

namespace rchls::dfg {
namespace {

TEST(OpType, StringRoundTrip) {
  for (OpType op : {OpType::kAdd, OpType::kSub, OpType::kMul, OpType::kLt}) {
    EXPECT_EQ(op_from_string(to_string(op)), op);
  }
  EXPECT_THROW(op_from_string("div"), ParseError);
}

TEST(Graph, AddNodesAndEdges) {
  Graph g("t");
  NodeId a = g.add_node("a", OpType::kAdd);
  NodeId b = g.add_node("b", OpType::kMul);
  g.add_edge(a, b);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.successors(a).size(), 1u);
  EXPECT_EQ(g.predecessors(b).size(), 1u);
  EXPECT_EQ(g.node(b).op, OpType::kMul);
  EXPECT_EQ(g.find("a"), a);
  EXPECT_TRUE(g.contains("b"));
  EXPECT_FALSE(g.contains("c"));
}

TEST(Graph, RejectsDuplicatesAndSelfLoops) {
  Graph g("t");
  NodeId a = g.add_node("a", OpType::kAdd);
  NodeId b = g.add_node("b", OpType::kAdd);
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), Error);
  EXPECT_THROW(g.add_edge(a, a), Error);
  EXPECT_THROW(g.add_node("a", OpType::kMul), Error);
  EXPECT_THROW(g.add_node("", OpType::kMul), Error);
}

TEST(Graph, RejectsBadIds) {
  Graph g("t");
  g.add_node("a", OpType::kAdd);
  EXPECT_THROW(g.add_edge(0, 5), Error);
  EXPECT_THROW(g.node(9), Error);
  EXPECT_THROW(g.find("nope"), Error);
}

TEST(Graph, SourcesAndSinks) {
  Graph g("t");
  NodeId a = g.add_node("a", OpType::kAdd);
  NodeId b = g.add_node("b", OpType::kAdd);
  NodeId c = g.add_node("c", OpType::kAdd);
  g.add_edge(a, c);
  g.add_edge(b, c);
  EXPECT_EQ(g.sources(), (std::vector<NodeId>{a, b}));
  EXPECT_EQ(g.sinks(), (std::vector<NodeId>{c}));
}

TEST(Graph, CountOps) {
  Graph g("t");
  g.add_node("a", OpType::kAdd);
  g.add_node("b", OpType::kMul);
  g.add_node("c", OpType::kMul);
  g.add_node("d", OpType::kLt);
  EXPECT_EQ(g.count_ops(OpType::kMul), 2u);
  EXPECT_EQ(g.count_ops(OpType::kAdd), 1u);
  EXPECT_EQ(g.count_ops(OpType::kSub), 0u);
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  Graph g("t");
  NodeId a = g.add_node("a", OpType::kAdd);
  NodeId b = g.add_node("b", OpType::kAdd);
  NodeId c = g.add_node("c", OpType::kAdd);
  NodeId d = g.add_node("d", OpType::kAdd);
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(a, d);
  g.add_edge(d, c);
  auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&order](NodeId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(b), pos(c));
  EXPECT_LT(pos(d), pos(c));
}

TEST(Graph, DetectsCycles) {
  Graph g("t");
  NodeId a = g.add_node("a", OpType::kAdd);
  NodeId b = g.add_node("b", OpType::kAdd);
  NodeId c = g.add_node("c", OpType::kAdd);
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_THROW(g.topological_order(), ValidationError);
  EXPECT_THROW(g.validate(), ValidationError);
}

TEST(Graph, EmptyGraphIsValid) {
  Graph g("empty");
  g.validate();
  EXPECT_TRUE(g.topological_order().empty());
}

}  // namespace
}  // namespace rchls::dfg

#include <gtest/gtest.h>

#include "benchmarks/suite.hpp"
#include "hls/explore.hpp"
#include "hls/find_design.hpp"
#include "util/error.hpp"

namespace rchls::hls {
namespace {

using library::ResourceLibrary;

TEST(Explore, LatencySweepShapesLikeFig8a) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  auto points = latency_sweep(g, lib, {10, 11, 12, 14, 16, 18}, 8.0);
  ASSERT_EQ(points.size(), 6u);
  for (const auto& p : points) {
    ASSERT_TRUE(p.reliability.has_value()) << "Ld=" << p.latency_bound;
    EXPECT_LE(*p.area, 8.0 + 1e-9);
    EXPECT_LE(*p.latency, p.latency_bound);
  }
  // Paper Fig. 8(a): reliability improves as the latency bound loosens.
  EXPECT_GT(*points.back().reliability, *points.front().reliability);
}

TEST(Explore, AreaSweepShapesLikeFig8b) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  auto points = area_sweep(g, lib, 11, {8.0, 10.0, 12.0, 14.0, 16.0});
  ASSERT_EQ(points.size(), 5u);
  for (const auto& p : points) {
    ASSERT_TRUE(p.reliability.has_value()) << "Ad=" << p.area_bound;
    EXPECT_LE(*p.area, p.area_bound + 1e-9);
  }
  EXPECT_GE(*points.back().reliability, *points.front().reliability);
}

TEST(Explore, InfeasiblePointsAreEmptyNotThrown) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  auto points = latency_sweep(g, lib, {2, 20}, 10.0);
  EXPECT_FALSE(points[0].reliability.has_value());
  EXPECT_TRUE(points[1].reliability.has_value());
}

TEST(Explore, GridComparesThreeEngines) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  auto rows = comparison_grid(g, lib, {6, 7}, {8.0, 12.0});
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    if (row.baseline && row.ours) {
      ASSERT_TRUE(row.improvement_ours.has_value());
      EXPECT_NEAR(*row.improvement_ours,
                  100.0 * (*row.ours / *row.baseline - 1.0), 1e-9);
    }
    if (row.ours && row.combined) {
      EXPECT_GE(*row.combined, *row.ours - 1e-12);
    }
  }
}

TEST(Explore, SweepCsvHasHeaderAndRows) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  auto points = latency_sweep(g, lib, {2, 8}, 12.0);  // first infeasible
  std::string csv = to_csv(points);
  EXPECT_NE(csv.find("latency_bound,area_bound,reliability"),
            std::string::npos);
  // Unsolved point renders empty reliability cell: "2,12.00,,,".
  EXPECT_NE(csv.find("2,12.00,,,"), std::string::npos);
  int lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 3);  // header + 2 points
}

TEST(Explore, GridCsvIncludesImprovements) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  auto rows = comparison_grid(g, lib, {7}, {12.0});
  std::string csv = to_csv(rows);
  EXPECT_NE(csv.find("improvement_ours_pct"), std::string::npos);
  EXPECT_NE(csv.find("7,12.00,0."), std::string::npos);
}

TEST(Explore, TighterLatencyExplorationNeverHurts) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  for (int ld : {12, 14, 16}) {
    FindDesignOptions plain;
    FindDesignOptions explored;
    explored.explore_tighter_latency = 3;
    Design a = find_design(g, lib, ld, 10.0, plain);
    Design b = find_design(g, lib, ld, 10.0, explored);
    EXPECT_GE(b.reliability, a.reliability - 1e-12) << ld;
    EXPECT_LE(b.latency, ld);
    EXPECT_LE(b.area, 10.0 + 1e-9);
  }
}

TEST(Explore, GridAveragesUseOnlyCommonlySolvedCells) {
  std::vector<ComparisonRow> rows(3);
  rows[0].baseline = 0.5;
  rows[0].ours = 0.6;
  rows[0].combined = 0.7;
  rows[1].ours = 0.99;  // baseline and combined unsolved: excluded entirely
  rows[2].baseline = 0.7;
  rows[2].ours = 0.8;
  rows[2].combined = 0.9;
  auto avg = grid_averages(rows);
  // Averages come from rows 0 and 2 only, for every engine -- averaging
  // each engine over its own solved subset would be apples-to-oranges.
  EXPECT_DOUBLE_EQ(avg.baseline, 0.6);
  EXPECT_DOUBLE_EQ(avg.ours, 0.7);
  EXPECT_DOUBLE_EQ(avg.combined, 0.8);
  EXPECT_EQ(avg.solved_cells, 2);
  EXPECT_EQ(avg.total_cells, 3);
}

TEST(Explore, GridAveragesOnAllUnsolvedGridAreZero) {
  std::vector<ComparisonRow> rows(2);
  rows[0].ours = 0.8;  // no row has all three engines solved
  auto avg = grid_averages(rows);
  EXPECT_DOUBLE_EQ(avg.baseline, 0.0);
  EXPECT_DOUBLE_EQ(avg.ours, 0.0);
  EXPECT_DOUBLE_EQ(avg.combined, 0.0);
  EXPECT_EQ(avg.solved_cells, 0);
  EXPECT_EQ(avg.total_cells, 2);
}

}  // namespace
}  // namespace rchls::hls

// Remote subsystem tests (src/remote/): the fleet acceptance criteria.
// A sweep/grid/scenario dispatched over 1/2/4 `rchls serve` daemons at
// jobs 1/8 renders byte-identical to a local Session; a daemon killed
// mid-sweep fails over (byte-identical output, quarantine visible in
// the fleet stats); a fleet with every endpoint dead degrades to local
// execution instead of failing; endpoint spec parsing follows the
// documented unix-path vs host:port grammar; and Session::run_batch
// keeps its cache/index contracts on both the serial and the batched
// executor path.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/request.hpp"
#include "api/session.hpp"
#include "api/wire.hpp"
#include "benchmarks/suite.hpp"
#include "library/resource.hpp"
#include "parallel/config.hpp"
#include "remote/executor.hpp"
#include "remote/fleet.hpp"
#include "scenario/parse.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "serve/server.hpp"
#include "temp_dir.hpp"
#include "util/error.hpp"

namespace rchls::remote {
namespace {

class JobsGuard {
 public:
  JobsGuard() : saved_(parallel::global_config().jobs) {}
  ~JobsGuard() { parallel::global_config().jobs = saved_; }

 private:
  std::size_t saved_;
};

// One in-process daemon with its own log stream (Server locks its own
// log writes, but two Servers sharing one stream would race).
struct Daemon {
  std::ostringstream log;
  std::unique_ptr<serve::Server> server;
};

class RemoteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = rchls::testing::unique_test_dir("remote_test_tmp");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string sock_path(std::size_t i) const {
    return (dir_ / ("d" + std::to_string(i) + ".sock")).string();
  }

  /// Starts `n` daemons on unix sockets and returns them with a
  /// FleetOptions naming all of them.
  std::vector<std::unique_ptr<Daemon>> start_daemons(std::size_t n) {
    std::vector<std::unique_ptr<Daemon>> daemons;
    for (std::size_t i = 0; i < n; ++i) {
      auto d = std::make_unique<Daemon>();
      serve::ServerOptions so;
      so.socket_path = sock_path(i);
      so.workers = 2;
      so.log = &d->log;
      d->server = std::make_unique<serve::Server>(std::move(so));
      daemons.push_back(std::move(d));
    }
    return daemons;
  }

  FleetOptions fleet_options(std::size_t n) const {
    FleetOptions fo;
    for (std::size_t i = 0; i < n; ++i) {
      fo.endpoints.push_back(parse_endpoint(sock_path(i)));
    }
    return fo;
  }

  std::filesystem::path dir_;
};

api::Request inject_request(std::uint64_t seed) {
  api::InjectRequest req;
  req.component = "ripple_carry_adder";
  req.width = 4;
  req.trials = 128;
  req.seed = seed;
  return api::Request(req);
}

api::Request sweep_request() {
  api::SweepRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.axis = api::SweepAxis::kArea;
  req.latency_bounds = {6};
  req.area_bounds = {5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0};
  return api::Request(req);
}

api::Request grid_request() {
  api::GridRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.latency_bounds = {6, 7};
  req.area_bounds = {8.0, 10.0, 12.0};
  return api::Request(req);
}

api::Request sta_request() {
  api::StaRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.versions = "most_reliable";
  req.width = 4;
  req.trials = 128;
  req.seed = 7;
  req.top_paths = 3;
  req.top = 5;
  return api::Request(req);
}

// ------------------------------------------------------ endpoint grammar

TEST(RemoteParse, ColonWithoutSlashIsTcpAnythingElseIsUnix) {
  Endpoint tcp = parse_endpoint("localhost:7070");
  EXPECT_EQ(tcp.host, "localhost");
  EXPECT_EQ(tcp.port, 7070);
  EXPECT_TRUE(tcp.unix_path.empty());

  // A '/' anywhere forces a unix path, even with colons in the name.
  Endpoint colon_path = parse_endpoint("./run/a:b.sock");
  EXPECT_EQ(colon_path.unix_path, "./run/a:b.sock");
  EXPECT_TRUE(colon_path.host.empty());

  Endpoint bare = parse_endpoint("d.sock");
  EXPECT_EQ(bare.unix_path, "d.sock");

  EXPECT_THROW(parse_endpoint(""), Error);
  EXPECT_THROW(parse_endpoint("host:99999"), Error);
  EXPECT_THROW(parse_endpoint("host:-1"), Error);
  EXPECT_THROW(parse_endpoint("host:port"), Error);
  EXPECT_THROW(parse_endpoint(":7070"), Error) << "empty host";
}

TEST(RemoteParse, EndpointListSplitsOnCommasAndSkipsEmpties) {
  std::vector<Endpoint> eps =
      parse_endpoints("a.sock,localhost:1,,./b/c.sock,");
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_EQ(eps[0].unix_path, "a.sock");
  EXPECT_EQ(eps[1].port, 1);
  EXPECT_EQ(eps[2].unix_path, "./b/c.sock");

  EXPECT_THROW(parse_endpoints(""), Error);
  EXPECT_THROW(parse_endpoints(",,"), Error);
}

TEST(RemoteParse, FleetRejectsBadOptions) {
  FleetOptions none;
  EXPECT_THROW(Fleet{none}, Error);

  FleetOptions bad_retries;
  bad_retries.endpoints.push_back(parse_endpoint("a.sock"));
  bad_retries.retries = -1;
  EXPECT_THROW(Fleet{bad_retries}, Error);

  FleetOptions bad_quarantine;
  bad_quarantine.endpoints.push_back(parse_endpoint("a.sock"));
  bad_quarantine.quarantine_after = 0;
  EXPECT_THROW(Fleet{bad_quarantine}, Error);
}

// ------------------------------------------------- byte-identity matrix

// The PR acceptance criterion: endpoints 1/2/4 x jobs 1/8, sweep and
// grid, all byte-identical to the single-process jobs=1 rendering.
TEST_F(RemoteTest, SweepAndGridAreByteIdenticalAcrossEndpointsAndJobs) {
  JobsGuard guard;
  parallel::set_global_jobs(1);
  api::LocalExecutor local;
  api::Executor& local_base = local;
  const std::string sweep_ref = api::wire::encode(local_base.run(sweep_request()));
  const std::string grid_ref = api::wire::encode(local_base.run(grid_request()));

  for (std::size_t endpoints : {1u, 2u, 4u}) {
    for (std::size_t jobs : {1u, 8u}) {
      parallel::set_global_jobs(jobs);
      auto daemons = start_daemons(endpoints);
      RemoteOptions ro;
      ro.fleet = fleet_options(endpoints);
      RemoteExecutor remote(ro);
      api::Executor& ex = remote;

      EXPECT_EQ(api::wire::encode(ex.run(sweep_request())), sweep_ref)
          << "sweep endpoints=" << endpoints << " jobs=" << jobs;
      EXPECT_EQ(api::wire::encode(ex.run(grid_request())), grid_ref)
          << "grid endpoints=" << endpoints << " jobs=" << jobs;
      EXPECT_EQ(remote.local_fallbacks(), 0u);

      // Least-outstanding + round-robin ties: a healthy fleet never
      // starves an endpoint (ties rotate, so every daemon sees work).
      std::uint64_t total = 0;
      for (const EndpointStats& s : remote.fleet().stats()) {
        EXPECT_GE(s.dispatched, 1u) << s.spec;
        EXPECT_EQ(s.failed, 0u) << s.spec;
        EXPECT_FALSE(s.quarantined) << s.spec;
        total += s.dispatched;
      }
      // 8-cell sweep + 6-cell grid at 2 slices/endpoint, both clamped
      // to the cell count.
      const std::uint64_t slices = 2 * endpoints;
      EXPECT_EQ(total, std::min<std::uint64_t>(slices, 8) +
                           std::min<std::uint64_t>(slices, 6));
    }
  }
}

// The sta acceptance leg: a timing report dispatched over a 2-daemon
// fleet is byte-identical to local execution, with no fallbacks and no
// starved endpoint. Component-shaped and graph-shaped requests both
// cross the wire.
TEST_F(RemoteTest, StaIsByteIdenticalOverATwoDaemonFleet) {
  JobsGuard guard;
  parallel::set_global_jobs(1);
  api::LocalExecutor local;
  api::Executor& local_base = local;
  const std::string graph_ref =
      api::wire::encode(local_base.run(sta_request()));
  api::StaRequest comp;
  comp.component = "kogge_stone_adder";
  comp.width = 4;
  comp.trials = 64;
  comp.seed = 3;
  comp.top = 5;
  const std::string comp_ref =
      api::wire::encode(local_base.run(api::Request(comp)));

  for (std::size_t jobs : {1u, 8u}) {
    parallel::set_global_jobs(jobs);
    auto daemons = start_daemons(2);
    RemoteOptions ro;
    ro.fleet = fleet_options(2);
    RemoteExecutor remote(ro);
    api::Executor& ex = remote;

    EXPECT_EQ(api::wire::encode(ex.run(sta_request())), graph_ref)
        << "graph-shaped sta jobs=" << jobs;
    EXPECT_EQ(api::wire::encode(ex.run(api::Request(comp))), comp_ref)
        << "component-shaped sta jobs=" << jobs;
    EXPECT_EQ(remote.local_fallbacks(), 0u);
    for (const EndpointStats& s : remote.fleet().stats()) {
      EXPECT_EQ(s.failed, 0u) << s.spec;
      EXPECT_FALSE(s.quarantined) << s.spec;
    }
  }
}

TEST_F(RemoteTest, MixedUnixAndTcpEndpointsServeOneSweep) {
  api::LocalExecutor local;
  api::Executor& local_base = local;
  const std::string reference =
      api::wire::encode(local_base.run(sweep_request()));

  // Daemon 0 on a unix socket, daemon 1 on ephemeral loopback TCP.
  auto daemons = start_daemons(1);
  Daemon tcp;
  serve::ServerOptions so;
  so.tcp_port = 0;
  so.log = &tcp.log;
  tcp.server = std::make_unique<serve::Server>(std::move(so));

  RemoteOptions ro;
  ro.fleet = fleet_options(1);
  ro.fleet.endpoints.push_back(
      parse_endpoint("127.0.0.1:" + std::to_string(tcp.server->tcp_port())));
  RemoteExecutor remote(ro);
  api::Executor& ex = remote;

  EXPECT_EQ(api::wire::encode(ex.run(sweep_request())), reference);
  for (const EndpointStats& s : remote.fleet().stats()) {
    EXPECT_GE(s.dispatched, 1u) << s.spec;
    EXPECT_EQ(s.failed, 0u) << s.spec;
  }
}

// ------------------------------------------------------------- failover

// The killed-daemon acceptance case: two daemons serve a sweep, one is
// stopped just before its second dispatch. The sweep's output must be
// byte-identical anyway (failed slices re-dispatch to the survivor)
// and the fleet stats must show the dead endpoint quarantined.
TEST_F(RemoteTest, DaemonKilledMidSweepFailsOverByteIdentically) {
  api::LocalExecutor local;
  api::Executor& local_base = local;
  const std::string reference =
      api::wire::encode(local_base.run(sweep_request()));

  auto daemons = start_daemons(2);
  std::atomic<int> victim_dispatches{0};
  RemoteOptions ro;
  ro.fleet = fleet_options(2);
  ro.fleet.quarantine_after = 1;
  ro.fleet.before_send = [&](std::size_t endpoint, std::uint64_t) {
    // Kill daemon 1 between its first and second dispatch: the first
    // may be mid-flight (or already answered), the second dies on the
    // wire -- exactly the mid-run failure the fleet must absorb.
    if (endpoint == 1 && ++victim_dispatches == 2) {
      daemons[1]->server->stop();
    }
  };
  ro.slices = 8;  // one slice per sweep cell: plenty of re-dispatches
  RemoteExecutor remote(ro);
  api::Executor& ex = remote;

  EXPECT_EQ(api::wire::encode(ex.run(sweep_request())), reference)
      << "failover must not change a single byte";
  EXPECT_EQ(remote.local_fallbacks(), 0u)
      << "one healthy endpoint remained; no local degradation";

  std::vector<EndpointStats> stats = remote.fleet().stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_FALSE(stats[0].quarantined);
  EXPECT_EQ(stats[0].failed, 0u);
  EXPECT_TRUE(stats[1].quarantined) << "the killed daemon must be benched";
  EXPECT_GE(stats[1].failed, 1u);
  EXPECT_FALSE(stats[1].last_error.empty());
  // Every slice still completed somewhere.
  EXPECT_GE(stats[0].completed + stats[1].completed, 8u);
}

// With EVERY endpoint dead the executor degrades to in-process
// execution -- the sweep still finishes, byte-identically.
TEST_F(RemoteTest, WholeFleetDownDegradesToLocalExecution) {
  api::LocalExecutor local;
  api::Executor& local_base = local;
  const std::string reference =
      api::wire::encode(local_base.run(sweep_request()));

  RemoteOptions ro;
  // Nothing listens on these paths.
  ro.fleet.endpoints.push_back(parse_endpoint(sock_path(0)));
  ro.fleet.endpoints.push_back(parse_endpoint(sock_path(1)));
  ro.fleet.quarantine_after = 1;
  ro.fleet.retries = 1;
  ro.slices = 4;
  RemoteExecutor remote(ro);
  api::Executor& ex = remote;

  EXPECT_EQ(api::wire::encode(ex.run(sweep_request())), reference);
  EXPECT_EQ(remote.local_fallbacks(), 4u)
      << "every slice must have fallen back";
  for (const EndpointStats& s : remote.fleet().stats()) {
    EXPECT_TRUE(s.quarantined) << s.spec;
  }
}

TEST_F(RemoteTest, ServerAnsweredErrorsAreNotRetried) {
  auto daemons = start_daemons(2);
  FleetOptions fo = fleet_options(2);
  fo.retries = 3;
  Fleet fleet(fo);

  api::InjectRequest bad;
  bad.component = "no_such_component";
  bad.width = 4;
  bad.trials = 8;
  try {
    fleet.call(api::Request(bad));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("serve: "), std::string::npos)
        << e.what();
  }

  // The daemon answered deterministically: exactly one dispatch total,
  // no retry burned, nobody quarantined.
  std::uint64_t dispatched = 0;
  for (const EndpointStats& s : fleet.stats()) {
    dispatched += s.dispatched;
    EXPECT_EQ(s.failed, 0u) << s.spec;
    EXPECT_FALSE(s.quarantined) << s.spec;
  }
  EXPECT_EQ(dispatched, 1u);
}

// ------------------------------------------------------ scenario batches

// Whole scenarios route through Session::run_batch: with a remote
// executor the actions fan out across the fleet, and the report is
// byte-identical to the local run. A second run through the same
// session is pure memory-cache.
TEST_F(RemoteTest, ScenarioActionsBatchAcrossTheFleetByteIdentically) {
  scenario::Scenario scn = scenario::parse_string(
      "graph fig4_example\n"
      "find_design latency=6 area=8 label=base\n"
      "sweep area 6,8,10 latency=6 label=s\n"
      "inject ripple_carry_adder width=4 trials=128 seed=1 label=i1\n"
      "inject ripple_carry_adder width=4 trials=128 seed=2 label=i2\n");

  api::Session local((api::SessionOptions()));
  const std::string reference =
      scenario::report::to_json(scenario::run(scn, local));

  auto daemons = start_daemons(2);
  api::SessionOptions so;
  auto remote = [&] {
    RemoteOptions ro;
    ro.fleet = fleet_options(2);
    return std::make_shared<RemoteExecutor>(ro);
  }();
  so.executor = remote;
  api::Session session(so);

  EXPECT_EQ(scenario::report::to_json(scenario::run(scn, session)), reference);
  EXPECT_EQ(session.executions(), 4u);
  std::uint64_t daemon_execs = 0;
  for (const auto& d : daemons) daemon_execs += d->server->executions();
  EXPECT_EQ(daemon_execs, 4u) << "each action executed on exactly one daemon";
  for (const EndpointStats& s : remote->fleet().stats()) {
    EXPECT_GE(s.dispatched, 1u) << s.spec;
  }

  // Warm re-run: the session's own cache answers everything.
  EXPECT_EQ(scenario::report::to_json(scenario::run(scn, session)), reference);
  EXPECT_EQ(session.executions(), 4u);
}

// ------------------------------------------------- Session::run_batch

TEST(SessionRunBatch, MixesCacheHitsAndMissesIndexAligned) {
  api::Session session((api::SessionOptions()));
  // Prime one of the three.
  const std::string warm = api::wire::encode(session.run(inject_request(2)));
  EXPECT_EQ(session.executions(), 1u);

  std::vector<api::Request> batch = {inject_request(1), inject_request(2),
                                     inject_request(3)};
  std::vector<api::Result> results = session.run_batch(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(session.executions(), 3u) << "only the two misses executed";
  EXPECT_EQ(api::wire::encode(results[1]), warm);
  // Index alignment: each slot answers its own request.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    api::Session fresh((api::SessionOptions()));
    EXPECT_EQ(api::wire::encode(results[i]),
              api::wire::encode(fresh.run(batch[i])))
        << "index " << i;
  }
}

TEST(SessionRunBatch, FailureCarriesTheOriginalBatchIndex) {
  api::Session session((api::SessionOptions()));
  api::InjectRequest bad;
  bad.component = "no_such_component";
  bad.width = 4;
  bad.trials = 8;
  std::vector<api::Request> batch = {inject_request(1), api::Request(bad),
                                     inject_request(2)};
  try {
    session.run_batch(batch);
    FAIL() << "expected BatchItemError";
  } catch (const api::BatchItemError& e) {
    EXPECT_EQ(e.index(), 1u);
  }
}

// The batched executor path must remap a failing miss back to its
// position in the ORIGINAL batch, not its position among the misses.
TEST_F(RemoteTest, BatchedPathRemapsFailingIndexThroughCacheHits) {
  auto daemons = start_daemons(2);
  api::SessionOptions so;
  {
    RemoteOptions ro;
    ro.fleet = fleet_options(2);
    so.executor = std::make_shared<RemoteExecutor>(ro);
  }
  api::Session session(so);
  session.run(inject_request(1));  // index 0 will be a memory hit

  api::InjectRequest bad;
  bad.component = "no_such_component";
  bad.width = 4;
  bad.trials = 8;
  std::vector<api::Request> batch = {inject_request(1), inject_request(2),
                                     api::Request(bad)};
  try {
    session.run_batch(batch);
    FAIL() << "expected BatchItemError";
  } catch (const api::BatchItemError& e) {
    EXPECT_EQ(e.index(), 2u) << "miss-relative index must be remapped";
  }
}

}  // namespace
}  // namespace rchls::remote

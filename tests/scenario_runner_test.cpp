// End-to-end tests of the scenario subsystem: runner results must be
// bit-identical to the direct C++ engine calls at every worker count, and
// the JSON rendering is pinned by a golden file (tests/data/).
//
// RCHLS_SOURCE_DIR is injected by CMake so the tests can load the shipped
// examples/*.scn and the golden fixtures from the source tree.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/executor.hpp"
#include "benchmarks/suite.hpp"
#include "hls/explore.hpp"
#include "hls/find_design.hpp"
#include "library/resource.hpp"
#include "parallel/config.hpp"
#include "scenario/parse.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "util/error.hpp"

namespace rchls::scenario {
namespace {

std::filesystem::path source_dir() {
  return std::filesystem::path(RCHLS_SOURCE_DIR);
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << p;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Restores the global worker count after a test that changes it.
class JobsGuard {
 public:
  JobsGuard() : saved_(parallel::global_config().jobs) {}
  ~JobsGuard() { parallel::global_config().jobs = saved_; }

 private:
  std::size_t saved_;
};

const FindDesignResult& find_result(const RunReport& report,
                                    const std::string& label) {
  for (const auto& a : report.actions) {
    if (a.label == label) return std::get<FindDesignResult>(a.data);
  }
  throw std::runtime_error("no action labeled " + label);
}

// Acceptance: the shipped paper_fir16.scn reproduces the paper-suite
// find_design result bit-identically to the direct C++ path, at 1 and 8
// workers.
TEST(ScenarioRunner, PaperExampleMatchesDirectCallBitIdentically) {
  Scenario scn = parse_file(source_dir() / "examples" / "paper_fir16.scn");

  auto g = benchmarks::by_name("fir16");
  auto lib = library::paper_library();
  hls::Design direct = hls::find_design(g, lib, 11, 11.0);

  JobsGuard guard;
  for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    parallel::set_global_jobs(jobs);
    RunReport report = run(scn);
    const FindDesignResult& r = find_result(report, "fig7_centric");
    ASSERT_TRUE(r.solved) << "jobs=" << jobs;
    EXPECT_EQ(r.design->reliability, direct.reliability) << "jobs=" << jobs;
    EXPECT_EQ(r.design->area, direct.area) << "jobs=" << jobs;
    EXPECT_EQ(r.design->latency, direct.latency) << "jobs=" << jobs;
    EXPECT_EQ(r.design->version_of, direct.version_of) << "jobs=" << jobs;
    EXPECT_EQ(r.design->schedule.start, direct.schedule.start)
        << "jobs=" << jobs;
  }
}

TEST(ScenarioRunner, JsonIsBitIdenticalAcrossWorkerCounts) {
  Scenario scn = parse_file(source_dir() / "tests" / "data" / "golden.scn");

  JobsGuard guard;
  parallel::set_global_jobs(1);
  std::string json1 = report::to_json(run(scn));
  parallel::set_global_jobs(8);
  std::string json8 = report::to_json(run(scn));
  EXPECT_EQ(json1, json8);
}

// Golden-file test: the JSON rendering of tests/data/golden.scn is pinned
// byte-for-byte. If an intentional format change trips this, regenerate
// with the command in golden.scn's header comment.
TEST(ScenarioRunner, JsonMatchesGoldenFile) {
  Scenario scn = parse_file(source_dir() / "tests" / "data" / "golden.scn");
  std::string expected =
      slurp(source_dir() / "tests" / "data" / "scenario_golden.json");
  EXPECT_EQ(report::to_json(run(scn)), expected);
}

TEST(ScenarioRunner, UnsolvedFindDesignIsReportedNotThrown) {
  Scenario scn = parse_string(
      "graph fig4_example\nfind_design latency=1 area=1 label=im\n");
  RunReport report = run(scn);
  const FindDesignResult& r = find_result(report, "im");
  EXPECT_FALSE(r.solved);
  EXPECT_FALSE(r.design.has_value());
  EXPECT_FALSE(r.no_solution_reason.empty());

  std::string json = report::to_json(report);
  EXPECT_NE(json.find("\"solved\": false"), std::string::npos);
  EXPECT_NE(json.find("\"reliability\": null"), std::string::npos);
}

TEST(ScenarioRunner, SweepMatchesDirectSweep) {
  Scenario scn = parse_string(
      "graph diffeq\nsweep area 9,11,13 latency=7 label=s\n");
  RunReport report = run(scn);
  const auto& sr = std::get<SweepResult>(report.actions[0].data);

  auto g = benchmarks::by_name("diffeq");
  auto lib = library::paper_library();
  auto direct = hls::area_sweep(g, lib, 7, {9.0, 11.0, 13.0});
  ASSERT_EQ(sr.points.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(sr.points[i].reliability, direct[i].reliability);
    EXPECT_EQ(sr.points[i].area, direct[i].area);
  }
}

TEST(ScenarioRunner, StaActionMatchesDirectExecutorCall) {
  Scenario scn = parse_string(
      "graph fig4_example\n"
      "sta versions=fastest width=4 trials=128 seed=5 top=4 label=t\n"
      "sta ripple_carry_adder width=4 trials=64 label=c\n");
  RunReport report = run(scn);
  const auto& graph_res = std::get<StaResult>(report.actions[0].data);
  const auto& comp_res = std::get<StaResult>(report.actions[1].data);

  api::StaRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.width = 4;
  req.trials = 128;
  req.seed = 5;
  req.top = 4;
  api::LocalExecutor local;
  api::StaResult direct = local.run(req);

  EXPECT_EQ(graph_res.target, direct.target);
  EXPECT_EQ(graph_res.clock, direct.clock);
  EXPECT_EQ(graph_res.wns, direct.wns);
  ASSERT_EQ(graph_res.rows.size(), direct.rows.size());
  for (std::size_t i = 0; i < direct.rows.size(); ++i) {
    EXPECT_EQ(graph_res.rows[i].gate, direct.rows[i].gate);
    EXPECT_EQ(graph_res.rows[i].sensitivity, direct.rows[i].sensitivity);
    EXPECT_EQ(graph_res.rows[i].slack, direct.rows[i].slack);
  }

  EXPECT_EQ(comp_res.target, "ripple_carry_adder");
  EXPECT_GT(comp_res.gate_count, 0u);
}

TEST(ScenarioRunner, StaRendersInAllThreeFormats) {
  Scenario scn = parse_string(
      "sta ripple_carry_adder width=4 trials=64 top=3 top_paths=1 label=t\n");
  RunReport report = run(scn);

  std::string json = report::to_json(report);
  EXPECT_NE(json.find("\"kind\": \"sta\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"wns\""), std::string::npos);
  EXPECT_NE(json.find("\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"paths\""), std::string::npos);

  std::string csv = report::to_csv(report);
  EXPECT_NE(csv.find("target,width,gate_count"), std::string::npos) << csv;
  EXPECT_NE(csv.find("gate,kind,sensitivity,slack"), std::string::npos);

  std::string table = report::to_table(report);
  EXPECT_NE(table.find("critical paths"), std::string::npos) << table;
  EXPECT_NE(table.find("wns:"), std::string::npos);
}

TEST(ScenarioRunner, RunsEveryShippedExample) {
  auto dir = source_dir() / "examples";
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".scn") continue;
    ++count;
    SCOPED_TRACE(entry.path().string());
    Scenario scn = parse_file(entry.path());
    RunReport report = run(scn);
    EXPECT_FALSE(report.actions.empty());
    EXPECT_FALSE(report::to_json(report).empty());
    EXPECT_FALSE(report::to_csv(report).empty());
    EXPECT_FALSE(report::to_table(report).empty());
  }
  EXPECT_GE(count, 6u) << "expected the shipped scenario examples";
}

TEST(ScenarioRunner, CsvHasActionSections) {
  Scenario scn = parse_file(source_dir() / "tests" / "data" / "golden.scn");
  std::string csv = report::to_csv(run(scn));
  EXPECT_NE(csv.find("# action find_design#1 find_design"),
            std::string::npos);
  EXPECT_NE(csv.find("# action sweep#1 sweep"), std::string::npos);
  EXPECT_NE(csv.find("# action grid#1 averages"), std::string::npos);
  EXPECT_NE(csv.find("latency_bound,area_bound,reliability"),
            std::string::npos);
}

TEST(ScenarioRunner, HandBuiltScenarioWithoutGraphThrows) {
  // The parser rejects this; a programmatically built Scenario must get
  // an Error, not undefined behavior on the empty optional.
  Scenario scn;
  scn.library = library::paper_library();
  Action a;
  a.label = "orphan";
  a.op = FindDesignAction{};
  scn.actions.push_back(std::move(a));
  EXPECT_THROW(run(scn), Error);
}

TEST(ScenarioRunner, RuntimeErrorsNameTheAction) {
  // A custom library with no multiplier version cannot synthesize a graph
  // containing a multiplication: the runner must surface the action label.
  Scenario scn = parse_string(
      "dfg g\nnode a mul\n"
      "resource aa adder 1 1 0.9\n"
      "find_design latency=4 area=8 label=broken\n");
  try {
    run(scn);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("broken"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace rchls::scenario

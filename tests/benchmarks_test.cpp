#include <gtest/gtest.h>

#include "benchmarks/suite.hpp"
#include "dfg/timing.hpp"
#include "util/error.hpp"

namespace rchls::benchmarks {
namespace {

TEST(Benchmarks, RegistryIsComplete) {
  auto names = all_names();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    dfg::Graph g = by_name(name);
    g.validate();
    EXPECT_EQ(g.name(), name);
  }
  EXPECT_THROW(by_name("nope"), Error);
}

TEST(Benchmarks, Fig4ExampleShape) {
  dfg::Graph g = fig4_example();
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kAdd), 6u);
  EXPECT_EQ(g.edge_count(), 6u);
  // unit-delay depth: A/B -> C -> D/E -> F.
  std::vector<int> unit(g.node_count(), 1);
  EXPECT_EQ(dfg::asap_latency(g, unit), 4);
}

TEST(Benchmarks, Fir16Shape) {
  dfg::Graph g = fir16();
  // 23 ops: 8 pre-adds, 8 muls, 7 accumulation adds (paper Section 7:
  // 0.969^23 = 0.48467).
  EXPECT_EQ(g.node_count(), 23u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kMul), 8u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kAdd), 15u);
  // unit-delay critical path: pre-add, mul, then the 7-adder chain.
  std::vector<int> unit(g.node_count(), 1);
  EXPECT_EQ(dfg::asap_latency(g, unit), 9);
  auto cp = dfg::critical_path(g, unit);
  EXPECT_EQ(cp.size(), 9u);
  EXPECT_EQ(g.node(cp.back()).name, "+g");
}

TEST(Benchmarks, EwfShape) {
  dfg::Graph g = ewf();
  EXPECT_EQ(g.node_count(), 34u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kMul), 8u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kAdd), 26u);
  std::vector<int> unit(g.node_count(), 1);
  // Long serial backbone: the hallmark of the elliptic filter (the
  // published benchmark's unit-delay depth is 14; this reconstruction
  // has 13).
  EXPECT_EQ(dfg::asap_latency(g, unit), 13);
  // With 2-cycle multipliers the sections deepen the graph, as in the
  // published benchmark (minimum 17 c-steps there).
  std::vector<int> mul2(g.node_count(), 1);
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    if (g.node(id).op == dfg::OpType::kMul) mul2[id] = 2;
  }
  EXPECT_GE(dfg::asap_latency(g, mul2), 14);
}

TEST(Benchmarks, DiffeqShape) {
  dfg::Graph g = diffeq();
  EXPECT_EQ(g.node_count(), 11u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kMul), 6u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kSub), 2u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kAdd), 2u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kLt), 1u);
  std::vector<int> unit(g.node_count(), 1);
  EXPECT_EQ(dfg::asap_latency(g, unit), 4);  // *1/*2 -> *3 -> -1 -> -2
}

TEST(Benchmarks, ArLatticeShape) {
  dfg::Graph g = ar_lattice();
  EXPECT_EQ(g.node_count(), 28u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kMul), 16u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kAdd), 12u);
  std::vector<int> unit(g.node_count(), 1);
  EXPECT_EQ(dfg::asap_latency(g, unit), 6);
}

TEST(Benchmarks, FdctShape) {
  dfg::Graph g = fdct();
  EXPECT_EQ(g.node_count(), 42u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kMul), 16u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kAdd) + g.count_ops(dfg::OpType::kSub),
            26u);
  std::vector<int> unit(g.node_count(), 1);
  // s3 path: s1 -> s2 -> s3 -> mul -> o -> f.
  EXPECT_EQ(dfg::asap_latency(g, unit), 6);
}

TEST(Benchmarks, IirBiquadShape) {
  dfg::Graph g = iir_biquad();
  EXPECT_EQ(g.node_count(), 9u);
  EXPECT_EQ(g.count_ops(dfg::OpType::kMul), 5u);
  std::vector<int> unit(g.node_count(), 1);
  EXPECT_EQ(dfg::asap_latency(g, unit), 5);  // mul + 4-deep add chain
}

TEST(Benchmarks, AllAreDags) {
  for (const auto& name : all_names()) {
    dfg::Graph g = by_name(name);
    EXPECT_EQ(g.topological_order().size(), g.node_count()) << name;
  }
}

}  // namespace
}  // namespace rchls::benchmarks

// Property-based tests over random DFGs: every engine must uphold its
// structural invariants on arbitrary inputs, not only on the curated
// benchmarks.
#include <gtest/gtest.h>

#include "bind/left_edge.hpp"
#include "dfg/generate.hpp"
#include "dfg/timing.hpp"
#include "hls/baseline.hpp"
#include "hls/combined.hpp"
#include "hls/find_design.hpp"
#include "sched/density.hpp"
#include "sched/force_directed.hpp"
#include "sched/list.hpp"
#include "util/error.hpp"

namespace rchls::hls {
namespace {

using library::ResourceLibrary;

dfg::Graph random_graph(std::uint64_t seed, std::size_t nodes = 24) {
  dfg::GeneratorConfig cfg;
  cfg.num_nodes = nodes;
  cfg.mul_fraction = 0.35;
  cfg.layer_width = 3.5;
  cfg.seed = seed;
  return dfg::generate_random(cfg);
}

int fastest_min_latency(const dfg::Graph& g, const ResourceLibrary& lib) {
  std::vector<library::VersionId> fastest(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    fastest[id] = lib.fastest(library::class_of(g.node(id).op));
  }
  return dfg::asap_latency(g, delays_for(g, lib, fastest));
}

class RandomDfg : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDfg, SchedulersProduceValidSchedules) {
  auto g = random_graph(GetParam());
  std::vector<int> delays(g.node_count());
  std::vector<int> groups(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    bool mul = g.node(id).op == dfg::OpType::kMul;
    delays[id] = mul ? 2 : 1;
    groups[id] = mul ? 1 : 0;
  }
  int lmin = dfg::asap_latency(g, delays);

  auto dens = sched::density_schedule(g, delays, lmin + 2, groups);
  sched::validate_schedule(g, delays, dens);
  EXPECT_LE(dens.latency, lmin + 2);

  auto fds = sched::force_directed_schedule(g, delays, lmin + 2, groups);
  sched::validate_schedule(g, delays, fds);

  std::vector<int> instances{2, 2};
  auto list = sched::list_schedule(g, delays, groups, instances);
  sched::validate_schedule(g, delays, list);
  auto peak = sched::peak_usage(g, delays, list, groups, 2);
  EXPECT_LE(peak[0], 2);
  EXPECT_LE(peak[1], 2);
}

TEST_P(RandomDfg, FindDesignUpholdsBounds) {
  auto g = random_graph(GetParam());
  ResourceLibrary lib = library::paper_library();
  int lmin = fastest_min_latency(g, lib);
  for (int slack : {1, 4}) {
    for (double ad : {10.0, 16.0}) {
      try {
        Design d = find_design(g, lib, lmin + slack, ad);
        validate_design(d, g, lib);
        EXPECT_LE(d.latency, lmin + slack);
        EXPECT_LE(d.area, ad + 1e-9);
      } catch (const NoSolutionError&) {
        // Acceptable: bounds can be genuinely unsatisfiable.
      }
    }
  }
}

TEST_P(RandomDfg, CombinedAtLeastAsReliableAsPlain) {
  auto g = random_graph(GetParam());
  ResourceLibrary lib = library::paper_library();
  int lmin = fastest_min_latency(g, lib);
  try {
    Design plain = find_design(g, lib, lmin + 3, 18.0);
    Design comb = combined_design(g, lib, lmin + 3, 18.0);
    EXPECT_GE(comb.reliability, plain.reliability - 1e-12);
    EXPECT_LE(comb.area, 18.0 + 1e-9);
  } catch (const NoSolutionError&) {
  }
}

TEST_P(RandomDfg, BaselineUpholdsBounds) {
  auto g = random_graph(GetParam());
  ResourceLibrary lib = library::paper_library();
  int lmin = fastest_min_latency(g, lib);
  try {
    Design d = nmr_baseline(g, lib, lmin + 3, 20.0);
    validate_design(d, g, lib);
    EXPECT_LE(d.latency, lmin + 3);
    EXPECT_LE(d.area, 20.0 + 1e-9);
  } catch (const NoSolutionError&) {
  }
}

TEST_P(RandomDfg, BindingInstanceCountsMatchPeaks) {
  auto g = random_graph(GetParam());
  ResourceLibrary lib = library::paper_library();
  std::vector<library::VersionId> versions(g.node_count());
  std::vector<int> groups(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    bool mul = g.node(id).op == dfg::OpType::kMul;
    versions[id] = mul ? lib.find("mult_2") : lib.find("adder_2");
    groups[id] = mul ? 1 : 0;
  }
  auto delays = delays_for(g, lib, versions);
  int lmin = dfg::asap_latency(g, delays);
  auto s = sched::density_schedule(g, delays, lmin + 1, groups);
  auto b = bind::left_edge_bind(g, lib, versions, s);
  auto peak = sched::peak_usage(g, delays, s, groups, 2);
  auto hist = bind::instance_histogram(b, lib);
  EXPECT_EQ(hist[lib.find("adder_2")], peak[0]);
  EXPECT_EQ(hist[lib.find("mult_2")], peak[1]);
}

TEST_P(RandomDfg, TighterLatencyNeverImprovesReliability) {
  auto g = random_graph(GetParam(), 18);
  ResourceLibrary lib = library::paper_library();
  int lmin = fastest_min_latency(g, lib);
  double prev = 2.0;
  // Sweep tighter and tighter latencies: reliability must not increase
  // beyond noise as the bound tightens (paper Fig. 8(a) shape).
  for (int ld = lmin + 6; ld >= lmin; ld -= 2) {
    try {
      Design d = find_design(g, lib, ld, 14.0);
      EXPECT_LE(d.reliability, prev + 0.05) << "Ld=" << ld;
      prev = d.reliability;
    } catch (const NoSolutionError&) {
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDfg,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace rchls::hls

#include <gtest/gtest.h>

#include "circuits/adders.hpp"
#include "netlist/netlist.hpp"
#include "ser/characterize.hpp"
#include "util/error.hpp"

namespace rchls::ser {
namespace {

TEST(PaperCharacterization, ReproducesTable1) {
  auto comps = paper_characterization();
  ASSERT_EQ(comps.size(), 5u);

  EXPECT_EQ(comps[0].name, "ripple_carry_adder");
  EXPECT_EQ(comps[0].cls, ComponentClass::kAdder);
  EXPECT_DOUBLE_EQ(comps[0].area_units, 1.0);
  EXPECT_EQ(comps[0].delay_cycles, 2);
  EXPECT_DOUBLE_EQ(comps[0].reliability, 0.999);

  EXPECT_EQ(comps[1].name, "brent_kung_adder");
  EXPECT_DOUBLE_EQ(comps[1].area_units, 2.0);
  EXPECT_EQ(comps[1].delay_cycles, 1);
  EXPECT_NEAR(comps[1].reliability, 0.969, 1e-9);

  EXPECT_EQ(comps[2].name, "kogge_stone_adder");
  EXPECT_DOUBLE_EQ(comps[2].area_units, 4.0);
  EXPECT_EQ(comps[2].delay_cycles, 1);
  EXPECT_NEAR(comps[2].reliability, 0.987, 5e-4);

  EXPECT_EQ(comps[3].name, "carry_save_multiplier");
  EXPECT_EQ(comps[3].cls, ComponentClass::kMultiplier);
  EXPECT_DOUBLE_EQ(comps[3].area_units, 2.0);
  EXPECT_EQ(comps[3].delay_cycles, 2);
  EXPECT_NEAR(comps[3].reliability, 0.999, 1e-9);

  EXPECT_EQ(comps[4].name, "leapfrog_multiplier");
  EXPECT_DOUBLE_EQ(comps[4].area_units, 4.0);
  EXPECT_EQ(comps[4].delay_cycles, 1);
  EXPECT_NEAR(comps[4].reliability, 0.969, 1e-9);
}

TEST(PaperCharacterization, ChargesAreOrderedLikeReliabilities) {
  auto comps = paper_characterization();
  // Higher reliability <=> larger critical charge under one technology.
  for (const auto& a : comps) {
    for (const auto& b : comps) {
      if (a.reliability < b.reliability) {
        EXPECT_LT(a.qcritical, b.qcritical) << a.name << " vs " << b.name;
      }
    }
  }
}

TEST(SimulatedCharacterization, ProducesFiveAnchoredComponents) {
  CharacterizeConfig cfg;
  cfg.width = 8;
  cfg.injection.trials = 64 * 64;
  auto comps = characterize_components(cfg);
  ASSERT_EQ(comps.size(), 5u);

  // The ripple-carry adder is the anchor: area 1, reliability 0.999.
  EXPECT_DOUBLE_EQ(comps[0].area_units, 1.0);
  EXPECT_DOUBLE_EQ(comps[0].reliability, 0.999);

  for (const auto& c : comps) {
    EXPECT_GT(c.reliability, 0.0) << c.name;
    EXPECT_LT(c.reliability, 1.0) << c.name;
    EXPECT_GE(c.delay_cycles, 1) << c.name;
    EXPECT_GT(c.area_units, 0.0) << c.name;
    EXPECT_GT(c.gate_count, 0u) << c.name;
  }

  // Structural orderings the netlists guarantee at any width:
  // the prefix adders are single-cycle (they bound the clock period) and
  // the ripple adder is never faster than them.
  EXPECT_GE(comps[0].delay_cycles, comps[1].delay_cycles);
  EXPECT_EQ(comps[2].delay_cycles, 1);
  EXPECT_EQ(comps[4].delay_cycles, 1);
  // Kogge-Stone is bigger than Brent-Kung; multipliers bigger than adders.
  EXPECT_GT(comps[2].area_units, comps[1].area_units);
  EXPECT_GT(comps[3].area_units, comps[0].area_units);
  // Bigger circuits collect more strikes: multipliers end up less reliable
  // than the anchor adder.
  EXPECT_LT(comps[3].reliability, comps[0].reliability);
  EXPECT_LT(comps[4].reliability, comps[0].reliability);
}

TEST(GateSensitivities, RankedSweepSeparatesTransparentFromMaskedNodes) {
  // out = or(buf(a), and(buf(b), 0)). Fully observable: buf(a) and the OR
  // (sensitivity 1). Fully masked: buf(b), killed by the constant zero.
  // Partially masked: the AND itself (observable only in lanes where
  // buf(a) is 0).
  netlist::Netlist nl("mixed");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto b = nl.add_input_bus("b", 1).bits[0];
  auto zero = nl.add_const(false);
  auto buf_a = nl.add_unary(netlist::GateKind::kBuf, a);
  auto buf_b = nl.add_unary(netlist::GateKind::kBuf, b);
  auto gated = nl.add_binary(netlist::GateKind::kAnd, buf_b, zero);
  auto out = nl.add_binary(netlist::GateKind::kOr, buf_a, gated);
  nl.add_output_bus("out", {out});

  InjectionConfig cfg;
  cfg.trials = 64 * 4;
  auto ranked = rank_gate_sensitivities(nl, cfg);
  ASSERT_EQ(ranked.size(), 4u);

  // Descending sensitivity, ties by ascending gate id.
  EXPECT_EQ(ranked[0].gate, buf_a);
  EXPECT_EQ(ranked[1].gate, out);
  EXPECT_DOUBLE_EQ(ranked[0].result.logical_sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(ranked[1].result.logical_sensitivity, 1.0);
  EXPECT_EQ(ranked[2].gate, gated);
  EXPECT_GT(ranked[2].result.logical_sensitivity, 0.0);
  EXPECT_LT(ranked[2].result.logical_sensitivity, 1.0);
  EXPECT_EQ(ranked[3].gate, buf_b);
  EXPECT_DOUBLE_EQ(ranked[3].result.logical_sensitivity, 0.0);
  EXPECT_GT(ranked[3].result.half_width_95, 0.0);  // Wilson, not normal
}

TEST(GateSensitivities, CoversEveryLogicGateOnce) {
  netlist::Netlist nl = circuits::ripple_carry_adder(4);
  InjectionConfig cfg;
  cfg.trials = 64 * 2;
  auto ranked = rank_gate_sensitivities(nl, cfg);
  std::size_t logic = 0;
  for (netlist::GateId id = 0; id < nl.gate_count(); ++id) {
    if (netlist::fanin_count(nl.gate(id).kind) > 0) ++logic;
  }
  EXPECT_EQ(ranked.size(), logic);
}

TEST(SimulatedCharacterization, DeterministicUnderSeed) {
  CharacterizeConfig cfg;
  cfg.width = 4;
  cfg.injection.trials = 64 * 16;
  auto a = characterize_components(cfg);
  auto b = characterize_components(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].reliability, b[i].reliability);
  }
}

}  // namespace
}  // namespace rchls::ser

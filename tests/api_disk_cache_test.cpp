// Persistent cache tests (api/disk_cache.hpp): cross-"invocation" warm
// hits (two Sessions, one directory, zero executions on the second --
// the PR acceptance criterion), verification (bit-flipped entries are
// rejected as misses, never aliased), and the `rchls cache` / stderr
// stats surface.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "api/cli.hpp"
#include "api/disk_cache.hpp"
#include "api/session.hpp"
#include "api/wire.hpp"
#include "scenario/parse.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "temp_dir.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace rchls::api {
namespace {

class ApiDiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = rchls::testing::unique_test_dir("api_disk_cache_test_tmp");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string cache_dir() const { return (dir_ / "cache").string(); }

  std::filesystem::path write(const std::string& name,
                              const std::string& text) {
    std::filesystem::path p = dir_ / name;
    std::ofstream out(p);
    out << text;
    return p;
  }

  static std::string slurp(const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  std::filesystem::path dir_;
};

InjectRequest small_inject() {
  InjectRequest req;
  req.component = "ripple_carry_adder";
  req.width = 4;
  req.trials = 128;
  req.seed = 3;
  return req;
}

// ------------------------------------------------------------ store/find

TEST_F(ApiDiskCacheTest, StoreThenFindRoundTripsTheResult) {
  DiskCache cache(cache_dir());
  LocalExecutor engine;
  InjectResult computed = engine.run(small_inject());
  CacheKey key = key_of(small_inject());

  cache.store(key, Result(computed));
  EXPECT_EQ(cache.stats().stores, 1u);

  std::optional<Result> hit = cache.find(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(wire::encode(*hit), wire::encode(Result(computed)));

  // The entry lives under the digest-named conventional path.
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(cache_dir()) / (to_hex64(key.digest) + ".json")));
}

TEST_F(ApiDiskCacheTest, MissingEntryIsAMiss) {
  DiskCache cache(cache_dir());
  EXPECT_FALSE(cache.find(key_of(small_inject())).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().corrupt, 0u);
}

TEST_F(ApiDiskCacheTest, DigestCollisionDegradesToAMissNotAnAlias) {
  DiskCache cache(cache_dir());
  LocalExecutor engine;
  CacheKey key = key_of(small_inject());
  cache.store(key, Result(engine.run(small_inject())));

  // Forge a key with the same digest (same filename) but a different
  // canonical encoding -- the full-key comparison must reject it.
  CacheKey forged = key_of(small_inject());
  forged.canonical += "tampered";
  EXPECT_FALSE(cache.find(forged).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

// The satellite acceptance: a bit-flipped cache entry is NEVER served as
// a different result. Every flip either still decodes to the identical
// wire bytes (e.g. a whitespace byte) or is rejected as a miss.
TEST_F(ApiDiskCacheTest, BitFlippedEntriesAreRejectedNeverAliased) {
  DiskCache cache(cache_dir());
  LocalExecutor engine;
  CacheKey key = key_of(small_inject());
  Result original = Result(engine.run(small_inject()));
  cache.store(key, original);
  const std::string original_wire = wire::encode(original);

  std::filesystem::path entry =
      std::filesystem::path(cache_dir()) / (to_hex64(key.digest) + ".json");
  const std::string pristine = slurp(entry);
  ASSERT_FALSE(pristine.empty());

  std::size_t flips = 0;
  std::size_t rejected = 0;
  for (std::size_t pos = 0; pos < pristine.size(); pos += 7) {
    for (int bit : {0, 3, 7}) {
      std::string corrupted = pristine;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << bit));
      if (corrupted == pristine) continue;
      {
        std::ofstream out(entry, std::ios::binary | std::ios::trunc);
        out << corrupted;
      }
      ++flips;
      std::optional<Result> hit = cache.find(key);
      if (hit.has_value()) {
        // Served -- then it must be the exact original result.
        EXPECT_EQ(wire::encode(*hit), original_wire)
            << "aliased at byte " << pos << " bit " << bit;
      } else {
        ++rejected;
      }
    }
  }
  EXPECT_GT(flips, 100u);
  EXPECT_GT(rejected, 0u) << "corruption was never detected?";
}

TEST_F(ApiDiskCacheTest, TruncatedAndGarbageEntriesAreMisses) {
  DiskCache cache(cache_dir());
  LocalExecutor engine;
  CacheKey key = key_of(small_inject());
  cache.store(key, Result(engine.run(small_inject())));
  std::filesystem::path entry =
      std::filesystem::path(cache_dir()) / (to_hex64(key.digest) + ".json");

  std::string pristine = slurp(entry);
  {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out << pristine.substr(0, pristine.size() / 2);
  }
  EXPECT_FALSE(cache.find(key).has_value());

  {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out << "not json";
  }
  EXPECT_FALSE(cache.find(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 2u);

  // And a fresh store heals the entry.
  cache.store(key, Result(engine.run(small_inject())));
  EXPECT_TRUE(cache.find(key).has_value());
}

// Persisting is an optimization: an unwritable directory fails the
// store (counted), never the caller's run.
TEST_F(ApiDiskCacheTest, FailedStoresAreCountedNotThrown) {
  DiskCache cache(cache_dir());
  std::filesystem::remove_all(cache_dir());
  write("cache", "now a regular file, not a directory");

  LocalExecutor engine;
  InjectResult computed = engine.run(small_inject());
  EXPECT_FALSE(cache.store(key_of(small_inject()), Result(computed)));
  EXPECT_EQ(cache.stats().store_failures, 1u);
  EXPECT_EQ(cache.stats().stores, 0u);

  // And the same failure through a Session still returns the result.
  SessionOptions opts;
  opts.cache_dir = cache_dir();
  std::filesystem::remove(cache_dir());  // recreated by the Session...
  Session session(opts);
  std::filesystem::remove_all(cache_dir());
  write("cache", "unwritable again");     // ...then yanked away
  InjectResult r = session.run(small_inject());
  EXPECT_EQ(r.result.trials, computed.result.trials);
  EXPECT_EQ(session.disk_stats().store_failures, 1u);
}

TEST_F(ApiDiskCacheTest, UsageAndClear) {
  DiskCache cache(cache_dir());
  LocalExecutor engine;
  cache.store(key_of(small_inject()), Result(engine.run(small_inject())));
  InjectRequest other = small_inject();
  other.seed = 4;
  cache.store(key_of(other), Result(engine.run(other)));

  DiskCacheUsage u = cache.usage();
  EXPECT_EQ(u.entries, 2u);
  EXPECT_GT(u.bytes, 0u);

  EXPECT_EQ(cache.clear(), 2u);
  EXPECT_EQ(cache.usage().entries, 0u);
  EXPECT_FALSE(cache.find(key_of(other)).has_value());
}

// ------------------------------------------------------------ prune

// Pins an entry's mtime so the LRU order is deterministic regardless of
// filesystem timestamp granularity.
void set_age(const std::filesystem::path& entry, int seconds_ago) {
  std::filesystem::last_write_time(
      entry, std::filesystem::file_time_type::clock::now() -
                 std::chrono::seconds(seconds_ago));
}

TEST_F(ApiDiskCacheTest, PruneEvictsOldestFirstUntilUnderBudget) {
  DiskCache cache(cache_dir());
  LocalExecutor engine;
  std::vector<CacheKey> keys;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    InjectRequest req = small_inject();
    req.seed = seed;
    CacheKey key = key_of(req);
    cache.store(key, Result(engine.run(req)));
    keys.push_back(key);
    // seed 1 oldest, seed 3 newest.
    set_age(std::filesystem::path(cache_dir()) /
                (to_hex64(key.digest) + ".json"),
            100 - static_cast<int>(seed) * 10);
  }
  DiskCacheUsage before = cache.usage();
  ASSERT_EQ(before.entries, 3u);

  // A budget that fits exactly the two newest entries (entry sizes vary
  // by a few bytes, so measure, don't average): the oldest -- and only
  // the oldest -- must go.
  auto entry_bytes = [&](const CacheKey& key) {
    return static_cast<std::uint64_t>(std::filesystem::file_size(
        std::filesystem::path(cache_dir()) /
        (to_hex64(key.digest) + ".json")));
  };
  std::uint64_t budget = entry_bytes(keys[1]) + entry_bytes(keys[2]);
  DiskCache::PruneReport r = cache.prune(budget);
  EXPECT_EQ(r.removed_entries, 1u);
  EXPECT_EQ(r.kept_entries, 2u);
  EXPECT_EQ(r.removed_bytes + r.kept_bytes, before.bytes);
  EXPECT_LE(r.kept_bytes, budget);

  EXPECT_FALSE(cache.find(keys[0]).has_value()) << "oldest must be evicted";
  EXPECT_TRUE(cache.find(keys[1]).has_value());
  EXPECT_TRUE(cache.find(keys[2]).has_value());
}

TEST_F(ApiDiskCacheTest, PruneWithinBudgetRemovesNothing) {
  DiskCache cache(cache_dir());
  LocalExecutor engine;
  cache.store(key_of(small_inject()), Result(engine.run(small_inject())));
  DiskCache::PruneReport r = cache.prune(cache.usage().bytes);
  EXPECT_EQ(r.removed_entries, 0u);
  EXPECT_EQ(r.kept_entries, 1u);
  EXPECT_TRUE(cache.find(key_of(small_inject())).has_value());
}

// Hits refresh an entry's mtime, so "oldest" means least-recently-USED:
// an entry written long ago but read today survives a prune that evicts
// a younger-but-unread one.
TEST_F(ApiDiskCacheTest, PruneSparesRecentlyUsedEntries) {
  DiskCache cache(cache_dir());
  LocalExecutor engine;
  InjectRequest used = small_inject();
  InjectRequest unused = small_inject();
  unused.seed = 99;
  cache.store(key_of(used), Result(engine.run(used)));
  cache.store(key_of(unused), Result(engine.run(unused)));
  set_age(std::filesystem::path(cache_dir()) /
              (to_hex64(key_of(used).digest) + ".json"),
          3600);
  set_age(std::filesystem::path(cache_dir()) /
              (to_hex64(key_of(unused).digest) + ".json"),
          60);

  ASSERT_TRUE(cache.find(key_of(used)).has_value());  // touches mtime

  // A budget that fits exactly the touched entry.
  DiskCache::PruneReport r = cache.prune(std::filesystem::file_size(
      std::filesystem::path(cache_dir()) /
      (to_hex64(key_of(used).digest) + ".json")));
  EXPECT_EQ(r.removed_entries, 1u);
  EXPECT_TRUE(cache.find(key_of(used)).has_value())
      << "the entry read after the stores must survive";
  EXPECT_FALSE(cache.find(key_of(unused)).has_value());
}

// ----------------------------------------------- session layering

// The PR acceptance criterion, in-process: a SECOND Session (fresh
// memory cache, same directory -- exactly what a second CLI invocation
// constructs) serves every action from disk and executes nothing.
TEST_F(ApiDiskCacheTest, SecondSessionExecutesNothingAndRendersIdentically) {
  const std::string text =
      "scenario warm\n"
      "graph fig4_example\n"
      "find_design latency=6 area=8\n"
      "sweep area 6,8,10 latency=6\n"
      "inject ripple_carry_adder width=4 trials=128\n";
  scenario::Scenario scn = scenario::parse_string(text);

  SessionOptions opts;
  opts.cache_dir = cache_dir();

  Session cold(opts);
  std::string cold_json = scenario::report::to_json(scenario::run(scn, cold));
  EXPECT_EQ(cold.executions(), 3u);
  EXPECT_EQ(cold.disk_stats().stores, 3u);

  Session warm(opts);
  std::string warm_json = scenario::report::to_json(scenario::run(scn, warm));
  EXPECT_EQ(warm.executions(), 0u) << "warm run must not execute engines";
  EXPECT_EQ(warm.disk_stats().hits, 3u);
  EXPECT_EQ(warm.disk_stats().misses, 0u);
  EXPECT_EQ(warm_json, cold_json) << "disk-served report must be identical";

  // Inside one session the memory layer still answers first: a repeat
  // run touches the disk zero further times.
  scenario::run(scn, warm);
  EXPECT_EQ(warm.disk_stats().hits, 3u);
  EXPECT_EQ(warm.cache_stats().hits, 3u);
}

TEST_F(ApiDiskCacheTest, DisabledCacheBypassesTheDiskToo) {
  SessionOptions opts;
  opts.enable_cache = false;
  opts.cache_dir = cache_dir();
  Session session(opts);
  session.run(small_inject());
  session.run(small_inject());
  EXPECT_EQ(session.executions(), 2u);
  EXPECT_EQ(session.disk_stats().stores, 0u);
}

// ------------------------------------------------------------ CLI surface

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliRun r;
  r.code = cli_main(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST_F(ApiDiskCacheTest, SecondCliInvocationIsAllDiskHits) {
  auto scn = write("two_pass.scn",
                   "scenario two_pass\n"
                   "graph fig4_example\n"
                   "find_design latency=6 area=8\n"
                   "inject ripple_carry_adder width=4 trials=128\n");

  CliRun first = cli({"run", scn.string(), "--format", "json",
                      "--cache-dir", cache_dir()});
  ASSERT_EQ(first.code, 0) << first.err;
  EXPECT_NE(first.err.find("disk_misses=2"), std::string::npos) << first.err;
  EXPECT_NE(first.err.find("stores=2"), std::string::npos);

  CliRun second = cli({"run", scn.string(), "--format", "json",
                       "--cache-dir", cache_dir()});
  ASSERT_EQ(second.code, 0) << second.err;
  EXPECT_EQ(second.out, first.out) << "reports must be byte-identical";
  EXPECT_NE(second.err.find("disk_hits=2"), std::string::npos) << second.err;
  EXPECT_NE(second.err.find("disk_misses=0"), std::string::npos);
  EXPECT_NE(second.err.find("executed=0"), std::string::npos)
      << "second invocation must not execute engines";
}

// The ISSUE-pinned sta warm-cache acceptance: a second `rchls sta`
// invocation against the same cache directory renders byte-identically
// with disk_misses=0 and executed=0.
TEST_F(ApiDiskCacheTest, WarmStaInvocationExecutesNothing) {
  const std::vector<std::string> args = {
      "sta", "kogge_stone_adder", "--width", "4", "--trials", "64",
      "--seed", "3", "--top", "5", "--format", "json",
      "--cache-dir", cache_dir()};

  CliRun cold = cli(args);
  ASSERT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.err.find("disk_misses=1"), std::string::npos) << cold.err;
  EXPECT_NE(cold.err.find("stores=1"), std::string::npos);

  CliRun warm = cli(args);
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_EQ(warm.out, cold.out) << "sta reports must be byte-identical";
  EXPECT_NE(warm.err.find("disk_hits=1"), std::string::npos) << warm.err;
  EXPECT_NE(warm.err.find("disk_misses=0"), std::string::npos);
  EXPECT_NE(warm.err.find("executed=0"), std::string::npos)
      << "warm sta invocation must not execute engines";
}

TEST_F(ApiDiskCacheTest, CacheStatsAndClearSubcommands) {
  auto scn = write("fill.scn",
                   "scenario fill\n"
                   "inject ripple_carry_adder width=4 trials=128\n");
  ASSERT_EQ(cli({"run", scn.string(), "--cache-dir", cache_dir()}).code, 0);

  CliRun stats = cli({"cache", "stats", "--cache-dir", cache_dir()});
  EXPECT_EQ(stats.code, 0);
  EXPECT_NE(stats.out.find("entries: 1"), std::string::npos) << stats.out;

  CliRun clear = cli({"cache", "clear", "--cache-dir", cache_dir()});
  EXPECT_EQ(clear.code, 0);
  EXPECT_NE(clear.out.find("removed: 1"), std::string::npos) << clear.out;

  stats = cli({"cache", "stats", "--cache-dir", cache_dir()});
  EXPECT_NE(stats.out.find("entries: 0"), std::string::npos) << stats.out;

  CliRun bad = cli({"cache", "wipe", "--cache-dir", cache_dir()});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("error: cache expects"), std::string::npos);
}

TEST_F(ApiDiskCacheTest, VerifyCacheReportsStatsInItsOutput) {
  auto scn = write("verify.scn",
                   "scenario verify\n"
                   "inject ripple_carry_adder width=4 trials=128\n");
  CliRun r = cli({"run", scn.string(), "--verify-cache"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("cache: verified 1 actions"), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("(hits=1 misses=1 entries=1)"), std::string::npos)
      << r.err;
}

}  // namespace
}  // namespace rchls::api

// Shared machinery for the differential fuzz suites (fuzz_wire_test.cpp,
// fuzz_scenario_test.cpp): a seeded byte-level mutator, a raw random
// input generator, iteration-count scaling via RCHLS_FUZZ_ITERS, and the
// curated seed corpus under tests/data/fuzz_seed/.
//
// The harness is differential, not coverage-guided: every input -- a
// mutated valid document or raw noise -- must either be accepted and
// round-trip to the canonical byte fixed point, or be rejected with a
// clean rchls::Error. Crashes, hangs and foreign exception types are the
// bugs being hunted; mutations are pure functions of the test seed, so a
// failing iteration replays exactly from its (seed, index) pair.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace rchls::testing::fuzz {

/// Iteration count for a fuzz loop: RCHLS_FUZZ_ITERS (a positive
/// decimal) when set, otherwise `fallback`. CI's bounded smoke job sets
/// the env var; a local soak can crank it to millions.
inline std::size_t iterations(std::size_t fallback) {
  if (const char* env = std::getenv("RCHLS_FUZZ_ITERS")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return fallback;
}

/// Raw random input: length up to `max_len`, bytes over the full 0-255
/// range (NULs and non-UTF-8 included -- decoders see untrusted sockets
/// and cache files, not just text editors).
inline std::string random_bytes(Rng& rng, std::size_t max_len) {
  std::string s(rng.next_below(max_len + 1), '\0');
  for (char& c : s) {
    c = static_cast<char>(static_cast<unsigned char>(rng.next_below(256)));
  }
  return s;
}

/// One seeded mutation pass: 1-4 byte-level edits drawn from flips,
/// insertions, deletions, chunk duplication/removal, truncation, swaps
/// and dictionary splices (structural JSON/scenario tokens, so mutants
/// reach past the first parse error). Output length is capped to keep a
/// duplication chain from going exponential across iterations.
inline std::string mutate(Rng& rng, const std::string& input) {
  static const char* kDictionary[] = {
      "{",       "}",     "[",       "]",      "\"",       ":",
      ",",       "\\",    "\n",      " ",      "-",        ".",
      "0",       "9e99",  "1e-999",  "null",   "true",     "false",
      "@",       "=",     "#",       "kind",   "format_version",
      "request", "result", "scenario", "graph", "node",    "edge",
      "include", "set",   "label",   "latency", "18446744073709551615"};
  constexpr std::size_t kMaxLen = 1 << 16;

  std::string s = input;
  std::size_t edits = 1 + rng.next_below(4);
  for (std::size_t e = 0; e < edits; ++e) {
    std::size_t pos = s.empty() ? 0 : rng.next_below(s.size());
    switch (rng.next_below(8)) {
      case 0:  // flip one byte
        if (!s.empty()) {
          s[pos] = static_cast<char>(
              static_cast<unsigned char>(rng.next_below(256)));
        }
        break;
      case 1:  // insert one random byte
        s.insert(s.begin() + static_cast<std::ptrdiff_t>(pos),
                 static_cast<char>(
                     static_cast<unsigned char>(rng.next_below(256))));
        break;
      case 2:  // delete one byte
        if (!s.empty()) s.erase(pos, 1);
        break;
      case 3: {  // duplicate a chunk in place
        if (!s.empty()) {
          std::size_t len = 1 + rng.next_below(std::min<std::size_t>(
                                    64, s.size() - pos));
          s.insert(pos, s.substr(pos, len));
        }
        break;
      }
      case 4: {  // remove a chunk
        if (!s.empty()) {
          std::size_t len = 1 + rng.next_below(std::min<std::size_t>(
                                    64, s.size() - pos));
          s.erase(pos, len);
        }
        break;
      }
      case 5:  // splice a dictionary token
        s.insert(pos, kDictionary[rng.next_below(std::size(kDictionary))]);
        break;
      case 6:  // truncate
        s.erase(pos);
        break;
      default:  // swap two bytes
        if (s.size() >= 2) {
          std::swap(s[pos], s[rng.next_below(s.size())]);
        }
        break;
    }
  }
  if (s.size() > kMaxLen) s.resize(kMaxLen);
  return s;
}

/// The curated seed corpus: every tests/data/fuzz_seed/*`extension` file
/// as (filename, content), sorted by name for deterministic order. The
/// naming convention is load-bearing: "valid_*" must be accepted,
/// "invalid_*" must be rejected with rchls::Error -- the fuzz suites
/// replay these before any mutation runs.
inline std::vector<std::pair<std::string, std::string>> seed_corpus(
    const std::string& extension) {
  std::filesystem::path dir =
      std::filesystem::path(RCHLS_SOURCE_DIR) / "tests" / "data" /
      "fuzz_seed";
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != extension) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    out.emplace_back(entry.path().filename().string(), os.str());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rchls::testing::fuzz

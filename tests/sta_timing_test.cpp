#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuits/components.hpp"
#include "dfg/graph.hpp"
#include "library/io.hpp"
#include "library/resource.hpp"
#include "netlist/netlist.hpp"
#include "netlist/topology.hpp"
#include "parallel/config.hpp"
#include "rtl/elaborate.hpp"
#include "ser/fault_injection.hpp"
#include "sta/delay_model.hpp"
#include "sta/design.hpp"
#include "sta/sensitivity.hpp"
#include "sta/timing.hpp"
#include "util/error.hpp"

namespace rchls::sta {
namespace {

using netlist::GateId;

TimingReport analyze_unit(const netlist::Netlist& nl,
                          const TimingOptions& options = {}) {
  netlist::Topology topo(nl);
  return analyze(nl, topo, DelayModel::unit(nl), options);
}

// a AND b -> out; a XOR b dangling (no fanout, not an output).
netlist::Netlist netlist_with_dangling_gate() {
  netlist::Netlist nl("dangling");
  netlist::Bus a = nl.add_input_bus("a", 1);
  netlist::Bus b = nl.add_input_bus("b", 1);
  GateId g = nl.band(a.bits[0], b.bits[0]);
  nl.bxor(a.bits[0], b.bits[0]);  // dangling
  nl.add_output_bus("out", {g});
  return nl;
}

TEST(StaTiming, UnitDelayArrivalEqualsTopologicalDepth) {
  netlist::Netlist nl =
      circuits::component_by_name("kogge_stone_adder", 8);
  netlist::Topology topo(nl);
  TimingReport report = analyze(nl, topo, DelayModel::unit(nl));
  ASSERT_EQ(report.arrival.size(), nl.gate_count());
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    EXPECT_DOUBLE_EQ(report.arrival[g],
                     static_cast<double>(topo.level(g)))
        << "gate " << g;
  }
  EXPECT_EQ(report.levels, topo.max_level());
  EXPECT_EQ(report.endpoints, nl.output_bits().size());
}

TEST(StaTiming, DerivedClockPutsCriticalEndpointAtZeroSlack) {
  netlist::Netlist nl =
      circuits::component_by_name("ripple_carry_adder", 6);
  TimingReport report = analyze_unit(nl);
  // clock == 0 derives the clock from the worst arrival, so the
  // critical endpoint sits exactly at slack 0 and nothing is negative.
  EXPECT_DOUBLE_EQ(report.clock, report.arrival_max);
  EXPECT_DOUBLE_EQ(report.wns, 0.0);
  EXPECT_DOUBLE_EQ(report.tns, 0.0);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    EXPECT_GE(report.slack[g], 0.0) << "gate " << g;
  }
}

TEST(StaTiming, ExplicitClockShiftsEndpointSlack) {
  netlist::Netlist nl("chain");
  netlist::Bus in = nl.add_input_bus("in", 1);
  GateId g1 = nl.bnot(in.bits[0]);
  GateId g2 = nl.bnot(g1);  // depth 2
  nl.add_output_bus("out", {g2});

  TimingOptions loose;
  loose.clock = 10.0;
  TimingReport r1 = analyze_unit(nl, loose);
  EXPECT_DOUBLE_EQ(r1.arrival[g2], 2.0);
  EXPECT_DOUBLE_EQ(r1.slack[g2], 8.0);
  EXPECT_DOUBLE_EQ(r1.wns, 8.0);
  EXPECT_DOUBLE_EQ(r1.tns, 0.0);  // nothing negative

  TimingOptions tight;
  tight.clock = 1.0;
  TimingReport r2 = analyze_unit(nl, tight);
  EXPECT_DOUBLE_EQ(r2.wns, -1.0);
  EXPECT_DOUBLE_EQ(r2.tns, -1.0);  // one endpoint, one violation
}

TEST(StaTiming, NegativeUnateGatesSwapRiseAndFall) {
  // One version with asymmetric arcs: rise 3, fall 1 through pin a.
  library::ResourceLibrary lib = library::parse_string(
      "resource inv adder 1 1 0.9\ntiming inv a 3 1 0\n");

  // Through a NOT chain the edges alternate: each stage's output rise
  // launches from the previous FALL, so the slow rise arc is never paid
  // twice in a row. A BUF chain pays it every stage.
  netlist::Netlist not_chain("not_chain");
  {
    netlist::Bus in = not_chain.add_input_bus("in", 1);
    GateId n1 = not_chain.bnot(in.bits[0]);
    GateId n2 = not_chain.bnot(n1);
    not_chain.add_output_bus("out", {n2});
  }
  netlist::Netlist buf_chain("buf_chain");
  {
    netlist::Bus in = buf_chain.add_input_bus("in", 1);
    GateId b1 = buf_chain.add_unary(netlist::GateKind::kBuf, in.bits[0]);
    GateId b2 = buf_chain.add_unary(netlist::GateKind::kBuf, b1);
    buf_chain.add_output_bus("out", {b2});
  }
  std::vector<library::VersionId> versions{rtl::kNoVersion, 0, 0};

  netlist::Topology not_topo(not_chain);
  TimingReport not_report =
      analyze(not_chain, not_topo,
              DelayModel::from_library(not_chain, versions, lib));
  // n1: rise = fall(in) + 3 = 3, fall = rise(in) + 1 = 1.
  // n2: rise = fall(n1) + 3 = 4, fall = rise(n1) + 1 = 4.
  EXPECT_DOUBLE_EQ(not_report.arrival.back(), 4.0);

  netlist::Topology buf_topo(buf_chain);
  TimingReport buf_report =
      analyze(buf_chain, buf_topo,
              DelayModel::from_library(buf_chain, versions, lib));
  // b2: rise = rise(b1) + 3 = 6 -- the slow edge compounds.
  EXPECT_DOUBLE_EQ(buf_report.arrival.back(), 6.0);
}

TEST(StaTiming, SlopeAddsLoadDependentDelay) {
  library::ResourceLibrary lib = library::parse_string(
      "resource loaded adder 1 1 0.9\ntiming loaded a 1 1 0.5\n");

  // g drives two consumers: delay through g = 1 + 0.5 * fanout(g) = 2.
  netlist::Netlist nl("loaded");
  netlist::Bus in = nl.add_input_bus("in", 1);
  GateId g = nl.add_unary(netlist::GateKind::kBuf, in.bits[0]);
  GateId c0 = nl.add_unary(netlist::GateKind::kBuf, g);
  GateId c1 = nl.add_unary(netlist::GateKind::kBuf, g);
  nl.add_output_bus("out", {c0, c1});
  std::vector<library::VersionId> versions{rtl::kNoVersion, 0, 0, 0};

  netlist::Topology topo(nl);
  TimingReport report =
      analyze(nl, topo, DelayModel::from_library(nl, versions, lib));
  EXPECT_DOUBLE_EQ(report.arrival[g], 2.0);
  // The consumers are output bits themselves (fanout 0): no load term.
  EXPECT_DOUBLE_EQ(report.arrival[c0], 3.0);
  EXPECT_DOUBLE_EQ(report.arrival[c1], 3.0);
}

TEST(StaTiming, FanoutFreeGatesAreConstrainedEndpoints) {
  netlist::Netlist nl = netlist_with_dangling_gate();
  TimingOptions options;
  options.clock = 5.0;
  TimingReport report = analyze_unit(nl, options);
  // The dangling XOR (gate 3: inputs 0, 1, AND 2, XOR 3) is constrained
  // like an endpoint: finite slack of clock - arrival = 4.
  EXPECT_DOUBLE_EQ(report.arrival[3], 1.0);
  EXPECT_DOUBLE_EQ(report.slack[3], 4.0);
  // ... but endpoint aggregates count primary-output bits only.
  EXPECT_EQ(report.endpoints, 1u);
}

TEST(StaTiming, HistogramCoversEveryEndpointOnce) {
  netlist::Netlist nl =
      circuits::component_by_name("carry_save_multiplier", 6);
  TimingOptions options;
  options.histogram_bins = 4;
  TimingReport report = analyze_unit(nl, options);
  ASSERT_EQ(report.histogram.size(), 4u);
  std::uint64_t total = 0;
  for (const HistogramBin& bin : report.histogram) {
    EXPECT_LE(bin.lo, bin.hi);
    total += bin.count;
  }
  EXPECT_EQ(total, report.endpoints);
  EXPECT_DOUBLE_EQ(report.histogram.front().lo, report.wns);
}

TEST(StaTiming, HistogramCollapsesToOneBinWhenSlacksAreEqual) {
  // A single endpoint: hi == lo, so the histogram collapses to one bin.
  netlist::Netlist nl("single");
  netlist::Bus in = nl.add_input_bus("in", 2);
  GateId g = nl.band(in.bits[0], in.bits[1]);
  nl.add_output_bus("out", {g});
  TimingReport report = analyze_unit(nl);
  ASSERT_EQ(report.histogram.size(), 1u);
  EXPECT_EQ(report.histogram[0].count, 1u);
}

TEST(StaTiming, TracebackPrefersPinZeroThenRise) {
  // Both fanins of the AND arrive at the same time; the documented
  // tie-break walks through pin 0 ("a") on a rising input edge.
  netlist::Netlist nl("tie");
  netlist::Bus a = nl.add_input_bus("a", 1);
  netlist::Bus b = nl.add_input_bus("b", 1);
  GateId g = nl.band(a.bits[0], b.bits[0]);
  nl.add_output_bus("out", {g});
  TimingOptions options;
  options.top_paths = 1;
  TimingReport report = analyze_unit(nl, options);
  ASSERT_EQ(report.paths.size(), 1u);
  const TimingPath& path = report.paths[0];
  EXPECT_EQ(path.endpoint, g);
  ASSERT_EQ(path.steps.size(), 2u);
  EXPECT_EQ(path.steps.front().gate, a.bits[0]);  // fanin0, not fanin1
  EXPECT_EQ(path.steps.back().gate, g);
  EXPECT_DOUBLE_EQ(path.steps.front().arrival, 0.0);
  EXPECT_DOUBLE_EQ(path.steps.back().arrival, 1.0);
}

TEST(StaTiming, PathsRankBySlackThenEndpointId) {
  // A shallow standalone output (depth 1) and two deep ones (depth 2)
  // in a separate cone: the deep endpoints are critical; among the
  // equally-slack pair the smaller gate id ranks first.
  netlist::Netlist nl("ranked");
  netlist::Bus in = nl.add_input_bus("in", 2);
  GateId shallow = nl.band(in.bits[0], in.bits[1]);
  GateId d1 = nl.bnot(in.bits[0]);
  GateId deep_a = nl.bnot(d1);
  GateId deep_b = nl.bor(d1, in.bits[1]);
  nl.add_output_bus("out", {shallow, deep_a, deep_b});

  TimingOptions options;
  options.top_paths = 2;
  TimingReport report = analyze_unit(nl, options);
  ASSERT_EQ(report.paths.size(), 2u);
  EXPECT_EQ(report.paths[0].endpoint, deep_a);  // slack ties, id wins
  EXPECT_EQ(report.paths[1].endpoint, deep_b);
  EXPECT_LE(report.paths[0].slack, report.paths[1].slack);
  // Every step's arrival is non-decreasing source -> endpoint.
  for (const TimingPath& path : report.paths) {
    for (std::size_t i = 1; i < path.steps.size(); ++i) {
      EXPECT_LE(path.steps[i - 1].arrival, path.steps[i].arrival);
    }
    EXPECT_DOUBLE_EQ(path.steps.back().arrival, path.arrival);
  }
}

TEST(StaTiming, ReportIsByteIdenticalAcrossJobs) {
  netlist::Netlist nl =
      circuits::component_by_name("kogge_stone_adder", 16);
  netlist::Topology topo(nl);
  DelayModel dm = DelayModel::unit(nl);
  TimingOptions options;
  options.top_paths = 5;

  parallel::set_global_jobs(1);
  TimingReport one = analyze(nl, topo, dm, options);
  parallel::set_global_jobs(8);
  TimingReport eight = analyze(nl, topo, dm, options);
  parallel::set_global_jobs(0);  // restore auto

  ASSERT_EQ(one.arrival.size(), eight.arrival.size());
  for (std::size_t g = 0; g < one.arrival.size(); ++g) {
    EXPECT_EQ(one.arrival[g], eight.arrival[g]);  // exact, not approximate
    EXPECT_EQ(one.slack[g], eight.slack[g]);
  }
  EXPECT_EQ(one.clock, eight.clock);
  EXPECT_EQ(one.wns, eight.wns);
  EXPECT_EQ(one.tns, eight.tns);
  ASSERT_EQ(one.paths.size(), eight.paths.size());
  for (std::size_t p = 0; p < one.paths.size(); ++p) {
    EXPECT_EQ(one.paths[p].endpoint, eight.paths[p].endpoint);
    ASSERT_EQ(one.paths[p].steps.size(), eight.paths[p].steps.size());
    for (std::size_t s = 0; s < one.paths[p].steps.size(); ++s) {
      EXPECT_EQ(one.paths[p].steps[s].gate, eight.paths[p].steps[s].gate);
      EXPECT_EQ(one.paths[p].steps[s].arrival,
                eight.paths[p].steps[s].arrival);
    }
  }
}

TEST(StaTiming, RejectsMismatchedDelayModel) {
  netlist::Netlist nl = circuits::component_by_name("ripple_carry_adder", 4);
  netlist::Netlist other = circuits::component_by_name("ripple_carry_adder", 8);
  netlist::Topology topo(nl);
  EXPECT_THROW(analyze(nl, topo, DelayModel::unit(other)), Error);
}

TEST(StaDelayModel, UnitModelGivesUnitArcsEverywhere) {
  netlist::Netlist nl = circuits::component_by_name("brent_kung_adder", 4);
  DelayModel dm = DelayModel::unit(nl);
  ASSERT_EQ(dm.gate_count(), nl.gate_count());
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    for (int pin = 0; pin < 2; ++pin) {
      const PinArc& arc = dm.arc(g, pin);
      EXPECT_DOUBLE_EQ(arc.rise, 1.0);
      EXPECT_DOUBLE_EQ(arc.fall, 1.0);
      EXPECT_DOUBLE_EQ(arc.slope, 0.0);
    }
  }
}

TEST(StaDelayModel, FromLibraryFallsBackToUnitArc) {
  library::ResourceLibrary lib = library::parse_string(
      "resource timed adder 1 1 0.9\ntiming timed a 2 3 0.25\n"
      "resource untimed adder 1 1 0.9\n");
  netlist::Netlist nl("two");
  netlist::Bus in = nl.add_input_bus("in", 1);
  GateId g0 = nl.bnot(in.bits[0]);  // version 0: timed pin a
  GateId g1 = nl.bnot(g0);          // version 1: no arcs at all
  GateId g2 = nl.bnot(g1);          // kNoVersion sentinel
  nl.add_output_bus("out", {g2});
  std::vector<library::VersionId> versions{rtl::kNoVersion, 0, 1,
                                           rtl::kNoVersion};

  DelayModel dm = DelayModel::from_library(nl, versions, lib);
  EXPECT_DOUBLE_EQ(dm.arc(g0, 0).rise, 2.0);
  EXPECT_DOUBLE_EQ(dm.arc(g0, 0).fall, 3.0);
  EXPECT_DOUBLE_EQ(dm.arc(g0, 0).slope, 0.25);
  // Pin b of the timed version is uncharacterized: unit arc.
  EXPECT_DOUBLE_EQ(dm.arc(g0, 1).rise, 1.0);
  EXPECT_DOUBLE_EQ(dm.arc(g1, 0).rise, 1.0);  // untimed version
  EXPECT_DOUBLE_EQ(dm.arc(g2, 0).rise, 1.0);  // kNoVersion

  std::vector<library::VersionId> wrong_size{0};
  EXPECT_THROW(DelayModel::from_library(nl, wrong_size, lib), Error);
}

TEST(StaSensitivity, JoinRanksBySensitivityThenSlackThenGate) {
  TimingReport report;
  report.slack = {5.0, 1.0, 2.0, 1.0};

  auto make = [](GateId gate, double sensitivity) {
    ser::GateSensitivity gs;
    gs.gate = gate;
    gs.result.logical_sensitivity = sensitivity;
    return gs;
  };
  // Gates 1 and 3 tie on sensitivity AND slack: gate id breaks the tie.
  std::vector<ser::GateSensitivity> ranking = {
      make(0, 0.2), make(1, 0.8), make(2, 0.8), make(3, 0.8)};

  std::vector<SensitivityRow> rows = join_sensitivity(ranking, report);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].gate, 1u);  // sens 0.8, slack 1
  EXPECT_EQ(rows[1].gate, 3u);  // sens 0.8, slack 1, larger id
  EXPECT_EQ(rows[2].gate, 2u);  // sens 0.8, slack 2
  EXPECT_EQ(rows[3].gate, 0u);  // sens 0.2
  EXPECT_DOUBLE_EQ(rows[0].slack, 1.0);
  EXPECT_DOUBLE_EQ(rows[3].sensitivity, 0.2);
}

TEST(StaSensitivity, JoinRejectsOutOfRangeGate) {
  TimingReport report;
  report.slack = {1.0};
  ser::GateSensitivity gs;
  gs.gate = 7;
  EXPECT_THROW(join_sensitivity({gs}, report), Error);
}

dfg::Graph add_mul_graph() {
  dfg::Graph g("toy");
  dfg::NodeId a = g.add_node("a", dfg::OpType::kAdd);
  dfg::NodeId m = g.add_node("m", dfg::OpType::kMul);
  g.add_edge(a, m);
  return g;
}

TEST(StaDesign, VersionsForFollowsPolicy) {
  dfg::Graph g = add_mul_graph();
  library::ResourceLibrary lib = library::paper_library();

  std::vector<library::VersionId> fast = versions_for(g, lib, "fastest");
  ASSERT_EQ(fast.size(), 2u);
  EXPECT_EQ(fast[0], lib.fastest(library::ResourceClass::kAdder));
  EXPECT_EQ(fast[1], lib.fastest(library::ResourceClass::kMultiplier));

  std::vector<library::VersionId> reliable =
      versions_for(g, lib, "most_reliable");
  EXPECT_EQ(reliable[0], lib.most_reliable(library::ResourceClass::kAdder));
  EXPECT_EQ(reliable[1],
            lib.most_reliable(library::ResourceClass::kMultiplier));

  EXPECT_THROW(versions_for(g, lib, "slowest"), Error);
}

TEST(StaDesign, ElaborateDesignTagsEveryGateWithItsVersion) {
  dfg::Graph g = add_mul_graph();
  library::ResourceLibrary lib = library::paper_library();
  rtl::Elaboration e = elaborate_design(g, lib, "most_reliable", 4);
  ASSERT_EQ(e.gate_version.size(), e.netlist.gate_count());
  // Every gate carries a valid provenance tag, and both picked versions
  // actually appear (the adder's gates and the multiplier's gates).
  bool saw_adder = false;
  bool saw_mult = false;
  for (library::VersionId v : e.gate_version) {
    ASSERT_LT(v, lib.size());
    saw_adder |= v == lib.most_reliable(library::ResourceClass::kAdder);
    saw_mult |= v == lib.most_reliable(library::ResourceClass::kMultiplier);
  }
  EXPECT_TRUE(saw_adder);
  EXPECT_TRUE(saw_mult);

  // The timed analysis end-to-end: elaborated design + library model.
  netlist::Topology topo(e.netlist);
  TimingReport report =
      analyze(e.netlist, topo,
              DelayModel::from_library(e.netlist, e.gate_version, lib));
  EXPECT_GT(report.arrival_max, 0.0);
  // Derived clock covers the worst arrival anywhere (including dangling
  // glue deeper than the outputs), so no endpoint can be negative.
  EXPECT_GE(report.wns, 0.0);
}

}  // namespace
}  // namespace rchls::sta

#include <gtest/gtest.h>
#include <algorithm>


#include "benchmarks/suite.hpp"
#include "bind/left_edge.hpp"
#include "bind/registers.hpp"
#include "dfg/timing.hpp"
#include "sched/asap_alap.hpp"
#include "sched/density.hpp"
#include "sched/list.hpp"
#include "util/error.hpp"

namespace rchls::bind {
namespace {

using library::ResourceLibrary;
using library::VersionId;

std::vector<VersionId> uniform_versions(const dfg::Graph& g,
                                        const ResourceLibrary& lib,
                                        const std::string& adder,
                                        const std::string& mult) {
  std::vector<VersionId> v(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    v[id] = library::class_of(g.node(id).op) ==
                    library::ResourceClass::kAdder
                ? lib.find(adder)
                : lib.find(mult);
  }
  return v;
}

std::vector<int> delays_of(const dfg::Graph& g, const ResourceLibrary& lib,
                           const std::vector<VersionId>& v) {
  std::vector<int> d(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    d[id] = lib.version(v[id]).delay;
  }
  return d;
}

TEST(LeftEdge, SerialChainSharesOneUnit) {
  dfg::Graph g("chain");
  dfg::NodeId prev = g.add_node("n0", dfg::OpType::kAdd);
  for (int i = 1; i < 5; ++i) {
    dfg::NodeId next = g.add_node("n" + std::to_string(i), dfg::OpType::kAdd);
    g.add_edge(prev, next);
    prev = next;
  }
  ResourceLibrary lib = library::paper_library();
  auto versions = uniform_versions(g, lib, "adder_2", "mult_2");
  auto delays = delays_of(g, lib, versions);
  auto s = sched::asap_schedule(g, delays);
  Binding b = left_edge_bind(g, lib, versions, s);
  EXPECT_EQ(b.instances.size(), 1u);
  EXPECT_DOUBLE_EQ(total_area(b, lib), 2.0);
}

TEST(LeftEdge, ParallelOpsNeedSeparateUnits) {
  dfg::Graph g("par");
  g.add_node("a", dfg::OpType::kAdd);
  g.add_node("b", dfg::OpType::kAdd);
  g.add_node("c", dfg::OpType::kAdd);
  ResourceLibrary lib = library::paper_library();
  auto versions = uniform_versions(g, lib, "adder_1", "mult_1");
  auto delays = delays_of(g, lib, versions);
  auto s = sched::asap_schedule(g, delays);  // all start at 0
  Binding b = left_edge_bind(g, lib, versions, s);
  EXPECT_EQ(b.instances.size(), 3u);
  EXPECT_DOUBLE_EQ(total_area(b, lib), 3.0);
}

TEST(LeftEdge, DistinctVersionsNeverShare) {
  dfg::Graph g("two");
  dfg::NodeId a = g.add_node("a", dfg::OpType::kAdd);
  dfg::NodeId b = g.add_node("b", dfg::OpType::kAdd);
  g.add_edge(a, b);
  ResourceLibrary lib = library::paper_library();
  std::vector<VersionId> versions{lib.find("adder_1"), lib.find("adder_2")};
  auto delays = delays_of(g, lib, versions);
  auto s = sched::asap_schedule(g, delays);
  Binding bind = left_edge_bind(g, lib, versions, s);
  EXPECT_EQ(bind.instances.size(), 2u);
  auto hist = instance_histogram(bind, lib);
  EXPECT_EQ(hist[lib.find("adder_1")], 1);
  EXPECT_EQ(hist[lib.find("adder_2")], 1);
}

TEST(LeftEdge, MatchesPeakUsageOnBenchmarks) {
  ResourceLibrary lib = library::paper_library();
  for (const auto& name : benchmarks::all_names()) {
    auto g = benchmarks::by_name(name);
    auto versions = uniform_versions(g, lib, "adder_2", "mult_2");
    auto delays = delays_of(g, lib, versions);
    int lmin = dfg::asap_latency(g, delays);
    std::vector<int> groups(g.node_count());
    for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
      groups[id] = g.node(id).op == dfg::OpType::kMul ? 1 : 0;
    }
    auto s = sched::density_schedule(g, delays, lmin + 1, groups);
    Binding b = left_edge_bind(g, lib, versions, s);
    auto peak = sched::peak_usage(g, delays, s, groups, 2);
    // Left-edge is optimal for intervals: instance count equals the peak.
    auto hist = instance_histogram(b, lib);
    EXPECT_EQ(hist[lib.find("adder_2")], peak[0]) << name;
    EXPECT_EQ(hist[lib.find("mult_2")], peak[1]) << name;
  }
}

TEST(LeftEdge, RejectsWrongClassAssignment) {
  dfg::Graph g("t");
  g.add_node("a", dfg::OpType::kAdd);
  ResourceLibrary lib = library::paper_library();
  std::vector<VersionId> versions{lib.find("mult_1")};
  sched::Schedule s;
  s.start = {0};
  s.latency = 2;
  EXPECT_THROW(left_edge_bind(g, lib, versions, s), Error);
}

TEST(ValidateBinding, CatchesTampering) {
  dfg::Graph g("t");
  dfg::NodeId a = g.add_node("a", dfg::OpType::kAdd);
  dfg::NodeId b = g.add_node("b", dfg::OpType::kAdd);
  g.add_edge(a, b);
  ResourceLibrary lib = library::paper_library();
  std::vector<VersionId> versions{lib.find("adder_2"), lib.find("adder_2")};
  auto delays = delays_of(g, lib, versions);
  auto s = sched::asap_schedule(g, delays);
  Binding bind = left_edge_bind(g, lib, versions, s);

  Binding overlap = bind;
  // Force both ops onto one instance at the same start time.
  sched::Schedule clash = s;
  clash.start[b] = s.start[a];
  clash.latency = 1;
  if (overlap.instances.size() == 1) {
    EXPECT_THROW(validate_binding(g, lib, versions, clash, overlap),
                 ValidationError);
  }

  Binding missing = bind;
  missing.instances[0].ops.clear();
  EXPECT_THROW(validate_binding(g, lib, versions, s, missing),
               ValidationError);
}

TEST(Registers, ChainNeedsOneRegister) {
  dfg::Graph g("chain");
  dfg::NodeId prev = g.add_node("n0", dfg::OpType::kAdd);
  for (int i = 1; i < 6; ++i) {
    dfg::NodeId next = g.add_node("n" + std::to_string(i), dfg::OpType::kAdd);
    g.add_edge(prev, next);
    prev = next;
  }
  std::vector<int> delays(g.node_count(), 1);
  auto s = sched::asap_schedule(g, delays);
  EXPECT_EQ(register_count(g, delays, s), 1);
}

TEST(Registers, ParallelValuesNeedParallelRegisters) {
  dfg::Graph g("par");
  std::vector<dfg::NodeId> srcs;
  for (int i = 0; i < 4; ++i) {
    srcs.push_back(g.add_node("s" + std::to_string(i), dfg::OpType::kAdd));
  }
  dfg::NodeId join1 = g.add_node("j1", dfg::OpType::kAdd);
  dfg::NodeId join2 = g.add_node("j2", dfg::OpType::kAdd);
  dfg::NodeId join3 = g.add_node("j3", dfg::OpType::kAdd);
  g.add_edge(srcs[0], join1);
  g.add_edge(srcs[1], join1);
  g.add_edge(srcs[2], join2);
  g.add_edge(srcs[3], join2);
  g.add_edge(join1, join3);
  g.add_edge(join2, join3);
  std::vector<int> delays(g.node_count(), 1);
  auto s = sched::asap_schedule(g, delays);
  // Four source values live simultaneously after step 0.
  EXPECT_GE(register_count(g, delays, s), 4);
}

TEST(Registers, AssignmentIsConflictFree) {
  auto g = benchmarks::fir16();
  std::vector<int> delays(g.node_count(), 1);
  auto s = sched::asap_schedule(g, delays);
  auto reg = register_assignment(g, delays, s);
  auto lts = value_lifetimes(g, delays, s);
  // Same register => disjoint lifetimes.
  for (std::size_t i = 0; i < lts.size(); ++i) {
    for (std::size_t j = i + 1; j < lts.size(); ++j) {
      if (reg[lts[i].producer] != reg[lts[j].producer]) continue;
      bool disjoint =
          lts[i].end <= lts[j].begin || lts[j].end <= lts[i].begin;
      EXPECT_TRUE(disjoint)
          << g.node(lts[i].producer).name << " and "
          << g.node(lts[j].producer).name << " share a register";
    }
  }
  // Count matches the packing.
  EXPECT_EQ(register_count(g, delays, s),
            1 + *std::max_element(reg.begin(), reg.end()));
}

TEST(Registers, LifetimesSpanToLastConsumer) {
  dfg::Graph g("t");
  dfg::NodeId a = g.add_node("a", dfg::OpType::kAdd);
  dfg::NodeId b = g.add_node("b", dfg::OpType::kAdd);
  dfg::NodeId c = g.add_node("c", dfg::OpType::kAdd);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, c);
  std::vector<int> delays{1, 1, 1};
  auto s = sched::asap_schedule(g, delays);  // a@0, b@1, c@2
  auto lts = value_lifetimes(g, delays, s);
  EXPECT_EQ(lts[a].begin, 1);
  EXPECT_EQ(lts[a].end, 3);  // consumed by c at step 2
  EXPECT_EQ(lts[c].end, lts[c].begin + 1);  // sink holds one step
}

}  // namespace
}  // namespace rchls::bind

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/json.hpp"

namespace rchls::json {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(std::size_t{7}).dump(), "7");
  EXPECT_EQ(Value(-3).dump(), "-3");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(Json, DoublesUseShortestRoundTrip) {
  EXPECT_EQ(Value(0.5).dump(), "0.5");
  EXPECT_EQ(Value(0.1).dump(), "0.1");  // not 0.1000000000000000055...
  EXPECT_EQ(Value(1e21).dump(), "1e+21");
  // Integral doubles keep a floating marker or render exactly.
  EXPECT_EQ(Value(2.0).dump(), "2");
}

TEST(Json, NonFiniteDoublesAreNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Value("a\"b\\c").dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Value("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Value(std::string("\x01", 1)).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  auto v = Value::object();
  v.set("zeta", 1).set("alpha", 2);
  EXPECT_EQ(v.dump(0), "{\"zeta\": 1, \"alpha\": 2}");
}

TEST(Json, NestedPrettyPrinting) {
  auto inner = Value::array();
  inner.push(1).push(2);
  auto v = Value::object();
  v.set("xs", std::move(inner)).set("empty", Value::array());
  EXPECT_EQ(v.dump(2),
            "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}");
}

TEST(Json, EmptyAggregates) {
  EXPECT_EQ(Value::object().dump(), "{}");
  EXPECT_EQ(Value::array().dump(), "[]");
}

TEST(Json, SetAndPushRejectWrongKinds) {
  // Silent data loss (set on null dumping "null") must be impossible.
  Value null_value;
  EXPECT_THROW(null_value.set("k", 1), Error);
  EXPECT_THROW(Value(3).push(1), Error);
  auto obj = Value::object();
  EXPECT_THROW(obj.push(1), Error);
  auto arr = Value::array();
  EXPECT_THROW(arr.set("k", 1), Error);
}

// ------------------------------------------------------------------ parser

TEST(JsonParse, ScalarsRoundTrip) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-3").as_int(), -3);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse("  7 \n").as_int(), 7);  // surrounding whitespace ok
}

TEST(JsonParse, NumbersWithoutFloatMarkersAreIntegers) {
  EXPECT_TRUE(parse("8").is_int());
  EXPECT_TRUE(parse("8.0").is_double());
  EXPECT_TRUE(parse("8e0").is_double());
  EXPECT_EQ(parse("8.0").as_double(), 8.0);
  // as_double accepts integers: JSON does not distinguish 8 from 8.0.
  EXPECT_EQ(parse("8").as_double(), 8.0);
}

TEST(JsonParse, NegativeZeroStaysADouble) {
  // dump(-0.0) == "-0"; reading that back as int 0 would re-encode as
  // "0" and break the encode/decode fixed point the wire relies on.
  EXPECT_TRUE(parse("-0").is_double());
  EXPECT_TRUE(std::signbit(parse("-0").as_double()));
  EXPECT_EQ(parse(Value(-0.0).dump()).dump(), "-0");
  EXPECT_TRUE(parse("0").is_int());  // positive zero is a plain int
}

TEST(JsonParse, DoublesRoundTripBitForBit) {
  for (double d : {0.1, 0.5, 1e21, 0.78943, 2.2250738585072014e-308,
                   123456.789e-7, -0.0,
                   // Renders in FIXED notation ("12345678901234567168"):
                   // overflows int64, must fall back to the double path.
                   1.2345678901234567e19, -9.87654321e18}) {
    EXPECT_EQ(parse(Value(d).dump()).as_double(), d);
    EXPECT_EQ(parse(Value(d).dump()).dump(), Value(d).dump());
  }
  EXPECT_EQ(parse("1e+21").as_double(), 1e21);
}

TEST(JsonParse, StringsUnescape) {
  EXPECT_EQ(parse("\"a\\\"b\\\\c\"").as_string(), "a\"b\\c");
  EXPECT_EQ(parse("\"line\\nbreak\\ttab\"").as_string(), "line\nbreak\ttab");
  EXPECT_EQ(parse("\"\\u0001\"").as_string(), std::string("\x01", 1));
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xc3\xa9");    // é as UTF-8
  EXPECT_EQ(parse("\"\\ud83d\\ude00\"").as_string(),          // surrogate pair
            "\xf0\x9f\x98\x80");
  EXPECT_EQ(parse("\"\\/\"").as_string(), "/");
}

TEST(JsonParse, AggregatesPreserveOrder) {
  Value v = parse("{\"b\": [1, 2, {\"x\": null}], \"a\": 3}");
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.at("a").as_int(), 3);
  ASSERT_EQ(v.at("b").items().size(), 3u);
  EXPECT_TRUE(v.at("b").items()[2].at("x").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), Error);
}

TEST(JsonParse, DumpParseDumpIsAFixedPoint) {
  auto inner = Value::array();
  inner.push(1).push(0.25).push("s\n").push(Value());
  auto v = Value::object();
  v.set("xs", std::move(inner)).set("flag", true).set("n", -7);
  for (int indent : {0, 2, 4}) {
    EXPECT_EQ(parse(v.dump(indent)).dump(indent), v.dump(indent));
  }
}

TEST(JsonParse, MalformedInputThrowsWithOffset) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "tru", "nul", "\"unterminated",
        "01x", "1 2", "[1,]", "{\"a\":1,}", "\"\\q\"", "\"\\ud800\"",
        "{\"a\":1} trailing", "\"raw\ncontrol\""}) {
    EXPECT_THROW(parse(bad), Error) << "input: " << bad;
  }
  try {
    parse("[1, x]");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(JsonParse, DeepNestingIsBoundedNotFatal) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(parse(deep), Error);
}

}  // namespace
}  // namespace rchls::json

#include <gtest/gtest.h>

#include <limits>

#include "util/error.hpp"
#include "util/json.hpp"

namespace rchls::json {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(std::size_t{7}).dump(), "7");
  EXPECT_EQ(Value(-3).dump(), "-3");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(Json, DoublesUseShortestRoundTrip) {
  EXPECT_EQ(Value(0.5).dump(), "0.5");
  EXPECT_EQ(Value(0.1).dump(), "0.1");  // not 0.1000000000000000055...
  EXPECT_EQ(Value(1e21).dump(), "1e+21");
  // Integral doubles keep a floating marker or render exactly.
  EXPECT_EQ(Value(2.0).dump(), "2");
}

TEST(Json, NonFiniteDoublesAreNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Value("a\"b\\c").dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Value("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Value(std::string("\x01", 1)).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  auto v = Value::object();
  v.set("zeta", 1).set("alpha", 2);
  EXPECT_EQ(v.dump(0), "{\"zeta\": 1, \"alpha\": 2}");
}

TEST(Json, NestedPrettyPrinting) {
  auto inner = Value::array();
  inner.push(1).push(2);
  auto v = Value::object();
  v.set("xs", std::move(inner)).set("empty", Value::array());
  EXPECT_EQ(v.dump(2),
            "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}");
}

TEST(Json, EmptyAggregates) {
  EXPECT_EQ(Value::object().dump(), "{}");
  EXPECT_EQ(Value::array().dump(), "[]");
}

TEST(Json, SetAndPushRejectWrongKinds) {
  // Silent data loss (set on null dumping "null") must be impossible.
  Value null_value;
  EXPECT_THROW(null_value.set("k", 1), Error);
  EXPECT_THROW(Value(3).push(1), Error);
  auto obj = Value::object();
  EXPECT_THROW(obj.push(1), Error);
  auto arr = Value::array();
  EXPECT_THROW(arr.set("k", 1), Error);
}

}  // namespace
}  // namespace rchls::json

#include <gtest/gtest.h>

#include "dfg/generate.hpp"
#include "dfg/io.hpp"
#include "util/error.hpp"

namespace rchls::dfg {
namespace {

constexpr GraphShape kAllShapes[] = {
    GraphShape::kLayered, GraphShape::kChain, GraphShape::kFanoutTree,
    GraphShape::kButterfly, GraphShape::kFilter};

TEST(Generate, ProducesRequestedNodeCount) {
  GeneratorConfig cfg;
  cfg.num_nodes = 57;
  Graph g = generate_random(cfg);
  EXPECT_EQ(g.node_count(), 57u);
  g.validate();
}

TEST(Generate, DeterministicPerSeed) {
  GeneratorConfig cfg;
  cfg.num_nodes = 40;
  cfg.seed = 9;
  Graph a = generate_random(cfg);
  Graph b = generate_random(cfg);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (NodeId id = 0; id < a.node_count(); ++id) {
    EXPECT_EQ(a.node(id).op, b.node(id).op);
    EXPECT_EQ(a.successors(id), b.successors(id));
  }
}

TEST(Generate, DifferentSeedsDiffer) {
  GeneratorConfig a;
  a.num_nodes = 40;
  a.seed = 1;
  GeneratorConfig b = a;
  b.seed = 2;
  Graph ga = generate_random(a);
  Graph gb = generate_random(b);
  bool differ = ga.edge_count() != gb.edge_count();
  for (NodeId id = 0; !differ && id < ga.node_count(); ++id) {
    differ = ga.node(id).op != gb.node(id).op ||
             ga.successors(id) != gb.successors(id);
  }
  EXPECT_TRUE(differ);
}

TEST(Generate, MulFractionRoughlyHonored) {
  GeneratorConfig cfg;
  cfg.num_nodes = 2000;
  cfg.mul_fraction = 0.4;
  Graph g = generate_random(cfg);
  double frac =
      static_cast<double>(g.count_ops(OpType::kMul)) / g.node_count();
  EXPECT_NEAR(frac, 0.4, 0.05);
}

TEST(Generate, ZeroMulFractionMeansNoMultiplies) {
  GeneratorConfig cfg;
  cfg.num_nodes = 100;
  cfg.mul_fraction = 0.0;
  Graph g = generate_random(cfg);
  EXPECT_EQ(g.count_ops(OpType::kMul), 0u);
}

TEST(Generate, EveryNonSourceHasAPredecessor) {
  GeneratorConfig cfg;
  cfg.num_nodes = 120;
  cfg.layer_width = 3.0;
  Graph g = generate_random(cfg);
  // All sources must sit in the first layer, i.e. have the lowest ids
  // (layered construction guarantees later layers get predecessors).
  auto sources = g.sources();
  EXPECT_FALSE(sources.empty());
  EXPECT_LT(sources.size(), g.node_count());
}

// Every shape is a pure function of its config: two calls agree byte
// for byte through dfg::to_text. (The cross-process half of the pin is
// the golden capture below, which was produced by a separate process.)
TEST(Generate, EveryShapeToTextDeterministic) {
  for (GraphShape shape : kAllShapes) {
    GeneratorConfig cfg;
    cfg.num_nodes = 37;
    cfg.seed = 11;
    cfg.layer_width = 3.0;
    cfg.shape = shape;
    EXPECT_EQ(to_text(generate_random(cfg)), to_text(generate_random(cfg)))
        << to_string(shape);
  }
}

// Golden captures pin the generator's output for one config per shape
// FOREVER: the workload corpus (docs/workloads.md) addresses cases by
// (shape, seed), so changing what an existing seed produces silently
// invalidates every recorded corpus. If this test fails, do not update
// the strings -- add a new shape or config field instead.
TEST(Generate, GoldenCapturePerShape) {
  auto text_of = [](GraphShape shape) {
    GeneratorConfig cfg;
    cfg.num_nodes = 11;
    cfg.seed = 7;
    cfg.layer_width = 3.0;
    cfg.shape = shape;
    return to_text(generate_random(cfg));
  };
  EXPECT_EQ(text_of(GraphShape::kLayered),
            "dfg random_11\n"
            "node n0 add\nnode n1 add\nnode n2 mul\nnode n3 sub\n"
            "node n4 add\nnode n5 add\nnode n6 sub\nnode n7 mul\n"
            "node n8 add\nnode n9 mul\nnode n10 sub\n"
            "edge n0 n4\nedge n0 n5\nedge n0 n9\nedge n1 n3\n"
            "edge n1 n5\nedge n1 n10\nedge n2 n3\nedge n2 n6\n"
            "edge n2 n8\nedge n3 n8\nedge n3 n9\nedge n6 n7\n"
            "edge n8 n10\n");
  EXPECT_EQ(text_of(GraphShape::kChain),
            "dfg chain_11\n"
            "node n0 add\nnode n1 add\nnode n2 add\nnode n3 mul\n"
            "node n4 mul\nnode n5 sub\nnode n6 add\nnode n7 add\n"
            "node n8 add\nnode n9 mul\nnode n10 sub\n"
            "edge n0 n1\nedge n1 n2\nedge n2 n3\nedge n3 n4\n"
            "edge n4 n5\nedge n5 n6\nedge n6 n7\nedge n7 n8\n"
            "edge n8 n9\nedge n9 n10\n");
  EXPECT_EQ(text_of(GraphShape::kFanoutTree),
            "dfg fanout_tree_11\n"
            "node n0 add\nnode n1 add\nnode n2 add\nnode n3 mul\n"
            "node n4 mul\nnode n5 sub\nnode n6 add\nnode n7 add\n"
            "node n8 add\nnode n9 mul\nnode n10 sub\n"
            "edge n0 n1\nedge n0 n2\nedge n1 n3\nedge n1 n4\n"
            "edge n2 n5\nedge n2 n6\nedge n3 n7\nedge n3 n8\n"
            "edge n4 n9\nedge n4 n10\n");
  EXPECT_EQ(text_of(GraphShape::kButterfly),
            "dfg butterfly_11\n"
            "node n0 add\nnode n1 add\nnode n2 add\nnode n3 mul\n"
            "node n4 mul\nnode n5 sub\nnode n6 add\nnode n7 add\n"
            "node n8 add\nnode n9 mul\nnode n10 sub\n"
            "edge n0 n3\nedge n0 n5\nedge n1 n3\nedge n1 n4\n"
            "edge n2 n4\nedge n2 n5\nedge n3 n6\nedge n3 n7\n"
            "edge n4 n7\nedge n4 n8\nedge n5 n6\nedge n5 n8\n"
            "edge n6 n9\nedge n7 n9\nedge n7 n10\nedge n8 n10\n");
  EXPECT_EQ(text_of(GraphShape::kFilter),
            "dfg filter_11\n"
            "node pre0 add\nnode pre1 add\nnode pre2 add\nnode pre3 add\n"
            "node mul0 mul\nnode mul1 mul\nnode mul2 mul\nnode mul3 mul\n"
            "node acc0 add\nnode acc1 add\nnode acc2 add\n"
            "edge pre0 mul0\nedge pre1 mul1\nedge pre2 mul2\n"
            "edge pre3 mul3\nedge mul0 acc0\nedge mul1 acc0\n"
            "edge mul2 acc1\nedge mul3 acc2\nedge acc0 acc1\n"
            "edge acc1 acc2\n");
}

TEST(Generate, ChainIsASingleDependenceChain) {
  GeneratorConfig cfg;
  cfg.num_nodes = 25;
  cfg.shape = GraphShape::kChain;
  Graph g = generate_random(cfg);
  EXPECT_EQ(g.edge_count(), 24u);
  for (NodeId id = 0; id + 1 < g.node_count(); ++id) {
    ASSERT_EQ(g.successors(id).size(), 1u);
    EXPECT_EQ(g.successors(id)[0], id + 1);
  }
}

TEST(Generate, FanoutTreeRespectsArity) {
  GeneratorConfig cfg;
  cfg.num_nodes = 40;
  cfg.shape = GraphShape::kFanoutTree;
  cfg.max_fanout = 3;
  Graph g = generate_random(cfg);
  EXPECT_EQ(g.edge_count(), 39u);  // a tree: every non-root has one parent
  for (NodeId id = 0; id < g.node_count(); ++id) {
    EXPECT_LE(g.successors(id).size(), 3u);
    EXPECT_LE(g.predecessors(id).size(), 1u);
  }
}

TEST(Generate, FilterShapeMatchesTemplate) {
  GeneratorConfig cfg;
  cfg.num_nodes = 23;  // t = 8: the fir16 tap count
  cfg.shape = GraphShape::kFilter;
  Graph g = generate_random(cfg);
  EXPECT_EQ(g.node_count(), 23u);
  EXPECT_EQ(g.count_ops(OpType::kMul), 8u);
  EXPECT_EQ(g.sources().size(), 8u);  // the pre-adders
  EXPECT_EQ(g.sinks().size(), 1u);    // the accumulation tail
}

TEST(Generate, LayeredMaxFanoutBiasesHubsDown) {
  GeneratorConfig cfg;
  cfg.num_nodes = 300;
  cfg.seed = 3;
  auto max_fanout_of = [](const Graph& g) {
    std::size_t m = 0;
    for (NodeId id = 0; id < g.node_count(); ++id) {
      m = std::max(m, g.successors(id).size());
    }
    return m;
  };
  Graph unbounded = generate_random(cfg);
  cfg.max_fanout = 2;
  Graph capped = generate_random(cfg);
  EXPECT_LT(max_fanout_of(capped), max_fanout_of(unbounded));
  capped.validate();
}

TEST(Generate, RejectsBadConfig) {
  GeneratorConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_THROW(generate_random(cfg), Error);
  cfg.num_nodes = 5;
  cfg.layer_width = 0.5;
  EXPECT_THROW(generate_random(cfg), Error);
  cfg.layer_width = 2.0;
  cfg.mul_fraction = 1.5;
  EXPECT_THROW(generate_random(cfg), Error);
}

}  // namespace
}  // namespace rchls::dfg

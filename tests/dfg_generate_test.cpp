#include <gtest/gtest.h>

#include "dfg/generate.hpp"
#include "util/error.hpp"

namespace rchls::dfg {
namespace {

TEST(Generate, ProducesRequestedNodeCount) {
  GeneratorConfig cfg;
  cfg.num_nodes = 57;
  Graph g = generate_random(cfg);
  EXPECT_EQ(g.node_count(), 57u);
  g.validate();
}

TEST(Generate, DeterministicPerSeed) {
  GeneratorConfig cfg;
  cfg.num_nodes = 40;
  cfg.seed = 9;
  Graph a = generate_random(cfg);
  Graph b = generate_random(cfg);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (NodeId id = 0; id < a.node_count(); ++id) {
    EXPECT_EQ(a.node(id).op, b.node(id).op);
    EXPECT_EQ(a.successors(id), b.successors(id));
  }
}

TEST(Generate, DifferentSeedsDiffer) {
  GeneratorConfig a;
  a.num_nodes = 40;
  a.seed = 1;
  GeneratorConfig b = a;
  b.seed = 2;
  Graph ga = generate_random(a);
  Graph gb = generate_random(b);
  bool differ = ga.edge_count() != gb.edge_count();
  for (NodeId id = 0; !differ && id < ga.node_count(); ++id) {
    differ = ga.node(id).op != gb.node(id).op ||
             ga.successors(id) != gb.successors(id);
  }
  EXPECT_TRUE(differ);
}

TEST(Generate, MulFractionRoughlyHonored) {
  GeneratorConfig cfg;
  cfg.num_nodes = 2000;
  cfg.mul_fraction = 0.4;
  Graph g = generate_random(cfg);
  double frac =
      static_cast<double>(g.count_ops(OpType::kMul)) / g.node_count();
  EXPECT_NEAR(frac, 0.4, 0.05);
}

TEST(Generate, ZeroMulFractionMeansNoMultiplies) {
  GeneratorConfig cfg;
  cfg.num_nodes = 100;
  cfg.mul_fraction = 0.0;
  Graph g = generate_random(cfg);
  EXPECT_EQ(g.count_ops(OpType::kMul), 0u);
}

TEST(Generate, EveryNonSourceHasAPredecessor) {
  GeneratorConfig cfg;
  cfg.num_nodes = 120;
  cfg.layer_width = 3.0;
  Graph g = generate_random(cfg);
  // All sources must sit in the first layer, i.e. have the lowest ids
  // (layered construction guarantees later layers get predecessors).
  auto sources = g.sources();
  EXPECT_FALSE(sources.empty());
  EXPECT_LT(sources.size(), g.node_count());
}

TEST(Generate, RejectsBadConfig) {
  GeneratorConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_THROW(generate_random(cfg), Error);
  cfg.num_nodes = 5;
  cfg.layer_width = 0.5;
  EXPECT_THROW(generate_random(cfg), Error);
  cfg.layer_width = 2.0;
  cfg.mul_fraction = 1.5;
  EXPECT_THROW(generate_random(cfg), Error);
}

}  // namespace
}  // namespace rchls::dfg

#include <gtest/gtest.h>

#include "circuits/multipliers.hpp"
#include "netlist/sim.hpp"
#include "netlist/stats.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rchls::circuits {
namespace {

using netlist::Netlist;
using netlist::Simulator;

using MulGen = Netlist (*)(int);

struct MulCase {
  const char* name;
  MulGen gen;
  int width;
};

class MultiplierFunctional : public ::testing::TestWithParam<MulCase> {};

TEST_P(MultiplierFunctional, MatchesReferenceArithmetic) {
  const auto& param = GetParam();
  Netlist nl = param.gen(param.width);
  Simulator sim(nl);
  int w = param.width;
  std::uint64_t mask = (w == 64) ? ~0ULL : ((1ULL << w) - 1);

  auto check = [&](std::uint64_t a, std::uint64_t b) {
    a &= mask;
    b &= mask;
    auto out = sim.run_scalar({a, b});
    unsigned __int128 full =
        static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
    std::uint64_t prod_mask =
        (2 * w >= 64) ? ~0ULL : ((1ULL << (2 * w)) - 1);
    EXPECT_EQ(out[0], static_cast<std::uint64_t>(full) & prod_mask)
        << param.name << " width " << w << " a=" << a << " b=" << b;
  };

  if (w <= 4) {
    for (std::uint64_t a = 0; a <= mask; ++a) {
      for (std::uint64_t b = 0; b <= mask; ++b) check(a, b);
    }
  } else {
    Rng rng(77 + static_cast<std::uint64_t>(w));
    check(0, 0);
    check(mask, mask);
    check(1, mask);
    for (int i = 0; i < 150; ++i) check(rng.next_u64(), rng.next_u64());
  }
}

std::vector<MulCase> mul_cases() {
  std::vector<MulCase> cases;
  for (int w : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    cases.push_back({"carry_save", &carry_save_multiplier, w});
    cases.push_back({"leapfrog", &leapfrog_multiplier, w});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWidths, MultiplierFunctional,
                         ::testing::ValuesIn(mul_cases()),
                         [](const auto& info) {
                           return std::string(info.param.name) + "_w" +
                                  std::to_string(info.param.width);
                         });

TEST(Multipliers, LeapfrogIsFasterAndBigger) {
  auto csa = netlist::compute_stats(carry_save_multiplier(16));
  auto leap = netlist::compute_stats(leapfrog_multiplier(16));
  // Wallace tree + Kogge-Stone merge is much shallower than the linear
  // array with ripple merge...
  EXPECT_LT(leap.depth, 0.6 * csa.depth);
  // ...at higher gate cost.
  EXPECT_GT(leap.area, csa.area);
}

TEST(Multipliers, ProductBusIsTwiceTheWidth) {
  Netlist nl = carry_save_multiplier(7);
  EXPECT_EQ(nl.output_bus("prod").bits.size(), 14u);
}

TEST(Multipliers, RejectsBadWidths) {
  EXPECT_THROW(carry_save_multiplier(0), Error);
  EXPECT_THROW(leapfrog_multiplier(33), Error);
}

}  // namespace
}  // namespace rchls::circuits

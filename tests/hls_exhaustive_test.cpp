#include <gtest/gtest.h>

#include "benchmarks/suite.hpp"
#include "dfg/generate.hpp"
#include "hls/exhaustive.hpp"
#include "hls/find_design.hpp"
#include "util/error.hpp"

namespace rchls::hls {
namespace {

using library::ResourceLibrary;

TEST(Exhaustive, OracleRespectsBounds) {
  auto g = benchmarks::fig4_example();
  ResourceLibrary lib = library::paper_library();
  Design d = exhaustive_find_design(g, lib, 6, 4.0);
  validate_design(d, g, lib);
  EXPECT_LE(d.latency, 6);
  EXPECT_LE(d.area, 4.0 + 1e-9);
}

TEST(Exhaustive, HeuristicNeverBeatsOracle) {
  ResourceLibrary lib = library::paper_library();
  struct Case {
    const char* name;
    int ld;
    double ad;
  };
  for (const Case& c :
       {Case{"fig4_example", 5, 4.0}, Case{"fig4_example", 6, 4.0},
        Case{"fig4_example", 8, 6.0}, Case{"diffeq", 6, 12.0},
        Case{"diffeq", 8, 8.0}, Case{"diffeq", 10, 6.0}}) {
    auto g = benchmarks::by_name(c.name);
    Design oracle = exhaustive_find_design(g, lib, c.ld, c.ad);
    try {
      Design heur = find_design(g, lib, c.ld, c.ad);
      EXPECT_LE(heur.reliability, oracle.reliability + 1e-12)
          << c.name << " (" << c.ld << ", " << c.ad << ")";
    } catch (const NoSolutionError&) {
      // The heuristic may fail where the oracle succeeds; never vice
      // versa for these cases (oracle succeeded above).
    }
  }
}

TEST(Exhaustive, OracleAgreesWithHeuristicWhenUnconstrained) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  Design oracle = exhaustive_find_design(g, lib, 50, 100.0);
  Design heur = find_design(g, lib, 50, 100.0);
  EXPECT_NEAR(oracle.reliability, heur.reliability, 1e-12);
}

TEST(Exhaustive, ThrowsWhenInfeasible) {
  auto g = benchmarks::fig4_example();
  ResourceLibrary lib = library::paper_library();
  EXPECT_THROW(exhaustive_find_design(g, lib, 3, 100.0), NoSolutionError);
  EXPECT_THROW(exhaustive_find_design(g, lib, 10, 0.5), NoSolutionError);
}

TEST(Exhaustive, GuardsAssignmentSpace) {
  dfg::GeneratorConfig cfg;
  cfg.num_nodes = 40;
  auto g = dfg::generate_random(cfg);
  ResourceLibrary lib = library::paper_library();
  ExhaustiveOptions opts;
  opts.max_assignments = 1000;
  EXPECT_THROW(exhaustive_find_design(g, lib, 50, 100.0, opts), Error);
}

}  // namespace
}  // namespace rchls::hls

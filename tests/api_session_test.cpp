// Tests of the api facade: cache-key contract, hit/miss semantics, the
// determinism guarantee (cached results byte-identical to cold runs at
// any worker count), and the delta-recompute property (editing one
// action of a multi-action scenario recomputes only that action --
// asserted through Session cache stats, per the PR acceptance
// criteria).
#include <gtest/gtest.h>

#include "api/cache.hpp"
#include "api/session.hpp"
#include "benchmarks/suite.hpp"
#include "hls/find_design.hpp"
#include "library/resource.hpp"
#include "parallel/config.hpp"
#include "scenario/parse.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace rchls::api {
namespace {

// Restores the global worker count after a test that changes it.
class JobsGuard {
 public:
  JobsGuard() : saved_(parallel::global_config().jobs) {}
  ~JobsGuard() { parallel::global_config().jobs = saved_; }

 private:
  std::size_t saved_;
};

InjectRequest small_inject() {
  InjectRequest req;
  req.component = "ripple_carry_adder";
  req.width = 4;
  req.trials = 128;
  req.seed = 3;
  return req;
}

FindDesignRequest small_find_design() {
  FindDesignRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.latency_bound = 6;
  req.area_bound = 8.0;
  return req;
}

// ------------------------------------------------------------- cache key

TEST(ApiCacheKey, EqualRequestsShareAKey) {
  CacheKey a = key_of(small_find_design());
  CacheKey b = key_of(small_find_design());
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(to_hex64(a.digest).size(), 16u);
}

TEST(ApiCacheKey, EveryOptionFieldChangesTheKey) {
  const CacheKey base = key_of(small_find_design());

  auto differs = [&](const FindDesignRequest& req) {
    return key_of(req).canonical != base.canonical;
  };

  FindDesignRequest r = small_find_design();
  r.latency_bound = 7;
  EXPECT_TRUE(differs(r));

  r = small_find_design();
  r.area_bound = 8.5;
  EXPECT_TRUE(differs(r));

  r = small_find_design();
  r.engine = "combined";
  EXPECT_TRUE(differs(r));

  r = small_find_design();
  r.options.enable_polish = true;
  EXPECT_TRUE(differs(r));

  r = small_find_design();
  r.options.explore_tighter_latency = 2;
  EXPECT_TRUE(differs(r));

  r = small_find_design();
  r.baseline_versions = {{"adder_2", "mult_2"}};
  EXPECT_TRUE(differs(r));
}

TEST(ApiCacheKey, GraphAndLibraryContentArePartOfTheKey) {
  const CacheKey base = key_of(small_find_design());

  FindDesignRequest r = small_find_design();
  r.graph = benchmarks::by_name("diffeq");
  EXPECT_NE(key_of(r).canonical, base.canonical);

  r = small_find_design();
  library::ResourceLibrary lib;
  lib.add({"a1", library::ResourceClass::kAdder, 1.0, 1, 0.99});
  lib.add({"m1", library::ResourceClass::kMultiplier, 2.0, 1, 0.98});
  r.library = lib;
  EXPECT_NE(key_of(r).canonical, base.canonical);
}

TEST(ApiCacheKey, AdjacentStringFieldsCannotAlias) {
  // Length framing keeps distinct field tuples from encoding equally:
  // without it both pairs below would read "a b c".
  FindDesignRequest x = small_find_design();
  x.engine = "baseline";
  x.baseline_versions = {{"a b", "c"}};
  FindDesignRequest y = small_find_design();
  y.engine = "baseline";
  y.baseline_versions = {{"a", "b c"}};
  EXPECT_NE(key_of(x).canonical, key_of(y).canonical);
}

TEST(ApiCacheKey, RequestKindsNeverCollide) {
  InjectRequest in = small_inject();
  RankGatesRequest rg;
  rg.component = in.component;
  rg.width = in.width;
  rg.trials = in.trials;
  rg.seed = in.seed;
  // Same scalar fields, different kinds: the kind tag keeps them apart.
  EXPECT_NE(key_of(in).canonical, key_of(rg).canonical);
}

StaRequest small_sta() {
  StaRequest req;
  req.component = "ripple_carry_adder";
  req.width = 4;
  req.trials = 128;
  req.seed = 3;
  req.top = 5;
  return req;
}

TEST(ApiCacheKey, EveryStaFieldChangesTheKey) {
  const CacheKey base = key_of(small_sta());
  EXPECT_EQ(key_of(small_sta()).canonical, base.canonical);

  auto differs = [&](auto mutate) {
    StaRequest r = small_sta();
    mutate(r);
    EXPECT_NE(key_of(r).canonical, base.canonical);
  };
  differs([](StaRequest& r) { r.component = "brent_kung_adder"; });
  differs([](StaRequest& r) { r.width = 8; });
  differs([](StaRequest& r) { r.clock = 12.5; });
  differs([](StaRequest& r) { r.top_paths = 4; });
  differs([](StaRequest& r) { r.top = 6; });
  differs([](StaRequest& r) { r.trials = 256; });
  differs([](StaRequest& r) { r.seed = 4; });
}

TEST(ApiCacheKey, StaDoesNotCollideWithRankGates) {
  StaRequest sta = small_sta();
  RankGatesRequest rg;
  rg.component = sta.component;
  rg.width = sta.width;
  rg.trials = sta.trials;
  rg.seed = sta.seed;
  rg.top = sta.top;
  EXPECT_NE(key_of(sta).canonical, key_of(rg).canonical);
}

TEST(ApiCacheKey, ComponentTargetsIgnoreUnusedDesignContext) {
  // Backward compatibility: a component-shaped request keys exactly as it
  // did before graph targets existed -- the (empty) graph, library and
  // policy fields stay out of the encoding.
  StaRequest plain = small_sta();
  StaRequest with_context = small_sta();
  with_context.library = library::paper_library();
  with_context.versions = "most_reliable";
  EXPECT_EQ(key_of(with_context).canonical, key_of(plain).canonical);

  // Graph-shaped requests DO key on the policy (it changes the design).
  StaRequest fast;
  fast.graph = benchmarks::by_name("fig4_example");
  fast.library = library::paper_library();
  fast.width = 4;
  StaRequest reliable = fast;
  reliable.versions = "most_reliable";
  EXPECT_NE(key_of(fast).canonical, key_of(plain).canonical);
  EXPECT_NE(key_of(reliable).canonical, key_of(fast).canonical);
}

// ------------------------------------------------------------- hit/miss

TEST(ApiSession, SecondIdenticalRequestIsServedFromCache) {
  Session session;
  EXPECT_EQ(session.cache_stats().hits, 0u);

  InjectResult cold = session.run(small_inject());
  EXPECT_EQ(session.cache_stats().misses, 1u);
  EXPECT_EQ(session.cache_stats().entries, 1u);

  InjectResult warm = session.run(small_inject());
  EXPECT_EQ(session.cache_stats().hits, 1u);
  EXPECT_EQ(session.cache_stats().misses, 1u);
  EXPECT_EQ(session.cache_stats().entries, 1u);

  EXPECT_EQ(warm.result.propagated, cold.result.propagated);
  EXPECT_EQ(warm.result.logical_sensitivity,
            cold.result.logical_sensitivity);
  EXPECT_EQ(warm.gate_count, cold.gate_count);
}

TEST(ApiSession, StaResultsAreServedFromCache) {
  Session session;
  StaResult cold = session.run(small_sta());
  StaResult warm = session.run(small_sta());
  EXPECT_EQ(session.cache_stats().hits, 1u);
  EXPECT_EQ(session.executions(), 1u);
  EXPECT_EQ(warm.clock, cold.clock);
  EXPECT_EQ(warm.wns, cold.wns);
  ASSERT_EQ(warm.rows.size(), cold.rows.size());
  for (std::size_t i = 0; i < cold.rows.size(); ++i) {
    EXPECT_EQ(warm.rows[i].gate, cold.rows[i].gate);
    EXPECT_EQ(warm.rows[i].sensitivity, cold.rows[i].sensitivity);
  }
}

TEST(ApiSession, DifferentOptionsMiss) {
  Session session;
  session.run(small_inject());
  InjectRequest other = small_inject();
  other.seed = 4;
  session.run(other);
  EXPECT_EQ(session.cache_stats().hits, 0u);
  EXPECT_EQ(session.cache_stats().misses, 2u);
  EXPECT_EQ(session.cache_stats().entries, 2u);
}

TEST(ApiSession, DisabledCacheAlwaysExecutes) {
  SessionOptions opts;
  opts.enable_cache = false;
  Session session(opts);
  session.run(small_inject());
  session.run(small_inject());
  EXPECT_EQ(session.cache_stats().hits, 0u);
  EXPECT_EQ(session.cache_stats().misses, 0u);
  EXPECT_EQ(session.cache_stats().entries, 0u);
}

TEST(ApiSession, ClearCacheForcesRecompute) {
  Session session;
  session.run(small_inject());
  session.clear_cache();
  EXPECT_EQ(session.cache_stats().entries, 0u);
  session.run(small_inject());
  EXPECT_EQ(session.cache_stats().hits, 0u);
  EXPECT_EQ(session.cache_stats().misses, 1u);
}

TEST(ApiSession, UnsolvedResultsAreCachedToo) {
  Session session;
  FindDesignRequest req = small_find_design();
  req.latency_bound = 1;
  req.area_bound = 1.0;
  FindDesignResult r1 = session.run(req);
  FindDesignResult r2 = session.run(req);
  EXPECT_FALSE(r1.solved);
  EXPECT_EQ(r2.no_solution_reason, r1.no_solution_reason);
  EXPECT_EQ(session.cache_stats().hits, 1u);
}

TEST(ApiSession, UnknownEngineThrowsAndCachesNothing) {
  Session session;
  FindDesignRequest req = small_find_design();
  req.engine = "quantum";
  EXPECT_THROW(session.run(req), Error);
  EXPECT_EQ(session.cache_stats().entries, 0u);
}

// --------------------------------------------------------- determinism

// Acceptance: cached reports are byte-identical to cold runs at any
// --jobs value. Three actions (synthesis, sweep, campaign) cover every
// cacheable result family that examples/*.scn exercise heavily.
TEST(ApiSession, CachedReportsAreByteIdenticalToColdRunsAtAnyJobs) {
  const std::string text =
      "scenario cache_determinism\n"
      "graph fig4_example\n"
      "bounds ok 6 8\n"
      "find_design ok\n"
      "sweep area 6,8,10 latency=6\n"
      "inject ripple_carry_adder width=4 trials=256 seed=5\n";
  scenario::Scenario scn = scenario::parse_string(text);

  JobsGuard guard;
  parallel::set_global_jobs(1);
  Session cold1;
  std::string json_cold_1 = scenario::report::to_json(run(scn, cold1));

  parallel::set_global_jobs(8);
  Session cold8;
  std::string json_cold_8 = scenario::report::to_json(run(scn, cold8));
  std::string json_warm_8 = scenario::report::to_json(run(scn, cold8));

  EXPECT_EQ(json_cold_1, json_cold_8);
  EXPECT_EQ(json_cold_8, json_warm_8);
  EXPECT_EQ(cold8.cache_stats().misses, 3u);
  EXPECT_EQ(cold8.cache_stats().hits, 3u);

  // And the warm pass at a different worker count still serves from
  // cache (keys contain no execution-environment fields).
  parallel::set_global_jobs(2);
  std::string json_warm_2 = scenario::report::to_json(run(scn, cold8));
  EXPECT_EQ(json_cold_8, json_warm_2);
  EXPECT_EQ(cold8.cache_stats().hits, 6u);
}

// ------------------------------------------------------ delta recompute

// Acceptance: editing one action of a multi-action scenario recomputes
// only that action on the warm re-run.
TEST(ApiSession, EditingOneActionRecomputesOnlyThatAction) {
  const std::string before =
      "scenario editme\n"
      "graph fig4_example\n"
      "find_design latency=6 area=8 label=a\n"
      "sweep area 6,8,10 latency=6 label=b\n"
      "inject ripple_carry_adder width=4 trials=128 label=c\n";
  // One edit: action b sweeps a different bound list.
  const std::string after =
      "scenario editme\n"
      "graph fig4_example\n"
      "find_design latency=6 area=8 label=a\n"
      "sweep area 6,8,10,12 latency=6 label=b\n"
      "inject ripple_carry_adder width=4 trials=128 label=c\n";

  Session session;
  scenario::run(scenario::parse_string(before), session);
  EXPECT_EQ(session.cache_stats().misses, 3u);
  EXPECT_EQ(session.cache_stats().hits, 0u);

  scenario::run(scenario::parse_string(after), session);
  EXPECT_EQ(session.cache_stats().misses, 4u) << "only 'b' recomputes";
  EXPECT_EQ(session.cache_stats().hits, 2u) << "'a' and 'c' are served";
  EXPECT_EQ(session.cache_stats().entries, 4u);
}

// Editing the scenario's graph (or library) must invalidate every
// synthesis action, but leaves graphless campaign actions cached.
TEST(ApiSession, EditingTheGraphInvalidatesSynthesisActionsOnly) {
  const std::string before =
      "graph fig4_example\n"
      "find_design latency=6 area=8 label=a\n"
      "inject ripple_carry_adder width=4 trials=128 label=c\n";
  const std::string after =
      "graph diffeq\n"
      "find_design latency=6 area=8 label=a\n"
      "inject ripple_carry_adder width=4 trials=128 label=c\n";

  Session session;
  scenario::run(scenario::parse_string(before), session);
  scenario::run(scenario::parse_string(after), session);
  EXPECT_EQ(session.cache_stats().misses, 3u);
  EXPECT_EQ(session.cache_stats().hits, 1u) << "inject stays cached";
}

}  // namespace
}  // namespace rchls::api

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/adders.hpp"
#include "circuits/multipliers.hpp"
#include "netlist/netlist.hpp"
#include "parallel/config.hpp"
#include "ser/fault_injection.hpp"
#include "util/error.hpp"

namespace rchls::ser {
namespace {

using netlist::GateKind;
using netlist::Netlist;

class JobsGuard {
 public:
  explicit JobsGuard(std::size_t jobs) { parallel::set_global_jobs(jobs); }
  ~JobsGuard() { parallel::set_global_jobs(0); }
};

Netlist transparent_chain() {
  // out = buf(buf(a)): every strike on the chain reaches the output.
  Netlist nl("chain");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto g1 = nl.add_unary(GateKind::kBuf, a);
  auto g2 = nl.add_unary(GateKind::kBuf, g1);
  nl.add_output_bus("out", {g2});
  return nl;
}

Netlist fully_masked() {
  // out = and(x, 0): no strike on x's cone can be observed.
  Netlist nl("masked");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto zero = nl.add_const(false);
  auto buf = nl.add_unary(GateKind::kBuf, a);
  auto out = nl.add_binary(GateKind::kAnd, buf, zero);
  nl.add_output_bus("out", {out});
  return nl;
}

TEST(Injection, TransparentCircuitHasFullSensitivity) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  cfg.trials = 64 * 16;
  auto r = inject_campaign(nl, cfg);
  EXPECT_DOUBLE_EQ(r.logical_sensitivity, 1.0);
  EXPECT_EQ(r.propagated, r.trials);
}

TEST(Injection, DeratingFactorsApplyMultiplicatively) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  cfg.trials = 64 * 4;
  cfg.electrical_derating = 0.5;
  cfg.latching_window_derating = 0.25;
  auto r = inject_campaign(nl, cfg);
  EXPECT_DOUBLE_EQ(r.susceptibility, 1.0 * 0.5 * 0.25);
}

TEST(Injection, MaskedGateShowsZeroSensitivity) {
  Netlist nl = fully_masked();
  InjectionConfig cfg;
  cfg.trials = 64 * 8;
  // Strike only the buffer (the AND gate itself would propagate).
  auto r = inject_gate(nl, nl.gate_count() - 2, cfg);
  EXPECT_DOUBLE_EQ(r.logical_sensitivity, 0.0);
}

TEST(Injection, DeterministicUnderSeed) {
  Netlist nl = circuits::ripple_carry_adder(8);
  InjectionConfig cfg;
  cfg.trials = 64 * 32;
  cfg.seed = 42;
  auto a = inject_campaign(nl, cfg);
  auto b = inject_campaign(nl, cfg);
  EXPECT_EQ(a.propagated, b.propagated);
}

TEST(Injection, SensitivityIsAProbability) {
  Netlist nl = circuits::brent_kung_adder(8);
  InjectionConfig cfg;
  cfg.trials = 64 * 64;
  auto r = inject_campaign(nl, cfg);
  EXPECT_GT(r.logical_sensitivity, 0.0);
  EXPECT_LE(r.logical_sensitivity, 1.0);
  EXPECT_GT(r.half_width_95, 0.0);
  EXPECT_LT(r.half_width_95, 0.1);
}

TEST(Injection, TrialsRoundUpToLaneMultiples) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  cfg.trials = 100;  // rounds to 128
  auto r = inject_campaign(nl, cfg);
  EXPECT_EQ(r.trials, 128u);
}

TEST(Injection, RejectsBadConfigs) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(inject_campaign(nl, cfg), Error);
  cfg.trials = 64;
  cfg.electrical_derating = 1.5;
  EXPECT_THROW(inject_campaign(nl, cfg), Error);
}

// Golden values captured from the pre-FaultEngine brute-force
// implementation (two full simulations per pass). The cone-limited engine
// must reproduce them exactly, at every worker count.
TEST(Injection, BitIdenticalToPreRefactorGoldenValues) {
  struct Case {
    Netlist nl;
    std::size_t propagated;
  };
  std::vector<Case> cases;
  cases.push_back({circuits::ripple_carry_adder(8), 3647});
  cases.push_back({circuits::kogge_stone_adder(8), 2642});
  cases.push_back({circuits::brent_kung_adder(16), 2692});
  cases.push_back({circuits::carry_save_multiplier(8), 3971});
  cases.push_back({circuits::leapfrog_multiplier(8), 3622});

  for (std::size_t jobs : {1, 2, 8}) {
    JobsGuard guard(jobs);
    for (const Case& c : cases) {
      InjectionConfig cfg;
      cfg.trials = 64 * 64;
      cfg.seed = 2026;
      auto r = inject_campaign(c.nl, cfg);
      EXPECT_EQ(r.trials, 4096u);
      EXPECT_EQ(r.propagated, c.propagated)
          << c.nl.name() << " at jobs=" << jobs;
    }
  }
}

TEST(Injection, InjectGateBitIdenticalToPreRefactorGoldenValues) {
  // Partially masked victims of the 8-bit Kogge-Stone adder (seed 7,
  // 2048 trials): gate 20 -> 1525, gate 40 -> 1292, gate 60 -> 0.
  Netlist nl = circuits::kogge_stone_adder(8);
  const std::pair<netlist::GateId, std::size_t> golden[] = {
      {20, 1525}, {40, 1292}, {60, 0}, {80, 2048}};
  for (std::size_t jobs : {1, 2, 8}) {
    JobsGuard guard(jobs);
    for (const auto& [victim, expected] : golden) {
      InjectionConfig cfg;
      cfg.trials = 64 * 32;
      cfg.seed = 7;
      auto r = inject_gate(nl, victim, cfg);
      EXPECT_EQ(r.propagated, expected)
          << "victim " << victim << " at jobs=" << jobs;
    }
  }
}

TEST(Injection, EngineMatchesBruteForceReference) {
  for (int width : {8, 12}) {
    Netlist nl = circuits::carry_save_multiplier(width);
    InjectionConfig cfg;
    cfg.trials = 64 * 32;
    cfg.seed = 99;
    auto engine = inject_campaign(nl, cfg);
    auto brute = inject_campaign_reference(nl, cfg);
    EXPECT_EQ(engine.trials, brute.trials);
    EXPECT_EQ(engine.propagated, brute.propagated);
    EXPECT_DOUBLE_EQ(engine.logical_sensitivity, brute.logical_sensitivity);
    EXPECT_DOUBLE_EQ(engine.half_width_95, brute.half_width_95);
  }
}

TEST(Injection, HalfWidthIsWilsonScore) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  cfg.trials = 64 * 16;
  auto r = inject_campaign(nl, cfg);
  ASSERT_DOUBLE_EQ(r.logical_sensitivity, 1.0);

  // Wilson 95% half-width at p = 1: z/(1 + z^2/n) * sqrt(z^2/(4 n^2)).
  double z = 1.96;
  double n = static_cast<double>(r.trials);
  double expected = z / (1.0 + z * z / n) * std::sqrt(z * z / (4 * n * n));
  EXPECT_DOUBLE_EQ(r.half_width_95, expected);
}

TEST(Injection, WilsonHalfWidthStaysPositiveAtZeroSensitivity) {
  // The normal approximation collapses to 0 at p == 0; Wilson must not --
  // this is exactly the small-p regime of voted redundant components.
  Netlist nl = fully_masked();
  InjectionConfig cfg;
  cfg.trials = 64 * 8;
  auto r = inject_gate(nl, nl.gate_count() - 2, cfg);
  EXPECT_DOUBLE_EQ(r.logical_sensitivity, 0.0);
  EXPECT_GT(r.half_width_95, 0.0);
  EXPECT_LT(r.half_width_95, 0.05);
}

TEST(Injection, AllGatesSweepMatchesPerGateCampaigns) {
  // inject_all_gates shares each batch's golden evaluation across every
  // victim but must report, per gate, exactly what inject_gate reports
  // (both draw the same per-chunk input streams).
  Netlist nl = circuits::ripple_carry_adder(4);
  InjectionConfig cfg;
  cfg.trials = 64 * 8;
  cfg.seed = 5;
  auto all = inject_all_gates(nl, cfg);
  ASSERT_FALSE(all.empty());
  for (const auto& gs : all) {
    auto single = inject_gate(nl, gs.gate, cfg);
    EXPECT_EQ(gs.result.propagated, single.propagated) << "gate " << gs.gate;
    EXPECT_EQ(gs.result.trials, single.trials);
  }
}

TEST(Injection, AllGatesSweepIsBitIdenticalAtAnyWorkerCount) {
  Netlist nl = circuits::kogge_stone_adder(6);
  InjectionConfig cfg;
  cfg.trials = 64 * 16;
  cfg.seed = 11;
  std::vector<std::vector<GateSensitivity>> runs;
  for (std::size_t jobs : {1, 2, 8}) {
    JobsGuard guard(jobs);
    runs.push_back(inject_all_gates(nl, cfg));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].gate, runs[0][i].gate);
      EXPECT_EQ(runs[r][i].result.propagated, runs[0][i].result.propagated);
    }
  }
}

TEST(Injection, RejectsBadGateTargets) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  EXPECT_THROW(inject_gate(nl, 999, cfg), Error);
  EXPECT_THROW(inject_gate(nl, 0, cfg), Error);  // input, not logic
}

}  // namespace
}  // namespace rchls::ser

#include <gtest/gtest.h>

#include "circuits/adders.hpp"
#include "netlist/netlist.hpp"
#include "ser/fault_injection.hpp"
#include "util/error.hpp"

namespace rchls::ser {
namespace {

using netlist::GateKind;
using netlist::Netlist;

Netlist transparent_chain() {
  // out = buf(buf(a)): every strike on the chain reaches the output.
  Netlist nl("chain");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto g1 = nl.add_unary(GateKind::kBuf, a);
  auto g2 = nl.add_unary(GateKind::kBuf, g1);
  nl.add_output_bus("out", {g2});
  return nl;
}

Netlist fully_masked() {
  // out = and(x, 0): no strike on x's cone can be observed.
  Netlist nl("masked");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto zero = nl.add_const(false);
  auto buf = nl.add_unary(GateKind::kBuf, a);
  auto out = nl.add_binary(GateKind::kAnd, buf, zero);
  nl.add_output_bus("out", {out});
  return nl;
}

TEST(Injection, TransparentCircuitHasFullSensitivity) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  cfg.trials = 64 * 16;
  auto r = inject_campaign(nl, cfg);
  EXPECT_DOUBLE_EQ(r.logical_sensitivity, 1.0);
  EXPECT_EQ(r.propagated, r.trials);
}

TEST(Injection, DeratingFactorsApplyMultiplicatively) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  cfg.trials = 64 * 4;
  cfg.electrical_derating = 0.5;
  cfg.latching_window_derating = 0.25;
  auto r = inject_campaign(nl, cfg);
  EXPECT_DOUBLE_EQ(r.susceptibility, 1.0 * 0.5 * 0.25);
}

TEST(Injection, MaskedGateShowsZeroSensitivity) {
  Netlist nl = fully_masked();
  InjectionConfig cfg;
  cfg.trials = 64 * 8;
  // Strike only the buffer (the AND gate itself would propagate).
  auto r = inject_gate(nl, nl.gate_count() - 2, cfg);
  EXPECT_DOUBLE_EQ(r.logical_sensitivity, 0.0);
}

TEST(Injection, DeterministicUnderSeed) {
  Netlist nl = circuits::ripple_carry_adder(8);
  InjectionConfig cfg;
  cfg.trials = 64 * 32;
  cfg.seed = 42;
  auto a = inject_campaign(nl, cfg);
  auto b = inject_campaign(nl, cfg);
  EXPECT_EQ(a.propagated, b.propagated);
}

TEST(Injection, SensitivityIsAProbability) {
  Netlist nl = circuits::brent_kung_adder(8);
  InjectionConfig cfg;
  cfg.trials = 64 * 64;
  auto r = inject_campaign(nl, cfg);
  EXPECT_GT(r.logical_sensitivity, 0.0);
  EXPECT_LE(r.logical_sensitivity, 1.0);
  EXPECT_GT(r.half_width_95, 0.0);
  EXPECT_LT(r.half_width_95, 0.1);
}

TEST(Injection, TrialsRoundUpToLaneMultiples) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  cfg.trials = 100;  // rounds to 128
  auto r = inject_campaign(nl, cfg);
  EXPECT_EQ(r.trials, 128u);
}

TEST(Injection, RejectsBadConfigs) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(inject_campaign(nl, cfg), Error);
  cfg.trials = 64;
  cfg.electrical_derating = 1.5;
  EXPECT_THROW(inject_campaign(nl, cfg), Error);
}

TEST(Injection, RejectsBadGateTargets) {
  Netlist nl = transparent_chain();
  InjectionConfig cfg;
  EXPECT_THROW(inject_gate(nl, 999, cfg), Error);
  EXPECT_THROW(inject_gate(nl, 0, cfg), Error);  // input, not logic
}

}  // namespace
}  // namespace rchls::ser

#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/suite.hpp"
#include "dfg/timing.hpp"
#include "hls/baseline.hpp"
#include "util/error.hpp"

namespace rchls::hls {
namespace {

using library::ResourceLibrary;

TEST(MinimalAllocation, FirWithFastestVersionsIsUniformProduct) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  Design d = minimal_allocation_design(g, lib, lib.find("adder_2"),
                                       lib.find("mult_2"), 10);
  validate_design(d, g, lib);
  EXPECT_LE(d.latency, 10);
  EXPECT_NEAR(d.reliability, std::pow(0.969, 23), 1e-12);
}

TEST(MinimalAllocation, LooserLatencyNeverNeedsMoreArea) {
  auto g = benchmarks::ewf();
  ResourceLibrary lib = library::paper_library();
  std::vector<int> unit(g.node_count(), 1);
  int lmin = dfg::asap_latency(g, unit);  // all type-2 versions are 1-cycle
  double prev = 1e9;
  for (int slack = 0; slack < 6; ++slack) {
    Design d = minimal_allocation_design(g, lib, lib.find("adder_2"),
                                         lib.find("mult_2"), lmin + slack);
    EXPECT_LE(d.area, prev + 1e-9);
    prev = d.area;
  }
}

TEST(MinimalAllocation, ThrowsWhenVersionsTooSlow) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  // all type-1: chain alone needs 18 cycles.
  EXPECT_THROW(minimal_allocation_design(g, lib, lib.find("adder_1"),
                                         lib.find("mult_1"), 11),
               NoSolutionError);
}

TEST(Baseline, TightAreaMeansNoRedundancy) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  BaselineOptions opts;
  opts.fixed_versions = {{lib.find("adder_2"), lib.find("mult_2")}};
  // Find the baseline's own minimal area first, then bound exactly there.
  Design min_d = minimal_allocation_design(g, lib, lib.find("adder_2"),
                                           lib.find("mult_2"), 10);
  Design d = nmr_baseline(g, lib, 10, min_d.area, opts);
  validate_design(d, g, lib);
  EXPECT_NEAR(d.reliability, std::pow(0.969, 23), 1e-12);
  for (int c : d.copies) EXPECT_EQ(c, 1);
}

TEST(Baseline, SlackAreaBuysRedundancy) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  BaselineOptions opts;
  opts.fixed_versions = {{lib.find("adder_2"), lib.find("mult_2")}};
  Design min_d = minimal_allocation_design(g, lib, lib.find("adder_2"),
                                           lib.find("mult_2"), 10);
  Design d = nmr_baseline(g, lib, 10, min_d.area + 4.0, opts);
  validate_design(d, g, lib);
  EXPECT_GT(d.reliability, std::pow(0.969, 23));
  int total_copies = 0;
  for (int c : d.copies) total_copies += c;
  EXPECT_GT(total_copies, static_cast<int>(d.copies.size()));
  EXPECT_LE(d.area, min_d.area + 4.0 + 1e-9);
}

TEST(Baseline, SearchesVersionCombos) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  // Unrestricted baseline must do at least as well as the fastest-only one.
  BaselineOptions fixed;
  fixed.fixed_versions = {{lib.find("adder_2"), lib.find("mult_2")}};
  Design d_fixed = nmr_baseline(g, lib, 12, 8.0, fixed);
  Design d_free = nmr_baseline(g, lib, 12, 8.0);
  EXPECT_GE(d_free.reliability, d_fixed.reliability - 1e-12);
}

TEST(Baseline, DuplexDisabledFallsBackToTmr) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  BaselineOptions opts;
  opts.redundancy.allow_duplex = false;
  Design d = nmr_baseline(g, lib, 10, 40.0, opts);
  for (int c : d.copies) EXPECT_NE(c, 2);
}

TEST(Baseline, ThrowsWhenNoComboFits) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  EXPECT_THROW(nmr_baseline(g, lib, 9, 3.0, {}), NoSolutionError);
  EXPECT_THROW(nmr_baseline(g, lib, 4, 100.0, {}), NoSolutionError);
}

TEST(Baseline, RejectsBadArguments) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  EXPECT_THROW(nmr_baseline(g, lib, 0, 8.0, {}), Error);
  EXPECT_THROW(nmr_baseline(g, lib, 8, -1.0, {}), Error);
}

}  // namespace
}  // namespace rchls::hls

// RelaxedFifo (parallel/relaxed_fifo.hpp) contract tests: exactly-once
// delivery under multi-producer/multi-consumer contention, block-granular
// handoff, epoch reuse across ring wraparound, sealing of partial tail
// blocks, and bounded-capacity overflow behavior. The suite runs under
// TSan in CI (RelaxedFifo.* is in the filter) -- the queue is all
// atomics, so "no data races" is part of the contract, not a hope.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "parallel/relaxed_fifo.hpp"

namespace rchls::parallel {
namespace {

Task noop() {
  return [] {};
}

// Drains everything currently in the queue, running each task.
std::size_t drain_all(RelaxedFifo& q) {
  std::deque<Task> out;
  while (q.pop_block(out) != 0) {
  }
  for (Task& t : out) t();
  return out.size();
}

// ------------------------------------------------------------ semantics

TEST(RelaxedFifo, HandsOutFullBlocksThenTheSealedRemainder) {
  RelaxedFifo q(4);
  const std::size_t n = 2 * RelaxedFifo::kBlockSize + 5;
  for (std::size_t i = 0; i < n; ++i) {
    Task t = noop();
    ASSERT_TRUE(q.try_push(t));
  }
  std::deque<Task> out;
  EXPECT_EQ(q.pop_block(out), RelaxedFifo::kBlockSize);
  EXPECT_EQ(q.pop_block(out), RelaxedFifo::kBlockSize);
  // The open tail block is sealed and taken as-is: 5 tasks, not 0.
  EXPECT_EQ(q.pop_block(out), 5u);
  EXPECT_EQ(out.size(), n);
  EXPECT_EQ(q.pop_block(out), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(RelaxedFifo, KeepsWithinBlockPushOrder) {
  RelaxedFifo q(4);
  std::vector<int> ran;
  for (int i = 0; i < static_cast<int>(RelaxedFifo::kBlockSize); ++i) {
    Task t = [&ran, i] { ran.push_back(i); };
    ASSERT_TRUE(q.try_push(t));
  }
  std::deque<Task> out;
  ASSERT_EQ(q.pop_block(out), RelaxedFifo::kBlockSize);
  for (Task& t : out) t();
  for (int i = 0; i < static_cast<int>(ran.size()); ++i) {
    EXPECT_EQ(ran[i], i) << "single-producer order must survive the block";
  }
}

TEST(RelaxedFifo, CapacityBoundsThePushAndFreesOnPop) {
  RelaxedFifo q(2);  // minimum ring: 2 blocks
  std::size_t pushed = 0;
  for (;;) {
    Task t = noop();
    if (!q.try_push(t)) break;
    ++pushed;
  }
  // Hard bound: the ring cannot hold more than capacity() tasks. (The
  // last block may be unopenable when the ring is saturated, so the
  // practical fill can be one block short of the bound.)
  EXPECT_LE(pushed, q.capacity());
  EXPECT_GE(pushed, q.capacity() - RelaxedFifo::kBlockSize);
  // Full means full: still full until a block is consumed.
  Task t = noop();
  EXPECT_FALSE(q.try_push(t));
  std::deque<Task> out;
  ASSERT_GT(q.pop_block(out), 0u);
  EXPECT_TRUE(q.try_push(t));  // a freed block re-admits producers
  EXPECT_EQ(drain_all(q) + out.size(), pushed + 1);
}

TEST(RelaxedFifo, EpochReuseSurvivesManyWraparounds) {
  // A tiny ring recycled many times over: every push/pop round trips
  // through slot epochs several generations deep.
  RelaxedFifo q(2);
  std::size_t ran = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 7; ++i) {
      Task t = [&ran] { ++ran; };
      ASSERT_TRUE(q.try_push(t));
    }
    std::deque<Task> out;
    while (q.pop_block(out) != 0) {
    }
    for (Task& t : out) t();
    ASSERT_TRUE(q.empty());
  }
  EXPECT_EQ(ran, 7000u);
}

TEST(RelaxedFifo, EmptyIsTrueOnlyWhenNothingIsBuffered) {
  RelaxedFifo q(4);
  EXPECT_TRUE(q.empty());
  Task t = noop();
  ASSERT_TRUE(q.try_push(t));
  EXPECT_FALSE(q.empty());
  std::deque<Task> out;
  EXPECT_EQ(q.pop_block(out), 1u);
  EXPECT_TRUE(q.empty());
}

// --------------------------------------------------------------- stress

// The load-bearing property: under producer/consumer contention with
// ring wraparound and partial-block seals, every pushed task is popped
// exactly once -- no loss, no duplication.
void exactly_once_stress(std::size_t blocks, int producers, int consumers,
                         int per_producer) {
  RelaxedFifo q(blocks);
  std::vector<std::atomic<int>> hits(
      static_cast<std::size_t>(producers) * per_producer);
  for (auto& h : hits) h = 0;
  std::atomic<std::size_t> popped{0};
  const std::size_t total = hits.size();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers + consumers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        std::size_t id = static_cast<std::size_t>(p) * per_producer +
                         static_cast<std::size_t>(i);
        Task t = [&hits, id] { ++hits[id]; };
        while (!q.try_push(t)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      std::deque<Task> out;
      while (popped.load() < total) {
        out.clear();
        if (std::size_t n = q.pop_block(out)) {
          for (Task& t : out) t();
          popped.fetch_add(n);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(popped.load(), total);
  EXPECT_TRUE(q.empty());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "task " << i << " lost or duplicated";
  }
}

TEST(RelaxedFifo, ExactlyOnceUnderMpmcContention) {
  exactly_once_stress(/*blocks=*/8, /*producers=*/4, /*consumers=*/4,
                      /*per_producer=*/2000);
}

TEST(RelaxedFifo, ExactlyOnceOnATinyRingFullMostOfTheTime) {
  // blocks=2 keeps the ring saturated: producers bounce off full
  // constantly, consumers seal partial blocks constantly.
  exactly_once_stress(/*blocks=*/2, /*producers=*/3, /*consumers=*/2,
                      /*per_producer=*/1500);
}

TEST(RelaxedFifo, ExactlyOnceManyConsumersFewProducers) {
  exactly_once_stress(/*blocks=*/4, /*producers=*/1, /*consumers=*/6,
                      /*per_producer=*/4000);
}

}  // namespace
}  // namespace rchls::parallel

// Wire-protocol tests (api/wire.hpp): the randomized fixed-point
// property -- encode -> decode -> encode is byte-identical for every
// request and result kind -- plus envelope strictness (version checks,
// kind checks, malformed documents).
#include <gtest/gtest.h>

#include "api/cache.hpp"
#include "api/wire.hpp"
#include "benchmarks/suite.hpp"
#include "dfg/generate.hpp"
#include "dfg/io.hpp"
#include "library/io.hpp"
#include "library/resource.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rchls::api {
namespace {

// ----------------------------------------------------- random generators
//
// Every generator draws from one seeded Rng, so a failure reproduces
// from the test's seed; values cover the awkward corners on purpose
// (unset optionals, empty strings, shortest-round-trip-hostile doubles,
// full-range 64-bit seeds).

double random_double(Rng& rng) {
  double sign = rng.next_bool(0.25) ? -1.0 : 1.0;  // negatives included
  switch (rng.next_below(5)) {
    case 0: return sign * static_cast<double>(rng.next_below(100));
    case 1: return sign * rng.next_double() * 100.0;
    case 2: return sign * rng.next_double() * 1e-9;  // exponent form
    case 3: return -0.0;  // renders as "-0": must stay a double
    default: return sign * (0.78943 + rng.next_double());
  }
}

std::string random_name(Rng& rng, const char* prefix) {
  std::string s = prefix;
  // Exercise JSON escaping: names sometimes carry quotes or spaces
  // (requests embed graph/library text, which frames freely).
  if (rng.next_bool(0.3)) s += " \"q\"";
  s += std::to_string(rng.next_below(1000));
  return s;
}

library::ResourceLibrary random_library(Rng& rng) {
  library::ResourceLibrary lib;
  int adders = 1 + static_cast<int>(rng.next_below(3));
  int mults = 1 + static_cast<int>(rng.next_below(2));
  for (int i = 0; i < adders; ++i) {
    lib.add({"add_" + std::to_string(i), library::ResourceClass::kAdder,
             0.5 + rng.next_double() * 3, 1 + static_cast<int>(rng.next_below(3)),
             0.9 + rng.next_double() * 0.0999});
  }
  for (int i = 0; i < mults; ++i) {
    lib.add({"mul_" + std::to_string(i), library::ResourceClass::kMultiplier,
             1.0 + rng.next_double() * 5, 1 + static_cast<int>(rng.next_below(4)),
             0.9 + rng.next_double() * 0.0999});
  }
  return lib;
}

dfg::Graph random_graph(Rng& rng) {
  dfg::GeneratorConfig cfg;
  cfg.num_nodes = 4 + rng.next_below(12);
  cfg.seed = rng.next_u64();
  return dfg::generate_random(cfg);
}

hls::FindDesignOptions random_options(Rng& rng) {
  hls::FindDesignOptions o;
  o.scheduler = rng.next_bool(0.5) ? hls::SchedulerKind::kDensity
                                   : hls::SchedulerKind::kForceDirected;
  o.enable_consolidation = rng.next_bool(0.5);
  o.enable_polish = rng.next_bool(0.5);
  o.explore_tighter_latency = static_cast<int>(rng.next_below(3));
  o.max_iterations = 1 + static_cast<int>(rng.next_below(1000000));
  return o;
}

std::optional<std::pair<std::string, std::string>> random_baseline(Rng& rng) {
  if (rng.next_bool(0.5)) return std::nullopt;
  return std::make_pair(random_name(rng, "a"), random_name(rng, "m"));
}

Request random_request(Rng& rng, std::size_t kind) {
  switch (kind % 6) {
    case 0: {
      FindDesignRequest r;
      r.graph = random_graph(rng);
      r.library = random_library(rng);
      r.latency_bound = static_cast<int>(rng.next_below(40));
      r.area_bound = random_double(rng);
      r.engine = rng.next_bool(0.5) ? "centric" : "baseline";
      r.options = random_options(rng);
      r.baseline_versions = random_baseline(rng);
      return r;
    }
    case 1: {
      SweepRequest r;
      r.graph = random_graph(rng);
      r.library = random_library(rng);
      r.axis = rng.next_bool(0.5) ? SweepAxis::kLatency : SweepAxis::kArea;
      for (std::size_t i = 0; i <= rng.next_below(5); ++i) {
        r.latency_bounds.push_back(static_cast<int>(rng.next_below(40)));
        r.area_bounds.push_back(random_double(rng));
      }
      r.options = random_options(rng);
      return r;
    }
    case 2: {
      GridRequest r;
      r.graph = random_graph(rng);
      r.library = random_library(rng);
      for (std::size_t i = 0; i <= rng.next_below(4); ++i) {
        r.latency_bounds.push_back(static_cast<int>(rng.next_below(40)));
        r.area_bounds.push_back(random_double(rng));
      }
      r.options = random_options(rng);
      r.baseline_versions = random_baseline(rng);
      return r;
    }
    case 3: {
      InjectRequest r;
      r.component = random_name(rng, "comp");
      r.width = 1 + static_cast<int>(rng.next_below(64));
      r.trials = rng.next_below(1 << 20);
      r.seed = rng.next_u64();  // full range, incl. values > int64 max
      if (rng.next_bool(0.5)) {
        r.gate = static_cast<std::uint32_t>(rng.next_below(1000));
      }
      return r;
    }
    case 4: {
      RankGatesRequest r;
      if (rng.next_bool(0.5)) {
        // Graph-shaped target: elaborated design instead of a component.
        r.graph = random_graph(rng);
        r.library = random_library(rng);
        r.versions = rng.next_bool(0.5) ? "fastest" : "most_reliable";
      } else {
        r.component = random_name(rng, "comp");
      }
      r.width = 1 + static_cast<int>(rng.next_below(64));
      r.trials = rng.next_below(1 << 20);
      r.seed = rng.next_u64();
      r.top = static_cast<int>(rng.next_below(20));
      return r;
    }
    default: {
      StaRequest r;
      if (rng.next_bool(0.5)) {
        r.graph = random_graph(rng);
        r.library = random_library(rng);
        r.versions = rng.next_bool(0.5) ? "fastest" : "most_reliable";
      } else {
        r.component = random_name(rng, "comp");
      }
      r.width = 1 + static_cast<int>(rng.next_below(64));
      r.clock = rng.next_bool(0.3) ? 0.0 : rng.next_double() * 50.0;
      r.top_paths = static_cast<int>(rng.next_below(8));
      r.top = static_cast<int>(rng.next_below(20));
      r.trials = rng.next_below(1 << 20);
      r.seed = rng.next_u64();
      return r;
    }
  }
}

ser::InjectionResult random_injection(Rng& rng) {
  ser::InjectionResult r;
  r.trials = rng.next_below(1 << 20);
  r.propagated = rng.next_below(r.trials + 1);
  r.logical_sensitivity = rng.next_double();
  r.susceptibility = rng.next_double() * 0.08;
  r.half_width_95 = rng.next_double() * 0.01;
  return r;
}

std::optional<double> random_opt(Rng& rng) {
  if (rng.next_bool(0.3)) return std::nullopt;
  return random_double(rng);
}

hls::Design random_design(Rng& rng) {
  hls::Design d;
  std::size_t nodes = 1 + rng.next_below(10);
  std::size_t instances = 1 + rng.next_below(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    d.version_of.push_back(static_cast<std::uint32_t>(rng.next_below(5)));
    d.schedule.start.push_back(static_cast<int>(rng.next_below(20)));
    d.binding.instance_of.push_back(
        static_cast<std::uint32_t>(rng.next_below(instances)));
  }
  d.schedule.latency = static_cast<int>(rng.next_below(30));
  for (std::size_t i = 0; i < instances; ++i) {
    bind::Instance inst;
    inst.version = static_cast<std::uint32_t>(rng.next_below(5));
    for (std::size_t k = 0; k <= rng.next_below(3); ++k) {
      inst.ops.push_back(static_cast<std::uint32_t>(rng.next_below(nodes)));
    }
    d.binding.instances.push_back(std::move(inst));
    d.copies.push_back(rng.next_bool(0.8) ? 1 : 3);
  }
  d.latency = static_cast<int>(rng.next_below(30));
  d.area = random_double(rng);
  d.reliability = rng.next_double();
  return d;
}

Result random_result(Rng& rng, std::size_t kind) {
  switch (kind % 6) {
    case 0: {
      FindDesignResult r;
      r.engine = rng.next_bool(0.5) ? "centric" : "combined";
      r.latency_bound = static_cast<int>(rng.next_below(40));
      r.area_bound = random_double(rng);
      r.solved = rng.next_bool(0.7);
      if (r.solved) {
        r.design = random_design(rng);
      } else {
        r.no_solution_reason = "bounds (" + std::to_string(r.latency_bound) +
                               ") infeasible:\n\ttoo tight";
      }
      return r;
    }
    case 1: {
      SweepResult r;
      r.axis = rng.next_bool(0.5) ? SweepAxis::kLatency : SweepAxis::kArea;
      for (std::size_t i = 0; i <= rng.next_below(6); ++i) {
        hls::SweepPoint p;
        p.latency_bound = static_cast<int>(rng.next_below(40));
        p.area_bound = random_double(rng);
        p.reliability = random_opt(rng);
        p.area = random_opt(rng);
        if (rng.next_bool(0.7)) {
          p.latency = static_cast<int>(rng.next_below(40));
        }
        r.points.push_back(p);
      }
      return r;
    }
    case 2: {
      GridResult r;
      for (std::size_t i = 0; i <= rng.next_below(6); ++i) {
        hls::ComparisonRow row;
        row.latency_bound = static_cast<int>(rng.next_below(40));
        row.area_bound = random_double(rng);
        row.baseline = random_opt(rng);
        row.ours = random_opt(rng);
        row.combined = random_opt(rng);
        row.improvement_ours = random_opt(rng);
        row.improvement_combined = random_opt(rng);
        r.rows.push_back(row);
      }
      r.averages.baseline = rng.next_double();
      r.averages.ours = rng.next_double();
      r.averages.combined = rng.next_double();
      r.averages.solved_cells = static_cast<int>(rng.next_below(10));
      r.averages.total_cells = static_cast<int>(10 + rng.next_below(10));
      return r;
    }
    case 3: {
      InjectResult r;
      r.component = random_name(rng, "comp");
      r.width = 1 + static_cast<int>(rng.next_below(64));
      r.gate_count = rng.next_below(4000);
      r.logic_gates = rng.next_below(r.gate_count + 1);
      if (rng.next_bool(0.4)) {
        r.gate = static_cast<std::uint32_t>(rng.next_below(4000));
      }
      r.result = random_injection(rng);
      return r;
    }
    case 4: {
      RankGatesResult r;
      r.component = random_name(rng, "comp");
      r.width = 1 + static_cast<int>(rng.next_below(64));
      for (std::size_t i = 0; i <= rng.next_below(8); ++i) {
        ser::GateSensitivity g;
        g.gate = static_cast<std::uint32_t>(rng.next_below(4000));
        g.result = random_injection(rng);
        r.gates.push_back(g);
        r.kinds.push_back(rng.next_bool(0.5) ? "xor" : "and");
      }
      return r;
    }
    default: {
      StaResult r;
      r.target = random_name(rng, "design");
      r.width = 1 + static_cast<int>(rng.next_below(64));
      r.gate_count = rng.next_below(4000);
      r.logic_gates = rng.next_below(r.gate_count + 1);
      r.levels = rng.next_below(60);
      r.endpoints = rng.next_below(128);
      r.clock = rng.next_double() * 40.0;
      r.arrival_max = rng.next_double() * 40.0;
      r.wns = random_double(rng);
      r.tns = random_double(rng);
      for (std::size_t p = 0; p <= rng.next_below(3); ++p) {
        StaPath path;
        path.endpoint = static_cast<std::uint32_t>(rng.next_below(4000));
        path.arrival = rng.next_double() * 40.0;
        path.slack = random_double(rng);
        for (std::size_t s = 0; s <= rng.next_below(5); ++s) {
          path.steps.push_back({static_cast<std::uint32_t>(rng.next_below(4000)),
                                rng.next_bool(0.5) ? "Xor" : "And",
                                rng.next_double() * 40.0});
        }
        r.paths.push_back(std::move(path));
      }
      for (std::size_t b = 0; b <= rng.next_below(8); ++b) {
        r.histogram.push_back(
            {random_double(rng), random_double(rng), rng.next_below(128)});
      }
      for (std::size_t i = 0; i <= rng.next_below(8); ++i) {
        r.rows.push_back({static_cast<std::uint32_t>(rng.next_below(4000)),
                          rng.next_bool(0.5) ? "Nand" : "Or",
                          rng.next_double(), random_double(rng)});
      }
      return r;
    }
  }
}

// ------------------------------------------------------------ fixed point

// The property the disk cache's checksum verification and the
// subprocess merge both rest on: encoding is canonical, so
// encode(decode(encode(x))) == encode(x), for every kind, under
// randomized field values.
TEST(ApiWire, RequestEncodeDecodeEncodeIsAFixedPoint) {
  Rng rng(20260731);
  for (std::size_t i = 0; i < 60; ++i) {
    Request original = random_request(rng, i);
    std::string once = wire::encode(original);
    Request decoded = wire::decode_request(once);
    EXPECT_EQ(wire::encode(decoded), once)
        << "kind " << wire::kind_of(original) << ", iteration " << i;
  }
}

TEST(ApiWire, ResultEncodeDecodeEncodeIsAFixedPoint) {
  Rng rng(987654321);
  for (std::size_t i = 0; i < 60; ++i) {
    Result original = random_result(rng, i);
    std::string once = wire::encode(original);
    Result decoded = wire::decode_result(once);
    EXPECT_EQ(wire::encode(decoded), once)
        << "kind " << wire::kind_of(original) << ", iteration " << i;
  }
}

// A request's graph and library must survive the trip exactly: the
// child's cache key (and thus its digest) has to equal the one the
// parent would compute.
TEST(ApiWire, EmbeddedGraphAndLibraryRoundTripExactly) {
  FindDesignRequest r;
  r.graph = benchmarks::by_name("fir16");
  r.library = library::paper_library();
  r.latency_bound = 11;
  r.area_bound = 11.0;

  Request decoded = wire::decode_request(wire::encode(Request(r)));
  const auto& d = std::get<FindDesignRequest>(decoded);
  EXPECT_EQ(dfg::to_text(d.graph), dfg::to_text(r.graph));
  EXPECT_EQ(library::to_text(d.library), library::to_text(r.library));
  EXPECT_EQ(key_of(d).canonical, key_of(r).canonical);
}

// ------------------------------------------------------------- strictness

TEST(ApiWire, DecodersRejectWrongVersionsAndKinds) {
  std::string good = wire::encode(Request(InjectRequest{}));

  std::string wrong_version = good;
  auto pos = wrong_version.find("rchls.wire.v1");
  ASSERT_NE(pos, std::string::npos);
  wrong_version.replace(pos, 13, "rchls.wire.v9");
  EXPECT_THROW(wire::decode_request(wrong_version), Error);

  // A request envelope is not a result envelope.
  EXPECT_THROW(wire::decode_result(good), Error);

  std::string wrong_kind = good;
  pos = wrong_kind.find("\"inject\"");
  ASSERT_NE(pos, std::string::npos);
  wrong_kind.replace(pos, 8, "\"quantum\"");
  EXPECT_THROW(wire::decode_request(wrong_kind), Error);

  EXPECT_THROW(wire::decode_request("not json at all"), Error);
  EXPECT_THROW(wire::decode_request("{}"), Error);
}

TEST(ApiWire, SeedsRoundTripTheFullUint64Range) {
  InjectRequest r;
  r.seed = 18446744073709551615ull;  // uint64 max
  Request decoded = wire::decode_request(wire::encode(Request(r)));
  EXPECT_EQ(std::get<InjectRequest>(decoded).seed, r.seed);
}

}  // namespace
}  // namespace rchls::api

#include <gtest/gtest.h>

#include "reliability/algebra.hpp"
#include "reliability/rbd.hpp"
#include "util/error.hpp"

namespace rchls::reliability {
namespace {

TEST(Rbd, ComponentIsLeaf) {
  Block b = Block::component("adder", 0.99);
  EXPECT_DOUBLE_EQ(b.reliability(), 0.99);
  EXPECT_EQ(b.component_count(), 1u);
  EXPECT_EQ(b.to_string(), "adder[0.99]");
}

TEST(Rbd, SerialMatchesAlgebra) {
  Block b = Block::serial({Block::component("a", 0.9),
                           Block::component("b", 0.8),
                           Block::component("c", 0.5)});
  EXPECT_NEAR(b.reliability(), 0.36, 1e-12);
  EXPECT_EQ(b.component_count(), 3u);
}

TEST(Rbd, ParallelMatchesAlgebra) {
  Block b = Block::parallel(
      {Block::component("a", 0.9), Block::component("b", 0.9)});
  EXPECT_NEAR(b.reliability(), 0.99, 1e-12);
}

TEST(Rbd, KofNIdenticalMatchesBinomialFormula) {
  std::vector<Block> mods;
  for (int i = 0; i < 5; ++i) mods.push_back(Block::component("m", 0.969));
  Block b = Block::k_of_n(3, mods);
  EXPECT_NEAR(b.reliability(), nmr(5, 0.969), 1e-12);
}

TEST(Rbd, KofNHeterogeneousIsExact) {
  // 2-of-3 with distinct reliabilities: enumerate by hand.
  double r1 = 0.9;
  double r2 = 0.8;
  double r3 = 0.7;
  Block b = Block::k_of_n(2, {Block::component("x", r1),
                              Block::component("y", r2),
                              Block::component("z", r3)});
  double expect = r1 * r2 * r3 + r1 * r2 * (1 - r3) + r1 * (1 - r2) * r3 +
                  (1 - r1) * r2 * r3;
  EXPECT_NEAR(b.reliability(), expect, 1e-12);
}

TEST(Rbd, NestedComposition) {
  // Paper Fig. 4(b): TMR of a module inside a serial chain.
  Block tmr = Block::k_of_n(2, {Block::component("m", 0.969),
                                Block::component("m", 0.969),
                                Block::component("m", 0.969)});
  Block chain = Block::serial({Block::component("pre", 0.999), tmr,
                               Block::component("post", 0.999)});
  EXPECT_NEAR(chain.reliability(), 0.999 * nmr(3, 0.969) * 0.999, 1e-12);
  EXPECT_EQ(chain.component_count(), 5u);
  EXPECT_NE(chain.to_string().find("2of3"), std::string::npos);
}

TEST(Rbd, RejectsBadConstruction) {
  EXPECT_THROW(Block::component("x", 1.5), Error);
  EXPECT_THROW(Block::serial({}), Error);
  EXPECT_THROW(Block::parallel({}), Error);
  EXPECT_THROW(Block::k_of_n(4, {Block::component("a", 0.5)}), Error);
  EXPECT_THROW(Block::k_of_n(0, {Block::component("a", 0.5)}), Error);
}

}  // namespace
}  // namespace rchls::reliability

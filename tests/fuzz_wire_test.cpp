// Differential fuzzing of the wire codec (api/wire.hpp). The decoders
// read untrusted bytes -- exec-request stdin, serve sockets, on-disk
// cache entries -- so the contract under fire is total: for ANY input,
// decode_request/decode_result either return a value whose re-encoding
// is a byte fixed point, or throw rchls::Error. No crashes, no hangs,
// no foreign exception types, no partially-constructed results.
//
// Three layers, cheapest guarantees first:
//  1. the curated seed corpus (tests/data/fuzz_seed/*.wire) replays as a
//     spec: valid_* decode canonically, invalid_* reject cleanly;
//  2. seeded mutation of valid envelopes (all six request kinds plus
//     result envelopes) probes the grey zone between those poles;
//  3. raw random bytes probe the no-structure-at-all floor.
// Iteration counts scale with RCHLS_FUZZ_ITERS (fuzz_common.hpp); every
// failure reproduces from the fixed seeds below.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/wire.hpp"
#include "dfg/generate.hpp"
#include "fuzz_common.hpp"
#include "library/resource.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rchls::api {
namespace {

using testing::fuzz::iterations;
using testing::fuzz::mutate;
using testing::fuzz::random_bytes;
using testing::fuzz::seed_corpus;

// The differential oracle: accept-and-fix-point or throw rchls::Error.
// Returns true when the input decoded (so callers can count coverage).
bool check_request(const std::string& text) {
  try {
    Request req = wire::decode_request(text);
    std::string canonical = wire::encode(req);
    EXPECT_EQ(wire::encode(wire::decode_request(canonical)), canonical)
        << "decoded request does not re-encode to a fixed point";
    return true;
  } catch (const Error&) {
    return false;  // clean rejection -- the allowed alternative
  }
}

bool check_result(const std::string& text) {
  try {
    Result res = wire::decode_result(text);
    std::string canonical = wire::encode(res);
    EXPECT_EQ(wire::encode(wire::decode_result(canonical)), canonical)
        << "decoded result does not re-encode to a fixed point";
    return true;
  } catch (const Error&) {
    return false;
  }
}

// Valid canonical envelopes covering all six request kinds -- the
// mutation bases. Deterministic: graphs come from the pinned generator.
std::vector<std::string> request_envelopes() {
  library::ResourceLibrary lib = library::paper_library();
  dfg::GeneratorConfig gc;
  gc.num_nodes = 9;
  gc.seed = 17;
  dfg::Graph g = dfg::generate_random(gc);

  FindDesignRequest fd;
  fd.graph = g;
  fd.library = lib;
  fd.latency_bound = 12;
  fd.area_bound = 9.5;
  fd.engine = "combined";

  SweepRequest sw;
  sw.graph = g;
  sw.library = lib;
  sw.axis = SweepAxis::kArea;
  sw.latency_bounds = {12};
  sw.area_bounds = {6.0, 8.0, 9.5};

  GridRequest gr;
  gr.graph = g;
  gr.library = lib;
  gr.latency_bounds = {10, 12};
  gr.area_bounds = {8.0, 9.5};
  gr.baseline_versions = {{"adder_2", "mult_2"}};

  InjectRequest inj;
  inj.component = "ripple_carry_adder";
  inj.width = 4;
  inj.trials = 128;
  inj.seed = 3;

  RankGatesRequest rk;
  rk.component = "kogge_stone_adder";
  rk.width = 4;
  rk.trials = 64;
  rk.top = 3;

  StaRequest st;
  st.graph = g;
  st.library = lib;
  st.versions = "most_reliable";
  st.width = 4;
  st.clock = 9.5;
  st.top_paths = 2;
  st.top = 5;
  st.trials = 64;
  st.seed = 11;

  return {wire::encode(Request(fd)), wire::encode(Request(sw)),
          wire::encode(Request(gr)), wire::encode(Request(inj)),
          wire::encode(Request(rk)), wire::encode(Request(st))};
}

// Seed-corpus replay: the curated files are the executable spec of the
// valid/invalid boundary, and they run before any mutation does.
TEST(FuzzWire, SeedCorpusReplaysAsSpecified) {
  auto corpus = seed_corpus(".wire");
  ASSERT_GE(corpus.size(), 10u) << "fuzz_seed corpus went missing";
  for (const auto& [name, text] : corpus) {
    if (name.rfind("valid_", 0) == 0) {
      // Valid seeds were produced by encode(), so decoding must succeed
      // AND the file bytes must already be the canonical fixed point.
      if (name.find("request") != std::string::npos) {
        EXPECT_EQ(wire::encode(wire::decode_request(text)), text) << name;
      } else {
        EXPECT_EQ(wire::encode(wire::decode_result(text)), text) << name;
      }
    } else {
      EXPECT_FALSE(check_request(text) || check_result(text))
          << name << " should be rejected by both decoders";
    }
  }
}

TEST(FuzzWire, MutatedEnvelopesNeverCrash) {
  std::vector<std::string> bases = request_envelopes();
  for (const auto& [name, text] : seed_corpus(".wire")) {
    if (name.rfind("valid_", 0) == 0) bases.push_back(text);
  }
  Rng rng(0xF022BA5E);
  std::size_t iters = iterations(2000);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    std::string mutant = mutate(rng, bases[i % bases.size()]);
    if (check_request(mutant)) ++accepted;
    check_result(mutant);
  }
  // Mostly rejections by construction; a mutant that survives decoding
  // intact is fine, the loop only demands the oracle held every time.
  SCOPED_TRACE(accepted);
}

TEST(FuzzWire, RawRandomBytesNeverCrash) {
  Rng rng(0xDEADBEA7);
  std::size_t iters = iterations(2000);
  for (std::size_t i = 0; i < iters; ++i) {
    std::string noise = random_bytes(rng, 512);
    check_request(noise);
    check_result(noise);
  }
}

}  // namespace
}  // namespace rchls::api

#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "netlist/sim.hpp"
#include "netlist/stats.hpp"
#include "util/error.hpp"

namespace rchls::netlist {
namespace {

Netlist xor_circuit() {
  // out = a XOR b built from and/or/not.
  Netlist nl("xor2");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto b = nl.add_input_bus("b", 1).bits[0];
  auto na = nl.bnot(a);
  auto nb = nl.bnot(b);
  auto t1 = nl.band(a, nb);
  auto t2 = nl.band(na, b);
  nl.add_output_bus("out", {nl.bor(t1, t2)});
  return nl;
}

TEST(Netlist, GateKindMetadata) {
  EXPECT_EQ(fanin_count(GateKind::kInput), 0);
  EXPECT_EQ(fanin_count(GateKind::kNot), 1);
  EXPECT_EQ(fanin_count(GateKind::kXor), 2);
  EXPECT_STREQ(to_string(GateKind::kNand), "Nand");
}

TEST(Netlist, ConstructionTracksPorts) {
  Netlist nl = xor_circuit();
  EXPECT_EQ(nl.input_bits().size(), 2u);
  EXPECT_EQ(nl.input_buses().size(), 2u);
  EXPECT_EQ(nl.output_buses().size(), 1u);
  EXPECT_EQ(nl.output_bits().size(), 1u);
  EXPECT_EQ(nl.input_bus("a").bits.size(), 1u);
  EXPECT_THROW(nl.input_bus("zz"), Error);
  EXPECT_THROW(nl.output_bus("zz"), Error);
  nl.validate();
}

TEST(Netlist, RejectsForwardReferences) {
  Netlist nl("bad");
  auto a = nl.add_input_bit();
  EXPECT_THROW(nl.add_unary(GateKind::kNot, a + 5), Error);
  EXPECT_THROW(nl.add_binary(GateKind::kAnd, a, a + 9), Error);
}

TEST(Netlist, RejectsWrongArity) {
  Netlist nl("bad");
  auto a = nl.add_input_bit();
  EXPECT_THROW(nl.add_unary(GateKind::kAnd, a), Error);
  EXPECT_THROW(nl.add_binary(GateKind::kNot, a, a), Error);
}

TEST(Netlist, RejectsBadOutputBus) {
  Netlist nl("bad");
  nl.add_input_bit();
  EXPECT_THROW(nl.add_output_bus("o", {42}), Error);
}

TEST(Netlist, RejectsNonPositiveBusWidth) {
  Netlist nl("bad");
  EXPECT_THROW(nl.add_input_bus("a", 0), Error);
}

TEST(Sim, TruthTableOfXor) {
  Netlist nl = xor_circuit();
  Simulator sim(nl);
  EXPECT_EQ(sim.run_scalar({0, 0})[0], 0u);
  EXPECT_EQ(sim.run_scalar({0, 1})[0], 1u);
  EXPECT_EQ(sim.run_scalar({1, 0})[0], 1u);
  EXPECT_EQ(sim.run_scalar({1, 1})[0], 0u);
}

TEST(Sim, AllGateKindsEvaluate) {
  Netlist nl("kinds");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto b = nl.add_input_bus("b", 1).bits[0];
  nl.add_output_bus("and", {nl.band(a, b)});
  nl.add_output_bus("or", {nl.bor(a, b)});
  nl.add_output_bus("nand", {nl.bnand(a, b)});
  nl.add_output_bus("nor", {nl.bnor(a, b)});
  nl.add_output_bus("xor", {nl.bxor(a, b)});
  nl.add_output_bus("xnor", {nl.bxnor(a, b)});
  nl.add_output_bus("not", {nl.bnot(a)});
  nl.add_output_bus("buf", {nl.add_unary(GateKind::kBuf, a)});
  nl.add_output_bus("c0", {nl.add_const(false)});
  nl.add_output_bus("c1", {nl.add_const(true)});
  Simulator sim(nl);
  auto out = sim.run_scalar({1, 0});
  EXPECT_EQ(out[0], 0u);  // and
  EXPECT_EQ(out[1], 1u);  // or
  EXPECT_EQ(out[2], 1u);  // nand
  EXPECT_EQ(out[3], 0u);  // nor
  EXPECT_EQ(out[4], 1u);  // xor
  EXPECT_EQ(out[5], 0u);  // xnor
  EXPECT_EQ(out[6], 0u);  // not
  EXPECT_EQ(out[7], 1u);  // buf
  EXPECT_EQ(out[8], 0u);  // const0
  EXPECT_EQ(out[9], 1u);  // const1
}

TEST(Sim, LanesAreIndependent) {
  Netlist nl = xor_circuit();
  Simulator sim(nl);
  // lane 0: a=0,b=0; lane 1: a=1,b=0; lane 2: a=0,b=1; lane 3: a=1,b=1.
  std::vector<std::uint64_t> inputs{0b1010, 0b1100};
  auto words = sim.run(inputs);
  auto out = sim.output_words(words);
  EXPECT_EQ(out[0] & 0xF, 0b0110u);
}

TEST(Sim, FaultInjectionFlipsSelectedLanes) {
  Netlist nl("buf_chain");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto g1 = nl.add_unary(GateKind::kBuf, a);
  auto g2 = nl.add_unary(GateKind::kBuf, g1);
  nl.add_output_bus("out", {g2});
  Simulator sim(nl);

  std::vector<std::uint64_t> inputs{0};
  auto golden = sim.output_words(sim.run(inputs));
  auto faulty = sim.output_words(sim.run(inputs, Fault{g1, 0b101}));
  EXPECT_EQ(golden[0] ^ faulty[0], 0b101u);
}

TEST(Sim, FaultOnMaskedGateDoesNotPropagate) {
  Netlist nl("masked");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto zero = nl.add_const(false);
  auto buf = nl.add_unary(GateKind::kBuf, a);
  nl.add_output_bus("out", {nl.band(buf, zero)});
  Simulator sim(nl);
  std::vector<std::uint64_t> inputs{~0ULL};
  auto golden = sim.output_words(sim.run(inputs));
  auto faulty = sim.output_words(sim.run(inputs, Fault{buf, ~0ULL}));
  EXPECT_EQ(golden[0], faulty[0]);
}

TEST(Sim, RejectsWrongInputCount) {
  Netlist nl = xor_circuit();
  Simulator sim(nl);
  EXPECT_THROW(sim.run({0}), Error);
  EXPECT_THROW(sim.run_scalar({0}), Error);
}

TEST(Stats, CountsAndDepth) {
  Netlist nl = xor_circuit();
  Stats s = compute_stats(nl);
  EXPECT_EQ(s.logic_gates, 5u);  // 2 not, 2 and, 1 or
  EXPECT_EQ(s.per_kind[static_cast<std::size_t>(GateKind::kNot)], 2u);
  EXPECT_EQ(s.per_kind[static_cast<std::size_t>(GateKind::kAnd)], 2u);
  // depth: not (0.5) -> and (1) -> or (1) = 2.5
  EXPECT_DOUBLE_EQ(s.depth, 2.5);
  // area: 2 * 0.5 + 2 * 1 + 1 = 4
  EXPECT_DOUBLE_EQ(s.area, 4.0);
}

TEST(Stats, DotContainsGates) {
  Netlist nl = xor_circuit();
  std::string dot = to_dot(nl);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Or"), std::string::npos);
  EXPECT_NE(dot.find("out_out_0"), std::string::npos);
}

}  // namespace
}  // namespace rchls::netlist

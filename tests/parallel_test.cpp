#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "benchmarks/suite.hpp"
#include "circuits/adders.hpp"
#include "hls/exhaustive.hpp"
#include "hls/explore.hpp"
#include "library/resource.hpp"
#include "parallel/config.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"
#include "parallel/task_pool.hpp"
#include "ser/fault_injection.hpp"
#include "util/error.hpp"

namespace rchls::parallel {
namespace {

// ------------------------------------------------------------- partitioner

TEST(Partitioner, ChunksAreLaneAlignedAndCoverTheBudget) {
  auto chunks = partition_trials(64 * 100 + 7, 1);
  ASSERT_FALSE(chunks.empty());
  std::size_t total = 0;
  std::size_t expected_first = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.trials % kLanes, 0u);
    EXPECT_EQ(c.first_trial, expected_first);
    expected_first += c.trials;
    total += c.trials;
  }
  // Rounded up to the next lane multiple, exactly as the campaign reports.
  EXPECT_EQ(total, (64u * 100 + 7 + 63) / 64 * 64);
}

TEST(Partitioner, LayoutIsIndependentOfWorkerCount) {
  // The partition takes no worker count at all -- assert the layout is a
  // pure function of (trials, seed).
  auto a = partition_trials(64 * 1000, 7);
  auto b = partition_trials(64 * 1000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first_trial, b[i].first_trial);
    EXPECT_EQ(a[i].trials, b[i].trials);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(Partitioner, ChunkSeedsAreDistinctStreams) {
  auto chunks = partition_trials(64 * 1000, 42);
  std::set<std::uint64_t> seeds;
  for (const auto& c : chunks) seeds.insert(c.seed);
  EXPECT_EQ(seeds.size(), chunks.size());
  // And distinct from the campaign seed itself.
  EXPECT_EQ(seeds.count(42), 0u);
}

TEST(Partitioner, RangesTileTheIndexSpace) {
  auto ranges = partition_range(1001, 8, 16);
  ASSERT_FALSE(ranges.empty());
  std::uint64_t expected_begin = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, expected_begin);
    EXPECT_LT(r.begin, r.end);
    expected_begin = r.end;
  }
  EXPECT_EQ(ranges.back().end, 1001u);
}

// ------------------------------------------------------------ parallel_for

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (std::size_t jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, jobs);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelFor, MapKeepsResultsInIndexOrder) {
  auto out = parallel_map(
      100, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for(
          64,
          [](std::size_t i) {
            if (i % 7 == 3) throw Error("boom");
          },
          4),
      Error);
}

TEST(ParallelFor, NestedRegionsRunInline) {
  // A parallel_for launched from inside a pool worker must not spin up a
  // second pool (oversubscription / deadlock risk); it runs sequentially.
  std::atomic<int> total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        parallel_for(
            8, [&](std::size_t) { ++total; }, 8);
      },
      2);
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, SaturatedPoolWithUnevenTasksFinishesEverything) {
  // Stress: many more tasks than workers, with wildly uneven sizes, some
  // submitted from inside other tasks (exercises the local deques, the
  // block-based overflow queue and stealing all at once).
  ThreadPool pool(8);
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> sink{0};
  for (std::size_t i = 0; i < 500; ++i) {
    pool.submit([&, i] {
      std::size_t spin = (i % 13 == 0) ? 200000 : (i % 7) * 1000;
      std::size_t acc = 0;
      for (std::size_t k = 0; k < spin; ++k) acc += k;
      sink.store(acc, std::memory_order_relaxed);
      if (i % 50 == 0) {
        for (int child = 0; child < 20; ++child) {
          pool.submit([&] { ++done; });
        }
      }
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 500u + 10u * 20u);
}

TEST(ThreadPool, OverflowFifoHandsOutWholeBlocks) {
  RelaxedFifo q(4);
  for (int i = 0; i < 40; ++i) {
    Task t = [] {};
    ASSERT_TRUE(q.try_push(t));
  }
  std::deque<Task> out;
  // One block at a time, kBlockSize tasks per full block.
  EXPECT_EQ(q.pop_block(out), RelaxedFifo::kBlockSize);
  EXPECT_EQ(out.size(), RelaxedFifo::kBlockSize);
  while (q.pop_block(out) != 0) {
  }
  EXPECT_EQ(out.size(), 40u);
  EXPECT_TRUE(q.empty());
}

TEST(ThreadPool, CountersObserveOverflowTrafficAndExecution) {
  reset_pool_stats();
  {
    ThreadPool pool(4);
    std::atomic<std::size_t> done{0};
    for (std::size_t i = 0; i < 200; ++i) {
      pool.submit([&] { ++done; });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 200u);
  }
  PoolStats s = pool_stats();
  EXPECT_EQ(s.tasks_executed, 200u);
  // Every externally submitted task crosses the overflow FIFO exactly
  // once, in whole-block handoffs.
  EXPECT_EQ(s.overflow_pushes, 200u);
  EXPECT_EQ(s.overflow_pops, 200u);
  EXPECT_GE(s.block_handoffs, 200u / RelaxedFifo::kBlockSize);
  EXPECT_LE(s.block_handoffs, 200u);
}

TEST(ThreadPool, RandomizedSubmissionBurstsLoseNothing) {
  // Randomized stress for the relaxed overflow path: bursts of external
  // submissions (sized to wrap the ring several times) interleaved with
  // worker-side child tasks; every task must run exactly once.
  std::mt19937_64 rng(7);
  for (int round = 0; round < 3; ++round) {
    ThreadPool pool(1 + static_cast<std::size_t>(rng() % 8));
    std::vector<std::atomic<int>> hits(2000);
    for (auto& h : hits) h = 0;
    std::size_t submitted = 0;
    while (submitted < hits.size()) {
      std::size_t burst =
          std::min<std::size_t>(1 + rng() % 97, hits.size() - submitted);
      for (std::size_t k = 0; k < burst; ++k) {
        std::size_t i = submitted + k;
        if (i % 31 == 0 && i + 1 < hits.size()) continue;  // child submits it
        pool.submit([&, i] {
          ++hits[i];
          if (i % 31 == 1 && i >= 1) {
            pool.submit([&, j = i - 1] { ++hits[j]; });
          }
        });
      }
      submitted += burst;
      if (rng() % 3 == 0) std::this_thread::yield();
    }
    pool.wait_idle();
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " round " << round;
    }
  }
}

// ------------------------------------------------- determinism end-to-end

class JobsGuard {
 public:
  explicit JobsGuard(std::size_t jobs) { set_global_jobs(jobs); }
  ~JobsGuard() { set_global_jobs(0); }
};

TEST(Determinism, SweepsAreBitIdenticalAtAnyWorkerCount) {
  auto g = benchmarks::fir16();
  auto lib = library::paper_library();

  std::vector<std::vector<hls::SweepPoint>> runs;
  for (std::size_t jobs : {1, 2, 8}) {
    JobsGuard guard(jobs);
    runs.push_back(hls::latency_sweep(g, lib, {10, 12, 14, 16}, 10.0));
    auto area_points = hls::area_sweep(g, lib, 12, {8.0, 10.0, 12.0});
    runs.back().insert(runs.back().end(), area_points.begin(),
                       area_points.end());
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].latency_bound, runs[0][i].latency_bound);
      EXPECT_EQ(runs[r][i].area_bound, runs[0][i].area_bound);
      EXPECT_EQ(runs[r][i].reliability, runs[0][i].reliability);
      EXPECT_EQ(runs[r][i].area, runs[0][i].area);
      EXPECT_EQ(runs[r][i].latency, runs[0][i].latency);
    }
  }
}

TEST(Determinism, ComparisonGridIsBitIdenticalAtAnyWorkerCount) {
  auto g = benchmarks::diffeq();
  auto lib = library::paper_library();

  std::vector<std::string> csvs;
  for (std::size_t jobs : {1, 2, 8}) {
    JobsGuard guard(jobs);
    csvs.push_back(
        hls::to_csv(hls::comparison_grid(g, lib, {6, 7}, {8.0, 12.0})));
  }
  EXPECT_EQ(csvs[0], csvs[1]);
  EXPECT_EQ(csvs[0], csvs[2]);
}

TEST(Determinism, InjectionCampaignIsBitIdenticalAtAnyWorkerCount) {
  netlist::Netlist nl = circuits::kogge_stone_adder(8);
  ser::InjectionConfig cfg;
  cfg.trials = 64 * 64;
  cfg.seed = 123;

  std::vector<ser::InjectionResult> results;
  for (std::size_t jobs : {1, 2, 8}) {
    JobsGuard guard(jobs);
    results.push_back(ser::inject_campaign(nl, cfg));
  }
  for (std::size_t r = 1; r < results.size(); ++r) {
    EXPECT_EQ(results[r].trials, results[0].trials);
    EXPECT_EQ(results[r].propagated, results[0].propagated);
    EXPECT_EQ(results[r].logical_sensitivity,
              results[0].logical_sensitivity);
    EXPECT_EQ(results[r].susceptibility, results[0].susceptibility);
    EXPECT_EQ(results[r].half_width_95, results[0].half_width_95);
  }
}

TEST(Determinism, ExhaustiveSearchIsBitIdenticalAtAnyWorkerCount) {
  auto g = benchmarks::diffeq();
  auto lib = library::paper_library();

  std::vector<hls::Design> designs;
  for (std::size_t jobs : {1, 2, 8}) {
    JobsGuard guard(jobs);
    designs.push_back(hls::exhaustive_find_design(g, lib, 7, 12.0));
  }
  for (std::size_t r = 1; r < designs.size(); ++r) {
    EXPECT_EQ(designs[r].reliability, designs[0].reliability);
    EXPECT_EQ(designs[r].area, designs[0].area);
    EXPECT_EQ(designs[r].latency, designs[0].latency);
    EXPECT_EQ(designs[r].version_of, designs[0].version_of);
  }
}

}  // namespace
}  // namespace rchls::parallel

// In-process tests of the CLI (api/cli.hpp): the unified error contract
// (every failure is one "error: ..." line with documented exit codes),
// and the shared-writer guarantee -- `rchls synth`/`inject` with
// --format json are byte-identical to `rchls run` on the equivalent
// one-action scenario.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/cli.hpp"
#include "parallel/config.hpp"
#include "temp_dir.hpp"
#include "util/strings.hpp"

namespace rchls::api {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliRun r;
  r.code = cli_main(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

// The CLI accepts --jobs, which writes the process-global config; keep
// tests hermetic.
class ApiCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_jobs_ = parallel::global_config().jobs;
    dir_ = rchls::testing::unique_test_dir("api_cli_test_tmp");
  }
  void TearDown() override {
    parallel::global_config().jobs = saved_jobs_;
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path write(const std::string& name,
                              const std::string& text) {
    std::filesystem::path p = dir_ / name;
    std::ofstream out(p);
    out << text;
    return p;
  }

  std::size_t saved_jobs_ = 0;
  std::filesystem::path dir_;
};

// ------------------------------------------------- error contract (codes)

TEST_F(ApiCliTest, MissingCommandIsExitOneWithUsage) {
  CliRun r = cli({});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(starts_with(r.err, "error: missing command")) << r.err;
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST_F(ApiCliTest, EveryBadArgumentPathSharesTheErrorPrefix) {
  // One representative per failure family; all exit 1, all "error: ".
  const std::vector<std::vector<std::string>> cases = {
      {"frobnicate"},                                  // unknown command
      {"synth"},                                       // missing positional
      {"synth", "fir16"},                              // missing bounds
      {"synth", "fir16", "--latency", "x", "--area", "11"},  // bad number
      {"synth", "fir16", "--latency"},                 // missing value
      {"synth", "fir16", "--wat"},                     // unknown flag
      {"synth", "fir16", "--latency", "11", "--area", "11",
       "--engine", "quantum"},                         // unknown engine
      {"synth", "fir16", "--latency", "11", "--area", "11",
       "--scheduler", "magic"},                        // unknown scheduler
      {"synth", "nope.dfg", "--latency", "11", "--area", "11"},  // no file
      {"run", "nope.scn"},                             // missing scenario
      {"run", "x.scn", "--format", "yaml"},            // bad format
      {"sweep", "fir16", "--latency", "12"},           // missing areas
      {"inject", "ripple_carry_adder", "--width", "0"},  // bad width
      {"inject", "not_a_component"},                   // unknown component
      {"bench", "--format", "json"},                   // format on bench
      {"synth", "fir16", "--latency", "11", "--area", "11",
       "--verify-cache"},                              // flag on wrong cmd
      {"run", "x.scn", "--trials", "64"},              // inject flag on run
      {"inject", "ripple_carry_adder", "--seed", "-1"},  // negative seed
      {"synth", "fir16", "--latency", "11", "--area", "11",
       "--datapath", "--format", "json"},              // datapath sans table
  };
  for (const auto& args : cases) {
    CliRun r = cli(args);
    std::string joined;
    for (const auto& a : args) joined += a + " ";
    EXPECT_EQ(r.code, 1) << joined;
    EXPECT_TRUE(starts_with(r.err, "error: ")) << joined << "-> " << r.err;
  }
}

TEST_F(ApiCliTest, MisplacedFlagsFailBeforeAnyWorkRuns) {
  // Argument validation happens before the engines run, so even an
  // otherwise-valid synth with a misplaced flag is a cheap exit-1.
  CliRun r = cli({"synth", "fir16", "--latency", "11", "--area", "11",
                  "--top", "5"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(starts_with(r.err, "error: --top does not apply"))
      << r.err;
}

TEST_F(ApiCliTest, SeedAcceptsTheFullUint64Range) {
  CliRun r = cli({"inject", "ripple_carry_adder", "--width", "4",
                  "--trials", "128", "--seed", "3000000000"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST_F(ApiCliTest, InfeasibleSynthIsExitTwo) {
  CliRun r = cli({"synth", "fir16", "--latency", "1", "--area", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_TRUE(starts_with(r.err, "error: no solution: ")) << r.err;
  EXPECT_TRUE(r.out.empty());
}

TEST_F(ApiCliTest, SuccessIsExitZero) {
  EXPECT_EQ(cli({"bench"}).code, 0);
  CliRun r = cli({"synth", "fig4_example", "--latency", "6", "--area",
                  "8"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(r.err.empty());
  EXPECT_NE(r.out.find("reliability"), std::string::npos);
}

// ------------------------------------------- shared writers, --format/--out

TEST_F(ApiCliTest, SynthJsonIsByteIdenticalToEquivalentScenario) {
  auto scn = write("synth_equiv.scn",
                   "scenario synth\n"
                   "graph fir16\n"
                   "find_design latency=11 area=11 label=synth\n");
  CliRun direct = cli({"synth", "fir16", "--latency", "11", "--area",
                       "11", "--format", "json"});
  CliRun scenario = cli({"run", scn.string(), "--format", "json"});
  ASSERT_EQ(direct.code, 0) << direct.err;
  ASSERT_EQ(scenario.code, 0) << scenario.err;
  EXPECT_EQ(direct.out, scenario.out);
}

TEST_F(ApiCliTest, InjectJsonIsByteIdenticalToEquivalentScenario) {
  auto scn = write("inject_equiv.scn",
                   "scenario inject\n"
                   "inject ripple_carry_adder width=4 trials=128 "
                   "label=inject\n"
                   "rank_gates ripple_carry_adder width=4 trials=128 "
                   "top=3 label=rank_gates\n");
  CliRun direct = cli({"inject", "ripple_carry_adder", "--width", "4",
                       "--trials", "128", "--top", "3", "--format",
                       "json"});
  CliRun scenario = cli({"run", scn.string(), "--format", "json"});
  ASSERT_EQ(direct.code, 0) << direct.err;
  ASSERT_EQ(scenario.code, 0) << scenario.err;
  EXPECT_EQ(direct.out, scenario.out);
}

TEST_F(ApiCliTest, SynthSupportsCsvAndTableFormats) {
  CliRun csv = cli({"synth", "fig4_example", "--latency", "6", "--area",
                    "8", "--format", "csv"});
  EXPECT_EQ(csv.code, 0);
  EXPECT_NE(csv.out.find("engine,latency_bound,area_bound,solved"),
            std::string::npos)
      << csv.out;

  CliRun table = cli({"synth", "fig4_example", "--latency", "6",
                      "--area", "8", "--format", "table"});
  EXPECT_EQ(table.code, 0);
  EXPECT_NE(table.out.find("== synth (find_design) =="),
            std::string::npos);
}

TEST_F(ApiCliTest, OutFlagWritesTheReportToAFile) {
  std::filesystem::path out_path = dir_ / "report.json";
  CliRun r = cli({"inject", "ripple_carry_adder", "--width", "4",
                  "--trials", "128", "--format", "json", "--out",
                  out_path.string()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(r.out.empty());

  std::ifstream in(out_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"kind\": \"inject\""),
            std::string::npos);

  CliRun direct = cli({"inject", "ripple_carry_adder", "--width", "4",
                       "--trials", "128", "--format", "json"});
  EXPECT_EQ(content.str(), direct.out);
}

TEST_F(ApiCliTest, SweepDefaultsToCsv) {
  CliRun r = cli({"sweep", "fig4_example", "--latency", "6", "--areas",
                  "6,8,10"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("# action sweep sweep"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("latency_bound,area_bound,reliability"),
            std::string::npos);
}

// ----------------------------------------------------------- verify-cache

TEST_F(ApiCliTest, VerifyCacheConfirmsWarmRunServedFromCache) {
  auto scn = write("verify.scn",
                   "scenario verify\n"
                   "graph fig4_example\n"
                   "find_design latency=6 area=8\n"
                   "inject ripple_carry_adder width=4 trials=128\n");
  CliRun r = cli({"run", scn.string(), "--format", "json",
                  "--verify-cache"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("cache: verified 2 actions"), std::string::npos)
      << r.err;
  EXPECT_NE(r.out.find("\"format_version\": 1"), std::string::npos);
}

}  // namespace
}  // namespace rchls::api

// In-process tests of the CLI (api/cli.hpp): the unified error contract
// (every failure is one "error: ..." line with documented exit codes),
// and the shared-writer guarantee -- `rchls synth`/`inject` with
// --format json are byte-identical to `rchls run` on the equivalent
// one-action scenario.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "api/cli.hpp"
#include "parallel/config.hpp"
#include "serve/server.hpp"
#include "temp_dir.hpp"
#include "util/strings.hpp"

namespace rchls::api {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun cli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliRun r;
  r.code = cli_main(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

// The CLI accepts --jobs, which writes the process-global config; keep
// tests hermetic.
class ApiCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_jobs_ = parallel::global_config().jobs;
    dir_ = rchls::testing::unique_test_dir("api_cli_test_tmp");
  }
  void TearDown() override {
    parallel::global_config().jobs = saved_jobs_;
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path write(const std::string& name,
                              const std::string& text) {
    std::filesystem::path p = dir_ / name;
    std::ofstream out(p);
    out << text;
    return p;
  }

  std::size_t saved_jobs_ = 0;
  std::filesystem::path dir_;
};

// ------------------------------------------------- error contract (codes)

TEST_F(ApiCliTest, MissingCommandIsExitOneWithUsage) {
  CliRun r = cli({});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(starts_with(r.err, "error: missing command")) << r.err;
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST_F(ApiCliTest, EveryBadArgumentPathSharesTheErrorPrefix) {
  // One representative per failure family; all exit 1, all "error: ".
  const std::vector<std::vector<std::string>> cases = {
      {"frobnicate"},                                  // unknown command
      {"synth"},                                       // missing positional
      {"synth", "fir16"},                              // missing bounds
      {"synth", "fir16", "--latency", "x", "--area", "11"},  // bad number
      {"synth", "fir16", "--latency"},                 // missing value
      {"synth", "fir16", "--wat"},                     // unknown flag
      {"synth", "fir16", "--latency", "11", "--area", "11",
       "--engine", "quantum"},                         // unknown engine
      {"synth", "fir16", "--latency", "11", "--area", "11",
       "--scheduler", "magic"},                        // unknown scheduler
      {"synth", "nope.dfg", "--latency", "11", "--area", "11"},  // no file
      {"run", "nope.scn"},                             // missing scenario
      {"run", "x.scn", "--format", "yaml"},            // bad format
      {"sweep", "fir16", "--latency", "12"},           // missing areas
      {"inject", "ripple_carry_adder", "--width", "0"},  // bad width
      {"inject", "not_a_component"},                   // unknown component
      {"bench", "--format", "json"},                   // format on bench
      {"synth", "fir16", "--latency", "11", "--area", "11",
       "--verify-cache"},                              // flag on wrong cmd
      {"run", "x.scn", "--trials", "64"},              // inject flag on run
      {"inject", "ripple_carry_adder", "--seed", "-1"},  // negative seed
      {"synth", "fir16", "--latency", "11", "--area", "11",
       "--datapath", "--format", "json"},              // datapath sans table
  };
  for (const auto& args : cases) {
    CliRun r = cli(args);
    std::string joined;
    for (const auto& a : args) joined += a + " ";
    EXPECT_EQ(r.code, 1) << joined;
    EXPECT_TRUE(starts_with(r.err, "error: ")) << joined << "-> " << r.err;
  }
}

TEST_F(ApiCliTest, MisplacedFlagsFailBeforeAnyWorkRuns) {
  // Argument validation happens before the engines run, so even an
  // otherwise-valid synth with a misplaced flag is a cheap exit-1.
  CliRun r = cli({"synth", "fir16", "--latency", "11", "--area", "11",
                  "--top", "5"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(starts_with(r.err, "error: --top does not apply"))
      << r.err;
}

TEST_F(ApiCliTest, SeedAcceptsTheFullUint64Range) {
  CliRun r = cli({"inject", "ripple_carry_adder", "--width", "4",
                  "--trials", "128", "--seed", "3000000000"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST_F(ApiCliTest, InfeasibleSynthIsExitTwo) {
  CliRun r = cli({"synth", "fir16", "--latency", "1", "--area", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_TRUE(starts_with(r.err, "error: no solution: ")) << r.err;
  EXPECT_TRUE(r.out.empty());
}

TEST_F(ApiCliTest, SuccessIsExitZero) {
  EXPECT_EQ(cli({"bench"}).code, 0);
  CliRun r = cli({"synth", "fig4_example", "--latency", "6", "--area",
                  "8"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(r.err.empty());
  EXPECT_NE(r.out.find("reliability"), std::string::npos);
}

// ------------------------------------------- shared writers, --format/--out

TEST_F(ApiCliTest, SynthJsonIsByteIdenticalToEquivalentScenario) {
  auto scn = write("synth_equiv.scn",
                   "scenario synth\n"
                   "graph fir16\n"
                   "find_design latency=11 area=11 label=synth\n");
  CliRun direct = cli({"synth", "fir16", "--latency", "11", "--area",
                       "11", "--format", "json"});
  CliRun scenario = cli({"run", scn.string(), "--format", "json"});
  ASSERT_EQ(direct.code, 0) << direct.err;
  ASSERT_EQ(scenario.code, 0) << scenario.err;
  EXPECT_EQ(direct.out, scenario.out);
}

TEST_F(ApiCliTest, InjectJsonIsByteIdenticalToEquivalentScenario) {
  auto scn = write("inject_equiv.scn",
                   "scenario inject\n"
                   "inject ripple_carry_adder width=4 trials=128 "
                   "label=inject\n"
                   "rank_gates ripple_carry_adder width=4 trials=128 "
                   "top=3 label=rank_gates\n");
  CliRun direct = cli({"inject", "ripple_carry_adder", "--width", "4",
                       "--trials", "128", "--top", "3", "--format",
                       "json"});
  CliRun scenario = cli({"run", scn.string(), "--format", "json"});
  ASSERT_EQ(direct.code, 0) << direct.err;
  ASSERT_EQ(scenario.code, 0) << scenario.err;
  EXPECT_EQ(direct.out, scenario.out);
}

TEST_F(ApiCliTest, SynthSupportsCsvAndTableFormats) {
  CliRun csv = cli({"synth", "fig4_example", "--latency", "6", "--area",
                    "8", "--format", "csv"});
  EXPECT_EQ(csv.code, 0);
  EXPECT_NE(csv.out.find("engine,latency_bound,area_bound,solved"),
            std::string::npos)
      << csv.out;

  CliRun table = cli({"synth", "fig4_example", "--latency", "6",
                      "--area", "8", "--format", "table"});
  EXPECT_EQ(table.code, 0);
  EXPECT_NE(table.out.find("== synth (find_design) =="),
            std::string::npos);
}

TEST_F(ApiCliTest, OutFlagWritesTheReportToAFile) {
  std::filesystem::path out_path = dir_ / "report.json";
  CliRun r = cli({"inject", "ripple_carry_adder", "--width", "4",
                  "--trials", "128", "--format", "json", "--out",
                  out_path.string()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(r.out.empty());

  std::ifstream in(out_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"kind\": \"inject\""),
            std::string::npos);

  CliRun direct = cli({"inject", "ripple_carry_adder", "--width", "4",
                       "--trials", "128", "--format", "json"});
  EXPECT_EQ(content.str(), direct.out);
}

TEST_F(ApiCliTest, SweepDefaultsToCsv) {
  CliRun r = cli({"sweep", "fig4_example", "--latency", "6", "--areas",
                  "6,8,10"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("# action sweep sweep"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("latency_bound,area_bound,reliability"),
            std::string::npos);
}

// ------------------------------------------------------------------- sta

TEST_F(ApiCliTest, StaJsonIsByteIdenticalToEquivalentScenario) {
  auto scn = write("sta_equiv.scn",
                   "scenario sta\n"
                   "sta brent_kung_adder width=4 trials=64 top=3 "
                   "top_paths=2 label=sta\n");
  CliRun direct = cli({"sta", "brent_kung_adder", "--width", "4",
                       "--trials", "64", "--top", "3", "--top-paths",
                       "2", "--format", "json"});
  CliRun scenario = cli({"run", scn.string(), "--format", "json"});
  ASSERT_EQ(direct.code, 0) << direct.err;
  ASSERT_EQ(scenario.code, 0) << scenario.err;
  EXPECT_EQ(direct.out, scenario.out);
}

TEST_F(ApiCliTest, GraphStaJsonIsByteIdenticalToEquivalentScenario) {
  // Graph targets carry the design context (library + version policy);
  // the shared-writer guarantee must hold for that shape too.
  auto scn = write("sta_graph_equiv.scn",
                   "scenario sta\n"
                   "graph fig4_example\n"
                   "library paper\n"
                   "sta versions=most_reliable width=4 trials=64 "
                   "clock=20 top=5 top_paths=2 label=sta\n");
  CliRun direct = cli({"sta", "fig4_example", "--versions",
                       "most_reliable", "--width", "4", "--trials",
                       "64", "--clock", "20", "--top", "5",
                       "--top-paths", "2", "--format", "json"});
  CliRun scenario = cli({"run", scn.string(), "--format", "json"});
  ASSERT_EQ(direct.code, 0) << direct.err;
  ASSERT_EQ(scenario.code, 0) << scenario.err;
  EXPECT_EQ(direct.out, scenario.out);
  EXPECT_NE(direct.out.find("\"kind\": \"sta\""), std::string::npos);
}

TEST_F(ApiCliTest, StaBadArgumentsShareTheErrorPrefix) {
  const std::vector<std::vector<std::string>> cases = {
      {"sta"},                                         // missing target
      {"sta", "not_a_component_or_file"},              // unknown target
      {"sta", "ripple_carry_adder", "--width", "0"},   // bad width
      {"sta", "ripple_carry_adder", "--clock", "-1"},  // negative clock
      {"sta", "ripple_carry_adder", "--top-paths", "-1"},
      {"sta", "fig4_example", "--versions", "slowest"},
      {"sta", "ripple_carry_adder", "--latency", "4"},  // synth flag
  };
  for (const auto& args : cases) {
    CliRun r = cli(args);
    std::string joined;
    for (const auto& a : args) joined += a + " ";
    EXPECT_EQ(r.code, 1) << joined;
    EXPECT_TRUE(starts_with(r.err, "error: ")) << joined << "-> " << r.err;
  }
}

// The ISSUE-pinned determinism matrix for `rchls sta`: the JSON report
// is byte-identical at --jobs 1 vs 8 and over a two-daemon fleet
// (--endpoints against in-process serve daemons). The --shards leg runs
// against the real binary in StaReportIsByteIdenticalAcrossShardCounts.
TEST_F(ApiCliTest, StaReportIsByteIdenticalAcrossJobsAndFleet) {
  const std::vector<std::string> base = {
      "sta", "kogge_stone_adder", "--width", "4", "--trials", "64",
      "--seed", "3", "--top", "5", "--format", "json"};
  auto with = [&](std::vector<std::string> extra) {
    std::vector<std::string> v = base;
    v.insert(v.end(), extra.begin(), extra.end());
    return v;
  };

  CliRun ref = cli(with({"--jobs", "1"}));
  ASSERT_EQ(ref.code, 0) << ref.err;
  CliRun eight = cli(with({"--jobs", "8"}));
  ASSERT_EQ(eight.code, 0) << eight.err;
  EXPECT_EQ(eight.out, ref.out) << "sta differs between jobs 1 and 8";

  // Two daemons, each with its own log stream (shared streams race).
  std::vector<std::string> socks = {(dir_ / "d0.sock").string(),
                                    (dir_ / "d1.sock").string()};
  std::vector<std::unique_ptr<std::ostringstream>> logs;
  std::vector<std::unique_ptr<serve::Server>> daemons;
  for (const auto& sock : socks) {
    logs.push_back(std::make_unique<std::ostringstream>());
    serve::ServerOptions so;
    so.socket_path = sock;
    so.workers = 2;
    so.log = logs.back().get();
    daemons.push_back(std::make_unique<serve::Server>(std::move(so)));
  }
  CliRun fleet = cli(with({"--endpoints", socks[0] + "," + socks[1]}));
  ASSERT_EQ(fleet.code, 0) << fleet.err;
  EXPECT_EQ(fleet.out, ref.out) << "sta differs over a 2-daemon fleet";
  EXPECT_NE(fleet.err.find("local_fallbacks=0"), std::string::npos)
      << fleet.err;
}

// The --shards leg needs a real worker binary: in-process cli_main
// would re-exec THIS test binary as the exec-request worker. Spawns the
// built rchls (sibling of the tests under the build tree) instead.
TEST_F(ApiCliTest, StaReportIsByteIdenticalAcrossShardCounts) {
#ifndef RCHLS_BINARY_DIR
  GTEST_SKIP() << "RCHLS_BINARY_DIR not configured";
#else
  std::filesystem::path binary =
      std::filesystem::path(RCHLS_BINARY_DIR) / "rchls";
  if (!std::filesystem::exists(binary)) {
    GTEST_SKIP() << "rchls binary not built at " << binary;
  }
  CliRun ref = cli({"sta", "kogge_stone_adder", "--width", "4",
                    "--trials", "64", "--seed", "3", "--top", "5",
                    "--format", "json"});
  ASSERT_EQ(ref.code, 0) << ref.err;

  for (int shards : {1, 2}) {
    std::filesystem::path out_path =
        dir_ / ("shards_" + std::to_string(shards) + ".json");
    std::string cmd = "'" + binary.string() +
                      "' sta kogge_stone_adder --width 4 --trials 64"
                      " --seed 3 --top 5 --format json --shards " +
                      std::to_string(shards) + " --out '" +
                      out_path.string() + "' 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
    std::ifstream in(out_path, std::ios::binary);
    ASSERT_TRUE(in.good()) << out_path;
    std::ostringstream got;
    got << in.rdbuf();
    EXPECT_EQ(got.str(), ref.out) << "sta differs at --shards " << shards;
  }
#endif
}

// ----------------------------------------------------------- verify-cache

TEST_F(ApiCliTest, VerifyCacheConfirmsWarmRunServedFromCache) {
  auto scn = write("verify.scn",
                   "scenario verify\n"
                   "graph fig4_example\n"
                   "find_design latency=6 area=8\n"
                   "inject ripple_carry_adder width=4 trials=128\n");
  CliRun r = cli({"run", scn.string(), "--format", "json",
                  "--verify-cache"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("cache: verified 2 actions"), std::string::npos)
      << r.err;
  EXPECT_NE(r.out.find("\"format_version\": 1"), std::string::npos);
}

}  // namespace
}  // namespace rchls::api

#include <gtest/gtest.h>

#include "benchmarks/suite.hpp"
#include "hls/find_design.hpp"
#include "hls/objectives.hpp"
#include "util/error.hpp"

namespace rchls::hls {
namespace {

using library::ResourceLibrary;

TEST(MinimizeArea, MeetsBothConstraints) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  Design d = minimize_area(g, lib, 10, 0.85);
  validate_design(d, g, lib);
  EXPECT_GE(d.reliability, 0.85);
  EXPECT_LE(d.latency, 10);
}

TEST(MinimizeArea, HigherTargetCostsMoreArea) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  Design low = minimize_area(g, lib, 10, 0.80);
  Design high = minimize_area(g, lib, 10, 0.97);
  EXPECT_LE(low.area, high.area + 1e-9);
  EXPECT_GE(high.reliability, 0.97);
}

TEST(MinimizeArea, IsMinimalAtItsGranularity) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  Design d = minimize_area(g, lib, 10, 0.9);
  // One step tighter must fail the target or the bounds.
  ObjectiveOptions opts;
  double tighter = d.area - opts.area_step;
  if (tighter > 0) {
    try {
      Design t = find_design(g, lib, 10, tighter);
      EXPECT_LT(t.reliability, 0.9);
    } catch (const NoSolutionError&) {
      SUCCEED();
    }
  }
}

TEST(MinimizeArea, ThrowsWhenTargetUnreachable) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  ObjectiveOptions opts;
  opts.max_area = 64.0;
  // FIR at Ld=10 cannot reach 0.9999 even with redundancy-free best.
  EXPECT_THROW(minimize_area(g, lib, 10, 0.9999, opts), NoSolutionError);
}

TEST(MinimizeLatency, MeetsBothConstraints) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  Design d = minimize_latency(g, lib, 12.0, 0.6);
  validate_design(d, g, lib);
  EXPECT_GE(d.reliability, 0.6);
  EXPECT_LE(d.area, 12.0 + 1e-9);
}

TEST(MinimizeLatency, HigherTargetCostsMoreLatency) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  Design fast = minimize_latency(g, lib, 12.0, 0.5);
  Design reliable = minimize_latency(g, lib, 12.0, 0.85);
  EXPECT_LE(fast.latency, reliable.latency);
}

TEST(MinimizeLatency, ThrowsWhenTargetUnreachable) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  ObjectiveOptions opts;
  opts.max_latency = 64;
  // 0.99 exceeds even the all-most-reliable product 0.999^23 = 0.9773,
  // so no redundancy-free design can reach it at any latency.
  EXPECT_THROW(minimize_latency(g, lib, 6.0, 0.99, opts), NoSolutionError);
}

TEST(Objectives, RejectBadTargets) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  EXPECT_THROW(minimize_area(g, lib, 10, 0.0), Error);
  EXPECT_THROW(minimize_area(g, lib, 10, 1.5), Error);
  EXPECT_THROW(minimize_latency(g, lib, 10.0, -0.1), Error);
}

}  // namespace
}  // namespace rchls::hls

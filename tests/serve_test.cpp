// Serve subsystem tests (src/serve/): the daemon acceptance criteria.
// Concurrent clients get byte-identical results to a local Session; a
// second wave executes nothing; malformed frames, oversized frames,
// queue overflow and mid-request disconnects produce clean error
// envelopes (or cost only the offending connection) -- never a daemon
// crash; and a daemon restarted over the same cache directory serves
// from disk.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/cli.hpp"
#include "api/request.hpp"
#include "api/session.hpp"
#include "api/wire.hpp"
#include "benchmarks/suite.hpp"
#include "library/resource.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "temp_dir.hpp"
#include "util/error.hpp"
#include "util/socket.hpp"

namespace rchls::serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = rchls::testing::unique_test_dir("serve_test_tmp");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string sock_path() const { return (dir_ / "d.sock").string(); }
  std::string cache_dir() const { return (dir_ / "cache").string(); }

  ServerOptions options() {
    ServerOptions so;
    so.socket_path = sock_path();
    so.log = &log_;
    return so;
  }

  std::ostringstream log_;
  std::filesystem::path dir_;
};

api::Request inject_request(std::uint64_t seed) {
  api::InjectRequest req;
  req.component = "ripple_carry_adder";
  req.width = 4;
  req.trials = 128;
  req.seed = seed;
  return api::Request(req);
}

api::Request find_design_request() {
  api::FindDesignRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.latency_bound = 6;
  req.area_bound = 8.0;
  return api::Request(req);
}

api::Request sweep_request() {
  api::SweepRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.axis = api::SweepAxis::kArea;
  req.latency_bounds = {6};
  req.area_bounds = {6.0, 8.0, 10.0};
  return api::Request(req);
}

// A workload covering three request kinds; every test's reference is
// the same requests through a plain single-threaded Session.
std::vector<api::Request> workload() {
  std::vector<api::Request> reqs;
  reqs.push_back(find_design_request());
  reqs.push_back(sweep_request());
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    reqs.push_back(inject_request(seed));
  }
  return reqs;
}

// ------------------------------------------------- bounded queue contract

TEST(ServeQueue, RefusesWhenFullAndDrainsAfterStop) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3)) << "overflow must refuse, not block";
  EXPECT_EQ(q.size(), 2u);

  q.stop();
  EXPECT_FALSE(q.try_push(4)) << "stopped queues admit nothing";
  // Admitted work still drains after stop -- the daemon's "finish what
  // you accepted" shutdown contract.
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_FALSE(q.pop().has_value());
}

// ------------------------------------------------------ result identity

TEST_F(ServeTest, ConcurrentClientsAreByteIdenticalToALocalSession) {
  std::vector<api::Request> reqs = workload();
  api::Session local((api::SessionOptions()));
  std::vector<std::string> reference;
  for (const auto& r : reqs) reference.push_back(api::wire::encode(local.run(r)));

  ServerOptions so = options();
  so.workers = 4;
  Server server(std::move(so));

  auto wave = [&] {
    constexpr int kClients = 3;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        Client client = Client::connect_unix(server.socket_path());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          EXPECT_EQ(api::wire::encode(client.call(reqs[i])), reference[i])
              << "request " << i;
        }
      });
    }
    for (auto& t : clients) t.join();
  };

  wave();
  // Three clients raced over six distinct requests: each request
  // executed exactly once (concurrent duplicates dedup into late cache
  // hits), never per-client.
  EXPECT_EQ(server.executions(), reqs.size());

  wave();  // the warm wave -- the acceptance criterion
  EXPECT_EQ(server.executions(), reqs.size())
      << "a warm daemon must serve entirely from cache";
  EXPECT_NE(log_.str().find("executed=0"), std::string::npos);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.connections, 6u);
  EXPECT_EQ(stats.requests, 6 * reqs.size());
  EXPECT_EQ(stats.errors, 0u);
}

TEST_F(ServeTest, TcpLoopbackServesTheSameBytes) {
  api::Session local((api::SessionOptions()));
  std::string reference = api::wire::encode(local.run(inject_request(7)));

  ServerOptions so = options();
  so.socket_path.clear();
  so.tcp_port = 0;  // ephemeral
  Server server(std::move(so));
  ASSERT_GT(server.tcp_port(), 0);

  Client client = Client::connect_tcp(server.tcp_port());
  EXPECT_EQ(api::wire::encode(client.call(inject_request(7))), reference);
}

// A daemon restarted over the same --cache-dir is warm from request
// one: the disk layer, through the serve path.
TEST_F(ServeTest, RestartedDaemonServesFromDiskWithoutExecuting) {
  {
    ServerOptions so = options();
    so.session.cache_dir = cache_dir();
    Server first(std::move(so));
    Client client = Client::connect_unix(first.socket_path());
    client.call(inject_request(1));
    EXPECT_EQ(first.executions(), 1u);
  }  // orderly destructor stop

  ServerOptions so = options();
  so.session.cache_dir = cache_dir();
  Server second(std::move(so));
  Client client = Client::connect_unix(second.socket_path());
  client.call(inject_request(1));
  EXPECT_EQ(second.executions(), 0u);
  EXPECT_NE(log_.str().find("source=disk executed=0"), std::string::npos)
      << log_.str();
}

// ----------------------------------------------------------- error paths

TEST_F(ServeTest, MalformedPayloadGetsAnErrorEnvelopeNotACrash) {
  Server server(options());
  Client client = Client::connect_unix(server.socket_path());

  for (const char* garbage : {"this is not json", "{}", "[1,2,3]",
                              "{\"format_version\":\"rchls.wire.v1\"}"}) {
    Reply reply = decode_reply(client.call_raw(garbage));
    EXPECT_FALSE(reply.ok()) << garbage;
    EXPECT_FALSE(reply.error.empty());
  }
  // The same connection still serves real requests afterwards.
  EXPECT_NO_THROW(client.call(inject_request(1)));
  EXPECT_EQ(server.stats().errors, 4u);
}

TEST_F(ServeTest, ClientCallRaisesServerErrorsAsServePrefixedErrors) {
  Server server(options());
  Client client = Client::connect_unix(server.socket_path());
  api::InjectRequest bad;
  bad.component = "no_such_component";
  bad.width = 4;
  bad.trials = 8;
  try {
    client.call(api::Request(bad));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("serve: "), std::string::npos);
  }
}

TEST_F(ServeTest, OversizedFrameCostsOnlyTheOffendingConnection) {
  ServerOptions so = options();
  so.max_frame_bytes = 1024;
  Server server(std::move(so));

  Client offender = Client::connect_unix(server.socket_path());
  std::string huge(4096, 'x');
  // The server answers with an error envelope (best effort), then drops
  // the connection -- an oversized prefix cannot be re-synchronized.
  Reply reply = decode_reply(offender.call_raw(huge));
  EXPECT_FALSE(reply.ok());
  EXPECT_NE(reply.error.find("frame"), std::string::npos) << reply.error;

  // The daemon itself is unharmed: fresh connections serve normally.
  Client fresh = Client::connect_unix(server.socket_path());
  EXPECT_NO_THROW(fresh.call(inject_request(1)));
  EXPECT_GE(server.stats().errors, 1u);
}

TEST_F(ServeTest, MidFrameDisconnectLeavesTheDaemonServing) {
  Server server(options());
  {
    util::Socket raw = util::connect_unix(server.socket_path());
    // Two bytes of a four-byte length prefix, then death.
    const char partial[2] = {0, 0};
    ASSERT_EQ(::send(raw.fd(), partial, 2, 0), 2);
  }
  Client client = Client::connect_unix(server.socket_path());
  EXPECT_NO_THROW(client.call(inject_request(1)));
}

TEST_F(ServeTest, OverflowRefusesWithAnErrorEnvelopePerRefusedFrame) {
  ServerOptions so = options();
  so.workers = 1;
  so.max_queue = 1;
  Server server(std::move(so));

  // One expensive request parks the single worker; the pipelined cheap
  // frames behind it can occupy at most one queue slot, so most are
  // refused -- immediately, with an envelope each, in request order.
  api::InjectRequest slow;
  slow.component = "carry_save_multiplier";
  slow.width = 16;
  slow.trials = 65536;
  slow.seed = 42;

  util::Socket raw = util::connect_unix(server.socket_path());
  util::send_frame(raw, api::wire::encode(api::Request(slow)));
  constexpr int kFlood = 7;
  for (int i = 0; i < kFlood; ++i) {
    util::send_frame(raw, api::wire::encode(inject_request(100 + i)));
  }

  int ok = 0;
  int refused = 0;
  for (int i = 0; i < kFlood + 1; ++i) {
    auto frame = util::recv_frame(raw);
    ASSERT_TRUE(frame.has_value()) << "every frame must be answered";
    Reply reply = decode_reply(*frame);
    if (reply.ok()) {
      ++ok;
    } else {
      ++refused;
      EXPECT_NE(reply.error.find("capacity"), std::string::npos)
          << reply.error;
    }
  }
  EXPECT_GE(ok, 1) << "the admitted requests must still be served";
  EXPECT_GE(refused, 1) << "the flood must hit backpressure";
  EXPECT_EQ(server.stats().overflows, static_cast<std::uint64_t>(refused));

  // Refusal is not a ban: once the queue drains, the same connection is
  // served again.
  util::send_frame(raw, api::wire::encode(inject_request(1)));
  auto frame = util::recv_frame(raw);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(decode_reply(*frame).ok());
}

// ------------------------------- hardening: caps, reaping, stats, deadlines

TEST(ServeProtocol, StatsEnvelopeRoundTripsEveryCounter) {
  DaemonStats in;
  in.connections = 1;
  in.active_connections = 2;
  in.refused_connections = 3;
  in.idle_reaped = 4;
  in.requests = 5;
  in.errors = 6;
  in.overflows = 7;
  in.hits = 8;
  in.disk_hits = 9;
  in.executions = 10;
  in.entries = 11;

  std::optional<DaemonStats> out = decode_stats(encode_stats(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->connections, 1u);
  EXPECT_EQ(out->active_connections, 2u);
  EXPECT_EQ(out->refused_connections, 3u);
  EXPECT_EQ(out->idle_reaped, 4u);
  EXPECT_EQ(out->requests, 5u);
  EXPECT_EQ(out->errors, 6u);
  EXPECT_EQ(out->overflows, 7u);
  EXPECT_EQ(out->hits, 8u);
  EXPECT_EQ(out->disk_hits, 9u);
  EXPECT_EQ(out->executions, 10u);
  EXPECT_EQ(out->entries, 11u);

  EXPECT_TRUE(is_stats_request(encode_stats_request()));
  EXPECT_FALSE(is_stats_request("not json"));
  EXPECT_FALSE(is_stats_request(encode_stats(in)))
      << "a stats REPLY is not a stats request";
  EXPECT_FALSE(decode_stats("not json").has_value());
  EXPECT_FALSE(decode_stats(encode_stats_request()).has_value())
      << "a stats request carries no counters";
}

TEST_F(ServeTest, StatsRequestAnswersLiveDaemonCounters) {
  Server server(options());
  Client client = Client::connect_unix(server.socket_path());
  client.call(inject_request(1));
  client.call(inject_request(1));  // memory-cache hit

  DaemonStats ds = client.call_stats();
  EXPECT_EQ(ds.connections, 1u);
  EXPECT_EQ(ds.active_connections, 1u);
  EXPECT_GE(ds.requests, 2u);
  EXPECT_EQ(ds.executions, 1u);
  EXPECT_GE(ds.hits, 1u);
  EXPECT_EQ(ds.entries, 1u);
  EXPECT_EQ(ds.errors, 0u);
  EXPECT_NE(log_.str().find("serve: stats"), std::string::npos);
}

TEST_F(ServeTest, ConnectionCapRefusesWithAnEnvelopeAndRecovers) {
  ServerOptions so = options();
  so.max_connections = 1;
  Server server(std::move(so));

  auto first = std::make_unique<Client>(Client::connect_unix(sock_path()));
  first->call(inject_request(1));  // guarantees the slot is taken

  // The over-cap connection is answered one refusal envelope unprompted
  // and closed -- read it straight off a raw socket.
  {
    util::Socket raw = util::connect_unix(sock_path());
    auto frame = util::recv_frame(raw);
    ASSERT_TRUE(frame.has_value());
    Reply reply = decode_reply(*frame);
    EXPECT_FALSE(reply.ok());
    EXPECT_NE(reply.error.find("connection capacity"), std::string::npos)
        << reply.error;
    EXPECT_NE(reply.error.find("retry later"), std::string::npos)
        << "capacity refusals must be marked retryable for fleet clients";
    EXPECT_FALSE(util::recv_frame(raw).has_value())
        << "the refused connection must be closed";
  }
  EXPECT_EQ(server.stats().refused_connections, 1u);
  EXPECT_EQ(server.stats().connections, 1u)
      << "a refused connection is not an admitted one";

  // Refusal is occupancy, not a ban: once the slot frees, new
  // connections are admitted (poll -- the server notices the
  // disconnect asynchronously).
  first.reset();
  bool admitted = false;
  for (int i = 0; i < 100 && !admitted; ++i) {
    try {
      Client retry = Client::connect_unix(sock_path());
      retry.call(inject_request(2));
      admitted = true;
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(admitted);
}

TEST_F(ServeTest, IdleConnectionsAreReapedAndClientsReconnect) {
  ServerOptions so = options();
  so.idle_timeout_s = 1;
  Server server(std::move(so));

  ClientOptions co;
  co.retries = 1;
  co.backoff_ms = 10;
  Client client = Client::connect_unix(sock_path(), co);
  const std::string reference = api::wire::encode(client.call(inject_request(1)));

  // Say nothing for over a second: the server reaps the connection.
  for (int i = 0; i < 100 && server.stats().idle_reaped == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(server.stats().idle_reaped, 1u);
  EXPECT_NE(log_.str().find("idle"), std::string::npos) << log_.str();

  // The client's retry budget covers the dead socket transparently:
  // the next call reconnects and serves the same bytes (from cache).
  EXPECT_EQ(api::wire::encode(client.call(inject_request(1))), reference);
  EXPECT_EQ(server.executions(), 1u);
}

TEST_F(ServeTest, InFlightRequestsSurviveTheIdleTimeout) {
  ServerOptions so = options();
  so.idle_timeout_s = 1;
  so.workers = 1;
  Server server(std::move(so));

  // Long enough that the reader sees idle-timeout wakeups while the
  // worker is still computing; the outstanding-request guard must keep
  // the connection alive until the reply.
  api::InjectRequest slow;
  slow.component = "carry_save_multiplier";
  slow.width = 16;
  slow.trials = 16777216;
  slow.seed = 42;

  util::Socket raw = util::connect_unix(sock_path());
  util::send_frame(raw, api::wire::encode(api::Request(slow)));
  auto frame = util::recv_frame(raw);
  ASSERT_TRUE(frame.has_value())
      << "a silent client WAITING ON A REPLY is busy, not idle";
  EXPECT_TRUE(decode_reply(*frame).ok());
  EXPECT_EQ(server.stats().idle_reaped, 0u);
}

TEST_F(ServeTest, ClientDeadlineTimesOutAgainstASilentServer) {
  // A listener that accepts and holds connections open without ever
  // replying -- the pathological peer the per-call deadline exists for.
  std::string silent = (dir_ / "silent.sock").string();
  util::Listener listener = util::listen_unix(silent);
  std::atomic<int> accepts{0};
  std::thread sink([&] {
    std::vector<util::Socket> held;
    while (true) {
      util::Socket s = listener.accept();
      if (!s.valid()) break;
      ++accepts;
      held.push_back(std::move(s));
    }
  });

  ClientOptions co;
  co.timeout_ms = 200;
  co.retries = 1;
  co.backoff_ms = 10;
  Client client = Client::connect_unix(silent, co);
  try {
    client.call(inject_request(1));
    FAIL() << "expected a timeout";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
  listener.shutdown();
  sink.join();
  EXPECT_EQ(accepts.load(), 2)
      << "each retry must abandon the stale stream and reconnect";
}

// ------------------------------------------------------------ CLI client

// The documented loopback workflow end to end, minus the blocking
// daemon loop: `--emit-request` writes the wire file, `rchls request`
// round-trips it through a live server and prints the reply envelope.
TEST_F(ServeTest, EmitRequestThenRequestCommandRoundTrips) {
  std::string req_file = (dir_ / "req.json").string();
  std::ostringstream out, err;
  ASSERT_EQ(api::cli_main({"inject", "ripple_carry_adder", "--width", "4",
                           "--trials", "128", "--emit-request", req_file},
                          out, err),
            0)
      << err.str();
  EXPECT_TRUE(out.str().empty()) << "--emit-request must not run or report";
  ASSERT_TRUE(std::filesystem::exists(req_file));

  Server server(options());
  std::ostringstream reply_out, reply_err;
  ASSERT_EQ(api::cli_main({"request", req_file, "--socket", sock_path()},
                          reply_out, reply_err),
            0)
      << reply_err.str();
  Reply reply = decode_reply(reply_out.str());
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(server.executions(), 1u);

  // Server-side errors surface as exit 1 + "error: serve: ..." -- the
  // CLI's one diagnostic convention.
  std::string bad = (dir_ / "bad.json").string();
  { std::ofstream f(bad); f << "not a wire envelope"; }
  std::ostringstream bad_out, bad_err;
  EXPECT_EQ(api::cli_main({"request", bad, "--socket", sock_path()},
                          bad_out, bad_err),
            1);
  EXPECT_NE(bad_err.str().find("error: serve: "), std::string::npos)
      << bad_err.str();

  // And exactly one of --socket / --port is required.
  std::ostringstream no_out, no_err;
  EXPECT_EQ(api::cli_main({"request", req_file}, no_out, no_err), 1);
  EXPECT_NE(no_err.str().find("exactly one of"), std::string::npos);
}

// ------------------------------------------------------------- lifecycle

TEST_F(ServeTest, StopIsIdempotentAndDisconnectsLiveClients) {
  Server server(options());
  Client client = Client::connect_unix(server.socket_path());
  EXPECT_NO_THROW(client.call(inject_request(1)));

  server.stop();
  server.stop();  // idempotent
  EXPECT_THROW(client.call(inject_request(2)), Error);
  EXPECT_FALSE(std::filesystem::exists(sock_path()))
      << "the socket file must be removed on shutdown";
}

TEST_F(ServeTest, RejectsOptionsWithoutAnyListener) {
  ServerOptions so;  // no socket path, no TCP port
  EXPECT_THROW(Server{std::move(so)}, Error);
}

TEST_F(ServeTest, ConnectToADeadDaemonThrows) {
  { Server server(options()); }  // binds, then fully stops
  EXPECT_THROW(Client::connect_unix(sock_path()), Error);
}

}  // namespace
}  // namespace rchls::serve

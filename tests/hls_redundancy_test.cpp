#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/suite.hpp"
#include "dfg/timing.hpp"
#include "hls/find_design.hpp"
#include "hls/redundancy.hpp"
#include "util/error.hpp"

namespace rchls::hls {
namespace {

using library::ResourceLibrary;

TEST(Redundancy, NoBudgetMeansNoCopies) {
  auto g = benchmarks::fig4_example();
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 10, 4.0);
  double area = d.area;
  int added = apply_redundancy(d, g, lib, area);  // no slack at all
  EXPECT_EQ(added, 0);
  EXPECT_DOUBLE_EQ(d.area, area);
}

TEST(Redundancy, UnlimitedBudgetDuplicatesEverything) {
  auto g = benchmarks::fig4_example();
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 10, 8.0);
  double base_r = d.reliability;

  RedundancyOptions opts;
  opts.max_copies = 3;
  int added = apply_redundancy(d, g, lib, d.area + 100.0, opts);
  validate_design(d, g, lib);
  EXPECT_GT(added, 0);
  EXPECT_GT(d.reliability, base_r);
  // Duplex-with-recovery (1-(1-R)^2) strictly beats majority TMR, so the
  // greedy ladder correctly stops at 2 copies per instance.
  for (int c : d.copies) EXPECT_EQ(c, 2);
}

TEST(Redundancy, RespectsAreaBound) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 12, 10.0);
  double bound = d.area + 3.0;
  apply_redundancy(d, g, lib, bound);
  EXPECT_LE(d.area, bound + 1e-9);
  validate_design(d, g, lib);
}

TEST(Redundancy, DuplexFactorsMatchAlgebra) {
  auto g = benchmarks::fig4_example();
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 4, 100.0);
  // give exactly enough slack to duplicate the single cheapest instance...
  // instead: unlimited budget with max_copies=2 duplicates everything.
  double base_r = d.reliability;
  RedundancyOptions opts;
  opts.max_copies = 2;
  apply_redundancy(d, g, lib, 1e9, opts);
  // Every op's factor moves from R to 1-(1-R)^2.
  double expect = 1.0;
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    double r = lib.version(d.version_of[id]).reliability;
    expect *= 1.0 - (1.0 - r) * (1.0 - r);
  }
  EXPECT_NEAR(d.reliability, expect, 1e-12);
  EXPECT_GT(d.reliability, base_r);
}

TEST(Redundancy, NoDuplexJumpsStraightToTriplication) {
  auto g = benchmarks::fig4_example();
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 4, 100.0);
  RedundancyOptions opts;
  opts.allow_duplex = false;
  apply_redundancy(d, g, lib, 1e9, opts);
  for (int c : d.copies) EXPECT_TRUE(c == 1 || c == 3) << c;
}

TEST(Redundancy, RejectsBadOptions) {
  auto g = benchmarks::fig4_example();
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 10, 8.0);
  RedundancyOptions opts;
  opts.max_copies = 0;
  EXPECT_THROW(apply_redundancy(d, g, lib, 100.0, opts), Error);
}

}  // namespace
}  // namespace rchls::hls

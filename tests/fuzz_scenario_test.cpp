// Differential fuzzing of the scenario parser (scenario/parse.hpp).
// `.scn` files are the user-facing input language, so the parser's
// contract under arbitrary bytes is total: parse_string either returns
// a Scenario or throws a clean rchls::Error -- for syntax problems a
// ParseError anchored at "<source>:<line>:" -- and never crashes,
// hangs, or leaks a foreign exception type.
//
// Same three layers as fuzz_wire_test.cpp: curated seed replay
// (valid_*/invalid_* under tests/data/fuzz_seed/), seeded mutation of
// valid scenarios, and raw random bytes. `@file` references resolve
// against an empty scratch directory so a mutant can only ever hit a
// clean cannot-open error, never a file from the repo.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "fuzz_common.hpp"
#include "scenario/parse.hpp"
#include "temp_dir.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"

namespace rchls::scenario {
namespace {

using testing::fuzz::iterations;
using testing::fuzz::mutate;
using testing::fuzz::random_bytes;
using testing::fuzz::seed_corpus;

// The differential oracle: a Scenario, or a clean anchored error.
// Returns true when the input parsed.
bool check_scenario(const std::string& text,
                    const std::filesystem::path& base_dir) {
  try {
    Scenario scn = parse_string(text, base_dir);
    (void)scn;
    return true;
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()).rfind("<string>:", 0), 0u)
        << "ParseError lost its source:line anchor: " << e.what();
    return false;
  } catch (const Error&) {
    return false;  // non-syntax rejection (e.g. graph validation)
  }
}

TEST(FuzzScenario, SeedCorpusReplaysAsSpecified) {
  auto dir = testing::unique_test_dir("fuzz_scn_seed");
  auto corpus = seed_corpus(".scn");
  ASSERT_GE(corpus.size(), 6u) << "fuzz_seed corpus went missing";
  for (const auto& [name, text] : corpus) {
    if (name.rfind("valid_", 0) == 0) {
      EXPECT_TRUE(check_scenario(text, dir)) << name << " should parse";
    } else {
      EXPECT_FALSE(check_scenario(text, dir))
          << name << " should be rejected";
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(FuzzScenario, MutatedScenariosNeverCrash) {
  auto dir = testing::unique_test_dir("fuzz_scn_mut");
  std::vector<std::string> bases;
  for (const auto& [name, text] : seed_corpus(".scn")) {
    if (name.rfind("valid_", 0) == 0) bases.push_back(text);
  }
  bases.push_back(read_file(std::filesystem::path(RCHLS_SOURCE_DIR) /
                            "tests" / "data" / "golden.scn"));
  ASSERT_GE(bases.size(), 3u);

  Rng rng(0x5CE9A210);
  std::size_t iters = iterations(2000);
  for (std::size_t i = 0; i < iters; ++i) {
    check_scenario(mutate(rng, bases[i % bases.size()]), dir);
  }
  std::filesystem::remove_all(dir);
}

TEST(FuzzScenario, RawRandomBytesNeverCrash) {
  auto dir = testing::unique_test_dir("fuzz_scn_raw");
  Rng rng(0xBADC0DE5);
  std::size_t iters = iterations(2000);
  for (std::size_t i = 0; i < iters; ++i) {
    check_scenario(random_bytes(rng, 512), dir);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rchls::scenario

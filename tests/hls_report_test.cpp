#include <gtest/gtest.h>

#include "benchmarks/suite.hpp"
#include "hls/find_design.hpp"
#include "hls/report.hpp"

namespace rchls::hls {
namespace {

TEST(Report, ScheduleTableListsAllOps) {
  auto g = benchmarks::fig4_example();
  auto lib = library::paper_library();
  Design d = find_design(g, lib, 6, 4.0);
  std::string table = schedule_table(d, g, lib);
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    EXPECT_NE(table.find(g.node(id).name), std::string::npos)
        << g.node(id).name;
  }
  EXPECT_NE(table.find("step"), std::string::npos);
}

TEST(Report, ScheduleTableHasOneRowPerStep) {
  auto g = benchmarks::fir16();
  auto lib = library::paper_library();
  Design d = find_design(g, lib, 12, 10.0);
  std::string table = schedule_table(d, g, lib);
  int newlines = 0;
  for (char c : table) newlines += c == '\n';
  // latency rows + header + 3 rules.
  EXPECT_EQ(newlines, d.latency + 4);
}

TEST(Report, SummaryContainsMetrics) {
  auto g = benchmarks::diffeq();
  auto lib = library::paper_library();
  Design d = find_design(g, lib, 10, 10.0);
  std::string s = design_summary(d, g, lib);
  EXPECT_NE(s.find("latency"), std::string::npos);
  EXPECT_NE(s.find("reliability"), std::string::npos);
  EXPECT_NE(s.find("instances:"), std::string::npos);
  EXPECT_NE(s.find("operations per version:"), std::string::npos);
}

TEST(Report, SummaryShowsCopyCounts) {
  auto g = benchmarks::diffeq();
  auto lib = library::paper_library();
  Design d = find_design(g, lib, 10, 10.0);
  d.copies[0] = 3;
  evaluate(d, g, lib);
  std::string s = design_summary(d, g, lib);
  EXPECT_NE(s.find("(x3"), std::string::npos);
}

}  // namespace
}  // namespace rchls::hls

#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/suite.hpp"
#include "dfg/timing.hpp"
#include "hls/design.hpp"
#include "util/error.hpp"

namespace rchls::hls {
namespace {

using library::ResourceLibrary;
using library::VersionId;

std::vector<VersionId> fastest_versions(const dfg::Graph& g,
                                        const ResourceLibrary& lib) {
  std::vector<VersionId> v(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    v[id] = lib.fastest(library::class_of(g.node(id).op));
  }
  return v;
}

TEST(Design, DelaysForMatchesLibrary) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  std::vector<VersionId> v(g.node_count(), lib.find("adder_1"));
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    if (g.node(id).op == dfg::OpType::kMul) v[id] = lib.find("mult_2");
  }
  auto d = delays_for(g, lib, v);
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    EXPECT_EQ(d[id], g.node(id).op == dfg::OpType::kMul ? 1 : 2);
  }
  EXPECT_THROW(delays_for(g, lib, std::vector<VersionId>{0}), Error);
}

TEST(Design, ClassGroupsSeparateMultipliers) {
  auto g = benchmarks::diffeq();
  auto groups = class_groups(g);
  int muls = 0;
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    if (groups[id] == 1) {
      ++muls;
      EXPECT_EQ(g.node(id).op, dfg::OpType::kMul);
    }
  }
  EXPECT_EQ(muls, 6);
}

TEST(Design, AssembleEvaluatesAllMetrics) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  // All type-2 versions, as in paper Fig. 7(a).
  std::vector<VersionId> versions(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    versions[id] = g.node(id).op == dfg::OpType::kMul ? lib.find("mult_2")
                                                      : lib.find("adder_2");
  }
  int lmin = dfg::asap_latency(g, delays_for(g, lib, versions));

  Design d = assemble(g, lib, versions, lmin + 1);
  validate_design(d, g, lib);
  EXPECT_LE(d.latency, lmin + 1);
  EXPECT_GT(d.area, 0.0);
  // All type-2 versions: reliability is exactly 0.969^23 (paper Fig 7a).
  EXPECT_NEAR(d.reliability, std::pow(0.969, 23), 1e-12);
  EXPECT_EQ(d.copies.size(), d.binding.instances.size());
}

TEST(Design, BothSchedulersProduceValidDesigns) {
  auto g = benchmarks::ar_lattice();
  ResourceLibrary lib = library::paper_library();
  auto versions = fastest_versions(g, lib);
  int lmin = dfg::asap_latency(g, delays_for(g, lib, versions));
  for (auto kind : {SchedulerKind::kDensity, SchedulerKind::kForceDirected}) {
    Design d = assemble(g, lib, versions, lmin + 2, kind);
    validate_design(d, g, lib);
  }
}

TEST(Design, EvaluateAppliesRedundancyFactors) {
  auto g = benchmarks::fig4_example();
  ResourceLibrary lib = library::paper_library();
  std::vector<VersionId> versions(g.node_count(), lib.find("adder_2"));
  int lmin = dfg::asap_latency(g, delays_for(g, lib, versions));
  Design d = assemble(g, lib, versions, lmin);
  double base = d.reliability;

  // Duplicate the first instance; the ops bound to it gain duplex factors.
  d.copies[0] = 2;
  evaluate(d, g, lib);
  std::size_t ops = d.binding.instances[0].ops.size();
  double expect = base / std::pow(0.969, ops) *
                  std::pow(1.0 - 0.031 * 0.031, ops);
  EXPECT_NEAR(d.reliability, expect, 1e-12);
  EXPECT_DOUBLE_EQ(d.area,
                   2.0 * (d.binding.instances.size() - 1) + 2.0 * 2.0);
}

TEST(Design, ValidateCatchesStaleMetrics) {
  auto g = benchmarks::fig4_example();
  ResourceLibrary lib = library::paper_library();
  std::vector<VersionId> versions(g.node_count(), lib.find("adder_2"));
  int lmin = dfg::asap_latency(g, delays_for(g, lib, versions));
  Design d = assemble(g, lib, versions, lmin);
  validate_design(d, g, lib);

  Design stale = d;
  stale.reliability += 0.01;
  EXPECT_THROW(validate_design(stale, g, lib), ValidationError);

  Design bad_copies = d;
  bad_copies.copies[0] = 4;  // even > 2
  EXPECT_THROW(validate_design(bad_copies, g, lib), ValidationError);
}

}  // namespace
}  // namespace rchls::hls

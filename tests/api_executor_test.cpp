// Executor-seam tests (api/executor.hpp, api/subprocess.hpp): the
// byte-identity acceptance criterion -- a sweep/grid executed via
// SubprocessExecutor at shards 1/2/4 renders byte-identical to
// LocalExecutor at jobs 1/2/8 -- plus sharding observability and worker
// failure behavior.
//
// The in-process spawn hook routes each worker through cli_main's
// exec-request mode (real wire files on disk, real decode/execute/
// encode), so everything but the fork() is the production path; the
// fork() itself is covered by the real-binary test below and CI's shard
// smoke job.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "api/cli.hpp"
#include "api/session.hpp"
#include "api/subprocess.hpp"
#include "benchmarks/suite.hpp"
#include "netlist/topology.hpp"
#include "parallel/config.hpp"
#include "scenario/report.hpp"
#include "ser/characterize.hpp"
#include "sta/delay_model.hpp"
#include "sta/design.hpp"
#include "sta/sensitivity.hpp"
#include "sta/timing.hpp"
#include "rtl/elaborate.hpp"
#include "temp_dir.hpp"
#include "util/error.hpp"

namespace rchls::api {
namespace {

class JobsGuard {
 public:
  JobsGuard() : saved_(parallel::global_config().jobs) {}
  ~JobsGuard() { parallel::global_config().jobs = saved_; }

 private:
  std::size_t saved_;
};

// Every test gets its own scratch work_dir (gtest_discover_tests runs
// each TEST as a concurrent process in one CWD, so a shared name would
// race) and removes it on exit -- no `api_executor_test_tmp/` litter
// left in the source tree after a test run.
class ScopedWorkDir {
 public:
  ScopedWorkDir()
      : dir_(rchls::testing::unique_test_dir("api_executor_test_tmp")) {}
  ~ScopedWorkDir() {
    std::error_code ec;  // best effort; never throw from a destructor
    std::filesystem::remove_all(dir_, ec);
  }
  const std::filesystem::path& path() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

// Runs `rchls exec-request` in-process. cli_main is not re-entrant-safe
// under TSan-visible concurrency (the engines share one global pool),
// so the hook serializes workers; SubprocessExecutor's sharding and
// index-ordered merge are exercised regardless.
SubprocessOptions hooked_options(int shards,
                                 const std::filesystem::path& work_dir) {
  SubprocessOptions so;
  so.shards = shards;
  so.work_dir = work_dir.string();
  so.spawn = [](const std::vector<std::string>& argv,
                const std::filesystem::path& stderr_file) {
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream out;
    std::ofstream err(stderr_file);
    return cli_main(std::vector<std::string>(argv.begin() + 1, argv.end()),
                    out, err);
  };
  return so;
}

SweepRequest sweep_request() {
  SweepRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.axis = SweepAxis::kArea;
  req.latency_bounds = {6};
  req.area_bounds = {6.0, 7.0, 8.0, 10.0, 12.0};
  return req;
}

GridRequest grid_request() {
  GridRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.latency_bounds = {6, 7};
  req.area_bounds = {8.0, 10.0, 12.0};
  return req;
}

// Renders a result the way every front-end does, so "byte-identical"
// means through the report writers, not just field equality.
template <typename ResultT>
std::string rendered(ResultT r) {
  scenario::RunReport report;
  report.scenario_name = "executor";
  report.graph = benchmarks::by_name("fig4_example");
  report.library = library::paper_library();
  report.actions.push_back({"action", 0, std::move(r)});
  return scenario::report::to_json(report);
}

// -------------------------------------------------- byte-identity matrix

// The PR acceptance criterion: shards 1/2/4 x jobs 1/2/8, all
// byte-identical to the single-process, single-job rendering.
TEST(ApiExecutor, ShardedSweepIsByteIdenticalToLocalAtAnyJobsAndShards) {
  JobsGuard guard;
  ScopedWorkDir wd;
  parallel::set_global_jobs(1);
  LocalExecutor local;
  const std::string reference = rendered(local.run(sweep_request()));

  for (int shards : {1, 2, 4}) {
    for (std::size_t jobs : {1u, 2u, 8u}) {
      parallel::set_global_jobs(jobs);
      SubprocessExecutor sub(hooked_options(shards, wd.path()));
      EXPECT_EQ(rendered(sub.run(sweep_request())), reference)
          << "shards=" << shards << " jobs=" << jobs;
      EXPECT_EQ(sub.workers_launched(),
                std::min<std::uint64_t>(static_cast<std::uint64_t>(shards),
                                        5u))
          << "one worker per batched slice, capped by the cell count";
    }
  }
}

TEST(ApiExecutor, ShardedGridIsByteIdenticalIncludingAverages) {
  JobsGuard guard;
  ScopedWorkDir wd;
  parallel::set_global_jobs(2);
  LocalExecutor local;
  const std::string reference = rendered(local.run(grid_request()));

  for (int shards : {2, 4}) {
    SubprocessExecutor sub(hooked_options(shards, wd.path()));
    EXPECT_EQ(rendered(sub.run(grid_request())), reference)
        << "shards=" << shards;
    // 2x3 grid: balanced row-respecting slices give exactly `shards`
    // workers here (2 -> one per row; 4 -> each row split in two).
    EXPECT_EQ(sub.workers_launched(), static_cast<std::uint64_t>(shards));
  }
}

TEST(ApiExecutor, SingleRequestKindsGoOverTheWireToo) {
  InjectRequest req;
  req.component = "ripple_carry_adder";
  req.width = 4;
  req.trials = 128;
  req.seed = 3;

  ScopedWorkDir wd;
  LocalExecutor local;
  SubprocessExecutor sub(hooked_options(2, wd.path()));
  EXPECT_EQ(rendered(sub.run(req)), rendered(local.run(req)));
  EXPECT_EQ(sub.workers_launched(), 1u);
}

// --------------------------------------------------- session integration

TEST(ApiExecutor, SessionCachesShardedResultsLikeLocalOnes) {
  ScopedWorkDir wd;
  SessionOptions opts;
  opts.executor =
      std::make_shared<SubprocessExecutor>(hooked_options(2, wd.path()));
  Session session(opts);

  SweepResult cold = session.run(sweep_request());
  SweepResult warm = session.run(sweep_request());
  EXPECT_EQ(session.cache_stats().hits, 1u);
  EXPECT_EQ(session.executions(), 1u);
  EXPECT_EQ(rendered(std::move(cold)), rendered(std::move(warm)));
}

// The user's --jobs cap must reach the workers: N shards each running
// hardware-concurrency threads would oversubscribe the host.
TEST(ApiExecutor, ForwardsJobsAndCacheDirToWorkers) {
  JobsGuard guard;
  ScopedWorkDir wd;
  SubprocessOptions so = hooked_options(2, wd.path());
  so.jobs = 3;
  so.cache_dir = (wd.path() / "jobs_cache").string();
  std::vector<std::string> seen;
  auto inner = so.spawn;
  so.spawn = [&, inner](const std::vector<std::string>& argv,
                        const std::filesystem::path& stderr_file) {
    static std::mutex mu;
    {
      std::lock_guard<std::mutex> lock(mu);
      seen = argv;
    }
    return inner(argv, stderr_file);
  };

  SubprocessExecutor sub(so);
  InjectRequest req;
  req.component = "ripple_carry_adder";
  req.width = 4;
  req.trials = 128;
  sub.run(req);

  auto has = [&](const std::string& s) {
    return std::find(seen.begin(), seen.end(), s) != seen.end();
  };
  EXPECT_TRUE(has("--jobs")) << "jobs cap not forwarded";
  EXPECT_TRUE(has("3"));
  EXPECT_TRUE(has("--cache-dir"));
}

// ----------------------------------------------------------- failure path

TEST(ApiExecutor, FailingWorkerFailsTheWholeRequestWithItsStderr) {
  ScopedWorkDir wd;
  SubprocessOptions so;
  so.shards = 2;
  so.work_dir = wd.path().string();
  so.spawn = [](const std::vector<std::string>&,
                const std::filesystem::path& stderr_file) {
    std::ofstream err(stderr_file);
    err << "error: worker exploded\n";
    return 1;
  };
  SubprocessExecutor sub(so);
  try {
    sub.run(sweep_request());
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shard cell 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("worker exploded"), std::string::npos) << msg;
  }
}

TEST(ApiExecutor, RejectsNonPositiveShardCounts) {
  SubprocessOptions so;
  so.shards = 0;
  EXPECT_THROW(SubprocessExecutor{so}, Error);
}

// ----------------------------------------------------------- sta / design

TEST(ApiExecutor, StaRequestsGoOverTheWireByteIdentically) {
  StaRequest req;
  req.component = "brent_kung_adder";
  req.width = 4;
  req.trials = 128;
  req.seed = 3;
  req.top = 5;

  ScopedWorkDir wd;
  LocalExecutor local;
  SubprocessExecutor sub(hooked_options(2, wd.path()));
  EXPECT_EQ(rendered(sub.run(req)), rendered(local.run(req)));
  EXPECT_EQ(sub.workers_launched(), 1u);
}

// The graph-target seam: a rank_gates request over an elaborated design
// must reproduce exactly what the engines say when called by hand on
// sta::elaborate_design's netlist.
TEST(ApiExecutor, GraphTargetRankGatesMatchesEngineLevelRanking) {
  RankGatesRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.versions = "most_reliable";
  req.width = 4;
  req.trials = 256;
  req.seed = 5;
  req.top = 0;  // keep every row

  LocalExecutor local;
  RankGatesResult got = local.run(req);

  rtl::Elaboration e =
      sta::elaborate_design(*req.graph, req.library, "most_reliable", 4);
  ser::InjectionConfig cfg;
  cfg.trials = 256;
  cfg.seed = 5;
  std::vector<ser::GateSensitivity> want =
      ser::rank_gate_sensitivities(e.netlist, cfg);

  EXPECT_EQ(got.component, e.netlist.name());
  ASSERT_EQ(got.gates.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.gates[i].gate, want[i].gate) << "row " << i;
    EXPECT_DOUBLE_EQ(got.gates[i].result.logical_sensitivity,
                     want[i].result.logical_sensitivity);
    EXPECT_EQ(got.kinds[i],
              netlist::to_string(e.netlist.gate(want[i].gate).kind));
  }
}

// Likewise for sta: the result rows are join_sensitivity over the same
// elaborated netlist, timed from the library's arcs.
TEST(ApiExecutor, GraphTargetStaMatchesEngineLevelJoin) {
  StaRequest req;
  req.graph = benchmarks::by_name("fig4_example");
  req.library = library::paper_library();
  req.versions = "fastest";
  req.width = 4;
  req.trials = 256;
  req.seed = 5;
  req.top = 0;

  LocalExecutor local;
  StaResult got = local.run(req);

  rtl::Elaboration e =
      sta::elaborate_design(*req.graph, req.library, "fastest", 4);
  netlist::Topology topo(e.netlist);
  sta::TimingReport tr = sta::analyze(
      e.netlist, topo,
      sta::DelayModel::from_library(e.netlist, e.gate_version, req.library),
      {0.0, 3, 8});
  ser::InjectionConfig cfg;
  cfg.trials = 256;
  cfg.seed = 5;
  std::vector<sta::SensitivityRow> want = sta::join_sensitivity(
      ser::rank_gate_sensitivities(e.netlist, cfg), tr);

  EXPECT_EQ(got.target, e.netlist.name());
  EXPECT_EQ(got.gate_count, e.netlist.gate_count());
  EXPECT_DOUBLE_EQ(got.clock, tr.clock);
  EXPECT_DOUBLE_EQ(got.wns, tr.wns);
  ASSERT_EQ(got.rows.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.rows[i].gate, want[i].gate) << "row " << i;
    EXPECT_DOUBLE_EQ(got.rows[i].sensitivity, want[i].sensitivity);
    EXPECT_DOUBLE_EQ(got.rows[i].slack, want[i].slack);
  }
}

TEST(ApiExecutor, StaRejectsInvalidParameters) {
  LocalExecutor local;
  StaRequest negative_clock;
  negative_clock.component = "ripple_carry_adder";
  negative_clock.clock = -1.0;
  EXPECT_THROW(local.run(negative_clock), Error);

  StaRequest negative_top;
  negative_top.component = "ripple_carry_adder";
  negative_top.top = -1;
  EXPECT_THROW(local.run(negative_top), Error);

  StaRequest both_targets;
  both_targets.component = "ripple_carry_adder";
  both_targets.graph = benchmarks::by_name("fig4_example");
  both_targets.library = library::paper_library();
  EXPECT_THROW(local.run(both_targets), Error);
}

// ------------------------------------------------------- real subprocess

// End-to-end across a REAL process boundary: spawns the built rchls
// binary (sibling of this test executable under the build tree). Skipped
// when the binary is not there (e.g. a tests-only build).
TEST(ApiExecutor, RealWorkerProcessesProduceIdenticalBytes) {
#ifndef RCHLS_BINARY_DIR
  GTEST_SKIP() << "RCHLS_BINARY_DIR not configured";
#else
  std::filesystem::path binary =
      std::filesystem::path(RCHLS_BINARY_DIR) / "rchls";
  if (!std::filesystem::exists(binary)) {
    GTEST_SKIP() << "rchls binary not built at " << binary;
  }
  JobsGuard guard;
  ScopedWorkDir wd;
  parallel::set_global_jobs(2);
  LocalExecutor local;
  SubprocessOptions so;
  so.shards = 4;
  so.work_dir = wd.path().string();
  so.worker_command = {binary.string(), "exec-request"};
  SubprocessExecutor sub(so);
  EXPECT_EQ(rendered(sub.run(sweep_request())),
            rendered(local.run(sweep_request())));
#endif
}

}  // namespace
}  // namespace rchls::api

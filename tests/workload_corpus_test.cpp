// Workload-corpus tests (workload/corpus.hpp): the corpus
// reproducibility contract (same seed => same bytes, pinned by a golden
// case), and the corpus regression backstop -- generated scenarios run
// through scenario::Runner byte-identically at jobs 1 vs 8, and a warm
// second pass executes nothing. This is the "scenario diversity at
// scale" acceptance suite: every future engine/pool/cache change must
// hold these properties over generated workloads, not just the four
// paper examples.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>

#include "api/cli.hpp"
#include "api/session.hpp"
#include "parallel/config.hpp"
#include "scenario/parse.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "temp_dir.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"
#include "workload/corpus.hpp"

namespace rchls::workload {
namespace {

TEST(WorkloadCorpus, GenerateIsDeterministic) {
  CorpusConfig cfg;
  cfg.seed = 99;
  cfg.count = 30;
  auto a = generate_corpus(cfg);
  auto b = generate_corpus(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].dfg_text, b[i].dfg_text);
    EXPECT_EQ(a[i].scn_text, b[i].scn_text);
  }
  EXPECT_EQ(manifest_json(cfg, a), manifest_json(cfg, b));
}

TEST(WorkloadCorpus, DifferentSeedsDiffer) {
  CorpusConfig a{1, 10};
  CorpusConfig b{2, 10};
  EXPECT_NE(generate_corpus(a)[0].scn_text, generate_corpus(b)[0].scn_text);
}

// Golden capture: pins the corpus coordinate system across processes
// and forever. If this fails, the generator's meaning of (seed, index)
// changed -- which silently invalidates every recorded corpus. Extend
// the generator with new knobs instead of repinning.
TEST(WorkloadCorpus, GoldenCaseCapture) {
  CorpusConfig cfg;
  cfg.seed = 7;
  cfg.count = 25;
  auto cases = generate_corpus(cfg);
  ASSERT_EQ(cases.size(), 25u);
  EXPECT_EQ(cases[0].scn_text,
            "# generated workload corpus case -- do not edit; regenerate:\n"
            "#   rchls gen <dir> --seed 7 --count 25\n"
            "# case=case_000 action=find_design shape=layered nodes=29 "
            "case_seed=12923355070828475994\n"
            "scenario case_000_find_design_layered\n"
            "graph @case_000.dfg\n"
            "library paper\n"
            "\n"
            "find_design latency=34 area=8 engine=combined "
            "label=find_design\n");
  EXPECT_EQ(cases[0].case_seed, 12923355070828475994ULL);
  // The sta slot of the first rotation, pinned the same way.
  EXPECT_EQ(cases[5].scn_text,
            "# generated workload corpus case -- do not edit; regenerate:\n"
            "#   rchls gen <dir> --seed 7 --count 25\n"
            "# case=case_005 action=sta shape=layered nodes=27 "
            "case_seed=16099837482234907721\n"
            "scenario case_005_sta_layered\n"
            "graph @case_005.dfg\n"
            "library paper\n"
            "\n"
            "sta width=6 versions=fastest top_paths=1 top=10 trials=192 "
            "seed=18424334975986704008 label=sta\n");
}

TEST(WorkloadCorpus, CoversEveryActionAndShape) {
  CorpusConfig cfg;
  cfg.seed = 3;
  cfg.count = 60;  // 10 per action, 2 full shape rotations
  auto cases = generate_corpus(cfg);
  std::set<std::string> actions, shapes;
  for (const auto& c : cases) {
    actions.insert(c.action);
    if (!c.shape.empty()) shapes.insert(c.shape);
  }
  EXPECT_EQ(actions, (std::set<std::string>{"find_design", "sweep", "grid",
                                            "inject", "rank_gates", "sta"}));
  EXPECT_EQ(shapes, (std::set<std::string>{"layered", "chain", "fanout_tree",
                                           "butterfly", "filter"}));
}

TEST(WorkloadCorpus, ManifestParsesAndListsEveryCase) {
  CorpusConfig cfg;
  cfg.seed = 11;
  cfg.count = 12;
  auto cases = generate_corpus(cfg);
  json::Value doc = json::parse(manifest_json(cfg, cases));
  EXPECT_EQ(doc.at("format_version").as_string(), "rchls.corpus.v2");
  EXPECT_EQ(doc.at("seed").as_string(), "11");
  EXPECT_EQ(doc.at("count").as_int(), 12);
  ASSERT_EQ(doc.at("cases").items().size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const json::Value& entry = doc.at("cases").items()[i];
    EXPECT_EQ(entry.at("name").as_string(), cases[i].name);
    EXPECT_EQ(entry.at("scn").as_string(), cases[i].scn_filename);
  }
}

// Restores the global worker count after a test that changes it.
class JobsGuard {
 public:
  JobsGuard() : saved_(parallel::global_config().jobs) {}
  ~JobsGuard() { parallel::global_config().jobs = saved_; }

 private:
  std::size_t saved_;
};

// The corpus regression backstop. Every written case must parse, run at
// --jobs 1 and --jobs 8 with byte-identical JSON reports, and replay
// through the same session without reaching the executor again. Two
// independent sessions (separate caches) keep the jobs-8 runs cold.
TEST(WorkloadCorpus, SampledRunsByteIdenticalAcrossJobsAndWarm) {
  auto dir = testing::unique_test_dir("workload_corpus");
  CorpusConfig cfg;
  cfg.seed = 5;
  cfg.count = 24;  // 4 cases of every action kind, incl. graphful sta
  write_corpus(cfg, dir);

  JobsGuard guard;
  api::Session narrow;
  api::Session wide;
  for (const auto& c : generate_corpus(cfg)) {
    scenario::Scenario scn = scenario::parse_file(dir / c.scn_filename);
    parallel::set_global_jobs(1);
    std::string cold =
        scenario::report::to_json(scenario::run(scn, narrow));
    parallel::set_global_jobs(8);
    std::string eight =
        scenario::report::to_json(scenario::run(scn, wide));
    EXPECT_EQ(cold, eight) << c.name << " differs between jobs 1 and 8";

    std::uint64_t executed = narrow.executions();
    std::string warm =
        scenario::report::to_json(scenario::run(scn, narrow));
    EXPECT_EQ(cold, warm) << c.name << " warm replay differs";
    EXPECT_EQ(narrow.executions(), executed)
        << c.name << " warm replay reached the executor";
  }
  std::filesystem::remove_all(dir);
}

// write_corpus is the CLI's backend: files land on disk byte-equal to
// the in-memory cases, and a second write is a byte-identical overwrite.
TEST(WorkloadCorpus, WriteCorpusIsReproducible) {
  auto dir = testing::unique_test_dir("workload_corpus");
  CorpusConfig cfg;
  cfg.seed = 21;
  cfg.count = 8;
  std::size_t files = write_corpus(cfg, dir);
  auto cases = generate_corpus(cfg);
  std::size_t expected = 1;  // manifest
  for (const auto& c : cases) {
    expected += c.dfg_filename.empty() ? 1 : 2;
    EXPECT_EQ(read_file(dir / c.scn_filename), c.scn_text);
    if (!c.dfg_filename.empty()) {
      EXPECT_EQ(read_file(dir / c.dfg_filename), c.dfg_text);
    }
  }
  EXPECT_EQ(files, expected);
  EXPECT_EQ(read_file(dir / "manifest.json"), manifest_json(cfg, cases));

  EXPECT_EQ(write_corpus(cfg, dir), files);  // overwrite, same content
  EXPECT_EQ(read_file(dir / "manifest.json"), manifest_json(cfg, cases));
  std::filesystem::remove_all(dir);
}

TEST(WorkloadCorpus, CliGenWritesCorpusAndSummary) {
  auto dir = testing::unique_test_dir("workload_corpus");
  std::ostringstream out, err;
  int code = api::cli_main({"gen", (dir / "c").string(), "--seed", "7",
                            "--count", "4"},
                           out, err);
  EXPECT_EQ(code, 0) << err.str();
  EXPECT_EQ(out.str(), "gen: wrote 8 files (4 cases) to " +
                           (dir / "c").string() + " (seed=7)\n");
  EXPECT_TRUE(std::filesystem::exists(dir / "c" / "manifest.json"));

  std::ostringstream out2, err2;
  EXPECT_EQ(api::cli_main({"gen", (dir / "c").string(), "--count", "0"},
                          out2, err2),
            1);
  EXPECT_TRUE(err2.str().rfind("error: --count", 0) == 0) << err2.str();
  std::filesystem::remove_all(dir);
}

TEST(WorkloadCorpus, RejectsZeroCount) {
  EXPECT_THROW(generate_corpus({1, 0}), Error);
}

}  // namespace
}  // namespace rchls::workload

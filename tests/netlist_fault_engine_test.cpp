// Differential verification of the cone-limited incremental FaultEngine
// against full golden-vs-faulty resimulation, plus unit tests for the
// masked-fault early exit.
#include <gtest/gtest.h>

#include <vector>

#include "circuits/adders.hpp"
#include "circuits/multipliers.hpp"
#include "circuits/redundancy.hpp"
#include "netlist/fault_engine.hpp"
#include "netlist/sim.hpp"
#include "netlist/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rchls::netlist {
namespace {

/// Brute-force oracle: full faulty resimulation, then OR the per-output
/// diffs into one corruption word.
std::uint64_t brute_corruption(Simulator& sim,
                               const std::vector<std::uint64_t>& inputs,
                               const std::vector<std::uint64_t>& golden_out,
                               const Fault& fault) {
  sim.eval(inputs, fault);
  std::vector<std::uint64_t> faulty_out;
  sim.pack_outputs(faulty_out);
  std::uint64_t corrupted = 0;
  for (std::size_t i = 0; i < golden_out.size(); ++i) {
    corrupted |= golden_out[i] ^ faulty_out[i];
  }
  return corrupted;
}

/// Asserts engine == brute force for EVERY gate of `nl` under `batches`
/// random input batches and a mix of lane masks.
void expect_engine_matches_brute(const Netlist& nl, std::uint64_t seed,
                                 int batches = 3) {
  Topology topo(nl);
  FaultEngine engine(nl, topo);
  Simulator sim(nl);
  Rng rng(seed);

  std::vector<std::uint64_t> inputs(nl.input_bits().size());
  for (int b = 0; b < batches; ++b) {
    for (auto& w : inputs) w = rng.next_u64();
    sim.eval(inputs);
    std::vector<std::uint64_t> golden_out;
    sim.pack_outputs(golden_out);
    engine.set_inputs(inputs);
    ASSERT_EQ(engine.golden(), sim.run(inputs));

    std::uint64_t masks[] = {~0ULL, rng.next_u64(), 1ULL, 0ULL};
    for (GateId victim = 0; victim < nl.gate_count(); ++victim) {
      for (std::uint64_t mask : masks) {
        Fault fault{victim, mask};
        ASSERT_EQ(engine.inject(fault),
                  brute_corruption(sim, inputs, golden_out, fault))
            << nl.name() << " victim " << victim << " mask " << mask;
      }
    }
  }
}

/// Random combinational netlist: `inputs` input bits, `logic` gates of
/// random kind with random earlier fanins, a random slice of gates as
/// outputs. Gate-id order is a topological order by construction.
Netlist random_netlist(Rng& rng, int inputs, int logic) {
  Netlist nl("random");
  nl.add_input_bus("in", inputs);
  if (rng.next_bool(0.3)) nl.add_const(rng.next_bool(0.5));
  for (int i = 0; i < logic; ++i) {
    auto kind = static_cast<GateKind>(
        static_cast<int>(GateKind::kBuf) +
        rng.next_below(static_cast<int>(GateKind::kXnor) -
                       static_cast<int>(GateKind::kBuf) + 1));
    GateId a = static_cast<GateId>(rng.next_below(nl.gate_count()));
    if (fanin_count(kind) == 1) {
      nl.add_unary(kind, a);
    } else {
      GateId b = static_cast<GateId>(rng.next_below(nl.gate_count()));
      nl.add_binary(kind, a, b);
    }
  }
  // Outputs: a handful of random gates plus the last one (so the deepest
  // logic is observable).
  std::vector<GateId> outs;
  for (int i = 0; i < 4; ++i) {
    outs.push_back(static_cast<GateId>(rng.next_below(nl.gate_count())));
  }
  outs.push_back(static_cast<GateId>(nl.gate_count() - 1));
  nl.add_output_bus("out", outs);
  nl.validate();
  return nl;
}

TEST(FaultEngine, MatchesBruteForceOnRandomNetlists) {
  Rng rng(2026);
  for (int trial = 0; trial < 25; ++trial) {
    int inputs = 2 + static_cast<int>(rng.next_below(6));
    int logic = 5 + static_cast<int>(rng.next_below(60));
    Netlist nl = random_netlist(rng, inputs, logic);
    expect_engine_matches_brute(nl, /*seed=*/1000 + trial, /*batches=*/2);
  }
}

TEST(FaultEngine, MatchesBruteForceOnArithmeticComponents) {
  expect_engine_matches_brute(circuits::ripple_carry_adder(8), 1);
  expect_engine_matches_brute(circuits::kogge_stone_adder(8), 2);
  expect_engine_matches_brute(circuits::brent_kung_adder(8), 3);
  expect_engine_matches_brute(circuits::carry_save_multiplier(6), 4);
  expect_engine_matches_brute(circuits::leapfrog_multiplier(6), 5);
}

TEST(FaultEngine, MatchesBruteForceOnVotedRedundantNetlist) {
  Netlist tmr =
      circuits::replicate_with_voting(circuits::ripple_carry_adder(4), 3);
  expect_engine_matches_brute(tmr, 6);
}

TEST(FaultEngine, MaskedFaultExitsEarly) {
  // out = and(buf(a), 0): a strike on the buffer dies at the AND gate, so
  // the frontier must stop after evaluating exactly that one gate -- not
  // the whole downstream cone.
  Netlist nl("masked");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto zero = nl.add_const(false);
  auto buf = nl.add_unary(GateKind::kBuf, a);
  auto gated = nl.add_binary(GateKind::kAnd, buf, zero);
  // A tail of gates below the masking point that must never be visited.
  auto t1 = nl.bnot(gated);
  auto t2 = nl.bxor(t1, gated);
  nl.add_output_bus("out", {t2});

  Topology topo(nl);
  EXPECT_EQ(topo.cone(buf).size(), 4u);  // buf, and, not, xor all reachable

  FaultEngine engine(nl, topo);
  std::vector<std::uint64_t> inputs = {0x0123456789abcdefULL};
  engine.set_inputs(inputs);
  EXPECT_EQ(engine.inject(Fault{buf, ~0ULL}), 0u);
  EXPECT_EQ(engine.last_evaluations(), 1u);  // only the AND was re-evaluated
}

TEST(FaultEngine, ZeroLaneMaskIsFree) {
  Netlist nl = circuits::ripple_carry_adder(4);
  Topology topo(nl);
  FaultEngine engine(nl, topo);
  std::vector<std::uint64_t> inputs(nl.input_bits().size(), ~0ULL);
  engine.set_inputs(inputs);
  EXPECT_EQ(engine.inject(Fault{5, 0}), 0u);
  EXPECT_EQ(engine.last_evaluations(), 0u);
}

TEST(FaultEngine, ConsecutiveInjectionsAreIndependent) {
  // The epoch overlay must fully undo fault N before fault N+1.
  Netlist nl = circuits::kogge_stone_adder(6);
  Topology topo(nl);
  FaultEngine engine(nl, topo);
  Simulator sim(nl);
  Rng rng(7);
  std::vector<std::uint64_t> inputs(nl.input_bits().size());
  for (auto& w : inputs) w = rng.next_u64();
  sim.eval(inputs);
  std::vector<std::uint64_t> golden_out;
  sim.pack_outputs(golden_out);
  engine.set_inputs(inputs);

  Fault probe{static_cast<GateId>(nl.gate_count() - 1), ~0ULL};
  std::uint64_t expected = brute_corruption(sim, inputs, golden_out, probe);
  for (int round = 0; round < 3; ++round) {
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      engine.inject(Fault{g, 0xf0f0f0f0f0f0f0f0ULL});
    }
    EXPECT_EQ(engine.inject(probe), expected) << "round " << round;
  }
}

TEST(FaultEngine, RejectsMisuse) {
  Netlist nl = circuits::ripple_carry_adder(4);
  Topology topo(nl);
  FaultEngine engine(nl, topo);
  EXPECT_THROW(engine.inject(Fault{0, ~0ULL}), Error);  // no inputs yet
  std::vector<std::uint64_t> inputs(nl.input_bits().size(), 0);
  engine.set_inputs(inputs);
  EXPECT_THROW(engine.inject(Fault{static_cast<GateId>(nl.gate_count()),
                                   ~0ULL}),
               Error);

  Netlist other = circuits::ripple_carry_adder(8);
  EXPECT_THROW(FaultEngine(other, topo), Error);
}

}  // namespace
}  // namespace rchls::netlist

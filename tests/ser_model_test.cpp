#include <gtest/gtest.h>

#include <cmath>

#include "ser/model.hpp"
#include "util/error.hpp"

namespace rchls::ser {
namespace {

TEST(SerModel, RelativeSerIdentityAtEqualCharge) {
  EXPECT_DOUBLE_EQ(relative_ser(5e-21, 5e-21, 1e-21), 1.0);
}

TEST(SerModel, LowerChargeMeansHigherSer) {
  EXPECT_GT(relative_ser(5e-21, 3e-21, 1e-21), 1.0);
  EXPECT_LT(relative_ser(5e-21, 7e-21, 1e-21), 1.0);
}

TEST(SerModel, AbsoluteSerScalesWithFluxAndArea) {
  double s1 = absolute_ser(10.0, 2.0, 5e-21, 1e-21);
  double s2 = absolute_ser(20.0, 2.0, 5e-21, 1e-21);
  double s3 = absolute_ser(10.0, 4.0, 5e-21, 1e-21);
  EXPECT_DOUBLE_EQ(s2, 2.0 * s1);
  EXPECT_DOUBLE_EQ(s3, 2.0 * s1);
}

TEST(SerModel, ReliabilityFromRatio) {
  EXPECT_DOUBLE_EQ(reliability_from_ser_ratio(0.999, 1.0), 0.999);
  // doubling the SER squares the reliability (exp(-2λt) = R^2).
  EXPECT_NEAR(reliability_from_ser_ratio(0.999, 2.0), 0.999 * 0.999, 1e-12);
}

TEST(SerModel, FailureExposureInvertsReliability) {
  double lt = failure_exposure(0.969);
  EXPECT_NEAR(std::exp(-lt), 0.969, 1e-12);
}

TEST(SerModel, CalibrationReproducesPaperQs) {
  double qs = calibrate_qs(PaperCharges::kRippleCarry, kAnchorReliability,
                           PaperCharges::kBrentKung, 0.969);
  // Derived in DESIGN.md: about 8.63e-21 C.
  EXPECT_NEAR(qs, 8.63e-21, 0.05e-21);
}

TEST(SerModel, PaperModelPredictsKoggeStoneReliability) {
  SoftErrorModel m = SoftErrorModel::paper_calibrated();
  // The headline validation: the model calibrated on ripple/Brent-Kung
  // predicts Table 1's 0.987 for the Kogge-Stone adder.
  EXPECT_NEAR(m.reliability(PaperCharges::kKoggeStone), 0.987, 5e-4);
  EXPECT_DOUBLE_EQ(m.reliability(PaperCharges::kRippleCarry), 0.999);
  EXPECT_NEAR(m.reliability(PaperCharges::kBrentKung), 0.969, 1e-9);
}

TEST(SerModel, CriticalChargeRoundTrips) {
  SoftErrorModel m = SoftErrorModel::paper_calibrated();
  for (double r : {0.9, 0.969, 0.987, 0.999, 0.9999}) {
    EXPECT_NEAR(m.reliability(m.critical_charge_for(r)), r, 1e-12);
  }
}

TEST(SerModel, MonotoneInCharge) {
  SoftErrorModel m = SoftErrorModel::paper_calibrated();
  double prev = 0.0;
  for (double qc = 20e-21; qc < 70e-21; qc += 5e-21) {
    double r = m.reliability(qc);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(SerModel, RejectsBadInputs) {
  EXPECT_THROW(relative_ser(1e-21, 1e-21, 0.0), Error);
  EXPECT_THROW(reliability_from_ser_ratio(1.5, 1.0), Error);
  EXPECT_THROW(reliability_from_ser_ratio(0.5, -1.0), Error);
  EXPECT_THROW(failure_exposure(0.0), Error);
  EXPECT_THROW(calibrate_qs(1e-21, 0.9, 1e-21, 0.8), Error);
  EXPECT_THROW(calibrate_qs(1e-21, 0.9, 2e-21, 0.9), Error);
  EXPECT_THROW(SoftErrorModel(1e-21, 1.2, 1e-21), Error);
  EXPECT_THROW(absolute_ser(-1.0, 1.0, 1e-21, 1e-21), Error);
}

}  // namespace
}  // namespace rchls::ser

#include <gtest/gtest.h>

#include <algorithm>

#include "benchmarks/suite.hpp"
#include "dfg/timing.hpp"
#include "sched/asap_alap.hpp"
#include "sched/density.hpp"
#include "sched/force_directed.hpp"
#include "sched/list.hpp"
#include "util/error.hpp"

namespace rchls::sched {
namespace {

std::vector<int> unit_delays(const dfg::Graph& g) {
  return std::vector<int>(g.node_count(), 1);
}

std::vector<int> groups_of(const dfg::Graph& g) {
  std::vector<int> groups(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    groups[id] = g.node(id).op == dfg::OpType::kMul ? 1 : 0;
  }
  return groups;
}

TEST(AsapAlap, WrappersValidate) {
  auto g = benchmarks::fir16();
  auto delays = unit_delays(g);
  Schedule early = asap_schedule(g, delays);
  validate_schedule(g, delays, early);
  EXPECT_EQ(early.latency, 9);  // pre-add + mult + 7-deep chain

  Schedule late = alap_schedule(g, delays, 12);
  validate_schedule(g, delays, late);
  EXPECT_EQ(late.latency, 12);
}

TEST(Occupancy, CountsActiveSteps) {
  dfg::Graph g("t");
  g.add_node("a", dfg::OpType::kAdd);
  g.add_node("b", dfg::OpType::kAdd);
  std::vector<int> delays{2, 1};
  Schedule s;
  s.start = {0, 1};
  s.latency = 2;
  auto use = occupancy(g, delays, s, {true, true});
  EXPECT_EQ(use, (std::vector<int>{1, 2}));
}

class DensityOnBenchmarks : public ::testing::TestWithParam<const char*> {};

TEST_P(DensityOnBenchmarks, ValidAtSeveralLatencies) {
  auto g = benchmarks::by_name(GetParam());
  auto delays = unit_delays(g);
  auto groups = groups_of(g);
  int lmin = dfg::asap_latency(g, delays);
  for (int slack : {0, 1, 3}) {
    Schedule s = density_schedule(g, delays, lmin + slack, groups);
    validate_schedule(g, delays, s);
    EXPECT_LE(s.latency, lmin + slack);
  }
}

TEST_P(DensityOnBenchmarks, SlackReducesPeakUsage) {
  auto g = benchmarks::by_name(GetParam());
  auto delays = unit_delays(g);
  auto groups = groups_of(g);
  int lmin = dfg::asap_latency(g, delays);

  auto peak_sum = [&](const Schedule& s) {
    auto peak = peak_usage(g, delays, s, groups, 2);
    return peak[0] + peak[1];
  };
  Schedule tight = density_schedule(g, delays, lmin, groups);
  Schedule loose = density_schedule(g, delays, lmin + 4, groups);
  EXPECT_LE(peak_sum(loose), peak_sum(tight));
}

INSTANTIATE_TEST_SUITE_P(All, DensityOnBenchmarks,
                         ::testing::Values("fig4_example", "fir16", "ewf",
                                           "diffeq", "ar_lattice"));

TEST(Density, BeatsAsapPeakOnFir) {
  // The point of the density scheduler: spreading ops across partitions
  // needs fewer units than raw ASAP.
  auto g = benchmarks::fir16();
  auto delays = unit_delays(g);
  auto groups = groups_of(g);
  int lmin = dfg::asap_latency(g, delays);

  Schedule early = asap_schedule(g, delays);
  Schedule dens = density_schedule(g, delays, lmin + 2, groups);
  auto peak_asap = peak_usage(g, delays, early, groups, 2);
  auto peak_dens = peak_usage(g, delays, dens, groups, 2);
  EXPECT_LT(peak_dens[0] + peak_dens[1], peak_asap[0] + peak_asap[1]);
}

TEST(Density, ThrowsOnInfeasibleLatency) {
  auto g = benchmarks::fir16();
  auto delays = unit_delays(g);
  EXPECT_THROW(density_schedule(g, delays, 3, groups_of(g)),
               NoSolutionError);
}

TEST(Density, RejectsGroupSizeMismatch) {
  auto g = benchmarks::diffeq();
  auto delays = unit_delays(g);
  EXPECT_THROW(density_schedule(g, delays, 10, std::vector<int>{0, 1}),
               Error);
}

TEST(List, RespectsResourceLimits) {
  auto g = benchmarks::fir16();
  auto delays = unit_delays(g);
  auto groups = groups_of(g);
  for (int na : {1, 2, 3}) {
    for (int nm : {1, 2}) {
      std::vector<int> instances{na, nm};
      Schedule s = list_schedule(g, delays, groups, instances);
      validate_schedule(g, delays, s);
      auto peak = peak_usage(g, delays, s, groups, 2);
      EXPECT_LE(peak[0], na);
      EXPECT_LE(peak[1], nm);
    }
  }
}

TEST(List, MoreUnitsNeverHurtLatency) {
  auto g = benchmarks::ewf();
  auto delays = unit_delays(g);
  auto groups = groups_of(g);
  int prev = 1 << 30;
  for (int n : {1, 2, 3, 4}) {
    std::vector<int> instances{n, n};
    Schedule s = list_schedule(g, delays, groups, instances);
    EXPECT_LE(s.latency, prev);
    prev = s.latency;
  }
}

TEST(List, SingleUnitSerializes) {
  auto g = benchmarks::fig4_example();  // six adds
  auto delays = unit_delays(g);
  std::vector<int> groups(g.node_count(), 0);
  Schedule s = list_schedule(g, delays, groups, std::vector<int>{1});
  EXPECT_EQ(s.latency, 6);
}

TEST(List, MultiCycleOpsHoldUnits) {
  auto g = benchmarks::fig4_example();
  std::vector<int> delays(g.node_count(), 2);
  std::vector<int> groups(g.node_count(), 0);
  Schedule s = list_schedule(g, delays, groups, std::vector<int>{1});
  EXPECT_EQ(s.latency, 12);
}

TEST(List, RejectsBadInputs) {
  auto g = benchmarks::diffeq();
  auto delays = unit_delays(g);
  auto groups = groups_of(g);
  EXPECT_THROW(list_schedule(g, delays, groups, std::vector<int>{1}), Error);
  EXPECT_THROW(list_schedule(g, delays, groups, std::vector<int>{0, 1}),
               Error);
}

class FdsOnBenchmarks : public ::testing::TestWithParam<const char*> {};

TEST_P(FdsOnBenchmarks, ProducesValidSchedules) {
  auto g = benchmarks::by_name(GetParam());
  auto delays = unit_delays(g);
  auto groups = groups_of(g);
  int lmin = dfg::asap_latency(g, delays);
  Schedule s = force_directed_schedule(g, delays, lmin + 2, groups);
  validate_schedule(g, delays, s);
  EXPECT_LE(s.latency, lmin + 2);
}

INSTANTIATE_TEST_SUITE_P(All, FdsOnBenchmarks,
                         ::testing::Values("fig4_example", "fir16", "diffeq",
                                           "ar_lattice"));

TEST(Fds, ComparableToDensityOnFir) {
  auto g = benchmarks::fir16();
  auto delays = unit_delays(g);
  auto groups = groups_of(g);
  int lmin = dfg::asap_latency(g, delays);
  Schedule fds = force_directed_schedule(g, delays, lmin + 2, groups);
  Schedule dens = density_schedule(g, delays, lmin + 2, groups);
  auto pf = peak_usage(g, delays, fds, groups, 2);
  auto pd = peak_usage(g, delays, dens, groups, 2);
  // FDS should not be drastically worse than the simple density heuristic.
  EXPECT_LE(pf[0] + pf[1], pd[0] + pd[1] + 2);
}

TEST(ValidateSchedule, CatchesViolations) {
  dfg::Graph g("t");
  dfg::NodeId a = g.add_node("a", dfg::OpType::kAdd);
  dfg::NodeId b = g.add_node("b", dfg::OpType::kAdd);
  g.add_edge(a, b);
  std::vector<int> delays{2, 1};

  Schedule bad;
  bad.start = {0, 1};  // b starts before a finishes
  bad.latency = 2;
  EXPECT_THROW(validate_schedule(g, delays, bad), ValidationError);

  Schedule negative;
  negative.start = {-1, 2};
  negative.latency = 3;
  EXPECT_THROW(validate_schedule(g, delays, negative), ValidationError);

  Schedule stale;
  stale.start = {0, 2};
  stale.latency = 99;
  EXPECT_THROW(validate_schedule(g, delays, stale), ValidationError);
}

}  // namespace
}  // namespace rchls::sched

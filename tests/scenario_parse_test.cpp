#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "scenario/parse.hpp"
#include "temp_dir.hpp"
#include "util/error.hpp"

namespace rchls::scenario {
namespace {

// Temp directory (under the test's CWD) for include-resolution tests.
class ScenarioIncludeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = rchls::testing::unique_test_dir("scenario_parse_test_tmp");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void write(const std::string& name, const std::string& text) {
    std::ofstream out(dir_ / name);
    out << text;
  }

  std::filesystem::path dir_;
};

std::string error_of(const std::string& text) {
  try {
    parse_string(text);
  } catch (const ParseError& e) {
    return e.what();
  }
  return "";
}

TEST(ScenarioParse, FullScenario) {
  Scenario s = parse_string(
      "scenario demo\n"
      "graph fir16\n"
      "library paper\n"
      "bounds tight 11 11\n"
      "find_design tight\n"
      "find_design latency=12 area=13 engine=combined polish=on\n"
      "sweep latency 11,12,13 area=13\n"
      "sweep area 11,13 latency=12 explore=2\n"
      "grid latencies=11,12 areas=11,13 baseline_adder=adder_2 "
      "baseline_mult=mult_2\n"
      "inject ripple_carry_adder width=8 trials=128 seed=7\n"
      "rank_gates kogge_stone_adder width=4 trials=64 top=3\n");
  EXPECT_EQ(s.name, "demo");
  ASSERT_TRUE(s.graph.has_value());
  EXPECT_EQ(s.graph->name(), "fir16");
  EXPECT_EQ(s.library.size(), 5u);
  ASSERT_EQ(s.actions.size(), 7u);

  const auto& fd1 = std::get<FindDesignAction>(s.actions[0].op);
  EXPECT_EQ(fd1.latency_bound, 11);
  EXPECT_DOUBLE_EQ(fd1.area_bound, 11.0);
  EXPECT_EQ(fd1.engine, "centric");
  EXPECT_EQ(s.actions[0].label, "find_design#1");

  const auto& fd2 = std::get<FindDesignAction>(s.actions[1].op);
  EXPECT_EQ(fd2.engine, "combined");
  EXPECT_TRUE(fd2.options.enable_polish);

  const auto& sw = std::get<SweepAction>(s.actions[2].op);
  EXPECT_EQ(sw.axis, SweepAction::Axis::kLatency);
  EXPECT_EQ(sw.latency_bounds, (std::vector<int>{11, 12, 13}));
  ASSERT_EQ(sw.area_bounds.size(), 1u);

  const auto& sw2 = std::get<SweepAction>(s.actions[3].op);
  EXPECT_EQ(sw2.options.explore_tighter_latency, 2);

  const auto& gr = std::get<GridAction>(s.actions[4].op);
  ASSERT_TRUE(gr.baseline_versions.has_value());
  EXPECT_EQ(gr.baseline_versions->first, "adder_2");

  const auto& in = std::get<InjectAction>(s.actions[5].op);
  EXPECT_EQ(in.trials, 128u);
  EXPECT_EQ(in.seed, 7u);

  const auto& rg = std::get<RankGatesAction>(s.actions[6].op);
  EXPECT_EQ(rg.top, 3);
}

TEST(ScenarioParse, InlineGraphAndLibrary) {
  Scenario s = parse_string(
      "dfg tiny\n"
      "node a add\n"
      "node b mul\n"
      "edge a b\n"
      "resource aa adder 1 1 0.99\n"
      "resource mm mult 2 1 0.98\n"
      "find_design latency=4 area=8\n");
  ASSERT_TRUE(s.graph.has_value());
  EXPECT_EQ(s.graph->node_count(), 2u);
  EXPECT_EQ(s.library.size(), 2u);
}

TEST(ScenarioParse, InlineTimingLinesCharacterizeInlineResources) {
  Scenario s = parse_string(
      "dfg tiny\n"
      "node a add\n"
      "resource aa adder 1 1 0.99\n"
      "timing aa a 2 3 0.25\n"
      "timing aa b 1 1 0\n"
      "find_design latency=4 area=8\n");
  const auto& v = s.library.version(s.library.find("aa"));
  ASSERT_EQ(v.timing.size(), 2u);
  EXPECT_EQ(v.timing[0].pin, "a");
  EXPECT_EQ(v.timing[0].rise, 2.0);
  EXPECT_EQ(v.timing[0].fall, 3.0);
  EXPECT_EQ(v.timing[0].slope, 0.25);

  // Ordering and reference rules carry over from library/io.
  EXPECT_THROW(parse_string("timing aa a 1 1 0\n"), ParseError);
  EXPECT_THROW(parse_string("library paper\ntiming adder_1 a 1 1 0\n"),
               ParseError);
  EXPECT_THROW(
      parse_string("resource aa adder 1 1 0.99\ntiming nope a 1 1 0\n"),
      ParseError);
  EXPECT_THROW(
      parse_string("resource aa adder 1 1 0.99\ntiming aa c 1 1 0\n"),
      ParseError);
}

TEST(ScenarioParse, DefaultsToPaperLibrary) {
  Scenario s = parse_string("graph diffeq\nfind_design latency=7 area=13\n");
  EXPECT_EQ(s.library.size(), 5u);
  EXPECT_EQ(s.library.version(s.library.find("adder_1")).delay, 2);
}

TEST(ScenarioParse, ScenarioWithoutGraphAllowsOnlyCampaigns) {
  Scenario s =
      parse_string("inject ripple_carry_adder width=4 trials=64\n");
  EXPECT_FALSE(s.graph.has_value());
  EXPECT_EQ(s.actions.size(), 1u);
}

TEST(ScenarioParse, StaActions) {
  Scenario s = parse_string(
      "graph fir16\n"
      "sta kogge_stone_adder width=4 clock=9.5 top_paths=2 top=5 trials=64 "
      "seed=9\n"
      "sta versions=most_reliable width=8\n");
  ASSERT_EQ(s.actions.size(), 2u);

  const auto& comp = std::get<StaAction>(s.actions[0].op);
  EXPECT_EQ(comp.component, "kogge_stone_adder");
  EXPECT_EQ(comp.width, 4);
  EXPECT_DOUBLE_EQ(comp.clock, 9.5);
  EXPECT_EQ(comp.top_paths, 2);
  EXPECT_EQ(comp.top, 5);
  EXPECT_EQ(comp.trials, 64u);
  EXPECT_EQ(comp.seed, 9u);
  EXPECT_EQ(s.actions[0].label, "sta#1");

  const auto& graphy = std::get<StaAction>(s.actions[1].op);
  EXPECT_TRUE(graphy.component.empty());
  EXPECT_EQ(graphy.versions, "most_reliable");
  EXPECT_EQ(graphy.width, 8);
}

TEST(ScenarioParse, ComponentShapedStaNeedsNoGraph) {
  Scenario s = parse_string("sta ripple_carry_adder width=4 trials=64\n");
  EXPECT_FALSE(s.graph.has_value());
  EXPECT_EQ(s.actions.size(), 1u);
}

TEST(ScenarioParse, RejectsMalformedStaActions) {
  // unknown component
  EXPECT_THROW(parse_string("sta warp_core\n"), ParseError);
  // graph-shaped action with no graph in the scenario
  EXPECT_THROW(parse_string("sta width=4\n"), ParseError);
  // versions= is graph-shaped only
  EXPECT_THROW(
      parse_string("sta ripple_carry_adder versions=fastest\n"), ParseError);
  EXPECT_THROW(parse_string("graph fir16\nsta versions=slowest\n"),
               ParseError);
  EXPECT_THROW(parse_string("graph fir16\nsta clock=-1\n"), ParseError);
  EXPECT_THROW(parse_string("graph fir16\nsta top_paths=-1\n"), ParseError);
  EXPECT_THROW(parse_string("graph fir16\nsta width=0\n"), ParseError);
  EXPECT_THROW(parse_string("graph fir16\nsta bogus=1\n"), ParseError);
}

// --- error paths (each must throw ParseError with the offending line) ---

TEST(ScenarioParse, BadDirectiveHasLineNumber) {
  std::string msg = error_of("scenario x\ngraph fir16\nfrobnicate a b\n");
  EXPECT_NE(msg.find(":3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown directive"), std::string::npos) << msg;
}

TEST(ScenarioParse, UndeclaredNodeHasLineNumber) {
  std::string msg =
      error_of("dfg g\nnode a add\nedge a missing\n");
  EXPECT_NE(msg.find(":3:"), std::string::npos) << msg;
}

TEST(ScenarioParse, MissingIncludeFileHasLineNumber) {
  std::string msg = error_of("scenario x\ngraph @does_not_exist.dfg\n");
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("cannot open"), std::string::npos) << msg;

  msg = error_of("library @nope.lib\n");
  EXPECT_NE(msg.find(":1:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("cannot open"), std::string::npos) << msg;
}

TEST(ScenarioParse, UndeclaredBoundsLabel) {
  std::string msg = error_of("graph fir16\nfind_design nosuch\n");
  EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("undeclared bounds label"), std::string::npos) << msg;
}

TEST(ScenarioParse, ActionWithoutGraphFails) {
  std::string msg = error_of("find_design latency=5 area=9\n");
  EXPECT_NE(msg.find(":1:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("needs a graph"), std::string::npos) << msg;
}

TEST(ScenarioParse, RejectsMalformedActions) {
  EXPECT_THROW(parse_string("graph fir16\nfind_design latency=5\n"),
               ParseError);
  EXPECT_THROW(parse_string("graph fir16\nfind_design area=5\n"),
               ParseError);
  EXPECT_THROW(
      parse_string("graph fir16\nfind_design latency=5 area=x\n"),
      ParseError);
  EXPECT_THROW(
      parse_string("graph fir16\nsweep latency 1,2,3\n"),  // missing area=
      ParseError);
  EXPECT_THROW(parse_string("graph fir16\nsweep sideways 1,2 area=3\n"),
               ParseError);
  EXPECT_THROW(parse_string("graph fir16\ngrid latencies=1,2\n"),
               ParseError);
  EXPECT_THROW(parse_string("inject warp_core\n"), ParseError);
  EXPECT_THROW(
      parse_string("graph fir16\nfind_design latency=5 area=9 bogus=1\n"),
      ParseError);
  EXPECT_THROW(
      parse_string("graph fir16\nfind_design latency=5 area=9 engine=magic\n"),
      ParseError);
}

TEST(ScenarioParse, RejectsNegativeExploreAndGate) {
  // A negative explore would make hls::find_design run zero pipeline
  // iterations and report every point unsolved; a negative gate would
  // wrap to a huge unsigned id. Both must fail at parse time.
  EXPECT_THROW(
      parse_string("graph fir16\nfind_design latency=12 area=13 explore=-1\n"),
      ParseError);
  EXPECT_THROW(
      parse_string("graph fir16\nsweep latency 11,12 area=13 explore=-3\n"),
      ParseError);
  EXPECT_THROW(
      parse_string("inject ripple_carry_adder width=4 trials=64 gate=-1\n"),
      ParseError);
}

TEST(ScenarioParse, RejectsDuplicateDeclarations) {
  EXPECT_THROW(parse_string("graph fir16\ngraph diffeq\n"), ParseError);
  EXPECT_THROW(parse_string("graph fir16\ndfg g\n"), ParseError);
  EXPECT_THROW(parse_string("library paper\nlibrary paper\n"), ParseError);
  EXPECT_THROW(
      parse_string("library paper\nresource a adder 1 1 0.9\n"),
      ParseError);
  EXPECT_THROW(
      parse_string("bounds b 5 9\nbounds b 6 9\ngraph fir16\n"),
      ParseError);
  EXPECT_THROW(parse_string("scenario a\nscenario b\n"), ParseError);
}

TEST(ScenarioParse, NodeOutsideInlineGraphFails) {
  std::string msg = error_of("graph fir16\nnode a add\n");
  EXPECT_NE(msg.find("outside an inline dfg block"), std::string::npos)
      << msg;
}

TEST(ScenarioParse, UnknownBaselineVersionNameFails) {
  std::string msg = error_of(
      "graph fir16\n"
      "grid latencies=11 areas=11 baseline_adder=nope baseline_mult=mult_2\n");
  EXPECT_NE(msg.find("no version named 'nope'"), std::string::npos) << msg;
}

TEST(ScenarioParse, InlineCycleThrowsValidationError) {
  EXPECT_THROW(
      parse_string("dfg g\nnode a add\nnode b add\nedge a b\nedge b a\n"),
      ValidationError);
}

TEST_F(ScenarioIncludeTest, ResolvesGraphAndLibraryIncludes) {
  write("g.dfg", "dfg included\nnode a add\nnode b mul\nedge a b\n");
  write("l.lib",
        "resource aa adder 1 1 0.99\nresource mm mult 2 1 0.98\n");
  write("main.scn",
        "scenario inc\ngraph @g.dfg\nlibrary @l.lib\n"
        "find_design latency=4 area=8\n");

  Scenario s = parse_file(dir_ / "main.scn");
  ASSERT_TRUE(s.graph.has_value());
  EXPECT_EQ(s.graph->name(), "included");
  EXPECT_EQ(s.library.size(), 2u);
}

TEST_F(ScenarioIncludeTest, IncludeErrorsCarryIncluderLine) {
  write("bad.dfg", "dfg g\nnode a add\nnode a add\n");
  write("main.scn", "scenario inc\n\ngraph @bad.dfg\n");
  try {
    parse_file(dir_ / "main.scn");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("main.scn:3:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bad.dfg"), std::string::npos) << msg;
  }
}

TEST_F(ScenarioIncludeTest, IncludeDirectiveSplicesSharedPrelude) {
  write("prelude.inc",
        "library paper\nbounds tight 11 11\nbounds wide 12 15\n");
  write("main.scn",
        "scenario inc\ngraph fir16\ninclude prelude.inc\n"
        "find_design tight\nfind_design wide\n");

  Scenario s = parse_file(dir_ / "main.scn");
  EXPECT_EQ(s.library.size(), 5u);
  ASSERT_EQ(s.actions.size(), 2u);
  const auto& fd = std::get<FindDesignAction>(s.actions[0].op);
  EXPECT_EQ(fd.latency_bound, 11);
  EXPECT_DOUBLE_EQ(fd.area_bound, 11.0);
}

TEST_F(ScenarioIncludeTest, NestedIncludesResolveRelativeToIncluder) {
  std::filesystem::create_directories(dir_ / "sub");
  {
    std::ofstream out(dir_ / "sub" / "inner.inc");
    out << "bounds tight 6 8\n";
  }
  write("sub/outer.inc", "include inner.inc\n");  // relative to sub/
  write("main.scn",
        "graph fig4_example\ninclude sub/outer.inc\nfind_design tight\n");

  Scenario s = parse_file(dir_ / "main.scn");
  ASSERT_EQ(s.actions.size(), 1u);
  EXPECT_EQ(std::get<FindDesignAction>(s.actions[0].op).latency_bound, 6);
}

TEST_F(ScenarioIncludeTest, MissingIncludeNamesIncluderLine) {
  write("main.scn", "scenario inc\ninclude nope.inc\n");
  try {
    parse_file(dir_ / "main.scn");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("main.scn:2:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nope.inc"), std::string::npos) << msg;
  }
}

TEST_F(ScenarioIncludeTest, ErrorsInsideIncludeAnchorAtTheFragment) {
  write("broken.inc", "library paper\nwat 1 2\n");
  write("main.scn", "scenario inc\ninclude broken.inc\n");
  try {
    parse_file(dir_ / "main.scn");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("broken.inc:2:"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ScenarioIncludeTest, IncludeCycleHitsDepthLimit) {
  write("a.inc", "include b.inc\n");
  write("b.inc", "include a.inc\n");
  write("main.scn", "include a.inc\n");
  try {
    parse_file(dir_ / "main.scn");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nested deeper"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ScenarioIncludeTest, DuplicateDeclarationsApplyAcrossIncludes) {
  write("prelude.inc", "library paper\n");
  write("main.scn",
        "scenario inc\ninclude prelude.inc\nlibrary paper\n");
  try {
    parse_file(dir_ / "main.scn");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("main.scn:3:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate library"), std::string::npos) << msg;
  }
}

// ------------------------------------------------- parameter substitution

TEST(ScenarioParams, SetAndExpandInActionsAndBounds) {
  Scenario s = parse_string(
      "scenario params\n"
      "graph fig4_example\n"
      "set ld 6\n"
      "set trials 256\n"
      "bounds tight ${ld} 8\n"
      "find_design tight\n"
      "inject ripple_carry_adder width=4 trials=${trials}\n"
      "sweep area 6,8,${ld} latency=${ld}\n");
  ASSERT_EQ(s.actions.size(), 3u);
  const auto& fd = std::get<FindDesignAction>(s.actions[0].op);
  EXPECT_EQ(fd.latency_bound, 6);
  const auto& in = std::get<InjectAction>(s.actions[1].op);
  EXPECT_EQ(in.trials, 256u);
  const auto& sw = std::get<SweepAction>(s.actions[2].op);
  EXPECT_EQ(sw.area_bounds, (std::vector<double>{6.0, 8.0, 6.0}));
  EXPECT_EQ(sw.latency_bounds, std::vector<int>{6});
}

TEST(ScenarioParams, LastSetWinsAtUseTime) {
  Scenario s = parse_string(
      "set w 16\n"
      "set w 4\n"
      "inject ripple_carry_adder width=${w}\n"
      "set w 8\n"
      "inject ripple_carry_adder width=${w}\n");
  EXPECT_EQ(std::get<InjectAction>(s.actions[0].op).width, 4);
  EXPECT_EQ(std::get<InjectAction>(s.actions[1].op).width, 8);
}

TEST(ScenarioParams, MultiTokenValuesExpandToMultipleTokens) {
  // A variable may hold several tokens -- e.g. a whole option cluster.
  Scenario s = parse_string(
      "set campaign width=4 trials=128 seed=9\n"
      "inject ripple_carry_adder ${campaign}\n");
  const auto& in = std::get<InjectAction>(s.actions[0].op);
  EXPECT_EQ(in.width, 4);
  EXPECT_EQ(in.trials, 128u);
  EXPECT_EQ(in.seed, 9u);
}

TEST(ScenarioParams, UndefinedVariableFailsWithLineNumber) {
  std::string msg = error_of(
      "scenario params\n"
      "graph fig4_example\n"
      "find_design latency=${nope} area=8\n");
  EXPECT_NE(msg.find("<string>:3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("undefined variable '${nope}'"), std::string::npos)
      << msg;
}

TEST(ScenarioParams, MalformedReferencesAndSetsFail) {
  EXPECT_NE(error_of("inject ripple_carry_adder width=${w\n")
                .find("unterminated ${...}"),
            std::string::npos);
  EXPECT_NE(error_of("inject ripple_carry_adder width=${}\n")
                .find("empty ${}"),
            std::string::npos);
  EXPECT_NE(error_of("set w\n").find("expected: set <name> <value>"),
            std::string::npos);
}

TEST(ScenarioParams, VariablesInCommentsAreIgnored) {
  Scenario s = parse_string(
      "scenario c\n"
      "# ${undefined} in a comment is fine\n"
      "inject ripple_carry_adder width=4  # and here ${too}\n");
  EXPECT_EQ(s.actions.size(), 1u);
}

TEST_F(ScenarioIncludeTest, VariablesParameterizeIncludedFragments) {
  // The paper_common.inc pattern: the fragment reads ${...} values the
  // including scenario `set` beforehand, and provides overridable
  // defaults of its own.
  write("fragment.inc",
        "set trials 512\n"
        "inject ripple_carry_adder width=${w} trials=${trials}\n");
  write("main.scn",
        "scenario fam\n"
        "set w 4\n"
        "include fragment.inc\n"
        "inject kogge_stone_adder width=${w} trials=${trials}\n");
  Scenario s = parse_file(dir_ / "main.scn");
  ASSERT_EQ(s.actions.size(), 2u);
  EXPECT_EQ(std::get<InjectAction>(s.actions[0].op).width, 4);
  EXPECT_EQ(std::get<InjectAction>(s.actions[0].op).trials, 512u);
  // The fragment's `set trials` stays visible after the include.
  EXPECT_EQ(std::get<InjectAction>(s.actions[1].op).trials, 512u);
}

TEST_F(ScenarioIncludeTest, UndefinedVariableInFragmentPointsAtFragment) {
  write("fragment.inc", "inject ripple_carry_adder width=${w}\n");
  write("main.scn", "scenario fam\ninclude fragment.inc\n");
  try {
    parse_file(dir_ / "main.scn");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("fragment.inc:1:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("undefined variable"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace rchls::scenario

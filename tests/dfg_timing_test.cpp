#include <gtest/gtest.h>

#include <algorithm>

#include "dfg/graph.hpp"
#include "dfg/timing.hpp"
#include "util/error.hpp"

namespace rchls::dfg {
namespace {

/// Diamond: a -> {b, c} -> d.
Graph diamond() {
  Graph g("diamond");
  NodeId a = g.add_node("a", OpType::kAdd);
  NodeId b = g.add_node("b", OpType::kAdd);
  NodeId c = g.add_node("c", OpType::kMul);
  NodeId d = g.add_node("d", OpType::kAdd);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(Timing, AsapUnitDelays) {
  Graph g = diamond();
  std::vector<int> delays{1, 1, 1, 1};
  auto start = asap(g, delays);
  EXPECT_EQ(start, (std::vector<int>{0, 1, 1, 2}));
  EXPECT_EQ(asap_latency(g, delays), 3);
}

TEST(Timing, AsapMixedDelays) {
  Graph g = diamond();
  std::vector<int> delays{2, 1, 2, 1};
  auto start = asap(g, delays);
  EXPECT_EQ(start, (std::vector<int>{0, 2, 2, 4}));
  EXPECT_EQ(asap_latency(g, delays), 5);
}

TEST(Timing, AlapAtMinimumLatencyPinsCriticalPath) {
  Graph g = diamond();
  std::vector<int> delays{2, 1, 2, 1};
  auto late = alap(g, delays, 5);
  // a and c and d are critical; b has slack 1.
  EXPECT_EQ(late, (std::vector<int>{0, 3, 2, 4}));
}

TEST(Timing, AlapWithSlackShiftsRight) {
  Graph g = diamond();
  std::vector<int> delays{1, 1, 1, 1};
  auto late = alap(g, delays, 5);
  EXPECT_EQ(late, (std::vector<int>{2, 3, 3, 4}));
}

TEST(Timing, AlapRejectsInfeasibleLatency) {
  Graph g = diamond();
  std::vector<int> delays{2, 1, 2, 1};
  EXPECT_THROW(alap(g, delays, 4), NoSolutionError);
}

TEST(Timing, MobilityZeroOnCriticalPath) {
  Graph g = diamond();
  std::vector<int> delays{2, 1, 2, 1};
  auto m = mobility(g, delays, 5);
  EXPECT_EQ(m, (std::vector<int>{0, 1, 0, 0}));
}

TEST(Timing, CriticalPathPicksHeaviestChain) {
  Graph g = diamond();
  std::vector<int> delays{2, 1, 2, 1};
  auto path = critical_path(g, delays);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(g.node(path[0]).name, "a");
  EXPECT_EQ(g.node(path[1]).name, "c");
  EXPECT_EQ(g.node(path[2]).name, "d");
}

TEST(Timing, CriticalNodesOmitSlackNodes) {
  Graph g = diamond();
  std::vector<int> delays{2, 1, 2, 1};
  auto crit = critical_nodes(g, delays);
  std::vector<std::string> names;
  for (NodeId id : crit) names.push_back(g.node(id).name);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "c", "d"}));
}

TEST(Timing, IndependentNodesAllStartAtZero) {
  Graph g("par");
  g.add_node("a", OpType::kAdd);
  g.add_node("b", OpType::kAdd);
  std::vector<int> delays{3, 1};
  auto start = asap(g, delays);
  EXPECT_EQ(start, (std::vector<int>{0, 0}));
  EXPECT_EQ(asap_latency(g, delays), 3);
}

TEST(Timing, RejectsBadDelayVectors) {
  Graph g = diamond();
  EXPECT_THROW(asap(g, std::vector<int>{1, 1}), Error);
  EXPECT_THROW(asap(g, std::vector<int>{1, 1, 0, 1}), Error);
  EXPECT_THROW(critical_path(g, std::vector<int>{1}), Error);
}

TEST(Timing, CriticalPathOfEmptyGraph) {
  Graph g("empty");
  EXPECT_TRUE(critical_path(g, std::vector<int>{}).empty());
}

}  // namespace
}  // namespace rchls::dfg

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "circuits/adders.hpp"
#include "netlist/topology.hpp"
#include "util/error.hpp"

namespace rchls::netlist {
namespace {

// Gate ids: 0=a, 1=b, 2=not(a), 3=and(a,b), 4=or(2,3) -- a reconvergent
// diamond with a single output.
Netlist diamond() {
  Netlist nl("diamond");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto b = nl.add_input_bus("b", 1).bits[0];
  auto g1 = nl.bnot(a);
  auto g2 = nl.band(a, b);
  auto g3 = nl.bor(g1, g2);
  nl.add_output_bus("out", {g3});
  return nl;
}

TEST(Topology, LevelsAreZeroForInputsAndIncreaseDownstream) {
  Netlist nl = diamond();
  Topology topo(nl);
  EXPECT_EQ(topo.level(0), 0u);  // input a
  EXPECT_EQ(topo.level(1), 0u);  // input b
  EXPECT_EQ(topo.level(2), 1u);  // not(a)
  EXPECT_EQ(topo.level(3), 1u);  // and(a, b)
  EXPECT_EQ(topo.level(4), 2u);  // or
  EXPECT_EQ(topo.max_level(), 2u);

  // Every logic gate sits strictly above each of its fanins.
  for (GateId id : topo.logic_gates()) {
    const Gate& g = nl.gate(id);
    EXPECT_GT(topo.level(id), topo.level(g.fanin0));
    if (fanin_count(g.kind) == 2) {
      EXPECT_GT(topo.level(id), topo.level(g.fanin1));
    }
  }
}

TEST(Topology, FanoutAdjacencyMatchesFanins) {
  Netlist nl = diamond();
  Topology topo(nl);

  auto fanouts = [&](GateId id) {
    return std::vector<GateId>(topo.fanout_begin(id), topo.fanout_end(id));
  };
  EXPECT_EQ(fanouts(0), (std::vector<GateId>{2, 3}));  // a feeds not, and
  EXPECT_EQ(fanouts(1), (std::vector<GateId>{3}));     // b feeds and
  EXPECT_EQ(fanouts(2), (std::vector<GateId>{4}));
  EXPECT_EQ(fanouts(3), (std::vector<GateId>{4}));
  EXPECT_EQ(topo.fanout_count(4), 0u);
}

TEST(Topology, DuplicateFaninEdgeIsCollapsed) {
  Netlist nl("dup");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto g = nl.bxor(a, a);
  nl.add_output_bus("out", {g});
  Topology topo(nl);
  EXPECT_EQ(topo.fanout_count(a), 1u);
}

TEST(Topology, LogicGatesExcludeInputsAndConstants) {
  Netlist nl = diamond();
  Topology topo(nl);
  EXPECT_EQ(topo.logic_gates(), (std::vector<GateId>{2, 3, 4}));
}

TEST(Topology, OutputBitsAreFlagged) {
  Netlist nl = diamond();
  Topology topo(nl);
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    EXPECT_EQ(topo.is_output_bit(id), id == 4u) << "gate " << id;
  }
}

TEST(Topology, ConeMatchesBruteForceReachability) {
  Netlist nl = circuits::kogge_stone_adder(8);
  Topology topo(nl);

  // Brute force: reverse-reachability via repeated fanin scans.
  for (GateId root : {GateId{0}, GateId{5}, GateId{20},
                      static_cast<GateId>(nl.gate_count() - 1)}) {
    std::set<GateId> reach{root};
    bool grew = true;
    while (grew) {
      grew = false;
      for (GateId id = 0; id < nl.gate_count(); ++id) {
        const Gate& g = nl.gate(id);
        int n = fanin_count(g.kind);
        bool feeds = (n >= 1 && reach.count(g.fanin0)) ||
                     (n == 2 && reach.count(g.fanin1));
        if (feeds && !reach.count(id)) {
          reach.insert(id);
          grew = true;
        }
      }
    }
    const auto& cone = topo.cone(root);
    EXPECT_TRUE(std::is_sorted(cone.begin(), cone.end()));
    EXPECT_EQ(std::vector<GateId>(reach.begin(), reach.end()), cone);
  }
}

TEST(Topology, ConeIsMemoized) {
  Netlist nl = diamond();
  Topology topo(nl);
  const auto& first = topo.cone(0);
  const auto& second = topo.cone(0);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first, (std::vector<GateId>{0, 2, 3, 4}));
}

TEST(Topology, ConeRejectsOutOfRangeGate) {
  Netlist nl = diamond();
  Topology topo(nl);
  EXPECT_THROW(topo.cone(999), Error);
}

}  // namespace
}  // namespace rchls::netlist

#include <gtest/gtest.h>

#include "dfg/graph.hpp"
#include "dfg/io.hpp"
#include "util/error.hpp"

namespace rchls::dfg {
namespace {

const char* kSample = R"(# a small graph
dfg sample
node a add
node b mul
node c sub   # trailing comment
node d lt
edge a b
edge b c
edge a d
)";

TEST(Io, ParsesDirectives) {
  Graph g = parse_string(kSample);
  EXPECT_EQ(g.name(), "sample");
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.node(g.find("b")).op, OpType::kMul);
  EXPECT_EQ(g.node(g.find("d")).op, OpType::kLt);
}

TEST(Io, RoundTripsThroughText) {
  Graph g = parse_string(kSample);
  Graph g2 = parse_string(to_text(g));
  EXPECT_EQ(g2.name(), g.name());
  ASSERT_EQ(g2.node_count(), g.node_count());
  EXPECT_EQ(g2.edge_count(), g.edge_count());
  for (NodeId id = 0; id < g.node_count(); ++id) {
    EXPECT_EQ(g2.node(id).name, g.node(id).name);
    EXPECT_EQ(g2.node(id).op, g.node(id).op);
    EXPECT_EQ(g2.successors(id), g.successors(id));
  }
}

TEST(Io, ReportsLineNumbers) {
  try {
    parse_string("dfg x\nnode a add\nedge a missing\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Io, RejectsMalformedDirectives) {
  EXPECT_THROW(parse_string("node onlyname\n"), ParseError);
  EXPECT_THROW(parse_string("frobnicate a b\n"), ParseError);
  EXPECT_THROW(parse_string("dfg a\ndfg b\n"), ParseError);
  EXPECT_THROW(parse_string("node a div\n"), ParseError);
  EXPECT_THROW(parse_string("node a add\nnode a add\n"), ParseError);
}

TEST(Io, RejectsCyclesAtParseTime) {
  EXPECT_THROW(
      parse_string("node a add\nnode b add\nedge a b\nedge b a\n"),
      ValidationError);
}

TEST(Io, DotOutputMentionsAllNodes) {
  Graph g = parse_string(kSample);
  std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"a"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);  // mul node
}

TEST(Io, DotListsEveryNodeAndEdge) {
  Graph g = parse_string(kSample);
  std::string dot = to_dot(g);
  // One declaration line per node: "  nK [label=..." for K = 0..3.
  for (NodeId id = 0; id < g.node_count(); ++id) {
    std::string decl = "  n" + std::to_string(id) + " [label=";
    EXPECT_NE(dot.find(decl), std::string::npos) << decl;
  }
  // One arrow per edge, by node id.
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);  // a -> b
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);  // b -> c
  EXPECT_NE(dot.find("n0 -> n3"), std::string::npos);  // a -> d
  // Exactly edge_count() arrows in total.
  std::size_t arrows = 0;
  for (auto pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 2)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, g.edge_count());
}

TEST(Io, DotShapesFollowResourceClasses) {
  Graph g = parse_string(kSample);
  std::string dot = to_dot(g);
  // The single mul is boxed; the three adder-class ops are ellipses.
  EXPECT_EQ(dot.find("shape=box"), dot.rfind("shape=box"));
  std::size_t ellipses = 0;
  for (auto pos = dot.find("shape=ellipse"); pos != std::string::npos;
       pos = dot.find("shape=ellipse", pos + 1)) {
    ++ellipses;
  }
  EXPECT_EQ(ellipses, 3u);
}

TEST(Io, DotLabelsCarryNameAndOp) {
  Graph g = parse_string("dfg g\nnode acc add\nnode prod mul\n");
  std::string dot = to_dot(g);
  EXPECT_NE(dot.find("label=\"acc\\nadd\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("label=\"prod\\nmul\""), std::string::npos) << dot;
}

TEST(Io, DotOfEmptyGraphIsWellFormed) {
  std::string dot = to_dot(Graph("empty"));
  EXPECT_NE(dot.find("digraph \"empty\""), std::string::npos);
  EXPECT_EQ(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Io, EmptyInputYieldsEmptyGraph) {
  Graph g = parse_string("# nothing\n");
  EXPECT_EQ(g.node_count(), 0u);
}

}  // namespace
}  // namespace rchls::dfg

// Per-test scratch directories for gtest fixtures.
//
// ctest (via gtest_discover_tests) runs every TEST of a binary as its
// own concurrent process in ONE working directory, so a fixture using a
// fixed scratch-dir name races itself: one test's TearDown remove_all
// deletes another running test's files. unique_test_dir() suffixes the
// current test's name, which is unique within a suite by construction.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace rchls::testing {

/// A fresh (removed + recreated) directory named
/// `<prefix>_<current test name>` under the working directory.
inline std::filesystem::path unique_test_dir(const std::string& prefix) {
  std::filesystem::path dir =
      prefix + "_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace rchls::testing

#include <gtest/gtest.h>

#include "circuits/adders.hpp"
#include "circuits/redundancy.hpp"
#include "netlist/sim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rchls::circuits {
namespace {

using netlist::Fault;
using netlist::GateKind;
using netlist::Netlist;
using netlist::Simulator;

TEST(Voter, MajorityOfThreeBitwise) {
  Netlist nl = majority_voter(4);
  Simulator sim(nl);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t a = rng.next_below(16);
    std::uint64_t b = rng.next_below(16);
    std::uint64_t c = rng.next_below(16);
    auto out = sim.run_scalar({a, b, c});
    std::uint64_t expect = (a & b) | (b & c) | (c & a);
    EXPECT_EQ(out[0], expect);
  }
}

TEST(Voter, RejectsBadWidth) {
  EXPECT_THROW(majority_voter(0), Error);
  EXPECT_THROW(majority_voter(65), Error);
}

TEST(Replicate, PreservesFunction) {
  Netlist base = ripple_carry_adder(6);
  Netlist tmr = replicate_with_voting(base, 3);
  Simulator sim_base(base);
  Simulator sim_tmr(tmr);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    std::uint64_t a = rng.next_below(64);
    std::uint64_t b = rng.next_below(64);
    std::uint64_t cin = rng.next_below(2);
    EXPECT_EQ(sim_base.run_scalar({a, b, cin}),
              sim_tmr.run_scalar({a, b, cin}));
  }
}

TEST(Replicate, MasksAnySingleLogicFault) {
  // The defining property of TMR: a single upset anywhere inside ONE
  // replica's logic cone never corrupts a voted output.
  Netlist base = ripple_carry_adder(4);
  Netlist tmr = replicate_with_voting(base, 3);
  Simulator sim(tmr);
  std::size_t shared_inputs = tmr.input_bits().size();
  std::size_t replica_gates = base.gate_count() - base.input_bits().size();

  std::vector<std::uint64_t> inputs(shared_inputs);
  Rng rng(13);
  for (auto& w : inputs) w = rng.next_u64();
  auto golden = sim.output_words(sim.run(inputs));

  // Fault every gate of replica 0 (the gates created right after the
  // shared inputs). Voted outputs must all match golden.
  for (std::uint32_t offset = 0; offset < replica_gates; ++offset) {
    std::uint32_t victim = static_cast<std::uint32_t>(shared_inputs) + offset;
    if (netlist::fanin_count(tmr.gate(victim).kind) == 0) continue;
    auto faulty = sim.output_words(sim.run(inputs, Fault{victim, ~0ULL}));
    EXPECT_EQ(golden, faulty) << "fault at gate " << victim << " leaked";
  }
}

TEST(Replicate, FiveWayVotingToleratesTwoReplicaFaults) {
  Netlist base = ripple_carry_adder(2);
  Netlist nmr = replicate_with_voting(base, 5);
  Simulator sim(nmr);
  std::vector<std::uint64_t> inputs(nmr.input_bits().size(), ~0ULL);
  auto golden = sim.output_words(sim.run(inputs));
  // Kill one replica completely (fault its last gate); still correct.
  std::size_t shared = nmr.input_bits().size();
  std::size_t per_replica = base.gate_count() - base.input_bits().size();
  auto faulty = sim.output_words(sim.run(
      inputs, Fault{static_cast<std::uint32_t>(shared + per_replica - 1),
                    ~0ULL}));
  EXPECT_EQ(golden, faulty);
}

TEST(Replicate, RejectsInvalidCopyCounts) {
  Netlist base = ripple_carry_adder(2);
  EXPECT_THROW(replicate_with_voting(base, 2), Error);
  EXPECT_THROW(replicate_with_voting(base, 4), Error);
  EXPECT_THROW(replicate_with_voting(base, 9), Error);
}

TEST(Replicate, GateCountRoughlyTriples) {
  Netlist base = ripple_carry_adder(8);
  Netlist tmr = replicate_with_voting(base, 3);
  EXPECT_GE(tmr.gate_count(), 3 * (base.gate_count() -
                                   base.input_bits().size()));
}

}  // namespace
}  // namespace rchls::circuits

#include <gtest/gtest.h>

#include "circuits/adders.hpp"
#include "netlist/sim.hpp"
#include "netlist/stats.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rchls::circuits {
namespace {

using netlist::Netlist;
using netlist::Simulator;

using AdderGen = Netlist (*)(int);

struct AdderCase {
  const char* name;
  AdderGen gen;
  int width;
};

class AdderFunctional : public ::testing::TestWithParam<AdderCase> {};

TEST_P(AdderFunctional, MatchesReferenceArithmetic) {
  const auto& param = GetParam();
  Netlist nl = param.gen(param.width);
  Simulator sim(nl);
  int w = param.width;
  std::uint64_t mask = w == 64 ? ~0ULL : ((1ULL << w) - 1);

  auto check = [&](std::uint64_t a, std::uint64_t b, std::uint64_t cin) {
    auto out = sim.run_scalar({a & mask, b & mask, cin & 1});
    // out[0] = sum, out[1] = cout.
    unsigned __int128 full = static_cast<unsigned __int128>(a & mask) +
                             (b & mask) + (cin & 1);
    EXPECT_EQ(out[0], static_cast<std::uint64_t>(full) & mask)
        << param.name << " width " << w << " a=" << a << " b=" << b;
    EXPECT_EQ(out[1], static_cast<std::uint64_t>(full >> w) & 1)
        << param.name << " cout, width " << w;
  };

  if (w <= 4) {
    for (std::uint64_t a = 0; a <= mask; ++a) {
      for (std::uint64_t b = 0; b <= mask; ++b) {
        check(a, b, 0);
        check(a, b, 1);
      }
    }
  } else {
    Rng rng(1234 + static_cast<std::uint64_t>(w));
    check(0, 0, 0);
    check(mask, mask, 1);
    check(mask, 1, 0);
    for (int i = 0; i < 200; ++i) {
      check(rng.next_u64(), rng.next_u64(), rng.next_u64());
    }
  }
}

std::vector<AdderCase> adder_cases() {
  std::vector<AdderCase> cases;
  for (int w : {1, 2, 3, 4, 5, 8, 13, 16, 32, 64}) {
    cases.push_back({"ripple", &ripple_carry_adder, w});
    cases.push_back({"brent_kung", &brent_kung_adder, w});
    cases.push_back({"kogge_stone", &kogge_stone_adder, w});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWidths, AdderFunctional,
                         ::testing::ValuesIn(adder_cases()),
                         [](const auto& info) {
                           return std::string(info.param.name) + "_w" +
                                  std::to_string(info.param.width);
                         });

TEST(Adders, FullAdderTruthTable) {
  Netlist nl("fa");
  auto a = nl.add_input_bus("a", 1).bits[0];
  auto b = nl.add_input_bus("b", 1).bits[0];
  auto c = nl.add_input_bus("c", 1).bits[0];
  BitPair fa = full_adder(nl, a, b, c);
  nl.add_output_bus("s", {fa.sum});
  nl.add_output_bus("co", {fa.carry});
  Simulator sim(nl);
  for (int v = 0; v < 8; ++v) {
    auto out = sim.run_scalar({static_cast<std::uint64_t>(v & 1),
                               static_cast<std::uint64_t>((v >> 1) & 1),
                               static_cast<std::uint64_t>((v >> 2) & 1)});
    int ones = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(out[0], static_cast<std::uint64_t>(ones & 1));
    EXPECT_EQ(out[1], static_cast<std::uint64_t>(ones >> 1));
  }
}

TEST(Adders, PrefixAddersAreShallowerThanRipple) {
  auto ripple = netlist::compute_stats(ripple_carry_adder(16));
  auto bk = netlist::compute_stats(brent_kung_adder(16));
  auto ks = netlist::compute_stats(kogge_stone_adder(16));
  EXPECT_LT(bk.depth, ripple.depth);
  EXPECT_LT(ks.depth, ripple.depth);
  // Kogge-Stone trades area for the minimum depth.
  EXPECT_LE(ks.depth, bk.depth);
  EXPECT_GT(ks.area, bk.area);
}

TEST(Adders, RippleIsSmallest) {
  auto ripple = netlist::compute_stats(ripple_carry_adder(16));
  auto bk = netlist::compute_stats(brent_kung_adder(16));
  EXPECT_LT(ripple.area, bk.area);
}

TEST(Adders, RejectsBadWidths) {
  EXPECT_THROW(ripple_carry_adder(0), Error);
  EXPECT_THROW(brent_kung_adder(-3), Error);
  EXPECT_THROW(kogge_stone_adder(65), Error);
}

}  // namespace
}  // namespace rchls::circuits

// Golden regression tests pinning the headline reproduction numbers
// (values also appearing in EXPERIMENTS.md). These protect the calibrated
// behavior of the whole pipeline: if a scheduler or engine change shifts
// the flagship results, these tests fail first.
#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/suite.hpp"
#include "hls/baseline.hpp"
#include "hls/explore.hpp"
#include "hls/find_design.hpp"
#include "ser/characterize.hpp"

namespace rchls::hls {
namespace {

using library::ResourceLibrary;

TEST(Golden, Table1Reliabilities) {
  auto comps = ser::paper_characterization();
  EXPECT_NEAR(comps[0].reliability, 0.999, 1e-12);
  EXPECT_NEAR(comps[1].reliability, 0.969, 1e-9);
  EXPECT_NEAR(comps[2].reliability, 0.987, 5e-4);  // predicted, not fit
  EXPECT_NEAR(comps[3].reliability, 0.999, 1e-9);
  EXPECT_NEAR(comps[4].reliability, 0.969, 1e-9);
}

TEST(Golden, Fig7UniformReference) {
  // Paper Fig. 7(a): 0.48467 for all-type-2 FIR.
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  Design d = minimal_allocation_design(g, lib, lib.find("adder_2"),
                                       lib.find("mult_2"), 11);
  EXPECT_NEAR(d.reliability, 0.48467, 5e-5);
}

TEST(Golden, Fig7ReliabilityCentric) {
  // Paper Fig. 7(b): 0.78943 = 0.999^16 * 0.969^7 at our mapped bounds
  // (11, 11); see EXPERIMENTS.md for the bound mapping.
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 11, 11.0);
  EXPECT_NEAR(d.reliability, 0.78943, 5e-5);
  EXPECT_NEAR(d.reliability, std::pow(0.999, 16) * std::pow(0.969, 7),
              1e-9);
}

TEST(Golden, Table2aLadderValues) {
  // Two more exact hits on the paper's Table 2(a) "our approach" column.
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  EXPECT_NEAR(find_design(g, lib, 11, 13.0).reliability, 0.89798, 5e-5);
  EXPECT_NEAR(find_design(g, lib, 12, 13.0).reliability, 0.90890, 2e-3);
}

TEST(Golden, Fig7ImprovementFactor) {
  // Paper: 62.88% improvement of ours over the uniform reference.
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  double uniform = minimal_allocation_design(g, lib, lib.find("adder_2"),
                                             lib.find("mult_2"), 11)
                       .reliability;
  double ours = find_design(g, lib, 11, 11.0).reliability;
  EXPECT_NEAR(100.0 * (ours / uniform - 1.0), 62.88, 0.1);
}

TEST(Golden, DiffeqTable2cValue) {
  // Paper Table 2(c) at (7, 11): our approach 0.95935; ours hits it at
  // the +2 area mapping.
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  Design d = find_design(g, lib, 7, 13.0);
  EXPECT_NEAR(d.reliability, 0.95935, 2e-2);
}

TEST(Golden, GridShapeOursBeatsBaselineWhenAreaTight) {
  // The paper's central qualitative claim, evaluated on the FIR panel with
  // the decoded [3] baseline (fixed type-2 versions + duplication).
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  GridOptions opts;
  opts.baseline.fixed_versions = {{lib.find("adder_2"), lib.find("mult_2")}};
  opts.find_design.enable_polish = true;
  opts.find_design.explore_tighter_latency = 2;
  opts.combined.find_design.enable_polish = true;
  opts.combined.find_design.explore_tighter_latency = 2;

  auto rows = comparison_grid(g, lib, {11, 12, 13}, {11.0, 13.0, 15.0},
                              opts);
  int ours_wins = 0;
  for (const auto& row : rows) {
    ASSERT_TRUE(row.baseline && row.ours && row.combined);
    if (*row.ours > *row.baseline) ++ours_wins;
    // Combined must dominate both individual techniques.
    EXPECT_GE(*row.combined, *row.ours - 1e-9);
  }
  // Ours wins the large majority of the grid (paper: all 9 cells of 2(a)
  // except none; we allow a small margin for heuristic differences).
  EXPECT_GE(ours_wins, 7);
}

TEST(Golden, Fig9AverageOrdering) {
  // Fig. 9 shape: averaged over a grid, ours > [3] and combined >= ours.
  ResourceLibrary lib = library::paper_library();
  GridOptions opts;
  opts.baseline.fixed_versions = {{lib.find("adder_2"), lib.find("mult_2")}};
  opts.find_design.enable_polish = true;
  opts.combined.find_design.enable_polish = true;

  for (const char* name : {"fir16", "diffeq"}) {
    auto g = benchmarks::by_name(name);
    auto rows = name == std::string("fir16")
                    ? comparison_grid(g, lib, {11, 12, 13},
                                      {11.0, 13.0, 15.0}, opts)
                    : comparison_grid(g, lib, {5, 6, 7}, {9.0, 11.0, 13.0},
                                      opts);
    auto avg = grid_averages(rows);
    EXPECT_GT(avg.ours, avg.baseline) << name;
    EXPECT_GE(avg.combined, avg.ours - 1e-9) << name;
  }
}

TEST(Golden, QsCalibration) {
  // DESIGN.md: Qs ~= 8.628e-21 C reproduces Table 1 from the published
  // critical charges.
  auto model = ser::SoftErrorModel::paper_calibrated();
  EXPECT_NEAR(model.qs(), 8.628e-21, 5e-24);
}

}  // namespace
}  // namespace rchls::hls

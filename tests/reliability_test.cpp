#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "reliability/algebra.hpp"
#include "util/error.hpp"

namespace rchls::reliability {
namespace {

TEST(Algebra, SerialIsProduct) {
  std::array<double, 3> rs{0.9, 0.8, 0.5};
  EXPECT_DOUBLE_EQ(serial(rs), 0.36);
  EXPECT_DOUBLE_EQ(serial(std::span<const double>{}), 1.0);
}

TEST(Algebra, SerialMatchesPaperFig5Examples) {
  // Fig. 5(a): six adds on type-2 adders.
  std::array<double, 6> a;
  a.fill(0.969);
  EXPECT_NEAR(serial(a), 0.82783, 5e-5);
  // Fig. 5(b): three ops on type 1, three on type 2.
  std::array<double, 6> b{0.999, 0.999, 0.999, 0.969, 0.969, 0.969};
  EXPECT_NEAR(serial(b), 0.90713, 5e-5);
}

TEST(Algebra, SerialMatchesPaperFig7Examples) {
  // Fig. 7(a): all 23 FIR ops on type-2 resources.
  EXPECT_NEAR(std::pow(0.969, 23), 0.48467, 5e-5);
  // Fig. 7(b): 16 ops on type-1 + 7 adds on type-2.
  EXPECT_NEAR(std::pow(0.999, 16) * std::pow(0.969, 7), 0.78943, 5e-5);
}

TEST(Algebra, ParallelIsComplementProduct) {
  std::array<double, 2> rs{0.9, 0.9};
  EXPECT_NEAR(parallel(rs), 0.99, 1e-12);
  EXPECT_DOUBLE_EQ(parallel(std::span<const double>{}), 0.0);
}

TEST(Algebra, Binomial) {
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial(10, 3), 120.0);
  EXPECT_THROW(binomial(3, 4), Error);
  EXPECT_THROW(binomial(-1, 0), Error);
  EXPECT_THROW(binomial(63, 2), Error);
}

TEST(Algebra, KOfNDegenerateCases) {
  EXPECT_NEAR(k_of_n(3, 1, 0.5), 1.0 - 0.125, 1e-12);  // any-of-3
  EXPECT_NEAR(k_of_n(3, 3, 0.5), 0.125, 1e-12);        // all-of-3 = serial
  EXPECT_THROW(k_of_n(3, 0, 0.5), Error);
  EXPECT_THROW(k_of_n(0, 1, 0.5), Error);
}

TEST(Algebra, TmrClosedForm) {
  for (double r : {0.5, 0.9, 0.969, 0.999}) {
    double expect = 3 * r * r - 2 * r * r * r;
    EXPECT_NEAR(nmr(3, r), expect, 1e-12) << r;
  }
}

TEST(Algebra, NmrOneIsIdentity) {
  EXPECT_DOUBLE_EQ(nmr(1, 0.42), 0.42);
}

TEST(Algebra, NmrRejectsEvenN) {
  EXPECT_THROW(nmr(2, 0.9), Error);
  EXPECT_THROW(nmr(0, 0.9), Error);
}

TEST(Algebra, TmrHelpsOnlyAboveOneHalf) {
  EXPECT_GT(nmr(3, 0.9), 0.9);
  EXPECT_LT(nmr(3, 0.4), 0.4);
  EXPECT_NEAR(nmr(3, 0.5), 0.5, 1e-12);
}

TEST(Algebra, FiveMrBeatsTmrForReliableModules) {
  EXPECT_GT(nmr(5, 0.969), nmr(3, 0.969));
}

TEST(Algebra, DuplexWithRecovery) {
  EXPECT_NEAR(duplex_with_recovery(0.969), 1.0 - 0.031 * 0.031, 1e-12);
  EXPECT_DOUBLE_EQ(duplex_with_recovery(1.0), 1.0);
  EXPECT_DOUBLE_EQ(duplex_with_recovery(0.0), 0.0);
}

TEST(Algebra, ModularRedundancyLadder) {
  double r = 0.969;
  EXPECT_DOUBLE_EQ(modular_redundancy(r, 1), r);
  EXPECT_DOUBLE_EQ(modular_redundancy(r, 2), duplex_with_recovery(r));
  EXPECT_DOUBLE_EQ(modular_redundancy(r, 3), nmr(3, r));
  EXPECT_DOUBLE_EQ(modular_redundancy(r, 5), nmr(5, r));
  EXPECT_THROW(modular_redundancy(r, 4), Error);
  EXPECT_THROW(modular_redundancy(r, 0), Error);
}

TEST(Algebra, DuplexBeatsTmrForSingleUpsets) {
  // With detection + rollback, both-fail is the only loss case, so duplex
  // beats majority TMR at equal module reliability.
  EXPECT_GT(duplex_with_recovery(0.969), nmr(3, 0.969));
}

TEST(Algebra, RejectsOutOfRangeProbabilities) {
  std::array<double, 1> bad{1.5};
  EXPECT_THROW(serial(bad), Error);
  EXPECT_THROW(parallel(bad), Error);
  EXPECT_THROW(k_of_n(3, 2, -0.1), Error);
  EXPECT_THROW(duplex_with_recovery(2.0), Error);
}

}  // namespace
}  // namespace rchls::reliability

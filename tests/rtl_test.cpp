#include <gtest/gtest.h>

#include "benchmarks/suite.hpp"
#include "netlist/compose.hpp"
#include "netlist/sim.hpp"
#include "netlist/stats.hpp"
#include "rtl/datapath.hpp"
#include "rtl/elaborate.hpp"
#include "circuits/adders.hpp"
#include "dfg/timing.hpp"
#include "hls/find_design.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rchls::rtl {
namespace {

using library::ResourceLibrary;
using library::VersionId;

std::vector<VersionId> versions_by_name(const dfg::Graph& g,
                                        const ResourceLibrary& lib,
                                        const std::string& adder,
                                        const std::string& mult) {
  std::vector<VersionId> v(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    v[id] = library::class_of(g.node(id).op) ==
                    library::ResourceClass::kAdder
                ? lib.find(adder)
                : lib.find(mult);
  }
  return v;
}

/// Drives the elaborated netlist and the software reference with the same
/// random operands and compares all outputs.
void check_equivalence(const dfg::Graph& g, const ResourceLibrary& lib,
                       const std::vector<VersionId>& versions, int width,
                       int trials, std::uint64_t seed) {
  Elaboration e = elaborate(g, lib, versions, width);
  netlist::Simulator sim(e.netlist);
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::unordered_map<std::string, std::uint64_t> operands;
    std::vector<std::uint64_t> bus_values;
    for (const auto& name : e.input_names) {
      std::uint64_t v = rng.next_u64();
      operands[name] = v;
      bus_values.push_back(v);
    }
    auto hw = sim.run_scalar(bus_values);
    auto sw = reference_eval(g, width, operands);
    ASSERT_EQ(hw.size(), sw.size());
    std::uint64_t mask = (1ULL << width) - 1;
    for (std::size_t i = 0; i < hw.size(); ++i) {
      EXPECT_EQ(hw[i], sw[i] & mask)
          << g.name() << " output " << e.output_names[i] << " trial " << t;
    }
  }
}

TEST(Compose, AppendWiresInputsToDrivers) {
  netlist::Netlist dst("top");
  auto a = dst.add_input_bus("a", 2).bits;
  auto b = dst.add_input_bus("b", 2).bits;
  netlist::Netlist adder = circuits::ripple_carry_adder(2);
  std::vector<netlist::GateId> drivers = {a[0], a[1], b[0], b[1],
                                          dst.add_const(false)};
  auto map = netlist::append(dst, adder, drivers);
  std::vector<netlist::GateId> sum;
  for (auto bit : adder.output_bus("sum").bits) sum.push_back(map[bit]);
  dst.add_output_bus("sum", sum);

  netlist::Simulator sim(dst);
  for (std::uint64_t x = 0; x < 4; ++x) {
    for (std::uint64_t y = 0; y < 4; ++y) {
      EXPECT_EQ(sim.run_scalar({x, y})[0], (x + y) & 3);
    }
  }
}

TEST(Compose, RejectsBadDrivers) {
  netlist::Netlist dst("top");
  dst.add_input_bus("a", 1);
  netlist::Netlist adder = circuits::ripple_carry_adder(2);
  EXPECT_THROW(netlist::append(dst, adder, {0}), Error);
  EXPECT_THROW(netlist::append(dst, adder, {0, 0, 0, 0, 99}), Error);
}

class ElaborateBenchmarks
    : public ::testing::TestWithParam<std::tuple<const char*, const char*,
                                                 const char*>> {};

TEST_P(ElaborateBenchmarks, MatchesSoftwareReference) {
  auto [bench, adder, mult] = GetParam();
  auto g = benchmarks::by_name(bench);
  ResourceLibrary lib = library::paper_library();
  auto versions = versions_by_name(g, lib, adder, mult);
  check_equivalence(g, lib, versions, 8, 10, 42);
}

INSTANTIATE_TEST_SUITE_P(
    All, ElaborateBenchmarks,
    ::testing::Values(
        std::make_tuple("fir16", "adder_1", "mult_1"),
        std::make_tuple("fir16", "adder_2", "mult_2"),
        std::make_tuple("diffeq", "adder_3", "mult_1"),
        std::make_tuple("ewf", "adder_2", "mult_1"),
        std::make_tuple("iir_biquad", "adder_1", "mult_2"),
        std::make_tuple("fdct", "adder_2", "mult_2")),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param) + "_" + std::get<2>(info.param);
    });

TEST(Elaborate, VersionChoiceDoesNotChangeFunction) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  auto v1 = versions_by_name(g, lib, "adder_1", "mult_1");
  auto v2 = versions_by_name(g, lib, "adder_3", "mult_2");
  Elaboration e1 = elaborate(g, lib, v1, 6);
  Elaboration e2 = elaborate(g, lib, v2, 6);
  netlist::Simulator s1(e1.netlist);
  netlist::Simulator s2(e2.netlist);
  Rng rng(7);
  for (int t = 0; t < 20; ++t) {
    std::vector<std::uint64_t> in(e1.input_names.size());
    for (auto& v : in) v = rng.next_u64();
    EXPECT_EQ(s1.run_scalar(in), s2.run_scalar(in));
  }
}

TEST(Elaborate, SubAndLtSemantics) {
  dfg::Graph g("cmp");
  g.add_node("d", dfg::OpType::kSub);
  g.add_node("c", dfg::OpType::kLt);
  ResourceLibrary lib = library::paper_library();
  std::vector<VersionId> v(2, lib.find("adder_1"));
  Elaboration e = elaborate(g, lib, v, 8);
  netlist::Simulator sim(e.netlist);
  // inputs: d_in0, d_in1, c_in0, c_in1.
  auto out = sim.run_scalar({200, 45, 10, 20});
  EXPECT_EQ(out[0], (200 - 45) & 0xFF);
  EXPECT_EQ(out[1], 1u);  // 10 < 20
  out = sim.run_scalar({5, 9, 20, 10});
  EXPECT_EQ(out[0], (5 - 9) & 0xFFu);
  EXPECT_EQ(out[1], 0u);
}

TEST(Elaborate, BiggerVersionsMeanBiggerNetlists) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  auto small = versions_by_name(g, lib, "adder_1", "mult_1");
  auto fast = versions_by_name(g, lib, "adder_3", "mult_2");
  auto n_small = elaborate(g, lib, small, 8).netlist.gate_count();
  auto n_fast = elaborate(g, lib, fast, 8).netlist.gate_count();
  EXPECT_GT(n_fast, n_small);
}

TEST(Elaborate, RejectsBadInputs) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  auto v = versions_by_name(g, lib, "adder_1", "mult_1");
  EXPECT_THROW(elaborate(g, lib, v, 1), Error);
  EXPECT_THROW(elaborate(g, lib, std::vector<VersionId>{0}, 8), Error);
  // class mismatch
  auto bad = v;
  bad[g.find("+1")] = lib.find("mult_1");
  EXPECT_THROW(elaborate(g, lib, bad, 8), Error);
}

TEST(Datapath, StructureMatchesDesign) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  hls::Design d = hls::find_design(g, lib, 12, 10.0);
  DatapathModel m = build_datapath(d, g, lib);

  EXPECT_EQ(m.units.size(), d.binding.instances.size());
  EXPECT_EQ(m.control.size(), static_cast<std::size_t>(d.latency));
  EXPECT_DOUBLE_EQ(m.unit_area, d.area);
  EXPECT_GT(m.register_count, 0);
  EXPECT_GT(m.total_area(), m.unit_area);

  // Every op is issued exactly once, at its scheduled start.
  std::size_t issued = 0;
  for (std::size_t step = 0; step < m.control.size(); ++step) {
    for (const MicroOp& mop : m.control[step].issue) {
      EXPECT_EQ(d.schedule.start[mop.op], static_cast<int>(step));
      EXPECT_EQ(d.binding.instance_of[mop.op], mop.unit);
      EXPECT_EQ(m.reg_of[mop.op], mop.dest_register);
      ++issued;
    }
  }
  EXPECT_EQ(issued, g.node_count());
}

TEST(Datapath, SharedUnitsNeedMuxes) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  hls::Design d = hls::find_design(g, lib, 12, 10.0);
  DatapathModel m = build_datapath(d, g, lib);
  // FIR shares heavily at this bound; some unit must be muxed.
  int total_mux = 0;
  for (const auto& u : m.units) {
    total_mux += u.port_a.mux_count() + u.port_b.mux_count();
  }
  EXPECT_GT(total_mux, 0);
  EXPECT_GT(m.mux_area, 0.0);
}

TEST(Datapath, ReportMentionsEveryUnit) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  hls::Design d = hls::find_design(g, lib, 8, 12.0);
  DatapathModel m = build_datapath(d, g, lib);
  std::string s = to_string(m, g);
  for (const auto& u : m.units) {
    EXPECT_NE(s.find(u.version_name), std::string::npos);
  }
  EXPECT_NE(s.find("controller:"), std::string::npos);
}

TEST(UnitMapTest, PaperNamesAreRegistered) {
  UnitMap m = UnitMap::paper_units();
  for (const char* name : {"adder_1", "adder_2", "adder_3", "mult_1",
                           "mult_2", "ripple_carry_adder"}) {
    EXPECT_TRUE(m.contains(name)) << name;
  }
  EXPECT_FALSE(m.contains("warp_core"));
  library::ResourceVersion v{"warp_core", library::ResourceClass::kAdder,
                             1.0, 1, 0.9};
  EXPECT_THROW(m.build(v, 8), Error);
  m.set("warp_core", &circuits::kogge_stone_adder);
  EXPECT_EQ(m.build(v, 8).input_bits().size(), 17u);
}

}  // namespace
}  // namespace rchls::rtl

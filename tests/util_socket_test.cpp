// Framed socket transport tests (util/socket.hpp): round-trips over
// real unix-domain and loopback-TCP sockets, the framing contracts
// (clean EOF vs mid-frame death, length cap), and the shutdown
// semantics serve::Server's threading leans on.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "temp_dir.hpp"
#include "util/error.hpp"
#include "util/socket.hpp"

namespace rchls::util {
namespace {

class UtilSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = rchls::testing::unique_test_dir("util_socket_test_tmp");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string sock_path() const { return (dir_ / "s.sock").string(); }

  std::filesystem::path dir_;
};

// One echo exchange over an accepted connection, shared by the unix and
// TCP cases below.
void echo_once(Listener& listener, const Socket& client) {
  std::thread server([&] {
    Socket conn = listener.accept();
    ASSERT_TRUE(conn.valid());
    auto frame = recv_frame(conn);
    ASSERT_TRUE(frame.has_value());
    send_frame(conn, "echo:" + *frame);
  });
  send_frame(client, "hello frames");
  auto reply = recv_frame(client);
  server.join();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "echo:hello frames");
}

TEST_F(UtilSocketTest, UnixRoundTrip) {
  Listener listener = listen_unix(sock_path());
  EXPECT_TRUE(std::filesystem::exists(sock_path()));
  Socket client = connect_unix(sock_path());
  echo_once(listener, client);
}

TEST_F(UtilSocketTest, TcpLoopbackRoundTripOnEphemeralPort) {
  Listener listener = listen_tcp_loopback(0);
  ASSERT_GT(listener.port(), 0) << "port 0 must resolve to a real port";
  Socket client = connect_tcp_loopback(listener.port());
  echo_once(listener, client);
}

TEST_F(UtilSocketTest, FramesCarryArbitraryBytesIncludingNuls) {
  Listener listener = listen_unix(sock_path());
  Socket client = connect_unix(sock_path());
  std::string payload = "a\0b\xff\ncd";
  payload += std::string(70000, 'x');  // spans several reads/writes
  std::string received;
  std::thread server([&] {
    Socket conn = listener.accept();
    received = *recv_frame(conn);
    send_frame(conn, "");  // empty frames are legal too
  });
  send_frame(client, payload);
  auto reply = recv_frame(client);
  server.join();
  EXPECT_EQ(received, payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->empty());
}

TEST_F(UtilSocketTest, CleanDisconnectBetweenFramesIsNulloptNotError) {
  Listener listener = listen_unix(sock_path());
  std::thread server([&] {
    Socket conn = listener.accept();
    EXPECT_FALSE(recv_frame(conn).has_value());
  });
  {
    Socket client = connect_unix(sock_path());
  }  // closed without sending anything
  server.join();
}

TEST_F(UtilSocketTest, MidFrameDisconnectThrows) {
  Listener listener = listen_unix(sock_path());
  std::thread server([&] {
    Socket conn = listener.accept();
    EXPECT_THROW(recv_frame(conn), Error);
  });
  {
    Socket client = connect_unix(sock_path());
    // A length prefix promising 1000 bytes, then death.
    const unsigned char header[4] = {0, 0, 3, 0xe8};
    ASSERT_EQ(::send(client.fd(), header, 4, 0), 4);
  }
  server.join();
}

TEST_F(UtilSocketTest, OversizedLengthPrefixIsRejectedBeforeAllocating) {
  Listener listener = listen_unix(sock_path());
  std::thread server([&] {
    Socket conn = listener.accept();
    // Caller cap of 1 KiB: the 16 MiB prefix must be refused up front.
    try {
      recv_frame(conn, 1024);
      FAIL() << "expected Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("frame"), std::string::npos);
    }
  });
  Socket client = connect_unix(sock_path());
  const unsigned char header[4] = {0x01, 0, 0, 0};  // 16 MiB
  ASSERT_EQ(::send(client.fd(), header, 4, 0), 4);
  server.join();
}

TEST_F(UtilSocketTest, SendFrameRefusesPayloadsOverTheWireCap) {
  Listener listener = listen_unix(sock_path());
  Socket client = connect_unix(sock_path());
  std::string too_big(static_cast<std::size_t>(kMaxFrameBytes) + 1, 'x');
  EXPECT_THROW(send_frame(client, too_big), Error);
}

TEST_F(UtilSocketTest, ShutdownUnblocksABlockedAccept) {
  Listener listener = listen_unix(sock_path());
  std::thread blocked([&] {
    Socket conn = listener.accept();
    EXPECT_FALSE(conn.valid()) << "shutdown accept must return invalid";
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.shutdown();
  blocked.join();
}

TEST_F(UtilSocketTest, ShutdownBothUnblocksABlockedReader) {
  Listener listener = listen_unix(sock_path());
  Socket client = connect_unix(sock_path());
  Socket conn = listener.accept();
  std::thread reader([&] {
    // The peer is still open, so this would block forever without the
    // cross-thread shutdown; EOF-at-frame-start is the clean nullopt.
    EXPECT_FALSE(recv_frame(conn).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  conn.shutdown_both();
  reader.join();
}

TEST_F(UtilSocketTest, ListenerUnlinksItsPathOnDestruction) {
  {
    Listener listener = listen_unix(sock_path());
    ASSERT_TRUE(std::filesystem::exists(sock_path()));
  }
  EXPECT_FALSE(std::filesystem::exists(sock_path()));
}

TEST_F(UtilSocketTest, StaleSocketFileIsReplacedAtBind) {
  // A crashed daemon's leftover: some file squatting on the path. bind()
  // alone would fail with EADDRINUSE forever; listen_unix removes it.
  {
    std::ofstream stale(sock_path());
    stale << "leftover";
  }
  Listener listener = listen_unix(sock_path());
  Socket client = connect_unix(sock_path());
  EXPECT_TRUE(client.valid());
}

TEST_F(UtilSocketTest, ConnectToNothingThrows) {
  EXPECT_THROW(connect_unix((dir_ / "absent.sock").string()), Error);
  EXPECT_THROW(connect_tcp_loopback(1), Error);  // reserved, nothing there
}

}  // namespace
}  // namespace rchls::util

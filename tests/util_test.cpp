#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rchls {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitWs) {
  auto t = split_ws("  a  bb\tccc \n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, SplitDelim) {
  auto t = split("a, b,,c", ',');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "b");
  EXPECT_EQ(t[2], "");
  EXPECT_EQ(t[3], "c");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(0.5, 5), "0.50000");
  EXPECT_EQ(format_fixed(0.48467, 5), "0.48467");
  EXPECT_EQ(format_fixed(12.0, 1), "12.0");
}

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"333", "4"});
  std::string s = t.render();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), Error);
}

}  // namespace
}  // namespace rchls

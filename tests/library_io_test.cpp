#include <gtest/gtest.h>

#include "library/io.hpp"
#include "library/resource.hpp"
#include "util/error.hpp"

namespace rchls::library {
namespace {

const char* kSample = R"(# a custom library
library mylib
resource fast_add adder 2 1 0.969    # trailing comment
resource safe_add adder 1 2 0.999
resource mul_a multiplier 2.5 2 0.995
)";

TEST(LibraryIo, ParsesDirectives) {
  ResourceLibrary lib = parse_string(kSample);
  ASSERT_EQ(lib.size(), 3u);
  EXPECT_EQ(lib.version(0).name, "fast_add");
  EXPECT_EQ(lib.version(0).cls, ResourceClass::kAdder);
  EXPECT_EQ(lib.version(0).delay, 1);
  EXPECT_DOUBLE_EQ(lib.version(2).area, 2.5);
  EXPECT_EQ(lib.version(2).cls, ResourceClass::kMultiplier);
  EXPECT_EQ(lib.find("safe_add"), 1u);
}

TEST(LibraryIo, AcceptsMultAlias) {
  ResourceLibrary lib = parse_string("resource m mult 2 1 0.9\n");
  EXPECT_EQ(lib.version(0).cls, ResourceClass::kMultiplier);
}

TEST(LibraryIo, RoundTripsThroughText) {
  ResourceLibrary lib = parse_string(kSample);
  ResourceLibrary lib2 = parse_string(to_text(lib));
  ASSERT_EQ(lib2.size(), lib.size());
  for (VersionId id = 0; id < lib.size(); ++id) {
    EXPECT_EQ(lib2.version(id).name, lib.version(id).name);
    EXPECT_EQ(lib2.version(id).cls, lib.version(id).cls);
    EXPECT_DOUBLE_EQ(lib2.version(id).area, lib.version(id).area);
    EXPECT_EQ(lib2.version(id).delay, lib.version(id).delay);
    EXPECT_DOUBLE_EQ(lib2.version(id).reliability,
                     lib.version(id).reliability);
  }
}

TEST(LibraryIo, PaperLibraryRoundTrips) {
  ResourceLibrary paper = paper_library();
  ResourceLibrary again = parse_string(to_text(paper));
  ASSERT_EQ(again.size(), paper.size());
  for (VersionId id = 0; id < paper.size(); ++id) {
    EXPECT_EQ(again.version(id).name, paper.version(id).name);
    EXPECT_DOUBLE_EQ(again.version(id).reliability,
                     paper.version(id).reliability);
  }
}

TEST(LibraryIo, ReportsLineNumbers) {
  try {
    parse_string("resource a adder 1 1 0.9\nfrobnicate\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(LibraryIo, RejectsMalformedDirectives) {
  EXPECT_THROW(parse_string("resource a adder 1 1\n"), ParseError);
  EXPECT_THROW(parse_string("resource a gpu 1 1 0.9\n"), ParseError);
  EXPECT_THROW(parse_string("resource a adder x 1 0.9\n"), ParseError);
  EXPECT_THROW(parse_string("resource a adder 1 1.5 0.9\n"), ParseError);
  EXPECT_THROW(parse_string("library a\nlibrary b\n"), ParseError);
}

TEST(LibraryIo, RejectsOutOfRangeValues) {
  EXPECT_THROW(parse_string("resource a adder 0 1 0.9\n"), ParseError);
  EXPECT_THROW(parse_string("resource a adder 1 0 0.9\n"), ParseError);
  EXPECT_THROW(parse_string("resource a adder 1 1 1.5\n"), ParseError);
  EXPECT_THROW(parse_string("resource a adder 1 1 0\n"), ParseError);
}

TEST(LibraryIo, RejectsDuplicateNames) {
  EXPECT_THROW(
      parse_string("resource a adder 1 1 0.9\nresource a adder 2 1 0.8\n"),
      ParseError);
}

const char* kTimedSample = R"(library timed
resource fast_add adder 2 1 0.969
timing fast_add a 0.8 0.9 0.05
timing fast_add b 1 1.1 0.1
resource mul_a mult 2.5 2 0.995
timing mul_a a 1.5 1.5 0.2
)";

TEST(LibraryIo, ParsesTimingDirectives) {
  ResourceLibrary lib = parse_string(kTimedSample);
  const PinTiming* a = lib.timing_of(0, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->rise, 0.8);
  EXPECT_DOUBLE_EQ(a->fall, 0.9);
  EXPECT_DOUBLE_EQ(a->slope, 0.05);
  const PinTiming* b = lib.timing_of(0, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->rise, 1.0);
  // mul_a has an "a" arc only; "b" falls back to the implicit unit arc.
  EXPECT_NE(lib.timing_of(1, "a"), nullptr);
  EXPECT_EQ(lib.timing_of(1, "b"), nullptr);
}

TEST(LibraryIo, TimedLibraryRoundTripsByteIdentically) {
  ResourceLibrary lib = parse_string(kTimedSample);
  std::string text = to_text(lib);
  // timing lines are emitted right after their resource line, so the
  // canonical text is a byte fixed point.
  EXPECT_EQ(to_text(parse_string(text)), text);
  EXPECT_NE(text.find("timing fast_add a 0.8 0.9 0.05"), std::string::npos);
  EXPECT_NE(text.find("timing mul_a a 1.5 1.5 0.2"), std::string::npos);
}

TEST(LibraryIo, LegacyLibrariesStayByteIdentical) {
  // Backward compatibility: a library with no timing directives renders
  // exactly as it did before the timing extension existed.
  ResourceLibrary lib = parse_string(kSample);
  std::string text = to_text(lib);
  EXPECT_EQ(text.find("timing"), std::string::npos);
  EXPECT_EQ(to_text(parse_string(text)), text);
  std::string paper = to_text(paper_library());
  EXPECT_EQ(paper.find("timing"), std::string::npos);
  EXPECT_EQ(to_text(parse_string(paper)), paper);
}

TEST(LibraryIo, RejectsMalformedTimingDirectives) {
  const char* prefix = "resource a adder 1 1 0.9\n";
  // wrong arity
  EXPECT_THROW(parse_string(std::string(prefix) + "timing a a 1 1\n"),
               ParseError);
  // unknown version
  EXPECT_THROW(parse_string(std::string(prefix) + "timing b a 1 1 0\n"),
               ParseError);
  // unknown pin
  EXPECT_THROW(parse_string(std::string(prefix) + "timing a c 1 1 0\n"),
               ParseError);
  // negative delay
  EXPECT_THROW(parse_string(std::string(prefix) + "timing a a -1 1 0\n"),
               ParseError);
  // duplicate pin
  EXPECT_THROW(parse_string(std::string(prefix) +
                            "timing a a 1 1 0\ntiming a a 2 2 0\n"),
               ParseError);
}

}  // namespace
}  // namespace rchls::library

#include <gtest/gtest.h>

#include "benchmarks/suite.hpp"
#include "hls/combined.hpp"
#include "util/error.hpp"

namespace rchls::hls {
namespace {

using library::ResourceLibrary;

TEST(Combined, NeverWorseThanFindDesign) {
  ResourceLibrary lib = library::paper_library();
  struct Case {
    const char* name;
    int ld;
    double ad;
  };
  for (const Case& c : {Case{"fir16", 12, 10.0}, Case{"fir16", 12, 14.0},
                        Case{"diffeq", 8, 12.0}, Case{"ewf", 24, 12.0},
                        Case{"ar_lattice", 12, 16.0}}) {
    auto g = benchmarks::by_name(c.name);
    Design ours = find_design(g, lib, c.ld, c.ad);
    Design comb = combined_design(g, lib, c.ld, c.ad);
    validate_design(comb, g, lib);
    EXPECT_GE(comb.reliability, ours.reliability - 1e-12)
        << c.name << " (" << c.ld << ", " << c.ad << ")";
    EXPECT_LE(comb.area, c.ad + 1e-9);
    EXPECT_LE(comb.latency, c.ld);
  }
}

TEST(Combined, UsesSameVersionsForCopies) {
  // The combined approach replicates instances with the versions the
  // reliability-centric pass picked; version assignment is untouched.
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  Design ours = find_design(g, lib, 12, 10.0);
  Design comb = combined_design(g, lib, 12, 18.0);
  // Looser area for the combined run changes nothing about which versions
  // execute the ops in *its own* find_design pass; check self-consistency:
  for (std::size_t i = 0; i < comb.binding.instances.size(); ++i) {
    for (dfg::NodeId op : comb.binding.instances[i].ops) {
      EXPECT_EQ(comb.version_of[op], comb.binding.instances[i].version);
    }
  }
  (void)ours;
}

TEST(Combined, GainsOverPlainWhenSlackExists) {
  auto g = benchmarks::diffeq();
  ResourceLibrary lib = library::paper_library();
  Design ours = find_design(g, lib, 8, 10.0);
  Design comb = combined_design(g, lib, 8, 10.0 + 8.0);
  EXPECT_GT(comb.reliability, ours.reliability);
}

TEST(Combined, BudgetSplitNeverLosesToSinglePass) {
  ResourceLibrary lib = library::paper_library();
  for (const char* name : {"fir16", "diffeq"}) {
    auto g = benchmarks::by_name(name);
    CombinedOptions single;
    single.budget_step = 0.0;  // disable the split search
    CombinedOptions split;     // defaults: step 1.0
    int ld = name == std::string("fir16") ? 12 : 7;
    Design a = combined_design(g, lib, ld, 13.0, single);
    Design b = combined_design(g, lib, ld, 13.0, split);
    EXPECT_GE(b.reliability, a.reliability - 1e-12) << name;
    EXPECT_LE(b.area, 13.0 + 1e-9);
  }
}

TEST(Combined, PropagatesNoSolution) {
  auto g = benchmarks::fir16();
  ResourceLibrary lib = library::paper_library();
  EXPECT_THROW(combined_design(g, lib, 5, 100.0), NoSolutionError);
}

}  // namespace
}  // namespace rchls::hls

#!/usr/bin/env python3
"""Validate bench harness JSON documents (perf_pool, perf_scale,
perf_remote, perf_sta).

Usage: check_bench_json.py BENCH_pool.json [BENCH_scale.json ...]

Dispatches on each document's "bench" tag. CI runs this twice per
harness: against the fresh `--smoke` output (the harness cannot silently
rot) and against the checked-in BENCH_*.json capture (the committed
numbers keep the shape scripts depend on). Checks structure, not
absolute performance: required keys present, counts positive, rates
finite, size axes strictly increasing -- machine-independent by
construction.
"""
import json
import math
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def require(path, obj, key, types):
    if key not in obj:
        fail(path, f"missing key '{key}' in {sorted(obj)}")
    if not isinstance(obj[key], types):
        fail(path, f"key '{key}' has type {type(obj[key]).__name__}")
    return obj[key]


def check_rate_row(path, row, what):
    tasks = require(path, row, "tasks", int)
    if tasks <= 0:
        fail(path, f"{what}: tasks must be positive, got {tasks}")
    require(path, row, "seconds", (int, float))
    rate = require(path, row, "tasks_per_s", (int, float))
    if not math.isfinite(rate) or rate <= 0:
        fail(path, f"{what}: tasks_per_s must be finite and positive")


def check_pool_doc(path, doc):
    if require(path, doc, "bench", str) != "perf_pool":
        fail(path, f"bench is '{doc['bench']}', expected 'perf_pool'")
    require(path, doc, "smoke", bool)
    hw = require(path, doc, "hardware_concurrency", int)
    if hw < 1:
        fail(path, "hardware_concurrency must be >= 1")
    require(path, doc, "block_size", int)

    fifo = require(path, doc, "fifo", dict)
    for mode in ("fill", "empty"):
        check_rate_row(path, require(path, fifo, mode, dict), f"fifo.{mode}")
    prodcon = require(path, fifo, "prodcon", list)
    if not prodcon:
        fail(path, "fifo.prodcon is empty")
    for row in prodcon:
        require(path, row, "threads_each_side", int)
        check_rate_row(path, row, "fifo.prodcon")

    pool = require(path, doc, "pool", list)
    if not pool:
        fail(path, "pool is empty")
    grains = set()
    for row in pool:
        workers = require(path, row, "workers", int)
        if workers < 1:
            fail(path, "pool row: workers must be >= 1")
        grains.add(require(path, row, "grain", str))
        check_rate_row(path, row, "pool row")
        stats = require(path, row, "pool_stats", dict)
        for key in ("tasks_executed", "steals", "overflow_pushes",
                    "overflow_pops", "block_handoffs", "idle_wakeups",
                    "full_retries"):
            require(path, stats, key, int)
        # Every externally submitted task crosses the overflow FIFO;
        # what went in must have come out.
        if stats["overflow_pops"] != stats["overflow_pushes"]:
            fail(path, "pool row: overflow_pops != overflow_pushes")
        if stats["tasks_executed"] < row["tasks"]:
            fail(path, "pool row: executed fewer tasks than submitted")
    if grains != {"empty", "spin", "cell"}:
        fail(path, f"pool grains are {sorted(grains)}, expected "
                   "['cell', 'empty', 'spin']")


def check_seconds(path, row, what):
    secs = require(path, row, "seconds", (int, float))
    if not math.isfinite(secs) or secs <= 0:
        fail(path, f"{what}: seconds must be finite and positive")


def check_increasing(path, values, what):
    if not values:
        fail(path, f"{what}: no rows")
    if any(b <= a for a, b in zip(values, values[1:])):
        fail(path, f"{what} must be strictly increasing, got {values}")


def check_scale_doc(path, doc):
    require(path, doc, "smoke", bool)
    seed = require(path, doc, "seed", str)
    if not seed.isdigit():
        fail(path, f"seed must be a decimal string, got '{seed}'")
    if require(path, doc, "hardware_concurrency", int) < 1:
        fail(path, "hardware_concurrency must be >= 1")

    fd = require(path, doc, "find_design", list)
    for row in fd:
        for key in ("nodes", "edges", "depth", "latency_bound"):
            if require(path, row, key, int) < 1:
                fail(path, f"find_design row: {key} must be >= 1")
        require(path, row, "area_bound", (int, float))
        require(path, row, "solved", bool)
        check_seconds(path, row, "find_design row")
    check_increasing(path, [r["nodes"] for r in fd], "find_design nodes")

    sweep = require(path, doc, "sweep", list)
    for row in sweep:
        if require(path, row, "points", int) < 1:
            fail(path, "sweep row: points must be >= 1")
        check_seconds(path, row, "sweep row")
        spp = require(path, row, "seconds_per_point", (int, float))
        if not math.isfinite(spp) or spp <= 0:
            fail(path, "sweep row: seconds_per_point must be positive")
    check_increasing(path, [r["nodes"] for r in sweep], "sweep nodes")

    inject = require(path, doc, "inject", list)
    for row in inject:
        require(path, row, "component", str)
        for key in ("width", "logic_gates", "trials"):
            if require(path, row, key, int) < 1:
                fail(path, f"inject row: {key} must be >= 1")
        check_seconds(path, row, "inject row")
        rate = require(path, row, "trials_per_s", (int, float))
        if not math.isfinite(rate) or rate <= 0:
            fail(path, "inject row: trials_per_s must be positive")
    check_increasing(path, [r["width"] for r in inject], "inject widths")


def check_sta_doc(path, doc):
    require(path, doc, "smoke", bool)
    seed = require(path, doc, "seed", str)
    if not seed.isdigit():
        fail(path, f"seed must be a decimal string, got '{seed}'")
    if require(path, doc, "hardware_concurrency", int) < 1:
        fail(path, "hardware_concurrency must be >= 1")

    comps = require(path, doc, "components", list)
    for row in comps:
        require(path, row, "component", str)
        for key in ("width", "gate_count", "levels", "trials"):
            if require(path, row, key, int) < 1:
                fail(path, f"components row: {key} must be >= 1")
        check_seconds(path, row, "components row")
        rate = require(path, row, "gates_per_s", (int, float))
        if not math.isfinite(rate) or rate <= 0:
            fail(path, "components row: gates_per_s must be positive")
    check_increasing(path, [r["width"] for r in comps],
                     "components widths")

    graphs = require(path, doc, "graphs", list)
    for row in graphs:
        for key in ("nodes", "gate_count", "levels", "endpoints"):
            if require(path, row, key, int) < 1:
                fail(path, f"graphs row: {key} must be >= 1")
        check_seconds(path, row, "graphs row")
        rate = require(path, row, "gates_per_s", (int, float))
        if not math.isfinite(rate) or rate <= 0:
            fail(path, "graphs row: gates_per_s must be positive")
    check_increasing(path, [r["nodes"] for r in graphs], "graphs nodes")

    warm = require(path, doc, "warm", dict)
    for key in ("seconds_cold", "seconds_warm"):
        v = require(path, warm, key, (int, float))
        if not math.isfinite(v) or v <= 0:
            fail(path, f"warm: {key} must be finite and positive")
    if require(path, warm, "warm_executed_zero", bool) is not True:
        fail(path, "warm.warm_executed_zero must be true")


def check_remote_pass(path, row, what):
    if require(path, row, "requests", int) < 1:
        fail(path, f"{what}: requests must be >= 1")
    check_seconds(path, row, what)
    rate = require(path, row, "requests_per_s", (int, float))
    if not math.isfinite(rate) or rate <= 0:
        fail(path, f"{what}: requests_per_s must be finite and positive")
    for key in ("p50_ms", "p95_ms"):
        v = require(path, row, key, (int, float))
        if not math.isfinite(v) or v < 0:
            fail(path, f"{what}: {key} must be finite and non-negative")
    sweep = require(path, row, "sweep", dict)
    if require(path, sweep, "cells", int) < 1:
        fail(path, f"{what}: sweep.cells must be >= 1")
    slices = require(path, sweep, "slices", int)
    if slices < 1 or slices > sweep["cells"]:
        fail(path, f"{what}: sweep.slices must be in 1..cells")
    check_seconds(path, sweep, f"{what}.sweep")
    require(path, sweep, "slice_latency_avg_ms", (int, float))
    if require(path, row, "executed", int) < 0:
        fail(path, f"{what}: executed must be >= 0")


def check_remote_doc(path, doc):
    require(path, doc, "smoke", bool)
    if require(path, doc, "requests_per_client", int) < 1:
        fail(path, "requests_per_client must be >= 1")
    if require(path, doc, "clients_per_endpoint", int) < 1:
        fail(path, "clients_per_endpoint must be >= 1")

    levels = require(path, doc, "levels", list)
    for row in levels:
        endpoints = require(path, row, "endpoints", int)
        clients = require(path, row, "clients", int)
        if clients != doc["clients_per_endpoint"] * endpoints:
            fail(path, "level: clients != clients_per_endpoint * endpoints")
        cold = require(path, row, "cold", dict)
        warm = require(path, row, "warm", dict)
        check_remote_pass(path, cold, f"endpoints={endpoints} cold")
        check_remote_pass(path, warm, f"endpoints={endpoints} warm")
        # The fleet shares one cache directory per level: the cold pass
        # must have executed, the warm replay must not have.
        if cold["executed"] < 1:
            fail(path, f"endpoints={endpoints}: cold pass executed nothing")
        if warm["executed"] != 0:
            fail(path, f"endpoints={endpoints}: warm pass executed "
                       f"{warm['executed']} requests, expected 0")
    check_increasing(path, [r["endpoints"] for r in levels],
                     "remote endpoints")
    if require(path, doc, "warm_executed_total_is_zero", bool) is not True:
        fail(path, "warm_executed_total_is_zero must be true")


CHECKERS = {"perf_pool": check_pool_doc, "perf_scale": check_scale_doc,
            "perf_remote": check_remote_doc, "perf_sta": check_sta_doc}


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(path, f"not readable valid JSON: {e}")
        bench = require(path, doc, "bench", str)
        if bench not in CHECKERS:
            fail(path, f"unknown bench '{bench}', "
                       f"expected one of {sorted(CHECKERS)}")
        CHECKERS[bench](path, doc)
        print(f"{path}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

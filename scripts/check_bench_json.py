#!/usr/bin/env python3
"""Validate a perf_pool JSON document (bench/perf_pool.cpp).

Usage: check_bench_json.py BENCH_pool.json [more.json ...]

CI runs this twice: against the fresh `perf_pool --smoke` output (the
harness cannot silently rot) and against the checked-in BENCH_pool.json
capture (the committed numbers keep the shape scripts depend on). Checks
structure, not absolute performance: required keys present, counts
positive, rates finite -- machine-independent by construction.
"""
import json
import math
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def require(path, obj, key, types):
    if key not in obj:
        fail(path, f"missing key '{key}' in {sorted(obj)}")
    if not isinstance(obj[key], types):
        fail(path, f"key '{key}' has type {type(obj[key]).__name__}")
    return obj[key]


def check_rate_row(path, row, what):
    tasks = require(path, row, "tasks", int)
    if tasks <= 0:
        fail(path, f"{what}: tasks must be positive, got {tasks}")
    require(path, row, "seconds", (int, float))
    rate = require(path, row, "tasks_per_s", (int, float))
    if not math.isfinite(rate) or rate <= 0:
        fail(path, f"{what}: tasks_per_s must be finite and positive")


def check_pool_doc(path, doc):
    if require(path, doc, "bench", str) != "perf_pool":
        fail(path, f"bench is '{doc['bench']}', expected 'perf_pool'")
    require(path, doc, "smoke", bool)
    hw = require(path, doc, "hardware_concurrency", int)
    if hw < 1:
        fail(path, "hardware_concurrency must be >= 1")
    require(path, doc, "block_size", int)

    fifo = require(path, doc, "fifo", dict)
    for mode in ("fill", "empty"):
        check_rate_row(path, require(path, fifo, mode, dict), f"fifo.{mode}")
    prodcon = require(path, fifo, "prodcon", list)
    if not prodcon:
        fail(path, "fifo.prodcon is empty")
    for row in prodcon:
        require(path, row, "threads_each_side", int)
        check_rate_row(path, row, "fifo.prodcon")

    pool = require(path, doc, "pool", list)
    if not pool:
        fail(path, "pool is empty")
    grains = set()
    for row in pool:
        workers = require(path, row, "workers", int)
        if workers < 1:
            fail(path, "pool row: workers must be >= 1")
        grains.add(require(path, row, "grain", str))
        check_rate_row(path, row, "pool row")
        stats = require(path, row, "pool_stats", dict)
        for key in ("tasks_executed", "steals", "overflow_pushes",
                    "overflow_pops", "block_handoffs", "idle_wakeups",
                    "full_retries"):
            require(path, stats, key, int)
        # Every externally submitted task crosses the overflow FIFO;
        # what went in must have come out.
        if stats["overflow_pops"] != stats["overflow_pushes"]:
            fail(path, "pool row: overflow_pops != overflow_pushes")
        if stats["tasks_executed"] < row["tasks"]:
            fail(path, "pool row: executed fewer tasks than submitted")
    if grains != {"empty", "spin", "cell"}:
        fail(path, f"pool grains are {sorted(grains)}, expected "
                   "['cell', 'empty', 'spin']")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(path, f"not readable valid JSON: {e}")
        check_pool_doc(path, doc)
        print(f"{path}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

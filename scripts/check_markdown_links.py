#!/usr/bin/env python3
"""Fails when any intra-repo markdown link points at a missing file.

Scans every *.md under the repository root (skipping build directories)
for [text](target) links. External targets (http/https/mailto) and pure
anchors (#...) are ignored; everything else is resolved relative to the
file containing the link (or the repo root for absolute /paths) and must
exist. Used by the CI docs job.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {"build", "build-tsan", ".git"}
EXTERNAL = ("http://", "https://", "mailto:")


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def check(root: Path) -> int:
    broken = []
    for md in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in md.relative_to(root).parts[:-1]):
            continue
        text = md.read_text(encoding="utf-8", errors="replace")
        for lineno, line in enumerate(text.splitlines(), 1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL) or target.startswith("#"):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                if path_part.startswith("/"):
                    resolved = root / path_part.lstrip("/")
                else:
                    resolved = md.parent / path_part
                if not resolved.exists():
                    broken.append(f"{md.relative_to(root)}:{lineno}: "
                                  f"broken link -> {target}")
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken intra-repo markdown link(s)")
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(check(repo_root()))

// perf_scale: engine cost growth on workloads 10-100x the paper's.
//
// The paper's benchmark graphs top out at a few dozen operations
// (fir16 = 34 nodes) and its campaigns at 16-bit adders. This harness
// drives the same three entry points the corpus exercises --
// find_design, sweep, inject -- through an api::Session on generated
// graphs of 128..1024 nodes (dfg::generate_random, the pinned seeded
// generator, so every run sizes the exact same graphs) and on injection
// campaigns up to the adders' 64-bit ceiling at 256k trials, and
// reports wall seconds per step. The point
// is the growth curve, not the absolute numbers: a superlinear blowup
// in the scheduler, binder or campaign loop shows up here long before
// it shows up on paper-sized inputs.
//
// Standalone harness (like perf_pool / perf_serve): prints one JSON
// document to stdout; the checked-in BENCH_scale.json is a captured
// run, validated by scripts/check_bench_json.py (sizes strictly
// increasing, timings positive, generator seed recorded). Usage:
//
//   ./build/perf_scale [--smoke]
//
// --smoke shrinks graph sizes, widths and trial counts so CI covers
// every lane in seconds. The session runs with its cache disabled:
// every timed step is a real engine execution, never a memo hit.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/request.hpp"
#include "api/result.hpp"
#include "api/session.hpp"
#include "dfg/generate.hpp"
#include "library/resource.hpp"
#include "util/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// One generator seed for the whole document, recorded in the JSON: the
// graphs a future run times are byte-identical to this run's.
constexpr std::uint64_t kSeed = 42;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Longest dependence path in nodes -- the latency floor with the paper
// library's delay-1 versions; bounds derive from it (same recipe as
// workload/corpus.cpp, restated here to keep the harness standalone).
std::size_t depth_of(const rchls::dfg::Graph& g) {
  std::vector<std::size_t> depth(g.node_count(), 1);
  std::size_t best = 1;
  for (rchls::dfg::NodeId id : g.topological_order()) {
    for (rchls::dfg::NodeId p : g.predecessors(id)) {
      depth[id] = std::max(depth[id], depth[p] + 1);
    }
    best = std::max(best, depth[id]);
  }
  return best;
}

rchls::dfg::Graph scale_graph(std::size_t nodes) {
  rchls::dfg::GeneratorConfig gc;
  gc.num_nodes = nodes;
  gc.seed = kSeed;
  gc.layer_width = 8.0;  // wide layers: resource contention dominates
  gc.mul_fraction = 0.25;
  return rchls::dfg::generate_random(gc);
}

// Area that fits ceil(ops/L) delay-1 units per class with margin
// (adder_2 area 2, mult_2 area 4) -- solvable but not loose.
double comfortable_area(const rchls::dfg::Graph& g, std::size_t lat) {
  std::size_t muls = g.count_ops(rchls::dfg::OpType::kMul);
  std::size_t adds = g.node_count() - muls;
  auto units = [lat](std::size_t ops) {
    return (ops + lat - 1) / lat;
  };
  return 2.0 * static_cast<double>(units(adds)) +
         4.0 * static_cast<double>(units(muls)) + 2.0;
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: perf_scale [--smoke]\n";
      return 1;
    }
  }

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{32, 64}
            : std::vector<std::size_t>{128, 256, 512, 1024};
  // Widths stop at the adders' 64-bit ceiling; the trial count carries
  // the scaling load instead (the campaign is batched, so a 256k-trial
  // run still finishes in tens of milliseconds).
  const std::vector<int> widths =
      smoke ? std::vector<int>{4, 8} : std::vector<int>{8, 16, 32, 64};
  const std::size_t trials = smoke ? 1024 : 64 * 4096;

  rchls::api::SessionOptions opts;
  opts.enable_cache = false;  // every timed step really executes
  rchls::api::Session session(opts);
  rchls::library::ResourceLibrary lib = rchls::library::paper_library();

  auto doc = rchls::json::Value::object();
  doc.set("bench", "perf_scale")
      .set("smoke", smoke)
      .set("seed", std::to_string(kSeed))  // uint64: decimal string
      .set("hardware_concurrency",
           static_cast<std::uint64_t>(
               std::max(1u, std::thread::hardware_concurrency())));

  // find_design lane: one solve per graph size, comfortable bounds.
  auto fd_rows = rchls::json::Value::array();
  for (std::size_t n : sizes) {
    rchls::dfg::Graph g = scale_graph(n);
    std::size_t depth = depth_of(g);
    std::size_t lat = depth + depth / 4 + 2;

    rchls::api::FindDesignRequest req;
    req.graph = g;
    req.library = lib;
    req.latency_bound = static_cast<int>(lat);
    req.area_bound = comfortable_area(g, lat);
    req.engine = "centric";

    auto t0 = Clock::now();
    rchls::api::FindDesignResult res = session.run(req);
    double secs = seconds_since(t0);
    std::cerr << "perf_scale: find_design nodes=" << n << " seconds="
              << secs << " solved=" << res.solved << "\n";

    auto row = rchls::json::Value::object();
    row.set("nodes", static_cast<std::uint64_t>(g.node_count()))
        .set("edges", static_cast<std::uint64_t>(g.edge_count()))
        .set("depth", static_cast<std::uint64_t>(depth))
        .set("latency_bound", static_cast<std::uint64_t>(lat))
        .set("area_bound", req.area_bound)
        .set("solved", res.solved)
        .set("seconds", secs);
    fd_rows.push(std::move(row));
  }
  doc.set("find_design", std::move(fd_rows));

  // sweep lane: three latency points per graph size (tight, comfortable,
  // loose) -- the exploration loop's cost as the graph grows.
  auto sweep_rows = rchls::json::Value::array();
  for (std::size_t n : sizes) {
    rchls::dfg::Graph g = scale_graph(n);
    std::size_t depth = depth_of(g);
    std::size_t lat = depth + depth / 4 + 2;

    rchls::api::SweepRequest req;
    req.graph = g;
    req.library = lib;
    req.axis = rchls::api::SweepAxis::kLatency;
    req.latency_bounds = {static_cast<int>(depth + 1),
                          static_cast<int>(lat), static_cast<int>(2 * lat)};
    req.area_bounds = {comfortable_area(g, lat)};

    auto t0 = Clock::now();
    rchls::api::SweepResult res = session.run(req);
    double secs = seconds_since(t0);
    std::cerr << "perf_scale: sweep nodes=" << n << " points="
              << res.points.size() << " seconds=" << secs << "\n";

    auto row = rchls::json::Value::object();
    row.set("nodes", static_cast<std::uint64_t>(g.node_count()))
        .set("points", static_cast<std::uint64_t>(res.points.size()))
        .set("seconds", secs)
        .set("seconds_per_point",
             secs / static_cast<double>(res.points.size()));
    sweep_rows.push(std::move(row));
  }
  doc.set("sweep", std::move(sweep_rows));

  // inject lane: whole-circuit campaigns on the ripple-carry adder at
  // growing widths, fixed trial count -- cost per trial as the strike
  // population grows.
  auto inject_rows = rchls::json::Value::array();
  for (int w : widths) {
    rchls::api::InjectRequest req;
    req.component = "ripple_carry_adder";
    req.width = w;
    req.trials = trials;
    req.seed = kSeed;

    auto t0 = Clock::now();
    rchls::api::InjectResult res = session.run(req);
    double secs = seconds_since(t0);
    std::cerr << "perf_scale: inject width=" << w << " seconds=" << secs
              << "\n";

    auto row = rchls::json::Value::object();
    row.set("component", req.component)
        .set("width", static_cast<std::uint64_t>(w))
        .set("logic_gates", static_cast<std::uint64_t>(res.logic_gates))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("seconds", secs)
        .set("trials_per_s", static_cast<double>(trials) / secs);
    inject_rows.push(std::move(row));
  }
  doc.set("inject", std::move(inject_rows));

  std::cout << doc.dump(2) << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "perf_scale: " << e.what() << "\n";
  return 1;
}

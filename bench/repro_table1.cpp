// Reproduces paper Table 1: area / delay / reliability of the five library
// components, via the analytic Qcritical chain (exact) and via the
// simulated MAX/HSPICE substitute (gate-level fault injection).
#include <iostream>

#include "ser/characterize.hpp"
#include "ser/model.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace rchls;

  std::cout << "==============================================\n"
            << "Table 1: reliability-characterized library\n"
            << "==============================================\n\n";

  ser::SoftErrorModel model = ser::SoftErrorModel::paper_calibrated();
  std::cout << "Calibrated charge-collection efficiency Qs = "
            << model.qs() << " C\n"
            << "(anchored at ripple-carry: Qc = 59.460e-21 C, R = 0.999;\n"
            << " Qs solved from the Brent-Kung point, and the model then\n"
            << " PREDICTS the Kogge-Stone entry)\n\n";

  struct PaperEntry {
    const char* label;
    double area;
    int delay;
    double reliability;
  };
  const PaperEntry paper[5] = {
      {"Adder 1 (ripple-carry)", 1, 2, 0.999},
      {"Adder 2 (Brent-Kung)", 2, 1, 0.969},
      {"Adder 3 (Kogge-Stone)", 4, 1, 0.987},
      {"Multiplier 1 (carry-save)", 2, 2, 0.999},
      {"Multiplier 2 (leapfrog)", 4, 1, 0.969},
  };

  auto analytic = ser::paper_characterization();
  Table t({"Resource", "Area", "Delay(cc)", "R (paper)", "R (model)",
           "Qcritical [C]"});
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    t.add_row({paper[i].label, format_fixed(paper[i].area, 0),
               std::to_string(paper[i].delay),
               format_fixed(paper[i].reliability, 3),
               format_fixed(analytic[i].reliability, 5),
               format_fixed(analytic[i].qcritical * 1e21, 3) + "e-21"});
  }
  std::cout << t.render() << "\n";

  std::cout << "Simulated characterization (16-bit netlists, Monte-Carlo "
               "SET injection)\n"
            << "-- the executable substitute for the paper's MAX/HSPICE "
               "flow:\n\n";
  ser::CharacterizeConfig cfg;
  cfg.width = 16;
  cfg.injection.trials = 64 * 512;
  auto sim = ser::characterize_components(cfg);
  Table s({"Resource", "Gates", "Area(norm)", "Delay(cc)", "LogicalSens",
           "R (sim)"});
  for (const auto& c : sim) {
    s.add_row({c.name, std::to_string(c.gate_count),
               format_fixed(c.area_units, 2), std::to_string(c.delay_cycles),
               format_fixed(c.logical_sensitivity, 3),
               format_fixed(c.reliability, 5)});
  }
  std::cout << s.render()
            << "\nNote: simulated area/delay ratios reflect the real "
               "generated netlists;\nthe synthesis experiments use the "
               "paper's Table 1 values (paper_library()).\n";
  return 0;
}

// Shared definitions for the reproduction harnesses: the paper's published
// numbers, the bound mapping between the paper's accounting and ours, and
// the benchmark grids behind Table 2 / Figure 9.
//
// Bound mapping (derived in EXPERIMENTS.md): the paper counts latency in
// occupied control steps and its unit accounting needs two fewer area
// units than our completion-semantics flow on FIR/DiffEq; reproducing the
// paper's (Ld, Ad) point therefore uses (Ld, Ad + 2) here. The EW filter
// grids are anchored at our EWF instance's own minimum latency (the
// paper's 25-op EW instance is unpublished; ours has 34 ops).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "benchmarks/suite.hpp"
#include "hls/explore.hpp"
#include "library/resource.hpp"
#include "util/strings.hpp"

namespace rchls::repro {

/// One row of a paper Table 2 panel.
struct PaperRow {
  int ld = 0;      ///< paper's latency bound
  double ad = 0;   ///< paper's area bound
  double ref3 = 0; ///< paper column 3: Orailoglu-Karri [3]
  double ours = 0; ///< paper column 4: reliability-centric
  double comb = 0; ///< paper column 6: combined
};

struct Panel {
  std::string benchmark;       ///< registry name
  std::string title;           ///< paper panel title
  int ld_offset = 0;           ///< our Ld = paper Ld + ld_offset
  double ad_offset = 0.0;      ///< our Ad = paper Ad + ad_offset
  std::vector<PaperRow> rows;
};

/// Table 2(a): FIR filter.
inline Panel fir_panel() {
  Panel p;
  p.benchmark = "fir16";
  p.title = "Table 2(a) FIR filter";
  p.ld_offset = 1;   // start-step -> completion semantics
  p.ad_offset = 2.0; // unit-accounting offset
  p.rows = {
      {10, 9, 0.48467, 0.59998, 0.59998},
      {10, 11, 0.61856, 0.69516, 0.76572},
      {10, 13, 0.76572, 0.69516, 0.77187},
      {11, 9, 0.48467, 0.78943, 0.79497},
      {11, 11, 0.61856, 0.89798, 0.98411},
      {11, 13, 0.76572, 0.89798, 0.99102},
      {12, 9, 0.61856, 0.81387, 0.81959},
      {12, 11, 0.76572, 0.90890, 0.98411},
      {12, 13, 0.78943, 0.90890, 0.99301},
  };
  return p;
}

/// Table 2(b): elliptic wave filter. The paper's EW instance has ~25 ops
/// (its reliability values decode to 25 factors); ours is the standard
/// 34-op graph with the same minimum type-2 latency of 13, so bounds map
/// directly and only absolute reliabilities sit lower (9 extra factors).
inline Panel ewf_panel() {
  Panel p;
  p.benchmark = "ewf";
  p.title = "Table 2(b) EW filter";
  p.ld_offset = 0;
  p.ad_offset = 2.0;
  p.rows = {
      {13, 7, 0.45509, 0.70260, 0.81225},
      {13, 9, 0.67645, 0.78463, 0.97530},
      {13, 11, 0.89005, 0.78463, 0.98805},
      {14, 7, 0.45509, 0.71114, 0.83739},
      {14, 9, 0.69739, 0.79417, 0.97530},
      {14, 11, 0.94641, 0.79417, 0.98805},
      {15, 5, 0.45509, 0.69739, 0.69739},
      {15, 7, 0.71899, 0.80383, 0.81225},
      {15, 9, 0.97530, 0.80383, 0.97530},
  };
  return p;
}

/// Table 2(c): differential equation solver.
inline Panel diffeq_panel() {
  Panel p;
  p.benchmark = "diffeq";
  p.title = "Table 2(c) DiffEq";
  p.ld_offset = 0;
  p.ad_offset = 2.0;
  p.rows = {
      {5, 11, 0.70723, 0.77497, 0.77497},
      {5, 13, 0.82370, 0.80403, 0.82370},
      {5, 15, 0.82783, 0.80645, 0.84920},
      {6, 11, 0.70723, 0.82370, 0.82700},
      {6, 13, 0.82370, 0.82370, 0.82783},
      {6, 15, 0.82783, 0.90260, 0.90712},
      {7, 7, 0.70723, 0.90260, 0.90260},
      {7, 9, 0.82370, 0.93054, 0.93054},
      {7, 11, 0.82783, 0.95935, 0.95935},
  };
  return p;
}

inline std::vector<Panel> all_panels() {
  return {fir_panel(), ewf_panel(), diffeq_panel()};
}

/// The paper's [3] baseline: fixed type-2 versions plus greedy duplication
/// (decoded from the published reliability values; see EXPERIMENTS.md).
/// "Ours" and "combined" run with the polish pass enabled, which
/// compensates for scheduler differences against the authors' tool.
inline hls::GridOptions paper_grid_options(
    const library::ResourceLibrary& lib) {
  hls::GridOptions opts;
  opts.baseline.fixed_versions = {
      {lib.find("adder_2"), lib.find("mult_2")}};
  opts.find_design.enable_polish = true;
  opts.find_design.explore_tighter_latency = 2;
  opts.combined.find_design.enable_polish = true;
  opts.combined.find_design.explore_tighter_latency = 2;
  return opts;
}

inline std::string fmt(const std::optional<double>& v) {
  return v ? format_fixed(*v, 5) : "no sol.";
}

inline std::string fmt(double v) { return format_fixed(v, 5); }

/// Runs one panel and returns the computed rows aligned with panel.rows.
inline std::vector<hls::ComparisonRow> run_panel(
    const Panel& panel, const library::ResourceLibrary& lib) {
  auto g = benchmarks::by_name(panel.benchmark);
  auto opts = paper_grid_options(lib);
  std::vector<hls::ComparisonRow> rows;
  for (const PaperRow& r : panel.rows) {
    auto grid = hls::comparison_grid(g, lib, {r.ld + panel.ld_offset},
                                     {r.ad + panel.ad_offset}, opts);
    rows.push_back(grid.front());
  }
  return rows;
}

}  // namespace rchls::repro

// perf_serve: loopback throughput of the `rchls serve` daemon -- the
// PR-6 acceptance benchmark.
//
// Runs an in-process serve::Server on a unix-domain socket and drives
// it with 1..8 concurrent serve::Clients over REAL sockets (framing,
// queueing and reply sequencing are all on the measured path; only the
// process boundary is elided). At every concurrency level it measures
// two passes over the same per-client workload:
//
//   cold: requests the daemon has never seen -> every one executes
//         (executions serialize inside SharedSession, so cold
//         throughput is engine-bound and roughly flat across clients);
//   warm: the identical requests again -> every one is a memory-cache
//         hit. The acceptance criterion is executed=0 on this pass --
//         the JSON records the daemon's execution delta so the claim
//         is checkable, not vibes -- and hit throughput scaling with
//         clients (hits take the shared lock only).
//
// Standalone harness (like perf_cache): prints one JSON document to
// stdout; the checked-in BENCH_serve.json is a captured run. Usage:
//
//   ./build/perf_serve [--smoke]
//
// --smoke shrinks the per-client request count so CI can run the full
// harness -- every level, both passes, the executed=0 assertion -- in
// seconds. Absolute numbers are machine-dependent; the cold/warm ratio
// and the warm scaling curve are the interesting part.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/request.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double percentile_ms(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

// Cheap but real engine work: a 4-bit ripple-carry fault-injection
// campaign takes ~a millisecond, so cold passes finish quickly while
// warm passes still measure the full socket round-trip. Distinct seeds
// make distinct cache keys, so every (level, client, index) triple is
// cold exactly once across the whole run.
rchls::api::Request workload_request(int level, int client, int index) {
  rchls::api::InjectRequest req;
  req.component = "ripple_carry_adder";
  req.width = 4;
  req.trials = 256;
  req.seed = static_cast<std::uint64_t>(level) * 1000000 +
             static_cast<std::uint64_t>(client) * 1000 +
             static_cast<std::uint64_t>(index) + 1;
  return rchls::api::Request(req);
}

struct PassResult {
  double seconds = 0.0;
  double requests_per_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t executed = 0;  // daemon-side execution delta
};

// One timed pass: `clients` threads, each its own connection, each
// sending its slice of the level's workload synchronously. Per-request
// latencies aggregate into the percentiles; wall time covers
// connect + all round-trips (the daemon is resident, so connects are
// the cheap part -- and real clients pay them too).
PassResult run_pass(rchls::serve::Server& server, int level, int clients,
                    int per_client, bool warm) {
  std::vector<std::vector<double>> latencies(clients);
  std::uint64_t executed_before = server.executions();
  auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      rchls::serve::Client client =
          rchls::serve::Client::connect_unix(server.socket_path());
      latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        auto r0 = Clock::now();
        client.call(workload_request(level, c, i));
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - r0)
                .count());
      }
    });
  }
  for (auto& th : pool) th.join();

  PassResult pass;
  pass.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  pass.executed = server.executions() - executed_before;
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  pass.requests = all.size();
  pass.requests_per_s =
      pass.seconds > 0 ? static_cast<double>(all.size()) / pass.seconds : 0;
  pass.p50_ms = percentile_ms(all, 0.50);
  pass.p95_ms = percentile_ms(all, 0.95);
  return pass;
}

rchls::json::Value to_json(const PassResult& pass) {
  auto doc = rchls::json::Value::object();
  doc.set("requests", pass.requests)
      .set("seconds", pass.seconds)
      .set("requests_per_s", pass.requests_per_s)
      .set("p50_ms", pass.p50_ms)
      .set("p95_ms", pass.p95_ms)
      .set("executed", pass.executed);
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: perf_serve [--smoke]\n";
      return 1;
    }
  }
  const int per_client = smoke ? 4 : 32;

  rchls::serve::ServerOptions so;
  so.socket_path =
      (std::filesystem::temp_directory_path() /
       ("rchls-perf-serve-" + std::to_string(rchls::current_pid()) + ".sock"))
          .string();
  so.workers = 8;  // enough to keep 8 clients' cache hits concurrent
  rchls::serve::Server server(std::move(so));

  auto doc = rchls::json::Value::object();
  doc.set("bench", "perf_serve")
      .set("smoke", smoke)
      .set("workers", 8)
      .set("requests_per_client", per_client);

  bool warm_executed_clean = true;
  auto levels = rchls::json::Value::array();
  for (int clients : {1, 2, 4, 8}) {
    PassResult cold = run_pass(server, clients, clients, per_client, false);
    PassResult warm = run_pass(server, clients, clients, per_client, true);
    warm_executed_clean = warm_executed_clean && warm.executed == 0;
    auto level = rchls::json::Value::object();
    level.set("clients", clients)
        .set("cold", to_json(cold))
        .set("warm", to_json(warm));
    levels.push(std::move(level));
    std::cerr << "perf_serve: clients=" << clients
              << " cold_rps=" << cold.requests_per_s
              << " warm_rps=" << warm.requests_per_s
              << " warm_executed=" << warm.executed << "\n";
  }
  doc.set("levels", std::move(levels));
  // The acceptance bit: every warm pass replayed its level's exact cold
  // workload, so a single execution here is a cache defect.
  doc.set("warm_executed_total_is_zero", warm_executed_clean);

  server.stop();
  std::cout << doc.dump(2) << "\n";
  return warm_executed_clean ? 0 : 1;
}

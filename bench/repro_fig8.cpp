// Reproduces paper Figure 8: FIR reliability vs latency bound (a) and vs
// area bound (b) under the reliability-centric flow.
//
// Paper series: (a) Ad = 8, Ld in {10, 11, 12, 14, 16, 18};
//               (b) Ld = 10, Ad in {8, 10, 12, 13, 14, 15, 16}.
// Our bounds apply the (Ld + 1, Ad + 2) mapping of EXPERIMENTS.md.
// Reported reliability at each bound is the best design found within the
// bound (a design feasible at a tighter bound remains feasible here), so
// each series is a monotone envelope, as in the paper's plots.
#include <algorithm>
#include <iostream>

#include "benchmarks/suite.hpp"
#include "hls/explore.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace rchls;
  auto g = benchmarks::fir16();
  auto lib = library::paper_library();
  hls::FindDesignOptions opts;
  opts.enable_polish = true;
  opts.explore_tighter_latency = 2;

  std::cout << "==============================================\n"
            << "Figure 8(a): reliability vs latency (FIR, paper Ad=8)\n"
            << "==============================================\n";
  {
    const int paper_ld[] = {10, 11, 12, 14, 16, 18};
    const double paper_r[] = {0.59998, 0.78943, 0.81387,
                              0.85482, 0.89798, 0.94641};
    std::vector<int> bounds;
    for (int ld : paper_ld) bounds.push_back(ld + 1);
    auto points = hls::latency_sweep(g, lib, bounds, 8.0 + 2.0, opts);
    Table t({"paper Ld", "our Ld", "R (paper, approx.)", "R (ours)"});
    double best = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].reliability) {
        best = std::max(best, *points[i].reliability);
      }
      t.add_row({std::to_string(paper_ld[i]),
                 std::to_string(points[i].latency_bound),
                 format_fixed(paper_r[i], 5),
                 best > 0 ? format_fixed(best, 5) : "no sol."});
    }
    std::cout << t.render()
              << "(Figure 8(a) is published as a plot; the reference "
                 "column reads its ladder.)\n\n";
  }

  std::cout << "==============================================\n"
            << "Figure 8(b): reliability vs area (FIR, paper Ld=10)\n"
            << "==============================================\n";
  {
    const double paper_ad[] = {8, 10, 12, 13, 14, 15, 16};
    const double paper_r[] = {0.59998, 0.64498, 0.69516, 0.69516,
                              0.74727, 0.74727, 0.80325};
    std::vector<double> bounds;
    for (double ad : paper_ad) bounds.push_back(ad + 2.0);
    auto points = hls::area_sweep(g, lib, 10 + 1, bounds, opts);
    Table t({"paper Ad", "our Ad", "R (paper, approx.)", "R (ours)"});
    double best = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].reliability) {
        best = std::max(best, *points[i].reliability);
      }
      t.add_row({format_fixed(paper_ad[i], 0),
                 format_fixed(points[i].area_bound, 0),
                 format_fixed(paper_r[i], 5),
                 best > 0 ? format_fixed(best, 5) : "no sol."});
    }
    std::cout << t.render()
              << "\n(The paper publishes Fig. 8(b) only as a plot; the "
                 "reference column\ninterpolates its visible ladder.)\n";
  }
  return 0;
}

// Fault-injection and logic-simulation throughput: strikes per second on
// the five characterized components, and simulator lane throughput.
#include <benchmark/benchmark.h>

#include "circuits/adders.hpp"
#include "circuits/multipliers.hpp"
#include "netlist/sim.hpp"
#include "ser/fault_injection.hpp"
#include "util/rng.hpp"

namespace {

using namespace rchls;

void BM_Inject(benchmark::State& state, netlist::Netlist (*gen)(int)) {
  netlist::Netlist nl = gen(static_cast<int>(state.range(0)));
  ser::InjectionConfig cfg;
  cfg.trials = 64 * 32;
  for (auto _ : state) {
    auto r = ser::inject_campaign(nl, cfg);
    benchmark::DoNotOptimize(r.susceptibility);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.trials));
}
BENCHMARK_CAPTURE(BM_Inject, ripple_adder, &circuits::ripple_carry_adder)
    ->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Inject, kogge_stone_adder,
                  &circuits::kogge_stone_adder)
    ->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Inject, carry_save_mult,
                  &circuits::carry_save_multiplier)
    ->Arg(8)->Arg(16);
BENCHMARK_CAPTURE(BM_Inject, leapfrog_mult, &circuits::leapfrog_multiplier)
    ->Arg(8)->Arg(16);

void BM_Simulate64Lanes(benchmark::State& state) {
  netlist::Netlist nl =
      circuits::leapfrog_multiplier(static_cast<int>(state.range(0)));
  netlist::Simulator sim(nl);
  Rng rng(3);
  std::vector<std::uint64_t> inputs(nl.input_bits().size());
  for (auto& w : inputs) w = rng.next_u64();
  for (auto _ : state) {
    auto words = sim.run(inputs);
    benchmark::DoNotOptimize(words.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Simulate64Lanes)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

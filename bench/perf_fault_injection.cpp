// Fault-injection and logic-simulation throughput.
//
// Three families:
//  * BM_Inject             -- whole-circuit campaigns on the cone-limited
//                             FaultEngine (the production path).
//  * BM_Characterize*      -- per-node characterization of every gate:
//                             the incremental engine (one shared golden
//                             evaluation + cone-limited resimulation per
//                             strike) against the brute-force path (two
//                             full-netlist simulations per strike). Run at
//                             1/2/4/8 workers; items processed = strikes,
//                             so the reported items/s is directly
//                             comparable between the two.
//  * BM_Campaign*          -- engine vs brute force on the whole-circuit
//                             campaign at 1/2/4/8 workers (bounded at ~2x:
//                             the campaign still pays one full golden pass
//                             per input batch).
//  * BM_Simulate64Lanes    -- raw bit-parallel simulator lane throughput.
#include <benchmark/benchmark.h>

#include "circuits/adders.hpp"
#include "circuits/multipliers.hpp"
#include "netlist/sim.hpp"
#include "netlist/topology.hpp"
#include "parallel/config.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"
#include "ser/fault_injection.hpp"
#include "util/rng.hpp"

namespace {

using namespace rchls;

/// Scoped worker-count override so every benchmark leaves the global
/// configuration as it found it.
class JobsGuard {
 public:
  explicit JobsGuard(std::size_t jobs) : saved_(parallel::global_jobs()) {
    parallel::set_global_jobs(jobs);
  }
  ~JobsGuard() { parallel::set_global_jobs(saved_); }

 private:
  std::size_t saved_;
};

void BM_Inject(benchmark::State& state, netlist::Netlist (*gen)(int)) {
  netlist::Netlist nl = gen(static_cast<int>(state.range(0)));
  ser::InjectionConfig cfg;
  cfg.trials = 64 * 32;
  for (auto _ : state) {
    auto r = ser::inject_campaign(nl, cfg);
    benchmark::DoNotOptimize(r.susceptibility);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.trials));
}
BENCHMARK_CAPTURE(BM_Inject, ripple_adder, &circuits::ripple_carry_adder)
    ->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Inject, kogge_stone_adder,
                  &circuits::kogge_stone_adder)
    ->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_Inject, carry_save_mult,
                  &circuits::carry_save_multiplier)
    ->Arg(8)->Arg(16);
BENCHMARK_CAPTURE(BM_Inject, leapfrog_mult, &circuits::leapfrog_multiplier)
    ->Arg(8)->Arg(16);

// -- per-node characterization: engine vs brute force ----------------------

constexpr std::size_t kCharacterizeTrials = 64 * 4;

/// Every logic gate struck `kCharacterizeTrials` times on the incremental
/// engine: one golden evaluation per input batch shared by all victims,
/// cone-limited resimulation per strike. Args: {width, workers}.
void BM_CharacterizeEngine(benchmark::State& state,
                           netlist::Netlist (*gen)(int)) {
  netlist::Netlist nl = gen(static_cast<int>(state.range(0)));
  JobsGuard jobs(static_cast<std::size_t>(state.range(1)));
  ser::InjectionConfig cfg;
  cfg.trials = kCharacterizeTrials;
  std::int64_t strikes = 0;
  for (auto _ : state) {
    auto r = ser::inject_all_gates(nl, cfg);
    benchmark::DoNotOptimize(r.data());
    strikes += static_cast<std::int64_t>(r.size() * cfg.trials);
  }
  state.SetItemsProcessed(strikes);
}

/// The brute-force path for the same workload: two full-netlist
/// bit-parallel simulations plus an output comparison per strike.
void BM_CharacterizeBrute(benchmark::State& state,
                          netlist::Netlist (*gen)(int)) {
  netlist::Netlist nl = gen(static_cast<int>(state.range(0)));
  JobsGuard jobs(static_cast<std::size_t>(state.range(1)));
  const netlist::Topology topo(nl);
  const auto& gates = topo.logic_gates();
  ser::InjectionConfig cfg;
  cfg.trials = kCharacterizeTrials;

  std::int64_t strikes = 0;
  for (auto _ : state) {
    auto chunks = parallel::partition_trials(cfg.trials, cfg.seed);
    std::vector<std::vector<std::size_t>> chunk_counts(
        chunks.size(), std::vector<std::size_t>(gates.size(), 0));
    parallel::parallel_for(chunks.size(), [&](std::size_t ci) {
      const parallel::TrialChunk& chunk = chunks[ci];
      netlist::Simulator sim(nl);
      Rng rng(chunk.seed);
      std::vector<std::uint64_t> inputs(nl.input_bits().size());
      std::vector<std::uint64_t> golden, faulty;
      for (std::size_t p = 0; p < chunk.trials / parallel::kLanes; ++p) {
        for (auto& w : inputs) w = rng.next_u64();
        for (std::size_t gi = 0; gi < gates.size(); ++gi) {
          sim.eval(inputs);
          sim.pack_outputs(golden);
          sim.eval(inputs, netlist::Fault{gates[gi], ~0ULL});
          sim.pack_outputs(faulty);
          std::uint64_t corrupted = 0;
          for (std::size_t i = 0; i < golden.size(); ++i) {
            corrupted |= golden[i] ^ faulty[i];
          }
          chunk_counts[ci][gi] += static_cast<std::size_t>(
              __builtin_popcountll(corrupted));
        }
      }
    });
    benchmark::DoNotOptimize(chunk_counts.data());
    strikes += static_cast<std::int64_t>(gates.size() * cfg.trials);
  }
  state.SetItemsProcessed(strikes);
}

BENCHMARK_CAPTURE(BM_CharacterizeEngine, carry_save_mult,
                  &circuits::carry_save_multiplier)
    ->Args({16, 1})->Args({16, 2})->Args({16, 4})->Args({16, 8});
BENCHMARK_CAPTURE(BM_CharacterizeBrute, carry_save_mult,
                  &circuits::carry_save_multiplier)
    ->Args({16, 1})->Args({16, 2})->Args({16, 4})->Args({16, 8});
BENCHMARK_CAPTURE(BM_CharacterizeEngine, leapfrog_mult,
                  &circuits::leapfrog_multiplier)
    ->Args({16, 1})->Args({16, 2})->Args({16, 4})->Args({16, 8});
BENCHMARK_CAPTURE(BM_CharacterizeBrute, leapfrog_mult,
                  &circuits::leapfrog_multiplier)
    ->Args({16, 1})->Args({16, 2})->Args({16, 4})->Args({16, 8});

// -- whole-circuit campaign: engine vs brute force -------------------------

void BM_CampaignEngine(benchmark::State& state,
                       netlist::Netlist (*gen)(int)) {
  netlist::Netlist nl = gen(static_cast<int>(state.range(0)));
  JobsGuard jobs(static_cast<std::size_t>(state.range(1)));
  ser::InjectionConfig cfg;
  cfg.trials = 64 * 64;
  for (auto _ : state) {
    auto r = ser::inject_campaign(nl, cfg);
    benchmark::DoNotOptimize(r.susceptibility);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.trials));
}

void BM_CampaignBrute(benchmark::State& state,
                      netlist::Netlist (*gen)(int)) {
  netlist::Netlist nl = gen(static_cast<int>(state.range(0)));
  JobsGuard jobs(static_cast<std::size_t>(state.range(1)));
  ser::InjectionConfig cfg;
  cfg.trials = 64 * 64;
  for (auto _ : state) {
    auto r = ser::inject_campaign_reference(nl, cfg);
    benchmark::DoNotOptimize(r.susceptibility);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.trials));
}

BENCHMARK_CAPTURE(BM_CampaignEngine, carry_save_mult,
                  &circuits::carry_save_multiplier)
    ->Args({16, 1})->Args({16, 2})->Args({16, 4})->Args({16, 8});
BENCHMARK_CAPTURE(BM_CampaignBrute, carry_save_mult,
                  &circuits::carry_save_multiplier)
    ->Args({16, 1})->Args({16, 2})->Args({16, 4})->Args({16, 8});

void BM_Simulate64Lanes(benchmark::State& state) {
  netlist::Netlist nl =
      circuits::leapfrog_multiplier(static_cast<int>(state.range(0)));
  netlist::Simulator sim(nl);
  Rng rng(3);
  std::vector<std::uint64_t> inputs(nl.input_bits().size());
  for (auto& w : inputs) w = rng.next_u64();
  for (auto _ : state) {
    const auto& words = sim.eval(inputs);
    benchmark::DoNotOptimize(words.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Simulate64Lanes)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

// perf_pool: throughput of the parallel core after the relaxed-FIFO
// rewrite -- the PR-7 acceptance benchmark.
//
// Two layers are measured, matching the two layers the rewrite touched:
//
//   fifo.*  -- the RelaxedFifo overflow queue in isolation:
//       fill     single producer pushes until the ring refuses (the
//                bounded-capacity path), timed per push;
//       empty    consumer drains the pre-filled ring in whole-block
//                claims, timed per task;
//       prodcon  T producers against T consumers concurrently, ring
//                wrapping continuously -- the contended MPMC hot path.
//
//   pool.*  -- ThreadPool end to end (external submits cross the FIFO,
//       workers execute), weak scaling at 1..hardware_concurrency
//       workers: the per-worker task count is FIXED, so ideal scaling
//       is flat wall time as workers grow. The task grain sweeps
//       empty-task (pure dispatch overhead), a calibrated ~2us spin
//       (fine-grained compute), and a sweep-cell-sized piece of real
//       engine work (a small fault-injection campaign, about what one
//       exploration cell costs) -- the grains bracket what
//       parallel_for actually feeds the pool.
//
// Standalone harness (like perf_serve / perf_cache): prints one JSON
// document to stdout; the checked-in BENCH_pool.json is a captured
// run. Each pool row also records the pool-counter deltas
// (steals/overflow/blocks/wakeups) so the dispatch topology behind a
// number is visible. Usage:
//
//   ./build/perf_pool [--smoke]
//
// --smoke shrinks task counts so CI runs every mode and grain in
// seconds. Absolute numbers are machine-dependent (the JSON records
// hardware_concurrency; scaling claims are only meaningful when it
// exceeds the worker count); the per-grain overhead ratios and the
// weak-scaling curve are the interesting part.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "circuits/adders.hpp"
#include "parallel/config.hpp"
#include "parallel/relaxed_fifo.hpp"
#include "parallel/task_pool.hpp"
#include "ser/fault_injection.hpp"
#include "util/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using rchls::parallel::RelaxedFifo;
using rchls::parallel::Task;
using rchls::parallel::ThreadPool;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Thread counts swept: powers of two up to hardware_concurrency, plus
// the concurrency itself. On a 1-core host this is just {1} -- recorded
// honestly rather than pretending at parallelism the machine lacks.
std::vector<unsigned> thread_sweep(unsigned hw) {
  std::vector<unsigned> out;
  for (unsigned t = 1; t < hw; t *= 2) out.push_back(t);
  out.push_back(hw);
  return out;
}

// ------------------------------------------------------------- task grains

volatile std::uint64_t g_sink = 0;  // defeats spin-loop elision

void spin_iters(std::uint64_t iters) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iters; ++i) acc += i * 2654435761u;
  g_sink = acc;
}

// Calibrate the spin grain to ~2us of this machine's arithmetic.
std::uint64_t calibrate_spin() {
  std::uint64_t iters = 1 << 14;
  for (;;) {
    auto t0 = Clock::now();
    spin_iters(iters);
    double s = seconds_since(t0);
    if (s > 1e-4) {
      return std::max<std::uint64_t>(
          32, static_cast<std::uint64_t>(static_cast<double>(iters) *
                                         (2e-6 / s)));
    }
    iters <<= 1;
  }
}

// Sweep-cell-sized engine work: a small injection campaign on a 4-bit
// adder costs about what one exploration sweep cell does. It calls
// parallel_for internally, which detects it is on a pool worker and
// runs inline -- exactly what nested engine work does in production.
void sweep_cell_task(std::uint64_t seed) {
  rchls::netlist::Netlist nl = rchls::circuits::ripple_carry_adder(4);
  rchls::ser::InjectionConfig cfg;
  cfg.trials = 64;
  cfg.seed = seed + 1;
  auto r = rchls::ser::inject_campaign(nl, cfg);
  g_sink = static_cast<std::uint64_t>(r.propagated);
}

// ---------------------------------------------------------------- fifo lane

rchls::json::Value fifo_fill_and_empty(std::size_t blocks) {
  RelaxedFifo q(blocks);
  // fill: push until the ring refuses.
  auto t0 = Clock::now();
  std::size_t pushed = 0;
  for (;;) {
    Task t = [] {};
    if (!q.try_push(t)) break;
    ++pushed;
  }
  double fill_s = seconds_since(t0);

  // empty: drain the full ring in whole-block claims.
  t0 = Clock::now();
  std::deque<Task> out;
  std::size_t popped = 0;
  std::size_t handoffs = 0;
  for (;;) {
    out.clear();
    std::size_t n = q.pop_block(out);
    if (n == 0) break;
    popped += n;
    ++handoffs;
  }
  double empty_s = seconds_since(t0);

  auto fill = rchls::json::Value::object();
  fill.set("tasks", static_cast<std::uint64_t>(pushed))
      .set("seconds", fill_s)
      .set("tasks_per_s", fill_s > 0 ? static_cast<double>(pushed) / fill_s
                                     : 0.0)
      .set("capacity", static_cast<std::uint64_t>(q.capacity()));
  auto empty = rchls::json::Value::object();
  empty.set("tasks", static_cast<std::uint64_t>(popped))
      .set("seconds", empty_s)
      .set("tasks_per_s", empty_s > 0 ? static_cast<double>(popped) / empty_s
                                      : 0.0)
      .set("block_claims", static_cast<std::uint64_t>(handoffs));
  auto doc = rchls::json::Value::object();
  doc.set("fill", std::move(fill)).set("empty", std::move(empty));
  return doc;
}

rchls::json::Value fifo_prodcon(unsigned threads, std::size_t per_producer) {
  RelaxedFifo q(64);  // small enough to wrap many times per run
  const std::size_t total = per_producer * threads;
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> popped{0};

  auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(2 * threads);
  for (unsigned p = 0; p < threads; ++p) {
    pool.emplace_back([&] {
      for (std::size_t i = 0; i < per_producer; ++i) {
        Task t = [&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        };
        while (!q.try_push(t)) std::this_thread::yield();
      }
    });
  }
  for (unsigned c = 0; c < threads; ++c) {
    pool.emplace_back([&] {
      std::deque<Task> out;
      while (popped.load() < total) {
        out.clear();
        if (std::size_t n = q.pop_block(out)) {
          for (Task& t : out) t();
          popped.fetch_add(n);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  double s = seconds_since(t0);

  auto doc = rchls::json::Value::object();
  doc.set("threads_each_side", static_cast<std::uint64_t>(threads))
      .set("tasks", static_cast<std::uint64_t>(executed.load()))
      .set("seconds", s)
      .set("tasks_per_s",
           s > 0 ? static_cast<double>(executed.load()) / s : 0.0);
  return doc;
}

// ---------------------------------------------------------------- pool lane

rchls::json::Value pool_weak_scaling(unsigned workers, const std::string& grain,
                                     std::uint64_t spin, std::size_t per_worker) {
  rchls::parallel::reset_pool_stats();
  const std::size_t total = per_worker * workers;
  std::atomic<std::size_t> done{0};
  double s;
  {
    ThreadPool pool(workers);
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < total; ++i) {
      if (grain == "empty") {
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      } else if (grain == "spin") {
        pool.submit([&done, spin] {
          spin_iters(spin);
          done.fetch_add(1, std::memory_order_relaxed);
        });
      } else {  // "cell"
        pool.submit([&done, i] {
          sweep_cell_task(static_cast<std::uint64_t>(i));
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
    }
    pool.wait_idle();
    s = seconds_since(t0);
  }
  rchls::parallel::PoolStats st = rchls::parallel::pool_stats();

  auto stats = rchls::json::Value::object();
  stats.set("tasks_executed", st.tasks_executed)
      .set("steals", st.steals)
      .set("overflow_pushes", st.overflow_pushes)
      .set("overflow_pops", st.overflow_pops)
      .set("block_handoffs", st.block_handoffs)
      .set("idle_wakeups", st.idle_wakeups)
      .set("full_retries", st.full_retries);
  auto doc = rchls::json::Value::object();
  doc.set("workers", static_cast<std::uint64_t>(workers))
      .set("grain", grain)
      .set("tasks", static_cast<std::uint64_t>(done.load()))
      .set("seconds", s)
      .set("tasks_per_s", s > 0 ? static_cast<double>(done.load()) / s : 0.0)
      .set("pool_stats", std::move(stats));
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: perf_pool [--smoke]\n";
      return 1;
    }
  }

  unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t prodcon_per_producer = smoke ? 2000 : 50000;
  const std::size_t pool_per_worker = smoke ? 500 : 20000;
  const std::size_t cell_per_worker = smoke ? 16 : 256;
  std::uint64_t spin = calibrate_spin();

  auto doc = rchls::json::Value::object();
  doc.set("bench", "perf_pool")
      .set("smoke", smoke)
      .set("hardware_concurrency", static_cast<std::uint64_t>(hw))
      .set("block_size",
           static_cast<std::uint64_t>(RelaxedFifo::kBlockSize))
      .set("spin_iters_2us", spin);

  // fifo lane: uncontended fill/empty, then contended prodcon across the
  // thread sweep.
  auto fifo = fifo_fill_and_empty(/*blocks=*/256);
  auto prodcon = rchls::json::Value::array();
  for (unsigned t : thread_sweep(hw)) {
    auto row = fifo_prodcon(t, prodcon_per_producer);
    std::cerr << "perf_pool: fifo prodcon threads=" << t << "x2 tasks_per_s="
              << row.at("tasks_per_s").as_double() << "\n";
    prodcon.push(std::move(row));
  }
  fifo.set("prodcon", std::move(prodcon));
  doc.set("fifo", std::move(fifo));

  // pool lane: weak scaling per grain.
  auto pool_rows = rchls::json::Value::array();
  for (unsigned w : thread_sweep(hw)) {
    for (const char* grain : {"empty", "spin", "cell"}) {
      std::size_t per_worker =
          std::string(grain) == "cell" ? cell_per_worker : pool_per_worker;
      auto row = pool_weak_scaling(w, grain, spin, per_worker);
      std::cerr << "perf_pool: pool workers=" << w << " grain=" << grain
                << " tasks_per_s=" << row.at("tasks_per_s").as_double() << "\n";
      pool_rows.push(std::move(row));
    }
  }
  doc.set("pool", std::move(pool_rows));

  std::cout << doc.dump(2) << "\n";
  return 0;
}

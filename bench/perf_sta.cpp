// perf_sta: static timing analysis cost on elaborated datapaths.
//
// The sta subsystem levelizes the gate netlist and runs one forward and
// one backward propagation pass over it -- cost should be linear in
// gate count, independent of the trial count that the sensitivity join
// rides along with. This harness times StaRequest through an
// api::Session on two axes: generated adders at growing widths (the
// per-gate cost of the arrival/required/slack passes plus the fault
// campaign behind the sensitivity join) and generated DFGs at growing
// node counts elaborated through the version policy (the end-to-end
// `rchls sta <graph>` path). A final cold-vs-warm pair pins the cache
// contract: the warm replay must not execute.
//
// Standalone harness (like perf_scale / perf_pool): prints one JSON
// document to stdout; the checked-in BENCH_sta.json is a captured run,
// validated by scripts/check_bench_json.py (width and node axes
// strictly increasing, timings positive, warm pass executed nothing).
// Usage:
//
//   ./build/perf_sta [--smoke]
//
// --smoke shrinks widths, node counts and trials so CI covers every
// lane in seconds. The timed lanes run with the session cache disabled
// so every step is a real engine execution; only the warm lane enables
// it, because the cache IS what that lane measures.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/request.hpp"
#include "api/result.hpp"
#include "api/session.hpp"
#include "dfg/generate.hpp"
#include "library/resource.hpp"
#include "util/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// One generator seed for the whole document, recorded in the JSON: the
// graphs a future run times are byte-identical to this run's.
constexpr std::uint64_t kSeed = 42;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

rchls::dfg::Graph scale_graph(std::size_t nodes) {
  rchls::dfg::GeneratorConfig gc;
  gc.num_nodes = nodes;
  gc.seed = kSeed;
  gc.layer_width = 8.0;
  gc.mul_fraction = 0.25;
  return rchls::dfg::generate_random(gc);
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: perf_sta [--smoke]\n";
      return 1;
    }
  }

  const std::vector<int> widths =
      smoke ? std::vector<int>{4, 8} : std::vector<int>{8, 16, 32, 64};
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16, 32}
            : std::vector<std::size_t>{16, 32, 64, 128};
  const std::size_t trials = smoke ? 1024 : 64 * 1024;
  // Elaborated graphs carry 10-40x the gates of a paper-width adder,
  // and the per-gate campaign behind the sensitivity join scales with
  // gates^2 x trials; the graph lane measures elaboration + the
  // levelized passes, so it runs a far lighter campaign than the
  // component lane and stops at 128 nodes (~27k gates).
  const std::size_t graph_trials = smoke ? 256 : 1024;

  rchls::api::SessionOptions opts;
  opts.enable_cache = false;  // every timed step really executes
  rchls::api::Session session(opts);
  rchls::library::ResourceLibrary lib = rchls::library::paper_library();

  auto doc = rchls::json::Value::object();
  doc.set("bench", "perf_sta")
      .set("smoke", smoke)
      .set("seed", std::to_string(kSeed))  // uint64: decimal string
      .set("hardware_concurrency",
           static_cast<std::uint64_t>(
               std::max(1u, std::thread::hardware_concurrency())));

  // component lane: the kogge-stone adder at growing widths -- gate
  // count grows O(w log w), so gates_per_s exposes any superlinear
  // term in the levelized passes or the sensitivity join.
  auto comp_rows = rchls::json::Value::array();
  for (int w : widths) {
    rchls::api::StaRequest req;
    req.component = "kogge_stone_adder";
    req.width = w;
    req.trials = trials;
    req.seed = kSeed;
    req.top = 10;
    req.top_paths = 3;

    auto t0 = Clock::now();
    rchls::api::StaResult res = session.run(req);
    double secs = seconds_since(t0);
    std::cerr << "perf_sta: component width=" << w << " gates="
              << res.gate_count << " seconds=" << secs << "\n";

    auto row = rchls::json::Value::object();
    row.set("component", req.component)
        .set("width", static_cast<std::uint64_t>(w))
        .set("gate_count", static_cast<std::uint64_t>(res.gate_count))
        .set("levels", static_cast<std::uint64_t>(res.levels))
        .set("trials", static_cast<std::uint64_t>(trials))
        .set("seconds", secs)
        .set("gates_per_s", static_cast<double>(res.gate_count) / secs);
    comp_rows.push(std::move(row));
  }
  doc.set("components", std::move(comp_rows));

  // graph lane: generated DFGs elaborated under the fastest-version
  // policy -- the full `rchls sta <graph>` path including elaboration.
  auto graph_rows = rchls::json::Value::array();
  for (std::size_t n : sizes) {
    rchls::api::StaRequest req;
    req.graph = scale_graph(n);
    req.library = lib;
    req.versions = "fastest";
    req.width = smoke ? 4 : 8;
    req.trials = graph_trials;
    req.seed = kSeed;
    req.top = 10;
    req.top_paths = 3;

    auto t0 = Clock::now();
    rchls::api::StaResult res = session.run(req);
    double secs = seconds_since(t0);
    std::cerr << "perf_sta: graph nodes=" << n << " gates="
              << res.gate_count << " seconds=" << secs << "\n";

    auto row = rchls::json::Value::object();
    row.set("nodes", static_cast<std::uint64_t>(n))
        .set("gate_count", static_cast<std::uint64_t>(res.gate_count))
        .set("levels", static_cast<std::uint64_t>(res.levels))
        .set("endpoints", static_cast<std::uint64_t>(res.endpoints))
        .set("seconds", secs)
        .set("gates_per_s", static_cast<double>(res.gate_count) / secs);
    graph_rows.push(std::move(row));
  }
  doc.set("graphs", std::move(graph_rows));

  // warm lane: the cache contract under the bench's own load -- a
  // second identical request through a caching session must be a memo
  // hit, never a re-execution.
  {
    rchls::api::Session caching;
    rchls::api::StaRequest req;
    req.component = "kogge_stone_adder";
    req.width = widths.back();
    req.trials = trials;
    req.seed = kSeed;
    req.top = 10;
    req.top_paths = 3;

    auto t0 = Clock::now();
    caching.run(req);
    double cold = seconds_since(t0);
    std::uint64_t executed = caching.executions();
    t0 = Clock::now();
    caching.run(req);
    double warm = seconds_since(t0);
    bool warm_zero = caching.executions() == executed;
    std::cerr << "perf_sta: warm cold_s=" << cold << " warm_s=" << warm
              << " warm_executed_zero=" << warm_zero << "\n";

    auto row = rchls::json::Value::object();
    row.set("seconds_cold", cold)
        .set("seconds_warm", warm)
        .set("warm_executed_zero", warm_zero);
    doc.set("warm", std::move(row));
  }

  std::cout << doc.dump(2) << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "perf_sta: " << e.what() << "\n";
  return 1;
}

// Parallel subsystem throughput: exploration-sweep and injection-campaign
// scaling at 1/2/4/8 workers, plus raw pool overhead. Wall-clock is the
// interesting axis (work runs on pool workers), hence UseRealTime().
//
// Acceptance target: >= 3x items/s on the grid and the campaign at 8
// workers vs 1 on an 8-core host.
#include <benchmark/benchmark.h>

#include <atomic>

#include "benchmarks/suite.hpp"
#include "circuits/multipliers.hpp"
#include "hls/explore.hpp"
#include "library/resource.hpp"
#include "parallel/config.hpp"
#include "parallel/parallel_for.hpp"
#include "ser/fault_injection.hpp"

namespace {

using namespace rchls;

void BM_ComparisonGrid(benchmark::State& state) {
  auto g = benchmarks::fir16();
  auto lib = library::paper_library();
  parallel::set_global_jobs(static_cast<std::size_t>(state.range(0)));
  std::vector<int> lds = {11, 12, 13, 14};
  std::vector<double> ads = {11.0, 13.0, 15.0, 17.0};
  for (auto _ : state) {
    auto rows = hls::comparison_grid(g, lib, lds, ads);
    benchmark::DoNotOptimize(rows.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lds.size() * ads.size()));
  parallel::set_global_jobs(0);
}
BENCHMARK(BM_ComparisonGrid)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_InjectCampaign(benchmark::State& state) {
  netlist::Netlist nl = circuits::carry_save_multiplier(16);
  ser::InjectionConfig cfg;
  cfg.trials = 64 * 512;
  parallel::set_global_jobs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = ser::inject_campaign(nl, cfg);
    benchmark::DoNotOptimize(r.susceptibility);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.trials));
  parallel::set_global_jobs(0);
}
BENCHMARK(BM_InjectCampaign)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PoolOverhead(benchmark::State& state) {
  // Dispatch of N trivial tasks through the shared pool: the fixed cost a
  // parallel region pays before any useful work happens (the first
  // iteration additionally pays the one-time pool spin-up).
  std::size_t jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::atomic<std::size_t> ran{0};
    parallel::parallel_for(
        256, [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); },
        jobs);
    benchmark::DoNotOptimize(ran.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_PoolOverhead)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

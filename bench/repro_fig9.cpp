// Reproduces paper Figure 9: average reliability of [3], the reliability-
// centric approach, and the combined approach over the Table 2 grids, per
// benchmark.
#include <array>
#include <iostream>

#include "repro_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rchls;
  auto lib = library::paper_library();

  // Paper Fig. 9 bar values are the per-panel averages of Table 2.
  auto paper_avg = [](const repro::Panel& p) {
    double ref = 0.0;
    double ours = 0.0;
    double comb = 0.0;
    for (const auto& r : p.rows) {
      ref += r.ref3;
      ours += r.ours;
      comb += r.comb;
    }
    std::size_t n = p.rows.size();
    return std::array<double, 3>{ref / n, ours / n, comb / n};
  };

  std::cout << "==============================================\n"
            << "Figure 9: average reliability per benchmark\n"
            << "==============================================\n";
  Table t({"Benchmark", "Cells", "Ref[3] paper", "Ref[3] ours", "Ours paper",
           "Ours ours", "Comb paper", "Comb ours"});
  for (const repro::Panel& panel : repro::all_panels()) {
    auto rows = repro::run_panel(panel, lib);
    auto avg = hls::grid_averages(rows);
    auto paper = paper_avg(panel);
    t.add_row({panel.benchmark,
               std::to_string(avg.solved_cells) + "/" +
                   std::to_string(avg.total_cells),
               repro::fmt(paper[0]), repro::fmt(avg.baseline),
               repro::fmt(paper[1]), repro::fmt(avg.ours),
               repro::fmt(paper[2]), repro::fmt(avg.combined)});
  }
  std::cout << t.render()
            << "\nExpected shape (paper Section 7): ours > [3] on average "
               "for every\nbenchmark, and combined >= ours everywhere.\n";
  return 0;
}

// Reproduces paper Table 2: reliability of [3], the reliability-centric
// approach, and the combined approach over (Ld, Ad) grids for the FIR, EW
// and DiffEq benchmarks, including the percentage-improvement columns.
#include <iostream>

#include "repro_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rchls;
  auto lib = library::paper_library();

  for (const repro::Panel& panel : repro::all_panels()) {
    std::cout << "==============================================\n"
              << panel.title << "  (our bounds: Ld+"
              << panel.ld_offset << ", Ad+" << panel.ad_offset << ")\n"
              << "==============================================\n";
    auto rows = repro::run_panel(panel, lib);

    Table t({"Ld", "Ad", "Ref[3] paper", "Ref[3] ours", "Ours paper",
             "Ours ours", "%Imprv paper", "%Imprv ours", "Comb paper",
             "Comb ours"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const repro::PaperRow& p = panel.rows[i];
      const hls::ComparisonRow& r = rows[i];
      t.add_row({std::to_string(p.ld), format_fixed(p.ad, 0),
                 repro::fmt(p.ref3), repro::fmt(r.baseline),
                 repro::fmt(p.ours), repro::fmt(r.ours),
                 format_fixed(100.0 * (p.ours / p.ref3 - 1.0), 2),
                 r.improvement_ours ? format_fixed(*r.improvement_ours, 2)
                                    : "-",
                 repro::fmt(p.comb), repro::fmt(r.combined)});
    }
    std::cout << t.render() << "\n";
  }

  std::cout
      << "Reading guide: 'paper' columns are the published Table 2 values;\n"
         "'ours' columns are produced by this library at the mapped "
         "bounds.\nExpected shape: ours beats [3] under tight area bounds; "
         "[3] catches up\nwhen area is loose enough for replication; the "
         "combined approach\ndominates both. See EXPERIMENTS.md for the "
         "per-cell discussion.\n";
  return 0;
}

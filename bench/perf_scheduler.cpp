// Scheduler throughput and ablation: the paper's density scheduler vs the
// classic force-directed scheduler vs resource-constrained list
// scheduling, over increasing DFG sizes.
#include <benchmark/benchmark.h>

#include "dfg/generate.hpp"
#include "dfg/timing.hpp"
#include "sched/density.hpp"
#include "sched/force_directed.hpp"
#include "sched/list.hpp"

namespace {

using namespace rchls;

struct Instance {
  dfg::Graph graph;
  std::vector<int> delays;
  std::vector<int> groups;
  int latency;
};

Instance make_instance(std::size_t nodes) {
  dfg::GeneratorConfig cfg;
  cfg.num_nodes = nodes;
  cfg.mul_fraction = 0.3;
  cfg.layer_width = 4.0;
  cfg.seed = nodes;  // deterministic per size
  Instance inst{dfg::generate_random(cfg), {}, {}, 0};
  inst.delays.resize(nodes);
  inst.groups.resize(nodes);
  for (dfg::NodeId id = 0; id < nodes; ++id) {
    bool mul = inst.graph.node(id).op == dfg::OpType::kMul;
    inst.delays[id] = mul ? 2 : 1;
    inst.groups[id] = mul ? 1 : 0;
  }
  inst.latency = dfg::asap_latency(inst.graph, inst.delays) + 4;
  return inst;
}

void BM_DensitySchedule(benchmark::State& state) {
  Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto s = sched::density_schedule(inst.graph, inst.delays, inst.latency,
                                     inst.groups);
    benchmark::DoNotOptimize(s.latency);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DensitySchedule)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_ForceDirectedSchedule(benchmark::State& state) {
  Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto s = sched::force_directed_schedule(inst.graph, inst.delays,
                                            inst.latency, inst.groups);
    benchmark::DoNotOptimize(s.latency);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForceDirectedSchedule)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void BM_ListSchedule(benchmark::State& state) {
  Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  std::vector<int> instances{3, 2};
  for (auto _ : state) {
    auto s = sched::list_schedule(inst.graph, inst.delays, inst.groups,
                                  instances);
    benchmark::DoNotOptimize(s.latency);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ListSchedule)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Complexity();

}  // namespace

// Reproduces paper Figure 5: two schedules of the Fig. 4(a) example DFG --
// the uniform type-2 design vs the reliability-centric one.
//
// Paper bounds: Ld = 5 steps, Ad = 4 units, with published reliabilities
// 0.82783 (uniform) and 0.90713 (mixed). Under completion semantics the
// published mixed design occupies 6 steps, so we run Ld = 6 (see
// EXPERIMENTS.md, "Latency semantics").
#include <iostream>

#include "benchmarks/suite.hpp"
#include "hls/baseline.hpp"
#include "hls/find_design.hpp"
#include "hls/report.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rchls;
  auto g = benchmarks::fig4_example();
  auto lib = library::paper_library();
  const int ld = 6;
  const double ad = 4.0;

  std::cout << "==============================================\n"
            << "Figure 5: example DFG, Ld=" << ld << " (paper: 5), Ad=" << ad
            << "\n==============================================\n\n";

  // (a) uniform type-2 adders only.
  hls::Design uniform = hls::minimal_allocation_design(
      g, lib, lib.find("adder_2"), lib.find("mult_2"), ld);
  std::cout << "(a) uniform adder_2 schedule:\n"
            << hls::schedule_table(uniform, g, lib)
            << hls::design_summary(uniform, g, lib)
            << "paper Fig 5(a): area 4, reliability 0.82783\n\n";

  // (b) reliability-centric.
  hls::Design ours = hls::find_design(g, lib, ld, ad);
  std::cout << "(b) reliability-centric schedule:\n"
            << hls::schedule_table(ours, g, lib)
            << hls::design_summary(ours, g, lib)
            << "paper Fig 5(b): area 3, reliability 0.90713\n\n";

  double improvement =
      100.0 * (ours.reliability / uniform.reliability - 1.0);
  std::cout << "reliability improvement over uniform: "
            << format_fixed(improvement, 2) << "%\n";
  return 0;
}

// Reproduces paper Figure 7: two schedules of the 16-point symmetric FIR
// filter -- uniform type-2 resources vs the reliability-centric mix.
//
// Paper bounds: Ld = 11, Ad = 8, reliabilities 0.48467 vs 0.78943. Under
// our completion semantics and unit accounting the corresponding bounds
// are (11, 11) -- see EXPERIMENTS.md; the uniform reference reproduces
// 0.48467 exactly (0.969^23) and the reliability-centric run reproduces
// 0.78943 exactly (0.999^16 * 0.969^7).
#include <iostream>

#include "benchmarks/suite.hpp"
#include "hls/baseline.hpp"
#include "hls/find_design.hpp"
#include "hls/report.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rchls;
  auto g = benchmarks::fir16();
  auto lib = library::paper_library();

  std::cout << "==============================================\n"
            << "Figure 7: FIR16, paper bounds Ld=11 Ad=8\n"
            << "==============================================\n\n";

  hls::Design uniform = hls::minimal_allocation_design(
      g, lib, lib.find("adder_2"), lib.find("mult_2"), 11);
  std::cout << "(a) uniform type-2 schedule:\n"
            << hls::schedule_table(uniform, g, lib)
            << hls::design_summary(uniform, g, lib)
            << "paper Fig 7(a): reliability 0.48467\n\n";

  hls::Design ours = hls::find_design(g, lib, 11, 11.0);
  std::cout << "(b) reliability-centric schedule (our bounds 11, 11):\n"
            << hls::schedule_table(ours, g, lib)
            << hls::design_summary(ours, g, lib)
            << "paper Fig 7(b): reliability 0.78943\n\n";

  double improvement =
      100.0 * (ours.reliability / uniform.reliability - 1.0);
  std::cout << "reliability improvement over uniform: "
            << format_fixed(improvement, 2)
            << "%  (paper: 0.78943/0.48467 - 1 = 62.88%)\n";
  return 0;
}

// End-to-end synthesis-engine timings on the paper benchmarks, plus the
// scheduler ablation inside find_design (density vs force-directed) and
// the scaling of the full flow with DFG size.
#include <benchmark/benchmark.h>

#include "benchmarks/suite.hpp"
#include "dfg/generate.hpp"
#include "dfg/timing.hpp"
#include "hls/baseline.hpp"
#include "hls/combined.hpp"
#include "hls/find_design.hpp"

namespace {

using namespace rchls;

struct Bounds {
  int ld;
  double ad;
};

Bounds mid_bounds(const dfg::Graph& g, const library::ResourceLibrary& lib) {
  std::vector<library::VersionId> fastest(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    fastest[id] = lib.fastest(library::class_of(g.node(id).op));
  }
  int lmin =
      dfg::asap_latency(g, hls::delays_for(g, lib, fastest));
  return {lmin + 3, 20.0};
}

void BM_FindDesign(benchmark::State& state, const std::string& name) {
  auto g = benchmarks::by_name(name);
  auto lib = library::paper_library();
  Bounds b = mid_bounds(g, lib);
  for (auto _ : state) {
    auto d = hls::find_design(g, lib, b.ld, b.ad);
    benchmark::DoNotOptimize(d.reliability);
  }
}
BENCHMARK_CAPTURE(BM_FindDesign, fir16, std::string("fir16"));
BENCHMARK_CAPTURE(BM_FindDesign, ewf, std::string("ewf"));
BENCHMARK_CAPTURE(BM_FindDesign, diffeq, std::string("diffeq"));
BENCHMARK_CAPTURE(BM_FindDesign, ar_lattice, std::string("ar_lattice"));

void BM_FindDesignFds(benchmark::State& state) {
  auto g = benchmarks::fir16();
  auto lib = library::paper_library();
  Bounds b = mid_bounds(g, lib);
  hls::FindDesignOptions opts;
  opts.scheduler = hls::SchedulerKind::kForceDirected;
  for (auto _ : state) {
    auto d = hls::find_design(g, lib, b.ld, b.ad, opts);
    benchmark::DoNotOptimize(d.reliability);
  }
}
BENCHMARK(BM_FindDesignFds);

void BM_Baseline(benchmark::State& state) {
  auto g = benchmarks::fir16();
  auto lib = library::paper_library();
  Bounds b = mid_bounds(g, lib);
  for (auto _ : state) {
    auto d = hls::nmr_baseline(g, lib, b.ld, b.ad);
    benchmark::DoNotOptimize(d.reliability);
  }
}
BENCHMARK(BM_Baseline);

void BM_Combined(benchmark::State& state) {
  auto g = benchmarks::fir16();
  auto lib = library::paper_library();
  Bounds b = mid_bounds(g, lib);
  for (auto _ : state) {
    auto d = hls::combined_design(g, lib, b.ld, b.ad);
    benchmark::DoNotOptimize(d.reliability);
  }
}
BENCHMARK(BM_Combined);

void BM_FindDesignScaling(benchmark::State& state) {
  dfg::GeneratorConfig cfg;
  cfg.num_nodes = static_cast<std::size_t>(state.range(0));
  cfg.mul_fraction = 0.3;
  cfg.seed = 7;
  auto g = dfg::generate_random(cfg);
  auto lib = library::paper_library();
  Bounds b = mid_bounds(g, lib);
  b.ad = 1.5 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto d = hls::find_design(g, lib, b.ld, b.ad);
    benchmark::DoNotOptimize(d.reliability);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FindDesignScaling)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Complexity();

}  // namespace

// perf_cache: wall-clock measurements for the PR-5 api layers --
// cold vs disk-warm scenario runs (api::DiskCache behind --cache-dir)
// and local vs sharded sweep execution (api::SubprocessExecutor over
// real `rchls exec-request` worker processes).
//
// Standalone harness (like the repro_* binaries): prints one JSON
// document to stdout; the checked-in BENCH_cache.json is a captured
// run. Usage:
//
//   ./build/perf_cache [path-to-rchls-binary]
//
// The rchls binary defaults to the sibling of this executable (both
// live in the build directory). Timings are wall-clock and
// machine-dependent -- the *ratios* are the interesting part: the
// disk-warm run pays only JSON decode + verification, so it should sit
// 2-3 orders of magnitude under the cold run; sharded sweeps now ship
// BATCHED slice requests (one worker per slice, not per cell), so the
// remaining gap to local is spawn + wire I/O per SLICE. The JSON
// records hardware_concurrency because it bounds what sharding can do:
// on a single-core host the floor is local + spawn (nothing to win,
// local is already serial); with more cores each worker's own pool
// closes in on -- and across hosts would pass -- the local time.
#include <chrono>
#include <filesystem>
#include <functional>
#include <iostream>
#include <thread>

#include "api/session.hpp"
#include "api/subprocess.hpp"
#include "benchmarks/suite.hpp"
#include "library/resource.hpp"
#include "parallel/config.hpp"
#include "scenario/parse.hpp"
#include "scenario/runner.hpp"
#include "util/json.hpp"

namespace {

using rchls::api::Session;
using rchls::api::SessionOptions;

double seconds_of(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// A scenario heavy enough to time: polished/explored synthesis sweep +
// three-engine grid + a large campaign.
constexpr const char* kScenario =
    "scenario perf_cache\n"
    "graph fir16\n"
    "sweep area 9,10,11,12,13,14 latency=11 polish=on explore=2\n"
    "grid latencies=11,12,13 areas=11,13,15 polish=on explore=2\n"
    "inject carry_save_multiplier width=16 trials=131072\n";

rchls::api::SweepRequest sweep_request() {
  rchls::api::SweepRequest req;
  req.graph = rchls::benchmarks::by_name("fir16");
  req.library = rchls::library::paper_library();
  req.axis = rchls::api::SweepAxis::kArea;
  req.latency_bounds = {11};
  req.area_bounds = {9, 9.5, 10, 10.5, 11, 11.5, 12, 12.5, 13, 13.5, 14, 15};
  req.options.enable_polish = true;
  req.options.explore_tighter_latency = 3;
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path rchls_bin;
  if (argc > 1) {
    rchls_bin = argv[1];
  } else {
    // Default to the sibling binary; only Linux can resolve the running
    // executable, so elsewhere argv[1] is required.
    std::error_code ec;
    auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (ec) {
      std::cerr << "error: cannot locate this executable; pass the rchls "
                   "binary path as argv[1]\n";
      return 1;
    }
    rchls_bin = self.parent_path() / "rchls";
  }
  if (!std::filesystem::exists(rchls_bin)) {
    std::cerr << "error: rchls binary not found at " << rchls_bin
              << " (pass its path as argv[1])\n";
    return 1;
  }

  std::filesystem::path cache_dir = "perf_cache_tmp";
  std::filesystem::remove_all(cache_dir);
  rchls::scenario::Scenario scn = rchls::scenario::parse_string(kScenario);

  // ---- cold vs disk-warm vs memory-warm scenario runs
  SessionOptions disk_opts;
  disk_opts.cache_dir = cache_dir.string();

  double t_cold = 0.0;
  {
    Session session(disk_opts);  // empty disk cache: every action executes
    t_cold = seconds_of([&] { rchls::scenario::run(scn, session); });
  }
  double t_disk_warm = 0.0;
  double t_mem_warm = 0.0;
  {
    Session session(disk_opts);  // fresh process-equivalent: disk hits
    t_disk_warm = seconds_of([&] { rchls::scenario::run(scn, session); });
    t_mem_warm = seconds_of([&] { rchls::scenario::run(scn, session); });
  }

  // ---- local vs sharded sweep
  rchls::api::SweepRequest sweep = sweep_request();
  rchls::api::LocalExecutor local;
  double t_local = seconds_of([&] { local.run(sweep); });

  auto doc = rchls::json::Value::object();
  doc.set("bench", "perf_cache")
      .set("jobs", rchls::parallel::global_config().jobs)
      .set("hardware_concurrency", std::thread::hardware_concurrency())
      .set("scenario_actions", scn.actions.size());
  auto scenario_runs = rchls::json::Value::object();
  scenario_runs.set("cold_s", t_cold)
      .set("disk_warm_s", t_disk_warm)
      .set("memory_warm_s", t_mem_warm)
      .set("disk_warm_speedup", t_cold / t_disk_warm);
  doc.set("scenario", std::move(scenario_runs));

  auto sweeps = rchls::json::Value::object();
  sweeps.set("cells", sweep.area_bounds.size()).set("local_s", t_local);
  for (int shards : {2, 4}) {
    rchls::api::SubprocessOptions so;
    so.shards = shards;
    so.worker_command = {rchls_bin.string(), "exec-request"};
    rchls::api::SubprocessExecutor sub(so);
    double t = seconds_of([&] { sub.run(sweep); });
    sweeps.set("shards_" + std::to_string(shards) + "_s", t);
  }
  doc.set("sweep", std::move(sweeps));

  std::filesystem::remove_all(cache_dir);
  std::cout << doc.dump(2) << "\n";
  return 0;
}

// perf_remote: fleet throughput of the remote executor -- the PR-9
// acceptance benchmark.
//
// Runs fleets of 1/2/4 in-process `rchls serve` daemons on unix
// sockets and drives them through the production remote path
// (remote::Fleet dispatch + remote::RemoteExecutor sweep sharding) --
// framing, least-outstanding routing, connection pooling and
// index-ordered merging are all on the measured path; only the process
// boundary is elided. Every fleet size measures two passes:
//
//   cold: requests no daemon has seen -> every one executes somewhere
//         in the fleet (throughput should grow with daemons: cold work
//         is engine-bound and daemons execute independently);
//   warm: the identical requests again. The daemons of a fleet SHARE
//         one cache directory, so a warm request is answered from
//         cache by WHICHEVER daemon the fleet routes it to -- memory
//         on a repeat daemon, disk otherwise -- and the acceptance
//         criterion is executed=0 across the whole fleet on this pass
//         (the JSON records the fleet-wide execution delta so the
//         claim is checkable).
//
// Each pass is two phases: a request phase (2 client threads per
// daemon calling Fleet::call synchronously -> rps + per-request
// p50/p95) and a sweep phase (one 8-cell sweep sharded across the
// fleet by RemoteExecutor -> wall time + mean slice round-trip from
// the fleet's latency counters).
//
// Standalone harness (like perf_serve): prints one JSON document to
// stdout; the checked-in BENCH_remote.json is a captured run. Usage:
//
//   ./build/perf_remote [--smoke]
//
// --smoke shrinks the per-client request count so CI can run every
// fleet size, both passes and the executed=0 assertion in seconds.
// Absolute numbers are machine-dependent; the cold-vs-warm ratio and
// the cold scaling across fleet sizes are the interesting part.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/request.hpp"
#include "benchmarks/suite.hpp"
#include "library/resource.hpp"
#include "remote/executor.hpp"
#include "remote/fleet.hpp"
#include "serve/server.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double percentile_ms(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

// Cheap but real engine work (same shape as perf_serve): distinct
// seeds per (level, client, index) make every request cold exactly
// once per level; the warm pass replays the same seeds.
rchls::api::Request workload_request(int level, int client, int index) {
  rchls::api::InjectRequest req;
  req.component = "ripple_carry_adder";
  req.width = 4;
  req.trials = 256;
  req.seed = static_cast<std::uint64_t>(level) * 1000000 +
             static_cast<std::uint64_t>(client) * 1000 +
             static_cast<std::uint64_t>(index) + 1;
  return rchls::api::Request(req);
}

rchls::api::SweepRequest sweep_request() {
  rchls::api::SweepRequest req;
  req.graph = rchls::benchmarks::by_name("fig4_example");
  req.library = rchls::library::paper_library();
  req.axis = rchls::api::SweepAxis::kArea;
  req.latency_bounds = {6};
  req.area_bounds = {5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0};
  return req;
}

// One daemon fleet, torn down per level so every fleet size starts
// cold.
struct Level {
  std::vector<std::unique_ptr<rchls::serve::Server>> daemons;
  std::unique_ptr<rchls::remote::RemoteExecutor> remote;

  std::uint64_t executions() const {
    std::uint64_t total = 0;
    for (const auto& d : daemons) total += d->executions();
    return total;
  }
};

Level start_level(const std::filesystem::path& dir, int endpoints) {
  Level level;
  rchls::remote::RemoteOptions ro;
  for (int i = 0; i < endpoints; ++i) {
    rchls::serve::ServerOptions so;
    so.socket_path = (dir / ("d" + std::to_string(i) + ".sock")).string();
    so.workers = 4;
    // The SHARED cache directory: what one daemon executed, every
    // daemon can answer -- the warm pass's executed=0 works at any
    // routing.
    so.session.cache_dir = (dir / "cache").string();
    level.daemons.push_back(
        std::make_unique<rchls::serve::Server>(std::move(so)));
    ro.fleet.endpoints.push_back(
        rchls::remote::parse_endpoint(level.daemons.back()->socket_path()));
  }
  level.remote = std::make_unique<rchls::remote::RemoteExecutor>(ro);
  return level;
}

struct PassResult {
  double seconds = 0.0;  // request phase wall time
  double requests_per_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::uint64_t requests = 0;
  double sweep_seconds = 0.0;
  std::uint64_t sweep_cells = 0;
  std::uint64_t sweep_slices = 0;
  double slice_latency_avg_ms = 0.0;  // mean slice round-trip
  std::uint64_t executed = 0;         // fleet-wide execution delta
};

PassResult run_pass(Level& level, int level_no, int per_client) {
  const int endpoints = static_cast<int>(level.daemons.size());
  const int clients = 2 * endpoints;
  const std::uint64_t executed_before = level.executions();
  rchls::remote::Fleet& fleet = level.remote->fleet();

  // Phase 1: synchronous fleet calls from independent client threads.
  std::vector<std::vector<double>> latencies(clients);
  auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        auto r0 = Clock::now();
        fleet.call(workload_request(level_no, c, i));
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - r0)
                .count());
      }
    });
  }
  for (auto& th : pool) th.join();

  PassResult pass;
  pass.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  pass.requests = all.size();
  pass.requests_per_s =
      pass.seconds > 0 ? static_cast<double>(all.size()) / pass.seconds : 0;
  pass.p50_ms = percentile_ms(all, 0.50);
  pass.p95_ms = percentile_ms(all, 0.95);

  // Phase 2: one sweep sharded across the fleet. Slice latency is the
  // fleet's completed-call latency delta over the sweep.
  double lat_before = 0.0, lat_after = 0.0;
  std::uint64_t done_before = 0, done_after = 0;
  for (const auto& s : fleet.stats()) {
    lat_before += s.latency_ms;
    done_before += s.completed;
  }
  rchls::api::SweepRequest sweep = sweep_request();
  auto s0 = Clock::now();
  rchls::api::SweepResult result = level.remote->run(sweep);
  pass.sweep_seconds = std::chrono::duration<double>(Clock::now() - s0).count();
  pass.sweep_cells = result.points.size();
  for (const auto& s : fleet.stats()) {
    lat_after += s.latency_ms;
    done_after += s.completed;
  }
  pass.sweep_slices = done_after - done_before;
  pass.slice_latency_avg_ms =
      pass.sweep_slices > 0
          ? (lat_after - lat_before) / static_cast<double>(pass.sweep_slices)
          : 0.0;

  pass.executed = level.executions() - executed_before;
  return pass;
}

rchls::json::Value to_json(const PassResult& pass) {
  auto sweep = rchls::json::Value::object();
  sweep.set("cells", pass.sweep_cells)
      .set("slices", pass.sweep_slices)
      .set("seconds", pass.sweep_seconds)
      .set("slice_latency_avg_ms", pass.slice_latency_avg_ms);
  auto doc = rchls::json::Value::object();
  doc.set("requests", pass.requests)
      .set("seconds", pass.seconds)
      .set("requests_per_s", pass.requests_per_s)
      .set("p50_ms", pass.p50_ms)
      .set("p95_ms", pass.p95_ms)
      .set("sweep", std::move(sweep))
      .set("executed", pass.executed);
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: perf_remote [--smoke]\n";
      return 1;
    }
  }
  const int per_client = smoke ? 4 : 32;

  const std::filesystem::path work_dir =
      std::filesystem::temp_directory_path() /
      ("rchls-perf-remote-" + std::to_string(rchls::current_pid()));
  std::filesystem::create_directories(work_dir);

  auto doc = rchls::json::Value::object();
  doc.set("bench", "perf_remote")
      .set("smoke", smoke)
      .set("requests_per_client", per_client)
      .set("clients_per_endpoint", 2);

  bool warm_executed_clean = true;
  auto levels = rchls::json::Value::array();
  int level_no = 0;
  for (int endpoints : {1, 2, 4}) {
    const std::filesystem::path level_dir =
        work_dir / ("level" + std::to_string(endpoints));
    std::filesystem::create_directories(level_dir);
    Level level = start_level(level_dir, endpoints);

    PassResult cold = run_pass(level, level_no, per_client);
    PassResult warm = run_pass(level, level_no, per_client);
    ++level_no;
    warm_executed_clean = warm_executed_clean && warm.executed == 0;

    auto entry = rchls::json::Value::object();
    entry.set("endpoints", endpoints)
        .set("clients", 2 * endpoints)
        .set("cold", to_json(cold))
        .set("warm", to_json(warm));
    levels.push(std::move(entry));
    std::cerr << "perf_remote: endpoints=" << endpoints
              << " cold_rps=" << cold.requests_per_s
              << " warm_rps=" << warm.requests_per_s
              << " slice_ms=" << cold.slice_latency_avg_ms
              << " warm_executed=" << warm.executed << "\n";

    for (auto& d : level.daemons) d->stop();
  }
  doc.set("levels", std::move(levels));
  // The acceptance bit: every warm pass replayed its level's exact cold
  // workload against a fleet sharing one cache directory, so a single
  // execution here is a cache or routing defect.
  doc.set("warm_executed_total_is_zero", warm_executed_clean);

  std::filesystem::remove_all(work_dir);
  std::cout << doc.dump(2) << "\n";
  return warm_executed_clean ? 0 : 1;
}

// Quickstart: build a small data-flow graph, synthesize it with the
// reliability-centric flow under latency/area bounds, and print the
// resulting schedule.
//
//   $ ./quickstart
//
// Walks through the three core objects of the library: the DFG, the
// reliability-characterized resource library (paper Table 1), and the
// Design returned by find_design().
#include <iostream>

#include "dfg/graph.hpp"
#include "hls/find_design.hpp"
#include "hls/report.hpp"
#include "library/resource.hpp"

int main() {
  using namespace rchls;

  // 1. Describe the computation: y = (a + b) * (c + d) + e, plus a
  //    comparison driving a loop exit -- five operations.
  dfg::Graph g("quickstart");
  auto sum1 = g.add_node("sum1", dfg::OpType::kAdd);
  auto sum2 = g.add_node("sum2", dfg::OpType::kAdd);
  auto prod = g.add_node("prod", dfg::OpType::kMul);
  auto acc = g.add_node("acc", dfg::OpType::kAdd);
  auto done = g.add_node("done", dfg::OpType::kLt);
  g.add_edge(sum1, prod);
  g.add_edge(sum2, prod);
  g.add_edge(prod, acc);
  g.add_edge(acc, done);

  // 2. Load the reliability-characterized library (paper Table 1): three
  //    adders and two multipliers with different area / delay /
  //    reliability points.
  library::ResourceLibrary lib = library::paper_library();

  // 3. Synthesize: maximize reliability subject to a 7-cycle latency bound
  //    and 6 area units.
  hls::Design d = hls::find_design(g, lib, /*latency_bound=*/7,
                                   /*area_bound=*/6.0);

  std::cout << "schedule:\n"
            << hls::schedule_table(d, g, lib) << "\n"
            << hls::design_summary(d, g, lib) << "\n";

  std::cout << "per-operation versions:\n";
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    const auto& v = lib.version(d.version_of[id]);
    std::cout << "  " << g.node(id).name << " -> " << v.name
              << " (R = " << v.reliability << ")\n";
  }
  return 0;
}

// Design-space exploration on the paper's flagship benchmark: the
// 16-point symmetric FIR filter. Compares, across a grid of latency/area
// bounds, the three synthesis engines:
//   * the Orailoglu-Karri NMR baseline [3],
//   * the reliability-centric approach (the paper's contribution),
//   * the combined approach (versions + redundancy).
//
//   $ ./fir_design_space [max_slack]
#include <cstdlib>
#include <iostream>

#include "benchmarks/suite.hpp"
#include "dfg/timing.hpp"
#include "hls/explore.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rchls;
  int max_slack = argc > 1 ? std::atoi(argv[1]) : 4;
  if (max_slack < 0 || max_slack > 32) {
    std::cerr << "usage: fir_design_space [max_slack in 0..32]\n";
    return 1;
  }

  auto g = benchmarks::fir16();
  auto lib = library::paper_library();

  // Anchor the grid at the benchmark's own minimum latency.
  std::vector<int> unit(g.node_count(), 1);
  int lmin = dfg::asap_latency(g, unit);

  std::vector<int> lds;
  for (int s = 2; s <= 2 + max_slack; s += 2) lds.push_back(lmin + s);
  std::vector<double> ads{8, 11, 14, 20};

  hls::GridOptions opts;
  opts.find_design.enable_polish = true;
  opts.combined.find_design.enable_polish = true;

  auto rows = hls::comparison_grid(g, lib, lds, ads, opts);
  Table t({"Ld", "Ad", "NMR baseline [3]", "reliability-centric",
           "combined", "centric vs [3]"});
  for (const auto& r : rows) {
    t.add_row({std::to_string(r.latency_bound), format_fixed(r.area_bound, 0),
               r.baseline ? format_fixed(*r.baseline, 5) : "no sol.",
               r.ours ? format_fixed(*r.ours, 5) : "no sol.",
               r.combined ? format_fixed(*r.combined, 5) : "no sol.",
               r.improvement_ours
                   ? format_fixed(*r.improvement_ours, 2) + "%"
                   : "-"});
  }
  std::cout << "FIR16 design space (minimum latency " << lmin << "):\n"
            << t.render();

  auto avg = hls::grid_averages(rows);
  std::cout << "\naverages over " << avg.solved_cells << "/"
            << avg.total_cells << " commonly solved cells: baseline "
            << format_fixed(avg.baseline, 5) << ", centric "
            << format_fixed(avg.ours, 5) << ", combined "
            << format_fixed(avg.combined, 5) << "\n";
  return 0;
}

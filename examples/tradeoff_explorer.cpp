// The paper's future-work objectives (Section 8) in action: read a DFG
// from a file (or use the built-in DiffEq), then
//   * minimize area under reliability + latency constraints, and
//   * minimize latency under reliability + area constraints,
// printing the frontier the two searches trace out.
//
//   $ ./tradeoff_explorer [dfg-file]
//
// DFG file format (see src/dfg/io.hpp):
//   dfg  mydesign
//   node t1 add
//   node t2 mul
//   edge t1 t2
#include <fstream>
#include <iostream>

#include "benchmarks/suite.hpp"
#include "dfg/io.hpp"
#include "hls/objectives.hpp"
#include "hls/report.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rchls;

  dfg::Graph g("unset");
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open '" << argv[1] << "'\n";
      return 1;
    }
    try {
      g = dfg::parse(in);
    } catch (const Error& e) {
      std::cerr << "parse error: " << e.what() << "\n";
      return 1;
    }
  } else {
    g = benchmarks::diffeq();
  }
  auto lib = library::paper_library();
  std::cout << "graph '" << g.name() << "': " << g.node_count()
            << " operations, " << g.edge_count() << " dependences\n\n";

  // Frontier 1: cheapest design achieving each reliability target at a
  // fixed latency bound.
  const int ld = 10;
  Table t1({"target R", "achieved R", "area", "latency"});
  for (double target : {0.70, 0.80, 0.90, 0.95}) {
    try {
      hls::Design d = hls::minimize_area(g, lib, ld, target);
      t1.add_row({format_fixed(target, 2), format_fixed(d.reliability, 5),
                  format_fixed(d.area, 1), std::to_string(d.latency)});
    } catch (const NoSolutionError&) {
      t1.add_row({format_fixed(target, 2), "unreachable", "-", "-"});
    }
  }
  std::cout << "minimize AREA s.t. R >= target, L <= " << ld << ":\n"
            << t1.render() << "\n";

  // Frontier 2: fastest design achieving each reliability target at a
  // fixed area bound.
  const double ad = 12.0;
  Table t2({"target R", "achieved R", "latency", "area"});
  for (double target : {0.70, 0.80, 0.90, 0.95}) {
    try {
      hls::Design d = hls::minimize_latency(g, lib, ad, target);
      t2.add_row({format_fixed(target, 2), format_fixed(d.reliability, 5),
                  std::to_string(d.latency), format_fixed(d.area, 1)});
    } catch (const NoSolutionError&) {
      t2.add_row({format_fixed(target, 2), "unreachable", "-", "-"});
    }
  }
  std::cout << "minimize LATENCY s.t. R >= target, A <= " << ad << ":\n"
            << t2.render();
  return 0;
}

// End-to-end custom characterization: generate the arithmetic circuits at
// a chosen bit width, characterize them with Monte-Carlo fault injection
// (the executable substitute for the paper's MAX/HSPICE flow), build a
// ResourceLibrary from the measurements, and synthesize a benchmark with
// it -- the full Section 4 -> Section 6 pipeline on YOUR technology
// numbers instead of Table 1.
//
//   $ ./custom_library [width] [trials]
#include <cstdlib>
#include <iostream>

#include "benchmarks/suite.hpp"
#include "dfg/timing.hpp"
#include "hls/find_design.hpp"
#include "hls/report.hpp"
#include "ser/characterize.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rchls;
  int width = argc > 1 ? std::atoi(argv[1]) : 12;
  long trials = argc > 2 ? std::atol(argv[2]) : 64 * 256;
  if (width < 2 || width > 32 || trials < 64) {
    std::cerr << "usage: custom_library [width in 2..32] [trials >= 64]\n";
    return 1;
  }

  // 1. Characterize the five components at this width.
  ser::CharacterizeConfig cfg;
  cfg.width = width;
  cfg.injection.trials = static_cast<std::size_t>(trials);
  auto comps = ser::characterize_components(cfg);

  Table t({"component", "gates", "area", "delay", "reliability"});
  for (const auto& c : comps) {
    t.add_row({c.name, std::to_string(c.gate_count),
               format_fixed(c.area_units, 2), std::to_string(c.delay_cycles),
               format_fixed(c.reliability, 5)});
  }
  std::cout << "characterized at width " << width << ":\n" << t.render();

  // 2. Turn the measurements into a resource library.
  library::ResourceLibrary lib;
  for (const auto& c : comps) {
    library::ResourceVersion v;
    v.name = c.name;
    v.cls = c.cls == ser::ComponentClass::kAdder
                ? library::ResourceClass::kAdder
                : library::ResourceClass::kMultiplier;
    v.area = c.area_units;
    v.delay = c.delay_cycles;
    v.reliability = c.reliability;
    lib.add(v);
  }

  // 3. Synthesize DiffEq against the measured library. Bounds are chosen
  //    relative to the characterized delays.
  auto g = benchmarks::diffeq();
  std::vector<library::VersionId> fastest(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    fastest[id] = lib.fastest(library::class_of(g.node(id).op));
  }
  int lmin = 0;
  {
    auto delays = hls::delays_for(g, lib, fastest);
    lmin = dfg::asap_latency(g, delays);
  }

  // The measured areas live on their own scale (normalized to this
  // width's ripple-carry adder), so start the area budget at "two of the
  // cheapest unit per class" and grow until feasible.
  auto cheapest_area = [&](library::ResourceClass cls) {
    double best = 1e9;
    for (auto v : lib.versions_of(cls)) {
      best = std::min(best, lib.version(v).area);
    }
    return best;
  };
  double ad = 2.0 * (cheapest_area(library::ResourceClass::kAdder) +
                     cheapest_area(library::ResourceClass::kMultiplier));
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      hls::Design d = hls::find_design(g, lib, lmin + 3, ad);
      std::cout << "\nDiffEq synthesized under (Ld=" << lmin + 3
                << ", Ad=" << format_fixed(ad, 1) << "):\n"
                << hls::design_summary(d, g, lib);
      return 0;
    } catch (const NoSolutionError&) {
      ad *= 1.5;  // loosen and retry
    }
  }
  std::cerr << "no feasible design found; try more area or latency\n";
  return 1;
}

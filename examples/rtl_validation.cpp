// Closing the loop: validate the analytic reliability model against
// gate-level fault injection on the ELABORATED designs.
//
// Two FIR data paths are synthesized -- the uniform type-2 design and the
// reliability-centric design of paper Fig. 7 -- then both are expanded to
// flat gate-level netlists (src/rtl) and bombarded with single-event
// transients. The design the model calls more reliable should also show
// the lower gate-level susceptibility-per-strike... weighted by its strike
// cross-section (gate count), which is exactly how the Section 4 chain
// composes component SERs.
//
//   $ ./rtl_validation [trials]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "benchmarks/suite.hpp"
#include "hls/baseline.hpp"
#include "hls/find_design.hpp"
#include "rtl/datapath.hpp"
#include "rtl/elaborate.hpp"
#include "ser/characterize.hpp"
#include "ser/fault_injection.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rchls;
  long trials = argc > 1 ? std::atol(argv[1]) : 64 * 2048;
  if (trials < 64) {
    std::cerr << "usage: rtl_validation [trials >= 64]\n";
    return 1;
  }

  auto g = benchmarks::fir16();
  auto lib = library::paper_library();

  hls::Design uniform = hls::minimal_allocation_design(
      g, lib, lib.find("adder_2"), lib.find("mult_2"), 11);
  hls::Design centric = hls::find_design(g, lib, 11, 11.0);

  ser::InjectionConfig cfg;
  cfg.trials = static_cast<std::size_t>(trials);

  rtl::Elaboration uniform_e = rtl::elaborate(g, lib, uniform.version_of, 8);
  rtl::Elaboration centric_e = rtl::elaborate(g, lib, centric.version_of, 8);

  Table t({"design", "model R", "gates", "logical sens.",
           "rel. strike rate"});
  double ref_rate = 0.0;
  struct Row {
    const char* name;
    const hls::Design* d;
    const rtl::Elaboration* e;
  };
  for (const Row& row : {Row{"uniform type-2", &uniform, &uniform_e},
                         Row{"reliability-centric", &centric, &centric_e}}) {
    const auto& [name, d, ep] = row;
    const rtl::Elaboration& e = *ep;
    auto r = ser::inject_campaign(e.netlist, cfg);
    // Strike rate ∝ sensitive area (gates) x propagation probability.
    double rate = static_cast<double>(e.netlist.gate_count()) *
                  r.logical_sensitivity;
    if (ref_rate == 0.0) ref_rate = rate;
    t.add_row({name, format_fixed(d->reliability, 5),
               std::to_string(e.netlist.gate_count()),
               format_fixed(r.logical_sensitivity, 4),
               format_fixed(rate / ref_rate, 3)});
  }
  std::cout << t.render()
            << "\nInterpretation: the centric design replaces fast prefix "
               "logic with\nsmaller ripple/carry-save structures (higher "
               "Qcritical in Table 1);\nthe elaborated netlist view adds "
               "the structural part of the story:\nfewer, more maskable "
               "gates -> lower relative strike rate.\n\n";

  // Per-node view of the centric design: every gate of the elaborated
  // netlist characterized in one shared-golden sweep on the cone-limited
  // FaultEngine (the nodes a layout-level hardening pass would shield
  // first).
  ser::InjectionConfig node_cfg;
  node_cfg.trials = 64 * 32;
  auto ranked = ser::rank_gate_sensitivities(centric_e.netlist, node_cfg);
  Table nodes({"gate", "logical sens.", "+/- 95%"});
  for (std::size_t i = 0; i < std::min<std::size_t>(ranked.size(), 5); ++i) {
    nodes.add_row({std::to_string(ranked[i].gate),
                   format_fixed(ranked[i].result.logical_sensitivity, 4),
                   format_fixed(ranked[i].result.half_width_95, 4)});
  }
  std::cout << "most sensitive nodes of the centric design ("
            << ranked.size() << " gates characterized):\n"
            << nodes.render() << "\n";

  // Also print the micro-architecture of the centric design.
  rtl::DatapathModel m = rtl::build_datapath(centric, g, lib);
  std::cout << rtl::to_string(m, g);
  return 0;
}

// rchls: command-line reliability-centric HLS.
//
// The whole CLI lives in the core library (api/cli.hpp) so tests can
// drive it in-process; this wrapper only adapts argv and the standard
// streams. Run `rchls` with no arguments for usage, subcommands, flags
// and the exit-code contract (docs/api.md documents the api facade the
// subcommands are thin clients of; docs/wire-protocol.md the
// `exec-request` worker mode and the `cache` subcommand's on-disk
// layout). Note for sharded runs: `--shards` re-invokes THIS executable
// (resolved via /proc/self/exe) as its worker processes.
#include <iostream>
#include <string>
#include <vector>

#include "api/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return rchls::api::cli_main(args, std::cout, std::cerr);
}

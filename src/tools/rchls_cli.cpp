// rchls: command-line reliability-centric HLS.
//
//   rchls run     <scenario.scn> [--format json|csv|table] [--out FILE]
//   rchls synth   <dfg-file|benchmark> --latency N --area A
//                 [--engine centric|baseline|combined] [--polish]
//                 [--scheduler density|fds] [--datapath]
//   rchls sweep   <dfg-file|benchmark> --latency N --areas A1,A2,...
//   rchls inject  <component> [--width W] [--trials N] [--gate G] [--top K]
//   rchls bench   (list built-in benchmark graphs)
//
// `run` executes a declarative scenario file (docs/scenario-format.md):
// a DFG, a resource library, constraint sets and a list of actions, with
// results rendered as a human table (default), JSON or CSV. Infeasible
// bounds inside a scenario are reported as unsolved results, not errors.
//
// The global --jobs N flag sets the worker count for parallel sweeps and
// injection campaigns (default: hardware concurrency). Results are
// bit-identical at every worker count.
//
// Exit codes: 0 success, 1 usage/parse error, 2 no solution within
// bounds (synth only).
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "benchmarks/suite.hpp"
#include "circuits/components.hpp"
#include "dfg/io.hpp"
#include "hls/baseline.hpp"
#include "hls/combined.hpp"
#include "hls/explore.hpp"
#include "hls/find_design.hpp"
#include "hls/report.hpp"
#include "netlist/stats.hpp"
#include "parallel/config.hpp"
#include "rtl/datapath.hpp"
#include "scenario/parse.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "ser/characterize.hpp"
#include "ser/fault_injection.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rchls;

int usage() {
  std::cerr <<
      "usage:\n"
      "  rchls run <scenario.scn> [--format json|csv|table] [--out FILE]\n"
      "  rchls synth <dfg-file|benchmark> --latency N --area A\n"
      "              [--engine centric|baseline|combined] [--polish]\n"
      "              [--scheduler density|fds] [--datapath]\n"
      "  rchls sweep <dfg-file|benchmark> --latency N --areas A1,A2,...\n"
      "  rchls inject <component> [--width W] [--trials N] [--gate G]\n"
      "               [--top K]\n"
      "  rchls bench\n"
      "inject components: ripple_carry_adder brent_kung_adder\n"
      "  kogge_stone_adder carry_save_multiplier leapfrog_multiplier\n"
      "global flags:\n"
      "  --jobs N    parallel workers (default: hardware concurrency)\n"
      "scenario format reference: docs/scenario-format.md\n";
  return 1;
}

dfg::Graph load_graph(const std::string& spec) {
  for (const auto& name : benchmarks::all_names()) {
    if (name == spec) return benchmarks::by_name(spec);
  }
  std::ifstream in(spec);
  if (!in) throw Error("cannot open '" + spec + "' (and it is not a "
                       "built-in benchmark name)");
  return dfg::parse(in);
}

struct Args {
  std::string command;
  std::string graph_spec;
  std::optional<int> latency;
  std::optional<double> area;
  std::vector<double> areas;
  std::string engine = "centric";
  std::string scheduler = "density";
  bool polish = false;
  bool datapath = false;
  int width = 16;
  std::size_t trials = 64 * 256;
  std::optional<netlist::GateId> gate;
  int top = 0;
  std::string format = "table";
  std::string out;
};

std::optional<Args> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args a;
  a.command = argv[1];
  int i = 2;
  if (a.command != "bench") {
    if (argc < 3) return std::nullopt;
    a.graph_spec = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (flag == "--latency") {
      auto v = next();
      if (!v) return std::nullopt;
      a.latency = std::atoi(v->c_str());
    } else if (flag == "--area") {
      auto v = next();
      if (!v) return std::nullopt;
      a.area = std::atof(v->c_str());
    } else if (flag == "--areas") {
      auto v = next();
      if (!v) return std::nullopt;
      for (const auto& tok : split(*v, ',')) {
        a.areas.push_back(std::atof(tok.c_str()));
      }
    } else if (flag == "--engine") {
      auto v = next();
      if (!v) return std::nullopt;
      a.engine = *v;
    } else if (flag == "--scheduler") {
      auto v = next();
      if (!v) return std::nullopt;
      a.scheduler = *v;
    } else if (flag == "--jobs") {
      auto v = next();
      if (!v) return std::nullopt;
      int jobs = std::atoi(v->c_str());
      if (jobs < 1) {
        std::cerr << "--jobs needs a positive worker count\n";
        return std::nullopt;
      }
      parallel::set_global_jobs(static_cast<std::size_t>(jobs));
    } else if (flag == "--width") {
      auto v = next();
      if (!v) return std::nullopt;
      a.width = std::atoi(v->c_str());
    } else if (flag == "--trials") {
      auto v = next();
      if (!v) return std::nullopt;
      long t = std::atol(v->c_str());
      if (t < 1) {
        std::cerr << "--trials needs a positive count\n";
        return std::nullopt;
      }
      a.trials = static_cast<std::size_t>(t);
    } else if (flag == "--gate") {
      auto v = next();
      if (!v) return std::nullopt;
      a.gate = static_cast<netlist::GateId>(std::atol(v->c_str()));
    } else if (flag == "--top") {
      auto v = next();
      if (!v) return std::nullopt;
      a.top = std::atoi(v->c_str());
    } else if (flag == "--format") {
      auto v = next();
      if (!v) return std::nullopt;
      if (*v != "json" && *v != "csv" && *v != "table") {
        std::cerr << "--format must be json, csv or table\n";
        return std::nullopt;
      }
      a.format = *v;
    } else if (flag == "--out") {
      auto v = next();
      if (!v) return std::nullopt;
      a.out = *v;
    } else if (flag == "--polish") {
      a.polish = true;
    } else if (flag == "--datapath") {
      a.datapath = true;
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return std::nullopt;
    }
  }
  if (a.command != "run" && (a.format != "table" || !a.out.empty())) {
    std::cerr << "--format/--out only apply to 'rchls run'\n";
    return std::nullopt;
  }
  return a;
}

int run_synth(const Args& a) {
  if (!a.latency || !a.area) {
    std::cerr << "synth needs --latency and --area\n";
    return 1;
  }
  dfg::Graph g = load_graph(a.graph_spec);
  auto lib = library::paper_library();

  hls::FindDesignOptions fd;
  fd.enable_polish = a.polish;
  if (a.scheduler == "fds") {
    fd.scheduler = hls::SchedulerKind::kForceDirected;
  } else if (a.scheduler != "density") {
    std::cerr << "unknown scheduler '" << a.scheduler << "'\n";
    return 1;
  }

  hls::Design d;
  try {
    if (a.engine == "centric") {
      d = hls::find_design(g, lib, *a.latency, *a.area, fd);
    } else if (a.engine == "baseline") {
      d = hls::nmr_baseline(g, lib, *a.latency, *a.area);
    } else if (a.engine == "combined") {
      hls::CombinedOptions co;
      co.find_design = fd;
      d = hls::combined_design(g, lib, *a.latency, *a.area, co);
    } else {
      std::cerr << "unknown engine '" << a.engine << "'\n";
      return 1;
    }
  } catch (const NoSolutionError& e) {
    std::cerr << "no solution: " << e.what() << "\n";
    return 2;
  }

  std::cout << hls::schedule_table(d, g, lib)
            << hls::design_summary(d, g, lib);
  if (a.datapath) {
    std::cout << "\n" << rtl::to_string(rtl::build_datapath(d, g, lib), g);
  }
  return 0;
}

int run_sweep(const Args& a) {
  if (!a.latency || a.areas.empty()) {
    std::cerr << "sweep needs --latency and --areas\n";
    return 1;
  }
  dfg::Graph g = load_graph(a.graph_spec);
  auto lib = library::paper_library();
  hls::FindDesignOptions fd;
  fd.enable_polish = a.polish;
  auto points = hls::area_sweep(g, lib, *a.latency, a.areas, fd);
  std::cout << hls::to_csv(points);
  return 0;
}

int run_scenario(const Args& a) {
  scenario::Scenario scn = scenario::parse_file(a.graph_spec);
  scenario::RunReport report = scenario::run(scn);

  std::string rendered;
  if (a.format == "json") {
    rendered = scenario::report::to_json(report);
  } else if (a.format == "csv") {
    rendered = scenario::report::to_csv(report);
  } else {
    rendered = scenario::report::to_table(report);
  }

  if (a.out.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream out(a.out);
    if (!out) throw Error("cannot open output file '" + a.out + "'");
    out << rendered;
    out.flush();
    if (!out) {
      throw Error("failed writing output file '" + a.out + "'");
    }
  }
  return 0;
}

int run_inject(const Args& a) {
  if (a.width < 1) {
    std::cerr << "inject needs a positive --width\n";
    return 1;
  }
  netlist::Netlist nl = circuits::component_by_name(a.graph_spec, a.width);
  netlist::Stats stats = netlist::compute_stats(nl);

  ser::InjectionConfig cfg;
  cfg.trials = a.trials;

  auto t0 = std::chrono::steady_clock::now();
  ser::InjectionResult r = a.gate ? ser::inject_gate(nl, *a.gate, cfg)
                                  : ser::inject_campaign(nl, cfg);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  std::cout << a.graph_spec << " (width " << a.width << "): "
            << nl.gate_count() << " gates, " << stats.logic_gates
            << " logic, depth " << format_fixed(stats.depth, 1) << "\n"
            << "strikes:       " << r.trials
            << (a.gate ? " on gate " + std::to_string(*a.gate) : "") << "\n"
            << "propagated:    " << r.propagated << "\n"
            << "sensitivity:   " << format_fixed(r.logical_sensitivity, 5)
            << " +/- " << format_fixed(r.half_width_95, 5)
            << " (95% Wilson)\n"
            << "susceptibility: " << format_fixed(r.susceptibility, 5)
            << "\n"
            << "wall time:     " << format_fixed(wall_ms, 1) << " ms ("
            << format_fixed(static_cast<double>(r.trials) / wall_ms, 0)
            << " strikes/ms, " << parallel::global_jobs() << " workers)\n";

  if (a.top > 0) {
    auto ranked = ser::rank_gate_sensitivities(nl, cfg);
    Table t({"gate", "kind", "sensitivity", "+/- 95%"});
    for (std::size_t i = 0;
         i < std::min<std::size_t>(ranked.size(),
                                   static_cast<std::size_t>(a.top));
         ++i) {
      const auto& gs = ranked[i];
      t.add_row({std::to_string(gs.gate),
                 netlist::to_string(nl.gate(gs.gate).kind),
                 format_fixed(gs.result.logical_sensitivity, 5),
                 format_fixed(gs.result.half_width_95, 5)});
    }
    std::cout << "\nmost sensitive nodes (shared-golden per-node sweep):\n"
              << t.render();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse_args(argc, argv);
  if (!args) return usage();
  try {
    if (args->command == "bench") {
      for (const auto& name : benchmarks::all_names()) {
        auto g = benchmarks::by_name(name);
        std::cout << name << ": " << g.node_count() << " ops ("
                  << g.count_ops(dfg::OpType::kMul) << " mul)\n";
      }
      return 0;
    }
    if (args->command == "run") return run_scenario(*args);
    if (args->command == "synth") return run_synth(*args);
    if (args->command == "sweep") return run_sweep(*args);
    if (args->command == "inject") return run_inject(*args);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}

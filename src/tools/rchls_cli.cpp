// rchls: command-line reliability-centric HLS.
//
//   rchls synth   <dfg-file|benchmark> --latency N --area A
//                 [--engine centric|baseline|combined] [--polish]
//                 [--scheduler density|fds] [--datapath]
//   rchls sweep   <dfg-file|benchmark> --latency N --areas A1,A2,...
//   rchls bench   (list built-in benchmark graphs)
//
// The global --jobs N flag sets the worker count for parallel sweeps and
// injection campaigns (default: hardware concurrency). Results are
// bit-identical at every worker count.
//
// Exit codes: 0 success, 1 usage error, 2 no solution within bounds.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "benchmarks/suite.hpp"
#include "dfg/io.hpp"
#include "hls/baseline.hpp"
#include "hls/combined.hpp"
#include "hls/explore.hpp"
#include "hls/find_design.hpp"
#include "hls/report.hpp"
#include "parallel/config.hpp"
#include "rtl/datapath.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

using namespace rchls;

int usage() {
  std::cerr <<
      "usage:\n"
      "  rchls synth <dfg-file|benchmark> --latency N --area A\n"
      "              [--engine centric|baseline|combined] [--polish]\n"
      "              [--scheduler density|fds] [--datapath]\n"
      "  rchls sweep <dfg-file|benchmark> --latency N --areas A1,A2,...\n"
      "  rchls bench\n"
      "global flags:\n"
      "  --jobs N    parallel workers (default: hardware concurrency)\n";
  return 1;
}

dfg::Graph load_graph(const std::string& spec) {
  for (const auto& name : benchmarks::all_names()) {
    if (name == spec) return benchmarks::by_name(spec);
  }
  std::ifstream in(spec);
  if (!in) throw Error("cannot open '" + spec + "' (and it is not a "
                       "built-in benchmark name)");
  return dfg::parse(in);
}

struct Args {
  std::string command;
  std::string graph_spec;
  std::optional<int> latency;
  std::optional<double> area;
  std::vector<double> areas;
  std::string engine = "centric";
  std::string scheduler = "density";
  bool polish = false;
  bool datapath = false;
};

std::optional<Args> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args a;
  a.command = argv[1];
  int i = 2;
  if (a.command != "bench") {
    if (argc < 3) return std::nullopt;
    a.graph_spec = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (flag == "--latency") {
      auto v = next();
      if (!v) return std::nullopt;
      a.latency = std::atoi(v->c_str());
    } else if (flag == "--area") {
      auto v = next();
      if (!v) return std::nullopt;
      a.area = std::atof(v->c_str());
    } else if (flag == "--areas") {
      auto v = next();
      if (!v) return std::nullopt;
      for (const auto& tok : split(*v, ',')) {
        a.areas.push_back(std::atof(tok.c_str()));
      }
    } else if (flag == "--engine") {
      auto v = next();
      if (!v) return std::nullopt;
      a.engine = *v;
    } else if (flag == "--scheduler") {
      auto v = next();
      if (!v) return std::nullopt;
      a.scheduler = *v;
    } else if (flag == "--jobs") {
      auto v = next();
      if (!v) return std::nullopt;
      int jobs = std::atoi(v->c_str());
      if (jobs < 1) {
        std::cerr << "--jobs needs a positive worker count\n";
        return std::nullopt;
      }
      parallel::set_global_jobs(static_cast<std::size_t>(jobs));
    } else if (flag == "--polish") {
      a.polish = true;
    } else if (flag == "--datapath") {
      a.datapath = true;
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return std::nullopt;
    }
  }
  return a;
}

int run_synth(const Args& a) {
  if (!a.latency || !a.area) {
    std::cerr << "synth needs --latency and --area\n";
    return 1;
  }
  dfg::Graph g = load_graph(a.graph_spec);
  auto lib = library::paper_library();

  hls::FindDesignOptions fd;
  fd.enable_polish = a.polish;
  if (a.scheduler == "fds") {
    fd.scheduler = hls::SchedulerKind::kForceDirected;
  } else if (a.scheduler != "density") {
    std::cerr << "unknown scheduler '" << a.scheduler << "'\n";
    return 1;
  }

  hls::Design d;
  try {
    if (a.engine == "centric") {
      d = hls::find_design(g, lib, *a.latency, *a.area, fd);
    } else if (a.engine == "baseline") {
      d = hls::nmr_baseline(g, lib, *a.latency, *a.area);
    } else if (a.engine == "combined") {
      hls::CombinedOptions co;
      co.find_design = fd;
      d = hls::combined_design(g, lib, *a.latency, *a.area, co);
    } else {
      std::cerr << "unknown engine '" << a.engine << "'\n";
      return 1;
    }
  } catch (const NoSolutionError& e) {
    std::cerr << "no solution: " << e.what() << "\n";
    return 2;
  }

  std::cout << hls::schedule_table(d, g, lib)
            << hls::design_summary(d, g, lib);
  if (a.datapath) {
    std::cout << "\n" << rtl::to_string(rtl::build_datapath(d, g, lib), g);
  }
  return 0;
}

int run_sweep(const Args& a) {
  if (!a.latency || a.areas.empty()) {
    std::cerr << "sweep needs --latency and --areas\n";
    return 1;
  }
  dfg::Graph g = load_graph(a.graph_spec);
  auto lib = library::paper_library();
  hls::FindDesignOptions fd;
  fd.enable_polish = a.polish;
  auto points = hls::area_sweep(g, lib, *a.latency, a.areas, fd);
  std::cout << hls::to_csv(points);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse_args(argc, argv);
  if (!args) return usage();
  try {
    if (args->command == "bench") {
      for (const auto& name : benchmarks::all_names()) {
        auto g = benchmarks::by_name(name);
        std::cout << name << ": " << g.node_count() << " ops ("
                  << g.count_ops(dfg::OpType::kMul) << " mul)\n";
      }
      return 0;
    }
    if (args->command == "synth") return run_synth(*args);
    if (args->command == "sweep") return run_sweep(*args);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}

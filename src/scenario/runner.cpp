#include "scenario/runner.hpp"

#include "util/error.hpp"

namespace rchls::scenario {

namespace {

// Action -> request mapping: attach the scenario's graph/library context
// to the action's option payload. The graph parameter is only read for
// the three synthesis actions, whose callers have checked it exists.

api::FindDesignRequest to_request(const FindDesignAction& a,
                                  const dfg::Graph& g,
                                  const library::ResourceLibrary& lib) {
  api::FindDesignRequest req;
  req.graph = g;
  req.library = lib;
  req.latency_bound = a.latency_bound;
  req.area_bound = a.area_bound;
  req.engine = a.engine;
  req.options = a.options;
  req.baseline_versions = a.baseline_versions;
  return req;
}

api::SweepRequest to_request(const SweepAction& a, const dfg::Graph& g,
                             const library::ResourceLibrary& lib) {
  api::SweepRequest req;
  req.graph = g;
  req.library = lib;
  req.axis = a.axis;
  req.latency_bounds = a.latency_bounds;
  req.area_bounds = a.area_bounds;
  req.options = a.options;
  return req;
}

api::GridRequest to_request(const GridAction& a, const dfg::Graph& g,
                            const library::ResourceLibrary& lib) {
  api::GridRequest req;
  req.graph = g;
  req.library = lib;
  req.latency_bounds = a.latency_bounds;
  req.area_bounds = a.area_bounds;
  req.options = a.options;
  req.baseline_versions = a.baseline_versions;
  return req;
}

api::InjectRequest to_request(const InjectAction& a) {
  api::InjectRequest req;
  req.component = a.component;
  req.width = a.width;
  req.trials = a.trials;
  req.seed = a.seed;
  req.gate = a.gate;
  return req;
}

api::RankGatesRequest to_request(const RankGatesAction& a) {
  api::RankGatesRequest req;
  req.component = a.component;
  req.width = a.width;
  req.trials = a.trials;
  req.seed = a.seed;
  req.top = a.top;
  return req;
}

api::StaRequest to_request(const StaAction& a,
                           const std::optional<dfg::Graph>& g,
                           const library::ResourceLibrary& lib) {
  api::StaRequest req;
  req.component = a.component;
  if (a.component.empty()) {
    // Graph-shaped: the caller has checked the scenario declares one.
    req.graph = g;
    req.library = lib;
    req.versions = a.versions;
  }
  req.width = a.width;
  req.clock = a.clock;
  req.top_paths = a.top_paths;
  req.top = a.top;
  req.trials = a.trials;
  req.seed = a.seed;
  return req;
}

}  // namespace

RunReport run(const Scenario& scn, api::Session& session) {
  RunReport report;
  report.scenario_name = scn.name;
  report.graph = scn.graph;
  report.library = scn.library;

  // Map every action to its request up front, then hand the whole
  // scenario to the session as ONE batch: against a batching executor
  // (remote/executor.hpp) independent actions spread across the fleet
  // in one dispatch, against everything else the session falls back to
  // the serial per-action loop this function used to be. Results come
  // back index-aligned with the actions either way.
  std::vector<api::Request> requests;
  requests.reserve(scn.actions.size());
  for (const auto& action : scn.actions) {
    // The parser enforces this for .scn files; guard hand-built Scenarios.
    bool needs_graph = !std::holds_alternative<InjectAction>(action.op) &&
                       !std::holds_alternative<RankGatesAction>(action.op);
    if (const auto* st = std::get_if<StaAction>(&action.op)) {
      needs_graph = st->component.empty();
    }
    if (needs_graph && !scn.graph) {
      throw Error("action '" + action.label +
                  "' needs a graph, but the scenario has none");
    }
    if (const auto* fd = std::get_if<FindDesignAction>(&action.op)) {
      requests.emplace_back(to_request(*fd, *scn.graph, scn.library));
    } else if (const auto* sw = std::get_if<SweepAction>(&action.op)) {
      requests.emplace_back(to_request(*sw, *scn.graph, scn.library));
    } else if (const auto* gr = std::get_if<GridAction>(&action.op)) {
      requests.emplace_back(to_request(*gr, *scn.graph, scn.library));
    } else if (const auto* in = std::get_if<InjectAction>(&action.op)) {
      requests.emplace_back(to_request(*in));
    } else if (const auto* st = std::get_if<StaAction>(&action.op)) {
      requests.emplace_back(to_request(*st, scn.graph, scn.library));
    } else {
      requests.emplace_back(
          to_request(std::get<RankGatesAction>(action.op)));
    }
  }

  std::vector<api::Result> results;
  try {
    results = session.run_batch(requests);
  } catch (const api::BatchItemError& e) {
    const auto& action = scn.actions[e.index()];
    throw Error("action '" + action.label + "' (line " +
                std::to_string(action.line) + "): " + e.what());
  }

  report.actions.reserve(scn.actions.size());
  for (std::size_t i = 0; i < scn.actions.size(); ++i) {
    ActionResult out;
    out.label = scn.actions[i].label;
    out.line = scn.actions[i].line;
    out.data = std::move(results[i]);
    report.actions.push_back(std::move(out));
  }
  return report;
}

RunReport run(const Scenario& scn) {
  api::Session session;
  return run(scn, session);
}

}  // namespace rchls::scenario

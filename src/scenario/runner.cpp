#include "scenario/runner.hpp"

#include "circuits/components.hpp"
#include "hls/baseline.hpp"
#include "hls/combined.hpp"
#include "hls/find_design.hpp"
#include "netlist/stats.hpp"
#include "ser/characterize.hpp"
#include "util/error.hpp"

namespace rchls::scenario {

namespace {

FindDesignResult run_find_design(const FindDesignAction& a,
                                 const dfg::Graph& g,
                                 const library::ResourceLibrary& lib) {
  FindDesignResult r;
  r.engine = a.engine;
  r.latency_bound = a.latency_bound;
  r.area_bound = a.area_bound;
  try {
    if (a.engine == "centric") {
      r.design = hls::find_design(g, lib, a.latency_bound, a.area_bound,
                                  a.options);
    } else if (a.engine == "baseline") {
      hls::BaselineOptions bo;
      if (a.baseline_versions) {
        bo.fixed_versions = {{lib.find(a.baseline_versions->first),
                              lib.find(a.baseline_versions->second)}};
      }
      r.design =
          hls::nmr_baseline(g, lib, a.latency_bound, a.area_bound, bo);
    } else {  // "combined", enforced by the parser
      hls::CombinedOptions co;
      co.find_design = a.options;
      r.design = hls::combined_design(g, lib, a.latency_bound, a.area_bound,
                                      co);
    }
    r.solved = true;
  } catch (const NoSolutionError& e) {
    r.solved = false;
    r.no_solution_reason = e.what();
  }
  return r;
}

SweepResult run_sweep(const SweepAction& a, const dfg::Graph& g,
                      const library::ResourceLibrary& lib) {
  SweepResult r;
  r.axis = a.axis;
  if (a.axis == SweepAction::Axis::kLatency) {
    r.points = hls::latency_sweep(g, lib, a.latency_bounds,
                                  a.area_bounds.front(), a.options);
  } else {
    r.points = hls::area_sweep(g, lib, a.latency_bounds.front(),
                               a.area_bounds, a.options);
  }
  return r;
}

GridResult run_grid(const GridAction& a, const dfg::Graph& g,
                    const library::ResourceLibrary& lib) {
  hls::GridOptions go;
  go.find_design = a.options;
  go.combined.find_design = a.options;
  if (a.baseline_versions) {
    go.baseline.fixed_versions = {{lib.find(a.baseline_versions->first),
                                   lib.find(a.baseline_versions->second)}};
  }
  GridResult r;
  r.rows = hls::comparison_grid(g, lib, a.latency_bounds, a.area_bounds, go);
  r.averages = hls::grid_averages(r.rows);
  return r;
}

InjectResult run_inject(const InjectAction& a) {
  netlist::Netlist nl = circuits::component_by_name(a.component, a.width);
  netlist::Stats stats = netlist::compute_stats(nl);

  ser::InjectionConfig cfg;
  cfg.trials = a.trials;
  cfg.seed = a.seed;

  InjectResult r;
  r.component = a.component;
  r.width = a.width;
  r.gate_count = nl.gate_count();
  r.logic_gates = stats.logic_gates;
  r.gate = a.gate;
  r.result = a.gate ? ser::inject_gate(
                          nl, static_cast<netlist::GateId>(*a.gate), cfg)
                    : ser::inject_campaign(nl, cfg);
  return r;
}

RankGatesResult run_rank_gates(const RankGatesAction& a) {
  netlist::Netlist nl = circuits::component_by_name(a.component, a.width);

  ser::InjectionConfig cfg;
  cfg.trials = a.trials;
  cfg.seed = a.seed;

  RankGatesResult r;
  r.component = a.component;
  r.width = a.width;
  r.gates = ser::rank_gate_sensitivities(nl, cfg);
  if (a.top > 0 &&
      r.gates.size() > static_cast<std::size_t>(a.top)) {
    r.gates.resize(static_cast<std::size_t>(a.top));
  }
  for (const auto& gs : r.gates) {
    r.kinds.emplace_back(netlist::to_string(nl.gate(gs.gate).kind));
  }
  return r;
}

}  // namespace

RunReport run(const Scenario& scn) {
  RunReport report;
  report.scenario_name = scn.name;
  report.graph = scn.graph;
  report.library = scn.library;

  for (const auto& action : scn.actions) {
    ActionResult out;
    out.label = action.label;
    out.line = action.line;
    // The parser enforces this for .scn files; guard hand-built Scenarios.
    bool needs_graph = !std::holds_alternative<InjectAction>(action.op) &&
                       !std::holds_alternative<RankGatesAction>(action.op);
    if (needs_graph && !scn.graph) {
      throw Error("action '" + action.label +
                  "' needs a graph, but the scenario has none");
    }
    try {
      if (const auto* fd = std::get_if<FindDesignAction>(&action.op)) {
        out.data = run_find_design(*fd, *scn.graph, scn.library);
      } else if (const auto* sw = std::get_if<SweepAction>(&action.op)) {
        out.data = run_sweep(*sw, *scn.graph, scn.library);
      } else if (const auto* gr = std::get_if<GridAction>(&action.op)) {
        out.data = run_grid(*gr, *scn.graph, scn.library);
      } else if (const auto* in = std::get_if<InjectAction>(&action.op)) {
        out.data = run_inject(*in);
      } else {
        out.data = run_rank_gates(std::get<RankGatesAction>(action.op));
      }
    } catch (const Error& e) {
      throw Error("action '" + action.label + "' (line " +
                  std::to_string(action.line) + "): " + e.what());
    }
    report.actions.push_back(std::move(out));
  }
  return report;
}

}  // namespace rchls::scenario

// Executes a parsed Scenario and collects structured results.
//
// run() walks the scenario's actions in file order. Each action is
// delegated to the existing engines -- hls::find_design / nmr_baseline /
// combined_design, hls::latency_sweep / area_sweep / comparison_grid,
// ser::inject_campaign / inject_gate / rank_gate_sensitivities -- whose
// inner loops already fan out over the work-stealing parallel::ThreadPool.
// The worker count is the processwide parallel::Config (the CLI's --jobs
// flag); because every engine partitions and merges deterministically, a
// RunReport (and its JSON/CSV rendering, see report.hpp) is bit-identical
// at every worker count.
//
// Error behavior: an infeasible find_design point is NOT an error -- it
// becomes a result with solved == false (sweep/grid points likewise stay
// empty), mirroring hls::SweepPoint. Structural problems -- a library
// missing a resource class the graph needs, an out-of-range gate id --
// throw rchls::Error from the underlying engine, annotated with the
// action's label and source line.
//
// Units are the codebase's standard ones throughout: cycles for latency
// and delay, normalized area units (ripple-carry adder == 1) for area,
// mission reliability in (0, 1], wall-clock-free (no timing fields, so
// reports are reproducible byte-for-byte).
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "hls/design.hpp"
#include "hls/explore.hpp"
#include "scenario/scenario.hpp"
#include "ser/fault_injection.hpp"

namespace rchls::scenario {

/// Result of one find_design action. When `solved`, `design` holds the
/// full synthesis result (schedule, binding, versions) and the metric
/// fields mirror design->latency/area/reliability.
struct FindDesignResult {
  std::string engine;
  int latency_bound = 0;
  double area_bound = 0.0;
  bool solved = false;
  std::optional<hls::Design> design;
  std::string no_solution_reason;  ///< empty when solved
};

/// Result of one sweep action: one SweepPoint per swept bound, in sweep
/// order (unsolved points have empty optionals).
struct SweepResult {
  SweepAction::Axis axis = SweepAction::Axis::kLatency;
  std::vector<hls::SweepPoint> points;
};

/// Result of one grid action: the full cross product in row-major
/// (latency-outer) order plus the common-cell averages.
struct GridResult {
  std::vector<hls::ComparisonRow> rows;
  hls::GridAverages averages;
};

/// Result of one inject action, plus the structural context (gate count)
/// needed to interpret the sensitivity numbers.
struct InjectResult {
  std::string component;
  int width = 0;
  std::size_t gate_count = 0;   ///< all gates incl. inputs/constants
  std::size_t logic_gates = 0;  ///< strike population
  std::optional<std::uint32_t> gate;  ///< set for single-gate campaigns
  ser::InjectionResult result;
};

/// Result of one rank_gates action: the `top` most sensitive logic gates
/// (all of them when top == 0), most sensitive first. `kinds[i]` is the
/// gate-kind name of `gates[i]` (e.g. "xor"), kept so reports need not
/// rebuild the netlist.
struct RankGatesResult {
  std::string component;
  int width = 0;
  std::vector<ser::GateSensitivity> gates;
  std::vector<std::string> kinds;
};

/// One executed action: the label/line it came from and its payload.
struct ActionResult {
  std::string label;
  int line = 0;
  std::variant<FindDesignResult, SweepResult, GridResult, InjectResult,
               RankGatesResult>
      data;
};

/// A completed run: scenario identity, the graph and library the actions
/// ran against (kept so report writers can render schedules and version
/// names), and one ActionResult per action in file order.
struct RunReport {
  std::string scenario_name;
  std::optional<dfg::Graph> graph;
  library::ResourceLibrary library;
  std::vector<ActionResult> actions;
};

/// Runs every action and returns the report. Deterministic for a given
/// scenario at every parallel::Config worker count.
RunReport run(const Scenario& scn);

}  // namespace rchls::scenario

// Executes a parsed Scenario and collects structured results.
//
// The runner is a thin client of the rchls::api facade: run() walks the
// scenario's actions in file order, maps each one onto a typed request
// (api/request.hpp) carrying the scenario's graph and library, and
// executes it through an api::Session. The session memoizes results by
// content address -- in memory and, when configured with a cache_dir,
// persistently on disk -- so running several scenarios (or the same
// scenario after an edit, or in a later process) through a Session
// recomputes only the actions whose (graph, library, options) content
// actually changed; the session's executor decides whether misses run
// in-process or sharded across worker processes (api/executor.hpp).
// The single-argument run() overload uses a private default session
// per call (correct, but cache-cold and local-only).
//
// The engines behind the session (hls::find_design / nmr_baseline /
// combined_design, hls::latency_sweep / area_sweep / comparison_grid,
// ser::inject_campaign / inject_gate / rank_gate_sensitivities) fan out
// over the work-stealing parallel::ThreadPool; the worker count is the
// processwide parallel::Config (the CLI's --jobs flag). Because every
// engine partitions and merges deterministically, a RunReport (and its
// JSON/CSV rendering, see report.hpp) is bit-identical at every worker
// count, and cached results are byte-identical to cold recomputations.
//
// Error behavior: an infeasible find_design point is NOT an error -- it
// becomes a result with solved == false (sweep/grid points likewise stay
// empty), mirroring hls::SweepPoint. Structural problems -- a library
// missing a resource class the graph needs, an out-of-range gate id --
// throw rchls::Error from the underlying engine, annotated with the
// action's label and source line.
//
// Units are the codebase's standard ones throughout: cycles for latency
// and delay, normalized area units (ripple-carry adder == 1) for area,
// mission reliability in (0, 1], wall-clock-free (no timing fields, so
// reports are reproducible byte-for-byte).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "api/result.hpp"
#include "api/session.hpp"
#include "scenario/scenario.hpp"

namespace rchls::scenario {

/// The per-action result payloads are the api facade's result types
/// (api/result.hpp); the aliases keep existing scenario-level code and
/// the report writers source-compatible.
using FindDesignResult = api::FindDesignResult;
using SweepResult = api::SweepResult;
using GridResult = api::GridResult;
using InjectResult = api::InjectResult;
using RankGatesResult = api::RankGatesResult;
using StaResult = api::StaResult;

/// One executed action: the label/line it came from and its payload.
struct ActionResult {
  std::string label;
  int line = 0;
  api::Result data;
};

/// A completed run: scenario identity, the graph and library the actions
/// ran against (kept so report writers can render schedules and version
/// names), and one ActionResult per action in file order.
struct RunReport {
  std::string scenario_name;
  std::optional<dfg::Graph> graph;
  library::ResourceLibrary library;
  std::vector<ActionResult> actions;
};

/// Runs every action through `session`, sharing its result cache (and
/// its stats -- `rchls run --verify-cache` and the cache tests observe
/// recomputation through them). Deterministic for a given scenario at
/// every parallel::Config worker count.
RunReport run(const Scenario& scn, api::Session& session);

/// Convenience overload executing against a fresh private session (no
/// caching across calls).
RunReport run(const Scenario& scn);

}  // namespace rchls::scenario

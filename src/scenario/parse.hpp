// Parser for the `.scn` scenario format (full directive reference with
// examples: docs/scenario-format.md).
//
// Line-directive text in the spirit of dfg/io: one directive per line,
// '#' starts a comment, blank lines are ignored. `graph @file.dfg` and
// `library @file.lib` include external artifacts, and `include <file>`
// splices another scenario fragment's directives in place (shared
// preludes; nested up to 10 levels, duplicate-declaration rules apply
// across files). All paths resolve relative to `base_dir` (for
// parse_file: the scenario file's own directory; for a nested include:
// the including file's directory).
//
// `set <name> <value>` defines a variable; `${name}` in any later line
// (of this file or an included fragment -- variables are shared parser
// state) expands textually before tokenization, so one parameterized
// prelude can express a family of scenarios (see
// examples/paper_common.inc). Referencing an undefined variable is a
// parse error at the referencing line.
//
// Every syntactic or semantic error -- unknown directive, malformed
// option, undeclared node or bounds label, unopenable include, action
// without a graph -- throws ParseError whose message starts with
// "<source>:<line>:", pointing at the offending line of the scenario
// file. Cyclic inline graphs throw ValidationError (from
// dfg::Graph::validate), matching dfg::parse. Parsing has no side
// effects and is fully deterministic.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "scenario/scenario.hpp"

namespace rchls::scenario {

/// Parses a scenario from a stream. `source` names the input in error
/// messages; `base_dir` anchors `@file` includes.
Scenario parse(std::istream& in, const std::string& source = "<scenario>",
               const std::filesystem::path& base_dir = ".");

/// Opens and parses `path` (throws ParseError when it cannot be opened);
/// includes resolve relative to the file's directory.
Scenario parse_file(const std::filesystem::path& path);

/// Parses from a string; includes resolve relative to `base_dir`.
Scenario parse_string(const std::string& text,
                      const std::filesystem::path& base_dir = ".");

}  // namespace rchls::scenario

#include "scenario/parse.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>

#include "benchmarks/suite.hpp"
#include "circuits/components.hpp"
#include "dfg/io.hpp"
#include "library/io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace rchls::scenario {

namespace {

// Carries the per-file parse position so every helper can throw
// ParseError anchored at "<source>:<line>:".
struct Cursor {
  std::string source;
  int line = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(source + ":" + std::to_string(line) + ": " + msg);
  }
};

int to_int(const Cursor& at, const std::string& tok, const std::string& what) {
  auto v = try_parse_int(tok);
  if (!v) at.fail(what + " is not an integer: '" + tok + "'");
  return *v;
}

double to_double(const Cursor& at, const std::string& tok,
                 const std::string& what) {
  auto v = try_parse_double(tok);
  if (!v) at.fail(what + " is not a number: '" + tok + "'");
  return *v;
}

bool to_bool(const Cursor& at, const std::string& tok,
             const std::string& what) {
  if (tok == "on" || tok == "true") return true;
  if (tok == "off" || tok == "false") return false;
  at.fail(what + " expects on/off (got '" + tok + "')");
}

std::vector<int> to_int_list(const Cursor& at, const std::string& tok,
                             const std::string& what) {
  std::vector<int> out;
  for (const auto& part : split(tok, ',')) {
    out.push_back(to_int(at, part, what));
  }
  if (out.empty()) at.fail(what + " needs at least one value");
  return out;
}

std::vector<double> to_double_list(const Cursor& at, const std::string& tok,
                                   const std::string& what) {
  std::vector<double> out;
  for (const auto& part : split(tok, ',')) {
    out.push_back(to_double(at, part, what));
  }
  if (out.empty()) at.fail(what + " needs at least one value");
  return out;
}

// key=value tokens after an action's positional arguments. Consuming
// accessors + a final check that no unknown key remains.
class Options {
 public:
  Options(const Cursor& at, const std::vector<std::string>& tokens,
          std::size_t first)
      : at_(at) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      auto eq = tokens[i].find('=');
      if (eq == std::string::npos || eq == 0) {
        at_.fail("expected key=value option, got '" + tokens[i] + "'");
      }
      auto key = tokens[i].substr(0, eq);
      if (!pairs_.emplace(key, tokens[i].substr(eq + 1)).second) {
        at_.fail("duplicate option '" + key + "'");
      }
    }
  }

  std::optional<std::string> take(const std::string& key) {
    auto it = pairs_.find(key);
    if (it == pairs_.end()) return std::nullopt;
    std::string v = it->second;
    pairs_.erase(it);
    return v;
  }

  void take_int(const std::string& key, int& out) {
    if (auto v = take(key)) out = to_int(at_, *v, key);
  }
  void take_double(const std::string& key, double& out) {
    if (auto v = take(key)) out = to_double(at_, *v, key);
  }
  void take_bool(const std::string& key, bool& out) {
    if (auto v = take(key)) out = to_bool(at_, *v, key);
  }
  void take_size(const std::string& key, std::size_t& out) {
    if (auto v = take(key)) {
      int n = to_int(at_, *v, key);
      if (n < 1) at_.fail(key + " must be >= 1");
      out = static_cast<std::size_t>(n);
    }
  }
  void take_seed(const std::string& key, std::uint64_t& out) {
    if (auto v = take(key)) {
      std::uint64_t n = 0;
      auto [ptr, ec] =
          std::from_chars(v->data(), v->data() + v->size(), n);
      if (ec != std::errc{} || ptr != v->data() + v->size()) {
        at_.fail(key + " is not a non-negative integer: '" + *v + "'");
      }
      out = n;
    }
  }

  /// Rejects any option key no accessor consumed.
  void finish() const {
    if (!pairs_.empty()) {
      at_.fail("unknown option '" + pairs_.begin()->first + "'");
    }
  }

 private:
  const Cursor& at_;
  std::map<std::string, std::string> pairs_;
};

// The scheduler/polish/consolidation/explore option cluster shared by
// find_design, sweep and grid actions.
void take_engine_options(const Cursor& at, Options& opts,
                         hls::FindDesignOptions& out) {
  if (auto v = opts.take("scheduler")) {
    if (*v == "density") {
      out.scheduler = hls::SchedulerKind::kDensity;
    } else if (*v == "fds") {
      out.scheduler = hls::SchedulerKind::kForceDirected;
    } else {
      at.fail("unknown scheduler '" + *v + "' (expected density or fds)");
    }
  }
  opts.take_bool("polish", out.enable_polish);
  opts.take_bool("consolidation", out.enable_consolidation);
  opts.take_int("explore", out.explore_tighter_latency);
  if (out.explore_tighter_latency < 0) at.fail("explore must be >= 0");
}

std::optional<std::pair<std::string, std::string>> take_baseline_versions(
    const Cursor& at, Options& opts) {
  auto adder = opts.take("baseline_adder");
  auto mult = opts.take("baseline_mult");
  if (adder.has_value() != mult.has_value()) {
    at.fail("baseline_adder and baseline_mult must be given together");
  }
  if (!adder) return std::nullopt;
  return std::make_pair(*adder, *mult);
}

// Nesting cap for `include` chains: deep enough for any sane prelude
// layering, shallow enough to stop include cycles with a clear message
// instead of a stack overflow.
constexpr int kMaxIncludeDepth = 10;

struct Parser {
  Cursor at;
  std::filesystem::path base_dir;
  int include_depth = 0;

  Scenario scn;
  std::map<std::string, std::string> variables;  // `set` definitions
  bool named = false;
  bool graph_declared = false;     // graph directive or inline dfg seen
  bool inline_graph = false;       // currently building an inline dfg
  bool library_declared = false;   // library directive seen
  bool inline_library = false;     // resource lines seen
  dfg::Graph building{"dfg"};      // inline graph under construction
  std::map<std::string, std::pair<int, double>> bounds;  // label -> Ld, Ad
  std::map<std::string, int> kind_counts;  // for default labels

  void declare_graph() {
    if (graph_declared) at.fail("duplicate graph declaration");
    graph_declared = true;
  }

  std::ifstream open_include(const std::string& spec) {
    std::filesystem::path p = base_dir / spec;
    std::ifstream in(p);
    if (!in) at.fail("cannot open included file '" + p.string() + "'");
    return in;
  }

  void push_action(const Cursor& action_at, Options& opts, const char* kind,
                   std::variant<FindDesignAction, SweepAction, GridAction,
                                InjectAction, RankGatesAction, StaAction>
                       op) {
    Action a;
    a.line = action_at.line;
    a.op = std::move(op);
    if (auto v = opts.take("label")) {
      a.label = *v;
    } else {
      a.label = std::string(kind) + "#" + std::to_string(++kind_counts[kind]);
    }
    opts.finish();
    scn.actions.push_back(std::move(a));
  }

  std::string expand_variables(const std::string& line);
  void handle(const std::vector<std::string>& tokens);
  void consume(std::istream& in);
  void include_file(const std::string& spec);
  void finalize();
};

// ${name} substitution over one comment-stripped line. Expansion is
// textual and happens at USE time, so a variable can be (re)defined by
// `set` any time before the directives that read it -- including across
// include boundaries (variables are shared parser state, which is what
// lets a scenario parameterize a shared prelude fragment). A lone `$`
// without `{` passes through untouched; an undefined variable is a
// parse error anchored at the offending line.
std::string Parser::expand_variables(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  std::size_t pos = 0;
  while (pos < line.size()) {
    std::size_t dollar = line.find("${", pos);
    if (dollar == std::string::npos) {
      out.append(line, pos, std::string::npos);
      break;
    }
    out.append(line, pos, dollar - pos);
    std::size_t close = line.find('}', dollar + 2);
    if (close == std::string::npos) {
      at.fail("unterminated ${...} variable reference");
    }
    std::string name = line.substr(dollar + 2, close - dollar - 2);
    if (name.empty()) at.fail("empty ${} variable reference");
    auto it = variables.find(name);
    if (it == variables.end()) {
      at.fail("undefined variable '${" + name +
              "}' (declare it first: set " + name + " <value>)");
    }
    out += it->second;
    pos = close + 1;
  }
  return out;
}

// Reads every directive of one stream against the current at/base_dir
// state (parse() uses it for the top-level file, include_file() for
// nested fragments).
void Parser::consume(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    ++at.line;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find("${") != std::string::npos) {
      line = expand_variables(line);
    }
    auto tokens = split_ws(line);
    if (tokens.empty()) continue;
    handle(tokens);
  }
}

// `include <file>`: parses the file's directives into this scenario as
// if they appeared in place of the include line. Shares all parser
// state, so duplicate-declaration rules apply across files and errors
// inside the fragment are anchored at "<fragment>:<line>:". Nested
// includes resolve relative to the *including* file's directory.
void Parser::include_file(const std::string& spec) {
  if (include_depth >= kMaxIncludeDepth) {
    at.fail("includes nested deeper than " +
            std::to_string(kMaxIncludeDepth) +
            " levels -- is there an include cycle?");
  }
  std::filesystem::path p = base_dir / spec;
  std::ifstream in(p);
  if (!in) at.fail("cannot open included file '" + p.string() + "'");

  Cursor saved_at = at;
  std::filesystem::path saved_dir = base_dir;
  at = Cursor{spec, 0};
  auto dir = p.parent_path();
  base_dir = dir.empty() ? "." : dir;
  ++include_depth;
  consume(in);
  --include_depth;
  at = saved_at;
  base_dir = saved_dir;
}

void Parser::handle(const std::vector<std::string>& tokens) {
  const std::string& directive = tokens[0];

  if (directive == "include") {
    if (tokens.size() != 2) at.fail("expected: include <file>");
    include_file(tokens[1]);

  } else if (directive == "set") {
    // `set <name> <value...>`: multi-token values join with single
    // spaces (they are re-tokenized after expansion anyway). Last `set`
    // wins, so a scenario can re-parameterize between actions.
    if (tokens.size() < 3) at.fail("expected: set <name> <value>");
    std::string value = tokens[2];
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      value += " " + tokens[i];
    }
    variables[tokens[1]] = std::move(value);

  } else if (directive == "scenario") {
    if (tokens.size() != 2) at.fail("expected: scenario <name>");
    if (named) at.fail("duplicate scenario directive");
    scn.name = tokens[1];
    named = true;

  } else if (directive == "graph") {
    if (tokens.size() != 2) {
      at.fail("expected: graph <benchmark> or graph @<file.dfg>");
    }
    declare_graph();
    const std::string& spec = tokens[1];
    if (starts_with(spec, "@")) {
      auto in = open_include(spec.substr(1));
      try {
        scn.graph = dfg::parse(in);
      } catch (const Error& e) {
        at.fail("in included graph '" + spec.substr(1) + "': " + e.what());
      }
    } else {
      try {
        scn.graph = benchmarks::by_name(spec);
      } catch (const Error&) {
        at.fail("unknown benchmark '" + spec +
                "' (use @<file> for a graph file)");
      }
    }

  } else if (directive == "dfg") {
    if (tokens.size() != 2) at.fail("expected: dfg <name>");
    declare_graph();
    inline_graph = true;
    building = dfg::Graph(tokens[1]);

  } else if (directive == "node") {
    if (!inline_graph) at.fail("node directive outside an inline dfg block");
    if (tokens.size() != 3) at.fail("expected: node <name> <op>");
    try {
      building.add_node(tokens[1], dfg::op_from_string(tokens[2]));
    } catch (const Error& e) {
      at.fail(e.what());
    }

  } else if (directive == "edge") {
    if (!inline_graph) at.fail("edge directive outside an inline dfg block");
    if (tokens.size() != 3) at.fail("expected: edge <from> <to>");
    try {
      building.add_edge(building.find(tokens[1]), building.find(tokens[2]));
    } catch (const Error& e) {
      at.fail(e.what());
    }

  } else if (directive == "library") {
    if (tokens.size() != 2) {
      at.fail("expected: library paper or library @<file.lib>");
    }
    if (library_declared) at.fail("duplicate library directive");
    if (inline_library) {
      at.fail("library directive after inline resource lines");
    }
    library_declared = true;
    if (tokens[1] == "paper") {
      scn.library = library::paper_library();
    } else if (starts_with(tokens[1], "@")) {
      auto in = open_include(tokens[1].substr(1));
      try {
        scn.library = library::parse(in);
      } catch (const Error& e) {
        at.fail("in included library '" + tokens[1].substr(1) +
                "': " + e.what());
      }
    } else {
      at.fail("expected: library paper or library @<file.lib>");
    }

  } else if (directive == "resource") {
    if (library_declared) {
      at.fail("resource line after a library directive");
    }
    if (!inline_library) {
      inline_library = true;
      scn.library = library::ResourceLibrary();
    }
    try {
      // Shared with library/io: one grammar for resource lines
      // everywhere. add() rejects duplicates and out-of-range values.
      scn.library.add(library::parse_resource_tokens(tokens));
    } catch (const Error& e) {
      at.fail(e.what());
    }

  } else if (directive == "timing") {
    // Same sharing for the optional per-pin timing model: a timing line
    // characterizes an already-declared inline resource version.
    if (library_declared) {
      at.fail("timing line after a library directive");
    }
    if (!inline_library) {
      at.fail("timing line before any resource line");
    }
    try {
      library::apply_timing_tokens(scn.library, tokens);
    } catch (const Error& e) {
      at.fail(e.what());
    }

  } else if (directive == "bounds") {
    if (tokens.size() != 4) {
      at.fail("expected: bounds <label> <latency> <area>");
    }
    int ld = to_int(at, tokens[2], "latency");
    double ad = to_double(at, tokens[3], "area");
    if (!bounds.emplace(tokens[1], std::make_pair(ld, ad)).second) {
      at.fail("duplicate bounds label '" + tokens[1] + "'");
    }

  } else if (directive == "find_design") {
    FindDesignAction fd;
    std::size_t first_option = 1;
    if (tokens.size() >= 2 && tokens[1].find('=') == std::string::npos) {
      auto it = bounds.find(tokens[1]);
      if (it == bounds.end()) {
        at.fail("undeclared bounds label '" + tokens[1] + "'");
      }
      fd.latency_bound = it->second.first;
      fd.area_bound = it->second.second;
      first_option = 2;
    }
    Options opts(at, tokens, first_option);
    bool have_bounds = first_option == 2;
    if (auto v = opts.take("latency")) {
      fd.latency_bound = to_int(at, *v, "latency");
      have_bounds = true;
    }
    if (auto v = opts.take("area")) {
      fd.area_bound = to_double(at, *v, "area");
    } else if (first_option == 1) {
      have_bounds = false;
    }
    if (!have_bounds) {
      at.fail("find_design needs a bounds label or latency=/area= options");
    }
    if (auto v = opts.take("engine")) {
      if (*v != "centric" && *v != "baseline" && *v != "combined") {
        at.fail("unknown engine '" + *v +
                "' (expected centric, baseline or combined)");
      }
      fd.engine = *v;
    }
    take_engine_options(at, opts, fd.options);
    fd.baseline_versions = take_baseline_versions(at, opts);
    if (fd.baseline_versions && fd.engine != "baseline") {
      at.fail("baseline_adder/baseline_mult require engine=baseline");
    }
    push_action(at, opts, "find_design", std::move(fd));

  } else if (directive == "sweep") {
    if (tokens.size() < 3) {
      at.fail("expected: sweep latency <l1,l2,...> area=<A> or "
              "sweep area <a1,a2,...> latency=<N>");
    }
    SweepAction sw;
    Options opts(at, tokens, 3);
    if (tokens[1] == "latency") {
      sw.axis = SweepAction::Axis::kLatency;
      sw.latency_bounds = to_int_list(at, tokens[2], "latency list");
      auto v = opts.take("area");
      if (!v) at.fail("sweep latency needs area=<bound>");
      sw.area_bounds = {to_double(at, *v, "area")};
    } else if (tokens[1] == "area") {
      sw.axis = SweepAction::Axis::kArea;
      sw.area_bounds = to_double_list(at, tokens[2], "area list");
      auto v = opts.take("latency");
      if (!v) at.fail("sweep area needs latency=<bound>");
      sw.latency_bounds = {to_int(at, *v, "latency")};
    } else {
      at.fail("sweep axis must be latency or area (got '" + tokens[1] +
              "')");
    }
    take_engine_options(at, opts, sw.options);
    push_action(at, opts, "sweep", std::move(sw));

  } else if (directive == "grid") {
    GridAction gr;
    Options opts(at, tokens, 1);
    auto lats = opts.take("latencies");
    auto areas = opts.take("areas");
    if (!lats || !areas) {
      at.fail("grid needs latencies=<l1,l2,...> and areas=<a1,a2,...>");
    }
    gr.latency_bounds = to_int_list(at, *lats, "latencies");
    gr.area_bounds = to_double_list(at, *areas, "areas");
    take_engine_options(at, opts, gr.options);
    gr.baseline_versions = take_baseline_versions(at, opts);
    push_action(at, opts, "grid", std::move(gr));

  } else if (directive == "inject") {
    if (tokens.size() < 2) at.fail("expected: inject <component> [options]");
    InjectAction in;
    in.component = tokens[1];
    if (!circuits::is_component(in.component)) {
      at.fail("unknown component '" + in.component + "'");
    }
    Options opts(at, tokens, 2);
    opts.take_int("width", in.width);
    if (in.width < 1) at.fail("width must be >= 1");
    opts.take_size("trials", in.trials);
    opts.take_seed("seed", in.seed);
    if (auto v = opts.take("gate")) {
      int gate = to_int(at, *v, "gate");
      if (gate < 0) at.fail("gate must be >= 0");
      in.gate = static_cast<std::uint32_t>(gate);
    }
    push_action(at, opts, "inject", std::move(in));

  } else if (directive == "rank_gates") {
    if (tokens.size() < 2) {
      at.fail("expected: rank_gates <component> [options]");
    }
    RankGatesAction rg;
    rg.component = tokens[1];
    if (!circuits::is_component(rg.component)) {
      at.fail("unknown component '" + rg.component + "'");
    }
    Options opts(at, tokens, 2);
    opts.take_int("width", rg.width);
    if (rg.width < 1) at.fail("width must be >= 1");
    opts.take_size("trials", rg.trials);
    opts.take_seed("seed", rg.seed);
    opts.take_int("top", rg.top);
    if (rg.top < 0) at.fail("top must be >= 0");
    push_action(at, opts, "rank_gates", std::move(rg));

  } else if (directive == "sta") {
    // `sta [component] [options]`: a bare second token (no '=') names a
    // generated circuit; otherwise the action times the scenario's graph
    // elaborated under versions=.
    StaAction st;
    std::size_t first_option = 1;
    if (tokens.size() > 1 && tokens[1].find('=') == std::string::npos) {
      st.component = tokens[1];
      if (!circuits::is_component(st.component)) {
        at.fail("unknown component '" + st.component + "'");
      }
      first_option = 2;
    }
    Options opts(at, tokens, first_option);
    if (auto v = opts.take("versions")) {
      if (*v != "fastest" && *v != "most_reliable") {
        at.fail("unknown versions policy '" + *v +
                "' (expected fastest or most_reliable)");
      }
      if (!st.component.empty()) {
        at.fail("versions= applies to graph-shaped sta actions only");
      }
      st.versions = *v;
    }
    opts.take_int("width", st.width);
    if (st.width < 1) at.fail("width must be >= 1");
    opts.take_double("clock", st.clock);
    if (st.clock < 0) at.fail("clock must be >= 0");
    opts.take_int("top_paths", st.top_paths);
    if (st.top_paths < 0) at.fail("top_paths must be >= 0");
    opts.take_int("top", st.top);
    if (st.top < 0) at.fail("top must be >= 0");
    opts.take_size("trials", st.trials);
    opts.take_seed("seed", st.seed);
    push_action(at, opts, "sta", std::move(st));

  } else {
    at.fail("unknown directive '" + directive + "'");
  }
}

void Parser::finalize() {
  if (inline_graph) {
    building.validate();  // throws ValidationError on cycles, like dfg/io
    scn.graph = std::move(building);
  }
  if (!library_declared && !inline_library) {
    scn.library = library::paper_library();
  }
  for (const auto& a : scn.actions) {
    Cursor action_at{at.source, a.line};
    bool needs_graph = std::holds_alternative<FindDesignAction>(a.op) ||
                       std::holds_alternative<SweepAction>(a.op) ||
                       std::holds_alternative<GridAction>(a.op);
    if (const auto* st = std::get_if<StaAction>(&a.op)) {
      needs_graph = st->component.empty();
    }
    if (needs_graph && !scn.graph) {
      action_at.fail("action needs a graph, but the scenario declares none");
    }
    // Resolve baseline version names now so a typo fails at parse time.
    const std::optional<std::pair<std::string, std::string>>* pinned =
        nullptr;
    if (const auto* fd = std::get_if<FindDesignAction>(&a.op)) {
      pinned = &fd->baseline_versions;
    } else if (const auto* gr = std::get_if<GridAction>(&a.op)) {
      pinned = &gr->baseline_versions;
    }
    if (pinned && *pinned) {
      for (const auto& name : {(*pinned)->first, (*pinned)->second}) {
        try {
          scn.library.find(name);
        } catch (const Error&) {
          action_at.fail("library has no version named '" + name + "'");
        }
      }
    }
  }
}

}  // namespace

Scenario parse(std::istream& in, const std::string& source,
               const std::filesystem::path& base_dir) {
  Parser p;
  p.at.source = source;
  p.base_dir = base_dir;
  p.consume(in);
  p.finalize();
  return p.scn;
}

Scenario parse_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("cannot open scenario file '" + path.string() + "'");
  }
  auto dir = path.parent_path();
  return parse(in, path.filename().string(), dir.empty() ? "." : dir);
}

Scenario parse_string(const std::string& text,
                      const std::filesystem::path& base_dir) {
  std::istringstream in(text);
  return parse(in, "<string>", base_dir);
}

}  // namespace rchls::scenario

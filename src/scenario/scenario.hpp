// The declarative experiment model behind `rchls run`.
//
// A Scenario is the parsed form of a `.scn` file (see
// docs/scenario-format.md): one data-flow graph (built-in benchmark,
// included `.dfg` file, or inline `dfg`/`node`/`edge` directives), one
// resource library (the paper's Table 1 by default, or custom `resource`
// lines / an included `.lib` file), named latency/area constraint sets,
// and an ordered list of actions. Actions are executed in file order by
// scenario::Runner (runner.hpp), which maps each one onto a typed
// api::Session request, and rendered by scenario::report (report.hpp).
// The action payloads mirror the request types of api/request.hpp minus
// the graph/library, which a scenario declares once for all actions.
//
// All quantities use the codebase's standard units: latencies and delays
// in clock cycles, areas in the paper's normalized units (ripple-carry
// adder == 1), reliabilities in (0, 1].
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "api/request.hpp"
#include "dfg/graph.hpp"
#include "hls/find_design.hpp"
#include "library/resource.hpp"

namespace rchls::scenario {

/// One `find_design` action: a single synthesis run under one constraint
/// set. `engine` selects the algorithm exactly as the CLI's `synth`
/// command does: "centric" (paper Fig. 6), "baseline" (NMR prior work
/// [3]) or "combined" (centric + redundancy).
struct FindDesignAction {
  int latency_bound = 0;      ///< Ld in cycles
  double area_bound = 0.0;    ///< Ad in normalized area units
  std::string engine = "centric";
  hls::FindDesignOptions options;
  /// Baseline-only: restrict [3] to this (adder, multiplier) version
  /// pair by library name instead of searching all combos.
  std::optional<std::pair<std::string, std::string>> baseline_versions;
};

/// One `sweep` action: find_design over a list of bounds on one axis
/// while the other is held fixed (paper Fig. 8).
struct SweepAction {
  using Axis = api::SweepAxis;
  Axis axis = Axis::kLatency;
  std::vector<int> latency_bounds;   ///< swept (kLatency) or size 1 (kArea)
  std::vector<double> area_bounds;   ///< swept (kArea) or size 1 (kLatency)
  hls::FindDesignOptions options;
};

/// One `grid` action: the three-engine comparison over the cross product
/// of bounds (paper Table 2 / Fig. 9), including the common-cell
/// averages.
struct GridAction {
  std::vector<int> latency_bounds;
  std::vector<double> area_bounds;
  hls::FindDesignOptions options;  ///< centric and combined passes
  /// When set, pin the baseline to this (adder, multiplier) version pair
  /// by library name (the paper's experiments use the fastest versions).
  std::optional<std::pair<std::string, std::string>> baseline_versions;
};

/// One `inject` action: a Monte-Carlo SET campaign on a generated
/// arithmetic circuit (whole-circuit, or a single gate when `gate` is
/// set).
struct InjectAction {
  std::string component;  ///< a circuits::component_names() entry
  int width = 16;         ///< operand bit width
  std::size_t trials = 64 * 256;
  std::uint64_t seed = 1;
  std::optional<std::uint32_t> gate;  ///< strike only this gate id
};

/// One `rank_gates` action: per-gate sensitivity characterization of a
/// generated circuit, reporting the `top` most sensitive logic gates
/// (0 = all).
struct RankGatesAction {
  std::string component;
  int width = 16;
  std::size_t trials = 64 * 64;
  std::uint64_t seed = 1;
  int top = 10;
};

/// One `sta` action: levelized static timing analysis plus the
/// sensitivity/slack join (docs/timing.md). With a `component`, runs on
/// the generated circuit under unit delays; without one, runs on the
/// scenario's graph elaborated under the `versions` policy using the
/// scenario's library (whose `timing` directives drive the delay model).
struct StaAction {
  std::string component;  ///< empty = the scenario's graph
  std::string versions = "fastest";  ///< "fastest" | "most_reliable"
  int width = 16;
  double clock = 0.0;     ///< 0 = derive from the longest path
  int top_paths = 3;
  int top = 10;           ///< sensitivity rows to report (0 = all)
  std::size_t trials = 64 * 64;
  std::uint64_t seed = 1;
};

/// A parsed action: the payload plus its report label and the source line
/// it came from (used in runtime error messages).
struct Action {
  std::string label;
  int line = 0;
  std::variant<FindDesignAction, SweepAction, GridAction, InjectAction,
               RankGatesAction, StaAction>
      op;
};

/// A complete parsed scenario. `graph` is empty when the file declares
/// none (legal as long as every action is inject / rank_gates /
/// component-shaped sta).
struct Scenario {
  std::string name = "scenario";
  std::optional<dfg::Graph> graph;
  library::ResourceLibrary library;
  std::vector<Action> actions;
};

}  // namespace rchls::scenario

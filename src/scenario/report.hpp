// Renders a scenario::RunReport for machines and humans.
//
// Three writers over the same report:
//
//  * report::to_json -- the machine-readable form: one JSON document with
//    `format_version`, the scenario identity, the resource library, and
//    one object per action. Doubles are emitted at full shortest-round-
//    trip precision, object keys are in fixed order, and nothing
//    time- or host-dependent is included -- so the output is byte-
//    identical across runs, platforms and --jobs values (a golden-file
//    test pins it). Unsolved metrics are JSON null.
//
//  * report::to_csv -- one CSV block per action, each preceded by a
//    `# action <label> <kind>` comment line (grids emit a second block
//    for the common-cell averages). Sweep and grid blocks reuse the
//    hls::to_csv column layout; numeric formatting matches the paper's
//    tables (format_fixed), unsolved cells are empty.
//
//  * report::to_table -- the human rendering: the same schedule tables
//    and summaries `rchls synth` prints (hls::schedule_table /
//    design_summary), plus aligned tables for sweeps, grids and
//    campaigns.
//
// All writers are pure functions of the report; none throws for any
// report produced by scenario::run.
#pragma once

#include <string>

#include "scenario/runner.hpp"

namespace rchls::scenario::report {

/// JSON document (pretty-printed, 2-space indent, trailing newline).
std::string to_json(const RunReport& report);

/// Per-action CSV blocks separated by blank lines.
std::string to_csv(const RunReport& report);

/// Human-readable tables (the `--format table` default of `rchls run`).
std::string to_table(const RunReport& report);

}  // namespace rchls::scenario::report

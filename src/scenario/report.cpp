#include "scenario/report.hpp"

#include <map>
#include <sstream>

#include "hls/report.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rchls::scenario::report {

namespace {

const char* kind_name(const ActionResult& a) {
  if (std::holds_alternative<FindDesignResult>(a.data)) return "find_design";
  if (std::holds_alternative<SweepResult>(a.data)) return "sweep";
  if (std::holds_alternative<GridResult>(a.data)) return "grid";
  if (std::holds_alternative<InjectResult>(a.data)) return "inject";
  if (std::holds_alternative<StaResult>(a.data)) return "sta";
  return "rank_gates";
}

// Ops-per-version histogram in version-name order (deterministic).
std::map<std::string, int> version_histogram(
    const hls::Design& d, const library::ResourceLibrary& lib) {
  std::map<std::string, int> histogram;
  for (auto v : d.version_of) histogram[lib.version(v).name]++;
  return histogram;
}

// ------------------------------------------------------------------ JSON

json::Value json_find_design(const FindDesignResult& r,
                             const library::ResourceLibrary& lib) {
  auto v = json::Value::object();
  v.set("engine", r.engine)
      .set("latency_bound", r.latency_bound)
      .set("area_bound", r.area_bound)
      .set("solved", r.solved);
  if (r.solved) {
    const auto& d = *r.design;
    v.set("latency", d.latency)
        .set("area", d.area)
        .set("reliability", d.reliability);
    auto versions = json::Value::object();
    for (const auto& [name, count] : version_histogram(d, lib)) {
      versions.set(name, count);
    }
    v.set("versions", std::move(versions));
    auto version_of = json::Value::array();
    for (auto id : d.version_of) version_of.push(lib.version(id).name);
    v.set("version_of", std::move(version_of));
  } else {
    v.set("latency", json::Value())
        .set("area", json::Value())
        .set("reliability", json::Value())
        .set("no_solution_reason", r.no_solution_reason);
  }
  return v;
}

json::Value json_point(const hls::SweepPoint& p) {
  auto v = json::Value::object();
  v.set("latency_bound", p.latency_bound).set("area_bound", p.area_bound);
  v.set("reliability",
        p.reliability ? json::Value(*p.reliability) : json::Value());
  v.set("area", p.area ? json::Value(*p.area) : json::Value());
  v.set("latency", p.latency ? json::Value(*p.latency) : json::Value());
  return v;
}

json::Value json_sweep(const SweepResult& r) {
  auto v = json::Value::object();
  v.set("axis",
        r.axis == SweepAction::Axis::kLatency ? "latency" : "area");
  auto points = json::Value::array();
  for (const auto& p : r.points) points.push(json_point(p));
  v.set("points", std::move(points));
  return v;
}

json::Value json_opt(const std::optional<double>& d) {
  return d ? json::Value(*d) : json::Value();
}

json::Value json_grid(const GridResult& r) {
  auto v = json::Value::object();
  auto rows = json::Value::array();
  for (const auto& row : r.rows) {
    auto jr = json::Value::object();
    jr.set("latency_bound", row.latency_bound)
        .set("area_bound", row.area_bound)
        .set("baseline", json_opt(row.baseline))
        .set("ours", json_opt(row.ours))
        .set("combined", json_opt(row.combined))
        .set("improvement_ours_pct", json_opt(row.improvement_ours))
        .set("improvement_combined_pct",
             json_opt(row.improvement_combined));
    rows.push(std::move(jr));
  }
  v.set("rows", std::move(rows));
  auto avg = json::Value::object();
  avg.set("baseline", r.averages.baseline)
      .set("ours", r.averages.ours)
      .set("combined", r.averages.combined)
      .set("solved_cells", r.averages.solved_cells)
      .set("total_cells", r.averages.total_cells);
  v.set("averages", std::move(avg));
  return v;
}

json::Value json_injection(const ser::InjectionResult& r) {
  auto v = json::Value::object();
  v.set("trials", r.trials)
      .set("propagated", r.propagated)
      .set("logical_sensitivity", r.logical_sensitivity)
      .set("half_width_95", r.half_width_95)
      .set("susceptibility", r.susceptibility);
  return v;
}

json::Value json_inject(const InjectResult& r) {
  auto v = json::Value::object();
  v.set("component", r.component)
      .set("width", r.width)
      .set("gate_count", r.gate_count)
      .set("logic_gates", r.logic_gates)
      .set("gate", r.gate ? json::Value(*r.gate) : json::Value())
      .set("result", json_injection(r.result));
  return v;
}

json::Value json_rank_gates(const RankGatesResult& r) {
  auto v = json::Value::object();
  v.set("component", r.component).set("width", r.width);
  auto gates = json::Value::array();
  for (std::size_t i = 0; i < r.gates.size(); ++i) {
    auto jg = json::Value::object();
    jg.set("gate", r.gates[i].gate)
        .set("kind", r.kinds[i])
        .set("result", json_injection(r.gates[i].result));
    gates.push(std::move(jg));
  }
  v.set("gates", std::move(gates));
  return v;
}

json::Value json_sta(const StaResult& r) {
  auto v = json::Value::object();
  v.set("target", r.target)
      .set("width", r.width)
      .set("gate_count", r.gate_count)
      .set("logic_gates", r.logic_gates)
      .set("levels", r.levels)
      .set("endpoints", r.endpoints)
      .set("clock", r.clock)
      .set("arrival_max", r.arrival_max)
      .set("wns", r.wns)
      .set("tns", r.tns);
  auto paths = json::Value::array();
  for (const auto& p : r.paths) {
    auto jp = json::Value::object();
    auto steps = json::Value::array();
    for (const auto& s : p.steps) {
      auto js = json::Value::object();
      js.set("gate", s.gate).set("kind", s.kind).set("arrival", s.arrival);
      steps.push(std::move(js));
    }
    jp.set("endpoint", p.endpoint)
        .set("arrival", p.arrival)
        .set("slack", p.slack)
        .set("steps", std::move(steps));
    paths.push(std::move(jp));
  }
  v.set("paths", std::move(paths));
  auto histogram = json::Value::array();
  for (const auto& b : r.histogram) {
    auto jb = json::Value::object();
    jb.set("lo", b.lo).set("hi", b.hi).set("count", b.count);
    histogram.push(std::move(jb));
  }
  v.set("histogram", std::move(histogram));
  auto rows = json::Value::array();
  for (const auto& row : r.rows) {
    auto jr = json::Value::object();
    jr.set("gate", row.gate)
        .set("kind", row.kind)
        .set("sensitivity", row.sensitivity)
        .set("slack", row.slack);
    rows.push(std::move(jr));
  }
  v.set("rows", std::move(rows));
  return v;
}

// ------------------------------------------------------------------- CSV

std::string csv_find_design(const FindDesignResult& r) {
  std::ostringstream os;
  os << "engine,latency_bound,area_bound,solved,latency,area,reliability\n"
     << r.engine << "," << r.latency_bound << ","
     << format_fixed(r.area_bound, 2) << "," << (r.solved ? 1 : 0) << ",";
  if (r.solved) {
    const auto& d = *r.design;
    os << d.latency << "," << format_fixed(d.area, 2) << ","
       << format_fixed(d.reliability, 6);
  } else {
    os << ",,";
  }
  os << "\n";
  return os.str();
}

std::string csv_inject(const InjectResult& r) {
  std::ostringstream os;
  os << "component,width,gate,trials,propagated,logical_sensitivity,"
        "half_width_95,susceptibility\n"
     << r.component << "," << r.width << ",";
  if (r.gate) os << *r.gate;
  os << "," << r.result.trials << "," << r.result.propagated << ","
     << format_fixed(r.result.logical_sensitivity, 5) << ","
     << format_fixed(r.result.half_width_95, 5) << ","
     << format_fixed(r.result.susceptibility, 5) << "\n";
  return os.str();
}

std::string csv_rank_gates(const RankGatesResult& r) {
  std::ostringstream os;
  os << "gate,kind,logical_sensitivity,half_width_95,susceptibility\n";
  for (std::size_t i = 0; i < r.gates.size(); ++i) {
    const auto& res = r.gates[i].result;
    os << r.gates[i].gate << "," << r.kinds[i] << ","
       << format_fixed(res.logical_sensitivity, 5) << ","
       << format_fixed(res.half_width_95, 5) << ","
       << format_fixed(res.susceptibility, 5) << "\n";
  }
  return os.str();
}

std::string csv_sta(const StaResult& r) {
  std::ostringstream os;
  os << "target,width,gate_count,logic_gates,levels,endpoints,clock,"
        "arrival_max,wns,tns\n"
     << r.target << "," << r.width << "," << r.gate_count << ","
     << r.logic_gates << "," << r.levels << "," << r.endpoints << ","
     << format_fixed(r.clock, 5) << "," << format_fixed(r.arrival_max, 5)
     << "," << format_fixed(r.wns, 5) << "," << format_fixed(r.tns, 5)
     << "\n";
  return os.str();
}

std::string csv_sta_rows(const StaResult& r) {
  std::ostringstream os;
  os << "gate,kind,sensitivity,slack\n";
  for (const auto& row : r.rows) {
    os << row.gate << "," << row.kind << ","
       << format_fixed(row.sensitivity, 5) << ","
       << format_fixed(row.slack, 5) << "\n";
  }
  return os.str();
}

// ----------------------------------------------------------------- table

std::string table_sweep(const SweepResult& r) {
  Table t({"latency_bound", "area_bound", "reliability", "area",
           "latency"});
  for (const auto& p : r.points) {
    t.add_row({std::to_string(p.latency_bound),
               format_fixed(p.area_bound, 2),
               p.reliability ? format_fixed(*p.reliability, 5) : "-",
               p.area ? format_fixed(*p.area, 2) : "-",
               p.latency ? std::to_string(*p.latency) : "-"});
  }
  return t.render();
}

std::string table_grid(const GridResult& r) {
  std::ostringstream os;
  Table t({"Ld", "Ad", "baseline", "ours", "combined", "ours %",
           "combined %"});
  for (const auto& row : r.rows) {
    t.add_row({std::to_string(row.latency_bound),
               format_fixed(row.area_bound, 2),
               row.baseline ? format_fixed(*row.baseline, 5) : "-",
               row.ours ? format_fixed(*row.ours, 5) : "-",
               row.combined ? format_fixed(*row.combined, 5) : "-",
               row.improvement_ours
                   ? format_fixed(*row.improvement_ours, 2)
                   : "-",
               row.improvement_combined
                   ? format_fixed(*row.improvement_combined, 2)
                   : "-"});
  }
  os << t.render();
  os << "averages over " << r.averages.solved_cells << "/"
     << r.averages.total_cells << " commonly solved cells: baseline "
     << format_fixed(r.averages.baseline, 5) << ", ours "
     << format_fixed(r.averages.ours, 5) << ", combined "
     << format_fixed(r.averages.combined, 5) << "\n";
  return os.str();
}

std::string table_inject(const InjectResult& r) {
  std::ostringstream os;
  os << r.component << " (width " << r.width << "): " << r.gate_count
     << " gates, " << r.logic_gates << " logic\n"
     << "strikes:        " << r.result.trials
     << (r.gate ? " on gate " + std::to_string(*r.gate) : "") << "\n"
     << "propagated:     " << r.result.propagated << "\n"
     << "sensitivity:    " << format_fixed(r.result.logical_sensitivity, 5)
     << " +/- " << format_fixed(r.result.half_width_95, 5)
     << " (95% Wilson)\n"
     << "susceptibility: " << format_fixed(r.result.susceptibility, 5)
     << "\n";
  return os.str();
}

std::string table_rank_gates(const RankGatesResult& r) {
  std::ostringstream os;
  os << r.component << " (width " << r.width
     << "), most sensitive gates:\n";
  Table t({"gate", "kind", "sensitivity", "+/- 95%"});
  for (std::size_t i = 0; i < r.gates.size(); ++i) {
    t.add_row({std::to_string(r.gates[i].gate), r.kinds[i],
               format_fixed(r.gates[i].result.logical_sensitivity, 5),
               format_fixed(r.gates[i].result.half_width_95, 5)});
  }
  os << t.render();
  return os.str();
}

std::string table_sta(const StaResult& r) {
  std::ostringstream os;
  os << r.target << " (width " << r.width << "): " << r.gate_count
     << " gates, " << r.logic_gates << " logic, " << r.levels
     << " levels, " << r.endpoints << " endpoints\n"
     << "clock:       " << format_fixed(r.clock, 5) << "\n"
     << "arrival max: " << format_fixed(r.arrival_max, 5) << "\n"
     << "wns:         " << format_fixed(r.wns, 5) << "\n"
     << "tns:         " << format_fixed(r.tns, 5) << "\n";
  if (!r.paths.empty()) {
    os << "critical paths (worst first):\n";
    for (const auto& p : r.paths) {
      os << "  endpoint " << p.endpoint << " arrival "
         << format_fixed(p.arrival, 5) << " slack "
         << format_fixed(p.slack, 5) << ":";
      for (const auto& s : p.steps) {
        os << " " << s.kind << "#" << s.gate << "@"
           << format_fixed(s.arrival, 5);
      }
      os << "\n";
    }
  }
  if (!r.histogram.empty()) {
    os << "endpoint slack histogram:\n";
    for (const auto& b : r.histogram) {
      os << "  [" << format_fixed(b.lo, 5) << ", " << format_fixed(b.hi, 5)
         << "): " << b.count << "\n";
    }
  }
  if (!r.rows.empty()) {
    os << "sensitivity vs slack (most sensitive first):\n";
    Table t({"gate", "kind", "sensitivity", "slack"});
    for (const auto& row : r.rows) {
      t.add_row({std::to_string(row.gate), row.kind,
                 format_fixed(row.sensitivity, 5),
                 format_fixed(row.slack, 5)});
    }
    os << t.render();
  }
  return os.str();
}

std::string table_find_design(const FindDesignResult& r,
                              const RunReport& report) {
  std::ostringstream os;
  os << "engine " << r.engine << ", bounds Ld=" << r.latency_bound
     << " Ad=" << format_fixed(r.area_bound, 2) << "\n";
  if (!r.solved) {
    os << "no solution: " << r.no_solution_reason << "\n";
    return os.str();
  }
  os << hls::schedule_table(*r.design, *report.graph, report.library)
     << hls::design_summary(*r.design, *report.graph, report.library);
  return os.str();
}

}  // namespace

std::string to_json(const RunReport& report) {
  auto doc = json::Value::object();
  doc.set("format_version", 1).set("scenario", report.scenario_name);

  if (report.graph) {
    auto g = json::Value::object();
    g.set("name", report.graph->name())
        .set("nodes", report.graph->node_count())
        .set("edges", report.graph->edge_count());
    doc.set("graph", std::move(g));
  } else {
    doc.set("graph", json::Value());
  }

  auto lib = json::Value::array();
  for (const auto& v : report.library.versions()) {
    auto jv = json::Value::object();
    jv.set("name", v.name)
        .set("class", library::to_string(v.cls))
        .set("area", v.area)
        .set("delay", v.delay)
        .set("reliability", v.reliability);
    lib.push(std::move(jv));
  }
  doc.set("library", std::move(lib));

  auto actions = json::Value::array();
  for (const auto& a : report.actions) {
    json::Value v = json::Value::object();
    if (const auto* fd = std::get_if<FindDesignResult>(&a.data)) {
      v = json_find_design(*fd, report.library);
    } else if (const auto* sw = std::get_if<SweepResult>(&a.data)) {
      v = json_sweep(*sw);
    } else if (const auto* gr = std::get_if<GridResult>(&a.data)) {
      v = json_grid(*gr);
    } else if (const auto* in = std::get_if<InjectResult>(&a.data)) {
      v = json_inject(*in);
    } else if (const auto* st = std::get_if<StaResult>(&a.data)) {
      v = json_sta(*st);
    } else {
      v = json_rank_gates(std::get<RankGatesResult>(a.data));
    }
    auto entry = json::Value::object();
    entry.set("label", a.label).set("kind", kind_name(a));
    // splice the action payload after the identity keys
    entry.set("result", std::move(v));
    actions.push(std::move(entry));
  }
  doc.set("actions", std::move(actions));
  return doc.dump(2) + "\n";
}

std::string to_csv(const RunReport& report) {
  std::ostringstream os;
  bool first = true;
  for (const auto& a : report.actions) {
    if (!first) os << "\n";
    first = false;
    os << "# action " << a.label << " " << kind_name(a) << "\n";
    if (const auto* fd = std::get_if<FindDesignResult>(&a.data)) {
      os << csv_find_design(*fd);
    } else if (const auto* sw = std::get_if<SweepResult>(&a.data)) {
      os << hls::to_csv(sw->points);
    } else if (const auto* gr = std::get_if<GridResult>(&a.data)) {
      os << hls::to_csv(gr->rows);
      os << "\n# action " << a.label << " averages\n"
         << "baseline,ours,combined,solved_cells,total_cells\n"
         << format_fixed(gr->averages.baseline, 6) << ","
         << format_fixed(gr->averages.ours, 6) << ","
         << format_fixed(gr->averages.combined, 6) << ","
         << gr->averages.solved_cells << "," << gr->averages.total_cells
         << "\n";
    } else if (const auto* in = std::get_if<InjectResult>(&a.data)) {
      os << csv_inject(*in);
    } else if (const auto* st = std::get_if<StaResult>(&a.data)) {
      os << csv_sta(*st);
      os << "\n# action " << a.label << " rows\n" << csv_sta_rows(*st);
    } else {
      os << csv_rank_gates(std::get<RankGatesResult>(a.data));
    }
  }
  return os.str();
}

std::string to_table(const RunReport& report) {
  std::ostringstream os;
  os << "scenario " << report.scenario_name;
  if (report.graph) {
    os << " | graph " << report.graph->name() << " ("
       << report.graph->node_count() << " ops, "
       << report.graph->edge_count() << " deps)";
  }
  os << " | library:";
  for (const auto& v : report.library.versions()) os << " " << v.name;
  os << "\n";

  for (const auto& a : report.actions) {
    os << "\n== " << a.label << " (" << kind_name(a) << ") ==\n";
    if (const auto* fd = std::get_if<FindDesignResult>(&a.data)) {
      os << table_find_design(*fd, report);
    } else if (const auto* sw = std::get_if<SweepResult>(&a.data)) {
      os << table_sweep(*sw);
    } else if (const auto* gr = std::get_if<GridResult>(&a.data)) {
      os << table_grid(*gr);
    } else if (const auto* in = std::get_if<InjectResult>(&a.data)) {
      os << table_inject(*in);
    } else if (const auto* st = std::get_if<StaResult>(&a.data)) {
      os << table_sta(*st);
    } else {
      os << table_rank_gates(std::get<RankGatesResult>(a.data));
    }
  }
  return os.str();
}

}  // namespace rchls::scenario::report

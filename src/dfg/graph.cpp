#include "dfg/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace rchls::dfg {

const char* to_string(OpType op) {
  switch (op) {
    case OpType::kAdd: return "add";
    case OpType::kSub: return "sub";
    case OpType::kMul: return "mul";
    case OpType::kLt: return "lt";
  }
  return "?";
}

OpType op_from_string(const std::string& s) {
  if (s == "add") return OpType::kAdd;
  if (s == "sub") return OpType::kSub;
  if (s == "mul") return OpType::kMul;
  if (s == "lt") return OpType::kLt;
  throw ParseError("unknown operation type '" + s + "'");
}

Graph::Graph(std::string name) : name_(std::move(name)) {}

NodeId Graph::add_node(const std::string& name, OpType op) {
  if (name.empty()) throw Error("add_node: name must not be empty");
  if (contains(name)) {
    throw Error("add_node: duplicate node name '" + name + "'");
  }
  nodes_.push_back(Node{name, op});
  preds_.emplace_back();
  succs_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Graph::add_edge(NodeId from, NodeId to) {
  check_id(from, "add_edge");
  check_id(to, "add_edge");
  if (from == to) throw Error("add_edge: self-loop on '" + nodes_[from].name +
                              "'");
  auto& out = succs_[from];
  if (std::find(out.begin(), out.end(), to) != out.end()) {
    throw Error("add_edge: duplicate edge " + nodes_[from].name + " -> " +
                nodes_[to].name);
  }
  out.push_back(to);
  preds_[to].push_back(from);
  ++edge_count_;
}

const Node& Graph::node(NodeId id) const {
  check_id(id, "node");
  return nodes_[id];
}

const std::vector<NodeId>& Graph::predecessors(NodeId id) const {
  check_id(id, "predecessors");
  return preds_[id];
}

const std::vector<NodeId>& Graph::successors(NodeId id) const {
  check_id(id, "successors");
  return succs_[id];
}

std::vector<NodeId> Graph::sources() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (preds_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Graph::sinks() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (succs_[id].empty()) out.push_back(id);
  }
  return out;
}

NodeId Graph::find(const std::string& name) const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].name == name) return id;
  }
  throw Error("find: no node named '" + name + "' in " + name_);
}

bool Graph::contains(const std::string& name) const {
  for (const Node& n : nodes_) {
    if (n.name == name) return true;
  }
  return false;
}

std::size_t Graph::count_ops(OpType op) const {
  std::size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.op == op) ++n;
  }
  return n;
}

std::vector<NodeId> Graph::topological_order() const {
  std::vector<std::size_t> indegree(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    indegree[id] = preds_[id].size();
  }
  // Smallest-ready-id-first keeps the order deterministic and, for graphs
  // whose ids are already topologically sorted (all built-in benchmarks),
  // identical to id order -- which downstream consumers (elaboration port
  // order, reports) rely on for readability.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>>
      ready;
  for (NodeId id : sources()) ready.push(id);
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    NodeId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (NodeId s : succs_[id]) {
      if (--indegree[s] == 0) ready.push(s);
    }
  }
  if (order.size() != nodes_.size()) {
    throw ValidationError(name_ + ": graph contains a cycle");
  }
  return order;
}

void Graph::validate() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId s : succs_[id]) {
      const auto& p = preds_[s];
      if (std::find(p.begin(), p.end(), id) == p.end()) {
        throw ValidationError(name_ + ": adjacency lists inconsistent");
      }
    }
  }
  (void)topological_order();  // throws on cycles
}

void Graph::check_id(NodeId id, const char* who) const {
  if (id >= nodes_.size()) {
    throw Error(std::string(who) + ": node id out of range in " + name_);
  }
}

}  // namespace rchls::dfg

// ASAP / ALAP analysis, mobility, and critical paths over a DFG with
// per-node integer delays (clock cycles). These are the timing primitives
// the paper's Find_Design algorithm calls in its lines 4, 11 and 18.
//
// Conventions: a node with start time s and delay d occupies control steps
// s, s+1, ..., s+d-1 (0-based); a successor may start at s+d. The
// "latency" of a schedule is max(s + d) over all nodes, i.e. the number of
// control steps used.
#pragma once

#include <span>
#include <vector>

#include "dfg/graph.hpp"

namespace rchls::dfg {

/// Per-node delays in cycles; delays[id] must be >= 1.
using Delays = std::vector<int>;

/// Earliest start times. Throws Error on bad delay vectors.
std::vector<int> asap(const Graph& g, std::span<const int> delays);

/// Latency of the ASAP schedule = the minimum feasible latency.
int asap_latency(const Graph& g, std::span<const int> delays);

/// Latest start times for the given target latency. Throws
/// NoSolutionError if latency < asap_latency.
std::vector<int> alap(const Graph& g, std::span<const int> delays,
                      int latency);

/// alap - asap slack per node for the given latency.
std::vector<int> mobility(const Graph& g, std::span<const int> delays,
                          int latency);

/// One maximum-weight (sum of delays) source-to-sink path, in topological
/// order. Deterministic: ties break toward smaller node ids.
std::vector<NodeId> critical_path(const Graph& g, std::span<const int> delays);

/// All nodes with zero mobility at the ASAP latency (i.e. nodes on some
/// critical path).
std::vector<NodeId> critical_nodes(const Graph& g,
                                   std::span<const int> delays);

}  // namespace rchls::dfg

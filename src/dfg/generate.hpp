// Random layered-DAG generation for property tests and scalability
// benchmarks: produces graphs with the fan-in/fan-out character of HLS
// data-flow graphs (binary operations, mostly short dependence edges).
#pragma once

#include <cstdint>

#include "dfg/graph.hpp"

namespace rchls::dfg {

struct GeneratorConfig {
  std::size_t num_nodes = 32;
  /// Approximate fraction of multiply nodes (the rest are adds/subs).
  double mul_fraction = 0.3;
  /// Average number of nodes per topological layer; controls parallelism.
  double layer_width = 4.0;
  std::uint64_t seed = 42;
};

/// Generates a connected-ish random DAG: every non-first-layer node gets
/// one or two predecessors drawn from earlier layers (biased to the
/// immediately preceding layer).
Graph generate_random(const GeneratorConfig& config);

}  // namespace rchls::dfg

// Random DAG generation for property tests, the workload corpus
// (workload/corpus.hpp) and scalability benchmarks: produces graphs with
// the fan-in/fan-out character of HLS data-flow graphs (binary
// operations, mostly short dependence edges) in several structural
// families.
//
// Determinism contract: generate_random is a pure function of its
// GeneratorConfig. The same config produces the same graph -- node ids,
// names, ops and adjacency -- on every platform, in every process,
// forever (the corpus reproducibility story of docs/workloads.md depends
// on it, and tests/dfg_generate_test.cpp pins golden dfg::to_text
// captures per shape). Changing the meaning of an existing (shape, seed)
// pair is a breaking change; add a new shape instead.
#pragma once

#include <cstdint>

#include "dfg/graph.hpp"

namespace rchls::dfg {

/// Structural family of a generated graph.
enum class GraphShape : std::uint8_t {
  /// Random layered DAG (the original generator): nodes grouped into
  /// layers of ~layer_width, each non-first-layer node wired to one or
  /// two earlier nodes, biased to the previous layer.
  kLayered,
  /// A single dependence chain n0 -> n1 -> ... -> n_{k-1}: no
  /// parallelism at all, the worst case for list scheduling and the
  /// best case for consolidation.
  kChain,
  /// A rooted fan-out tree of arity max_fanout (default 2): maximal
  /// result reuse pressure, every non-root node has exactly one
  /// predecessor.
  kFanoutTree,
  /// Diamond/butterfly stages of fixed width ~layer_width: each node
  /// feeds its same-index successor and a stride-offset partner in the
  /// next stage (FFT dependence structure, dense cross-stage traffic).
  kButterfly,
  /// Paper-like filter: t pre-add sources, t coefficient multiplies,
  /// and a (t-1)-adder accumulation chain -- the fir16 template at
  /// arbitrary tap counts (num_nodes is rounded to the nearest 3t-1).
  kFilter,
};

/// "layered" / "chain" / "fanout_tree" / "butterfly" / "filter" (the
/// spelling the corpus manifest and perf_scale JSON record).
const char* to_string(GraphShape shape);

struct GeneratorConfig {
  std::size_t num_nodes = 32;
  /// Approximate fraction of multiply nodes (the rest are adds/subs).
  /// kFilter ignores it: the template fixes the op mix.
  double mul_fraction = 0.3;
  /// Average number of nodes per topological layer (kLayered) or the
  /// stage width (kButterfly); controls parallelism.
  double layer_width = 4.0;
  std::uint64_t seed = 42;
  GraphShape shape = GraphShape::kLayered;
  /// Fan-out control. kLayered: when > 0, predecessor picks avoid
  /// sources that already have this many successors (best effort, the
  /// bias keeps edge counts deterministic). kFanoutTree: the tree arity
  /// (0 means 2). Other shapes ignore it.
  std::size_t max_fanout = 0;
};

/// Generates a graph of the configured shape. Every shape is a valid
/// connected-ish DAG (validate() passes by construction). Throws Error
/// on nonsensical configs (0 nodes, layer_width < 1, mul_fraction
/// outside [0, 1]).
Graph generate_random(const GeneratorConfig& config);

}  // namespace rchls::dfg

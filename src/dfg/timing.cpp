#include "dfg/timing.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rchls::dfg {

namespace {

void check_delays(const Graph& g, std::span<const int> delays,
                  const char* who) {
  if (delays.size() != g.node_count()) {
    throw Error(std::string(who) + ": delay vector size mismatch");
  }
  for (int d : delays) {
    if (d < 1) throw Error(std::string(who) + ": delays must be >= 1");
  }
}

}  // namespace

std::vector<int> asap(const Graph& g, std::span<const int> delays) {
  check_delays(g, delays, "asap");
  std::vector<int> start(g.node_count(), 0);
  for (NodeId id : g.topological_order()) {
    int s = 0;
    for (NodeId p : g.predecessors(id)) {
      s = std::max(s, start[p] + delays[p]);
    }
    start[id] = s;
  }
  return start;
}

int asap_latency(const Graph& g, std::span<const int> delays) {
  auto start = asap(g, delays);
  int latency = 0;
  for (NodeId id = 0; id < g.node_count(); ++id) {
    latency = std::max(latency, start[id] + delays[id]);
  }
  return latency;
}

std::vector<int> alap(const Graph& g, std::span<const int> delays,
                      int latency) {
  check_delays(g, delays, "alap");
  int min_latency = asap_latency(g, delays);
  if (latency < min_latency) {
    throw NoSolutionError("alap: latency " + std::to_string(latency) +
                          " below minimum " + std::to_string(min_latency));
  }
  std::vector<int> start(g.node_count(), 0);
  auto order = g.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId id = *it;
    int s = latency - delays[id];
    for (NodeId succ : g.successors(id)) {
      s = std::min(s, start[succ] - delays[id]);
    }
    start[id] = s;
  }
  return start;
}

std::vector<int> mobility(const Graph& g, std::span<const int> delays,
                          int latency) {
  auto early = asap(g, delays);
  auto late = alap(g, delays, latency);
  std::vector<int> m(g.node_count());
  for (NodeId id = 0; id < g.node_count(); ++id) {
    m[id] = late[id] - early[id];
  }
  return m;
}

std::vector<NodeId> critical_path(const Graph& g,
                                  std::span<const int> delays) {
  check_delays(g, delays, "critical_path");
  if (g.node_count() == 0) return {};

  // dist[id]: weight of the heaviest path ending at id (inclusive).
  std::vector<long long> dist(g.node_count(), 0);
  std::vector<NodeId> parent(g.node_count(), 0);
  std::vector<bool> has_parent(g.node_count(), false);
  for (NodeId id : g.topological_order()) {
    long long best = 0;
    NodeId best_p = 0;
    bool found = false;
    for (NodeId p : g.predecessors(id)) {
      if (!found || dist[p] > best || (dist[p] == best && p < best_p)) {
        best = dist[p];
        best_p = p;
        found = true;
      }
    }
    dist[id] = best + delays[id];
    parent[id] = best_p;
    has_parent[id] = found;
  }

  NodeId end = 0;
  for (NodeId id = 1; id < g.node_count(); ++id) {
    if (dist[id] > dist[end]) end = id;
  }
  std::vector<NodeId> path{end};
  while (has_parent[path.back()]) path.push_back(parent[path.back()]);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NodeId> critical_nodes(const Graph& g,
                                   std::span<const int> delays) {
  int latency = asap_latency(g, delays);
  auto m = mobility(g, delays, latency);
  std::vector<NodeId> out;
  for (NodeId id = 0; id < g.node_count(); ++id) {
    if (m[id] == 0) out.push_back(id);
  }
  return out;
}

}  // namespace rchls::dfg

#include "dfg/generate.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rchls::dfg {

namespace {

// The shared op draw: mul with probability mul_fraction, then sub for a
// quarter of the rest. One Rng stream per graph keeps every shape a pure
// function of its config.
OpType draw_op(Rng& rng, double mul_fraction) {
  return rng.next_bool(mul_fraction)
             ? OpType::kMul
             : (rng.next_bool(0.25) ? OpType::kSub : OpType::kAdd);
}

// The original layered generator (the kLayered shape). The max_fanout ==
// 0 path is byte-for-byte the pre-shape generator: existing seeds keep
// producing the exact same graphs.
Graph generate_layered(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Graph g("random_" + std::to_string(config.num_nodes));

  // Assign nodes to layers of roughly layer_width each.
  std::vector<std::vector<NodeId>> layers;
  std::vector<NodeId> current;
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    NodeId id = g.add_node("n" + std::to_string(i),
                           draw_op(rng, config.mul_fraction));
    current.push_back(id);
    // Close the layer probabilistically so widths average layer_width.
    if (rng.next_bool(1.0 / config.layer_width) ||
        i + 1 == config.num_nodes) {
      layers.push_back(current);
      current.clear();
    }
  }

  // Wire each node in layer L>0 to one or two nodes from earlier layers,
  // 75% of picks from layer L-1 to keep dependence chains realistic.
  for (std::size_t l = 1; l < layers.size(); ++l) {
    for (NodeId id : layers[l]) {
      int fanin = rng.next_bool(0.7) ? 2 : 1;
      for (int k = 0; k < fanin; ++k) {
        std::size_t src_layer =
            rng.next_bool(0.75) ? l - 1 : rng.next_below(l);
        const auto& pool = layers[src_layer];
        NodeId src = pool[rng.next_below(pool.size())];
        // Fan-out control: while the pick is at the cap, redraw (layer
        // and candidate, same 75/25 bias) a bounded number of times and
        // keep the least-loaded candidate seen. Best effort -- a hard
        // cap could strand late nodes without predecessors when every
        // reachable source is saturated -- but it dissolves the
        // single-node-layer hubs the unbounded generator produces.
        if (config.max_fanout > 0) {
          for (int attempt = 0;
               attempt < 8 && g.successors(src).size() >= config.max_fanout;
               ++attempt) {
            std::size_t retry_layer =
                rng.next_bool(0.75) ? l - 1 : rng.next_below(l);
            const auto& retry_pool = layers[retry_layer];
            NodeId other = retry_pool[rng.next_below(retry_pool.size())];
            if (g.successors(other).size() < g.successors(src).size()) {
              src = other;
            }
          }
        }
        // Duplicate edges are possible with two picks; skip quietly.
        const auto& succs = g.successors(src);
        if (std::find(succs.begin(), succs.end(), id) == succs.end()) {
          g.add_edge(src, id);
        }
      }
    }
  }
  return g;
}

Graph generate_chain(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Graph g("chain_" + std::to_string(config.num_nodes));
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    NodeId id = g.add_node("n" + std::to_string(i),
                           draw_op(rng, config.mul_fraction));
    if (i > 0) g.add_edge(id - 1, id);
  }
  return g;
}

Graph generate_fanout_tree(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Graph g("fanout_tree_" + std::to_string(config.num_nodes));
  std::size_t arity = config.max_fanout > 0 ? config.max_fanout : 2;
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    NodeId id = g.add_node("n" + std::to_string(i),
                           draw_op(rng, config.mul_fraction));
    if (i > 0) g.add_edge(static_cast<NodeId>((i - 1) / arity), id);
  }
  return g;
}

Graph generate_butterfly(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Graph g("butterfly_" + std::to_string(config.num_nodes));
  std::size_t width = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(config.layer_width)));

  // Stage-major construction; the last stage may be partial.
  std::vector<std::vector<NodeId>> stages;
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    if (stages.empty() || stages.back().size() == width) {
      stages.emplace_back();
    }
    stages.back().push_back(g.add_node("n" + std::to_string(i),
                                       draw_op(rng, config.mul_fraction)));
  }
  // Each stage-s node i reads its same-index predecessor and a
  // stride-offset partner; the stride cycles 1, 2, ... like an FFT's
  // butterfly distances.
  for (std::size_t s = 1; s < stages.size(); ++s) {
    const auto& prev = stages[s - 1];
    std::size_t stride = ((s - 1) % (width - 1)) + 1;
    for (std::size_t i = 0; i < stages[s].size(); ++i) {
      NodeId id = stages[s][i];
      NodeId straight = prev[i % prev.size()];
      NodeId partner = prev[(i + stride) % prev.size()];
      g.add_edge(straight, id);
      if (partner != straight) g.add_edge(partner, id);
    }
  }
  return g;
}

// The fir16 template at arbitrary tap counts: t pre-adder sources, t
// coefficient multiplies, a (t-1)-adder accumulation chain (3t-1 nodes).
Graph generate_filter(const GeneratorConfig& config) {
  std::size_t taps = std::max<std::size_t>(
      2, (config.num_nodes + 1) / 3);
  Graph g("filter_" + std::to_string(3 * taps - 1));
  std::vector<NodeId> pre(taps), mul(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    pre[i] = g.add_node("pre" + std::to_string(i), OpType::kAdd);
  }
  for (std::size_t i = 0; i < taps; ++i) {
    mul[i] = g.add_node("mul" + std::to_string(i), OpType::kMul);
    g.add_edge(pre[i], mul[i]);
  }
  NodeId acc = 0;
  for (std::size_t i = 0; i + 1 < taps; ++i) {
    NodeId next = g.add_node("acc" + std::to_string(i), OpType::kAdd);
    g.add_edge(i == 0 ? mul[0] : acc, next);
    g.add_edge(mul[i + 1], next);
    acc = next;
  }
  return g;
}

}  // namespace

const char* to_string(GraphShape shape) {
  switch (shape) {
    case GraphShape::kLayered: return "layered";
    case GraphShape::kChain: return "chain";
    case GraphShape::kFanoutTree: return "fanout_tree";
    case GraphShape::kButterfly: return "butterfly";
    case GraphShape::kFilter: return "filter";
  }
  throw Error("to_string: unknown GraphShape");
}

Graph generate_random(const GeneratorConfig& config) {
  if (config.num_nodes == 0) throw Error("generate_random: need >= 1 node");
  if (config.layer_width < 1.0) {
    throw Error("generate_random: layer_width must be >= 1");
  }
  if (config.mul_fraction < 0.0 || config.mul_fraction > 1.0) {
    throw Error("generate_random: mul_fraction must lie in [0, 1]");
  }

  Graph g("dfg");
  switch (config.shape) {
    case GraphShape::kLayered: g = generate_layered(config); break;
    case GraphShape::kChain: g = generate_chain(config); break;
    case GraphShape::kFanoutTree: g = generate_fanout_tree(config); break;
    case GraphShape::kButterfly: g = generate_butterfly(config); break;
    case GraphShape::kFilter: g = generate_filter(config); break;
  }
  g.validate();
  return g;
}

}  // namespace rchls::dfg

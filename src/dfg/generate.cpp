#include "dfg/generate.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rchls::dfg {

Graph generate_random(const GeneratorConfig& config) {
  if (config.num_nodes == 0) throw Error("generate_random: need >= 1 node");
  if (config.layer_width < 1.0) {
    throw Error("generate_random: layer_width must be >= 1");
  }
  if (config.mul_fraction < 0.0 || config.mul_fraction > 1.0) {
    throw Error("generate_random: mul_fraction must lie in [0, 1]");
  }

  Rng rng(config.seed);
  Graph g("random_" + std::to_string(config.num_nodes));

  // Assign nodes to layers of roughly layer_width each.
  std::vector<std::vector<NodeId>> layers;
  std::vector<NodeId> current;
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    OpType op = rng.next_bool(config.mul_fraction)
                    ? OpType::kMul
                    : (rng.next_bool(0.25) ? OpType::kSub : OpType::kAdd);
    NodeId id = g.add_node("n" + std::to_string(i), op);
    current.push_back(id);
    // Close the layer probabilistically so widths average layer_width.
    if (rng.next_bool(1.0 / config.layer_width) ||
        i + 1 == config.num_nodes) {
      layers.push_back(current);
      current.clear();
    }
  }

  // Wire each node in layer L>0 to one or two nodes from earlier layers,
  // 75% of picks from layer L-1 to keep dependence chains realistic.
  for (std::size_t l = 1; l < layers.size(); ++l) {
    for (NodeId id : layers[l]) {
      int fanin = rng.next_bool(0.7) ? 2 : 1;
      for (int k = 0; k < fanin; ++k) {
        std::size_t src_layer =
            rng.next_bool(0.75) ? l - 1 : rng.next_below(l);
        const auto& pool = layers[src_layer];
        NodeId src = pool[rng.next_below(pool.size())];
        // Duplicate edges are possible with two picks; skip quietly.
        const auto& succs = g.successors(src);
        if (std::find(succs.begin(), succs.end(), id) == succs.end()) {
          g.add_edge(src, id);
        }
      }
    }
  }
  g.validate();
  return g;
}

}  // namespace rchls::dfg

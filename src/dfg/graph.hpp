// Data-flow graph (DFG) intermediate representation.
//
// A DFG Gs(V, E) is the behavioral input to the synthesis problem (paper
// Section 6): nodes are operations, edges are data dependences. Following
// the paper, operand values / primary inputs are implicit -- only
// operations are modeled, and the graph must be a DAG.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rchls::dfg {

using NodeId = std::uint32_t;

/// Operation kinds appearing in the HLS benchmarks. Comparisons and
/// subtractions execute on adder-class resources; multiplications on
/// multiplier-class resources (see library/resource.hpp).
enum class OpType : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kLt,  ///< less-than comparison (DiffEq's loop test)
};

const char* to_string(OpType op);

/// Parses "add" / "sub" / "mul" / "lt"; throws ParseError otherwise.
OpType op_from_string(const std::string& s);

struct Node {
  std::string name;
  OpType op = OpType::kAdd;
};

class Graph {
 public:
  explicit Graph(std::string name = "dfg");

  const std::string& name() const { return name_; }

  /// Adds an operation; names must be unique and non-empty.
  NodeId add_node(const std::string& name, OpType op);

  /// Adds the dependence `from -> to`. Duplicate edges are rejected.
  void add_edge(NodeId from, NodeId to);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edge_count_; }
  const Node& node(NodeId id) const;
  const std::vector<Node>& nodes() const { return nodes_; }

  const std::vector<NodeId>& predecessors(NodeId id) const;
  const std::vector<NodeId>& successors(NodeId id) const;

  /// Nodes with no predecessors / successors.
  std::vector<NodeId> sources() const;
  std::vector<NodeId> sinks() const;

  /// Node id by name; throws Error if absent.
  NodeId find(const std::string& name) const;
  bool contains(const std::string& name) const;

  /// Number of nodes of the given operation type.
  std::size_t count_ops(OpType op) const;

  /// Kahn topological order; throws ValidationError if the graph has a
  /// cycle.
  std::vector<NodeId> topological_order() const;

  /// Full structural check: DAG-ness plus internal adjacency consistency.
  void validate() const;

 private:
  void check_id(NodeId id, const char* who) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> preds_;
  std::vector<std::vector<NodeId>> succs_;
  std::size_t edge_count_ = 0;
};

}  // namespace rchls::dfg

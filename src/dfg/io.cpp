#include "dfg/io.hpp"

#include <istream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rchls::dfg {

Graph parse(std::istream& in) {
  Graph g;
  bool named = false;
  std::string line;
  int lineno = 0;
  auto fail = [&lineno](const std::string& msg) {
    throw ParseError("line " + std::to_string(lineno) + ": " + msg);
  };

  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    auto tokens = split_ws(line);
    if (tokens.empty()) continue;

    const std::string& directive = tokens[0];
    if (directive == "dfg") {
      if (tokens.size() != 2) fail("expected: dfg <name>");
      if (named) fail("duplicate dfg directive");
      g = Graph(tokens[1]);
      named = true;
    } else if (directive == "node") {
      if (tokens.size() != 3) fail("expected: node <name> <op>");
      try {
        g.add_node(tokens[1], op_from_string(tokens[2]));
      } catch (const Error& e) {
        fail(e.what());
      }
    } else if (directive == "edge") {
      if (tokens.size() != 3) fail("expected: edge <from> <to>");
      try {
        g.add_edge(g.find(tokens[1]), g.find(tokens[2]));
      } catch (const Error& e) {
        fail(e.what());
      }
    } else {
      fail("unknown directive '" + directive + "'");
    }
  }
  g.validate();
  return g;
}

Graph parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

std::string to_text(const Graph& g) {
  std::ostringstream os;
  os << "dfg " << g.name() << "\n";
  for (NodeId id = 0; id < g.node_count(); ++id) {
    const Node& n = g.node(id);
    os << "node " << n.name << " " << to_string(n.op) << "\n";
  }
  for (NodeId id = 0; id < g.node_count(); ++id) {
    for (NodeId s : g.successors(id)) {
      os << "edge " << g.node(id).name << " " << g.node(s).name << "\n";
    }
  }
  return os.str();
}

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n";
  for (NodeId id = 0; id < g.node_count(); ++id) {
    const Node& n = g.node(id);
    const char* shape = n.op == OpType::kMul ? "box" : "ellipse";
    os << "  n" << id << " [label=\"" << n.name << "\\n" << to_string(n.op)
       << "\", shape=" << shape << "];\n";
  }
  for (NodeId id = 0; id < g.node_count(); ++id) {
    for (NodeId s : g.successors(id)) {
      os << "  n" << id << " -> n" << s << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace rchls::dfg

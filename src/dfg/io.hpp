// Text serialization for DFGs.
//
// Format (one directive per line, '#' starts a comment):
//
//   dfg  <name>
//   node <name> <op>        # op in {add, sub, mul, lt}
//   edge <from> <to>        # by node name; nodes must be declared first
//
// This is the interchange format for user-supplied designs (see
// examples/custom_graph.dfg-style usage in the README).
#pragma once

#include <iosfwd>
#include <string>

#include "dfg/graph.hpp"

namespace rchls::dfg {

/// Parses the text format; throws ParseError with a line number on errors.
Graph parse(std::istream& in);
Graph parse_string(const std::string& text);

/// Writes the text format (round-trips through parse()).
std::string to_text(const Graph& g);

/// Graphviz rendering for documentation and debugging.
std::string to_dot(const Graph& g);

}  // namespace rchls::dfg

// Text serialization for DFGs.
//
// Format (one directive per line, '#' starts a comment):
//
//   dfg  <name>
//   node <name> <op>        # op in {add, sub, mul, lt}
//   edge <from> <to>        # by node name; nodes must be declared first
//
// This is the interchange format for user-supplied designs: `rchls synth
// <file>` reads it directly, and scenario files embed the same
// `dfg`/`node`/`edge` directives inline or pull a file in via
// `graph @<file>` (full reference: docs/scenario-format.md).
#pragma once

#include <iosfwd>
#include <string>

#include "dfg/graph.hpp"

namespace rchls::dfg {

/// Parses the text format. Throws ParseError carrying "line <n>:" for
/// malformed or unknown directives, duplicate/undeclared node names, and
/// unparsable ops; a graph whose edges form a cycle throws
/// ValidationError (from Graph::validate) instead. Parsing is
/// deterministic and node ids follow declaration order.
Graph parse(std::istream& in);
Graph parse_string(const std::string& text);

/// Writes the text format. Round-trips through parse(): node ids, names,
/// ops and adjacency are preserved exactly. Never throws for a valid
/// Graph.
std::string to_text(const Graph& g);

/// Graphviz rendering for documentation and debugging: one node per
/// operation (multiplications boxed, adder-class ops elliptic), one arrow
/// per dependence, deterministic output in node-id order. Not meant to be
/// parsed back.
std::string to_dot(const Graph& g);

}  // namespace rchls::dfg

#include "bind/binding.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rchls::bind {

double total_area(const Binding& b, const library::ResourceLibrary& lib) {
  double area = 0.0;
  for (const Instance& inst : b.instances) {
    area += lib.version(inst.version).area;
  }
  return area;
}

std::vector<int> instance_histogram(const Binding& b,
                                    const library::ResourceLibrary& lib) {
  std::vector<int> hist(lib.size(), 0);
  for (const Instance& inst : b.instances) {
    hist[inst.version]++;
  }
  return hist;
}

void validate_binding(const dfg::Graph& g,
                      const library::ResourceLibrary& lib,
                      std::span<const library::VersionId> version_of,
                      const sched::Schedule& s, const Binding& b) {
  const std::size_t n = g.node_count();
  if (version_of.size() != n || b.instance_of.size() != n) {
    throw ValidationError("validate_binding: size mismatch");
  }

  std::vector<std::size_t> seen(n, 0);
  for (InstanceId i = 0; i < b.instances.size(); ++i) {
    const Instance& inst = b.instances[i];
    const auto& v = lib.version(inst.version);
    for (dfg::NodeId id : inst.ops) {
      if (id >= n) throw ValidationError("validate_binding: bad node id");
      seen[id]++;
      if (b.instance_of[id] != i) {
        throw ValidationError("validate_binding: instance_of inconsistent");
      }
      if (version_of[id] != inst.version) {
        throw ValidationError("validate_binding: node version differs from "
                              "instance version");
      }
      if (library::class_of(g.node(id).op) != v.cls) {
        throw ValidationError("validate_binding: node class does not match "
                              "instance class");
      }
    }
    // No overlapping intervals on one unit.
    std::vector<dfg::NodeId> ops = inst.ops;
    std::sort(ops.begin(), ops.end(),
              [&s](dfg::NodeId a, dfg::NodeId c) {
                return s.start[a] < s.start[c];
              });
    for (std::size_t k = 1; k < ops.size(); ++k) {
      int prev_end = s.start[ops[k - 1]] + v.delay;
      if (s.start[ops[k]] < prev_end) {
        throw ValidationError("validate_binding: operations '" +
                              g.node(ops[k - 1]).name + "' and '" +
                              g.node(ops[k]).name +
                              "' overlap on one instance");
      }
    }
  }
  for (std::size_t id = 0; id < n; ++id) {
    if (seen[id] != 1) {
      throw ValidationError("validate_binding: node '" + g.node(
          static_cast<dfg::NodeId>(id)).name + "' bound " +
          std::to_string(seen[id]) + " times");
    }
  }
}

}  // namespace rchls::bind

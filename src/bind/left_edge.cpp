#include "bind/left_edge.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace rchls::bind {

Binding left_edge_bind(const dfg::Graph& g,
                       const library::ResourceLibrary& lib,
                       std::span<const library::VersionId> version_of,
                       const sched::Schedule& s) {
  const std::size_t n = g.node_count();
  if (version_of.size() != n || s.start.size() != n) {
    throw Error("left_edge_bind: size mismatch");
  }
  for (dfg::NodeId id = 0; id < n; ++id) {
    if (library::class_of(g.node(id).op) !=
        lib.version(version_of[id]).cls) {
      throw Error("left_edge_bind: node '" + g.node(id).name +
                  "' assigned a version of the wrong class");
    }
  }

  Binding b;
  b.instance_of.assign(n, 0);

  // Group nodes by version, keeping deterministic order.
  std::map<library::VersionId, std::vector<dfg::NodeId>> groups;
  for (dfg::NodeId id = 0; id < n; ++id) {
    groups[version_of[id]].push_back(id);
  }

  for (auto& [version, ops] : groups) {
    int delay = lib.version(version).delay;
    std::sort(ops.begin(), ops.end(), [&s](dfg::NodeId a, dfg::NodeId c) {
      if (s.start[a] != s.start[c]) return s.start[a] < s.start[c];
      return a < c;
    });

    // free_at[i]: first step at which instance i is idle again.
    std::vector<int> free_at;
    std::vector<InstanceId> instance_ids;
    for (dfg::NodeId id : ops) {
      // Reuse the instance that has been idle longest (smallest free_at);
      // classic left-edge packing.
      std::size_t chosen = free_at.size();
      for (std::size_t i = 0; i < free_at.size(); ++i) {
        if (free_at[i] <= s.start[id] &&
            (chosen == free_at.size() || free_at[i] < free_at[chosen])) {
          chosen = i;
        }
      }
      if (chosen == free_at.size()) {
        free_at.push_back(0);
        instance_ids.push_back(static_cast<InstanceId>(b.instances.size()));
        b.instances.push_back(Instance{version, {}});
      }
      free_at[chosen] = s.start[id] + delay;
      b.instances[instance_ids[chosen]].ops.push_back(id);
      b.instance_of[id] = instance_ids[chosen];
    }
  }

  validate_binding(g, lib, version_of, s, b);
  return b;
}

}  // namespace rchls::bind

// Register allocation by left-edge over value lifetimes (extension beyond
// the paper's area model, which counts functional units only).
//
// A node's value is live from its completion step until the last start
// step among its consumers; sink values are held for one step (output
// latch). Lifetimes are intervals, so left-edge packing yields the minimum
// register count for the given schedule.
#pragma once

#include <span>
#include <vector>

#include "sched/schedule.hpp"

namespace rchls::bind {

struct Lifetime {
  dfg::NodeId producer = 0;
  int begin = 0;  ///< first step the value exists (producer completion)
  int end = 0;    ///< one past the last step the value is needed
};

/// Lifetimes of all produced values under the schedule.
std::vector<Lifetime> value_lifetimes(const dfg::Graph& g,
                                      std::span<const int> delays,
                                      const sched::Schedule& s);

/// Minimum number of registers needed to hold all values.
int register_count(const dfg::Graph& g, std::span<const int> delays,
                   const sched::Schedule& s);

/// Left-edge register assignment: reg[node] is the register holding the
/// node's value. Uses register_count(...) registers.
std::vector<int> register_assignment(const dfg::Graph& g,
                                     std::span<const int> delays,
                                     const sched::Schedule& s);

}  // namespace rchls::bind

// Resource binding: the assignment of scheduled operations to functional-
// unit instances ("resource sharing" in the paper). Two operations may
// share an instance iff they use the same library version and their
// execution intervals do not overlap.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "library/resource.hpp"
#include "sched/schedule.hpp"

namespace rchls::bind {

using InstanceId = std::uint32_t;

/// One physical functional unit in the data path.
struct Instance {
  library::VersionId version = 0;
  std::vector<dfg::NodeId> ops;  ///< operations bound to this unit
};

struct Binding {
  std::vector<Instance> instances;
  /// instance_of[node] indexes into `instances`.
  std::vector<InstanceId> instance_of;
};

/// Sum of instance areas -- the paper's Find_Total_Area.
double total_area(const Binding& b, const library::ResourceLibrary& lib);

/// Number of instances using each version (indexed by VersionId).
std::vector<int> instance_histogram(const Binding& b,
                                    const library::ResourceLibrary& lib);

/// Throws ValidationError unless: every node is bound exactly once, each
/// node's version matches its instance's version, instance versions can
/// execute the node's operation class, and no two operations on one
/// instance overlap in time.
void validate_binding(const dfg::Graph& g,
                      const library::ResourceLibrary& lib,
                      std::span<const library::VersionId> version_of,
                      const sched::Schedule& s, const Binding& b);

}  // namespace rchls::bind

#include "bind/registers.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rchls::bind {

std::vector<Lifetime> value_lifetimes(const dfg::Graph& g,
                                      std::span<const int> delays,
                                      const sched::Schedule& s) {
  sched::validate_schedule(g, delays, s);
  std::vector<Lifetime> out;
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    Lifetime lt;
    lt.producer = id;
    lt.begin = s.start[id] + delays[id];
    lt.end = lt.begin + 1;  // sink values latch for one step
    for (dfg::NodeId succ : g.successors(id)) {
      lt.end = std::max(lt.end, s.start[succ] + 1);
    }
    out.push_back(lt);
  }
  return out;
}

std::vector<int> register_assignment(const dfg::Graph& g,
                                     std::span<const int> delays,
                                     const sched::Schedule& s) {
  auto lifetimes = value_lifetimes(g, delays, s);
  std::sort(lifetimes.begin(), lifetimes.end(),
            [](const Lifetime& a, const Lifetime& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.producer < b.producer;
            });
  std::vector<int> reg(g.node_count(), -1);
  std::vector<int> free_at;
  for (const Lifetime& lt : lifetimes) {
    bool reused = false;
    for (std::size_t r = 0; r < free_at.size(); ++r) {
      if (free_at[r] <= lt.begin) {
        free_at[r] = lt.end;
        reg[lt.producer] = static_cast<int>(r);
        reused = true;
        break;
      }
    }
    if (!reused) {
      reg[lt.producer] = static_cast<int>(free_at.size());
      free_at.push_back(lt.end);
    }
  }
  return reg;
}

int register_count(const dfg::Graph& g, std::span<const int> delays,
                   const sched::Schedule& s) {
  auto reg = register_assignment(g, delays, s);
  int count = 0;
  for (int r : reg) count = std::max(count, r + 1);
  return count;
}

}  // namespace rchls::bind

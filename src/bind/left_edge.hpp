// Left-edge resource binding: for each library version, sort its scheduled
// operations by start time and greedily pack them onto instances, opening a
// new instance only when every existing one is still busy. For interval
// graphs this uses the minimum number of instances per version.
#pragma once

#include <span>

#include "bind/binding.hpp"

namespace rchls::bind {

/// Binds every node to an instance of its assigned version. The schedule
/// must be valid for the delays implied by `version_of`.
Binding left_edge_bind(const dfg::Graph& g,
                       const library::ResourceLibrary& lib,
                       std::span<const library::VersionId> version_of,
                       const sched::Schedule& s);

}  // namespace rchls::bind

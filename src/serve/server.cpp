#include "serve/server.hpp"

#include "api/wire.hpp"
#include "parallel/config.hpp"
#include "serve/protocol.hpp"
#include "util/error.hpp"

namespace rchls::serve {

namespace {

const char* source_name(api::RunSource s) {
  switch (s) {
    case api::RunSource::kMemoryCache:
      return "memory";
    case api::RunSource::kDiskCache:
      return "disk";
    case api::RunSource::kExecuted:
      return "executor";
  }
  return "?";
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      session_(options_.session),
      queue_(options_.max_queue) {
  if (options_.max_queue < 1) {
    throw Error("serve: --max-queue must be at least 1");
  }
  if (options_.workers < 1) {
    throw Error("serve: --workers must be at least 1");
  }
  if (options_.socket_path.empty() && options_.tcp_port < 0) {
    throw Error("serve: need a --socket path or a --port to listen on");
  }

  if (!options_.socket_path.empty()) {
    listeners_.push_back(util::listen_unix(options_.socket_path));
  }
  if (options_.tcp_port >= 0) {
    listeners_.push_back(util::listen_tcp_loopback(options_.tcp_port));
    tcp_port_ = listeners_.back().port();
  }

  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(&Server::worker_loop, this);
  }
  accept_threads_.reserve(listeners_.size());
  for (auto& l : listeners_) {
    accept_threads_.emplace_back(&Server::accept_loop, this, std::ref(l));
  }
}

Server::~Server() { stop(); }

void Server::stop() {
  std::call_once(stop_once_, [&] {
    stopping_.store(true);
    // 1. No new connections: unblock and end every accept loop.
    for (auto& l : listeners_) l.shutdown();
    for (auto& t : accept_threads_) t.join();
    // 2. No new frames: unblock every connection reader.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& weak : conns_) {
        if (ConnPtr c = weak.lock()) c->sock.shutdown_both();
      }
    }
    {
      std::unique_lock<std::mutex> lock(readers_mu_);
      readers_done_.wait(lock, [&] { return active_readers_ == 0; });
    }
    // 3. Drain: workers finish every admitted request (replies to
    // shut-down sockets fail silently), then exit on the stopped queue.
    queue_.stop();
    for (auto& t : workers_) t.join();
    // 4. Release the listeners so a unix socket path disappears at
    // stop(), not at destruction -- a stopped daemon leaves no stale
    // socket file behind.
    listeners_.clear();
  });
}

ServeStats Server::stats() const {
  ServeStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.active_connections = active_connections_.load(std::memory_order_relaxed);
  s.refused_connections =
      refused_connections_.load(std::memory_order_relaxed);
  s.idle_reaped = idle_reaped_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.overflows = overflows_.load(std::memory_order_relaxed);
  return s;
}

void Server::log_line(const std::string& line) {
  if (options_.log == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  *options_.log << line << "\n" << std::flush;
}

void Server::accept_loop(util::Listener& listener) {
  for (;;) {
    util::Socket sock;
    try {
      sock = listener.accept();
    } catch (const Error& e) {
      if (stopping_.load()) return;
      log_line("serve: accept error: " + std::string(e.what()));
      continue;
    }
    if (!sock.valid() || stopping_.load()) return;

    if (options_.max_connections > 0 &&
        active_connections_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      // Over the cap: one error envelope, then the door. Refusal beats
      // silently parking the client on a reader thread we said we would
      // not spend (same philosophy as queue overflow).
      refused_connections_.fetch_add(1, std::memory_order_relaxed);
      errors_.fetch_add(1, std::memory_order_relaxed);
      log_line("serve: connection refused (max-connections=" +
               std::to_string(options_.max_connections) + ")");
      try {
        util::send_frame(sock,
                         encode_error("server is at connection capacity "
                                      "(max-connections=" +
                                      std::to_string(options_.max_connections) +
                                      "); retry later"));
      } catch (const Error&) {
        // The refused client hung up first; nothing owed.
      }
      continue;
    }

    connections_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(sock);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      // Compact dead entries so a long-lived daemon's registry tracks
      // live connections, not every connection ever accepted.
      std::erase_if(conns_, [](const std::weak_ptr<Conn>& w) {
        return w.expired();
      });
      conns_.push_back(conn);
    }
    {
      std::lock_guard<std::mutex> lock(readers_mu_);
      ++active_readers_;
    }
    // Detached on purpose: connections come and go for the daemon's
    // whole life, so joinable handles would accumulate without bound.
    // stop() waits on active_readers_ instead, which gives the same
    // no-thread-outlives-the-Server guarantee.
    std::thread([this, conn = std::move(conn)]() mutable {
      serve_connection(std::move(conn));
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(readers_mu_);
      --active_readers_;
      readers_done_.notify_all();
    }).detach();
  }
}

void Server::serve_connection(ConnPtr conn) {
  if (options_.idle_timeout_s > 0) {
    conn->sock.set_recv_timeout_ms(options_.idle_timeout_s * 1000);
  }
  std::uint64_t seq = 0;
  for (;;) {
    std::optional<std::string> frame;
    try {
      frame = util::recv_frame(conn->sock, options_.max_frame_bytes);
    } catch (const util::SocketTimeout&) {
      // Frame-boundary timeout: the stream is still consistent, so this
      // is a policy decision, not an error. Reap only a connection with
      // nothing in flight -- a client waiting on a slow request is
      // silent by design and keeps its connection.
      if (conn->outstanding.load(std::memory_order_acquire) > 0 ||
          stopping_.load()) {
        continue;
      }
      idle_reaped_.fetch_add(1, std::memory_order_relaxed);
      log_line("serve: idle connection reaped (idle-timeout-s=" +
               std::to_string(options_.idle_timeout_s) + ")");
      break;
    } catch (const Error& e) {
      // Oversized length prefix, mid-frame disconnect, or an I/O error:
      // this connection is unrecoverable (the stream cannot be
      // re-synchronized), but the failure is answered (best effort) and
      // contained -- the daemon itself never goes down with a client.
      errors_.fetch_add(1, std::memory_order_relaxed);
      log_line("serve: connection error: " + std::string(e.what()));
      write_reply(*conn, seq, encode_error(e.what()));
      break;
    }
    if (!frame || stopping_.load()) break;  // clean end-of-stream

    std::uint64_t my_seq = seq++;
    requests_.fetch_add(1, std::memory_order_relaxed);
    conn->outstanding.fetch_add(1, std::memory_order_release);
    if (!queue_.try_push(Job{std::move(*frame), conn, my_seq})) {
      // Backpressure: refuse loudly and immediately instead of letting
      // the daemon buffer (and eventually die) under flood.
      errors_.fetch_add(1, std::memory_order_relaxed);
      overflows_.fetch_add(1, std::memory_order_relaxed);
      log_line("serve: overflow: queue full (max-queue=" +
               std::to_string(queue_.capacity()) + "), request refused");
      write_reply(*conn, my_seq,
                  encode_error("server is at capacity (max-queue=" +
                               std::to_string(queue_.capacity()) +
                               "); retry later"));
      conn->outstanding.fetch_sub(1, std::memory_order_release);
    }
  }
  conn->sock.shutdown_both();
}

void Server::worker_loop() {
  while (std::optional<Job> job = queue_.pop()) {
    std::string reply;
    std::string line;
    try {
      if (is_stats_request(job->payload)) {
        // Admin exchange: counters only, never touches the session or
        // the engines (a stats probe must stay cheap on a busy daemon).
        reply = encode_stats(daemon_stats());
        line = "serve: stats";
        log_line(line);
        write_reply(*job->conn, job->seq, reply);
        job->conn->outstanding.fetch_sub(1, std::memory_order_release);
        continue;
      }
      api::Request req = api::wire::decode_request(job->payload);
      api::RunSource source{};
      api::Result res = session_.run(req, &source);
      reply = api::wire::encode(res);
      parallel::PoolStats pool = parallel::pool_stats();
      line = std::string("serve: ") + api::wire::kind_of(req) +
             " source=" + source_name(source) + " executed=" +
             (source == api::RunSource::kExecuted ? "1" : "0") +
             " queue=" + std::to_string(queue_.size()) +
             " steals=" + std::to_string(pool.steals) +
             " overflow=" + std::to_string(pool.overflow_pushes) +
             " blocks=" + std::to_string(pool.block_handoffs);
    } catch (const Error& e) {
      // Decode and structural engine errors are replies, not daemon
      // failures; infeasible bounds never land here (they are results).
      errors_.fetch_add(1, std::memory_order_relaxed);
      reply = encode_error(e.what());
      line = "serve: request error: " + std::string(e.what());
    } catch (const std::exception& e) {
      // Anything else (bad_alloc, a library throw) must not take the
      // daemon down either -- one request, one reply, always.
      errors_.fetch_add(1, std::memory_order_relaxed);
      reply = encode_error(std::string("internal error: ") + e.what());
      line = std::string("serve: internal error: ") + e.what();
    }
    // Log BEFORE replying: a client that has its reply in hand (or a
    // test or smoke script synchronized on it) must be able to rely on
    // the request's log line having been written already.
    log_line(line);
    write_reply(*job->conn, job->seq, reply);
    job->conn->outstanding.fetch_sub(1, std::memory_order_release);
  }
}

DaemonStats Server::daemon_stats() const {
  ServeStats serve = stats();
  api::SharedSessionStats session = session_.stats();
  DaemonStats d;
  d.connections = serve.connections;
  d.active_connections = serve.active_connections;
  d.refused_connections = serve.refused_connections;
  d.idle_reaped = serve.idle_reaped;
  d.requests = serve.requests;
  d.errors = serve.errors;
  d.overflows = serve.overflows;
  d.hits = session.hits;
  d.disk_hits = session.disk_hits;
  d.executions = session.executions;
  d.entries = session.entries;
  return d;
}

void Server::write_reply(Conn& conn, std::uint64_t seq,
                         const std::string& payload) {
  std::unique_lock<std::mutex> lock(conn.reply_mu);
  conn.reply_cv.wait(lock, [&] { return conn.next_reply == seq; });
  try {
    util::send_frame(conn.sock, payload);
  } catch (const Error&) {
    // The client hung up before reading its reply; its loss alone.
  }
  ++conn.next_reply;
  conn.reply_cv.notify_all();
}

}  // namespace rchls::serve

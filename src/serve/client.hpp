// serve::Client -- the library-side counterpart of serve::Server: one
// connection speaking the framed wire protocol (serve/protocol.hpp).
//
// This is what `rchls request` is built on, and what tests and
// bench/perf_serve use to drive an in-process daemon over real sockets.
// One Client is one connection with synchronous call semantics: each
// call sends one frame and blocks for its one reply frame (the server
// guarantees request-ordered replies, so pipelining is possible over
// raw sockets, but this class keeps the simple one-outstanding model --
// open more Clients for concurrency, they are cheap).
//
// Error surfaces, separated by kind:
//  * transport problems (cannot connect, server gone, mid-reply
//    disconnect) throw rchls::Error("socket: ...");
//  * server-answered errors (malformed request, structural engine
//    error, queue overflow) come back as Reply::error from call_reply,
//    and call() re-raises them as rchls::Error("serve: ...") for
//    callers that treat them as exceptional.
//
// Not thread-safe: one Client per thread (like Session).
#pragma once

#include <string>

#include "api/request.hpp"
#include "api/result.hpp"
#include "serve/protocol.hpp"
#include "util/socket.hpp"

namespace rchls::serve {

class Client {
 public:
  /// Connect to a daemon's unix socket / 127.0.0.1 TCP port. Throw
  /// rchls::Error when nothing is listening.
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(int port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Round-trips one request; throws rchls::Error("serve: ...") when
  /// the server answered an error envelope.
  api::Result call(const api::Request& req);

  /// Like call(), but server-side errors are returned as Reply::error
  /// instead of thrown.
  Reply call_reply(const api::Request& req);

  /// Lowest level: sends `payload` as one frame verbatim (it need not
  /// be a valid envelope -- tests probe the server's error paths with
  /// this) and returns the raw reply payload.
  std::string call_raw(const std::string& payload);

 private:
  explicit Client(util::Socket sock) : sock_(std::move(sock)) {}

  util::Socket sock_;
};

}  // namespace rchls::serve

// serve::Client -- the library-side counterpart of serve::Server: one
// connection speaking the framed wire protocol (serve/protocol.hpp).
//
// This is what `rchls request` is built on, and what tests and
// bench/perf_serve use to drive an in-process daemon over real sockets.
// One Client is one connection with synchronous call semantics: each
// call sends one frame and blocks for its one reply frame (the server
// guarantees request-ordered replies, so pipelining is possible over
// raw sockets, but this class keeps the simple one-outstanding model --
// open more Clients for concurrency, they are cheap).
//
// Reliability knobs (ClientOptions): a per-call deadline and a bounded
// retry budget with exponential backoff. A retry RECONNECTS first --
// after a timeout the old connection may still deliver the stale reply
// later, which would desynchronize the request/reply pairing, so the
// stream is abandoned wholesale. Retrying is safe because every rchls
// request is deterministic and idempotent: re-asking cannot change the
// answer or double any effect. Server-answered ERROR envelopes are
// never retried -- the server is alive and has spoken.
//
// Error surfaces, separated by kind:
//  * transport problems (cannot connect, server gone, mid-reply
//    disconnect, deadline exhausted after every retry) throw
//    rchls::Error("socket: ...");
//  * server-answered errors (malformed request, structural engine
//    error, queue overflow) come back as Reply::error from call_reply,
//    and call() re-raises them as rchls::Error("serve: ...") for
//    callers that treat them as exceptional.
//
// Not thread-safe: one Client per thread (like Session).
#pragma once

#include <string>

#include "api/request.hpp"
#include "api/result.hpp"
#include "serve/protocol.hpp"
#include "util/socket.hpp"

namespace rchls::serve {

struct ClientOptions {
  /// Per-attempt reply deadline in milliseconds; 0 = wait forever.
  int timeout_ms = 0;
  /// Extra attempts after a transport failure (timeout, refused
  /// connection, mid-reply disconnect); 0 = fail on the first.
  int retries = 0;
  /// Backoff before retry r is backoff_ms << (r-1) (100, 200, 400...).
  int backoff_ms = 100;
};

class Client {
 public:
  /// Connect to a daemon's unix socket / 127.0.0.1 TCP port / remote
  /// host:port. Throw rchls::Error when nothing is listening (after
  /// ClientOptions::retries reconnect attempts).
  static Client connect_unix(const std::string& path,
                             ClientOptions options = {});
  static Client connect_tcp(int port, ClientOptions options = {});
  static Client connect_host(const std::string& host, int port,
                             ClientOptions options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Round-trips one request; throws rchls::Error("serve: ...") when
  /// the server answered an error envelope.
  api::Result call(const api::Request& req);

  /// Like call(), but server-side errors are returned as Reply::error
  /// instead of thrown.
  Reply call_reply(const api::Request& req);

  /// Asks the daemon for its lifetime counters (`kind:"stats"`).
  DaemonStats call_stats();

  /// Lowest level: sends `payload` as one frame verbatim (it need not
  /// be a valid envelope -- tests probe the server's error paths with
  /// this) and returns the raw reply payload. Owns the timeout/retry
  /// loop every higher-level call goes through.
  std::string call_raw(const std::string& payload);

 private:
  Client(util::Socket sock, std::string unix_path, std::string host,
         int port, ClientOptions options);

  /// (Re)establishes sock_ from the remembered endpoint and applies the
  /// deadline; used by the factories and by retry.
  void reconnect();

  util::Socket sock_;
  std::string unix_path_;  ///< non-empty for unix endpoints
  std::string host_;       ///< non-empty for host:port endpoints
  int port_ = -1;          ///< >= 0 for TCP endpoints
  ClientOptions options_;
};

}  // namespace rchls::serve

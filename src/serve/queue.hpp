// Bounded MPMC handoff queue: the backpressure point between the serve
// daemon's connection readers (producers) and its worker pool
// (consumers).
//
// The shape follows the connection-to-worker handoff the ROADMAP cites
// from block-based-queue designs, simplified to what backpressure
// actually requires: a mutex/condvar ring with a hard capacity.
// Deliberately NOT the lock-free pool queue (parallel/task_pool) -- the
// payload here is a whole engine request (milliseconds to minutes), so
// queue overhead is noise, while the bounded-capacity contract is the
// feature: try_push never blocks and never allocates past the cap, so a
// flooded server refuses work in O(1) instead of buffering unboundedly
// and dying later (the refusal becomes an `error` envelope upstream).
//
// pop() blocks until an item or stop(); after stop() producers are
// rejected and consumers drain what remains, then get nullopt -- so no
// accepted request is silently dropped on shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rchls::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking enqueue: false when full or stopped (the caller turns
  /// that into an overflow error envelope).
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocking dequeue: nullopt once stopped AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return stopped_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes every blocked consumer.
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool stopped_ = false;
};

}  // namespace rchls::serve

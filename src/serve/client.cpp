#include "serve/client.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "api/wire.hpp"
#include "util/error.hpp"

namespace rchls::serve {

Client::Client(util::Socket sock, std::string unix_path, std::string host,
               int port, ClientOptions options)
    : sock_(std::move(sock)),
      unix_path_(std::move(unix_path)),
      host_(std::move(host)),
      port_(port),
      options_(options) {
  if (sock_.valid() && options_.timeout_ms > 0) {
    sock_.set_recv_timeout_ms(options_.timeout_ms);
    sock_.set_send_timeout_ms(options_.timeout_ms);
  }
}

void Client::reconnect() {
  if (!unix_path_.empty()) {
    sock_ = util::connect_unix(unix_path_);
  } else if (!host_.empty()) {
    sock_ = util::connect_tcp(host_, port_);
  } else {
    sock_ = util::connect_tcp_loopback(port_);
  }
  if (options_.timeout_ms > 0) {
    sock_.set_recv_timeout_ms(options_.timeout_ms);
    sock_.set_send_timeout_ms(options_.timeout_ms);
  }
}

Client Client::connect_unix(const std::string& path, ClientOptions options) {
  return Client(util::connect_unix(path), path, "", -1, options);
}

Client Client::connect_tcp(int port, ClientOptions options) {
  return Client(util::connect_tcp_loopback(port), "", "", port, options);
}

Client Client::connect_host(const std::string& host, int port,
                            ClientOptions options) {
  return Client(util::connect_tcp(host, port), "", host, port, options);
}

std::string Client::call_raw(const std::string& payload) {
  const int attempts = options_.retries + 1;
  for (int attempt = 0;; ++attempt) {
    try {
      if (!sock_.valid()) reconnect();
      util::send_frame(sock_, payload);
      std::optional<std::string> reply = util::recv_frame(sock_);
      if (!reply) {
        throw Error("socket: server closed the connection without replying");
      }
      return *reply;
    } catch (const Error&) {
      // Timeout or any transport failure: the stream may still carry a
      // late reply, so it cannot be reused -- drop it and (maybe)
      // reconnect fresh. See the retry contract in the header.
      sock_.close();
      if (attempt + 1 >= attempts) throw;
      int backoff = options_.backoff_ms > 0 ? options_.backoff_ms : 1;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff << attempt));
    }
  }
}

Reply Client::call_reply(const api::Request& req) {
  return decode_reply(call_raw(api::wire::encode(req)));
}

api::Result Client::call(const api::Request& req) {
  Reply reply = call_reply(req);
  if (!reply.ok()) throw Error("serve: " + reply.error);
  return std::move(*reply.result);
}

DaemonStats Client::call_stats() {
  std::string raw = call_raw(encode_stats_request());
  std::optional<DaemonStats> stats = decode_stats(raw);
  if (!stats) {
    Reply reply = decode_reply(raw);
    throw Error(reply.ok()
                    ? std::string("serve: stats request answered with a "
                                  "result envelope")
                    : "serve: " + reply.error);
  }
  return *stats;
}

}  // namespace rchls::serve

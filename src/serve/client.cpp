#include "serve/client.hpp"

#include "api/wire.hpp"
#include "util/error.hpp"

namespace rchls::serve {

Client Client::connect_unix(const std::string& path) {
  return Client(util::connect_unix(path));
}

Client Client::connect_tcp(int port) {
  return Client(util::connect_tcp_loopback(port));
}

std::string Client::call_raw(const std::string& payload) {
  util::send_frame(sock_, payload);
  std::optional<std::string> reply = util::recv_frame(sock_);
  if (!reply) {
    throw Error("socket: server closed the connection without replying");
  }
  return *reply;
}

Reply Client::call_reply(const api::Request& req) {
  return decode_reply(call_raw(api::wire::encode(req)));
}

api::Result Client::call(const api::Request& req) {
  Reply reply = call_reply(req);
  if (!reply.ok()) throw Error("serve: " + reply.error);
  return std::move(*reply.result);
}

}  // namespace rchls::serve

// The serve request/reply protocol, one layer above util/socket's
// framing and one layer above api/wire's envelopes.
//
// A client sends one frame per request; the payload is a standard
// `rchls.wire.v1` REQUEST envelope (api/wire.hpp). The server answers
// every frame with exactly one frame whose payload is either
//
//   * a `rchls.wire.v1` RESULT envelope -- the success path, byte-
//     identical to what a local Session would have produced; or
//
//   * an ERROR envelope, the one envelope kind that exists only on the
//     serve channel (it is never cached and never written to disk):
//
//       { "format_version": "rchls.wire.v1",
//         "kind": "error",
//         "error": { "message": "..." } }
//
// Errors are DATA here, not exceptions: a malformed request, a
// structural engine error (unknown component, missing library version)
// or queue overflow must reach the client as a well-formed reply so the
// connection -- and the daemon -- outlive any single bad request.
// decode_reply() folds both payload shapes into one Reply value;
// serve::Client::call() re-raises Reply::error as rchls::Error for
// callers that prefer exceptions.
//
// Requests on one connection are answered in request order (the worker
// pool may compute them out of order; the per-connection reply lock in
// the server keeps the frames themselves ordered). Full lifecycle and
// backpressure contract: docs/serving.md.
#pragma once

#include <optional>
#include <string>

#include "api/result.hpp"

namespace rchls::serve {

/// Canonical error envelope (trailing newline, like every wire
/// encoding). `message` is escaped as a JSON string; any text is safe.
std::string encode_error(const std::string& message);

/// One decoded server reply: exactly one of `result` / `error` is set.
struct Reply {
  std::optional<api::Result> result;
  std::string error;  ///< non-empty iff the server answered an error

  bool ok() const { return result.has_value(); }
};

/// Parses a reply frame: an error envelope becomes Reply::error, any
/// other payload goes through wire::decode_result. Throws rchls::Error
/// only when the payload is neither (a malformed frame from something
/// that is not an rchls server).
Reply decode_reply(const std::string& payload);

}  // namespace rchls::serve

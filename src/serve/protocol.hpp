// The serve request/reply protocol, one layer above util/socket's
// framing and one layer above api/wire's envelopes.
//
// A client sends one frame per request; the payload is a standard
// `rchls.wire.v1` REQUEST envelope (api/wire.hpp). The server answers
// every frame with exactly one frame whose payload is either
//
//   * a `rchls.wire.v1` RESULT envelope -- the success path, byte-
//     identical to what a local Session would have produced; or
//
//   * an ERROR envelope, the one envelope kind that exists only on the
//     serve channel (it is never cached and never written to disk):
//
//       { "format_version": "rchls.wire.v1",
//         "kind": "error",
//         "error": { "message": "..." } }
//
// Errors are DATA here, not exceptions: a malformed request, a
// structural engine error (unknown component, missing library version)
// or queue overflow must reach the client as a well-formed reply so the
// connection -- and the daemon -- outlive any single bad request.
// decode_reply() folds both payload shapes into one Reply value;
// serve::Client::call() re-raises Reply::error as rchls::Error for
// callers that prefer exceptions.
//
// Requests on one connection are answered in request order (the worker
// pool may compute them out of order; the per-connection reply lock in
// the server keeps the frames themselves ordered). Full lifecycle and
// backpressure contract: docs/serving.md.
//
// Besides engine requests, the channel carries one ADMIN exchange: a
// `kind:"stats"` request envelope (no other fields) that the server
// answers with a `kind:"stats"` reply carrying its lifetime counters.
// Stats are serve-channel-only, like errors: never cached, never on
// disk. `rchls fleet status` fans this request out to every endpoint.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "api/result.hpp"

namespace rchls::serve {

/// Canonical error envelope (trailing newline, like every wire
/// encoding). `message` is escaped as a JSON string; any text is safe.
std::string encode_error(const std::string& message);

/// One decoded server reply: exactly one of `result` / `error` is set.
struct Reply {
  std::optional<api::Result> result;
  std::string error;  ///< non-empty iff the server answered an error

  bool ok() const { return result.has_value(); }
};

/// Parses a reply frame: an error envelope becomes Reply::error, any
/// other payload goes through wire::decode_result. Throws rchls::Error
/// only when the payload is neither (a malformed frame from something
/// that is not an rchls server).
Reply decode_reply(const std::string& payload);

/// One daemon's lifetime counters as carried by the stats envelope --
/// the serve::ServeStats and api::SharedSessionStats counters flattened
/// into one wire-stable struct.
struct DaemonStats {
  std::uint64_t connections = 0;  ///< admitted connections
  std::uint64_t active_connections = 0;
  std::uint64_t refused_connections = 0;  ///< over --max-connections
  std::uint64_t idle_reaped = 0;          ///< reaped by --idle-timeout-s
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t overflows = 0;
  std::uint64_t hits = 0;  ///< memory-cache hits
  std::uint64_t disk_hits = 0;
  std::uint64_t executions = 0;
  std::uint64_t entries = 0;  ///< memory-cache population
};

/// The `kind:"stats"` request envelope.
std::string encode_stats_request();

/// True iff `payload` is a stats request (kind "stats" with no
/// counters member) -- the server's pre-decode test (a stats frame
/// never reaches wire::decode_request). False for a stats REPLY and
/// for anything unparseable.
bool is_stats_request(const std::string& payload);

/// The `kind:"stats"` reply envelope.
std::string encode_stats(const DaemonStats& stats);

/// Parses a stats reply; nullopt when `payload` is not a stats reply
/// envelope -- including a bare stats request and unparseable input --
/// so callers can fall through to decode_reply. Unknown
/// counters decode as 0, extra counters are ignored -- both directions
/// of version skew stay readable.
std::optional<DaemonStats> decode_stats(const std::string& payload);

}  // namespace rchls::serve

#include "serve/protocol.hpp"

#include <utility>

#include "api/wire.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace rchls::serve {

std::string encode_error(const std::string& message) {
  auto doc = json::Value::object();
  doc.set("format_version", api::wire::kFormatVersion).set("kind", "error");
  auto err = json::Value::object();
  err.set("message", message);
  doc.set("error", std::move(err));
  return doc.dump(2) + "\n";
}

namespace {

// The wire names of every DaemonStats counter, in envelope order.
// Encode and decode iterate the same table so the two can never drift.
using StatsField = std::uint64_t DaemonStats::*;
constexpr std::pair<const char*, StatsField> kStatsFields[] = {
    {"connections", &DaemonStats::connections},
    {"active_connections", &DaemonStats::active_connections},
    {"refused_connections", &DaemonStats::refused_connections},
    {"idle_reaped", &DaemonStats::idle_reaped},
    {"requests", &DaemonStats::requests},
    {"errors", &DaemonStats::errors},
    {"overflows", &DaemonStats::overflows},
    {"hits", &DaemonStats::hits},
    {"disk_hits", &DaemonStats::disk_hits},
    {"executions", &DaemonStats::executions},
    {"entries", &DaemonStats::entries},
};

bool has_kind(const json::Value& doc, const char* kind) {
  if (!doc.is_object()) return false;
  const json::Value* k = doc.find("kind");
  return k != nullptr && k->is_string() && k->as_string() == kind;
}

}  // namespace

std::string encode_stats_request() {
  auto doc = json::Value::object();
  doc.set("format_version", api::wire::kFormatVersion).set("kind", "stats");
  return doc.dump(2) + "\n";
}

bool is_stats_request(const std::string& payload) {
  try {
    json::Value doc = json::parse(payload);
    // A stats REQUEST is kind "stats" WITHOUT a counters member -- the
    // member is what distinguishes a reply, so an echoed reply does not
    // read as a request.
    return has_kind(doc, "stats") && doc.find("stats") == nullptr;
  } catch (const Error&) {
    return false;
  }
}

std::string encode_stats(const DaemonStats& stats) {
  auto doc = json::Value::object();
  doc.set("format_version", api::wire::kFormatVersion).set("kind", "stats");
  auto counters = json::Value::object();
  for (const auto& [name, field] : kStatsFields) {
    counters.set(name, static_cast<unsigned long long>(stats.*field));
  }
  doc.set("stats", std::move(counters));
  return doc.dump(2) + "\n";
}

std::optional<DaemonStats> decode_stats(const std::string& payload) {
  json::Value doc;
  try {
    doc = json::parse(payload);
  } catch (const Error&) {
    return std::nullopt;
  }
  if (!has_kind(doc, "stats")) return std::nullopt;
  const json::Value* counters = doc.find("stats");
  // The counters member is what makes a stats envelope a REPLY; a bare
  // request (or a mangled reply) is not one.
  if (counters == nullptr || !counters->is_object()) return std::nullopt;
  DaemonStats out;
  for (const auto& [name, field] : kStatsFields) {
    const json::Value* v = counters->find(name);
    if (v != nullptr && v->is_int()) {
      out.*field = static_cast<std::uint64_t>(v->as_int());
    }
  }
  return out;
}

Reply decode_reply(const std::string& payload) {
  // Cheap pre-test so result decoding keeps its own (better) error
  // messages: only payloads that parse as an object with kind "error"
  // take the error path.
  json::Value doc = json::parse(payload);
  const json::Value* kind = doc.is_object() ? doc.find("kind") : nullptr;
  if (kind != nullptr && kind->is_string() && kind->as_string() == "error") {
    Reply r;
    r.error = doc.at("error").at("message").as_string();
    return r;
  }
  Reply r;
  r.result = api::wire::decode_result(payload);
  return r;
}

}  // namespace rchls::serve

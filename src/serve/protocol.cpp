#include "serve/protocol.hpp"

#include "api/wire.hpp"
#include "util/json.hpp"

namespace rchls::serve {

std::string encode_error(const std::string& message) {
  auto doc = json::Value::object();
  doc.set("format_version", api::wire::kFormatVersion).set("kind", "error");
  auto err = json::Value::object();
  err.set("message", message);
  doc.set("error", std::move(err));
  return doc.dump(2) + "\n";
}

Reply decode_reply(const std::string& payload) {
  // Cheap pre-test so result decoding keeps its own (better) error
  // messages: only payloads that parse as an object with kind "error"
  // take the error path.
  json::Value doc = json::parse(payload);
  const json::Value* kind = doc.is_object() ? doc.find("kind") : nullptr;
  if (kind != nullptr && kind->is_string() && kind->as_string() == "error") {
    Reply r;
    r.error = doc.at("error").at("message").as_string();
    return r;
  }
  Reply r;
  r.result = api::wire::decode_result(payload);
  return r;
}

}  // namespace rchls::serve

// serve::Server -- the resident request daemon behind `rchls serve`.
//
// One Server keeps one warm api::SharedSession (memory cache -> disk
// cache -> executor) resident and serves wire envelopes to any number
// of concurrent clients over length-framed sockets (util/socket):
//
//   listeners (unix path, optional 127.0.0.1 TCP)
//     -> one reader thread per accepted connection
//       -> bounded handoff queue (serve/queue.hpp)  [backpressure]
//         -> worker pool, each worker: decode -> SharedSession::run
//            -> encode -> ordered per-connection reply
//
// Contracts (docs/serving.md spells out the full lifecycle):
//
//  * Every received frame gets exactly one reply frame: a result
//    envelope, or an error envelope (serve/protocol.hpp) for malformed
//    payloads, structural engine errors, and queue overflow. Overflow
//    REFUSES instead of buffering: when the queue is full the reader
//    answers `error` immediately -- a flooded daemon stays responsive
//    and its memory stays bounded.
//  * Replies on one connection are written in request order, even when
//    the pool finishes them out of order (per-connection sequencing),
//    so pipelined clients can match replies to requests positionally.
//  * A client that sends garbage, an oversized frame, or disconnects
//    mid-frame costs exactly its own connection; the daemon and every
//    other connection keep running (tests hammer this).
//  * Results are byte-identical to a local Session run: same wire
//    encoder, same cache layers, same engines. A warm daemon (or one
//    restarted over the same --cache-dir) serves popular requests with
//    zero engine executions -- CI greps the warm pass for `executed=0`.
//
// Construction binds and starts serving; stop() (idempotent, also run
// by the destructor) refuses new work, drains accepted requests, and
// joins every thread. Tests and bench/perf_serve run Servers
// in-process; the CLI wraps one in a signal-driven main loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "api/shared_session.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "util/socket.hpp"

namespace rchls::serve {

struct ServerOptions {
  /// Unix-domain listener path; empty = no unix listener.
  std::string socket_path;
  /// 127.0.0.1 TCP listener port; -1 = no TCP listener, 0 = ephemeral
  /// (read back with Server::tcp_port()). At least one listener is
  /// required.
  int tcp_port = -1;
  /// Backpressure bound: requests admitted but not yet finished beyond
  /// this are refused with an overflow error envelope (>= 1).
  std::size_t max_queue = 64;
  /// Worker threads draining the queue (>= 1). Cache hits are served
  /// concurrently; executions additionally serialize inside
  /// SharedSession (the engines own the parallelism).
  std::size_t workers = 2;
  /// Per-frame payload cap (clamped to util::kMaxFrameBytes).
  std::uint32_t max_frame_bytes = util::kMaxFrameBytes;
  /// Concurrent-connection cap; 0 = unlimited. A connection accepted
  /// over the cap is answered one error envelope and closed immediately
  /// (refusal over silent queueing, like the frame backpressure).
  std::size_t max_connections = 0;
  /// Reap a connection after this many seconds without a frame; 0 =
  /// never. A connection with requests still in flight is NOT reaped --
  /// a client blocked on a long computation sends nothing and is not
  /// idle. Dead clients that vanished without a FIN stop pinning reader
  /// threads forever.
  int idle_timeout_s = 0;
  /// The resident session's knobs: cache_dir shares a persistent cache
  /// across daemon restarts, jobs caps the engine pool.
  api::SessionOptions session;
  /// When set, one line per served request / error is written here
  /// (under a lock). The CLI passes stderr; CI greps these lines.
  std::ostream* log = nullptr;
};

/// Monotonic counters over the daemon's lifetime (all atomically
/// sampled; `errors` counts error replies of every cause, `overflows`
/// the subset refused by backpressure).
struct ServeStats {
  std::uint64_t connections = 0;  ///< admitted (refused ones excluded)
  std::uint64_t active_connections = 0;
  std::uint64_t refused_connections = 0;  ///< over max_connections
  std::uint64_t idle_reaped = 0;          ///< reaped by idle_timeout_s
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t overflows = 0;
};

class Server {
 public:
  /// Binds every configured listener and starts the threads; when this
  /// returns, clients may connect. Throws rchls::Error on bad options
  /// or bind failure.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Orderly shutdown: stop accepting, refuse new frames, drain the
  /// queue, join all threads. Idempotent and thread-safe.
  void stop();

  /// The resolved TCP port (0 when no TCP listener was configured).
  int tcp_port() const { return tcp_port_; }
  const std::string& socket_path() const { return options_.socket_path; }

  ServeStats stats() const;
  api::SharedSessionStats session_stats() const { return session_.stats(); }
  /// The serve + session counters flattened into the stats-envelope
  /// shape -- what a `kind:"stats"` request is answered with.
  DaemonStats daemon_stats() const;
  /// Engine executions since startup -- the "warm daemon executes
  /// nothing" acceptance counter.
  std::uint64_t executions() const { return session_.executions(); }

 private:
  struct Conn {
    util::Socket sock;
    // Reply sequencing: the reader hands each frame a ticket; a writer
    // (worker or the reader's own error path) waits for its turn, so
    // reply frames leave in request order.
    std::mutex reply_mu;
    std::condition_variable reply_cv;
    std::uint64_t next_reply = 0;
    // Admitted-but-unanswered frames; the idle reaper only fires at 0
    // (a client waiting on a long computation is silent, not idle).
    std::atomic<std::uint64_t> outstanding{0};
  };
  using ConnPtr = std::shared_ptr<Conn>;

  struct Job {
    std::string payload;
    ConnPtr conn;
    std::uint64_t seq = 0;
  };

  void accept_loop(util::Listener& listener);
  void serve_connection(ConnPtr conn);
  void worker_loop();
  void write_reply(Conn& conn, std::uint64_t seq, const std::string& payload);
  void log_line(const std::string& line);

  ServerOptions options_;
  int tcp_port_ = 0;
  api::SharedSession session_;
  BoundedQueue<Job> queue_;

  std::vector<util::Listener> listeners_;
  std::vector<std::thread> accept_threads_;
  std::vector<std::thread> workers_;

  std::mutex conns_mu_;
  std::vector<std::weak_ptr<Conn>> conns_;

  // Reader threads are detached; stop() waits for this count to drain
  // so no thread can outlive the Server.
  std::mutex readers_mu_;
  std::condition_variable readers_done_;
  std::size_t active_readers_ = 0;

  std::mutex log_mu_;
  std::atomic<bool> stopping_{false};
  std::once_flag stop_once_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> active_connections_{0};
  std::atomic<std::uint64_t> refused_connections_{0};
  std::atomic<std::uint64_t> idle_reaped_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> overflows_{0};
};

}  // namespace rchls::serve

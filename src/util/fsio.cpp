#include "util/fsio.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace rchls {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path.string() + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool write_file(const std::filesystem::path& path,
                const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.flush();
  return static_cast<bool>(out);
}

long current_pid() {
#ifdef _WIN32
  return static_cast<long>(_getpid());
#else
  return static_cast<long>(getpid());
#endif
}

}  // namespace rchls

#include "util/hash.hpp"

namespace rchls {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string to_hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace rchls

// Tiny filesystem/process helpers shared by the api wire-file plumbing
// (disk cache, subprocess executor, exec-request CLI mode) -- one
// implementation so platform quirks live in exactly one place.
#pragma once

#include <filesystem>
#include <string>

namespace rchls {

/// Reads a whole file as bytes. Throws rchls::Error("cannot open ...")
/// when the file cannot be opened.
std::string read_file(const std::filesystem::path& path);

/// Writes `content` as the whole file (binary, truncating), flushing
/// before returning. Returns false when the file cannot be opened or
/// fully written -- callers decide whether that is fatal (wire files)
/// or best-effort (cache entries).
[[nodiscard]] bool write_file(const std::filesystem::path& path,
                              const std::string& content);

/// The current process id (used to make temp-file names collision-free
/// across processes).
long current_pid();

}  // namespace rchls

// Deterministic random number generation for simulations and generators.
//
// All stochastic components of the project (fault injection, random DFG
// generation, property tests) draw from this RNG so that every run of every
// binary is reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace rchls {

/// xoshiro256** by Blackman & Vigna: small, fast, high-quality, and --
/// unlike std::mt19937 -- identical across standard library
/// implementations, which keeps golden test values portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace rchls

#include "util/socket.hpp"

#include "util/error.hpp"

#ifndef _WIN32
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <filesystem>

namespace rchls::util {

#ifdef _WIN32

// The serve subsystem is POSIX-only (see the header). Fail loudly
// instead of shipping a silently broken transport.
namespace {
[[noreturn]] void unsupported() {
  throw Error("socket: unsupported on this platform");
}
}  // namespace

Socket::~Socket() = default;
Socket::Socket(Socket&& other) noexcept { std::swap(fd_, other.fd_); }
Socket& Socket::operator=(Socket&& other) noexcept {
  std::swap(fd_, other.fd_);
  return *this;
}
void Socket::shutdown_both() {}
void Socket::close() {}
Listener::~Listener() = default;
Listener::Listener(Listener&& other) noexcept {
  std::swap(fd_, other.fd_);
  std::swap(port_, other.port_);
  std::swap(path_, other.path_);
}
Listener& Listener::operator=(Listener&& other) noexcept {
  std::swap(fd_, other.fd_);
  std::swap(port_, other.port_);
  std::swap(path_, other.path_);
  return *this;
}
Socket Listener::accept() { unsupported(); }
void Listener::shutdown() {}
Listener listen_unix(const std::string&, int) { unsupported(); }
Listener listen_tcp_loopback(int, int) { unsupported(); }
Socket connect_unix(const std::string&) { unsupported(); }
Socket connect_tcp_loopback(int) { unsupported(); }
void send_frame(const Socket&, const std::string&) { unsupported(); }
std::optional<std::string> recv_frame(const Socket&, std::uint32_t) {
  unsupported();
}

#else  // POSIX

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error("socket: " + what + ": " + std::strerror(errno));
}

// Full-buffer write, retrying partial writes and EINTR. MSG_NOSIGNAL
// turns a dead peer into EPIPE instead of a process-killing SIGPIPE --
// essential for a daemon whose clients may vanish mid-reply.
void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send failed");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Full-buffer read. Returns the byte count actually read, which is
// short only at end-of-stream.
std::size_t read_all(int fd, char* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("recv failed");
    }
    if (n == 0) break;  // peer closed
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept { std::swap(fd_, other.fd_); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    std::swap(fd_, other.fd_);
  }
  return *this;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
}

Listener::Listener(Listener&& other) noexcept {
  std::swap(fd_, other.fd_);
  std::swap(port_, other.port_);
  std::swap(path_, other.path_);
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Listener tmp(std::move(*this));  // release our resources
    std::swap(fd_, other.fd_);
    std::swap(port_, other.port_);
    std::swap(path_, other.path_);
  }
  return *this;
}

Socket Listener::accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // A shut-down listener reports EINVAL (or EBADF if already closed):
    // the orderly-stop signal, not an error.
    if (errno == EINVAL || errno == EBADF) return Socket();
    fail_errno("accept failed");
  }
}

void Listener::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Listener listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket: unix path '" + path + "' is empty or too long (max " +
                std::to_string(sizeof(addr.sun_path) - 1) + " bytes)");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("cannot create unix socket");
  // A previous daemon that crashed leaves its socket file behind; bind
  // would fail with EADDRINUSE forever. Remove it -- a LIVE daemon on
  // the path is the operator's error either way, and this matches what
  // every long-lived unix-socket server does.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot bind unix socket '" + path + "'");
  }
  if (::listen(fd, backlog) < 0) {
    int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    fail_errno("cannot listen on '" + path + "'");
  }
  Listener l;
  l.fd_ = fd;
  l.path_ = path;
  return l;
}

Listener listen_tcp_loopback(int port, int backlog) {
  if (port < 0 || port > 65535) {
    throw Error("socket: TCP port " + std::to_string(port) +
                " is out of range");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("cannot create TCP socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot resolve bound port");
  }
  Listener l;
  l.fd_ = fd;
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket: unix path '" + path + "' is empty or too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("cannot create unix socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot connect to '" + path + "'");
  }
  return Socket(fd);
}

Socket connect_tcp_loopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("cannot create TCP socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot connect to 127.0.0.1:" + std::to_string(port));
  }
  return Socket(fd);
}

void send_frame(const Socket& sock, const std::string& payload) {
  if (!sock.valid()) throw Error("socket: send on an invalid socket");
  if (payload.size() > kMaxFrameBytes) {
    throw Error("socket: frame of " + std::to_string(payload.size()) +
                " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                "-byte limit");
  }
  auto n = static_cast<std::uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>((n >> 24) & 0xff),
      static_cast<unsigned char>((n >> 16) & 0xff),
      static_cast<unsigned char>((n >> 8) & 0xff),
      static_cast<unsigned char>(n & 0xff),
  };
  write_all(sock.fd(), reinterpret_cast<const char*>(header),
            sizeof(header));
  write_all(sock.fd(), payload.data(), payload.size());
}

std::optional<std::string> recv_frame(const Socket& sock,
                                      std::uint32_t max_bytes) {
  if (!sock.valid()) throw Error("socket: recv on an invalid socket");
  unsigned char header[4];
  std::size_t got =
      read_all(sock.fd(), reinterpret_cast<char*>(header), sizeof(header));
  if (got == 0) return std::nullopt;  // clean end-of-stream
  if (got < sizeof(header)) {
    throw Error("socket: peer closed mid-frame (partial length prefix)");
  }
  std::uint32_t n = (static_cast<std::uint32_t>(header[0]) << 24) |
                    (static_cast<std::uint32_t>(header[1]) << 16) |
                    (static_cast<std::uint32_t>(header[2]) << 8) |
                    static_cast<std::uint32_t>(header[3]);
  std::uint32_t cap = std::min(max_bytes, kMaxFrameBytes);
  if (n > cap) {
    throw Error("socket: incoming frame of " + std::to_string(n) +
                " bytes exceeds the " + std::to_string(cap) + "-byte limit");
  }
  std::string payload(n, '\0');
  if (read_all(sock.fd(), payload.data(), n) < n) {
    throw Error("socket: peer closed mid-frame (incomplete payload)");
  }
  return payload;
}

#endif  // POSIX

}  // namespace rchls::util

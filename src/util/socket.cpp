#include "util/socket.hpp"

#include "util/error.hpp"

#ifndef _WIN32
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <filesystem>

namespace rchls::util {

#ifdef _WIN32

// The serve subsystem is POSIX-only (see the header). Fail loudly
// instead of shipping a silently broken transport.
namespace {
[[noreturn]] void unsupported() {
  throw Error("socket: unsupported on this platform");
}
}  // namespace

Socket::~Socket() = default;
Socket::Socket(Socket&& other) noexcept { std::swap(fd_, other.fd_); }
Socket& Socket::operator=(Socket&& other) noexcept {
  std::swap(fd_, other.fd_);
  return *this;
}
void Socket::shutdown_both() {}
void Socket::set_recv_timeout_ms(int) {}
void Socket::set_send_timeout_ms(int) {}
void Socket::close() {}
Listener::~Listener() = default;
Listener::Listener(Listener&& other) noexcept {
  std::swap(fd_, other.fd_);
  std::swap(port_, other.port_);
  std::swap(path_, other.path_);
}
Listener& Listener::operator=(Listener&& other) noexcept {
  std::swap(fd_, other.fd_);
  std::swap(port_, other.port_);
  std::swap(path_, other.path_);
  return *this;
}
Socket Listener::accept() { unsupported(); }
void Listener::shutdown() {}
Listener listen_unix(const std::string&, int) { unsupported(); }
Listener listen_tcp_loopback(int, int) { unsupported(); }
Socket connect_unix(const std::string&) { unsupported(); }
Socket connect_tcp_loopback(int) { unsupported(); }
Socket connect_tcp(const std::string&, int) { unsupported(); }
void send_frame(const Socket&, const std::string&) { unsupported(); }
std::optional<std::string> recv_frame(const Socket&, std::uint32_t) {
  unsupported();
}

#else  // POSIX

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error("socket: " + what + ": " + std::strerror(errno));
}

// A socket deadline (SO_RCVTIMEO/SO_SNDTIMEO) surfaces as EAGAIN /
// EWOULDBLOCK. Whether that is a clean SocketTimeout or a fatal Error
// depends on whether the frame had started when it fired (see
// SocketTimeout in the header): `at_frame_boundary` says no byte of the
// current frame moved before this I/O call.
[[noreturn]] void fail_timeout(bool at_frame_boundary, const char* dir) {
  if (at_frame_boundary) {
    throw SocketTimeout(std::string("socket: ") + dir +
                        " timed out waiting for a frame");
  }
  throw Error(std::string("socket: ") + dir +
              " timed out mid-frame (stream unrecoverable)");
}

// Full-buffer write, retrying partial writes and EINTR. MSG_NOSIGNAL
// turns a dead peer into EPIPE instead of a process-killing SIGPIPE --
// essential for a daemon whose clients may vanish mid-reply.
void write_all(int fd, const char* data, std::size_t len,
               bool at_frame_boundary = false) {
  bool wrote_any = false;
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        fail_timeout(at_frame_boundary && !wrote_any, "send");
      }
      fail_errno("send failed");
    }
    wrote_any = wrote_any || n > 0;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Full-buffer read. Returns the byte count actually read, which is
// short only at end-of-stream.
std::size_t read_all(int fd, char* data, std::size_t len,
                     bool at_frame_boundary = false) {
  std::size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        fail_timeout(at_frame_boundary && got == 0, "receive");
      }
      fail_errno("recv failed");
    }
    if (n == 0) break;  // peer closed
    got += static_cast<std::size_t>(n);
  }
  return got;
}

void set_deadline(int fd, int opt, int ms) {
  if (fd < 0) return;
  if (ms < 0) ms = 0;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept { std::swap(fd_, other.fd_); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    std::swap(fd_, other.fd_);
  }
  return *this;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_recv_timeout_ms(int ms) {
  set_deadline(fd_, SO_RCVTIMEO, ms);
}

void Socket::set_send_timeout_ms(int ms) {
  set_deadline(fd_, SO_SNDTIMEO, ms);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
}

Listener::Listener(Listener&& other) noexcept {
  std::swap(fd_, other.fd_);
  std::swap(port_, other.port_);
  std::swap(path_, other.path_);
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Listener tmp(std::move(*this));  // release our resources
    std::swap(fd_, other.fd_);
    std::swap(port_, other.port_);
    std::swap(path_, other.path_);
  }
  return *this;
}

Socket Listener::accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // A shut-down listener reports EINVAL (or EBADF if already closed):
    // the orderly-stop signal, not an error.
    if (errno == EINVAL || errno == EBADF) return Socket();
    fail_errno("accept failed");
  }
}

void Listener::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Listener listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket: unix path '" + path + "' is empty or too long (max " +
                std::to_string(sizeof(addr.sun_path) - 1) + " bytes)");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("cannot create unix socket");
  // A previous daemon that crashed leaves its socket file behind; bind
  // would fail with EADDRINUSE forever. Remove it -- a LIVE daemon on
  // the path is the operator's error either way, and this matches what
  // every long-lived unix-socket server does.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot bind unix socket '" + path + "'");
  }
  if (::listen(fd, backlog) < 0) {
    int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    fail_errno("cannot listen on '" + path + "'");
  }
  Listener l;
  l.fd_ = fd;
  l.path_ = path;
  return l;
}

Listener listen_tcp_loopback(int port, int backlog) {
  if (port < 0 || port > 65535) {
    throw Error("socket: TCP port " + std::to_string(port) +
                " is out of range");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("cannot create TCP socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot resolve bound port");
  }
  Listener l;
  l.fd_ = fd;
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket: unix path '" + path + "' is empty or too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("cannot create unix socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot connect to '" + path + "'");
  }
  return Socket(fd);
}

Socket connect_tcp_loopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("cannot create TCP socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("cannot connect to 127.0.0.1:" + std::to_string(port));
  }
  return Socket(fd);
}

Socket connect_tcp(const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    throw Error("socket: TCP port " + std::to_string(port) +
                " is out of range");
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &results);
  if (rc != 0) {
    throw Error("socket: cannot resolve '" + host + "': " +
                ::gai_strerror(rc));
  }
  int last_errno = 0;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(results);
      return Socket(fd);
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  throw Error("socket: cannot connect to " + host + ":" +
              std::to_string(port) + ": " +
              (last_errno ? std::strerror(last_errno) : "no usable address"));
}

void send_frame(const Socket& sock, const std::string& payload) {
  if (!sock.valid()) throw Error("socket: send on an invalid socket");
  if (payload.size() > kMaxFrameBytes) {
    throw Error("socket: frame of " + std::to_string(payload.size()) +
                " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                "-byte limit");
  }
  auto n = static_cast<std::uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>((n >> 24) & 0xff),
      static_cast<unsigned char>((n >> 16) & 0xff),
      static_cast<unsigned char>((n >> 8) & 0xff),
      static_cast<unsigned char>(n & 0xff),
  };
  write_all(sock.fd(), reinterpret_cast<const char*>(header), sizeof(header),
            /*at_frame_boundary=*/true);
  write_all(sock.fd(), payload.data(), payload.size());
}

std::optional<std::string> recv_frame(const Socket& sock,
                                      std::uint32_t max_bytes) {
  if (!sock.valid()) throw Error("socket: recv on an invalid socket");
  unsigned char header[4];
  std::size_t got =
      read_all(sock.fd(), reinterpret_cast<char*>(header), sizeof(header),
               /*at_frame_boundary=*/true);
  if (got == 0) return std::nullopt;  // clean end-of-stream
  if (got < sizeof(header)) {
    throw Error("socket: peer closed mid-frame (partial length prefix)");
  }
  std::uint32_t n = (static_cast<std::uint32_t>(header[0]) << 24) |
                    (static_cast<std::uint32_t>(header[1]) << 16) |
                    (static_cast<std::uint32_t>(header[2]) << 8) |
                    static_cast<std::uint32_t>(header[3]);
  std::uint32_t cap = std::min(max_bytes, kMaxFrameBytes);
  if (n > cap) {
    throw Error("socket: incoming frame of " + std::to_string(n) +
                " bytes exceeds the " + std::to_string(cap) + "-byte limit");
  }
  std::string payload(n, '\0');
  if (read_all(sock.fd(), payload.data(), n) < n) {
    throw Error("socket: peer closed mid-frame (incomplete payload)");
  }
  return payload;
}

#endif  // POSIX

}  // namespace rchls::util

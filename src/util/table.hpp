// ASCII table rendering for the benchmark harnesses and examples.
//
// Every reproduction binary (bench/repro_*) prints its results as a table
// shaped like the corresponding table/figure in the paper; this class keeps
// that formatting in one place.
#pragma once

#include <string>
#include <vector>

namespace rchls {

/// A simple left/right aligned ASCII table.
///
///   Table t({"Ld", "Ad", "Ref [3]", "Ours", "% Imprv"});
///   t.add_row({"10", "9", "0.48467", "0.59998", "23.79"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; the row must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line at this position.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule and column padding.
  std::string render() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace rchls

#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rchls::json {

Value::Value() : kind_(Kind::kNull) {}
Value::Value(bool b) : kind_(Kind::kBool), bool_(b) {}
Value::Value(int i) : kind_(Kind::kInt), int_(i) {}
Value::Value(long i) : kind_(Kind::kInt), int_(i) {}
Value::Value(long long i) : kind_(Kind::kInt), int_(i) {}
Value::Value(unsigned i) : kind_(Kind::kInt), int_(i) {}
Value::Value(unsigned long i)
    : kind_(Kind::kInt), int_(static_cast<std::int64_t>(i)) {}
Value::Value(unsigned long long i)
    : kind_(Kind::kInt), int_(static_cast<std::int64_t>(i)) {}
Value::Value(double d) : kind_(Kind::kDouble), double_(d) {}
Value::Value(const char* s) : kind_(Kind::kString), string_(s) {}
Value::Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value& Value::set(std::string key, Value v) {
  if (kind_ != Kind::kObject) {
    throw Error("json::Value::set on a non-object value");
  }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

Value& Value::push(Value v) {
  if (kind_ != Kind::kArray) {
    throw Error("json::Value::push on a non-array value");
  }
  items_.push_back(std::move(v));
  return *this;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void write_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  out += format_shortest(d);
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: write_double(out, double_); break;
    case Kind::kString: write_escaped(out, string_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline_indent(out, indent, depth + 1);
        write_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace rchls::json

#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rchls::json {

Value::Value() : kind_(Kind::kNull) {}
Value::Value(bool b) : kind_(Kind::kBool), bool_(b) {}
Value::Value(int i) : kind_(Kind::kInt), int_(i) {}
Value::Value(long i) : kind_(Kind::kInt), int_(i) {}
Value::Value(long long i) : kind_(Kind::kInt), int_(i) {}
Value::Value(unsigned i) : kind_(Kind::kInt), int_(i) {}
Value::Value(unsigned long i)
    : kind_(Kind::kInt), int_(static_cast<std::int64_t>(i)) {}
Value::Value(unsigned long long i)
    : kind_(Kind::kInt), int_(static_cast<std::int64_t>(i)) {}
Value::Value(double d) : kind_(Kind::kDouble), double_(d) {}
Value::Value(const char* s) : kind_(Kind::kString), string_(s) {}
Value::Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value& Value::set(std::string key, Value v) {
  if (kind_ != Kind::kObject) {
    throw Error("json::Value::set on a non-object value");
  }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

Value& Value::push(Value v) {
  if (kind_ != Kind::kArray) {
    throw Error("json::Value::push on a non-array value");
  }
  items_.push_back(std::move(v));
  return *this;
}

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw Error("json: value is not a bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  if (kind_ != Kind::kInt) throw Error("json: value is not an integer");
  return int_;
}

double Value::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ != Kind::kDouble) throw Error("json: value is not a number");
  return double_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) throw Error("json: value is not a string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  if (kind_ != Kind::kArray) throw Error("json: value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (kind_ != Kind::kObject) throw Error("json: value is not an object");
  return members_;
}

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : members()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (!v) throw Error("json: missing object key '" + key + "'");
  return *v;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void write_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  out += format_shortest(d);
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: write_double(out, double_); break;
    case Kind::kString: write_escaped(out, string_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline_indent(out, indent, depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline_indent(out, indent, depth + 1);
        write_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ----------------------------------------------------------------- parser

namespace {

// Recursive-descent reader over one document. Depth-capped so a hostile
// "[[[[..." cannot overflow the stack before hitting the input's end.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 96;

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("json: " + msg + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("document nested too deeply");
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a low surrogate escape must follow.
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            unsigned lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    bool digits = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        digits = true;
      } else if (c == '.' || c == 'e' || c == 'E') {
        integral = false;
      } else if (c != '+' && c != '-') {
        break;
      }
      ++pos_;
    }
    if (!digits) fail("invalid number");
    std::string_view tok = text_.substr(start, pos_ - start);
    const char* first = tok.data();
    const char* last = tok.data() + tok.size();
    if (integral) {
      std::int64_t v = 0;
      auto [ptr, ec] = std::from_chars(first, last, v);
      if (ec == std::errc{} && ptr == last) {
        // "-0" is the shortest-round-trip rendering of -0.0 (there is
        // no integer negative zero); classifying it as int 0 would
        // break the wire protocol's encode/decode fixed point.
        if (v == 0 && tok.front() == '-') return Value(-0.0);
        return Value(static_cast<long long>(v));
      }
      // Beyond int64 range: a large double rendered in fixed notation
      // (to_chars picks it when shorter than scientific). Fall through
      // to the double path so parse(dump(v)) keeps its fixed point.
      if (ec != std::errc::result_out_of_range) fail("invalid integer");
    }
    double d = 0.0;
    auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc{} || ptr != last) fail("invalid number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace rchls::json

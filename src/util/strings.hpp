// Small string helpers used by the text parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rchls {

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of ASCII whitespace; empty tokens are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Split on a single character delimiter; tokens are trimmed, empties kept.
std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Render a double with `digits` significant decimals, trailing-zero padded
/// (e.g. format_fixed(0.5, 5) == "0.50000"), matching the paper's tables.
std::string format_fixed(double v, int digits);

}  // namespace rchls

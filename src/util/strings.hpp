// Small string helpers used by the text parsers and report writers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rchls {

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of ASCII whitespace; empty tokens are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Split on a single character delimiter; tokens are trimmed, empties kept.
std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Render a double with `digits` significant decimals, trailing-zero padded
/// (e.g. format_fixed(0.5, 5) == "0.50000"), matching the paper's tables.
std::string format_fixed(double v, int digits);

/// Strict full-token numeric parses (std::from_chars): nullopt unless the
/// whole token converts. The shared primitive behind the .dfg/.lib/.scn
/// parsers, which attach their own source/line context to failures.
std::optional<int> try_parse_int(std::string_view s);
std::optional<double> try_parse_double(std::string_view s);

/// Shortest round-trip rendering of a finite double (std::to_chars):
/// deterministic across platforms, parses back to the identical value.
/// Shared by the JSON writer and the library text writer, whose
/// byte-stability guarantees depend on it. Precondition: v is finite.
std::string format_shortest(double v);

}  // namespace rchls

#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace rchls {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::optional<int> try_parse_int(std::string_view s) {
  int v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> try_parse_double(std::string_view s) {
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::string format_shortest(double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, ptr);
}

}  // namespace rchls

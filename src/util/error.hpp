// Error type shared across all rchls libraries.
//
// Following the C++ Core Guidelines (I.10, E.2) we signal failures to
// perform a required task with exceptions. Every library in this project
// throws rchls::Error (or a subclass) so that callers can catch one type.
#pragma once

#include <stdexcept>
#include <string>

namespace rchls {

/// Base exception for all rchls errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input artifact (netlist, DFG, library, ...) violates a
/// structural invariant, e.g. a cycle in a DFG or a dangling net.
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what) : Error(what) {}
};

/// Thrown when a text artifact cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown by synthesis engines when no design satisfies the given bounds
/// (the "return no solution" case of the paper's Fig. 6 algorithm).
class NoSolutionError : public Error {
 public:
  explicit NoSolutionError(const std::string& what) : Error(what) {}
};

}  // namespace rchls

// Content hashing for the api result cache.
//
// fnv1a64 is the 64-bit Fowler-Noll-Vo 1a hash -- tiny, allocation-free,
// and (unlike std::hash) specified byte-for-byte, so a digest computed on
// one platform or build matches every other. That stability is what lets
// api::CacheKey digests serve as content addresses: equal canonical
// encodings always produce equal digests, on every host (the property the
// ROADMAP's sharded/remote runners will rely on when a request + digest
// becomes the wire unit).
//
// Digests are identifiers, not integrity protection: FNV is not
// cryptographic. Collision safety in the cache comes from storing the
// full canonical encoding alongside the digest (see api/cache.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rchls {

/// 64-bit FNV-1a over the bytes of `data` (offset basis 14695981039346656037,
/// prime 1099511628211).
std::uint64_t fnv1a64(std::string_view data);

/// Lower-case fixed-width (16 digit) hex rendering, e.g. for digests in
/// logs and error messages.
std::string to_hex64(std::uint64_t v);

}  // namespace rchls

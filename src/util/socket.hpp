// Framed socket I/O: the byte-transport layer beneath the serve
// subsystem (src/serve/), kept in util so any future remote transport
// (the ROADMAP's ssh/remote executor rung) reuses the same framing.
//
// Two pieces:
//
//  * RAII descriptor wrappers. Socket owns one connected descriptor;
//    Listener owns a bound+listening one (a Unix-domain path or a TCP
//    socket on 127.0.0.1 -- loopback only, this is not an exposed
//    network service). Both close on destruction and are move-only.
//
//  * Length-delimited framing. A frame is a 4-byte big-endian payload
//    length followed by that many bytes. send_frame/recv_frame handle
//    partial reads/writes and EINTR, and recv_frame enforces a caller
//    cap so a hostile or corrupt length prefix cannot make the server
//    allocate unbounded memory. The framing is payload-agnostic; the
//    serve protocol puts `rchls.wire.v1` JSON envelopes inside it
//    (docs/serving.md).
//
// Blocking model: everything here blocks. Concurrency is the caller's
// job (serve::Server runs one reader thread per connection); a blocked
// recv_frame is unblocked by shutdown_both() from another thread.
//
// Errors: constructors/factories and I/O throw rchls::Error("socket:
// ...") -- except recv_frame's clean end-of-stream, which is a regular
// return (nullopt), because a peer hanging up between frames is normal
// protocol flow, not a failure. Windows is unsupported: every entry
// point throws there (the serve subsystem is POSIX-only, like the
// subprocess executor's real spawn path).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/error.hpp"

namespace rchls::util {

/// Hard ceiling for a frame payload (64 MiB). Callers may pass a
/// smaller cap to recv_frame; larger caps are clamped to this.
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

/// Thrown when a socket with a receive/send deadline (set_recv_timeout_ms
/// / set_send_timeout_ms) times out at a FRAME BOUNDARY -- i.e. recv_frame
/// waited out the deadline before the first byte of a frame arrived, or
/// send_frame could not start writing. A deadline expiring MID-frame
/// throws plain Error instead: a half-transferred frame cannot be
/// re-synchronized, so that connection is unrecoverable, while a
/// boundary timeout is a policy event (an idle client to reap, a slow
/// server to retry elsewhere) on a still-consistent stream.
class SocketTimeout : public Error {
 public:
  explicit SocketTimeout(const std::string& what) : Error(what) {}
};

/// A connected (or accepted) socket descriptor. Move-only; closes on
/// destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// shutdown(SHUT_RDWR): unblocks a reader/writer in another thread
  /// without racing the descriptor's lifetime the way close() would.
  /// Safe on an already-shut-down or invalid socket.
  void shutdown_both();

  /// Receive/send deadlines (SO_RCVTIMEO / SO_SNDTIMEO). 0 restores the
  /// default block-forever behavior. With a deadline set, recv_frame /
  /// send_frame throw SocketTimeout at a frame boundary and plain Error
  /// mid-frame (see SocketTimeout). No-ops on an invalid socket.
  void set_recv_timeout_ms(int ms);
  void set_send_timeout_ms(int ms);

  void close();

 private:
  int fd_ = -1;
};

/// A bound, listening socket. Unix-domain listeners unlink a stale
/// socket file at bind time and remove their path on destruction.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Blocks for the next connection. Returns an invalid Socket when the
  /// listener was shut down (the orderly-stop path); throws on real
  /// accept failures.
  Socket accept();

  /// Unblocks accept() in another thread.
  void shutdown();

  bool valid() const { return fd_ >= 0; }
  /// The bound TCP port (resolved after binding port 0), 0 for
  /// unix-domain listeners.
  int port() const { return port_; }
  const std::string& path() const { return path_; }

 private:
  friend Listener listen_unix(const std::string& path, int backlog);
  friend Listener listen_tcp_loopback(int port, int backlog);

  int fd_ = -1;
  int port_ = 0;
  std::string path_;  ///< unix-domain only; unlinked on destruction
};

/// Binds and listens on a Unix-domain socket at `path`, replacing any
/// stale socket file left by a crashed process.
Listener listen_unix(const std::string& path, int backlog = 64);

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral; read the
/// resolved port back with Listener::port()).
Listener listen_tcp_loopback(int port, int backlog = 64);

/// Connects to a Unix-domain / loopback-TCP listener.
Socket connect_unix(const std::string& path);
Socket connect_tcp_loopback(int port);

/// Connects to `host`:`port` (IPv4/IPv6, names resolved via the system
/// resolver). This is the fleet-client side of a `host:port` endpoint
/// spec; the serve daemon itself still binds loopback only, so remote
/// hosts are reached through a forwarded port or tunnel.
Socket connect_tcp(const std::string& host, int port);

/// Writes one length-prefixed frame. Throws on any short write or a
/// payload over kMaxFrameBytes (the peer could never legally read it).
void send_frame(const Socket& sock, const std::string& payload);

/// Reads one frame. Returns nullopt on clean end-of-stream BEFORE any
/// length byte; throws on a mid-frame EOF (the peer died mid-request),
/// an I/O error, or a length prefix over min(max_bytes, kMaxFrameBytes).
std::optional<std::string> recv_frame(const Socket& sock,
                                      std::uint32_t max_bytes =
                                          kMaxFrameBytes);

}  // namespace rchls::util

// Minimal deterministic JSON document builder for the report writers.
//
// Only what structured output needs: a Value is null, a bool, an integer,
// a double, a string, an array, or an object. Objects preserve insertion
// order, doubles are rendered with std::to_chars shortest round-trip
// formatting and integers without a decimal point, and strings are escaped
// per RFC 8259 -- so dump() is byte-identical for equal documents on every
// platform and at every worker count. Non-finite doubles render as null
// (JSON has no NaN/Inf).
//
// This is a writer, not a parser: rchls emits JSON for other programs to
// consume, it never ingests it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rchls::json {

class Value {
 public:
  /// null.
  Value();
  Value(bool b);
  Value(int i);
  Value(long i);
  Value(long long i);
  Value(unsigned i);
  Value(unsigned long i);
  Value(unsigned long long i);
  Value(double d);
  Value(const char* s);
  Value(std::string s);

  /// Empty aggregates ({} and []).
  static Value object();
  static Value array();

  /// Appends a key (objects keep insertion order; keys are not checked for
  /// uniqueness -- callers build each object once). Returns *this so
  /// documents can be built by chaining. Throws Error when called on
  /// anything but an object (silently dropping data would be worse).
  Value& set(std::string key, Value v);

  /// Appends an array element. Throws Error when called on anything but
  /// an array.
  Value& push(Value v);

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Serializes the document. indent > 0 pretty-prints with that many
  /// spaces per level; indent == 0 emits the compact single-line form.
  /// Output ends without a trailing newline.
  std::string dump(int indent = 2) const;

 private:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

}  // namespace rchls::json

// Minimal deterministic JSON document builder + reader.
//
// Only what structured I/O needs: a Value is null, a bool, an integer,
// a double, a string, an array, or an object. Objects preserve insertion
// order, doubles are rendered with std::to_chars shortest round-trip
// formatting and integers without a decimal point, and strings are escaped
// per RFC 8259 -- so dump() is byte-identical for equal documents on every
// platform and at every worker count. Non-finite doubles render as null
// (JSON has no NaN/Inf).
//
// The reader (json::parse) is the strict inverse the api wire protocol
// (api/wire.hpp) needs: numbers without '.', 'e' or 'E' become integers
// ("-0" becomes the double -0.0, its shortest rendering), everything
// else parses with std::from_chars shortest-round-trip semantics, so
// parse(dump(v)) reproduces every value bit-for-bit. It accepts RFC
// 8259 documents (no comments, no trailing commas; a few number forms
// the writer never emits, like leading zeros, pass through from_chars
// unrejected) and throws rchls::Error with a byte offset on malformed
// input -- ingesting anything fancier than rchls' own output is a
// non-goal.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rchls::json {

class Value {
 public:
  /// null.
  Value();
  Value(bool b);
  Value(int i);
  Value(long i);
  Value(long long i);
  Value(unsigned i);
  Value(unsigned long i);
  Value(unsigned long long i);
  Value(double d);
  Value(const char* s);
  Value(std::string s);

  /// Empty aggregates ({} and []).
  static Value object();
  static Value array();

  /// Appends a key (objects keep insertion order; keys are not checked for
  /// uniqueness -- callers build each object once). Returns *this so
  /// documents can be built by chaining. Throws Error when called on
  /// anything but an object (silently dropping data would be worse).
  Value& set(std::string key, Value v);

  /// Appends an array element. Throws Error when called on anything but
  /// an array.
  Value& push(Value v);

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed readers for parsed documents. Each throws Error when the
  /// value's kind does not match; as_double additionally accepts
  /// integers (JSON does not distinguish 8 from 8.0).
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Aggregate access (throws Error on the wrong kind).
  const std::vector<Value>& items() const;
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Object member lookup: the first member named `key`, or nullptr.
  /// Throws Error on non-objects.
  const Value* find(const std::string& key) const;
  /// Like find(), but a missing key throws Error naming it.
  const Value& at(const std::string& key) const;

  /// Serializes the document. indent > 0 pretty-prints with that many
  /// spaces per level; indent == 0 emits the compact single-line form.
  /// Output ends without a trailing newline.
  std::string dump(int indent = 2) const;

 private:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one RFC 8259 document (leading/trailing whitespace allowed,
/// nothing else after the value). Numbers without '.', 'e' or 'E' parse
/// as integers (errors if they overflow int64), everything else as
/// shortest-round-trip doubles, so parse(v.dump()) == v value-for-value.
/// Throws rchls::Error("json: ... at offset N") on malformed input.
Value parse(std::string_view text);

}  // namespace rchls::json

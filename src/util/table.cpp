#include "util/table.hpp"

#include "util/error.hpp"

namespace rchls {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw Error("Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw Error("Table: row has " + std::to_string(row.size()) +
                " cells, expected " + std::to_string(header_.size()));
  }
  rows_.push_back(Row{false, std::move(row)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.separator ? rule() : line(row.cells);
  }
  out += rule();
  return out;
}

}  // namespace rchls

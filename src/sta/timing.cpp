#include "sta/timing.hpp"

#include <algorithm>
#include <limits>

#include "parallel/parallel_for.hpp"
#include "util/error.hpp"

namespace rchls::sta {

namespace {

using netlist::GateId;
using netlist::GateKind;

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Unateness { kPositive, kNegative, kNonUnate };

Unateness unateness(GateKind kind) {
  switch (kind) {
    case GateKind::kBuf:
    case GateKind::kAnd:
    case GateKind::kOr:
      return Unateness::kPositive;
    case GateKind::kNot:
    case GateKind::kNand:
    case GateKind::kNor:
      return Unateness::kNegative;
    default:
      return Unateness::kNonUnate;  // Xor/Xnor (sources never ask)
  }
}

// Arrival candidate at gate `g`'s output for `out_rise`, through input
// pin `pin` whose driver arrives at (in_rise, in_fall). `load` is g's
// fanout count (the NLDM load axis, docs/timing.md).
double edge_candidate(const DelayModel& dm, GateId g, int pin, Unateness u,
                      bool out_rise, double in_rise, double in_fall,
                      double load) {
  const PinArc& arc = dm.arc(g, pin);
  double intrinsic = (out_rise ? arc.rise : arc.fall) + arc.slope * load;
  switch (u) {
    case Unateness::kPositive:
      return (out_rise ? in_rise : in_fall) + intrinsic;
    case Unateness::kNegative:
      return (out_rise ? in_fall : in_rise) + intrinsic;
    case Unateness::kNonUnate:
      return std::max(in_rise, in_fall) + intrinsic;
  }
  return -kInf;
}

struct EdgeTimes {
  std::vector<double> rise;
  std::vector<double> fall;
};

// Gates grouped by topological level; the unit of parallel propagation.
std::vector<std::vector<GateId>> level_buckets(
    const netlist::Topology& topo) {
  std::vector<std::vector<GateId>> buckets(topo.max_level() + 1);
  for (GateId id = 0; id < topo.gate_count(); ++id) {
    buckets[topo.level(id)].push_back(id);
  }
  return buckets;
}

}  // namespace

TimingReport analyze(const netlist::Netlist& nl,
                     const netlist::Topology& topo, const DelayModel& dm,
                     const TimingOptions& options) {
  const std::size_t n = nl.gate_count();
  if (dm.gate_count() != n) {
    throw Error("sta::analyze: DelayModel gate count mismatch");
  }

  std::vector<std::vector<GateId>> buckets = level_buckets(topo);

  // -- forward arrival, rise/fall separately, level by level ------------
  EdgeTimes arr{std::vector<double>(n, 0.0), std::vector<double>(n, 0.0)};
  auto propagate_one = [&](GateId g) {
    const netlist::Gate& gate = nl.gate(g);
    int pins = netlist::fanin_count(gate.kind);
    if (pins == 0) return;  // inputs/constants arrive at 0
    Unateness u = unateness(gate.kind);
    double load = static_cast<double>(topo.fanout_count(g));
    double rise = -kInf;
    double fall = -kInf;
    for (int p = 0; p < pins; ++p) {
      GateId in = p == 0 ? gate.fanin0 : gate.fanin1;
      rise = std::max(rise, edge_candidate(dm, g, p, u, true, arr.rise[in],
                                           arr.fall[in], load));
      fall = std::max(fall, edge_candidate(dm, g, p, u, false, arr.rise[in],
                                           arr.fall[in], load));
    }
    arr.rise[g] = rise;
    arr.fall[g] = fall;
  };
  for (const auto& bucket : buckets) {
    parallel::parallel_for(bucket.size(),
                           [&](std::size_t i) { propagate_one(bucket[i]); });
  }

  // The effective clock: given, or the worst arrival anywhere (arrival
  // is monotone along fanout, so this equals the worst constraint-
  // endpoint arrival and the critical endpoint lands at slack 0).
  double clock = options.clock;
  if (clock == 0.0) {
    for (std::size_t g = 0; g < n; ++g) {
      clock = std::max(clock, std::max(arr.rise[g], arr.fall[g]));
    }
  }

  // -- backward required time -------------------------------------------
  // Constraint endpoints: primary-output bits plus fanout-free gates
  // (dangling logic would otherwise stay unconstrained).
  EdgeTimes req{std::vector<double>(n, kInf), std::vector<double>(n, kInf)};
  for (GateId g = 0; g < n; ++g) {
    if (topo.is_output_bit(g) || topo.fanout_count(g) == 0) {
      req.rise[g] = clock;
      req.fall[g] = clock;
    }
  }
  auto require_one = [&](GateId g) {
    double need_rise = req.rise[g];
    double need_fall = req.fall[g];
    for (const GateId* it = topo.fanout_begin(g); it != topo.fanout_end(g);
         ++it) {
      GateId f = *it;
      const netlist::Gate& gate = nl.gate(f);
      int pins = netlist::fanin_count(gate.kind);
      Unateness u = unateness(gate.kind);
      double load = static_cast<double>(topo.fanout_count(f));
      for (int p = 0; p < pins; ++p) {
        if ((p == 0 ? gate.fanin0 : gate.fanin1) != g) continue;
        const PinArc& arc = dm.arc(f, p);
        double d_rise = arc.rise + arc.slope * load;
        double d_fall = arc.fall + arc.slope * load;
        // An output rise of f at req.rise[f] constrains whichever input
        // edge causes it (both, for a non-unate gate); likewise fall.
        switch (u) {
          case Unateness::kPositive:
            need_rise = std::min(need_rise, req.rise[f] - d_rise);
            need_fall = std::min(need_fall, req.fall[f] - d_fall);
            break;
          case Unateness::kNegative:
            need_fall = std::min(need_fall, req.rise[f] - d_rise);
            need_rise = std::min(need_rise, req.fall[f] - d_fall);
            break;
          case Unateness::kNonUnate:
            need_rise = std::min(
                need_rise,
                std::min(req.rise[f] - d_rise, req.fall[f] - d_fall));
            need_fall = std::min(
                need_fall,
                std::min(req.rise[f] - d_rise, req.fall[f] - d_fall));
            break;
        }
      }
    }
    req.rise[g] = need_rise;
    req.fall[g] = need_fall;
  };
  for (auto it = buckets.rbegin(); it != buckets.rend(); ++it) {
    const auto& bucket = *it;
    parallel::parallel_for(bucket.size(),
                           [&](std::size_t i) { require_one(bucket[i]); });
  }

  // -- per-gate slack, endpoint aggregates ------------------------------
  TimingReport report;
  report.clock = clock;
  report.levels = topo.max_level();
  report.arrival.resize(n);
  report.slack.resize(n);
  for (std::size_t g = 0; g < n; ++g) {
    report.arrival[g] = std::max(arr.rise[g], arr.fall[g]);
    report.slack[g] =
        std::min(req.rise[g] - arr.rise[g], req.fall[g] - arr.fall[g]);
  }

  std::vector<GateId> endpoints;
  for (GateId g = 0; g < n; ++g) {
    if (topo.is_output_bit(g)) endpoints.push_back(g);
  }
  report.endpoints = endpoints.size();
  if (!endpoints.empty()) {
    double wns = kInf;
    double tns = 0.0;
    double worst_arrival = -kInf;
    for (GateId g : endpoints) {
      wns = std::min(wns, report.slack[g]);
      if (report.slack[g] < 0.0) tns += report.slack[g];
      worst_arrival = std::max(worst_arrival, report.arrival[g]);
    }
    report.wns = wns;
    report.tns = tns;
    report.arrival_max = worst_arrival;

    // Fixed-bin endpoint slack histogram over [min, max].
    double lo = kInf;
    double hi = -kInf;
    for (GateId g : endpoints) {
      lo = std::min(lo, report.slack[g]);
      hi = std::max(hi, report.slack[g]);
    }
    std::size_t bins = std::max<std::size_t>(1, options.histogram_bins);
    if (hi == lo) bins = 1;
    double width = (hi - lo) / static_cast<double>(bins);
    report.histogram.resize(bins);
    for (std::size_t b = 0; b < bins; ++b) {
      report.histogram[b].lo = lo + width * static_cast<double>(b);
      report.histogram[b].hi =
          b + 1 == bins ? hi : lo + width * static_cast<double>(b + 1);
    }
    for (GateId g : endpoints) {
      std::size_t b =
          width == 0.0
              ? 0
              : std::min(bins - 1, static_cast<std::size_t>(
                                       (report.slack[g] - lo) / width));
      ++report.histogram[b].count;
    }
  }

  // -- critical paths ----------------------------------------------------
  // Rank endpoints worst slack first, ties by ascending id; trace each
  // back through its determining pin (smaller pin, then an input rise,
  // wins ties -- the documented order).
  std::vector<GateId> ranked = endpoints;
  std::sort(ranked.begin(), ranked.end(), [&](GateId a, GateId b) {
    if (report.slack[a] != report.slack[b]) {
      return report.slack[a] < report.slack[b];
    }
    return a < b;
  });
  if (ranked.size() > options.top_paths) ranked.resize(options.top_paths);
  for (GateId endpoint : ranked) {
    TimingPath path;
    path.endpoint = endpoint;
    path.arrival = report.arrival[endpoint];
    path.slack = report.slack[endpoint];
    GateId g = endpoint;
    bool edge_rise = arr.rise[g] >= arr.fall[g];
    std::vector<PathStep> reversed;
    for (;;) {
      reversed.push_back(
          {g, edge_rise ? arr.rise[g] : arr.fall[g]});
      const netlist::Gate& gate = nl.gate(g);
      int pins = netlist::fanin_count(gate.kind);
      if (pins == 0) break;
      Unateness u = unateness(gate.kind);
      double load = static_cast<double>(topo.fanout_count(g));
      GateId best_in = gate.fanin0;
      bool best_edge = true;
      double best = -kInf;
      for (int p = 0; p < pins; ++p) {
        GateId in = p == 0 ? gate.fanin0 : gate.fanin1;
        // Input edges this pin can launch the target output edge with.
        for (bool in_rise : {true, false}) {
          bool feasible =
              u == Unateness::kNonUnate ||
              (u == Unateness::kPositive ? in_rise == edge_rise
                                         : in_rise != edge_rise);
          if (!feasible) continue;
          double in_arr = in_rise ? arr.rise[in] : arr.fall[in];
          const PinArc& arc = dm.arc(g, p);
          double cand =
              in_arr + (edge_rise ? arc.rise : arc.fall) + arc.slope * load;
          if (cand > best) {
            best = cand;
            best_in = in;
            best_edge = in_rise;
          }
        }
      }
      g = best_in;
      edge_rise = best_edge;
    }
    path.steps.assign(reversed.rbegin(), reversed.rend());
    report.paths.push_back(std::move(path));
  }

  return report;
}

}  // namespace rchls::sta

#include "sta/design.hpp"

#include "util/error.hpp"

namespace rchls::sta {

std::vector<library::VersionId> versions_for(
    const dfg::Graph& g, const library::ResourceLibrary& lib,
    const std::string& policy) {
  bool fastest;
  if (policy == "fastest") {
    fastest = true;
  } else if (policy == "most_reliable") {
    fastest = false;
  } else {
    throw Error("unknown version policy '" + policy +
                "' (expected fastest or most_reliable)");
  }
  std::vector<library::VersionId> out(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    library::ResourceClass cls = library::class_of(g.node(id).op);
    out[id] = fastest ? lib.fastest(cls) : lib.most_reliable(cls);
  }
  return out;
}

rtl::Elaboration elaborate_design(const dfg::Graph& g,
                                  const library::ResourceLibrary& lib,
                                  const std::string& policy, int width) {
  return rtl::elaborate(g, lib, versions_for(g, lib, policy), width);
}

}  // namespace rchls::sta

#include "sta/sensitivity.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rchls::sta {

std::vector<SensitivityRow> join_sensitivity(
    const std::vector<ser::GateSensitivity>& ranking,
    const TimingReport& report) {
  std::vector<SensitivityRow> rows;
  rows.reserve(ranking.size());
  for (const auto& gs : ranking) {
    if (gs.gate >= report.slack.size()) {
      throw Error("join_sensitivity: ranked gate out of range");
    }
    rows.push_back({gs.gate, gs.result.logical_sensitivity,
                    report.slack[gs.gate]});
  }
  std::sort(rows.begin(), rows.end(),
            [](const SensitivityRow& a, const SensitivityRow& b) {
              if (a.sensitivity != b.sensitivity) {
                return a.sensitivity > b.sensitivity;
              }
              if (a.slack != b.slack) return a.slack < b.slack;
              return a.gate < b.gate;
            });
  return rows;
}

}  // namespace rchls::sta

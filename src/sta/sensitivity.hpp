// The per-design sensitivity map: ser::rank_gate_sensitivities joined
// with STA slack on the same netlist -- the paper's "which gates matter
// for this design" answer. A gate is dangerous when it is both
// logically sensitive (strikes propagate to an output) and timing-
// critical (little slack to absorb a transient), so the join ranks by
//
//   logical sensitivity descending,
//   then slack ascending (tighter = more critical),
//   then gate id ascending
//
// -- a documented total order (docs/timing.md), deterministic because
// both inputs are.
#pragma once

#include <vector>

#include "ser/fault_injection.hpp"
#include "sta/timing.hpp"

namespace rchls::sta {

struct SensitivityRow {
  netlist::GateId gate = 0;
  double sensitivity = 0.0;  ///< logical sensitivity (ser)
  double slack = 0.0;        ///< worse-edge STA slack
};

/// Joins a ranking (every logic gate, from ser::rank_gate_sensitivities)
/// with the report's per-gate slack and re-ranks by the order above.
/// Throws Error when a ranked gate is out of the report's range.
std::vector<SensitivityRow> join_sensitivity(
    const std::vector<ser::GateSensitivity>& ranking,
    const TimingReport& report);

}  // namespace rchls::sta

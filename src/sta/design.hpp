// Design-level entry helpers shared by the STA and rank_gates executor
// paths: resolve a whole-graph version assignment from a named policy
// and elaborate it to the flat netlist the engines analyze.
//
// Policies (the spelling api::StaRequest / the CLI's --versions flag
// carries):
//   "fastest"        every operation uses its class's fastest version
//                    (ResourceLibrary::fastest tie-breaks)
//   "most_reliable"  every operation uses its class's most reliable
//                    version (the paper's initial allocation)
//
// Both are deterministic total functions of (graph, library, width).
#pragma once

#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "library/resource.hpp"
#include "rtl/elaborate.hpp"

namespace rchls::sta {

/// Per-node version assignment under `policy`. Throws Error for an
/// unknown policy name or a library missing a class the graph uses.
std::vector<library::VersionId> versions_for(
    const dfg::Graph& g, const library::ResourceLibrary& lib,
    const std::string& policy);

/// versions_for + rtl::elaborate in one step (the request-level target
/// resolution for graph-shaped StaRequest / RankGatesRequest).
rtl::Elaboration elaborate_design(const dfg::Graph& g,
                                  const library::ResourceLibrary& lib,
                                  const std::string& policy, int width);

}  // namespace rchls::sta

// sta::TimingEngine -- levelized static timing analysis over gate-level
// netlists (the subsystem ISSUE 10 adds; semantics in docs/timing.md).
//
// Given a netlist, its Topology and a DelayModel, analyze() runs
//
//  1. forward arrival propagation in level order (level 0 = primary
//     inputs and constants, arrival 0 on both edges), rise/fall tracked
//     separately with gate unateness: Buf/And/Or are positive unate
//     (output rise follows input rise), Not/Nand/Nor negative unate
//     (output rise follows input fall), Xor/Xnor non-unate (either
//     input edge can cause either output edge, the worst one counts);
//  2. backward required-time propagation from the timing endpoints --
//     every primary-output bit plus every fanout-free gate (dangling
//     logic would otherwise be unconstrained), required = the clock
//     period on both edges;
//  3. slack = required - arrival per gate (the worse edge), worst
//     negative/total negative slack over the primary-output endpoints,
//     a fixed-bin endpoint slack histogram, and the top-N critical
//     paths traced back through each level's determining pin.
//
// Determinism contract: the per-level loops run under
// parallel::parallel_for, but every gate writes only its own slot and
// reads only strictly-lower (forward) or strictly-higher (backward)
// levels, and every in-gate reduction is a fixed-order max/min over at
// most two pins -- so the report is byte-identical at every --jobs
// value. Tie-breaks (documented, relied on by golden tests): path
// ranking is (slack ascending, endpoint id ascending); traceback
// prefers the smaller pin index, then an input rise over a fall.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/topology.hpp"
#include "sta/delay_model.hpp"

namespace rchls::sta {

struct TimingOptions {
  /// Required time at every endpoint; 0 = derive the clock as the
  /// maximum endpoint arrival (the critical endpoint then has slack 0).
  double clock = 0.0;
  /// Critical paths to trace (ranked worst slack first).
  std::size_t top_paths = 3;
  /// Fixed number of endpoint-slack histogram bins.
  std::size_t histogram_bins = 8;
};

struct PathStep {
  netlist::GateId gate = 0;
  double arrival = 0.0;  ///< worse-edge arrival at this gate's output
};

struct TimingPath {
  netlist::GateId endpoint = 0;
  double arrival = 0.0;
  double slack = 0.0;
  /// Source (input/constant) first, endpoint last.
  std::vector<PathStep> steps;
};

struct HistogramBin {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

struct TimingReport {
  double clock = 0.0;        ///< effective clock (given or derived)
  double arrival_max = 0.0;  ///< worst endpoint arrival
  double wns = 0.0;          ///< worst (minimum) endpoint slack
  double tns = 0.0;          ///< sum of negative endpoint slacks
  std::size_t levels = 0;    ///< Topology::max_level()
  std::size_t endpoints = 0; ///< primary-output bits
  std::vector<double> arrival;  ///< per gate, worse edge
  std::vector<double> slack;    ///< per gate, worse edge
  std::vector<TimingPath> paths;
  std::vector<HistogramBin> histogram;
};

/// Runs the analysis (see the header comment). `dm` must have been built
/// for `nl` (same gate count); throws Error otherwise.
TimingReport analyze(const netlist::Netlist& nl,
                     const netlist::Topology& topo, const DelayModel& dm,
                     const TimingOptions& options = {});

}  // namespace rchls::sta

#include "sta/delay_model.hpp"

#include "util/error.hpp"

namespace rchls::sta {

DelayModel DelayModel::unit(const netlist::Netlist& nl) {
  DelayModel m;
  m.arcs_.assign(nl.gate_count() * 2, PinArc{});
  return m;
}

DelayModel DelayModel::from_library(
    const netlist::Netlist& nl,
    std::span<const library::VersionId> gate_version,
    const library::ResourceLibrary& lib) {
  if (gate_version.size() != nl.gate_count()) {
    throw Error("DelayModel::from_library: gate_version size mismatch");
  }
  DelayModel m;
  m.arcs_.assign(nl.gate_count() * 2, PinArc{});
  // Resolve each distinct version's pins once; gates then copy.
  struct VersionArcs {
    bool resolved = false;
    PinArc a, b;
  };
  std::vector<VersionArcs> memo(lib.size());
  for (std::size_t g = 0; g < nl.gate_count(); ++g) {
    library::VersionId v = gate_version[g];
    if (v >= lib.size()) continue;  // kNoVersion sentinel: unit arcs
    VersionArcs& va = memo[v];
    if (!va.resolved) {
      va.resolved = true;
      if (const library::PinTiming* t = lib.timing_of(v, "a")) {
        va.a = PinArc{t->rise, t->fall, t->slope};
      }
      if (const library::PinTiming* t = lib.timing_of(v, "b")) {
        va.b = PinArc{t->rise, t->fall, t->slope};
      }
    }
    m.arcs_[g * 2] = va.a;
    m.arcs_[g * 2 + 1] = va.b;
  }
  return m;
}

}  // namespace rchls::sta

// Per-gate resolved delay arcs -- the bridge between library::PinTiming
// (per-version, per-pin NLDM-flavored characterization) and the
// sta::TimingEngine (per-gate levelized propagation).
//
// A DelayModel holds, for every gate of one netlist, the rise/fall
// intrinsic delays and load slope of each input pin ("a" = fanin0,
// "b" = fanin1). The engine evaluates the delay through pin p of gate g
// as
//
//   delay(g, p, edge) = intrinsic(p, edge) + slope(p) * fanout(g)
//
// with fanout(g) the CSR fanout count from netlist::Topology -- the
// load-dependent term of the NLDM table, collapsed to a single slope.
//
// Two constructors cover the two report targets:
//  * unit(nl): every pin gets the implicit unit arc {rise 1, fall 1,
//    slope 0}; arrival times then equal topological depth. Hand-built
//    circuit components (src/circuits) have no library provenance, so
//    this is their model.
//  * from_library(nl, gate_version, lib): each gate looks up the
//    PinTiming arcs of the library version that instanced it
//    (rtl::Elaboration::gate_version); versions or pins without arcs
//    fall back to the unit arc. Deterministic: a pure function of its
//    inputs.
#pragma once

#include <span>
#include <vector>

#include "library/resource.hpp"
#include "netlist/netlist.hpp"

namespace rchls::sta {

/// One input pin's resolved arc (the implicit unit arc by default).
struct PinArc {
  double rise = 1.0;
  double fall = 1.0;
  double slope = 0.0;
};

class DelayModel {
 public:
  /// Unit delay for every pin of every gate of `nl`.
  static DelayModel unit(const netlist::Netlist& nl);

  /// Library-driven arcs: gate g uses the PinTiming of
  /// lib.version(gate_version[g]); rtl::kNoVersion (or any out-of-range
  /// sentinel) and uncharacterized pins fall back to the unit arc.
  /// Throws Error when gate_version.size() != nl.gate_count().
  static DelayModel from_library(
      const netlist::Netlist& nl,
      std::span<const library::VersionId> gate_version,
      const library::ResourceLibrary& lib);

  /// Arc of pin 0 ("a") / pin 1 ("b") of gate `id`.
  const PinArc& arc(netlist::GateId id, int pin) const {
    return arcs_[static_cast<std::size_t>(id) * 2 + pin];
  }

  std::size_t gate_count() const { return arcs_.size() / 2; }

 private:
  std::vector<PinArc> arcs_;  ///< two per gate: [2*id] = a, [2*id+1] = b
};

}  // namespace rchls::sta

// Deterministic data-parallel front-ends over the work-stealing pool.
//
// parallel_for(n, fn) runs fn(0) .. fn(n-1), each exactly once, in
// unspecified order and on unspecified threads. parallel_map collects
// fn(i) into slot i of a pre-sized vector, so the *result* is always in
// index order no matter which worker finished first -- this is what makes
// the exploration sweeps bit-identical at any --jobs value.
//
// The first exception thrown by any fn(i) is rethrown on the calling
// thread after all tasks have drained.
//
// Both fall back to a plain sequential loop when the resolved worker count
// is 1, when there is at most one item, or when already running on a pool
// worker (nested parallelism runs inline rather than oversubscribing).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/config.hpp"

namespace rchls::parallel {

/// Runs fn(i) for i in [0, n). `jobs` = 0 uses the global configuration.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t jobs = 0);

/// Ordered map: out[i] = fn(i). The element type must be
/// default-constructible (slots are pre-allocated and filled in place).
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t jobs = 0)
    -> std::vector<decltype(fn(std::size_t{}))> {
  std::vector<decltype(fn(std::size_t{}))> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, jobs);
  return out;
}

}  // namespace rchls::parallel

#include "parallel/config.hpp"

#include <algorithm>
#include <thread>

namespace rchls::parallel {

std::size_t hardware_jobs() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t resolve_jobs(std::size_t requested) {
  return requested == 0 ? hardware_jobs() : requested;
}

Config& global_config() {
  static Config config;
  return config;
}

void set_global_jobs(std::size_t jobs) { global_config().jobs = jobs; }

std::size_t global_jobs() { return resolve_jobs(global_config().jobs); }

}  // namespace rchls::parallel

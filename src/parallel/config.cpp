#include "parallel/config.hpp"

#include <algorithm>
#include <thread>

namespace rchls::parallel {

std::size_t hardware_jobs() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t resolve_jobs(std::size_t requested) {
  return requested == 0 ? hardware_jobs() : requested;
}

Config& global_config() {
  static Config config;
  return config;
}

void set_global_jobs(std::size_t jobs) { global_config().jobs = jobs; }

std::size_t global_jobs() { return resolve_jobs(global_config().jobs); }

namespace detail {

PoolCounters& pool_counters() {
  static PoolCounters counters;
  return counters;
}

}  // namespace detail

PoolStats pool_stats() {
  const detail::PoolCounters& c = detail::pool_counters();
  PoolStats s;
  s.tasks_executed = c.tasks_executed.load(std::memory_order_relaxed);
  s.steals = c.steals.load(std::memory_order_relaxed);
  s.overflow_pushes = c.overflow_pushes.load(std::memory_order_relaxed);
  s.overflow_pops = c.overflow_pops.load(std::memory_order_relaxed);
  s.block_handoffs = c.block_handoffs.load(std::memory_order_relaxed);
  s.idle_wakeups = c.idle_wakeups.load(std::memory_order_relaxed);
  s.full_retries = c.full_retries.load(std::memory_order_relaxed);
  return s;
}

void reset_pool_stats() {
  detail::PoolCounters& c = detail::pool_counters();
  c.tasks_executed.store(0, std::memory_order_relaxed);
  c.steals.store(0, std::memory_order_relaxed);
  c.overflow_pushes.store(0, std::memory_order_relaxed);
  c.overflow_pops.store(0, std::memory_order_relaxed);
  c.block_handoffs.store(0, std::memory_order_relaxed);
  c.idle_wakeups.store(0, std::memory_order_relaxed);
  c.full_retries.store(0, std::memory_order_relaxed);
}

}  // namespace rchls::parallel

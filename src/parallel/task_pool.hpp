// Work-stealing thread pool.
//
// Topology (after the Galois runtime and the block-based relaxed FIFO):
//
//   * one LIFO deque per worker -- owners push/pop at the back for cache
//     locality, thieves steal from the front so they grab the oldest
//     (typically largest-remaining) task;
//   * a shared overflow queue for tasks submitted from outside the pool,
//     organized as fixed-size *blocks* of tasks. Consumers take a whole
//     block at a time into their local deque, so the shared lock is touched
//     once per kBlockSize tasks rather than once per task -- the
//     contention-amortizing idea of the block-based FIFO, which relaxes
//     per-element FIFO order to block granularity (harmless here: tasks are
//     independent and results are collected by index, never by completion
//     order).
//
// The pool makes no fairness or ordering promises. Determinism is the
// *callers'* responsibility and is achieved by partitioning work identically
// at every worker count (partitioner.hpp) and writing results into
// pre-assigned slots (parallel_for.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rchls::parallel {

using Task = std::function<void()>;

/// Multi-producer overflow queue handing out tasks one block at a time.
class BlockQueue {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Appends to the tail block, opening a new block when it is full.
  void push(Task task);

  /// Detaches the whole head block into `out` (appended at the back).
  /// Returns false when the queue is empty.
  bool pop_block(std::deque<Task>& out);

  bool empty() const;

 private:
  struct Block {
    std::vector<Task> tasks;  // at most kBlockSize entries
  };

  mutable std::mutex mutex_;
  std::deque<Block> blocks_;
};

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules a task. Calls from a worker thread of *this pool* go to that
  /// worker's own deque (stealable by the others); external calls go to the
  /// shared overflow queue.
  void submit(Task task);

  /// Blocks until every submitted task has finished executing. Tasks may
  /// submit further tasks; wait_idle() covers those too.
  void wait_idle();

  std::size_t worker_count() const { return workers_.size(); }

  /// True when the calling thread is a worker of any ThreadPool. Used by
  /// parallel_for to run nested parallel regions inline instead of
  /// deadlocking on a second pool.
  static bool on_worker_thread();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> deque;
    std::thread thread;
  };

  void worker_loop(std::size_t self);
  bool try_acquire(std::size_t self, Task& task);
  void note_dequeued();

  std::vector<std::unique_ptr<Worker>> workers_;
  BlockQueue overflow_;

  std::mutex state_mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::size_t unfinished_ = 0;  // submitted but not yet finished tasks
  std::size_t queued_ = 0;      // submitted but not yet started tasks
  bool stopping_ = false;
};

}  // namespace rchls::parallel

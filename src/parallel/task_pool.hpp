// Work-stealing thread pool over the relaxed block FIFO.
//
// Topology (after the Galois runtime and the block-based relaxed FIFO):
//
//   * one LIFO deque per worker -- owners push/pop at the back for cache
//     locality, thieves steal from the front so they grab the oldest
//     (typically largest-remaining) task;
//   * a shared overflow queue for tasks submitted from outside the pool:
//     RelaxedFifo (relaxed_fifo.hpp), a lock-free bounded ring of
//     fixed-size blocks. Producers publish through per-block atomic
//     write cursors and consumers claim whole blocks, so the global
//     shared words (head/tail block ids) are touched once per
//     kBlockSize tasks rather than once per task, and there is NO
//     mutex anywhere on the overflow path. When the ring is full,
//     submit() spins/yields until a worker drains a block --
//     boundedness doubles as backpressure.
//
// Sleep/wake is an eventcount: submitters bump an atomic queued-task
// counter (seq_cst) before publishing and only take the state mutex to
// notify when a worker has registered itself asleep; workers register
// under the mutex and re-check the counter before blocking, so a
// wakeup can never be lost while the overflow hot path stays
// mutex-free.
//
// The pool makes no fairness or ordering promises -- the FIFO itself
// relaxes order to block granularity. Determinism is the *callers'*
// responsibility and is achieved by partitioning work identically at
// every worker count (partitioner.hpp) and writing results into
// pre-assigned slots (parallel_for.hpp); that split is why the
// relaxation is harmless and outputs stay byte-identical at any
// worker count.
//
// Every pool feeds the process-wide relaxed counters in
// parallel/config.hpp (tasks executed, steals, overflow traffic, block
// handoffs, idle wakeups) -- the serve daemon and bench/perf_pool read
// them back.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/relaxed_fifo.hpp"

namespace rchls::parallel {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules a task. Calls from a worker thread of *this pool* go to that
  /// worker's own deque (stealable by the others); external calls go to the
  /// shared overflow FIFO (spinning while it is full).
  void submit(Task task);

  /// Blocks until every submitted task has finished executing. Tasks may
  /// submit further tasks; wait_idle() covers those too.
  void wait_idle();

  std::size_t worker_count() const { return workers_.size(); }

  /// True when the calling thread is a worker of any ThreadPool. Used by
  /// parallel_for to run nested parallel regions inline instead of
  /// deadlocking on a second pool.
  static bool on_worker_thread();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> deque;
    std::thread thread;
  };

  void worker_loop(std::size_t self);
  bool try_acquire(std::size_t self, Task& task);
  void wake_one();

  std::vector<std::unique_ptr<Worker>> workers_;
  RelaxedFifo overflow_;

  // Task accounting is atomic (hot path); the mutex + condvars exist
  // only for blocking waits (idle workers, wait_idle callers).
  std::atomic<std::size_t> unfinished_{0};  // submitted, not yet finished
  std::atomic<std::size_t> queued_{0};      // submitted, not yet started
  std::atomic<std::size_t> sleepers_{0};    // workers blocked in the wait

  std::mutex state_mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  bool stopping_ = false;  // written under state_mutex_
};

}  // namespace rchls::parallel

#include "parallel/relaxed_fifo.hpp"

#include <thread>
#include <utility>

namespace rchls::parallel {

namespace {

/// Bounded spin before yielding the core: the only waits in the queue
/// are for another thread's single pending store, so they are short
/// unless that thread was preempted -- then yield instead of burning
/// the core it needs.
class Backoff {
 public:
  void pause() {
    if (++spins_ > 64) std::this_thread::yield();
  }

 private:
  unsigned spins_ = 0;
};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

RelaxedFifo::RelaxedFifo(std::size_t blocks) {
  ring_size_ = round_up_pow2(blocks < 2 ? 2 : blocks);
  mask_ = ring_size_ - 1;
  ring_ = std::make_unique<Block[]>(ring_size_);
  // Arm ring slot i for block id i (epoch 0 of every slot).
  for (std::size_t i = 0; i < ring_size_; ++i) {
    ring_[i].reserve.store(pack(i), std::memory_order_relaxed);
  }
  tail_.store(0, std::memory_order_relaxed);
  head_.store(0, std::memory_order_relaxed);
}

bool RelaxedFifo::try_push(Task& task) {
  for (;;) {
    std::uint64_t tail = tail_.load(std::memory_order_acquire);
    Block& b = block(tail);
    std::uint64_t r = b.reserve.load(std::memory_order_acquire);
    if (id_of(r) == tail && !sealed(r) && cursor_of(r) < kBlockSize) {
      // Reserve one slot with a CAS on the block's own cursor word.
      if (!b.reserve.compare_exchange_weak(r, r + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        continue;  // raced another producer on this block; retry
      }
      Slot& slot = b.slots[cursor_of(r)];
      slot.task = std::move(task);
      slot.seq.store(tail + 1, std::memory_order_release);
      return true;
    }
    // Block is full, sealed by a consumer, or already recycled past us
    // (its id moved on): open the next block or report the ring full.
    if (!advance_tail(tail)) return false;
  }
}

bool RelaxedFifo::advance_tail(std::uint64_t tail) {
  std::uint64_t next = tail + 1;
  std::uint64_t r = block(next).reserve.load(std::memory_order_acquire);
  if (id_of(r) != next) {
    // The successor ring slot still belongs to epoch `next - ring_size_`
    // (its consumer has not recycled it): the ring is full -- unless
    // tail_ already moved under us, in which case the caller retries.
    return tail_.load(std::memory_order_acquire) != tail;
  }
  // One winner advances; losers observe the new tail and proceed.
  tail_.compare_exchange_strong(tail, next, std::memory_order_acq_rel,
                                std::memory_order_relaxed);
  return true;
}

std::size_t RelaxedFifo::pop_block(std::deque<Task>& out) {
  Backoff backoff;
  for (;;) {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_acquire);
    Block& b = block(head);
    std::uint64_t r = b.reserve.load(std::memory_order_acquire);
    if (id_of(r) != head) {
      // head_ advanced under us (a racing consumer claimed and recycled
      // this block); reload and retry.
      continue;
    }

    std::uint64_t count;
    if (tail > head) {
      // Producers only advance tail past a block that is full or
      // sealed, and both states are terminal within an epoch -- so wait
      // until that final cursor value is visible to us (a transiently
      // stale read must not undercount and strand tasks).
      if (!sealed(r) && cursor_of(r) < kBlockSize) {
        backoff.pause();
        continue;
      }
      count = cursor_of(r);
    } else if (tail < head) {
      // Tail lags a sealed claim (it catches up lazily, moved by the
      // next producer). Nothing can be written into blocks >= head
      // until it does, so the queue holds no readable tasks right now.
      return 0;
    } else {
      // head == tail: only the open tail block may hold tasks. Seal it
      // -- freezing the cursor against further producers -- before
      // claiming, so `count` is exact and no task is left behind.
      if (cursor_of(r) == 0) return 0;  // observed empty
      if (!sealed(r)) {
        if (!b.reserve.compare_exchange_weak(r, r | kSealedBit,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
          continue;  // cursor moved or another consumer sealed; retry
        }
        r |= kSealedBit;
      }
      count = cursor_of(r);
    }
    if (count > kBlockSize) count = kBlockSize;

    // Claim the whole block: exactly one consumer wins head -> head+1.
    if (!head_.compare_exchange_strong(head, head + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      continue;
    }

    // Drain the claimed slots. A slot whose producer is still between
    // its reserve CAS and its publish store is waited out here -- the
    // only per-slot wait in the queue, and it is for one pending store.
    for (std::uint64_t i = 0; i < count; ++i) {
      Slot& slot = b.slots[i];
      Backoff slot_backoff;
      while (slot.seq.load(std::memory_order_acquire) != head + 1) {
        slot_backoff.pause();
      }
      out.push_back(std::move(slot.task));
      slot.task = nullptr;  // drop captured state now, not next epoch
    }

    // Recycle the ring slot for its next epoch. The release store
    // orders our slot reads before any producer's writes into the new
    // epoch (producers acquire this word before touching slots).
    b.reserve.store(pack(head + ring_size_), std::memory_order_release);
    return static_cast<std::size_t>(count);
  }
}

bool RelaxedFifo::empty() const {
  std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (tail > head) return false;
  if (tail < head) return true;  // tail lags a sealed claim: nothing readable
  std::uint64_t r = block(head).reserve.load(std::memory_order_acquire);
  return id_of(r) == head && cursor_of(r) == 0;
}

}  // namespace rchls::parallel

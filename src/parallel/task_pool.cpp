#include "parallel/task_pool.hpp"

#include <utility>

#include "parallel/config.hpp"

namespace rchls::parallel {

namespace {

/// Which pool (if any) the current thread belongs to, and as which
/// worker -- O(1) local-deque routing in submit() instead of a scan
/// over worker thread ids.
struct WorkerRef {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerRef t_worker;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < workers; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ThreadPool::submit(Task task) {
  // Count the task before making it visible so a worker can never finish
  // it and drive the counters below zero -- and so a worker deciding to
  // sleep is guaranteed to see either the count or the notify (the
  // eventcount analysis in the header relies on this seq_cst increment
  // preceding publication).
  unfinished_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_seq_cst);

  if (t_worker.pool == this) {
    Worker& me = *workers_[t_worker.index];
    std::lock_guard<std::mutex> lock(me.mutex);
    me.deque.push_back(std::move(task));
  } else {
    detail::PoolCounters& c = detail::pool_counters();
    c.overflow_pushes.fetch_add(1, std::memory_order_relaxed);
    // A full ring is backpressure, not failure: workers are draining it
    // (the task is already counted in queued_, so none of them can go
    // to sleep for good), so yield until a block frees up.
    while (!overflow_.try_push(task)) {
      c.full_retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }
  wake_one();
}

void ThreadPool::wake_one() {
  // Uncontended fast path: nobody is asleep, nothing to notify. The
  // seq_cst load pairs with the sleeper's registration (see header).
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  std::lock_guard<std::mutex> lock(state_mutex_);
  work_ready_.notify_one();
}

bool ThreadPool::try_acquire(std::size_t self, Task& task) {
  Worker& me = *workers_[self];
  detail::PoolCounters& c = detail::pool_counters();
  {
    std::lock_guard<std::mutex> lock(me.mutex);
    if (!me.deque.empty()) {
      task = std::move(me.deque.back());
      me.deque.pop_back();
    }
  }
  if (task) {
    queued_.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }
  // Refill from the shared overflow FIFO, a whole block at a time. The
  // claim happens outside my own mutex (pop_block may briefly wait on a
  // mid-publish producer; thieves should not be blocked meanwhile).
  std::deque<Task> grabbed;
  if (std::size_t n = overflow_.pop_block(grabbed)) {
    c.block_handoffs.fetch_add(1, std::memory_order_relaxed);
    c.overflow_pops.fetch_add(n, std::memory_order_relaxed);
    task = std::move(grabbed.back());
    grabbed.pop_back();
    if (!grabbed.empty()) {
      std::lock_guard<std::mutex> lock(me.mutex);
      for (Task& t : grabbed) me.deque.push_back(std::move(t));
    }
    queued_.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }
  // Steal the oldest task of the first non-empty victim.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(self + k) % workers_.size()];
    {
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.deque.empty()) {
        task = std::move(victim.deque.front());
        victim.deque.pop_front();
      }
    }
    if (task) {
      c.steals.fetch_add(1, std::memory_order_relaxed);
      queued_.fetch_sub(1, std::memory_order_seq_cst);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker = {this, self};
  detail::PoolCounters& c = detail::pool_counters();
  for (;;) {
    Task task;
    if (try_acquire(self, task)) {
      task();
      c.tasks_executed.fetch_add(1, std::memory_order_relaxed);
      if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        idle_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (stopping_ && queued_.load(std::memory_order_seq_cst) == 0) break;
    // Register as a sleeper BEFORE the final emptiness check inside
    // wait(): a submitter either sees sleepers_ > 0 and notifies under
    // this mutex, or its queued_ increment is seen here -- the seq_cst
    // total order over {queued_, sleepers_} rules out losing both.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    work_ready_.wait(lock, [&] {
      return stopping_ || queued_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    c.idle_wakeups.fetch_add(1, std::memory_order_relaxed);
    if (stopping_ && queued_.load(std::memory_order_seq_cst) == 0) break;
  }
  t_worker = {};
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  idle_.wait(lock, [&] {
    return unfinished_.load(std::memory_order_seq_cst) == 0;
  });
}

bool ThreadPool::on_worker_thread() { return t_worker.pool != nullptr; }

}  // namespace rchls::parallel

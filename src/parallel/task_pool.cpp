#include "parallel/task_pool.hpp"

#include <utility>

namespace rchls::parallel {

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

void BlockQueue::push(Task task) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (blocks_.empty() || blocks_.back().tasks.size() >= kBlockSize) {
    blocks_.emplace_back();
    blocks_.back().tasks.reserve(kBlockSize);
  }
  blocks_.back().tasks.push_back(std::move(task));
}

bool BlockQueue::pop_block(std::deque<Task>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (blocks_.empty()) return false;
  for (Task& t : blocks_.front().tasks) out.push_back(std::move(t));
  blocks_.pop_front();
  return true;
}

bool BlockQueue::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.empty();
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < workers; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ThreadPool::submit(Task task) {
  // Count the task before making it visible so a worker can never finish it
  // and drive the counters below zero.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++unfinished_;
    ++queued_;
  }
  bool queued_locally = false;
  if (t_on_worker_thread) {
    // Identify which worker (if any) of *this* pool is submitting.
    std::thread::id self = std::this_thread::get_id();
    for (auto& w : workers_) {
      if (w->thread.get_id() == self) {
        std::lock_guard<std::mutex> lock(w->mutex);
        w->deque.push_back(std::move(task));
        queued_locally = true;
        break;
      }
    }
  }
  if (!queued_locally) overflow_.push(std::move(task));
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    work_ready_.notify_one();
  }
}

void ThreadPool::note_dequeued() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  --queued_;
}

bool ThreadPool::try_acquire(std::size_t self, Task& task) {
  Worker& me = *workers_[self];
  {
    std::lock_guard<std::mutex> lock(me.mutex);
    if (!me.deque.empty()) {
      task = std::move(me.deque.back());
      me.deque.pop_back();
    }
  }
  if (task) {
    note_dequeued();
    return true;
  }
  // Refill from the shared overflow queue, a whole block at a time.
  {
    std::lock_guard<std::mutex> lock(me.mutex);
    if (overflow_.pop_block(me.deque) && !me.deque.empty()) {
      task = std::move(me.deque.back());
      me.deque.pop_back();
    }
  }
  if (task) {
    note_dequeued();
    return true;
  }
  // Steal the oldest task of the first non-empty victim.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(self + k) % workers_.size()];
    {
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.deque.empty()) {
        task = std::move(victim.deque.front());
        victim.deque.pop_front();
      }
    }
    if (task) {
      note_dequeued();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_on_worker_thread = true;
  for (;;) {
    Task task;
    if (try_acquire(self, task)) {
      task();
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (--unfinished_ == 0) idle_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (stopping_ && queued_ == 0) break;
    // No lost wakeup: submit() publishes the task before notifying under
    // this mutex, and the predicate re-checks `queued_` under it. A wake
    // with `queued_ > 0` can still lose the race to another worker; the
    // loop then simply comes back here.
    work_ready_.wait(lock, [&] { return stopping_ || queued_ > 0; });
    if (stopping_ && queued_ == 0) break;
  }
  t_on_worker_thread = false;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  idle_.wait(lock, [&] { return unfinished_ == 0; });
}

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

}  // namespace rchls::parallel

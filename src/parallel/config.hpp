// Process-wide parallelism configuration.
//
// Every parallel front-end (parallel_for, parallel_map, and through them the
// exploration sweeps and injection campaigns) resolves its worker count here
// unless the caller passes an explicit count. The CLI's --jobs flag and the
// benchmarks write this once at startup; the default is the hardware
// concurrency of the host.
//
// Parallelism never changes results: work is partitioned the same way at
// every worker count (see partitioner.hpp), so `jobs` is purely a
// wall-clock knob.
#pragma once

#include <cstddef>

namespace rchls::parallel {

struct Config {
  /// Worker threads used by parallel regions. 0 = hardware concurrency.
  std::size_t jobs = 0;
};

/// max(1, std::thread::hardware_concurrency()).
std::size_t hardware_jobs();

/// Maps the 0-means-default convention to a concrete positive count.
std::size_t resolve_jobs(std::size_t requested);

/// Mutable process-wide configuration (not synchronized: set it during
/// startup, before parallel regions run).
Config& global_config();

/// Convenience accessors for the global worker count.
void set_global_jobs(std::size_t jobs);
std::size_t global_jobs();

}  // namespace rchls::parallel

// Process-wide parallelism configuration and pool observability.
//
// Every parallel front-end (parallel_for, parallel_map, and through them the
// exploration sweeps and injection campaigns) resolves its worker count here
// unless the caller passes an explicit count. The CLI's --jobs flag and the
// benchmarks write this once at startup; the default is the hardware
// concurrency of the host.
//
// Parallelism never changes results: work is partitioned the same way at
// every worker count (see partitioner.hpp), so `jobs` is purely a
// wall-clock knob.
//
// PoolStats is the matching observability surface: cheap relaxed-atomic
// counters every ThreadPool (task_pool.hpp) adds into, cumulative for the
// process (they survive pool resizes, and multiple pools share them).
// The serve daemon samples them per stats() call so queue behavior is
// visible under real traffic; bench/perf_pool prints them per run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rchls::parallel {

struct Config {
  /// Worker threads used by parallel regions. 0 = hardware concurrency.
  std::size_t jobs = 0;
};

/// max(1, std::thread::hardware_concurrency()).
std::size_t hardware_jobs();

/// Maps the 0-means-default convention to a concrete positive count.
std::size_t resolve_jobs(std::size_t requested);

/// Mutable process-wide configuration (not synchronized: set it during
/// startup, before parallel regions run).
Config& global_config();

/// Convenience accessors for the global worker count.
void set_global_jobs(std::size_t jobs);
std::size_t global_jobs();

// ------------------------------------------------------ pool counters

/// Snapshot of the process-wide thread-pool counters. All counts are
/// cumulative since process start (or the last reset_pool_stats()) and
/// monotonic; each is sampled individually, so a snapshot taken under
/// load is consistent per counter, not across counters.
struct PoolStats {
  std::uint64_t tasks_executed = 0;   ///< tasks run by any pool worker
  std::uint64_t steals = 0;           ///< tasks taken from another worker
  std::uint64_t overflow_pushes = 0;  ///< tasks pushed to the shared FIFO
  std::uint64_t overflow_pops = 0;    ///< tasks drained from the FIFO
  std::uint64_t block_handoffs = 0;   ///< whole-block claims off the FIFO
  std::uint64_t idle_wakeups = 0;     ///< worker wakeups from the idle wait
  std::uint64_t full_retries = 0;     ///< push attempts bounced off a full ring
};

/// Samples the counters (relaxed loads; safe from any thread).
PoolStats pool_stats();

/// Zeroes the counters. For tests and benchmark harnesses that want a
/// per-phase delta; not synchronized against concurrent pool traffic.
void reset_pool_stats();

namespace detail {

/// The shared counter block the pools increment (relaxed, hot-path
/// cheap). Lives here rather than per-pool so samples survive the
/// shared pool being torn down and respawned at a new worker count.
struct PoolCounters {
  std::atomic<std::uint64_t> tasks_executed{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> overflow_pushes{0};
  std::atomic<std::uint64_t> overflow_pops{0};
  std::atomic<std::uint64_t> block_handoffs{0};
  std::atomic<std::uint64_t> idle_wakeups{0};
  std::atomic<std::uint64_t> full_retries{0};
};

PoolCounters& pool_counters();

}  // namespace detail

}  // namespace rchls::parallel

// Relaxed MPMC block FIFO -- the lock-free overflow queue behind the
// thread pool (task_pool.hpp), after the block_based_queue exemplar.
//
// The PR-1 overflow queue was a std::deque<Block> behind one mutex:
// every producer and every consumer serialized on the same lock, once
// per push and once per block. This replaces it with a bounded ring of
// fixed-size blocks and three kinds of atomic state:
//
//   * `tail_` / `head_` -- monotonically increasing *block ids*. The
//     ring slot of block id B is B % ring size; the id doubles as the
//     block's epoch, so a recycled slot can never be confused with its
//     previous life. Producers move `tail_` once per kBlockSize tasks;
//     consumers move `head_` once per claimed block. This is the whole
//     point: the *global* shared words are touched once per block, not
//     once per task.
//   * per-block `reserve` word, packing {id | sealed | cursor}: the
//     multi-producer write cursor. Producers reserve a slot with one
//     CAS on their block's own word -- contention is spread across
//     blocks instead of funneled through a queue-wide lock.
//   * per-slot `seq` -- publishes one task (release store of the
//     block id + 1; a reader matching it has acquire-visibility of the
//     task). Slot sequencing is what lets a consumer claim a block
//     whose last producer is still mid-write: it spins per slot only
//     until that producer's single pending store lands.
//
// Ordering contract: FIFO at *block* granularity only. Tasks within a
// block come out in push order, but concurrent producers interleave
// arbitrarily into blocks and each consumer drains its claimed block
// privately, so there is no global per-element order -- exactly the
// relaxation the pool can afford, because parallel_for/parallel_map
// assign results to pre-indexed slots and never depend on completion
// order (task_pool.hpp spells out the determinism split).
//
// Boundedness: capacity() = blocks * kBlockSize is a hard bound;
// try_push returns false when the ring is full (the pool spins/yields,
// which doubles as backpressure). Loss-freedom -- every successfully
// pushed task is popped exactly once -- is pinned by
// tests/parallel_fifo_test.cpp under TSan.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

namespace rchls::parallel {

using Task = std::function<void()>;

class RelaxedFifo {
 public:
  /// Tasks per block: the contention-amortization factor. 16 keeps a
  /// block within a few cache lines of Task headers while making the
  /// global head/tail words ~16x colder than a per-task queue.
  static constexpr std::size_t kBlockSize = 16;

  /// `blocks` is rounded up to a power of two, minimum 2. Capacity is
  /// fixed at construction; the queue never allocates afterwards.
  explicit RelaxedFifo(std::size_t blocks = 256);

  RelaxedFifo(const RelaxedFifo&) = delete;
  RelaxedFifo& operator=(const RelaxedFifo&) = delete;

  /// Multi-producer push. False when the ring is full (the task is
  /// handed back untouched in that case -- safe to retry).
  bool try_push(Task& task);

  /// Claims the head block and appends its tasks to `out` in
  /// within-block push order. Returns the number of tasks taken, 0 when
  /// the queue was observed empty. Claims whole blocks: a partially
  /// filled tail block is sealed (frozen against further producers)
  /// and taken as-is, so no task can linger behind the seal.
  std::size_t pop_block(std::deque<Task>& out);

  /// Racy snapshot: true only when head == tail and the open block has
  /// nothing reserved. A false return may be stale either way; callers
  /// needing liveness must rely on their own task accounting (the pool
  /// uses its queued-task counter).
  bool empty() const;

  /// Hard bound on buffered tasks (sealed partial blocks waste the
  /// remainder of their block, so the practical bound can be lower).
  std::size_t capacity() const { return ring_size_ * kBlockSize; }
  std::size_t block_count() const { return ring_size_; }

 private:
  // reserve word layout: [ id : 47 | sealed : 1 | cursor : 16 ].
  static constexpr std::uint64_t kCursorBits = 16;
  static constexpr std::uint64_t kCursorMask = (1ull << kCursorBits) - 1;
  static constexpr std::uint64_t kSealedBit = 1ull << kCursorBits;
  static constexpr unsigned kIdShift = kCursorBits + 1;

  static constexpr std::uint64_t pack(std::uint64_t id) {
    return id << kIdShift;
  }
  static constexpr std::uint64_t id_of(std::uint64_t r) {
    return r >> kIdShift;
  }
  static constexpr std::uint64_t cursor_of(std::uint64_t r) {
    return r & kCursorMask;
  }
  static constexpr bool sealed(std::uint64_t r) {
    return (r & kSealedBit) != 0;
  }

  struct Slot {
    /// block id + 1 once `task` is fully written for that epoch.
    /// Distinct epochs publish distinct values, so a stale sequence
    /// from a previous life of the slot can never false-positive.
    std::atomic<std::uint64_t> seq{0};
    Task task;
  };

  struct alignas(64) Block {
    std::atomic<std::uint64_t> reserve{0};
    std::array<Slot, kBlockSize> slots;
  };

  Block& block(std::uint64_t id) { return ring_[id & mask_]; }
  const Block& block(std::uint64_t id) const { return ring_[id & mask_]; }

  /// Moves tail_ past `tail` once its successor slot has been recycled.
  /// False = ring full (successor still owned by its previous epoch).
  bool advance_tail(std::uint64_t tail);

  std::unique_ptr<Block[]> ring_;
  std::size_t ring_size_ = 0;
  std::size_t mask_ = 0;

  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< open write block id
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next block id to claim
};

}  // namespace rchls::parallel

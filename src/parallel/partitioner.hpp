// Deterministic work partitioning for Monte-Carlo campaigns and
// enumeration sweeps.
//
// The contract that makes `--jobs` a pure wall-clock knob: the partition of
// a workload depends only on the workload itself (total trials, campaign
// seed), never on the worker count. Each chunk gets its own Rng stream
// derived from (campaign seed, chunk index), and chunk results are merged
// in chunk-index order -- so a campaign produces bit-identical statistics
// whether it ran on 1 thread or 64.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace rchls::parallel {

/// The simulator evaluates 64 input patterns per pass; trial chunks are
/// always lane-aligned so no pass straddles two chunks.
inline constexpr std::size_t kLanes = 64;

/// Default chunk granularity: big enough to amortize task overhead, small
/// enough to load-balance a 16k-trial campaign across 8 workers.
inline constexpr std::size_t kDefaultTrialsPerChunk = kLanes * 16;

/// One slice of a Monte-Carlo trial budget.
struct TrialChunk {
  std::size_t index = 0;        ///< position in the campaign (merge order)
  std::size_t first_trial = 0;  ///< offset of the chunk's first trial
  std::size_t trials = 0;       ///< multiple of kLanes
  std::uint64_t seed = 0;       ///< per-chunk Rng stream seed
};

/// Splits `trials` (rounded up to a multiple of kLanes) into fixed-size,
/// lane-aligned chunks with per-chunk stream seeds. The layout is a
/// function of (trials, campaign_seed, trials_per_chunk) only.
std::vector<TrialChunk> partition_trials(
    std::size_t trials, std::uint64_t campaign_seed,
    std::size_t trials_per_chunk = kDefaultTrialsPerChunk);

/// A contiguous index range [begin, end) of a larger enumeration.
struct IndexRange {
  std::size_t index = 0;  ///< position of the range (merge order)
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Splits [0, count) into at most `max_ranges` contiguous ranges of at
/// least `min_per_range` elements each (except possibly the last).
std::vector<IndexRange> partition_range(std::uint64_t count,
                                        std::size_t max_ranges,
                                        std::uint64_t min_per_range = 1);

/// Statistically independent stream seed for (campaign_seed, stream):
/// a splitmix64 finalizer over the pair, matching the seeding scheme of
/// util::Rng itself.
std::uint64_t derive_stream_seed(std::uint64_t campaign_seed,
                                 std::uint64_t stream);

/// Convenience: the Rng for one chunk of a campaign.
inline Rng stream_rng(std::uint64_t campaign_seed, std::uint64_t stream) {
  return Rng(derive_stream_seed(campaign_seed, stream));
}

}  // namespace rchls::parallel

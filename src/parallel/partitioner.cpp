#include "parallel/partitioner.hpp"

#include <algorithm>

namespace rchls::parallel {

std::vector<TrialChunk> partition_trials(std::size_t trials,
                                         std::uint64_t campaign_seed,
                                         std::size_t trials_per_chunk) {
  std::vector<TrialChunk> chunks;
  if (trials == 0) return chunks;
  std::size_t total = (trials + kLanes - 1) / kLanes * kLanes;
  std::size_t per_chunk =
      std::max(kLanes, (trials_per_chunk + kLanes - 1) / kLanes * kLanes);
  for (std::size_t first = 0; first < total; first += per_chunk) {
    TrialChunk c;
    c.index = chunks.size();
    c.first_trial = first;
    c.trials = std::min(per_chunk, total - first);
    c.seed = derive_stream_seed(campaign_seed, c.index);
    chunks.push_back(c);
  }
  return chunks;
}

std::vector<IndexRange> partition_range(std::uint64_t count,
                                        std::size_t max_ranges,
                                        std::uint64_t min_per_range) {
  std::vector<IndexRange> ranges;
  if (count == 0) return ranges;
  if (max_ranges == 0) max_ranges = 1;
  if (min_per_range == 0) min_per_range = 1;
  std::uint64_t per_range = std::max<std::uint64_t>(
      min_per_range, (count + max_ranges - 1) / max_ranges);
  for (std::uint64_t begin = 0; begin < count; begin += per_range) {
    IndexRange r;
    r.index = ranges.size();
    r.begin = begin;
    r.end = std::min(count, begin + per_range);
    ranges.push_back(r);
  }
  return ranges;
}

std::uint64_t derive_stream_seed(std::uint64_t campaign_seed,
                                 std::uint64_t stream) {
  // splitmix64 finalizer over the (seed, stream) pair. The +1 keeps
  // stream 0 from collapsing onto the bare campaign seed.
  std::uint64_t z = campaign_seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace rchls::parallel

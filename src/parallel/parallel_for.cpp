#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "parallel/task_pool.hpp"

namespace rchls::parallel {

namespace {

/// Completion latch for one parallel region. Regions own their progress
/// tracking so several of them can share one pool without seeing each
/// other's tasks.
struct Region {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
  std::exception_ptr first_error;
};

/// Process-wide pool, created lazily and resized (recreated) when the
/// requested worker count changes. Pool spawn is paid once, not per
/// region -- sweeps and campaigns call parallel_for in tight loops.
/// Resizing tears the old pool down only after it drained, so the only
/// unsupported pattern is *concurrent* regions with *different* worker
/// counts, which no current caller does.
ThreadPool& shared_pool(std::size_t workers) {
  static std::mutex mutex;
  static std::unique_ptr<ThreadPool> pool;
  std::lock_guard<std::mutex> lock(mutex);
  if (!pool || pool->worker_count() != workers) {
    pool.reset();  // join the old workers before spawning the new ones
    pool = std::make_unique<ThreadPool>(workers);
  }
  return *pool;
}

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t jobs) {
  if (n == 0) return;
  std::size_t workers = std::min(jobs == 0 ? global_jobs() : jobs, n);
  if (workers <= 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  ThreadPool& pool = shared_pool(workers);
  Region region;
  region.remaining = n;
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&region, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(region.mutex);
        if (!region.first_error) region.first_error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(region.mutex);
      if (--region.remaining == 0) region.done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(region.mutex);
  region.done.wait(lock, [&] { return region.remaining == 0; });
  if (region.first_error) std::rethrow_exception(region.first_error);
}

}  // namespace rchls::parallel

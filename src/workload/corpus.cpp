#include "workload/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "circuits/components.hpp"
#include "dfg/generate.hpp"
#include "dfg/io.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace rchls::workload {

namespace {

// Longest dependence path in nodes. With the paper library's delay-1
// versions this is the latency floor, so bound tiers derive from it.
std::size_t depth_of(const dfg::Graph& g) {
  std::vector<std::size_t> depth(g.node_count(), 1);
  std::size_t best = 1;
  for (dfg::NodeId id : g.topological_order()) {
    for (dfg::NodeId p : g.predecessors(id)) {
      depth[id] = std::max(depth[id], depth[p] + 1);
    }
    best = std::max(best, depth[id]);
  }
  return best;
}

// Half-unit rounding keeps emitted areas at clean shortest renderings
// ("18", "18.5") while still exercising fractional bounds.
double half_units(double v) { return std::round(v * 2.0) / 2.0; }

// Area that comfortably fits ceil(ops/L) delay-1 units per class
// (adder_2 area 2, mult_2 area 4 in the paper library) plus margin.
double comfortable_area(std::size_t adds, std::size_t muls, std::size_t lat) {
  auto units = [lat](std::size_t ops) {
    return ops == 0 ? 0.0
                    : std::ceil(static_cast<double>(ops) /
                                static_cast<double>(lat));
  };
  return half_units(2.0 * units(adds) + 4.0 * units(muls) + 2.0);
}

struct CaseBuilder {
  Rng rng;
  std::string scn;  // accumulated scenario text

  void line(const std::string& s) { scn += s + "\n"; }

  std::string pick(const std::vector<std::string>& options) {
    return options[rng.next_below(options.size())];
  }
};

const char* kActionRotation[] = {"find_design", "sweep", "grid", "inject",
                                 "rank_gates", "sta"};
const dfg::GraphShape kShapeRotation[] = {
    dfg::GraphShape::kLayered, dfg::GraphShape::kChain,
    dfg::GraphShape::kFanoutTree, dfg::GraphShape::kButterfly,
    dfg::GraphShape::kFilter};

// The engine-option suffix shared by the synthesis actions: sometimes a
// non-default scheduler, polish, or exploration budget.
std::string engine_option_tokens(CaseBuilder& b) {
  std::string out;
  if (b.rng.next_bool(0.25)) out += " scheduler=fds";
  if (b.rng.next_bool(0.3)) out += " polish=on";
  if (b.rng.next_bool(0.2)) {
    out += " explore=" + std::to_string(1 + b.rng.next_below(2));
  }
  return out;
}

CorpusCase build_case(std::size_t index, std::uint64_t case_seed,
                      int name_width, const CorpusConfig& config) {
  CorpusCase c;
  c.case_seed = case_seed;
  c.action = kActionRotation[index % 6];

  std::string num = std::to_string(index);
  while (static_cast<int>(num.size()) < name_width) num.insert(0, "0");
  c.name = "case_" + num;
  c.scn_filename = c.name + ".scn";

  CaseBuilder b{Rng(case_seed), ""};
  bool graphless = c.action == "inject" || c.action == "rank_gates";

  b.line("# generated workload corpus case -- do not edit; regenerate:");
  b.line("#   rchls gen <dir> --seed " + std::to_string(config.seed) +
         " --count " + std::to_string(config.count));

  if (graphless) {
    // Campaign case: component, width and trial count from the case
    // stream. Widths stay small so hundreds of cases replay in seconds.
    auto components = circuits::component_names();
    std::string component = components[(index / 6) % components.size()];
    b.line("# case=" + c.name + " action=" + c.action +
           " case_seed=" + std::to_string(case_seed));
    b.line("scenario " + c.name + "_" + c.action);
    b.line("");
    std::string tokens = c.action + " " + component;
    if (c.action == "inject") {
      tokens += " width=" + std::to_string(4 + 2 * b.rng.next_below(7));
      tokens += " trials=" +
                std::to_string(64 * (4 + b.rng.next_below(12)));
    } else {
      tokens += " width=" + std::to_string(4 + 2 * b.rng.next_below(3));
      tokens += " trials=" + std::to_string(64 * (2 + b.rng.next_below(6)));
      tokens += " top=" + b.pick({"0", "3", "5", "10"});
    }
    tokens += " seed=" + std::to_string(b.rng.next_u64());
    tokens += " label=" + c.action;
    b.line(tokens);
    c.scn_text = std::move(b.scn);
    return c;
  }

  // Synthesis case: a generated graph of the rotation's shape plus
  // bounds derived from its measured depth and op mix.
  dfg::GeneratorConfig gc;
  gc.shape = kShapeRotation[(index / 6) % 5];
  gc.seed = case_seed;
  gc.num_nodes = 8 + b.rng.next_below(33);
  gc.layer_width = static_cast<double>(2 + b.rng.next_below(4));
  gc.mul_fraction = 0.15 + 0.1 * static_cast<double>(b.rng.next_below(4));
  if (gc.shape == dfg::GraphShape::kFanoutTree) {
    gc.max_fanout = 2 + b.rng.next_below(3);
  } else if (gc.shape == dfg::GraphShape::kLayered && b.rng.next_bool(0.3)) {
    gc.max_fanout = 2 + b.rng.next_below(3);
  }
  dfg::Graph g = dfg::generate_random(gc);

  c.shape = dfg::to_string(gc.shape);
  c.nodes = g.node_count();
  c.dfg_filename = c.name + ".dfg";
  c.dfg_text = dfg::to_text(g);

  std::size_t depth = depth_of(g);
  std::size_t muls = g.count_ops(dfg::OpType::kMul);
  std::size_t adds = g.node_count() - muls;
  std::size_t lat = 2 * depth + 2;
  double area = comfortable_area(adds, muls, lat);

  b.line("# case=" + c.name + " action=" + c.action + " shape=" + c.shape +
         " nodes=" + std::to_string(c.nodes) +
         " case_seed=" + std::to_string(case_seed));
  b.line("scenario " + c.name + "_" + c.action + "_" + c.shape);
  b.line("graph @" + c.dfg_filename);
  b.line("library paper");
  b.line("");

  if (c.action == "find_design") {
    // A quarter of the cases get deliberately tight bounds: unsolved
    // results are results too, and they must replay byte-identically.
    bool tight = b.rng.next_bool(0.25);
    std::string engine = b.pick({"centric", "centric", "baseline",
                                 "combined"});
    std::string tokens = "find_design latency=" +
                         std::to_string(tight ? depth : lat) + " area=" +
                         format_shortest(tight ? half_units(area / 3.0)
                                               : area) +
                         " engine=" + engine;
    if (engine != "baseline") tokens += engine_option_tokens(b);
    tokens += " label=find_design";
    b.line(tokens);
  } else if (c.action == "sweep") {
    if (b.rng.next_bool(0.5)) {
      std::string lats = std::to_string(depth) + "," +
                         std::to_string(depth + 2) + "," +
                         std::to_string(lat);
      b.line("sweep latency " + lats + " area=" + format_shortest(area) +
             engine_option_tokens(b) + " label=sweep");
    } else {
      std::string areas = format_shortest(half_units(area / 2.0)) + "," +
                          format_shortest(half_units(area * 0.75)) + "," +
                          format_shortest(area);
      b.line("sweep area " + areas + " latency=" + std::to_string(lat) +
             engine_option_tokens(b) + " label=sweep");
    }
  } else if (c.action == "grid") {
    std::string tokens = "grid latencies=" + std::to_string(depth + 1) +
                         "," + std::to_string(lat) + " areas=" +
                         format_shortest(half_units(area * 0.6)) + "," +
                         format_shortest(area);
    if (b.rng.next_bool(0.3)) {
      tokens += " baseline_adder=adder_2 baseline_mult=mult_2";
    }
    tokens += engine_option_tokens(b) + " label=grid";
    b.line(tokens);
  } else {  // sta: timing + sensitivity join over the elaborated graph
    std::string tokens = "sta width=" +
                         std::to_string(4 + 2 * b.rng.next_below(3));
    tokens += " versions=" + b.pick({"fastest", "most_reliable"});
    tokens += " top_paths=" + b.pick({"1", "2", "3"});
    tokens += " top=" + b.pick({"0", "3", "5", "10"});
    tokens += " trials=" + std::to_string(64 * (2 + b.rng.next_below(4)));
    tokens += " seed=" + std::to_string(b.rng.next_u64());
    tokens += " label=sta";
    b.line(tokens);
  }
  c.scn_text = std::move(b.scn);
  return c;
}

}  // namespace

std::vector<CorpusCase> generate_corpus(const CorpusConfig& config) {
  if (config.count == 0) throw Error("generate_corpus: need count >= 1");
  int name_width = std::max<int>(
      3, static_cast<int>(std::to_string(config.count - 1).size()));

  // One master stream hands every case its private seed, so case i's
  // content is a pure function of (master seed, i) regardless of how
  // many cases are generated after it.
  Rng master(config.seed);
  std::vector<std::uint64_t> seeds(config.count);
  for (auto& s : seeds) s = master.next_u64();

  std::vector<CorpusCase> cases;
  cases.reserve(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    cases.push_back(build_case(i, seeds[i], name_width, config));
  }
  return cases;
}

std::string manifest_json(const CorpusConfig& config,
                          const std::vector<CorpusCase>& cases) {
  auto doc = json::Value::object();
  doc.set("format_version", "rchls.corpus.v2")
      .set("seed", std::to_string(config.seed))  // uint64: decimal string
      .set("count", static_cast<std::uint64_t>(config.count));
  auto list = json::Value::array();
  for (const auto& c : cases) {
    auto entry = json::Value::object();
    entry.set("name", c.name)
        .set("action", c.action)
        .set("case_seed", std::to_string(c.case_seed));
    if (!c.dfg_filename.empty()) {
      entry.set("shape", c.shape)
          .set("nodes", static_cast<std::uint64_t>(c.nodes))
          .set("dfg", c.dfg_filename);
    }
    entry.set("scn", c.scn_filename);
    list.push(std::move(entry));
  }
  doc.set("cases", std::move(list));
  return doc.dump(2) + "\n";
}

std::size_t write_corpus(const CorpusConfig& config,
                         const std::filesystem::path& dir) {
  std::vector<CorpusCase> cases = generate_corpus(config);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw Error("cannot create corpus directory '" + dir.string() +
                "': " + ec.message());
  }
  std::size_t written = 0;
  auto write_one = [&](const std::string& name, const std::string& text) {
    if (!write_file(dir / name, text)) {
      throw Error("cannot write corpus file '" + (dir / name).string() +
                  "'");
    }
    ++written;
  };
  for (const auto& c : cases) {
    if (!c.dfg_filename.empty()) write_one(c.dfg_filename, c.dfg_text);
    write_one(c.scn_filename, c.scn_text);
  }
  write_one("manifest.json", manifest_json(config, cases));
  return written;
}

}  // namespace rchls::workload

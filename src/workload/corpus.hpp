// Seeded workload-corpus generation -- scenario diversity as data.
//
// Everything the system executes flows through `.scn` scenarios and the
// typed api requests behind them, so new workloads are pure data: this
// module turns ONE master seed into hundreds of (graph, scenario) cases
// spanning every structural family dfg::generate_random knows (chains,
// fan-out trees, butterflies, paper-like filters, random layered DAGs)
// and every action kind the api executes (find_design, sweep, grid,
// inject, rank_gates, sta), with deliberately mixed engines, schedulers,
// bound tightness, widths, version policies and trial counts.
//
// Reproducibility contract (docs/workloads.md): generate_corpus is a
// pure function of its CorpusConfig. The same (seed, count) produces the
// same case names, the same graph bytes and the same scenario bytes on
// every platform, in every process, forever -- corpus identifiers are
// stable coordinates. That rests on dfg::generate_random's own pinned
// determinism (tests/dfg_generate_test.cpp golden captures) and on
// every number in the emitted text being rendered with
// shortest-round-trip formatting. tests/workload_corpus_test.cpp pins a
// golden case and CI regenerates a corpus from a fixed seed per run.
//
// Consumers:
//  * `rchls gen <dir>` (api/cli.cpp) writes a corpus to disk;
//  * the corpus regression test replays a sample through
//    scenario::Runner at --jobs 1 vs 8 and asserts byte-identical
//    reports plus zero warm-cache executions;
//  * bench/perf_scale sizes the same generator families 10-100x up.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace rchls::workload {

struct CorpusConfig {
  std::uint64_t seed = 1;
  std::size_t count = 100;
};

/// One generated case: a scenario file plus (for the synthesis actions)
/// the graph file it references. `dfg_filename`/`dfg_text` are empty for
/// the graphless campaign actions (inject, rank_gates).
struct CorpusCase {
  std::string name;      ///< "case_042" -- the stable corpus coordinate
  std::string shape;     ///< dfg::to_string(GraphShape), "" when graphless
  std::string action;    ///< "find_design" ... "rank_gates", "sta"
  std::uint64_t case_seed = 0;  ///< this case's private generator seed
  std::size_t nodes = 0;        ///< graph size, 0 when graphless
  std::string dfg_filename;     ///< "case_042.dfg" or ""
  std::string dfg_text;
  std::string scn_filename;     ///< "case_042.scn"
  std::string scn_text;
};

/// Generates the corpus deterministically (see the contract above).
/// Throws Error for count == 0.
std::vector<CorpusCase> generate_corpus(const CorpusConfig& config);

/// The corpus manifest: one canonical JSON document (util/json rules:
/// fixed key order, shortest-round-trip numbers, trailing newline)
/// recording the config and every case's coordinates -- the index a
/// replay tool or CI sample step reads instead of globbing.
std::string manifest_json(const CorpusConfig& config,
                          const std::vector<CorpusCase>& cases);

/// Writes every case file plus "manifest.json" under `dir` (created if
/// missing; existing files are overwritten -- regeneration is the
/// point). Returns the number of files written. Throws Error when a
/// file cannot be written.
std::size_t write_corpus(const CorpusConfig& config,
                         const std::filesystem::path& dir);

}  // namespace rchls::workload

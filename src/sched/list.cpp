#include "sched/list.hpp"

#include <algorithm>

#include "dfg/timing.hpp"
#include "util/error.hpp"

namespace rchls::sched {

Schedule list_schedule(const dfg::Graph& g, std::span<const int> delays,
                       std::span<const int> node_group,
                       std::span<const int> instances) {
  const std::size_t n = g.node_count();
  if (node_group.size() != n) {
    throw Error("list_schedule: node_group size mismatch");
  }
  for (std::size_t id = 0; id < n; ++id) {
    if (node_group[id] < 0 ||
        static_cast<std::size_t>(node_group[id]) >= instances.size()) {
      throw Error("list_schedule: node_group value out of range");
    }
  }
  for (int k : instances) {
    if (k < 1) throw Error("list_schedule: instance counts must be >= 1");
  }

  // Priority = ALAP start at the unconstrained minimum latency (lower =
  // more urgent).
  std::vector<int> priority =
      dfg::alap(g, delays, dfg::asap_latency(g, delays));

  std::vector<int> remaining_preds(n);
  for (dfg::NodeId id = 0; id < n; ++id) {
    remaining_preds[id] = static_cast<int>(g.predecessors(id).size());
  }

  Schedule s;
  s.start.assign(n, -1);

  // busy_until[instance slot] per group; an op grabs any slot free at t.
  std::vector<std::vector<int>> busy_until(instances.size());
  for (std::size_t k = 0; k < instances.size(); ++k) {
    busy_until[k].assign(static_cast<std::size_t>(instances[k]), 0);
  }

  std::vector<dfg::NodeId> ready;
  for (dfg::NodeId id = 0; id < n; ++id) {
    if (remaining_preds[id] == 0) ready.push_back(id);
  }
  // earliest data-ready time per node.
  std::vector<int> data_ready(n, 0);

  std::size_t scheduled = 0;
  int t = 0;
  while (scheduled < n) {
    // Issue ready ops at step t in priority order.
    std::sort(ready.begin(), ready.end(),
              [&priority](dfg::NodeId a, dfg::NodeId b) {
                if (priority[a] != priority[b]) {
                  return priority[a] < priority[b];
                }
                return a < b;
              });
    std::vector<dfg::NodeId> still_waiting;
    for (dfg::NodeId id : ready) {
      if (data_ready[id] > t) {
        still_waiting.push_back(id);
        continue;
      }
      auto& slots = busy_until[static_cast<std::size_t>(node_group[id])];
      auto slot = std::min_element(slots.begin(), slots.end());
      if (*slot > t) {
        still_waiting.push_back(id);
        continue;
      }
      *slot = t + delays[id];
      s.start[id] = t;
      ++scheduled;
      for (dfg::NodeId succ : g.successors(id)) {
        data_ready[succ] = std::max(data_ready[succ], t + delays[id]);
        if (--remaining_preds[succ] == 0) still_waiting.push_back(succ);
      }
    }
    ready = std::move(still_waiting);
    ++t;
  }

  s.latency = computed_latency(g, delays, s.start);
  validate_schedule(g, delays, s);
  return s;
}

std::vector<int> peak_usage(const dfg::Graph& g, std::span<const int> delays,
                            const Schedule& s,
                            std::span<const int> node_group,
                            int group_count) {
  if (group_count < 1) throw Error("peak_usage: group_count must be >= 1");
  std::vector<int> peak(static_cast<std::size_t>(group_count), 0);
  for (int k = 0; k < group_count; ++k) {
    std::vector<bool> sel(g.node_count(), false);
    for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
      sel[id] = node_group[id] == k;
    }
    auto use = occupancy(g, delays, s, sel);
    for (int u : use) peak[static_cast<std::size_t>(k)] =
        std::max(peak[static_cast<std::size_t>(k)], u);
  }
  return peak;
}

}  // namespace rchls::sched

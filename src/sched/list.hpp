// Resource-constrained list scheduling.
//
// Given a fixed number of functional-unit instances per group, schedules
// each operation at the earliest step where (a) its predecessors have
// completed and (b) an instance of its group is free for its whole
// duration (units are not pipelined). Priority among ready operations is
// least ALAP slack first -- the classic list-scheduling heuristic.
//
// Used by the Orailoglu-Karri baseline to find the minimum instance counts
// meeting a latency bound, and by tests as an independent check on the
// density scheduler's resource usage.
#pragma once

#include <span>
#include <vector>

#include "sched/schedule.hpp"

namespace rchls::sched {

/// `node_group[id]`: group key (values must index `instances`);
/// `instances[k]`: number of available units for group k (>= 1).
/// Always succeeds (latency simply grows as needed).
Schedule list_schedule(const dfg::Graph& g, std::span<const int> delays,
                       std::span<const int> node_group,
                       std::span<const int> instances);

/// The smallest per-step concurrency of each group over an unconstrained
/// ASAP schedule -- a lower bound helper for allocation searches.
std::vector<int> peak_usage(const dfg::Graph& g, std::span<const int> delays,
                            const Schedule& s,
                            std::span<const int> node_group,
                            int group_count);

}  // namespace rchls::sched

// The paper's scheduler (Section 6): partition the control steps, compute
// per-type partition densities from the scheduling probabilities of
// not-yet-fixed operations, and place each operation into the least dense
// partition available to it, "distributing the operations evenly among the
// partitions so that the number of resources used in the final design is
// minimized".
//
// Concretely this is a distribution-graph scheduler (a light force-directed
// variant): an unfixed operation u with window [est_u, lst_u] contributes
// probability 1/(lst_u - est_u + 1) to each start step of its window
// (spread over its delay); fixed operations contribute 1. Operations are
// fixed in increasing-mobility order at the start step minimizing the
// summed density of the steps they would occupy.
#pragma once

#include <span>

#include "sched/schedule.hpp"

namespace rchls::sched {

/// `node_group[id]` is an arbitrary small integer giving the operation
/// type partition the densities are computed over (the HLS layer passes
/// the resource class). Throws NoSolutionError if `latency` is below the
/// ASAP minimum for these delays.
Schedule density_schedule(const dfg::Graph& g, std::span<const int> delays,
                          int latency, std::span<const int> node_group);

}  // namespace rchls::sched

// Schedule representation and validation.
//
// A schedule assigns each DFG node a start control-step; a node with delay
// d occupies steps [start, start + d). Schedules returned by every
// scheduler in this module satisfy validate_schedule().
#pragma once

#include <span>
#include <vector>

#include "dfg/graph.hpp"

namespace rchls::sched {

struct Schedule {
  /// Start step per node, indexed by NodeId.
  std::vector<int> start;
  /// Number of control steps used: max(start + delay).
  int latency = 0;
};

/// Throws ValidationError unless starts are >= 0, every dependence
/// u -> v satisfies start[v] >= start[u] + delay[u], and `latency` equals
/// the true maximum completion time.
void validate_schedule(const dfg::Graph& g, std::span<const int> delays,
                       const Schedule& s);

/// Number of nodes of class-selector `want(node)` active at each step.
/// Used to derive resource demand profiles.
std::vector<int> occupancy(const dfg::Graph& g, std::span<const int> delays,
                           const Schedule& s,
                           const std::vector<bool>& selected);

/// Computes latency from starts and delays.
int computed_latency(const dfg::Graph& g, std::span<const int> delays,
                     std::span<const int> start);

}  // namespace rchls::sched

#include "sched/asap_alap.hpp"

#include "dfg/timing.hpp"

namespace rchls::sched {

Schedule asap_schedule(const dfg::Graph& g, std::span<const int> delays) {
  Schedule s;
  s.start = dfg::asap(g, delays);
  s.latency = computed_latency(g, delays, s.start);
  return s;
}

Schedule alap_schedule(const dfg::Graph& g, std::span<const int> delays,
                       int latency) {
  Schedule s;
  s.start = dfg::alap(g, delays, latency);
  s.latency = computed_latency(g, delays, s.start);
  return s;
}

}  // namespace rchls::sched

// ASAP and ALAP schedules as Schedule objects (thin wrappers over
// dfg/timing.hpp, used directly by tests and as building blocks by the
// heuristic schedulers).
#pragma once

#include <span>

#include "sched/schedule.hpp"

namespace rchls::sched {

/// Unconstrained earliest-start schedule; its latency is the minimum
/// feasible latency for these delays.
Schedule asap_schedule(const dfg::Graph& g, std::span<const int> delays);

/// Latest-start schedule for the target latency. Throws NoSolutionError if
/// the latency is infeasible.
Schedule alap_schedule(const dfg::Graph& g, std::span<const int> delays,
                       int latency);

}  // namespace rchls::sched

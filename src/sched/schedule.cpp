#include "sched/schedule.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rchls::sched {

int computed_latency(const dfg::Graph& g, std::span<const int> delays,
                     std::span<const int> start) {
  int latency = 0;
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    latency = std::max(latency, start[id] + delays[id]);
  }
  return latency;
}

void validate_schedule(const dfg::Graph& g, std::span<const int> delays,
                       const Schedule& s) {
  if (s.start.size() != g.node_count() || delays.size() != g.node_count()) {
    throw ValidationError("validate_schedule: size mismatch");
  }
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    if (s.start[id] < 0) {
      throw ValidationError("validate_schedule: negative start for " +
                            g.node(id).name);
    }
    if (delays[id] < 1) {
      throw ValidationError("validate_schedule: delay < 1 for " +
                            g.node(id).name);
    }
    for (dfg::NodeId succ : g.successors(id)) {
      if (s.start[succ] < s.start[id] + delays[id]) {
        throw ValidationError("validate_schedule: dependence violated: " +
                              g.node(id).name + " -> " + g.node(succ).name);
      }
    }
  }
  if (s.latency != computed_latency(g, delays, s.start)) {
    throw ValidationError("validate_schedule: latency field inconsistent");
  }
}

std::vector<int> occupancy(const dfg::Graph& g, std::span<const int> delays,
                           const Schedule& s,
                           const std::vector<bool>& selected) {
  if (selected.size() != g.node_count()) {
    throw Error("occupancy: selector size mismatch");
  }
  std::vector<int> use(static_cast<std::size_t>(s.latency), 0);
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    if (!selected[id]) continue;
    for (int c = s.start[id]; c < s.start[id] + delays[id]; ++c) {
      use[static_cast<std::size_t>(c)]++;
    }
  }
  return use;
}

}  // namespace rchls::sched

#include "sched/density.hpp"

#include <algorithm>
#include <numeric>

#include "dfg/timing.hpp"
#include "util/error.hpp"

namespace rchls::sched {

namespace {

using dfg::Graph;
using dfg::NodeId;

/// Shrinks est/lst windows to respect all currently fixed start times
/// (fixed nodes have est == lst). One forward and one backward pass.
void propagate_windows(const Graph& g, std::span<const int> delays,
                       const std::vector<NodeId>& topo, std::vector<int>& est,
                       std::vector<int>& lst) {
  for (NodeId id : topo) {
    for (NodeId p : g.predecessors(id)) {
      est[id] = std::max(est[id], est[p] + delays[p]);
    }
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    NodeId id = *it;
    for (NodeId s : g.successors(id)) {
      lst[id] = std::min(lst[id], lst[s] - delays[id]);
    }
  }
}

}  // namespace

Schedule density_schedule(const dfg::Graph& g, std::span<const int> delays,
                          int latency, std::span<const int> node_group) {
  if (node_group.size() != g.node_count()) {
    throw Error("density_schedule: node_group size mismatch");
  }
  const std::size_t n = g.node_count();
  std::vector<int> est = dfg::asap(g, delays);
  std::vector<int> lst = dfg::alap(g, delays, latency);  // throws if infeasible
  auto topo = g.topological_order();

  // Fix operations in increasing-mobility order; recompute the order lazily
  // after each placement since windows shrink.
  std::vector<bool> fixed(n, false);
  const std::size_t steps = static_cast<std::size_t>(latency);

  for (std::size_t placed = 0; placed < n; ++placed) {
    // Select the unfixed node with the smallest current mobility.
    NodeId victim = 0;
    bool found = false;
    for (NodeId id = 0; id < n; ++id) {
      if (fixed[id]) continue;
      if (!found) {
        victim = id;
        found = true;
        continue;
      }
      int mv = lst[id] - est[id];
      int mb = lst[victim] - est[victim];
      if (mv < mb || (mv == mb && est[id] < est[victim])) victim = id;
    }
    if (!found) break;

    // Distribution graph of the victim's type over all steps, excluding
    // the victim itself.
    std::vector<double> dg(steps, 0.0);
    for (NodeId u = 0; u < n; ++u) {
      if (u == victim || node_group[u] != node_group[victim]) continue;
      double w = 1.0 / static_cast<double>(lst[u] - est[u] + 1);
      for (int s = est[u]; s <= lst[u]; ++s) {
        for (int c = s; c < s + delays[u]; ++c) {
          dg[static_cast<std::size_t>(c)] += w;
        }
      }
    }

    // Least-dense feasible start step; ties break toward the earliest step
    // (keeps schedules deterministic and close to ASAP).
    int best_t = est[victim];
    double best_cost = 0.0;
    bool first = true;
    for (int t = est[victim]; t <= lst[victim]; ++t) {
      double cost = 0.0;
      for (int c = t; c < t + delays[victim]; ++c) {
        cost += dg[static_cast<std::size_t>(c)];
      }
      if (first || cost < best_cost - 1e-12) {
        best_cost = cost;
        best_t = t;
        first = false;
      }
    }

    est[victim] = lst[victim] = best_t;
    fixed[victim] = true;
    propagate_windows(g, delays, topo, est, lst);
  }

  Schedule s;
  s.start = std::move(est);
  s.latency = computed_latency(g, delays, s.start);
  validate_schedule(g, delays, s);
  return s;
}

}  // namespace rchls::sched

#include "sched/force_directed.hpp"

#include <algorithm>
#include <limits>

#include "dfg/timing.hpp"
#include "util/error.hpp"

namespace rchls::sched {

namespace {

using dfg::Graph;
using dfg::NodeId;

struct Windows {
  std::vector<int> est;
  std::vector<int> lst;
};

void propagate(const Graph& g, std::span<const int> delays,
               const std::vector<NodeId>& topo, Windows& w) {
  for (NodeId id : topo) {
    for (NodeId p : g.predecessors(id)) {
      w.est[id] = std::max(w.est[id], w.est[p] + delays[p]);
    }
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    NodeId id = *it;
    for (NodeId s : g.successors(id)) {
      w.lst[id] = std::min(w.lst[id], w.lst[s] - delays[id]);
    }
  }
}

/// Adds node u's occupancy probability distribution into dg (+sign) or
/// removes it (-sign).
void accumulate(std::vector<double>& dg, const Windows& w,
                std::span<const int> delays, NodeId u, double sign) {
  double p = sign / static_cast<double>(w.lst[u] - w.est[u] + 1);
  for (int s = w.est[u]; s <= w.lst[u]; ++s) {
    for (int c = s; c < s + delays[u]; ++c) {
      dg[static_cast<std::size_t>(c)] += p;
    }
  }
}

/// Force of constraining node u to window [a, b] against distribution
/// graph dg: sum over steps of dg * (p_new - p_old).
double window_force(const std::vector<double>& dg, const Windows& w,
                    std::span<const int> delays, NodeId u, int a, int b) {
  double force = 0.0;
  double p_old = 1.0 / static_cast<double>(w.lst[u] - w.est[u] + 1);
  for (int s = w.est[u]; s <= w.lst[u]; ++s) {
    for (int c = s; c < s + delays[u]; ++c) {
      force -= dg[static_cast<std::size_t>(c)] * p_old;
    }
  }
  double p_new = 1.0 / static_cast<double>(b - a + 1);
  for (int s = a; s <= b; ++s) {
    for (int c = s; c < s + delays[u]; ++c) {
      force += dg[static_cast<std::size_t>(c)] * p_new;
    }
  }
  return force;
}

}  // namespace

Schedule force_directed_schedule(const dfg::Graph& g,
                                 std::span<const int> delays, int latency,
                                 std::span<const int> node_group) {
  const std::size_t n = g.node_count();
  if (node_group.size() != n) {
    throw Error("force_directed_schedule: node_group size mismatch");
  }
  Windows w;
  w.est = dfg::asap(g, delays);
  w.lst = dfg::alap(g, delays, latency);
  auto topo = g.topological_order();

  int group_count = 0;
  for (int k : node_group) group_count = std::max(group_count, k + 1);
  const std::size_t steps = static_cast<std::size_t>(latency);

  // One distribution graph per group, kept incrementally up to date.
  std::vector<std::vector<double>> dg(
      static_cast<std::size_t>(group_count), std::vector<double>(steps, 0.0));
  for (NodeId u = 0; u < n; ++u) {
    accumulate(dg[static_cast<std::size_t>(node_group[u])], w, delays, u,
               +1.0);
  }

  std::vector<bool> fixed(n, false);
  for (std::size_t placed = 0; placed < n; ++placed) {
    double best_force = std::numeric_limits<double>::infinity();
    NodeId best_node = 0;
    int best_t = -1;

    for (NodeId v = 0; v < n; ++v) {
      if (fixed[v]) continue;
      auto& dgv = dg[static_cast<std::size_t>(node_group[v])];
      for (int t = w.est[v]; t <= w.lst[v]; ++t) {
        // Self force of pinning v to t.
        double force = window_force(dgv, w, delays, v, t, t);
        // Predecessor forces: preds must now finish by t.
        for (NodeId p : g.predecessors(v)) {
          if (fixed[p]) continue;
          int b = std::min(w.lst[p], t - delays[p]);
          force += window_force(dg[static_cast<std::size_t>(node_group[p])],
                                w, delays, p, w.est[p], b);
        }
        // Successor forces: succs cannot start before t + d_v.
        for (NodeId s : g.successors(v)) {
          if (fixed[s]) continue;
          int a = std::max(w.est[s], t + delays[v]);
          force += window_force(dg[static_cast<std::size_t>(node_group[s])],
                                w, delays, s, a, w.lst[s]);
        }
        if (force < best_force - 1e-12) {
          best_force = force;
          best_node = v;
          best_t = t;
        }
      }
    }
    if (best_t < 0) throw Error("force_directed_schedule: internal failure");

    // Commit: remove old distribution, pin, re-propagate, re-add
    // distributions of nodes whose windows changed. Simplest correct
    // approach: rebuild all distribution graphs (n is small in HLS DFGs).
    fixed[best_node] = true;
    w.est[best_node] = w.lst[best_node] = best_t;
    propagate(g, delays, topo, w);
    for (auto& graph_dg : dg) {
      std::fill(graph_dg.begin(), graph_dg.end(), 0.0);
    }
    for (NodeId u = 0; u < n; ++u) {
      accumulate(dg[static_cast<std::size_t>(node_group[u])], w, delays, u,
                 +1.0);
    }
  }

  Schedule s;
  s.start = std::move(w.est);
  s.latency = computed_latency(g, delays, s.start);
  validate_schedule(g, delays, s);
  return s;
}

}  // namespace rchls::sched

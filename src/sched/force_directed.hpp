// Classic force-directed scheduling (Paulin & Knight) under a latency
// constraint. Not used by the paper's algorithm (which uses the simpler
// density scheduler in density.hpp), but provided as the natural
// alternative for ablation: the HLS engine can be configured to use it,
// and bench/perf_scheduler compares the two.
#pragma once

#include <span>

#include "sched/schedule.hpp"

namespace rchls::sched {

/// Minimizes expected concurrent resource usage per group under the
/// latency bound by iteratively fixing the (node, step) pair with the
/// lowest total force (self force plus direct predecessor/successor
/// forces). Throws NoSolutionError if `latency` is infeasible.
Schedule force_directed_schedule(const dfg::Graph& g,
                                 std::span<const int> delays, int latency,
                                 std::span<const int> node_group);

}  // namespace rchls::sched

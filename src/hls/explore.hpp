// Design-space exploration sweeps: the machinery behind the paper's
// Figure 8 (reliability vs latency / area curves), Table 2 (bound grids
// comparing [3], ours, and the combined approach) and Figure 9 (grid
// averages).
//
// Grid points are independent, so every sweep evaluates them as one task
// per point on the parallel::ThreadPool (worker count from
// parallel::Config / the CLI's --jobs). Results are collected by index,
// making sweep output bit-identical at any worker count.
#pragma once

#include <optional>
#include <vector>

#include "dfg/graph.hpp"
#include "hls/baseline.hpp"
#include "hls/combined.hpp"
#include "hls/find_design.hpp"

namespace rchls::hls {

/// One point of a single-engine sweep; `reliability` is empty when the
/// engine found no solution at these bounds.
struct SweepPoint {
  int latency_bound = 0;
  double area_bound = 0.0;
  std::optional<double> reliability;
  std::optional<double> area;     ///< achieved
  std::optional<int> latency;     ///< achieved
};

/// find_design at fixed area bound over several latency bounds (Fig 8a).
std::vector<SweepPoint> latency_sweep(const dfg::Graph& g,
                                      const library::ResourceLibrary& lib,
                                      const std::vector<int>& latency_bounds,
                                      double area_bound,
                                      const FindDesignOptions& options = {});

/// find_design at fixed latency bound over several area bounds (Fig 8b).
std::vector<SweepPoint> area_sweep(const dfg::Graph& g,
                                   const library::ResourceLibrary& lib,
                                   int latency_bound,
                                   const std::vector<double>& area_bounds,
                                   const FindDesignOptions& options = {});

/// One Table 2 row: all three engines at one (Ld, Ad) point.
struct ComparisonRow {
  int latency_bound = 0;
  double area_bound = 0.0;
  std::optional<double> baseline;   ///< Ref [3]
  std::optional<double> ours;       ///< reliability-centric
  std::optional<double> combined;   ///< ours + redundancy
  /// 100 * (ours/baseline - 1); empty unless both solved.
  std::optional<double> improvement_ours;
  std::optional<double> improvement_combined;
};

struct GridOptions {
  BaselineOptions baseline;
  CombinedOptions combined;
  FindDesignOptions find_design;
};

/// Full cross product of bounds (Table 2).
std::vector<ComparisonRow> comparison_grid(
    const dfg::Graph& g, const library::ResourceLibrary& lib,
    const std::vector<int>& latency_bounds,
    const std::vector<double>& area_bounds, const GridOptions& options = {});

/// Average reliability per engine over the *common* solved cells -- rows
/// where all three engines found a design (Fig 9 bars). Averaging each
/// engine over its own solved subset would compare apples to oranges: an
/// engine that only solves the easy cells would look better than one that
/// also solves the hard ones.
struct GridAverages {
  double baseline = 0.0;
  double ours = 0.0;
  double combined = 0.0;
  /// Rows where every engine solved (the averaging population).
  int solved_cells = 0;
  /// All rows in the grid.
  int total_cells = 0;
};
GridAverages grid_averages(const std::vector<ComparisonRow>& rows);

/// CSV renderings (header row included; unsolved points are empty cells).
/// Ready for the plotting tool of your choice.
std::string to_csv(const std::vector<SweepPoint>& points);
std::string to_csv(const std::vector<ComparisonRow>& rows);

}  // namespace rchls::hls

#include "hls/find_design.hpp"

#include <algorithm>
#include <optional>

#include "dfg/timing.hpp"
#include "util/error.hpp"

namespace rchls::hls {

namespace {

constexpr double kAreaEps = 1e-9;

using library::ResourceLibrary;
using library::VersionId;

/// Phase 2 (Fig. 6 l. 7-12): shrink the minimum latency below the bound by
/// moving critical-path nodes to faster versions. The paper selects "the
/// node on the critical path with the highest delay"; among the tied
/// candidates we additionally look one step ahead and take the conversion
/// that reduces the overall ASAP latency most -- a node shared by all
/// critical paths (e.g. an accumulation chain) beats a node with parallel
/// siblings, which the delay criterion alone cannot see. The replacement
/// is the most reliable faster version (the reliability-centric pick).
/// Throws NoSolutionError when the critical path has no faster version
/// left.
void reduce_latency(const dfg::Graph& g, const ResourceLibrary& lib,
                    std::vector<VersionId>& versions, int latency_bound,
                    int max_iterations) {
  auto delays = delays_for(g, lib, versions);
  int iterations = 0;
  while (dfg::asap_latency(g, delays) > latency_bound) {
    if (++iterations > max_iterations) {
      throw Error("find_design: latency phase iteration limit");
    }
    auto path = dfg::critical_path(g, delays);

    std::optional<dfg::NodeId> victim;
    VersionId victim_replacement = 0;
    int best_latency = 0;
    double best_reliability = 0.0;
    for (dfg::NodeId id : path) {
      auto faster = lib.faster_versions(versions[id]);
      if (faster.empty()) continue;
      VersionId replacement = faster[0];
      int saved = delays[id];
      delays[id] = lib.version(replacement).delay;
      int latency = dfg::asap_latency(g, delays);
      delays[id] = saved;
      double reliability = lib.version(replacement).reliability;
      bool better = !victim || latency < best_latency ||
                    (latency == best_latency &&
                     reliability > best_reliability);
      if (better) {
        victim = id;
        victim_replacement = replacement;
        best_latency = latency;
        best_reliability = reliability;
      }
    }
    if (!victim) {
      throw NoSolutionError(
          "find_design: cannot meet latency bound " +
          std::to_string(latency_bound) + " (minimum achievable is " +
          std::to_string(dfg::asap_latency(g, delays)) +
          " and no faster versions remain on the critical path)");
    }
    versions[*victim] = victim_replacement;
    delays[*victim] = lib.version(victim_replacement).delay;
  }
}

/// One Fig. 6 l. 23-28 step: move the biggest-area node (and all sharers
/// of its instance) to the most reliable strictly smaller, not-slower
/// version. Returns false when no node has such a version.
bool shrink_step(const dfg::Graph& g, const ResourceLibrary& lib,
                 std::vector<VersionId>& versions, const Design& current) {
  // Nodes ordered by the area of their version, biggest first.
  std::vector<dfg::NodeId> order(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(),
            [&](dfg::NodeId a, dfg::NodeId b) {
              double aa = lib.version(versions[a]).area;
              double ab = lib.version(versions[b]).area;
              if (aa != ab) return aa > ab;
              return a < b;
            });

  for (dfg::NodeId victim : order) {
    auto smaller = lib.smaller_versions(versions[victim]);
    if (smaller.empty()) continue;
    VersionId replacement = smaller[0];
    // "...and to all other nodes that are sharing the same resource."
    const auto& sharers =
        current.binding.instances[current.binding.instance_of[victim]].ops;
    for (dfg::NodeId s : sharers) versions[s] = replacement;
    versions[victim] = replacement;
    return true;
  }
  return false;
}

/// Consolidation fallback: bulk-collapse one version into another when the
/// per-node shrink loop is stuck. Tries every (used version -> other
/// version of the class) move and assembles each candidate. Preference
/// order: any candidate that already meets the area bound (highest
/// reliability among those), otherwise the smallest-area candidate that
/// still improves on the current area (ties: higher reliability). Returns
/// true if a move was applied.
bool consolidate_step(const dfg::Graph& g, const ResourceLibrary& lib,
                      std::vector<VersionId>& versions, int target_latency,
                      double area_bound, SchedulerKind scheduler,
                      Design& current) {
  std::vector<bool> used(lib.size(), false);
  for (VersionId v : versions) used[v] = true;

  std::optional<Design> best;
  std::vector<VersionId> best_versions;
  auto consider = [&](Design d, std::vector<VersionId> candidate) {
    bool d_ok = d.area <= area_bound + kAreaEps;
    if (!d_ok && d.area >= current.area - kAreaEps) return;
    bool better;
    if (!best) {
      better = true;
    } else {
      bool best_ok = best->area <= area_bound + kAreaEps;
      if (d_ok != best_ok) {
        better = d_ok;
      } else if (d_ok) {
        better = d.reliability > best->reliability;
      } else {
        better = d.area < best->area - kAreaEps ||
                 (d.area < best->area + kAreaEps &&
                  d.reliability > best->reliability);
      }
    }
    if (better) {
      best = std::move(d);
      best_versions = std::move(candidate);
    }
  };

  for (VersionId from = 0; from < lib.size(); ++from) {
    if (!used[from]) continue;
    for (VersionId to = 0; to < lib.size(); ++to) {
      if (to == from || lib.version(to).cls != lib.version(from).cls) {
        continue;
      }
      std::vector<VersionId> candidate = versions;
      for (auto& v : candidate) {
        if (v == from) v = to;
      }
      auto delays = delays_for(g, lib, candidate);
      if (dfg::asap_latency(g, delays) > target_latency) continue;
      Design d = assemble(g, lib, candidate, target_latency, scheduler);
      consider(std::move(d), std::move(candidate));
    }
  }
  if (!best) return false;
  versions = std::move(best_versions);
  current = std::move(*best);
  return true;
}

/// Polish: greedy single-node upgrades to more reliable versions while
/// both bounds keep holding. Candidates are assembled at the latency bound
/// (maximum sharing) so an upgrade is never rejected for transient
/// scheduling reasons.
void polish(const dfg::Graph& g, const ResourceLibrary& lib,
            std::vector<VersionId>& versions, int latency_bound,
            double area_bound, SchedulerKind scheduler, Design& current,
            int max_iterations) {
  int iterations = 0;
  bool improved = true;
  while (improved) {
    improved = false;
    std::optional<Design> best;
    std::vector<VersionId> best_versions;
    for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
      double cur_r = lib.version(versions[id]).reliability;
      for (VersionId v = 0; v < lib.size(); ++v) {
        if (lib.version(v).cls != lib.version(versions[id]).cls) continue;
        if (lib.version(v).reliability <= cur_r) continue;
        if (++iterations > max_iterations) return;
        std::vector<VersionId> candidate = versions;
        candidate[id] = v;
        auto delays = delays_for(g, lib, candidate);
        if (dfg::asap_latency(g, delays) > latency_bound) continue;
        Design d = assemble(g, lib, candidate, latency_bound, scheduler);
        if (d.area > area_bound + kAreaEps) continue;
        double bar = best ? best->reliability : current.reliability;
        if (d.reliability > bar) {
          best = std::move(d);
          best_versions = std::move(candidate);
        }
      }
    }
    if (best) {
      versions = std::move(best_versions);
      current = std::move(*best);
      improved = true;
    }
  }
}

}  // namespace

namespace {

Design find_design_once(const dfg::Graph& g, const ResourceLibrary& lib,
                        int latency_bound, double area_bound,
                        const FindDesignOptions& options) {
  if (g.node_count() == 0) throw Error("find_design: empty graph");
  if (latency_bound < 1) throw Error("find_design: latency bound must be >= 1");
  if (!(area_bound > 0.0)) throw Error("find_design: area bound must be > 0");
  lib.validate();

  // Fig. 6 l. 3: the most reliable version for every node.
  std::vector<VersionId> versions(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    versions[id] = lib.most_reliable(library::class_of(g.node(id).op));
  }

  // Fig. 6 l. 7-12: meet the latency bound.
  reduce_latency(g, lib, versions, latency_bound, options.max_iterations);

  // Fig. 6 l. 4-5 / 11: schedule at the ASAP length.
  int target_latency =
      dfg::asap_latency(g, delays_for(g, lib, versions));
  Design d = assemble(g, lib, versions, target_latency, options.scheduler);

  int iterations = 0;
  while (d.area > area_bound + kAreaEps) {
    if (++iterations > options.max_iterations) {
      throw Error("find_design: area phase iteration limit");
    }

    // Fig. 6 l. 15-21: exploit latency slack for sharing.
    if (target_latency < latency_bound) {
      ++target_latency;
      d = assemble(g, lib, versions, target_latency, options.scheduler);
      continue;
    }

    // Fig. 6 l. 23-28: demote the biggest-area node and its sharers.
    if (shrink_step(g, lib, versions, d)) {
      d = assemble(g, lib, versions, target_latency, options.scheduler);
      continue;
    }

    // Stuck: optional bulk consolidation.
    if (options.enable_consolidation &&
        consolidate_step(g, lib, versions, target_latency, area_bound,
                         options.scheduler, d)) {
      continue;
    }

    throw NoSolutionError(
        "find_design: cannot meet area bound " + std::to_string(area_bound) +
        " (best achievable with the current assignment is " +
        std::to_string(d.area) + ")");
  }

  if (options.enable_polish) {
    polish(g, lib, versions, latency_bound, area_bound, options.scheduler, d,
           options.max_iterations);
  }

  validate_design(d, g, lib);
  return d;
}

}  // namespace

Design find_design(const dfg::Graph& g, const ResourceLibrary& lib,
                   int latency_bound, double area_bound,
                   const FindDesignOptions& options) {
  std::optional<Design> best;
  std::string first_failure;
  for (int k = 0; k <= options.explore_tighter_latency; ++k) {
    int bound = latency_bound - k;
    if (bound < 1) break;
    try {
      Design d = find_design_once(g, lib, bound, area_bound, options);
      if (!best || d.reliability > best->reliability ||
          (d.reliability == best->reliability && d.area < best->area)) {
        best = std::move(d);
      }
    } catch (const NoSolutionError& e) {
      // A run at a tighter bound can still succeed (the greedy trajectory
      // is not monotone in the bound), so keep trying.
      if (first_failure.empty()) first_failure = e.what();
    }
  }
  if (!best) {
    throw NoSolutionError(first_failure.empty()
                              ? "find_design: no solution within bounds"
                              : first_failure);
  }
  return *best;
}

}  // namespace rchls::hls

#include "hls/objectives.hpp"

#include "dfg/timing.hpp"
#include "util/error.hpp"

namespace rchls::hls {

namespace {

void check_target(double min_reliability, const char* who) {
  if (!(min_reliability > 0.0) || !(min_reliability <= 1.0)) {
    throw Error(std::string(who) + ": min_reliability must lie in (0, 1]");
  }
}

}  // namespace

Design minimize_area(const dfg::Graph& g, const library::ResourceLibrary& lib,
                     int latency_bound, double min_reliability,
                     const ObjectiveOptions& options) {
  check_target(min_reliability, "minimize_area");
  if (!(options.area_step > 0.0)) {
    throw Error("minimize_area: area_step must be > 0");
  }
  // find_design maximizes reliability at a given area bound, and its result
  // is (weakly) improved by loosening the bound, so the first area at which
  // the target is met is the minimal one at this granularity.
  for (double ad = options.area_step; ad <= options.max_area + 1e-9;
       ad += options.area_step) {
    try {
      Design d = find_design(g, lib, latency_bound, ad, options.find_design);
      if (d.reliability >= min_reliability) return d;
    } catch (const NoSolutionError&) {
      // tighter areas are infeasible; keep growing
    }
  }
  throw NoSolutionError("minimize_area: reliability target unreachable "
                        "within max_area");
}

Design minimize_latency(const dfg::Graph& g,
                        const library::ResourceLibrary& lib,
                        double area_bound, double min_reliability,
                        const ObjectiveOptions& options) {
  check_target(min_reliability, "minimize_latency");

  // Lower bound: the ASAP latency with every node on its fastest version.
  std::vector<library::VersionId> fastest(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    fastest[id] = lib.fastest(library::class_of(g.node(id).op));
  }
  int ld = dfg::asap_latency(g, delays_for(g, lib, fastest));

  for (; ld <= options.max_latency; ++ld) {
    try {
      Design d = find_design(g, lib, ld, area_bound, options.find_design);
      if (d.reliability >= min_reliability) return d;
    } catch (const NoSolutionError&) {
    }
  }
  throw NoSolutionError("minimize_latency: reliability target unreachable "
                        "within max_latency");
}

}  // namespace rchls::hls

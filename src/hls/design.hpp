// The result type of every synthesis engine: a fully bound data path with
// per-operation version assignment, schedule, binding, optional modular
// redundancy, and its evaluated latency / area / reliability.
#pragma once

#include <span>
#include <vector>

#include "bind/binding.hpp"
#include "library/resource.hpp"
#include "sched/schedule.hpp"

namespace rchls::hls {

/// Which latency-constrained scheduler the engines use.
enum class SchedulerKind {
  kDensity,        ///< the paper's partition-density scheduler
  kForceDirected,  ///< classic FDS (ablation alternative)
};

struct Design {
  /// Version executing each operation, indexed by NodeId.
  std::vector<library::VersionId> version_of;
  sched::Schedule schedule;
  bind::Binding binding;
  /// Modular-redundancy copies per binding instance (all 1 when the design
  /// uses no redundancy). copies[i] is 1, 2 (duplex+rollback) or odd >= 3
  /// (majority NMR).
  std::vector<int> copies;

  int latency = 0;        ///< schedule latency in cycles
  double area = 0.0;      ///< sum over instances of version area * copies
  double reliability = 0; ///< product over operations (Section 5 model)
};

/// Per-node delay vector induced by a version assignment.
std::vector<int> delays_for(const dfg::Graph& g,
                            const library::ResourceLibrary& lib,
                            std::span<const library::VersionId> version_of);

/// Resource-class group key per node (0 = adder, 1 = multiplier), the
/// grouping the schedulers' distribution graphs partition over.
std::vector<int> class_groups(const dfg::Graph& g);

/// Schedules (at target latency) and binds the given version assignment,
/// producing a redundancy-free Design with all metrics evaluated.
/// Throws NoSolutionError if `latency` is infeasible for the assignment.
Design assemble(const dfg::Graph& g, const library::ResourceLibrary& lib,
                std::vector<library::VersionId> version_of, int latency,
                SchedulerKind scheduler = SchedulerKind::kDensity);

/// Recomputes latency, area and reliability from the design's fields
/// (call after changing `copies`).
void evaluate(Design& d, const dfg::Graph& g,
              const library::ResourceLibrary& lib);

/// Full structural verification of a design against a graph/library:
/// schedule validity, binding validity, copies sanity, and metric
/// consistency. Throws ValidationError on any violation. Used by tests and
/// assertions inside the engines.
void validate_design(const Design& d, const dfg::Graph& g,
                     const library::ResourceLibrary& lib);

}  // namespace rchls::hls

// Exhaustive version-assignment search for small DFGs. Serves as the
// test oracle for find_design: enumerates every per-node version
// assignment, evaluates each with the same scheduler/binder, and returns
// the most reliable feasible design. Exponential in node count -- guarded
// by a state-space cap.
#pragma once

#include "dfg/graph.hpp"
#include "hls/design.hpp"
#include "library/resource.hpp"

namespace rchls::hls {

struct ExhaustiveOptions {
  SchedulerKind scheduler = SchedulerKind::kDensity;
  /// Abort (throw Error) if the assignment space exceeds this.
  std::uint64_t max_assignments = 2'000'000;
};

/// Most reliable redundancy-free design over all version assignments
/// meeting both bounds; throws NoSolutionError if none does. Ties prefer
/// smaller area, then smaller latency.
Design exhaustive_find_design(const dfg::Graph& g,
                              const library::ResourceLibrary& lib,
                              int latency_bound, double area_bound,
                              const ExhaustiveOptions& options = {});

}  // namespace rchls::hls

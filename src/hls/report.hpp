// Human-readable rendering of designs: a schedule table shaped like the
// paper's Figures 5 and 7 (steps x functional units) plus a metrics
// summary. Used by the reproduction benches and the examples.
#pragma once

#include <string>

#include "dfg/graph.hpp"
#include "hls/design.hpp"
#include "library/resource.hpp"

namespace rchls::hls {

/// Step-by-step table: one column per functional-unit instance, one row
/// per control step; cells carry the operation occupying that unit.
std::string schedule_table(const Design& d, const dfg::Graph& g,
                           const library::ResourceLibrary& lib);

/// Multi-line summary: latency/area/reliability, instance inventory with
/// copy counts, and version histogram over operations.
std::string design_summary(const Design& d, const dfg::Graph& g,
                           const library::ResourceLibrary& lib);

}  // namespace rchls::hls

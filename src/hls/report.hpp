// Human-readable rendering of designs: a schedule table shaped like the
// paper's Figures 5 and 7 (steps x functional units) plus a metrics
// summary. Used by the reproduction benches, the examples, the CLI's
// `synth` command and the scenario table reports (scenario/report.hpp;
// the machine-readable JSON/CSV forms live there).
//
// Both writers are pure functions of (design, graph, library): output is
// deterministic, ordered by instance id / version name, and contains
// nothing time- or host-dependent. They assume `d` is consistent with
// `g` and `lib` (as produced by the synthesis engines and checked by
// validate_design); indexing a design against the wrong graph or
// library throws rchls::Error from the library accessors.
#pragma once

#include <string>

#include "dfg/graph.hpp"
#include "hls/design.hpp"
#include "library/resource.hpp"

namespace rchls::hls {

/// Step-by-step table: one column per functional-unit instance, one row
/// per control step (latency rows total, in cycles; a node with delay d
/// occupies d consecutive rows); cells carry the name of the operation
/// occupying that unit, "-" when idle. Column headers are
/// "<version>#<instance>" plus a "xN" copy-count suffix for redundant
/// instances.
std::string schedule_table(const Design& d, const dfg::Graph& g,
                           const library::ResourceLibrary& lib);

/// Multi-line summary: latency (cycles) / area (normalized units,
/// ripple-carry adder == 1) / reliability (mission reliability, fixed
/// 5-decimal rendering), instance inventory with copy counts, and the
/// operations-per-version histogram in version-name order.
std::string design_summary(const Design& d, const dfg::Graph& g,
                           const library::ResourceLibrary& lib);

}  // namespace rchls::hls

#include "hls/baseline.hpp"

#include <algorithm>

#include "bind/left_edge.hpp"
#include "dfg/timing.hpp"
#include "sched/list.hpp"
#include "util/error.hpp"

namespace rchls::hls {

namespace {

constexpr double kAreaEps = 1e-9;

}  // namespace

Design minimal_allocation_design(const dfg::Graph& g,
                                 const library::ResourceLibrary& lib,
                                 library::VersionId adder_version,
                                 library::VersionId mult_version,
                                 int latency_bound) {
  const std::size_t n = g.node_count();
  if (n == 0) throw Error("minimal_allocation_design: empty graph");

  std::vector<library::VersionId> version_of(n);
  auto groups = class_groups(g);
  std::size_t adds = 0;
  std::size_t muls = 0;
  for (dfg::NodeId id = 0; id < n; ++id) {
    if (groups[id] == 0) {
      version_of[id] = adder_version;
      ++adds;
    } else {
      version_of[id] = mult_version;
      ++muls;
    }
  }
  auto delays = delays_for(g, lib, version_of);
  if (dfg::asap_latency(g, delays) > latency_bound) {
    throw NoSolutionError(
        "minimal_allocation_design: version pair cannot meet latency bound");
  }

  double adder_area = lib.version(adder_version).area;
  double mult_area = lib.version(mult_version).area;

  // Search instance-count space; list scheduling decides feasibility.
  std::optional<sched::Schedule> best_schedule;
  double best_area = 0.0;
  int na_max = std::max<std::size_t>(adds, 1);
  int nm_max = std::max<std::size_t>(muls, 1);
  for (int na = 1; na <= na_max; ++na) {
    for (int nm = 1; nm <= nm_max; ++nm) {
      double area = (adds > 0 ? adder_area * na : 0.0) +
                    (muls > 0 ? mult_area * nm : 0.0);
      if (best_schedule && area >= best_area - kAreaEps) continue;
      std::vector<int> instances{na, nm};
      auto s = sched::list_schedule(g, delays, groups, instances);
      if (s.latency > latency_bound) continue;
      best_schedule = std::move(s);
      best_area = area;
    }
  }
  if (!best_schedule) {
    throw NoSolutionError(
        "minimal_allocation_design: no allocation meets the latency bound");
  }

  Design d;
  d.version_of = std::move(version_of);
  d.schedule = std::move(*best_schedule);
  d.binding = bind::left_edge_bind(g, lib, d.version_of, d.schedule);
  d.copies.assign(d.binding.instances.size(), 1);
  evaluate(d, g, lib);
  return d;
}

Design nmr_baseline(const dfg::Graph& g, const library::ResourceLibrary& lib,
                    int latency_bound, double area_bound,
                    const BaselineOptions& options) {
  if (latency_bound < 1) throw Error("nmr_baseline: latency bound >= 1");
  if (!(area_bound > 0.0)) throw Error("nmr_baseline: area bound > 0");

  std::vector<std::pair<library::VersionId, library::VersionId>> combos;
  if (options.fixed_versions) {
    combos.push_back(*options.fixed_versions);
  } else {
    for (library::VersionId av :
         lib.versions_of(library::ResourceClass::kAdder)) {
      for (library::VersionId mv :
           lib.versions_of(library::ResourceClass::kMultiplier)) {
        combos.emplace_back(av, mv);
      }
    }
  }

  std::optional<Design> best;
  for (auto [av, mv] : combos) {
    Design d;
    try {
      d = minimal_allocation_design(g, lib, av, mv, latency_bound);
    } catch (const NoSolutionError&) {
      continue;
    }
    if (d.area > area_bound + kAreaEps) continue;
    apply_redundancy(d, g, lib, area_bound, options.redundancy);
    if (!best || d.reliability > best->reliability ||
        (d.reliability == best->reliability && d.area < best->area)) {
      best = std::move(d);
    }
  }
  if (!best) {
    throw NoSolutionError("nmr_baseline: no version combo meets the bounds");
  }
  validate_design(*best, g, lib);
  return *best;
}

}  // namespace rchls::hls

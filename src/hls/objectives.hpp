// Alternate optimization objectives -- the paper's stated future work
// (Section 8): "optimizing area under reliability and performance
// constraints, or optimizing performance under reliability and area
// constraints." Both reduce to monotone searches over the corresponding
// bound driving find_design.
#pragma once

#include "dfg/graph.hpp"
#include "hls/find_design.hpp"

namespace rchls::hls {

struct ObjectiveOptions {
  FindDesignOptions find_design;
  /// Area search granularity (the paper's library is integral; finer
  /// libraries can lower this).
  double area_step = 1.0;
  /// Upper limits for the searches (guards against unsatisfiable
  /// reliability targets).
  double max_area = 1024.0;
  int max_latency = 4096;
};

/// Smallest-area design with reliability >= min_reliability and latency
/// <= latency_bound. Throws NoSolutionError if none exists within
/// max_area.
Design minimize_area(const dfg::Graph& g, const library::ResourceLibrary& lib,
                     int latency_bound, double min_reliability,
                     const ObjectiveOptions& options = {});

/// Smallest-latency design with reliability >= min_reliability and area
/// <= area_bound. Throws NoSolutionError if none exists within
/// max_latency.
Design minimize_latency(const dfg::Graph& g,
                        const library::ResourceLibrary& lib,
                        double area_bound, double min_reliability,
                        const ObjectiveOptions& options = {});

}  // namespace rchls::hls

#include "hls/exhaustive.hpp"

#include <optional>

#include "dfg/timing.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partitioner.hpp"
#include "util/error.hpp"

namespace rchls::hls {

namespace {
constexpr double kAreaEps = 1e-9;

/// Assignments enumerated per task. The chunk layout is a function of the
/// assignment space ONLY -- never of the worker count -- because the
/// reliability-upper-bound pruning below is tie-sensitive: a chunk's local
/// best decides which equal-reliability assignments get evaluated, so a
/// worker-count-dependent layout would make results vary with --jobs.
constexpr std::uint64_t kAssignmentsPerChunk = 4096;
}  // namespace

Design exhaustive_find_design(const dfg::Graph& g,
                              const library::ResourceLibrary& lib,
                              int latency_bound, double area_bound,
                              const ExhaustiveOptions& options) {
  const std::size_t n = g.node_count();
  if (n == 0) throw Error("exhaustive_find_design: empty graph");

  // Per-node candidate version lists.
  std::vector<std::vector<library::VersionId>> choices(n);
  std::uint64_t space = 1;
  for (dfg::NodeId id = 0; id < n; ++id) {
    choices[id] = lib.versions_of(library::class_of(g.node(id).op));
    space *= choices[id].size();
    if (space > options.max_assignments) {
      throw Error("exhaustive_find_design: assignment space too large");
    }
  }

  // Ties prefer smaller area, then smaller latency, then enumeration order.
  auto better = [](const Design& d, const Design& best) {
    return d.reliability > best.reliability ||
           (d.reliability == best.reliability &&
            (d.area < best.area - kAreaEps ||
             (d.area < best.area + kAreaEps && d.latency < best.latency)));
  };

  // Each range enumerates its slice of the mixed-radix assignment space
  // independently and keeps a range-local best; the results are then merged
  // in range order with the same predicate. With the fixed chunk layout the
  // winner is a pure function of the inputs, i.e. identical at every worker
  // count. The pruning is range-local, though, so on exact reliability ties
  // a smaller-area assignment that a single global scan would have pruned
  // away can now be evaluated and win the area tie-break -- tie resolution
  // follows `better` exactly rather than scan order.
  auto ranges = parallel::partition_range(
      space, static_cast<std::size_t>((space + kAssignmentsPerChunk - 1) /
                                      kAssignmentsPerChunk),
      kAssignmentsPerChunk);
  std::vector<std::optional<Design>> range_best(ranges.size());

  parallel::parallel_for(ranges.size(), [&](std::size_t ri) {
    const parallel::IndexRange& range = ranges[ri];

    // Seed the mixed-radix counter at the range's first assignment
    // (digit 0 is least significant, matching the advance loop below).
    std::vector<std::size_t> index(n, 0);
    std::uint64_t rest = range.begin;
    for (std::size_t pos = 0; pos < n; ++pos) {
      index[pos] = static_cast<std::size_t>(rest % choices[pos].size());
      rest /= choices[pos].size();
    }

    std::vector<library::VersionId> versions(n);
    std::optional<Design> best;

    for (std::uint64_t step = range.begin; step < range.end; ++step) {
      for (dfg::NodeId id = 0; id < n; ++id) {
        versions[id] = choices[id][index[id]];
      }

      // Cheap pruning before scheduling: reliability upper bound and ASAP.
      double r_bound = 1.0;
      for (dfg::NodeId id = 0; id < n; ++id) {
        r_bound *= lib.version(versions[id]).reliability;
      }
      bool worth_trying = !best || r_bound > best->reliability;
      if (worth_trying) {
        auto delays = delays_for(g, lib, versions);
        if (dfg::asap_latency(g, delays) <= latency_bound) {
          // Evaluate at every feasible target latency; larger latency can
          // shrink area via sharing.
          for (int latency = dfg::asap_latency(g, delays);
               latency <= latency_bound; ++latency) {
            Design d = assemble(g, lib, versions, latency, options.scheduler);
            if (d.area > area_bound + kAreaEps) continue;
            if (!best || better(d, *best)) best = std::move(d);
            break;  // first feasible latency is enough for this assignment
          }
        }
      }

      // Advance the mixed-radix counter.
      for (std::size_t pos = 0; pos < n; ++pos) {
        if (++index[pos] < choices[pos].size()) break;
        index[pos] = 0;
      }
    }
    range_best[ri] = std::move(best);
  });

  std::optional<Design> best;
  for (auto& candidate : range_best) {
    if (!candidate) continue;
    if (!best || better(*candidate, *best)) best = std::move(candidate);
  }

  if (!best) {
    throw NoSolutionError("exhaustive_find_design: no assignment meets the "
                          "bounds");
  }
  return *best;
}

}  // namespace rchls::hls

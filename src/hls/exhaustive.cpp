#include "hls/exhaustive.hpp"

#include <optional>

#include "dfg/timing.hpp"
#include "util/error.hpp"

namespace rchls::hls {

namespace {
constexpr double kAreaEps = 1e-9;
}

Design exhaustive_find_design(const dfg::Graph& g,
                              const library::ResourceLibrary& lib,
                              int latency_bound, double area_bound,
                              const ExhaustiveOptions& options) {
  const std::size_t n = g.node_count();
  if (n == 0) throw Error("exhaustive_find_design: empty graph");

  // Per-node candidate version lists.
  std::vector<std::vector<library::VersionId>> choices(n);
  std::uint64_t space = 1;
  for (dfg::NodeId id = 0; id < n; ++id) {
    choices[id] = lib.versions_of(library::class_of(g.node(id).op));
    space *= choices[id].size();
    if (space > options.max_assignments) {
      throw Error("exhaustive_find_design: assignment space too large");
    }
  }

  std::vector<std::size_t> index(n, 0);
  std::vector<library::VersionId> versions(n);
  std::optional<Design> best;

  for (std::uint64_t step = 0; step < space; ++step) {
    for (dfg::NodeId id = 0; id < n; ++id) versions[id] = choices[id][index[id]];

    // Cheap pruning before scheduling: reliability upper bound and ASAP.
    double r_bound = 1.0;
    for (dfg::NodeId id = 0; id < n; ++id) {
      r_bound *= lib.version(versions[id]).reliability;
    }
    bool worth_trying = !best || r_bound > best->reliability;
    if (worth_trying) {
      auto delays = delays_for(g, lib, versions);
      if (dfg::asap_latency(g, delays) <= latency_bound) {
        // Evaluate at every feasible target latency; larger latency can
        // shrink area via sharing.
        for (int latency = dfg::asap_latency(g, delays);
             latency <= latency_bound; ++latency) {
          Design d = assemble(g, lib, versions, latency, options.scheduler);
          if (d.area > area_bound + kAreaEps) continue;
          bool better =
              !best || d.reliability > best->reliability ||
              (d.reliability == best->reliability &&
               (d.area < best->area - kAreaEps ||
                (d.area < best->area + kAreaEps && d.latency < best->latency)));
          if (better) best = std::move(d);
          break;  // first feasible latency is enough for this assignment
        }
      }
    }

    // Advance the mixed-radix counter.
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (++index[pos] < choices[pos].size()) break;
      index[pos] = 0;
    }
  }

  if (!best) {
    throw NoSolutionError("exhaustive_find_design: no assignment meets the "
                          "bounds");
  }
  return *best;
}

}  // namespace rchls::hls

// The paper's core contribution (Fig. 6): reliability-centric resource
// allocation, binding and scheduling under latency and area bounds.
//
// Outline (line numbers refer to the paper's Figure 6):
//   1. Allocate the most reliable version to every node (l. 3-6) and
//      schedule at the ASAP length.
//   2. While the latency exceeds Ld, pick the slowest node on the critical
//      path and move it to a faster (typically less reliable) version
//      (l. 7-12).
//   3. If the area exceeds Ad, first exploit any remaining latency slack
//      for more resource sharing (l. 15-21), then repeatedly move the
//      biggest-area node -- together with all nodes sharing its instance --
//      to a smaller, not-slower version (l. 23-28).
//   4. Return the design, or "no solution" when the bounds are
//      unsatisfiable (l. 29).
//
// Two documented strengthenings (both optional, see FindDesignOptions):
//   * consolidation: when step 3 is stuck, try bulk version collapses
//     (move ALL nodes of one version to another version) and keep the move
//     that lowers the assembled area most. This realizes the paper's
//     "Update resource sharing" (l. 13) in the stuck case, where the
//     letter-of-Fig.6 algorithm declares failure on instances a trivially
//     feasible uniform design exists for.
//   * polish: a final hill-climbing pass upgrading single operations to
//     more reliable versions while both bounds continue to hold.
#pragma once

#include "dfg/graph.hpp"
#include "hls/design.hpp"
#include "library/resource.hpp"

namespace rchls::hls {

struct FindDesignOptions {
  SchedulerKind scheduler = SchedulerKind::kDensity;
  /// Bulk version-collapse fallback when the Fig. 6 area loop is stuck.
  bool enable_consolidation = true;
  /// Post-pass single-node reliability upgrades (off = paper-faithful).
  bool enable_polish = false;
  /// Additionally run the pipeline at latency bounds Ld-1 .. Ld-k and keep
  /// the most reliable result (any design valid at a tighter bound is
  /// valid at Ld). The greedy trajectory is not monotone in the latency
  /// bound, so a small exploration smooths the reliability-vs-latency
  /// curve (paper Fig. 8(a)). 0 = paper-faithful single run.
  int explore_tighter_latency = 0;
  /// Safety cap on total phase iterations.
  int max_iterations = 100000;
};

/// Returns the most reliable design meeting both bounds that the heuristic
/// finds; throws NoSolutionError when it proves unable to meet them.
Design find_design(const dfg::Graph& g, const library::ResourceLibrary& lib,
                   int latency_bound, double area_bound,
                   const FindDesignOptions& options = {});

}  // namespace rchls::hls

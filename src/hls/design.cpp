#include "hls/design.hpp"

#include <algorithm>
#include <cmath>

#include "bind/left_edge.hpp"
#include "reliability/algebra.hpp"
#include "sched/density.hpp"
#include "sched/force_directed.hpp"
#include "sched/list.hpp"
#include "util/error.hpp"

namespace rchls::hls {

std::vector<int> delays_for(const dfg::Graph& g,
                            const library::ResourceLibrary& lib,
                            std::span<const library::VersionId> version_of) {
  if (version_of.size() != g.node_count()) {
    throw Error("delays_for: assignment size mismatch");
  }
  std::vector<int> delays(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    delays[id] = lib.version(version_of[id]).delay;
  }
  return delays;
}

std::vector<int> class_groups(const dfg::Graph& g) {
  std::vector<int> group(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    group[id] =
        library::class_of(g.node(id).op) == library::ResourceClass::kAdder
            ? 0
            : 1;
  }
  return group;
}

Design assemble(const dfg::Graph& g, const library::ResourceLibrary& lib,
                std::vector<library::VersionId> version_of, int latency,
                SchedulerKind scheduler) {
  Design d;
  d.version_of = std::move(version_of);
  auto delays = delays_for(g, lib, d.version_of);
  auto groups = class_groups(g);

  d.schedule = scheduler == SchedulerKind::kDensity
                   ? sched::density_schedule(g, delays, latency, groups)
                   : sched::force_directed_schedule(g, delays, latency,
                                                    groups);
  d.binding = bind::left_edge_bind(g, lib, d.version_of, d.schedule);

  // Sharing-improvement pass (the paper's "Update resource sharing"): the
  // latency-constrained scheduler can leave avoidable concurrency peaks.
  // Try shaving one instance off a version at a time with a resource-
  // constrained list schedule; keep every reduction that still meets the
  // latency target. Versions are tried biggest-area first.
  std::vector<int> version_group(g.node_count());
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    version_group[id] = static_cast<int>(d.version_of[id]);
  }
  auto counts = bind::instance_histogram(d.binding, lib);
  std::vector<library::VersionId> by_area;
  for (library::VersionId v = 0; v < lib.size(); ++v) by_area.push_back(v);
  std::sort(by_area.begin(), by_area.end(),
            [&lib](library::VersionId a, library::VersionId b) {
              return lib.version(a).area > lib.version(b).area;
            });

  bool improved = true;
  while (improved) {
    improved = false;
    for (library::VersionId v : by_area) {
      if (counts[v] <= 1) continue;
      std::vector<int> trial = counts;
      trial[v] -= 1;
      // list_schedule needs a positive count for every group key.
      std::vector<int> instances(lib.size());
      for (library::VersionId k = 0; k < lib.size(); ++k) {
        instances[k] = std::max(trial[k], 1);
      }
      sched::Schedule s =
          sched::list_schedule(g, delays, version_group, instances);
      if (s.latency > latency) continue;
      d.schedule = std::move(s);
      d.binding = bind::left_edge_bind(g, lib, d.version_of, d.schedule);
      counts = bind::instance_histogram(d.binding, lib);
      improved = true;
      break;
    }
  }

  d.copies.assign(d.binding.instances.size(), 1);
  evaluate(d, g, lib);
  return d;
}

void evaluate(Design& d, const dfg::Graph& g,
              const library::ResourceLibrary& lib) {
  if (d.copies.size() != d.binding.instances.size()) {
    throw Error("evaluate: copies/instances size mismatch");
  }
  d.latency = d.schedule.latency;

  d.area = 0.0;
  for (std::size_t i = 0; i < d.binding.instances.size(); ++i) {
    d.area += lib.version(d.binding.instances[i].version).area *
              static_cast<double>(d.copies[i]);
  }

  d.reliability = 1.0;
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    double r = lib.version(d.version_of[id]).reliability;
    int copies = d.copies[d.binding.instance_of[id]];
    d.reliability *= reliability::modular_redundancy(r, copies);
  }
}

void validate_design(const Design& d, const dfg::Graph& g,
                     const library::ResourceLibrary& lib) {
  auto delays = delays_for(g, lib, d.version_of);
  sched::validate_schedule(g, delays, d.schedule);
  bind::validate_binding(g, lib, d.version_of, d.schedule, d.binding);
  if (d.copies.size() != d.binding.instances.size()) {
    throw ValidationError("validate_design: copies size mismatch");
  }
  for (int c : d.copies) {
    if (c < 1 || (c > 2 && c % 2 == 0)) {
      throw ValidationError("validate_design: invalid copy count");
    }
  }

  Design check = d;
  evaluate(check, g, lib);
  auto close = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a),
                                               std::abs(b)});
  };
  if (check.latency != d.latency || !close(check.area, d.area) ||
      !close(check.reliability, d.reliability)) {
    throw ValidationError("validate_design: stale metrics");
  }
}

}  // namespace rchls::hls

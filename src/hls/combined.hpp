// The paper's combined approach (Section 7, Table 2 column 6): run the
// reliability-centric find_design first, then spend any remaining area on
// modular redundancy, duplicating instances with the same versions the
// reliability-centric pass selected.
#pragma once

#include "dfg/graph.hpp"
#include "hls/find_design.hpp"
#include "hls/redundancy.hpp"

namespace rchls::hls {

struct CombinedOptions {
  FindDesignOptions find_design;
  RedundancyOptions redundancy;
  /// Granularity of the budget split search (see below). Non-positive
  /// disables the search (single pass at the full area bound).
  double budget_step = 1.0;
  /// Maximum number of reduced budgets to try.
  int max_budget_splits = 16;
};

/// find_design + apply_redundancy under the same bounds.
///
/// The area budget is split between version quality (the find_design pass)
/// and replication (the redundancy pass): the find_design pass is run at
/// several reduced area budgets Ad, Ad - step, Ad - 2*step, ...; each
/// result is then topped up with redundancy against the full bound, and
/// the most reliable final design wins. A single greedy pass at the full
/// bound (the literal reading of the paper) tends to spend the whole
/// budget on versions and leave nothing for duplication.
/// Throws NoSolutionError when find_design fails at every budget.
Design combined_design(const dfg::Graph& g,
                       const library::ResourceLibrary& lib,
                       int latency_bound, double area_bound,
                       const CombinedOptions& options = {});

}  // namespace rchls::hls

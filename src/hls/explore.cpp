#include "hls/explore.hpp"

#include <sstream>

#include "parallel/parallel_for.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace rchls::hls {

namespace {

SweepPoint run_point(const dfg::Graph& g, const library::ResourceLibrary& lib,
                     int latency_bound, double area_bound,
                     const FindDesignOptions& options) {
  SweepPoint p;
  p.latency_bound = latency_bound;
  p.area_bound = area_bound;
  try {
    Design d = find_design(g, lib, latency_bound, area_bound, options);
    p.reliability = d.reliability;
    p.area = d.area;
    p.latency = d.latency;
  } catch (const NoSolutionError&) {
    // leave optionals empty
  }
  return p;
}

}  // namespace

std::vector<SweepPoint> latency_sweep(const dfg::Graph& g,
                                      const library::ResourceLibrary& lib,
                                      const std::vector<int>& latency_bounds,
                                      double area_bound,
                                      const FindDesignOptions& options) {
  return parallel::parallel_map(latency_bounds.size(), [&](std::size_t i) {
    return run_point(g, lib, latency_bounds[i], area_bound, options);
  });
}

std::vector<SweepPoint> area_sweep(const dfg::Graph& g,
                                   const library::ResourceLibrary& lib,
                                   int latency_bound,
                                   const std::vector<double>& area_bounds,
                                   const FindDesignOptions& options) {
  return parallel::parallel_map(area_bounds.size(), [&](std::size_t i) {
    return run_point(g, lib, latency_bound, area_bounds[i], options);
  });
}

std::vector<ComparisonRow> comparison_grid(
    const dfg::Graph& g, const library::ResourceLibrary& lib,
    const std::vector<int>& latency_bounds,
    const std::vector<double>& area_bounds, const GridOptions& options) {
  std::size_t cells = latency_bounds.size() * area_bounds.size();
  return parallel::parallel_map(cells, [&](std::size_t cell) {
    int ld = latency_bounds[cell / area_bounds.size()];
    double ad = area_bounds[cell % area_bounds.size()];
    ComparisonRow row;
    row.latency_bound = ld;
    row.area_bound = ad;
    try {
      row.baseline = nmr_baseline(g, lib, ld, ad, options.baseline)
                         .reliability;
    } catch (const NoSolutionError&) {
    }
    try {
      row.ours = find_design(g, lib, ld, ad, options.find_design)
                     .reliability;
    } catch (const NoSolutionError&) {
    }
    try {
      row.combined = combined_design(g, lib, ld, ad, options.combined)
                         .reliability;
    } catch (const NoSolutionError&) {
    }
    if (row.baseline && row.ours) {
      row.improvement_ours = 100.0 * (*row.ours / *row.baseline - 1.0);
    }
    if (row.baseline && row.combined) {
      row.improvement_combined =
          100.0 * (*row.combined / *row.baseline - 1.0);
    }
    return row;
  });
}

std::string to_csv(const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  os << "latency_bound,area_bound,reliability,area,latency\n";
  for (const auto& p : points) {
    os << p.latency_bound << "," << format_fixed(p.area_bound, 2) << ",";
    if (p.reliability) os << format_fixed(*p.reliability, 6);
    os << ",";
    if (p.area) os << format_fixed(*p.area, 2);
    os << ",";
    if (p.latency) os << *p.latency;
    os << "\n";
  }
  return os.str();
}

std::string to_csv(const std::vector<ComparisonRow>& rows) {
  std::ostringstream os;
  os << "latency_bound,area_bound,baseline,ours,combined,"
        "improvement_ours_pct,improvement_combined_pct\n";
  for (const auto& r : rows) {
    os << r.latency_bound << "," << format_fixed(r.area_bound, 2) << ",";
    if (r.baseline) os << format_fixed(*r.baseline, 6);
    os << ",";
    if (r.ours) os << format_fixed(*r.ours, 6);
    os << ",";
    if (r.combined) os << format_fixed(*r.combined, 6);
    os << ",";
    if (r.improvement_ours) os << format_fixed(*r.improvement_ours, 2);
    os << ",";
    if (r.improvement_combined) {
      os << format_fixed(*r.improvement_combined, 2);
    }
    os << "\n";
  }
  return os.str();
}

GridAverages grid_averages(const std::vector<ComparisonRow>& rows) {
  GridAverages avg;
  avg.total_cells = static_cast<int>(rows.size());
  for (const auto& row : rows) {
    if (!(row.baseline && row.ours && row.combined)) continue;
    avg.baseline += *row.baseline;
    avg.ours += *row.ours;
    avg.combined += *row.combined;
    ++avg.solved_cells;
  }
  if (avg.solved_cells > 0) {
    avg.baseline /= avg.solved_cells;
    avg.ours /= avg.solved_cells;
    avg.combined /= avg.solved_cells;
  }
  return avg;
}

}  // namespace rchls::hls

#include "hls/combined.hpp"

#include <optional>

#include "util/error.hpp"

namespace rchls::hls {

Design combined_design(const dfg::Graph& g,
                       const library::ResourceLibrary& lib,
                       int latency_bound, double area_bound,
                       const CombinedOptions& options) {
  std::optional<Design> best;
  int splits = options.budget_step > 0.0 ? options.max_budget_splits : 0;
  for (int k = 0; k <= splits; ++k) {
    double budget = area_bound - k * options.budget_step;
    if (!(budget > 0.0)) break;
    Design d;
    try {
      d = find_design(g, lib, latency_bound, budget, options.find_design);
    } catch (const NoSolutionError&) {
      break;  // tighter budgets only get harder
    }
    apply_redundancy(d, g, lib, area_bound, options.redundancy);
    if (!best || d.reliability > best->reliability ||
        (d.reliability == best->reliability && d.area < best->area)) {
      best = std::move(d);
    }
  }
  if (!best) {
    throw NoSolutionError("combined_design: no solution at any budget "
                          "split");
  }
  validate_design(*best, g, lib);
  return *best;
}

}  // namespace rchls::hls

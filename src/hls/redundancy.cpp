#include "hls/redundancy.hpp"

#include <cmath>
#include <optional>

#include "reliability/algebra.hpp"
#include "util/error.hpp"

namespace rchls::hls {

namespace {

constexpr double kAreaEps = 1e-9;

int next_copy_count(int current, const RedundancyOptions& options) {
  if (current == 1) return options.allow_duplex ? 2 : 3;
  if (current == 2) return 3;
  return current + 2;  // stay odd
}

}  // namespace

int apply_redundancy(Design& d, const dfg::Graph& g,
                     const library::ResourceLibrary& lib, double area_bound,
                     const RedundancyOptions& options) {
  if (options.max_copies < 1) {
    throw Error("apply_redundancy: max_copies must be >= 1");
  }
  if (d.copies.size() != d.binding.instances.size()) {
    throw Error("apply_redundancy: malformed design");
  }

  // ops_of_instance reliability contribution before/after replication.
  auto instance_gain = [&](std::size_t i, int new_copies) {
    double log_gain = 0.0;
    const auto& inst = d.binding.instances[i];
    double r = lib.version(inst.version).reliability;
    double before = reliability::modular_redundancy(r, d.copies[i]);
    double after = reliability::modular_redundancy(r, new_copies);
    log_gain += static_cast<double>(inst.ops.size()) *
                (std::log(after) - std::log(before));
    return log_gain;
  };

  int added = 0;
  for (;;) {
    std::optional<std::size_t> best;
    int best_new_copies = 0;
    double best_score = 0.0;
    for (std::size_t i = 0; i < d.binding.instances.size(); ++i) {
      int new_copies = next_copy_count(d.copies[i], options);
      if (new_copies > options.max_copies) continue;
      if (d.binding.instances[i].ops.empty()) continue;
      double extra_area =
          lib.version(d.binding.instances[i].version).area *
          static_cast<double>(new_copies - d.copies[i]);
      if (d.area + extra_area > area_bound + kAreaEps) continue;
      double score = instance_gain(i, new_copies) / extra_area;
      if (score <= 0.0) continue;
      if (!best || score > best_score) {
        best = i;
        best_new_copies = new_copies;
        best_score = score;
      }
    }
    if (!best) break;
    added += best_new_copies - d.copies[*best];
    d.copies[*best] = best_new_copies;
    evaluate(d, g, lib);
  }
  return added;
}

}  // namespace rchls::hls

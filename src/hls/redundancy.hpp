// Greedy modular-redundancy insertion (the mechanism of the Orailoglu-
// Karri baseline [3], also reused by the paper's combined approach):
// repeatedly replicate the functional-unit instance with the best
// reliability-gain-per-area until the area bound is reached.
//
// Replicating an instance upgrades every operation bound to it:
// 1 -> 2 copies gives duplex-with-recovery (1 - (1-R)^2); 2 -> 3 gives TMR
// majority; further odd counts continue the NMR ladder. As in [3], voter /
// checker area is not charged.
#pragma once

#include "dfg/graph.hpp"
#include "hls/design.hpp"
#include "library/resource.hpp"

namespace rchls::hls {

struct RedundancyOptions {
  /// Highest copy count per instance (odd counts above 3 continue NMR).
  int max_copies = 3;
  /// Permit the even intermediate step (duplication with rollback
  /// recovery). When false, instances jump 1 -> 3 directly.
  bool allow_duplex = true;
};

/// Adds copies greedily while total area stays within `area_bound`.
/// Mutates `d` (copies / area / reliability) and returns the number of
/// copies added. The design's schedule and binding are unchanged.
int apply_redundancy(Design& d, const dfg::Graph& g,
                     const library::ResourceLibrary& lib, double area_bound,
                     const RedundancyOptions& options = {});

}  // namespace rchls::hls

// Reimplementation of the redundancy-based prior work the paper compares
// against (Orailoglu & Karri [3]): one fixed library version per operation
// type, reliability improved exclusively through N-modular redundancy.
//
// [3] is a design-space methodology rather than a single algorithm; we
// implement its "maximize reliability under cost and performance
// constraints" strategy:
//   1. pick one version per resource class,
//   2. find the minimum-area allocation meeting the latency bound (list
//      scheduling over instance-count candidates),
//   3. greedily replicate instances (duplex, then TMR, ...) while the area
//      bound permits,
// and -- unless `fixed_versions` is set -- repeat over every version combo,
// returning the most reliable result.
#pragma once

#include <optional>

#include "dfg/graph.hpp"
#include "hls/design.hpp"
#include "hls/redundancy.hpp"
#include "library/resource.hpp"

namespace rchls::hls {

struct BaselineOptions {
  /// When set, restrict to exactly this (adder, multiplier) version pair
  /// instead of searching all combos (the paper's first experiment uses
  /// the fastest versions only).
  std::optional<std::pair<library::VersionId, library::VersionId>>
      fixed_versions;
  RedundancyOptions redundancy;
};

/// Returns the best baseline design; throws NoSolutionError when no
/// version combo meets both bounds.
Design nmr_baseline(const dfg::Graph& g, const library::ResourceLibrary& lib,
                    int latency_bound, double area_bound,
                    const BaselineOptions& options = {});

/// Helper shared with tests: smallest-area (instances per class) list-
/// scheduling allocation meeting the latency bound for uniform versions;
/// returns the assembled redundancy-free design. Throws NoSolutionError if
/// even one unit of each class cannot meet the bound... or rather, if no
/// allocation does.
Design minimal_allocation_design(const dfg::Graph& g,
                                 const library::ResourceLibrary& lib,
                                 library::VersionId adder_version,
                                 library::VersionId mult_version,
                                 int latency_bound);

}  // namespace rchls::hls

#include "hls/report.hpp"

#include <map>
#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace rchls::hls {

std::string schedule_table(const Design& d, const dfg::Graph& g,
                           const library::ResourceLibrary& lib) {
  std::vector<std::string> header{"step"};
  for (std::size_t i = 0; i < d.binding.instances.size(); ++i) {
    const auto& v = lib.version(d.binding.instances[i].version);
    std::string label = v.name + "#" + std::to_string(i);
    if (d.copies[i] > 1) label += " x" + std::to_string(d.copies[i]);
    header.push_back(label);
  }
  Table table(header);

  // cell[step][instance]
  std::vector<std::vector<std::string>> cells(
      static_cast<std::size_t>(d.latency),
      std::vector<std::string>(d.binding.instances.size()));
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    auto inst = d.binding.instance_of[id];
    int delay = lib.version(d.version_of[id]).delay;
    for (int c = d.schedule.start[id]; c < d.schedule.start[id] + delay;
         ++c) {
      cells[static_cast<std::size_t>(c)][inst] = g.node(id).name;
    }
  }
  for (int step = 0; step < d.latency; ++step) {
    std::vector<std::string> row{std::to_string(step)};
    for (auto& cell : cells[static_cast<std::size_t>(step)]) {
      row.push_back(cell.empty() ? "-" : cell);
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string design_summary(const Design& d, const dfg::Graph& g,
                           const library::ResourceLibrary& lib) {
  std::ostringstream os;
  os << "latency = " << d.latency << " cycles, area = "
     << format_fixed(d.area, 1) << " units, reliability = "
     << format_fixed(d.reliability, 5) << "\n";

  os << "instances:";
  for (std::size_t i = 0; i < d.binding.instances.size(); ++i) {
    const auto& inst = d.binding.instances[i];
    os << " " << lib.version(inst.version).name << "(x" << d.copies[i]
       << ", " << inst.ops.size() << " ops)";
  }
  os << "\n";

  std::map<std::string, int> histogram;
  for (dfg::NodeId id = 0; id < g.node_count(); ++id) {
    histogram[lib.version(d.version_of[id]).name]++;
  }
  os << "operations per version:";
  for (const auto& [name, count] : histogram) {
    os << " " << name << "=" << count;
  }
  os << "\n";
  return os.str();
}

}  // namespace rchls::hls

// Structural analysis of a Netlist: CSR fanout adjacency, topological
// levels, and memoized transitive-fanout cones.
//
// A Topology is computed once per netlist (one linear pass) and then shared
// read-only by every consumer -- most importantly the incremental
// FaultEngine, which uses the fanout lists and levels to resimulate only a
// struck gate's cone instead of the whole circuit. Cones themselves are
// extracted lazily and memoized, so analyses that only ever strike a few
// gates never pay for the rest.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "netlist/netlist.hpp"

namespace rchls::netlist {

/// Immutable structural view of a Netlist. All queries are O(1) except
/// cone(), which is O(cone size) on first use and O(1) after (memoized).
/// Safe for concurrent use from multiple threads.
class Topology {
 public:
  explicit Topology(const Netlist& nl);

  std::size_t gate_count() const { return level_.size(); }

  // -- fanout adjacency (CSR) ---------------------------------------------

  /// Gates that read gate `id` directly. Duplicate edges from a gate whose
  /// two fanins coincide are collapsed to one.
  const GateId* fanout_begin(GateId id) const {
    return fanout_targets_.data() + fanout_offsets_[id];
  }
  const GateId* fanout_end(GateId id) const {
    return fanout_targets_.data() + fanout_offsets_[id + 1];
  }
  std::size_t fanout_count(GateId id) const {
    return fanout_offsets_[id + 1] - fanout_offsets_[id];
  }

  // -- levels --------------------------------------------------------------

  /// Topological level: 0 for inputs/constants, 1 + max(fanin levels) for
  /// logic gates. A gate's level is strictly greater than each fanin's.
  std::uint32_t level(GateId id) const { return level_[id]; }
  std::uint32_t max_level() const { return max_level_; }

  // -- port / kind summaries ----------------------------------------------

  /// True if the gate drives at least one primary-output bit.
  bool is_output_bit(GateId id) const { return is_output_[id] != 0; }

  /// Ids of all gates with fanins (the strike targets), ascending.
  const std::vector<GateId>& logic_gates() const { return logic_gates_; }

  // -- cones ---------------------------------------------------------------

  /// Transitive-fanout cone of `root` (root included), ascending gate id --
  /// which is also topological order. Memoized per gate; thread-safe.
  const std::vector<GateId>& cone(GateId root) const;

 private:
  std::vector<std::size_t> fanout_offsets_;  ///< size gate_count + 1
  std::vector<GateId> fanout_targets_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint8_t> is_output_;
  std::vector<GateId> logic_gates_;
  std::uint32_t max_level_ = 0;

  // Cone memo, allocated on first cone() call and then filled per gate.
  // cones_ is sized once, so returned references stay valid across later
  // cone() calls.
  mutable std::mutex cone_mutex_;
  mutable std::vector<std::vector<GateId>> cones_;
  mutable std::vector<std::uint8_t> cone_ready_;
  mutable std::vector<std::uint32_t> cone_visited_;
  mutable std::uint32_t cone_epoch_ = 0;
};

}  // namespace rchls::netlist

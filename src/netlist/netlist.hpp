// Gate-level netlist intermediate representation.
//
// This substrate stands in for the paper's MAX/HSPICE component netlists: the
// arithmetic units of Section 4 (ripple-carry / Brent-Kung / Kogge-Stone
// adders, carry-save / leapfrog multipliers) are generated as Netlist objects
// (src/circuits), logic-simulated (sim.hpp), and bombarded with single-event
// transients (src/ser/fault_injection.hpp) to characterize their soft-error
// susceptibility.
//
// Structural invariant: a gate may only reference gates created before it,
// so a Netlist is acyclic by construction and gate-id order is a valid
// topological order. Combinational only -- soft-error characterization of
// data-path components does not need state elements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rchls::netlist {

/// Index of a gate within its Netlist.
using GateId = std::uint32_t;

enum class GateKind : std::uint8_t {
  kConst0,
  kConst1,
  kInput,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
};

/// Human-readable name, e.g. "And".
const char* to_string(GateKind kind);

/// Number of fanins the kind requires: 0 for constants/inputs, 1 for
/// Buf/Not, 2 for the binary gates.
int fanin_count(GateKind kind);

struct Gate {
  GateKind kind = GateKind::kConst0;
  GateId fanin0 = 0;  ///< Valid when fanin_count(kind) >= 1.
  GateId fanin1 = 0;  ///< Valid when fanin_count(kind) == 2.
};

/// A named, ordered group of gates forming a word-level port.
struct Bus {
  std::string name;
  std::vector<GateId> bits;  ///< bits[0] is the least significant bit.
};

/// A combinational gate-level circuit with word-level port bookkeeping.
class Netlist {
 public:
  explicit Netlist(std::string name);

  const std::string& name() const { return name_; }

  // -- construction -------------------------------------------------------

  GateId add_const(bool value);
  /// Adds one primary-input bit (also appended to the flat input order).
  GateId add_input_bit();
  GateId add_unary(GateKind kind, GateId a);
  GateId add_binary(GateKind kind, GateId a, GateId b);

  // Convenience helpers used heavily by the circuit generators.
  GateId bnot(GateId a) { return add_unary(GateKind::kNot, a); }
  GateId band(GateId a, GateId b) { return add_binary(GateKind::kAnd, a, b); }
  GateId bor(GateId a, GateId b) { return add_binary(GateKind::kOr, a, b); }
  GateId bxor(GateId a, GateId b) { return add_binary(GateKind::kXor, a, b); }
  GateId bnand(GateId a, GateId b) {
    return add_binary(GateKind::kNand, a, b);
  }
  GateId bnor(GateId a, GateId b) { return add_binary(GateKind::kNor, a, b); }
  GateId bxnor(GateId a, GateId b) {
    return add_binary(GateKind::kXnor, a, b);
  }
  /// Majority of three: ab + bc + ca. Used by the TMR voter.
  GateId maj3(GateId a, GateId b, GateId c);
  /// 2:1 mux built from basic gates: sel ? a1 : a0.
  GateId mux(GateId sel, GateId a0, GateId a1);

  /// Declares a named input bus of `width` fresh input bits (LSB first).
  Bus add_input_bus(const std::string& name, int width);
  /// Declares a named output bus driven by existing gates (LSB first).
  void add_output_bus(const std::string& name, std::vector<GateId> bits);

  // -- inspection ---------------------------------------------------------

  std::size_t gate_count() const { return gates_.size(); }
  const Gate& gate(GateId id) const;
  const std::vector<Gate>& gates() const { return gates_; }

  /// All primary-input bits in creation order.
  const std::vector<GateId>& input_bits() const { return input_bits_; }
  const std::vector<Bus>& input_buses() const { return input_buses_; }
  const std::vector<Bus>& output_buses() const { return output_buses_; }
  /// All output bits, concatenated over output buses in declaration order.
  std::vector<GateId> output_bits() const;

  /// Bus lookup by name; throws Error if absent.
  const Bus& input_bus(const std::string& name) const;
  const Bus& output_bus(const std::string& name) const;

  /// Checks every structural invariant (fanin ordering, port references,
  /// fanin arities). Throws ValidationError on the first violation.
  /// Construction already maintains these; validate() exists to guard
  /// hand-assembled or deserialized netlists.
  void validate() const;

 private:
  GateId push(Gate g);

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> input_bits_;
  std::vector<Bus> input_buses_;
  std::vector<Bus> output_buses_;
};

}  // namespace rchls::netlist

#include "netlist/compose.hpp"

#include "util/error.hpp"

namespace rchls::netlist {

std::vector<GateId> append(Netlist& dst, const Netlist& src,
                           const std::vector<GateId>& input_drivers) {
  src.validate();
  if (input_drivers.size() != src.input_bits().size()) {
    throw Error("append: need one driver per src input bit (" +
                std::to_string(src.input_bits().size()) + " expected, " +
                std::to_string(input_drivers.size()) + " given)");
  }
  for (GateId driver : input_drivers) {
    if (driver >= dst.gate_count()) {
      throw Error("append: input driver does not exist in destination");
    }
  }

  std::vector<GateId> map(src.gate_count(), 0);
  std::size_t next_input = 0;
  for (GateId id = 0; id < src.gate_count(); ++id) {
    const Gate& g = src.gate(id);
    switch (fanin_count(g.kind)) {
      case 0:
        map[id] = g.kind == GateKind::kInput
                      ? input_drivers[next_input++]
                      : dst.add_const(g.kind == GateKind::kConst1);
        break;
      case 1:
        map[id] = dst.add_unary(g.kind, map[g.fanin0]);
        break;
      default:
        map[id] = dst.add_binary(g.kind, map[g.fanin0], map[g.fanin1]);
        break;
    }
  }
  return map;
}

}  // namespace rchls::netlist

// Netlist composition: inline one netlist into another, mapping its
// primary inputs onto existing driver gates of the destination. This is
// how the RTL elaborator (src/rtl) stitches arithmetic-unit netlists into
// a whole-design data-path netlist.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace rchls::netlist {

/// Copies every logic gate of `src` into `dst`. `input_drivers[i]` supplies
/// the dst gate standing in for src's i-th primary input bit (flat order,
/// see Netlist::input_bits()). Returns the dst gate id corresponding to
/// each src gate (index = src GateId). Output buses of src are NOT
/// declared on dst; use the returned mapping to wire them.
std::vector<GateId> append(Netlist& dst, const Netlist& src,
                           const std::vector<GateId>& input_drivers);

}  // namespace rchls::netlist

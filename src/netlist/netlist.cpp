#include "netlist/netlist.hpp"

#include "util/error.hpp"

namespace rchls::netlist {

const char* to_string(GateKind kind) {
  switch (kind) {
    case GateKind::kConst0: return "Const0";
    case GateKind::kConst1: return "Const1";
    case GateKind::kInput: return "Input";
    case GateKind::kBuf: return "Buf";
    case GateKind::kNot: return "Not";
    case GateKind::kAnd: return "And";
    case GateKind::kOr: return "Or";
    case GateKind::kNand: return "Nand";
    case GateKind::kNor: return "Nor";
    case GateKind::kXor: return "Xor";
    case GateKind::kXnor: return "Xnor";
  }
  return "?";
}

int fanin_count(GateKind kind) {
  switch (kind) {
    case GateKind::kConst0:
    case GateKind::kConst1:
    case GateKind::kInput:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
      return 1;
    default:
      return 2;
  }
}

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

GateId Netlist::push(Gate g) {
  gates_.push_back(g);
  return static_cast<GateId>(gates_.size() - 1);
}

GateId Netlist::add_const(bool value) {
  return push(Gate{value ? GateKind::kConst1 : GateKind::kConst0, 0, 0});
}

GateId Netlist::add_input_bit() {
  GateId id = push(Gate{GateKind::kInput, 0, 0});
  input_bits_.push_back(id);
  return id;
}

GateId Netlist::add_unary(GateKind kind, GateId a) {
  if (fanin_count(kind) != 1) throw Error("add_unary: kind is not unary");
  if (a >= gates_.size()) throw Error("add_unary: fanin does not exist yet");
  return push(Gate{kind, a, 0});
}

GateId Netlist::add_binary(GateKind kind, GateId a, GateId b) {
  if (fanin_count(kind) != 2) throw Error("add_binary: kind is not binary");
  if (a >= gates_.size() || b >= gates_.size()) {
    throw Error("add_binary: fanin does not exist yet");
  }
  return push(Gate{kind, a, b});
}

GateId Netlist::maj3(GateId a, GateId b, GateId c) {
  GateId ab = band(a, b);
  GateId bc = band(b, c);
  GateId ca = band(c, a);
  return bor(bor(ab, bc), ca);
}

GateId Netlist::mux(GateId sel, GateId a0, GateId a1) {
  GateId n = bnot(sel);
  return bor(band(n, a0), band(sel, a1));
}

Bus Netlist::add_input_bus(const std::string& name, int width) {
  if (width <= 0) throw Error("add_input_bus: width must be positive");
  Bus bus{name, {}};
  bus.bits.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bus.bits.push_back(add_input_bit());
  input_buses_.push_back(bus);
  return bus;
}

void Netlist::add_output_bus(const std::string& name,
                             std::vector<GateId> bits) {
  for (GateId id : bits) {
    if (id >= gates_.size()) {
      throw Error("add_output_bus: bit references missing gate");
    }
  }
  output_buses_.push_back(Bus{name, std::move(bits)});
}

const Gate& Netlist::gate(GateId id) const {
  if (id >= gates_.size()) throw Error("gate: id out of range");
  return gates_[id];
}

std::vector<GateId> Netlist::output_bits() const {
  std::vector<GateId> out;
  for (const Bus& bus : output_buses_) {
    out.insert(out.end(), bus.bits.begin(), bus.bits.end());
  }
  return out;
}

const Bus& Netlist::input_bus(const std::string& name) const {
  for (const Bus& bus : input_buses_) {
    if (bus.name == name) return bus;
  }
  throw Error("input_bus: no bus named '" + name + "'");
}

const Bus& Netlist::output_bus(const std::string& name) const {
  for (const Bus& bus : output_buses_) {
    if (bus.name == name) return bus;
  }
  throw Error("output_bus: no bus named '" + name + "'");
}

void Netlist::validate() const {
  for (GateId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    int n = fanin_count(g.kind);
    if (n >= 1 && g.fanin0 >= id) {
      throw ValidationError(name_ + ": gate " + std::to_string(id) +
                            " fanin0 is not topologically earlier");
    }
    if (n == 2 && g.fanin1 >= id) {
      throw ValidationError(name_ + ": gate " + std::to_string(id) +
                            " fanin1 is not topologically earlier");
    }
  }
  for (GateId id : input_bits_) {
    if (id >= gates_.size() || gates_[id].kind != GateKind::kInput) {
      throw ValidationError(name_ + ": input list references non-input gate");
    }
  }
  for (const Bus& bus : output_buses_) {
    for (GateId id : bus.bits) {
      if (id >= gates_.size()) {
        throw ValidationError(name_ + ": output bus '" + bus.name +
                              "' references missing gate");
      }
    }
  }
}

}  // namespace rchls::netlist

// Cone-limited incremental fault simulation.
//
// The brute-force way to measure a single-event transient is two
// full-netlist bit-parallel passes per 64-lane batch: one golden, one
// faulty, then an output-by-output comparison. But a strike at gate g can
// only disturb g's transitive fanout cone, and in real circuits most flips
// are logically masked within a few levels. FaultEngine exploits both
// facts (the classic concurrent-fault-simulation idea from ATPG):
//
//   1. set_inputs() evaluates the golden values ONCE per input batch;
//   2. inject() resimulates only the victim's fanout cone via a
//      level-ordered frontier worklist, early-exiting the moment every
//      64-lane diff word has gone to zero (the fault is fully masked);
//   3. output corruption is read straight off the diff words as the
//      frontier crosses primary-output bits -- no second full pass, no
//      golden/faulty output comparison loop.
//
// Faulty values live in an epoch-stamped overlay on top of the golden
// values, so consecutive inject() calls against the same golden batch cost
// O(disturbed cone), not O(netlist). The corruption words are bit-identical
// to the brute-force golden-vs-faulty comparison (enforced by the
// differential property test in tests/netlist_fault_engine_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/sim.hpp"
#include "netlist/topology.hpp"

namespace rchls::netlist {

/// Incremental single-fault simulator over one Netlist + Topology, both of
/// which must outlive the engine. Each engine instance is single-threaded;
/// parallel campaigns give every worker its own engine over the shared
/// read-only Topology.
class FaultEngine {
 public:
  FaultEngine(const Netlist& nl, const Topology& topo);

  /// Evaluates the golden (fault-free) values for a fresh 64-lane input
  /// batch. Must be called before inject().
  void set_inputs(const std::vector<std::uint64_t>& input_words);

  /// Golden per-gate words of the current batch.
  const std::vector<std::uint64_t>& golden() const { return golden_; }

  /// Injects `fault` against the current golden batch and returns the
  /// 64-lane output-corruption word: bit L is set iff some primary-output
  /// bit differs from golden in lane L. Only the disturbed part of the
  /// victim's fanout cone is evaluated.
  std::uint64_t inject(const Fault& fault);

  /// Gates re-evaluated by the last inject() -- the dynamic cone size.
  /// Exposed so tests can pin down the early-exit behaviour.
  std::size_t last_evaluations() const { return last_evaluations_; }

 private:
  std::uint64_t value_of(GateId id) const {
    return stamp_[id] == epoch_ ? faulty_[id] : golden_[id];
  }
  std::uint64_t eval_gate(const Gate& g) const;
  void enqueue_fanouts(GateId id);
  void next_epoch();

  const Netlist& nl_;
  const Topology& topo_;
  bool have_inputs_ = false;

  std::vector<std::uint64_t> golden_;
  /// Overlay: faulty_[g] is the faulty value iff stamp_[g] == epoch_.
  std::vector<std::uint64_t> faulty_;
  std::vector<std::uint32_t> stamp_;
  /// queued_[g] == epoch_ iff g already sits in a level bucket.
  std::vector<std::uint32_t> queued_;
  /// Frontier worklist bucketed by topological level.
  std::vector<std::vector<GateId>> buckets_;
  std::uint32_t epoch_ = 0;
  std::size_t pending_ = 0;
  std::size_t last_evaluations_ = 0;
};

}  // namespace rchls::netlist

#include "netlist/topology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rchls::netlist {

Topology::Topology(const Netlist& nl) {
  const auto& gates = nl.gates();
  const std::size_t n = gates.size();

  level_.assign(n, 0);
  is_output_.assign(n, 0);
  fanout_offsets_.assign(n + 1, 0);

  // Pass 1: levels, logic-gate list, fanout degrees.
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = gates[id];
    int fi = fanin_count(g.kind);
    if (fi >= 1) {
      logic_gates_.push_back(id);
      std::uint32_t lvl = level_[g.fanin0] + 1;
      ++fanout_offsets_[g.fanin0 + 1];
      if (fi == 2 && g.fanin1 != g.fanin0) {
        lvl = std::max(lvl, level_[g.fanin1] + 1);
        ++fanout_offsets_[g.fanin1 + 1];
      }
      level_[id] = lvl;
      max_level_ = std::max(max_level_, lvl);
    }
  }
  for (GateId id : nl.output_bits()) is_output_[id] = 1;

  // Pass 2: prefix-sum the degrees and scatter the CSR targets.
  for (std::size_t i = 1; i <= n; ++i) {
    fanout_offsets_[i] += fanout_offsets_[i - 1];
  }
  fanout_targets_.resize(fanout_offsets_[n]);
  std::vector<std::size_t> cursor(fanout_offsets_.begin(),
                                  fanout_offsets_.end() - 1);
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = gates[id];
    int fi = fanin_count(g.kind);
    if (fi >= 1) {
      fanout_targets_[cursor[g.fanin0]++] = id;
      if (fi == 2 && g.fanin1 != g.fanin0) {
        fanout_targets_[cursor[g.fanin1]++] = id;
      }
    }
  }

}

const std::vector<GateId>& Topology::cone(GateId root) const {
  if (root >= level_.size()) throw Error("Topology::cone: gate out of range");
  std::lock_guard<std::mutex> lock(cone_mutex_);
  if (cones_.empty()) {
    // Campaigns never call cone() (the engine tracks the disturbed frontier
    // dynamically), so the memo state is only allocated on first use.
    cones_.resize(level_.size());
    cone_ready_.assign(level_.size(), 0);
    cone_visited_.assign(level_.size(), 0);
  }
  if (!cone_ready_[root]) {
    ++cone_epoch_;
    std::vector<GateId>& out = cones_[root];
    out.push_back(root);
    cone_visited_[root] = cone_epoch_;
    // Breadth-first over the fanout CSR; the worklist grows while we scan.
    for (std::size_t i = 0; i < out.size(); ++i) {
      GateId g = out[i];
      for (const GateId* f = fanout_begin(g); f != fanout_end(g); ++f) {
        if (cone_visited_[*f] != cone_epoch_) {
          cone_visited_[*f] = cone_epoch_;
          out.push_back(*f);
        }
      }
    }
    std::sort(out.begin(), out.end());
    cone_ready_[root] = 1;
  }
  return cones_[root];
}

}  // namespace rchls::netlist

#include "netlist/fault_engine.hpp"

#include <limits>

#include "util/error.hpp"

namespace rchls::netlist {

FaultEngine::FaultEngine(const Netlist& nl, const Topology& topo)
    : nl_(nl), topo_(topo) {
  if (topo.gate_count() != nl.gate_count()) {
    throw Error("FaultEngine: topology does not match netlist");
  }
  const std::size_t n = nl.gate_count();
  faulty_.assign(n, 0);
  stamp_.assign(n, 0);
  queued_.assign(n, 0);
  buckets_.resize(static_cast<std::size_t>(topo.max_level()) + 1);
}

void FaultEngine::set_inputs(const std::vector<std::uint64_t>& input_words) {
  eval_netlist(nl_, input_words, std::nullopt, golden_);
  have_inputs_ = true;
}

void FaultEngine::next_epoch() {
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    stamp_.assign(stamp_.size(), 0);
    queued_.assign(queued_.size(), 0);
    epoch_ = 0;
  }
  ++epoch_;
}

std::uint64_t FaultEngine::eval_gate(const Gate& g) const {
  std::uint64_t a = value_of(g.fanin0);
  switch (g.kind) {
    case GateKind::kBuf: return a;
    case GateKind::kNot: return ~a;
    case GateKind::kAnd: return a & value_of(g.fanin1);
    case GateKind::kOr: return a | value_of(g.fanin1);
    case GateKind::kNand: return ~(a & value_of(g.fanin1));
    case GateKind::kNor: return ~(a | value_of(g.fanin1));
    case GateKind::kXor: return a ^ value_of(g.fanin1);
    case GateKind::kXnor: return ~(a ^ value_of(g.fanin1));
    default:
      throw Error("FaultEngine: fanin-free gate reached the frontier");
  }
}

void FaultEngine::enqueue_fanouts(GateId id) {
  for (const GateId* f = topo_.fanout_begin(id); f != topo_.fanout_end(id);
       ++f) {
    if (queued_[*f] != epoch_) {
      queued_[*f] = epoch_;
      buckets_[topo_.level(*f)].push_back(*f);
      ++pending_;
    }
  }
}

std::uint64_t FaultEngine::inject(const Fault& fault) {
  if (!have_inputs_) {
    throw Error("FaultEngine::inject: set_inputs was never called");
  }
  if (fault.gate >= nl_.gate_count()) {
    throw Error("FaultEngine::inject: fault gate out of range");
  }
  last_evaluations_ = 0;
  if (fault.lane_mask == 0) return 0;

  next_epoch();
  pending_ = 0;

  // Seed: the victim's value flips under the mask; its diff IS the mask.
  faulty_[fault.gate] = golden_[fault.gate] ^ fault.lane_mask;
  stamp_[fault.gate] = epoch_;
  std::uint64_t corruption =
      topo_.is_output_bit(fault.gate) ? fault.lane_mask : 0;
  enqueue_fanouts(fault.gate);

  // Level-ordered frontier: fanouts always sit at a strictly higher level
  // than their driver, so a single ascending sweep evaluates every touched
  // gate exactly once, after all its disturbed fanins. The sweep stops as
  // soon as no queued gate remains -- the moment every diff went to zero.
  for (std::uint32_t lvl = topo_.level(fault.gate) + 1; pending_ > 0; ++lvl) {
    std::vector<GateId>& bucket = buckets_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      GateId id = bucket[i];
      --pending_;
      ++last_evaluations_;
      std::uint64_t v = eval_gate(nl_.gates()[id]);
      std::uint64_t diff = v ^ golden_[id];
      if (diff == 0) continue;  // masked here; nothing to propagate
      faulty_[id] = v;
      stamp_[id] = epoch_;
      if (topo_.is_output_bit(id)) corruption |= diff;
      enqueue_fanouts(id);
    }
    bucket.clear();
  }
  return corruption;
}

}  // namespace rchls::netlist

// Bit-parallel logic simulation with single-event-transient injection.
//
// The simulator evaluates 64 input patterns at once (one per bit lane of a
// 64-bit word), which makes the Monte-Carlo fault-injection campaigns in
// src/ser fast enough to run inside the test suite.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"

namespace rchls::netlist {

/// A single-event transient: the output of `gate` is inverted in the lanes
/// selected by `lane_mask` before its fanout is evaluated. This models a
/// particle strike flipping the struck node's logical value; whether the
/// flip reaches a primary output is decided by logical masking along the
/// downstream paths (electrical and latching-window masking are applied
/// analytically by the SER model on top of this).
struct Fault {
  GateId gate = 0;
  std::uint64_t lane_mask = ~0ULL;
};

/// Evaluates a Netlist over 64 parallel input patterns.
class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// `input_words[i]` holds the 64 lane values of input bit i (the i-th
  /// entry of Netlist::input_bits()). Returns one word per gate.
  /// If `fault` is set, the struck gate's word is inverted under the mask.
  std::vector<std::uint64_t> run(
      const std::vector<std::uint64_t>& input_words,
      std::optional<Fault> fault = std::nullopt) const;

  /// Convenience: packs the per-output-bit words for the circuit's outputs
  /// (concatenated output buses) out of a `run` result.
  std::vector<std::uint64_t> output_words(
      const std::vector<std::uint64_t>& gate_words) const;

  /// Evaluates the named buses from unsigned integers in lane 0 only.
  /// `bus_values[i]` corresponds to Netlist::input_buses()[i]; extra high
  /// bits beyond the bus width are ignored. Returns one unsigned value per
  /// output bus. This is the scalar interface used by functional tests.
  std::vector<std::uint64_t> run_scalar(
      const std::vector<std::uint64_t>& bus_values) const;

 private:
  const Netlist& nl_;
};

}  // namespace rchls::netlist

// Bit-parallel logic simulation with single-event-transient injection.
//
// The simulator evaluates 64 input patterns at once (one per bit lane of a
// 64-bit word), which makes the Monte-Carlo fault-injection campaigns in
// src/ser fast enough to run inside the test suite.
//
// Hot loops use the reusable-context interface (eval / pack_outputs): the
// simulator owns its value buffers, so repeated passes over the same
// netlist perform no per-pass allocation. The allocating run/output_words
// wrappers remain for tests and cold paths. For per-fault resimulation that
// only revisits the struck gate's fanout cone, see fault_engine.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"

namespace rchls::netlist {

/// A single-event transient: the output of `gate` is inverted in the lanes
/// selected by `lane_mask` before its fanout is evaluated. This models a
/// particle strike flipping the struck node's logical value; whether the
/// flip reaches a primary output is decided by logical masking along the
/// downstream paths (electrical and latching-window masking are applied
/// analytically by the SER model on top of this).
struct Fault {
  GateId gate = 0;
  std::uint64_t lane_mask = ~0ULL;
};

/// Full levelized evaluation of `nl` into `values` (resized to the gate
/// count, contents overwritten). Shared by Simulator and FaultEngine.
void eval_netlist(const Netlist& nl,
                  const std::vector<std::uint64_t>& input_words,
                  std::optional<Fault> fault,
                  std::vector<std::uint64_t>& values);

/// Evaluates a Netlist over 64 parallel input patterns.
class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  // -- reusable-context interface (no per-pass allocation) ----------------

  /// Evaluates into the simulator's internal context and returns the
  /// per-gate words. The reference is invalidated by the next eval().
  /// `input_words[i]` holds the 64 lane values of input bit i (the i-th
  /// entry of Netlist::input_bits()). If `fault` is set, the struck gate's
  /// word is inverted under the mask.
  const std::vector<std::uint64_t>& eval(
      const std::vector<std::uint64_t>& input_words,
      std::optional<Fault> fault = std::nullopt);

  /// Packs the per-output-bit words of the last eval() into `out`
  /// (resized; capacity is reused across calls).
  void pack_outputs(std::vector<std::uint64_t>& out) const;

  // -- allocating conveniences --------------------------------------------

  /// As eval(), but returns a fresh vector (one word per gate).
  std::vector<std::uint64_t> run(
      const std::vector<std::uint64_t>& input_words,
      std::optional<Fault> fault = std::nullopt);

  /// Convenience: packs the per-output-bit words for the circuit's outputs
  /// (concatenated output buses) out of a `run` result.
  std::vector<std::uint64_t> output_words(
      const std::vector<std::uint64_t>& gate_words) const;

  /// Evaluates the named buses from unsigned integers in lane 0 only.
  /// `bus_values[i]` corresponds to Netlist::input_buses()[i]; extra high
  /// bits beyond the bus width are ignored. Returns one unsigned value per
  /// output bus. This is the scalar interface used by functional tests.
  std::vector<std::uint64_t> run_scalar(
      const std::vector<std::uint64_t>& bus_values);

 private:
  const Netlist& nl_;
  std::vector<GateId> output_bits_;     ///< cached concatenated output bits
  std::vector<std::uint64_t> values_;   ///< reusable simulation context
};

}  // namespace rchls::netlist

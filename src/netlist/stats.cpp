#include "netlist/stats.hpp"

#include <algorithm>
#include <sstream>

namespace rchls::netlist {

double gate_delay(GateKind kind) {
  switch (kind) {
    case GateKind::kConst0:
    case GateKind::kConst1:
    case GateKind::kInput:
      return 0.0;
    case GateKind::kBuf:
    case GateKind::kNot:
      return 0.5;
    case GateKind::kXor:
    case GateKind::kXnor:
      return 1.5;
    default:
      return 1.0;
  }
}

double gate_area(GateKind kind) {
  switch (kind) {
    case GateKind::kConst0:
    case GateKind::kConst1:
    case GateKind::kInput:
      return 0.0;
    case GateKind::kBuf:
    case GateKind::kNot:
      return 0.5;
    case GateKind::kXor:
    case GateKind::kXnor:
      return 2.0;
    default:
      return 1.0;
  }
}

Stats compute_stats(const Netlist& nl) {
  Stats s;
  std::vector<double> arrival(nl.gate_count(), 0.0);
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    const Gate& g = nl.gate(id);
    s.per_kind[static_cast<std::size_t>(g.kind)]++;
    int fanins = fanin_count(g.kind);
    if (fanins > 0) s.logic_gates++;
    s.area += gate_area(g.kind);

    double in_arrival = 0.0;
    if (fanins >= 1) in_arrival = arrival[g.fanin0];
    if (fanins == 2) in_arrival = std::max(in_arrival, arrival[g.fanin1]);
    arrival[id] = in_arrival + gate_delay(g.kind);
  }
  for (GateId id : nl.output_bits()) {
    s.depth = std::max(s.depth, arrival[id]);
  }
  return s;
}

std::string to_dot(const Netlist& nl) {
  std::ostringstream os;
  os << "digraph \"" << nl.name() << "\" {\n  rankdir=LR;\n";
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    const Gate& g = nl.gate(id);
    os << "  g" << id << " [label=\"" << to_string(g.kind) << "\\n#" << id
       << "\"];\n";
    int fanins = fanin_count(g.kind);
    if (fanins >= 1) os << "  g" << g.fanin0 << " -> g" << id << ";\n";
    if (fanins == 2) os << "  g" << g.fanin1 << " -> g" << id << ";\n";
  }
  for (const Bus& bus : nl.output_buses()) {
    for (std::size_t i = 0; i < bus.bits.size(); ++i) {
      os << "  out_" << bus.name << "_" << i << " [shape=box];\n";
      os << "  g" << bus.bits[i] << " -> out_" << bus.name << "_" << i
         << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace rchls::netlist

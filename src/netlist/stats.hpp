// Structural metrics of a netlist: gate counts, logic depth, and a
// normalized area estimate. These feed the library characterizer, which
// turns each arithmetic circuit into the (area, delay) half of a resource
// library entry (the reliability half comes from src/ser).
#pragma once

#include <array>
#include <string>

#include "netlist/netlist.hpp"

namespace rchls::netlist {

struct Stats {
  /// Number of logic gates (inputs and constants excluded).
  std::size_t logic_gates = 0;
  /// Gate count per kind, indexed by static_cast<size_t>(GateKind).
  std::array<std::size_t, 11> per_kind{};
  /// Longest input-to-output path measured in unit gate delays
  /// (Buf/Not count 0.5, And/Or/Nand/Nor count 1, Xor/Xnor count 1.5 --
  /// a standard-cell-flavored weighting).
  double depth = 0.0;
  /// Area in weighted gate-equivalents (Not/Buf 0.5, simple gates 1,
  /// Xor/Xnor 2).
  double area = 0.0;
};

/// Unit delay contribution of a gate kind along a path.
double gate_delay(GateKind kind);

/// Gate-equivalent area of a gate kind.
double gate_area(GateKind kind);

/// Computes all metrics in one topological pass.
Stats compute_stats(const Netlist& nl);

/// Graphviz dot rendering (for debugging / documentation).
std::string to_dot(const Netlist& nl);

}  // namespace rchls::netlist

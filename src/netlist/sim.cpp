#include "netlist/sim.hpp"

#include "util/error.hpp"

namespace rchls::netlist {

Simulator::Simulator(const Netlist& nl) : nl_(nl) { nl_.validate(); }

std::vector<std::uint64_t> Simulator::run(
    const std::vector<std::uint64_t>& input_words,
    std::optional<Fault> fault) const {
  const auto& inputs = nl_.input_bits();
  if (input_words.size() != inputs.size()) {
    throw Error("Simulator::run: expected " + std::to_string(inputs.size()) +
                " input words, got " + std::to_string(input_words.size()));
  }
  if (fault && fault->gate >= nl_.gate_count()) {
    throw Error("Simulator::run: fault gate out of range");
  }

  std::vector<std::uint64_t> value(nl_.gate_count(), 0);
  std::size_t next_input = 0;
  for (GateId id = 0; id < nl_.gate_count(); ++id) {
    const Gate& g = nl_.gate(id);
    std::uint64_t v = 0;
    switch (g.kind) {
      case GateKind::kConst0: v = 0; break;
      case GateKind::kConst1: v = ~0ULL; break;
      case GateKind::kInput: v = input_words[next_input++]; break;
      case GateKind::kBuf: v = value[g.fanin0]; break;
      case GateKind::kNot: v = ~value[g.fanin0]; break;
      case GateKind::kAnd: v = value[g.fanin0] & value[g.fanin1]; break;
      case GateKind::kOr: v = value[g.fanin0] | value[g.fanin1]; break;
      case GateKind::kNand: v = ~(value[g.fanin0] & value[g.fanin1]); break;
      case GateKind::kNor: v = ~(value[g.fanin0] | value[g.fanin1]); break;
      case GateKind::kXor: v = value[g.fanin0] ^ value[g.fanin1]; break;
      case GateKind::kXnor: v = ~(value[g.fanin0] ^ value[g.fanin1]); break;
    }
    if (fault && fault->gate == id) v ^= fault->lane_mask;
    value[id] = v;
  }
  return value;
}

std::vector<std::uint64_t> Simulator::output_words(
    const std::vector<std::uint64_t>& gate_words) const {
  if (gate_words.size() != nl_.gate_count()) {
    throw Error("output_words: gate word vector has wrong size");
  }
  std::vector<std::uint64_t> out;
  for (GateId id : nl_.output_bits()) out.push_back(gate_words[id]);
  return out;
}

std::vector<std::uint64_t> Simulator::run_scalar(
    const std::vector<std::uint64_t>& bus_values) const {
  const auto& buses = nl_.input_buses();
  if (bus_values.size() != buses.size()) {
    throw Error("run_scalar: expected " + std::to_string(buses.size()) +
                " bus values, got " + std::to_string(bus_values.size()));
  }

  // Spread the scalar bus values onto the flat input-bit order. Input buses
  // are the only way inputs are created by the circuit generators, so every
  // input bit belongs to exactly one bus.
  std::vector<std::uint64_t> input_words(nl_.input_bits().size(), 0);
  std::size_t flat = 0;
  for (std::size_t b = 0; b < buses.size(); ++b) {
    for (std::size_t i = 0; i < buses[b].bits.size(); ++i) {
      input_words[flat++] = (bus_values[b] >> i) & 1ULL ? ~0ULL : 0ULL;
    }
  }
  if (flat != input_words.size()) {
    throw Error("run_scalar: netlist has input bits outside of buses");
  }

  auto words = run(input_words);
  std::vector<std::uint64_t> results;
  for (const Bus& bus : nl_.output_buses()) {
    if (bus.bits.size() > 64) throw Error("run_scalar: bus wider than 64");
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bus.bits.size(); ++i) {
      v |= (words[bus.bits[i]] & 1ULL) << i;
    }
    results.push_back(v);
  }
  return results;
}

}  // namespace rchls::netlist

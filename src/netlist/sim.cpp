#include "netlist/sim.hpp"

#include "util/error.hpp"

namespace rchls::netlist {

void eval_netlist(const Netlist& nl,
                  const std::vector<std::uint64_t>& input_words,
                  std::optional<Fault> fault,
                  std::vector<std::uint64_t>& values) {
  const auto& inputs = nl.input_bits();
  if (input_words.size() != inputs.size()) {
    throw Error("eval_netlist: expected " + std::to_string(inputs.size()) +
                " input words, got " + std::to_string(input_words.size()));
  }
  if (fault && fault->gate >= nl.gate_count()) {
    throw Error("eval_netlist: fault gate out of range");
  }

  values.resize(nl.gate_count());
  std::uint64_t* value = values.data();
  std::size_t next_input = 0;
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    const Gate& g = nl.gates()[id];
    std::uint64_t v = 0;
    switch (g.kind) {
      case GateKind::kConst0: v = 0; break;
      case GateKind::kConst1: v = ~0ULL; break;
      case GateKind::kInput: v = input_words[next_input++]; break;
      case GateKind::kBuf: v = value[g.fanin0]; break;
      case GateKind::kNot: v = ~value[g.fanin0]; break;
      case GateKind::kAnd: v = value[g.fanin0] & value[g.fanin1]; break;
      case GateKind::kOr: v = value[g.fanin0] | value[g.fanin1]; break;
      case GateKind::kNand: v = ~(value[g.fanin0] & value[g.fanin1]); break;
      case GateKind::kNor: v = ~(value[g.fanin0] | value[g.fanin1]); break;
      case GateKind::kXor: v = value[g.fanin0] ^ value[g.fanin1]; break;
      case GateKind::kXnor: v = ~(value[g.fanin0] ^ value[g.fanin1]); break;
    }
    if (fault && fault->gate == id) v ^= fault->lane_mask;
    value[id] = v;
  }
}

Simulator::Simulator(const Netlist& nl)
    : nl_(nl), output_bits_(nl.output_bits()) {
  nl_.validate();
}

const std::vector<std::uint64_t>& Simulator::eval(
    const std::vector<std::uint64_t>& input_words,
    std::optional<Fault> fault) {
  eval_netlist(nl_, input_words, fault, values_);
  return values_;
}

void Simulator::pack_outputs(std::vector<std::uint64_t>& out) const {
  if (values_.size() != nl_.gate_count()) {
    throw Error("pack_outputs: no evaluation in the context yet");
  }
  out.resize(output_bits_.size());
  for (std::size_t i = 0; i < output_bits_.size(); ++i) {
    out[i] = values_[output_bits_[i]];
  }
}

std::vector<std::uint64_t> Simulator::run(
    const std::vector<std::uint64_t>& input_words,
    std::optional<Fault> fault) {
  return eval(input_words, fault);  // copies the context out
}

std::vector<std::uint64_t> Simulator::output_words(
    const std::vector<std::uint64_t>& gate_words) const {
  if (gate_words.size() != nl_.gate_count()) {
    throw Error("output_words: gate word vector has wrong size");
  }
  std::vector<std::uint64_t> out;
  out.reserve(output_bits_.size());
  for (GateId id : output_bits_) out.push_back(gate_words[id]);
  return out;
}

std::vector<std::uint64_t> Simulator::run_scalar(
    const std::vector<std::uint64_t>& bus_values) {
  const auto& buses = nl_.input_buses();
  if (bus_values.size() != buses.size()) {
    throw Error("run_scalar: expected " + std::to_string(buses.size()) +
                " bus values, got " + std::to_string(bus_values.size()));
  }

  // Spread the scalar bus values onto the flat input-bit order. Input buses
  // are the only way inputs are created by the circuit generators, so every
  // input bit belongs to exactly one bus.
  std::vector<std::uint64_t> input_words(nl_.input_bits().size(), 0);
  std::size_t flat = 0;
  for (std::size_t b = 0; b < buses.size(); ++b) {
    for (std::size_t i = 0; i < buses[b].bits.size(); ++i) {
      input_words[flat++] = (bus_values[b] >> i) & 1ULL ? ~0ULL : 0ULL;
    }
  }
  if (flat != input_words.size()) {
    throw Error("run_scalar: netlist has input bits outside of buses");
  }

  const auto& words = eval(input_words);
  std::vector<std::uint64_t> results;
  for (const Bus& bus : nl_.output_buses()) {
    if (bus.bits.size() > 64) throw Error("run_scalar: bus wider than 64");
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bus.bits.size(); ++i) {
      v |= (words[bus.bits[i]] & 1ULL) << i;
    }
    results.push_back(v);
  }
  return results;
}

}  // namespace rchls::netlist

// remote::Fleet -- a connection-pooling multi-endpoint client over the
// serve wire protocol: the dispatch half of the remote executor
// (remote/executor.hpp), usable on its own by anything that wants
// "send this request to whichever daemon answers fastest".
//
// A Fleet is configured with N endpoints -- `rchls serve` daemons
// reachable over a unix socket path or a host:port TCP address -- and
// routes each call() to one of them:
//
//  * selection is LEAST-OUTSTANDING (the endpoint with the fewest
//    requests currently in flight), ties broken round-robin, so a slow
//    or busy daemon organically receives less work than a fast one;
//  * each endpoint keeps a pool of idle connections that calls check
//    out and return, so a sweep's slices reuse warm sockets instead of
//    reconnecting per slice;
//  * every attempt runs under the per-request deadline
//    (FleetOptions::timeout_ms); a transport failure -- connect
//    refused, timeout, mid-reply disconnect -- burns the connection,
//    marks the endpoint, and RE-DISPATCHES the request to another
//    healthy endpoint (avoiding the one that just failed when any
//    alternative exists), up to FleetOptions::retries times;
//  * an endpoint that fails quarantine_after consecutive times is
//    QUARANTINED: taken out of selection for the Fleet's lifetime
//    (fleets live for one run; a recovered daemon is picked up by the
//    next run). A success resets the endpoint's consecutive count.
//
// When every endpoint is quarantined or refusing, call() throws
// FleetDownError -- the signal remote::RemoteExecutor uses to degrade
// gracefully to local execution. Server-ANSWERED error envelopes are
// different: the daemon is alive and has spoken, so they re-raise as
// plain Error without burning retries -- except capacity refusals
// (queue overflow / connection cap, marked "retry later" on the wire),
// which are retried like transport failures since another endpoint may
// have room.
//
// Determinism: a Fleet never changes WHAT is computed, only WHERE. The
// wire protocol's results are byte-identical across daemons (same
// engines, same encoder), so routing -- and failover mid-run -- is
// invisible in the output. Tests assert byte-identity at endpoints
// 1/2/4 including a mid-run daemon kill.
//
// Thread-safe: slices dispatch call() concurrently from many threads.
// The lock guards bookkeeping only; socket I/O happens outside it, so
// calls overlap across (and within) endpoints.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/request.hpp"
#include "api/result.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/error.hpp"

namespace rchls::remote {

/// Thrown by Fleet::call when no endpoint is selectable (all
/// quarantined) -- the "degrade to local" signal, distinct from a
/// single request exhausting its retries (plain Error).
class FleetDownError : public Error {
 public:
  explicit FleetDownError(const std::string& what) : Error(what) {}
};

/// One parsed endpoint spec. The CLI grammar (--endpoints a,b,c): a
/// spec containing ':' but no '/' is host:port TCP; anything else is a
/// unix socket path ("./sock" names a path with a colon-free basename;
/// "localhost:7070" names a port).
struct Endpoint {
  std::string spec;       ///< the original text, for display
  std::string unix_path;  ///< non-empty for unix endpoints
  std::string host;       ///< non-empty for TCP endpoints
  int port = -1;
};

/// Parses one spec (see Endpoint). Throws rchls::Error on an empty
/// spec or an unparseable/out-of-range port.
Endpoint parse_endpoint(const std::string& spec);

/// Splits a comma-separated --endpoints value and parses every entry.
std::vector<Endpoint> parse_endpoints(const std::string& list);

struct FleetOptions {
  std::vector<Endpoint> endpoints;  ///< at least one
  /// Per-attempt reply deadline; 0 = wait forever (then only
  /// connection failures trigger failover).
  int timeout_ms = 0;
  /// Re-dispatch budget per request after a transport failure.
  int retries = 3;
  /// Consecutive transport failures that quarantine an endpoint.
  int quarantine_after = 2;
  /// Test seam: runs just before attempt dispatch as
  /// (endpoint index, fleet-wide dispatch counter). The failover test
  /// kills a daemon from inside this hook to pin down WHEN it dies.
  std::function<void(std::size_t, std::uint64_t)> before_send;
};

/// Per-endpoint lifetime counters (sampled atomically under the fleet
/// lock; `latency_ms` accumulates successful round-trip time).
struct EndpointStats {
  std::string spec;
  std::uint64_t dispatched = 0;  ///< attempts routed here
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  ///< transport failures
  std::uint64_t outstanding = 0;
  bool quarantined = false;
  double latency_ms = 0.0;
  std::string last_error;  ///< most recent transport failure text
};

class Fleet {
 public:
  /// Validates the options; does NOT connect (connections are opened
  /// lazily per call, so a dead endpoint costs its first dispatch, not
  /// construction).
  explicit Fleet(FleetOptions options);

  /// Round-trips one request through the fleet (see the header for the
  /// selection/retry/quarantine walk). Throws FleetDownError when no
  /// endpoint is selectable, plain rchls::Error when the request
  /// exhausted its retries or the server answered a non-capacity error.
  api::Result call(const api::Request& req);

  std::size_t endpoint_count() const { return options_.endpoints.size(); }
  std::vector<EndpointStats> stats() const;

  /// `rchls fleet status`: asks every endpoint for its daemon counters
  /// over a fresh connection (nullopt for endpoints that do not
  /// answer). Does not touch quarantine state.
  std::vector<std::optional<serve::DaemonStats>> probe_stats() const;

 private:
  struct EndpointState {
    Endpoint ep;
    std::vector<serve::Client> idle;  ///< pooled warm connections
    std::uint64_t outstanding = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    int consecutive_failures = 0;
    bool quarantined = false;
    double latency_ms = 0.0;
    std::string last_error;
  };

  /// Selects the least-outstanding healthy endpoint (ties round-robin),
  /// preferring one different from `avoid` when possible; -1 = none.
  int pick_endpoint(int avoid);
  serve::Client connect(const Endpoint& ep) const;

  FleetOptions options_;
  mutable std::mutex mu_;  ///< guards states_ bookkeeping + rr_
  std::vector<EndpointState> states_;
  std::uint64_t rr_ = 0;
  std::uint64_t dispatch_counter_ = 0;
};

}  // namespace rchls::remote

#include "remote/fleet.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <utility>

#include "api/wire.hpp"

namespace rchls::remote {

Endpoint parse_endpoint(const std::string& spec) {
  if (spec.empty()) throw Error("remote: empty endpoint spec");
  Endpoint ep;
  ep.spec = spec;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos && spec.find('/') == std::string::npos) {
    const std::string host = spec.substr(0, colon);
    const std::string port_text = spec.substr(colon + 1);
    int port = -1;
    auto [end, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (host.empty() || ec != std::errc{} ||
        end != port_text.data() + port_text.size() || port < 0 ||
        port > 65535) {
      throw Error("remote: endpoint '" + spec +
                  "' is not host:port (port must be 0..65535)");
    }
    ep.host = host;
    ep.port = port;
  } else {
    ep.unix_path = spec;
  }
  return ep;
}

std::vector<Endpoint> parse_endpoints(const std::string& list) {
  std::vector<Endpoint> out;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t comma = list.find(',', begin);
    if (comma == std::string::npos) comma = list.size();
    std::string spec = list.substr(begin, comma - begin);
    if (!spec.empty()) out.push_back(parse_endpoint(spec));
    begin = comma + 1;
  }
  if (out.empty()) {
    throw Error("remote: --endpoints needs at least one endpoint");
  }
  return out;
}

Fleet::Fleet(FleetOptions options) : options_(std::move(options)) {
  if (options_.endpoints.empty()) {
    throw Error("remote: a fleet needs at least one endpoint");
  }
  if (options_.retries < 0) {
    throw Error("remote: --retries cannot be negative");
  }
  if (options_.quarantine_after < 1) {
    throw Error("remote: quarantine_after must be at least 1");
  }
  states_.resize(options_.endpoints.size());
  for (std::size_t i = 0; i < options_.endpoints.size(); ++i) {
    states_[i].ep = options_.endpoints[i];
  }
}

serve::Client Fleet::connect(const Endpoint& ep) const {
  serve::ClientOptions copts;
  copts.timeout_ms = options_.timeout_ms;
  copts.retries = 0;  // the fleet owns retry -- across endpoints
  if (!ep.unix_path.empty()) {
    return serve::Client::connect_unix(ep.unix_path, copts);
  }
  return serve::Client::connect_host(ep.host, ep.port, copts);
}

int Fleet::pick_endpoint(int avoid) {
  // Least outstanding wins; ties resolve round-robin so equal endpoints
  // alternate instead of hammering index 0. `avoid` (the endpoint that
  // just failed this request) only loses ties it would otherwise win --
  // when it is the lone healthy endpoint it is still picked.
  int best = -1;
  for (std::size_t off = 0; off < states_.size(); ++off) {
    const std::size_t i = (rr_ + off) % states_.size();
    if (states_[i].quarantined) continue;
    if (best < 0 ||
        states_[i].outstanding <
            states_[static_cast<std::size_t>(best)].outstanding ||
        (states_[i].outstanding ==
             states_[static_cast<std::size_t>(best)].outstanding &&
         best == avoid && static_cast<int>(i) != avoid)) {
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) rr_ = static_cast<std::uint64_t>(best) + 1;
  return best;
}

api::Result Fleet::call(const api::Request& req) {
  const std::string payload = api::wire::encode(req);
  const int attempts = options_.retries + 1;
  std::string last_error;
  int last_idx = -1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    int idx;
    std::uint64_t dispatch_no;
    std::optional<serve::Client> client;
    {
      std::lock_guard<std::mutex> lock(mu_);
      idx = pick_endpoint(last_idx);
      if (idx < 0) {
        throw FleetDownError(
            "remote: every endpoint is quarantined" +
            (last_error.empty() ? std::string() : " (last: " + last_error +
                                                      ")"));
      }
      EndpointState& st = states_[static_cast<std::size_t>(idx)];
      ++st.outstanding;
      ++st.dispatched;
      dispatch_no = dispatch_counter_++;
      if (!st.idle.empty()) {
        client.emplace(std::move(st.idle.back()));
        st.idle.pop_back();
      }
    }
    last_idx = idx;
    if (options_.before_send) {
      options_.before_send(static_cast<std::size_t>(idx), dispatch_no);
    }
    EndpointState& st = states_[static_cast<std::size_t>(idx)];

    // Classify the attempt OUTSIDE the try block so a deterministic
    // server-answered error cannot be mistaken for a transport failure
    // (and wastefully retried elsewhere -- it would fail identically).
    std::optional<api::Result> result;
    std::string server_error;  // non-retryable, daemon is healthy
    std::string transport_error;
    bool capacity_refusal = false;
    double ms = 0.0;
    try {
      if (!client) client.emplace(connect(st.ep));
      const auto t0 = std::chrono::steady_clock::now();
      const std::string raw = client->call_raw(payload);
      ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
      serve::Reply reply = serve::decode_reply(raw);
      if (reply.ok()) {
        if (std::string(api::wire::kind_of(*reply.result)) !=
            api::wire::kind_of(req)) {
          // A daemon answering the wrong kind is unhealthy; retry
          // elsewhere like any transport failure.
          transport_error = std::string("answered kind '") +
                            api::wire::kind_of(*reply.result) + "' for a '" +
                            api::wire::kind_of(req) + "' request";
        } else {
          result = std::move(reply.result);
        }
      } else if (reply.error.find("retry later") != std::string::npos) {
        // Capacity refusal (queue overflow / connection cap): the
        // daemon is healthy but full; another endpoint may have room.
        capacity_refusal = true;
        last_error = "endpoint '" + st.ep.spec + "': " + reply.error;
      } else {
        server_error = reply.error;
      }
    } catch (const Error& e) {
      transport_error = e.what();
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      --st.outstanding;
      if (!transport_error.empty()) {
        // Burn the connection (a timed-out stream may still deliver a
        // stale reply) and mark the endpoint.
        ++st.failed;
        st.last_error = transport_error;
        last_error = "endpoint '" + st.ep.spec + "': " + transport_error;
        if (++st.consecutive_failures >= options_.quarantine_after &&
            !st.quarantined) {
          st.quarantined = true;
          st.idle.clear();
        }
      } else {
        // A real answer of any shape: the daemon is alive, keep its
        // connection warm. Capacity refusals do not count as completed
        // work (and do not reset another failure streak either way --
        // the daemon answered, so reset is right).
        st.consecutive_failures = 0;
        st.idle.push_back(std::move(*client));
        if (!capacity_refusal) {
          ++st.completed;
          st.latency_ms += ms;
        }
      }
    }

    if (result) return std::move(*result);
    if (!server_error.empty()) throw Error("serve: " + server_error);
    // Transport failure or capacity refusal: next attempt.
  }
  {
    // The last attempt's failure may have quarantined the last healthy
    // endpoint; that is still "the whole fleet is down", and the caller
    // must get the degrade-to-local signal rather than a hard failure.
    std::lock_guard<std::mutex> lock(mu_);
    const bool any_healthy =
        std::any_of(states_.begin(), states_.end(),
                    [](const EndpointState& st) { return !st.quarantined; });
    if (!any_healthy) {
      throw FleetDownError("remote: every endpoint is quarantined (last: " +
                           last_error + ")");
    }
  }
  throw Error("remote: request failed after " + std::to_string(attempts) +
              " attempts: " + last_error);
}

std::vector<EndpointStats> Fleet::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EndpointStats> out;
  out.reserve(states_.size());
  for (const EndpointState& st : states_) {
    EndpointStats s;
    s.spec = st.ep.spec;
    s.dispatched = st.dispatched;
    s.completed = st.completed;
    s.failed = st.failed;
    s.outstanding = st.outstanding;
    s.quarantined = st.quarantined;
    s.latency_ms = st.latency_ms;
    s.last_error = st.last_error;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::optional<serve::DaemonStats>> Fleet::probe_stats() const {
  std::vector<std::optional<serve::DaemonStats>> out;
  out.reserve(options_.endpoints.size());
  for (const Endpoint& ep : options_.endpoints) {
    try {
      serve::Client client = connect(ep);
      out.push_back(client.call_stats());
    } catch (const Error&) {
      out.push_back(std::nullopt);
    }
  }
  return out;
}

}  // namespace rchls::remote

// remote::RemoteExecutor -- the network rung of the execution seam:
// api::Executor over a remote::Fleet of `rchls serve` daemons.
//
// Where SubprocessExecutor (api/subprocess.hpp) fans sharded work out
// to freshly spawned worker PROCESSES, RemoteExecutor fans it out to
// RESIDENT daemons over the framed wire protocol -- paying a socket
// round-trip per slice instead of a process spawn, and hitting each
// daemon's warm memory/disk caches. Both use the exact same slicing
// and merging (api/sharding.hpp), which is what makes the results
// byte-identical to LocalExecutor's:
//
//  * Sweep/Grid requests shard into balanced contiguous slices
//    (RemoteOptions::slices, default 2 per endpoint so the fleet can
//    rebalance around a slow daemon), each slice dispatched as one
//    wire request through the fleet's least-outstanding routing;
//  * scenario batches (run_batch, reached via Session::run_batch)
//    dispatch every action concurrently across the fleet, results
//    index-aligned;
//  * merging concatenates slice results in slice order -- never
//    completion order -- so the output is the unsharded cell order.
//
// Failure ladder, per slice: the fleet already retried across healthy
// endpoints (remote/fleet.hpp); if it reports the whole fleet down
// (FleetDownError), the slice DEGRADES to an in-process LocalExecutor
// run (serialized -- the engines own the parallelism) so a sweep
// finishes correctly, just slower, with every daemon gone. Any other
// error aborts with the first failing slice's message, like
// SubprocessExecutor's first-failing-cell contract.
//
// Single-caller like every Executor (confine an instance to one
// thread); the slice fan-out threads inside are an implementation
// detail, coordinated through the thread-safe Fleet.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "api/executor.hpp"
#include "remote/fleet.hpp"

namespace rchls::remote {

struct RemoteOptions {
  FleetOptions fleet;
  /// Slice count for Sweep/Grid sharding; 0 = 2 per endpoint (shard_*
  /// clamps to the cell count either way).
  std::size_t slices = 0;
  /// Concurrent in-flight dispatches; 0 = 4 per endpoint.
  std::size_t max_inflight = 0;
};

class RemoteExecutor final : public api::Executor {
 public:
  explicit RemoteExecutor(RemoteOptions options);

  api::FindDesignResult run(const api::FindDesignRequest& req) override;
  api::SweepResult run(const api::SweepRequest& req) override;
  api::GridResult run(const api::GridRequest& req) override;
  api::InjectResult run(const api::InjectRequest& req) override;
  api::RankGatesResult run(const api::RankGatesRequest& req) override;
  api::StaResult run(const api::StaRequest& req) override;

  bool supports_batching() const override { return true; }
  std::vector<api::Result> run_batch(
      const std::vector<api::Request>& reqs) override;

  Fleet& fleet() { return fleet_; }
  /// Slices that fell back to in-process execution because the whole
  /// fleet was down (0 on a healthy run; tests assert both ways).
  std::uint64_t local_fallbacks() const {
    return local_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  /// One request through the fleet, degrading to local when the fleet
  /// is down.
  api::Result dispatch(const api::Request& req);
  /// Concurrent index-aligned fan-out of `reqs`; throws BatchItemError
  /// with the first failing index.
  std::vector<api::Result> dispatch_all(const std::vector<api::Request>& reqs);

  RemoteOptions options_;
  Fleet fleet_;
  std::mutex local_mu_;  ///< serializes fallback runs (engines own the pool)
  api::LocalExecutor local_;
  std::atomic<std::uint64_t> local_fallbacks_{0};
};

}  // namespace rchls::remote

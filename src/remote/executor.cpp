#include "remote/executor.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "api/sharding.hpp"

namespace rchls::remote {

RemoteExecutor::RemoteExecutor(RemoteOptions options)
    : options_(std::move(options)), fleet_(options_.fleet) {
  if (options_.slices == 0) {
    options_.slices = 2 * fleet_.endpoint_count();
  }
  if (options_.max_inflight == 0) {
    options_.max_inflight = 4 * fleet_.endpoint_count();
  }
}

api::Result RemoteExecutor::dispatch(const api::Request& req) {
  try {
    return fleet_.call(req);
  } catch (const FleetDownError&) {
    // Graceful degradation: the whole fleet is gone, so this request
    // runs in-process. Serialized -- the engines parallelize internally
    // and results do not depend on where they run, so correctness (and
    // byte-identity) survive the daemons.
    local_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(local_mu_);
    // Through the base so the typed overloads do not hide the variant
    // dispatcher.
    api::Executor& local = local_;
    return local.run(req);
  }
}

std::vector<api::Result> RemoteExecutor::dispatch_all(
    const std::vector<api::Request>& reqs) {
  std::vector<api::Result> results(reqs.size());
  std::vector<std::string> errors(reqs.size());

  // Static index striding, like SubprocessExecutor::run_cells: slot t
  // handles requests t, t+T, t+2T... and results land BY INDEX, so the
  // caller's merge order is the request order, never completion order.
  auto drive = [&](std::size_t t, std::size_t stride) {
    for (std::size_t i = t; i < reqs.size(); i += stride) {
      try {
        results[i] = dispatch(reqs[i]);
      } catch (const Error& e) {
        errors[i] = e.what();
      }
    }
  };

  const std::size_t threads =
      std::min(options_.max_inflight, reqs.size());
  if (threads <= 1) {
    drive(0, 1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back(drive, t, threads);
    }
    for (auto& th : pool) th.join();
  }

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (!errors[i].empty()) throw api::BatchItemError(i, errors[i]);
  }
  return results;
}

api::FindDesignResult RemoteExecutor::run(const api::FindDesignRequest& req) {
  return std::get<api::FindDesignResult>(dispatch(api::Request(req)));
}

api::SweepResult RemoteExecutor::run(const api::SweepRequest& req) {
  std::vector<api::Request> chunks = api::shard_sweep(req, options_.slices);
  std::vector<api::Result> parts;
  try {
    parts = dispatch_all(chunks);
  } catch (const api::BatchItemError& e) {
    throw Error("slice " + std::to_string(e.index()) + " of " +
                std::to_string(chunks.size()) + " failed: " + e.what());
  }
  return api::merge_sweep(req, parts);
}

api::GridResult RemoteExecutor::run(const api::GridRequest& req) {
  std::vector<api::Request> chunks = api::shard_grid(req, options_.slices);
  std::vector<api::Result> parts;
  try {
    parts = dispatch_all(chunks);
  } catch (const api::BatchItemError& e) {
    throw Error("slice " + std::to_string(e.index()) + " of " +
                std::to_string(chunks.size()) + " failed: " + e.what());
  }
  return api::merge_grid(req, parts);
}

api::InjectResult RemoteExecutor::run(const api::InjectRequest& req) {
  return std::get<api::InjectResult>(dispatch(api::Request(req)));
}

api::RankGatesResult RemoteExecutor::run(const api::RankGatesRequest& req) {
  return std::get<api::RankGatesResult>(dispatch(api::Request(req)));
}

api::StaResult RemoteExecutor::run(const api::StaRequest& req) {
  return std::get<api::StaResult>(dispatch(api::Request(req)));
}

std::vector<api::Result> RemoteExecutor::run_batch(
    const std::vector<api::Request>& reqs) {
  return dispatch_all(reqs);
}

}  // namespace rchls::remote

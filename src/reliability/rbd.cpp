#include "reliability/rbd.hpp"

#include <sstream>

#include "util/error.hpp"

namespace rchls::reliability {

Block Block::component(std::string name, double reliability) {
  if (!(reliability >= 0.0) || !(reliability <= 1.0)) {
    throw Error("Block::component: reliability must lie in [0, 1]");
  }
  Block b;
  b.kind_ = Kind::kComponent;
  b.name_ = std::move(name);
  b.reliability_ = reliability;
  return b;
}

Block Block::serial(std::vector<Block> children) {
  if (children.empty()) throw Error("Block::serial: needs children");
  Block b;
  b.kind_ = Kind::kSerial;
  b.children_ = std::move(children);
  return b;
}

Block Block::parallel(std::vector<Block> children) {
  if (children.empty()) throw Error("Block::parallel: needs children");
  Block b;
  b.kind_ = Kind::kParallel;
  b.children_ = std::move(children);
  return b;
}

Block Block::k_of_n(int k, std::vector<Block> children) {
  if (children.empty()) throw Error("Block::k_of_n: needs children");
  if (k < 1 || static_cast<std::size_t>(k) > children.size()) {
    throw Error("Block::k_of_n: need 1 <= k <= n");
  }
  Block b;
  b.kind_ = Kind::kKofN;
  b.k_ = k;
  b.children_ = std::move(children);
  return b;
}

double Block::reliability() const {
  switch (kind_) {
    case Kind::kComponent:
      return reliability_;
    case Kind::kSerial: {
      double r = 1.0;
      for (const Block& c : children_) r *= c.reliability();
      return r;
    }
    case Kind::kParallel: {
      double fail = 1.0;
      for (const Block& c : children_) fail *= 1.0 - c.reliability();
      return 1.0 - fail;
    }
    case Kind::kKofN: {
      // dp[j]: probability that exactly j of the children processed so
      // far are working.
      std::vector<double> dp{1.0};
      for (const Block& c : children_) {
        double r = c.reliability();
        std::vector<double> next(dp.size() + 1, 0.0);
        for (std::size_t j = 0; j < dp.size(); ++j) {
          next[j] += dp[j] * (1.0 - r);
          next[j + 1] += dp[j] * r;
        }
        dp = std::move(next);
      }
      double sum = 0.0;
      for (std::size_t j = static_cast<std::size_t>(k_); j < dp.size();
           ++j) {
        sum += dp[j];
      }
      return sum;
    }
  }
  throw Error("Block::reliability: corrupt block");
}

std::size_t Block::component_count() const {
  if (kind_ == Kind::kComponent) return 1;
  std::size_t n = 0;
  for (const Block& c : children_) n += c.component_count();
  return n;
}

std::string Block::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kComponent:
      os << name_ << "[" << reliability_ << "]";
      return os.str();
    case Kind::kSerial:
      os << "serial(";
      break;
    case Kind::kParallel:
      os << "parallel(";
      break;
    case Kind::kKofN:
      os << k_ << "of" << children_.size() << "(";
      break;
  }
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i) os << ", ";
    os << children_[i].to_string();
  }
  os << ")";
  return os.str();
}

}  // namespace rchls::reliability

// Reliability block diagrams (RBDs): composable serial / parallel /
// k-of-n system models (paper Section 5, Figs. 3-4 generalized).
//
// The synthesis engines only need the flat product and NMR formulas in
// algebra.hpp; this tree-structured evaluator serves the analysis side --
// e.g. modeling a data path whose units are individually replicated, or
// answering "what if only the multipliers were TMR'd" questions without
// re-running synthesis.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace rchls::reliability {

/// An immutable reliability block: either a leaf component or a serial /
/// parallel / k-of-n composition of sub-blocks.
class Block {
 public:
  /// Leaf with fixed reliability.
  static Block component(std::string name, double reliability);
  /// All children must work.
  static Block serial(std::vector<Block> children);
  /// At least one child must work.
  static Block parallel(std::vector<Block> children);
  /// At least k children must work. Children may have distinct
  /// reliabilities (evaluated exactly by dynamic programming over the
  /// children, not the identical-module binomial shortcut).
  static Block k_of_n(int k, std::vector<Block> children);

  /// System reliability, assuming independent failures.
  double reliability() const;

  /// Number of leaf components.
  std::size_t component_count() const;

  /// Single-line structural rendering, e.g.
  /// "serial(adder[0.999], 2of3(m, m, m))".
  std::string to_string() const;

 private:
  enum class Kind { kComponent, kSerial, kParallel, kKofN };

  Block() = default;

  Kind kind_ = Kind::kComponent;
  std::string name_;
  double reliability_ = 1.0;
  int k_ = 1;
  std::vector<Block> children_;
};

}  // namespace rchls::reliability

// Reliability algebra of paper Section 5: serial/parallel block models,
// k-of-N majority systems, and the NMR special cases the experiments use.
//
// Conventions: a reliability is a probability in [0, 1]. Functions throw
// rchls::Error on out-of-range inputs rather than clamping silently.
#pragma once

#include <span>

namespace rchls::reliability {

/// Serial model (Fig. 3(a)): every component must succeed. R = ∏ Ri.
/// The paper adopts this product for *all* compositions in HLS, including
/// structurally parallel ones, because a data path only computes correctly
/// if every operation does (Section 5).
double serial(std::span<const double> rs);

/// Classic redundant-parallel model (Fig. 3(b)): one success suffices.
/// R = 1 - ∏ (1 - Ri). Used for replicated modules, not for data-path
/// composition.
double parallel(std::span<const double> rs);

/// k-of-n system of identical modules: Σ_{i=k..n} C(n,i) R^i (1-R)^{n-i}.
double k_of_n(int n, int k, double r);

/// N-modular redundancy with majority voting (paper: N = 2k - 1):
/// nmr(N, R) = k_of_n(N, (N+1)/2, R). N must be odd and >= 1; N == 1
/// degenerates to R itself.
double nmr(int n, double r);

/// Duplication with detection + rollback recovery (paper Section 5): the
/// pair succeeds unless both copies fail, R = 1 - (1 - R)^2.
double duplex_with_recovery(double r);

/// Reliability of one operation executed on a module replicated
/// `copies` times: 1 copy -> R, 2 copies -> duplex_with_recovery, odd
/// copies >= 3 -> majority NMR. Even copies > 2 are rejected (no majority
/// exists; the paper's schemes never produce them).
double modular_redundancy(double r, int copies);

/// Exact binomial coefficient as double (n <= 62 guards overflow).
double binomial(int n, int k);

}  // namespace rchls::reliability

#include "reliability/algebra.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rchls::reliability {

namespace {

void check_prob(double r, const char* who) {
  if (!(r >= 0.0) || !(r <= 1.0)) {
    throw Error(std::string(who) + ": reliability must lie in [0, 1]");
  }
}

}  // namespace

double serial(std::span<const double> rs) {
  double prod = 1.0;
  for (double r : rs) {
    check_prob(r, "serial");
    prod *= r;
  }
  return prod;
}

double parallel(std::span<const double> rs) {
  double fail = 1.0;
  for (double r : rs) {
    check_prob(r, "parallel");
    fail *= 1.0 - r;
  }
  return 1.0 - fail;
}

double binomial(int n, int k) {
  if (n < 0 || k < 0 || k > n) throw Error("binomial: need 0 <= k <= n");
  if (n > 62) throw Error("binomial: n too large for exact evaluation");
  double c = 1.0;
  // Multiplicative form keeps intermediate values integral.
  for (int i = 1; i <= k; ++i) {
    c = c * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return std::round(c);
}

double k_of_n(int n, int k, double r) {
  check_prob(r, "k_of_n");
  if (n < 1 || k < 1 || k > n) throw Error("k_of_n: need 1 <= k <= n");
  double sum = 0.0;
  for (int i = k; i <= n; ++i) {
    sum += binomial(n, i) * std::pow(r, i) * std::pow(1.0 - r, n - i);
  }
  return sum;
}

double nmr(int n, double r) {
  if (n < 1 || n % 2 == 0) throw Error("nmr: N must be odd and >= 1");
  if (n == 1) {
    check_prob(r, "nmr");
    return r;
  }
  return k_of_n(n, (n + 1) / 2, r);
}

double duplex_with_recovery(double r) {
  check_prob(r, "duplex_with_recovery");
  return 1.0 - (1.0 - r) * (1.0 - r);
}

double modular_redundancy(double r, int copies) {
  if (copies < 1) throw Error("modular_redundancy: copies must be >= 1");
  if (copies == 1) {
    check_prob(r, "modular_redundancy");
    return r;
  }
  if (copies == 2) return duplex_with_recovery(r);
  if (copies % 2 == 0) {
    throw Error("modular_redundancy: even copy counts > 2 have no majority");
  }
  return nmr(copies, r);
}

}  // namespace rchls::reliability

// The HLS benchmark suite used in the paper's evaluation (Section 7):
//
//  * fig4_example -- the six-adder data-flow graph of paper Fig. 4(a).
//  * fir16        -- 16-point symmetric FIR filter [3]: 8 pre-adders,
//                    8 coefficient multiplies, 7-adder accumulation chain
//                    (23 operations; reliability values in the paper's
//                    Figs. 7/8 and Table 2(a) are exact products over
//                    these 23 operations).
//  * ewf          -- fifth-order elliptic wave filter, 34 operations
//                    (26 add, 8 mul). The paper's exact EW instance is
//                    unpublished (its numbers imply a 25-op variant); this
//                    is a documented ladder reconstruction preserving the
//                    standard benchmark's aggregate character. See
//                    DESIGN.md "Substitutions".
//  * diffeq       -- the HAL differential-equation solver (HLSynth92):
//                    11 operations (6 mul, 2 sub, 2 add, 1 compare).
//  * ar_lattice   -- AR lattice filter (28 operations; 16 mul, 12 add),
//                    a standard extra benchmark for wider coverage.
//  * fdct         -- 8-point fast DCT butterfly (42 operations; 26
//                    add/sub, 16 mul), the largest graph in the suite.
//  * iir_biquad   -- direct-form-I biquad section (9 operations; 5 mul,
//                    4 add/sub), the smallest realistic filter kernel.
#pragma once

#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace rchls::benchmarks {

dfg::Graph fig4_example();
dfg::Graph fir16();
dfg::Graph ewf();
dfg::Graph diffeq();
dfg::Graph ar_lattice();
dfg::Graph fdct();
dfg::Graph iir_biquad();

/// Names accepted by by_name(), in canonical order.
std::vector<std::string> all_names();

/// Lookup by the names above; throws Error for unknown names.
dfg::Graph by_name(const std::string& name);

}  // namespace rchls::benchmarks

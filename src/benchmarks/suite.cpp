#include "benchmarks/suite.hpp"

#include "util/error.hpp"

namespace rchls::benchmarks {

using dfg::Graph;
using dfg::NodeId;
using dfg::OpType;

Graph fig4_example() {
  Graph g("fig4_example");
  NodeId a = g.add_node("A", OpType::kAdd);
  NodeId b = g.add_node("B", OpType::kAdd);
  NodeId c = g.add_node("C", OpType::kAdd);
  NodeId d = g.add_node("D", OpType::kAdd);
  NodeId e = g.add_node("E", OpType::kAdd);
  NodeId f = g.add_node("F", OpType::kAdd);
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.add_edge(c, d);
  g.add_edge(c, e);
  g.add_edge(d, f);
  g.add_edge(e, f);
  g.validate();
  return g;
}

Graph fir16() {
  Graph g("fir16");
  // Symmetric 16-tap FIR: y = sum_k c_k * (x_k + x_{15-k}).
  std::vector<NodeId> pre;
  std::vector<NodeId> mul;
  for (int k = 1; k <= 8; ++k) {
    pre.push_back(g.add_node("+" + std::to_string(k), OpType::kAdd));
    mul.push_back(g.add_node("*" + std::to_string(k), OpType::kMul));
    g.add_edge(pre.back(), mul.back());
  }
  // Accumulation chain +a..+g, as drawn in paper Fig. 7.
  const char* chain_names[] = {"+a", "+b", "+c", "+d", "+e", "+f", "+g"};
  NodeId acc = g.add_node(chain_names[0], OpType::kAdd);
  g.add_edge(mul[0], acc);
  g.add_edge(mul[1], acc);
  for (int k = 1; k < 7; ++k) {
    NodeId next = g.add_node(chain_names[k], OpType::kAdd);
    g.add_edge(acc, next);
    g.add_edge(mul[static_cast<std::size_t>(k + 1)], next);
    acc = next;
  }
  g.validate();
  return g;
}

Graph ewf() {
  Graph g("ewf");
  // Wave-digital-filter-style ladder reconstruction: an input tree
  // (i1, i2 -> i3), an 11-adder backbone, and four adaptor sections. Each
  // section taps the backbone at b_k (k = 1, 3, 5, 7), multiplies by two
  // coefficients, combines with a section input, and merges back at
  // b_{k+4} -- the same length as the four backbone steps it spans, so
  // sections add parallelism without deepening the graph.
  // 26 adds + 8 muls = 34 ops; unit-delay critical path 13.
  NodeId i1 = g.add_node("i1", OpType::kAdd);
  NodeId i2 = g.add_node("i2", OpType::kAdd);
  NodeId i3 = g.add_node("i3", OpType::kAdd);
  g.add_edge(i1, i3);
  g.add_edge(i2, i3);

  std::vector<NodeId> b;
  for (int k = 1; k <= 11; ++k) {
    b.push_back(g.add_node("b" + std::to_string(k), OpType::kAdd));
    if (k == 1) {
      g.add_edge(i3, b.back());
    } else {
      g.add_edge(b[static_cast<std::size_t>(k - 2)], b.back());
    }
  }

  for (int t = 1; t <= 4; ++t) {
    int k = 2 * t - 1;  // tap positions 1, 3, 5, 7
    NodeId tap = b[static_cast<std::size_t>(k - 1)];
    NodeId m1 = g.add_node("m" + std::to_string(2 * t - 1), OpType::kMul);
    NodeId m2 = g.add_node("m" + std::to_string(2 * t), OpType::kMul);
    NodeId p = g.add_node("p" + std::to_string(t), OpType::kAdd);
    NodeId sa = g.add_node("sa" + std::to_string(t), OpType::kAdd);
    NodeId sb = g.add_node("sb" + std::to_string(t), OpType::kAdd);
    g.add_edge(tap, m1);
    g.add_edge(tap, m2);
    g.add_edge(m1, sa);
    g.add_edge(p, sa);
    g.add_edge(sa, sb);
    g.add_edge(m2, sb);
    g.add_edge(sb, b[static_cast<std::size_t>(k + 3)]);  // merge at b_{k+4}
  }
  g.validate();
  return g;
}

Graph diffeq() {
  Graph g("diffeq");
  // HAL: solve y'' + 3xy' + 3y = 0 by forward Euler.
  //   x1 = x + dx; u1 = u - 3*x*u*dx - 3*y*dx; y1 = y + u*dx; c = x1 < a.
  NodeId m1 = g.add_node("*1", OpType::kMul);  // 3 * x
  NodeId m2 = g.add_node("*2", OpType::kMul);  // u * dx
  NodeId m3 = g.add_node("*3", OpType::kMul);  // (3x) * (u dx)
  NodeId m4 = g.add_node("*4", OpType::kMul);  // 3 * y
  NodeId m5 = g.add_node("*5", OpType::kMul);  // dx * (3y)
  NodeId m6 = g.add_node("*6", OpType::kMul);  // u * dx (for y1)
  NodeId s1 = g.add_node("-1", OpType::kSub);  // u - m3
  NodeId s2 = g.add_node("-2", OpType::kSub);  // s1 - m5 = u1
  NodeId a1 = g.add_node("+1", OpType::kAdd);  // x + dx = x1
  NodeId a2 = g.add_node("+2", OpType::kAdd);  // y + m6 = y1
  NodeId c1 = g.add_node("<1", OpType::kLt);   // x1 < a
  g.add_edge(m1, m3);
  g.add_edge(m2, m3);
  g.add_edge(m3, s1);
  g.add_edge(s1, s2);
  g.add_edge(m4, m5);
  g.add_edge(m5, s2);
  g.add_edge(m6, a2);
  g.add_edge(a1, c1);
  g.validate();
  return g;
}

Graph ar_lattice() {
  Graph g("ar_lattice");
  // Two multiply stages with merging adder trees: 16 mul + 12 add.
  std::vector<NodeId> m;
  for (int k = 1; k <= 8; ++k) {
    m.push_back(g.add_node("m" + std::to_string(k), OpType::kMul));
  }
  std::vector<NodeId> a;
  for (int k = 1; k <= 4; ++k) {
    NodeId add = g.add_node("a" + std::to_string(k), OpType::kAdd);
    g.add_edge(m[static_cast<std::size_t>(2 * k - 2)], add);
    g.add_edge(m[static_cast<std::size_t>(2 * k - 1)], add);
    a.push_back(add);
  }
  std::vector<NodeId> m2;
  for (int k = 9; k <= 16; ++k) {
    NodeId mul = g.add_node("m" + std::to_string(k), OpType::kMul);
    g.add_edge(a[static_cast<std::size_t>((k - 9) / 2)], mul);
    m2.push_back(mul);
  }
  NodeId a5 = g.add_node("a5", OpType::kAdd);
  g.add_edge(m2[0], a5);
  g.add_edge(m2[2], a5);
  NodeId a6 = g.add_node("a6", OpType::kAdd);
  g.add_edge(m2[1], a6);
  g.add_edge(m2[3], a6);
  NodeId a7 = g.add_node("a7", OpType::kAdd);
  g.add_edge(m2[4], a7);
  g.add_edge(m2[6], a7);
  NodeId a8 = g.add_node("a8", OpType::kAdd);
  g.add_edge(m2[5], a8);
  g.add_edge(m2[7], a8);
  NodeId a9 = g.add_node("a9", OpType::kAdd);
  g.add_edge(a5, a9);
  g.add_edge(a6, a9);
  NodeId a10 = g.add_node("a10", OpType::kAdd);
  g.add_edge(a7, a10);
  g.add_edge(a8, a10);
  NodeId a11 = g.add_node("a11", OpType::kAdd);
  g.add_edge(a9, a11);
  g.add_edge(a10, a11);
  NodeId a12 = g.add_node("a12", OpType::kAdd);
  g.add_edge(a9, a12);
  g.add_edge(a10, a12);
  g.validate();
  return g;
}

Graph fdct() {
  Graph g("fdct");
  // 8-point DCT butterfly network (Chen-style): three add/sub butterfly
  // stages on the even half, coefficient multiplies on the rotation
  // branches, and output recombination adds. 26 add/sub + 16 mul = 42 ops.
  std::vector<NodeId> s1;
  std::vector<NodeId> d1;
  for (int k = 0; k < 4; ++k) {
    // Stage 1 pairs (x_k, x_{7-k}): sums and differences from primary
    // inputs (implicit operands).
    s1.push_back(g.add_node("s1_" + std::to_string(k), OpType::kAdd));
    d1.push_back(g.add_node("d1_" + std::to_string(k), OpType::kSub));
  }
  // Stage 2 on the sum half.
  NodeId s2_0 = g.add_node("s2_0", OpType::kAdd);
  NodeId s2_1 = g.add_node("s2_1", OpType::kAdd);
  NodeId d2_0 = g.add_node("d2_0", OpType::kSub);
  NodeId d2_1 = g.add_node("d2_1", OpType::kSub);
  g.add_edge(s1[0], s2_0);
  g.add_edge(s1[3], s2_0);
  g.add_edge(s1[1], s2_1);
  g.add_edge(s1[2], s2_1);
  g.add_edge(s1[0], d2_0);
  g.add_edge(s1[3], d2_0);
  g.add_edge(s1[1], d2_1);
  g.add_edge(s1[2], d2_1);
  // Stage 3.
  NodeId s3 = g.add_node("s3", OpType::kAdd);
  NodeId d3 = g.add_node("d3", OpType::kSub);
  g.add_edge(s2_0, s3);
  g.add_edge(s2_1, s3);
  g.add_edge(s2_0, d3);
  g.add_edge(s2_1, d3);

  // Rotation multiplies: two coefficient products per branch.
  auto rotate = [&g](NodeId src, const std::string& tag,
                     std::vector<NodeId>& prods) {
    NodeId a = g.add_node("m" + tag + "a", OpType::kMul);
    NodeId b = g.add_node("m" + tag + "b", OpType::kMul);
    g.add_edge(src, a);
    g.add_edge(src, b);
    prods.push_back(a);
    prods.push_back(b);
  };
  std::vector<NodeId> prods;
  for (int k = 0; k < 4; ++k) {
    rotate(d1[static_cast<std::size_t>(k)], "d1_" + std::to_string(k),
           prods);
  }
  rotate(d2_0, "d2_0", prods);
  rotate(d2_1, "d2_1", prods);
  rotate(s3, "s3", prods);
  rotate(d3, "d3", prods);

  // Output recombination: pair up neighbouring products.
  std::vector<NodeId> combo;
  for (int k = 0; k < 8; ++k) {
    NodeId c = g.add_node("o" + std::to_string(k), OpType::kAdd);
    g.add_edge(prods[static_cast<std::size_t>(2 * k)], c);
    g.add_edge(prods[static_cast<std::size_t>(2 * k + 1)], c);
    combo.push_back(c);
  }
  // Final cross-adds on the odd outputs.
  for (int k = 0; k < 4; ++k) {
    NodeId f = g.add_node("f" + std::to_string(k), OpType::kAdd);
    g.add_edge(combo[static_cast<std::size_t>(2 * k)], f);
    g.add_edge(combo[static_cast<std::size_t>(2 * k + 1)], f);
  }
  g.validate();
  return g;
}

Graph iir_biquad() {
  Graph g("iir_biquad");
  // Direct-form-I biquad: y = b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2.
  NodeId m0 = g.add_node("*b0", OpType::kMul);
  NodeId m1 = g.add_node("*b1", OpType::kMul);
  NodeId m2 = g.add_node("*b2", OpType::kMul);
  NodeId m3 = g.add_node("*a1", OpType::kMul);
  NodeId m4 = g.add_node("*a2", OpType::kMul);
  NodeId a1 = g.add_node("+1", OpType::kAdd);
  NodeId a2 = g.add_node("+2", OpType::kAdd);
  NodeId s1 = g.add_node("-1", OpType::kSub);
  NodeId s2 = g.add_node("-2", OpType::kSub);
  g.add_edge(m0, a1);
  g.add_edge(m1, a1);
  g.add_edge(a1, a2);
  g.add_edge(m2, a2);
  g.add_edge(a2, s1);
  g.add_edge(m3, s1);
  g.add_edge(s1, s2);
  g.add_edge(m4, s2);
  g.validate();
  return g;
}

std::vector<std::string> all_names() {
  return {"fig4_example", "fir16", "ewf",  "diffeq",
          "ar_lattice",   "fdct",  "iir_biquad"};
}

Graph by_name(const std::string& name) {
  if (name == "fig4_example") return fig4_example();
  if (name == "fir16") return fir16();
  if (name == "ewf") return ewf();
  if (name == "diffeq") return diffeq();
  if (name == "ar_lattice") return ar_lattice();
  if (name == "fdct") return fdct();
  if (name == "iir_biquad") return iir_biquad();
  throw Error("benchmarks::by_name: unknown benchmark '" + name + "'");
}

}  // namespace rchls::benchmarks

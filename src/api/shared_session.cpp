#include "api/shared_session.hpp"

#include "api/cache.hpp"
#include "parallel/config.hpp"

namespace rchls::api {

namespace {

CacheKey key_of_request(const Request& req) {
  return std::visit([](const auto& r) { return key_of(r); }, req);
}

}  // namespace

SharedSession::SharedSession(SessionOptions options)
    : options_(std::move(options)) {
  if (options_.jobs != 0) parallel::set_global_jobs(options_.jobs);
  if (!options_.cache_dir.empty()) {
    disk_ = std::make_unique<DiskCache>(options_.cache_dir);
  }
  executor_ = options_.executor ? options_.executor
                                : std::make_shared<LocalExecutor>();
}

Result SharedSession::run(const Request& req, RunSource* source) {
  if (!options_.enable_cache) {
    std::lock_guard<std::mutex> exec(exec_mu_);
    executions_.fetch_add(1, std::memory_order_relaxed);
    if (source) *source = RunSource::kExecuted;
    return executor_->run(req);
  }

  CacheKey key = key_of_request(req);

  // Fast path: concurrent readers, no exclusive lock anywhere.
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = entries_.find(key.canonical);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (source) *source = RunSource::kMemoryCache;
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  if (disk_) {
    std::optional<Result> hit;
    {
      std::lock_guard<std::mutex> lock(disk_mu_);
      hit = disk_->find(key);
    }
    if (hit) {
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      {
        std::unique_lock<std::shared_mutex> lock(cache_mu_);
        entries_.emplace(key.canonical, *hit);
      }
      if (source) *source = RunSource::kDiskCache;
      return std::move(*hit);
    }
  }

  // Execution is serialized; once we hold the executor, re-check the
  // memory layer -- a thread that raced us here may have stored the
  // result already (in-flight deduplication; provenance stays
  // kExecuted-free for us: it is a late memory hit).
  std::lock_guard<std::mutex> exec(exec_mu_);
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = entries_.find(key.canonical);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (source) *source = RunSource::kMemoryCache;
      return it->second;
    }
  }

  executions_.fetch_add(1, std::memory_order_relaxed);
  Result r = executor_->run(req);
  {
    std::unique_lock<std::shared_mutex> lock(cache_mu_);
    entries_.emplace(key.canonical, r);
  }
  if (disk_) {
    std::lock_guard<std::mutex> lock(disk_mu_);
    disk_->store(key, r);
  }
  if (source) *source = RunSource::kExecuted;
  return r;
}

SharedSessionStats SharedSession::stats() const {
  SharedSessionStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  s.executions = executions_.load(std::memory_order_relaxed);
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    s.entries = entries_.size();
  }
  s.pool = parallel::pool_stats();
  return s;
}

}  // namespace rchls::api

// The execution seam behind api::Session: WHERE a request runs,
// separated from whether its result is cached.
//
// Session resolves caching (memory, then disk) and delegates every
// actual execution to an Executor. Two implementations ship:
//
//  * LocalExecutor -- the in-process path: dispatches each request kind
//    to the engine entry points (hls::find_design / nmr_baseline /
//    combined_design, the sweep and grid drivers, the ser campaigns),
//    including component-registry and library version-name resolution.
//    This is the default and the engine wiring every other executor
//    bottoms out in.
//
//  * SubprocessExecutor (api/subprocess.hpp) -- shards Sweep/Grid
//    requests into per-cell child requests and fans them out to
//    `rchls exec-request` worker processes over wire files.
//
// Contract: run() is a pure function of the request -- byte-identical
// results for equal requests, on every executor, at every worker count
// (tests assert LocalExecutor and SubprocessExecutor render identically).
// Infeasible bounds are results (solved == false), structural problems
// throw rchls::Error; executors never cache (that is Session's job).
// Executors are single-caller: confine each instance to one thread.
#pragma once

#include <cstddef>
#include <vector>

#include "api/request.hpp"
#include "api/result.hpp"
#include "util/error.hpp"

namespace rchls::api {

/// run_batch's error carrier: which item of the batch failed, so a
/// caller that built the batch from labeled work (scenario actions) can
/// attribute the failure to the right label. what() is the underlying
/// error's message unchanged.
class BatchItemError : public Error {
 public:
  BatchItemError(std::size_t index, const std::string& what)
      : Error(what), index_(index) {}
  /// Position in the `reqs` vector passed to run_batch.
  std::size_t index() const { return index_; }

 private:
  std::size_t index_;
};

class Executor {
 public:
  virtual ~Executor() = default;

  virtual FindDesignResult run(const FindDesignRequest& req) = 0;
  virtual SweepResult run(const SweepRequest& req) = 0;
  virtual GridResult run(const GridRequest& req) = 0;
  virtual InjectResult run(const InjectRequest& req) = 0;
  virtual RankGatesResult run(const RankGatesRequest& req) = 0;
  virtual StaResult run(const StaRequest& req) = 0;

  /// Variant dispatch over the typed overloads (the wire entry point).
  Result run(const Request& req);

  /// True when run_batch does better than a serial loop (a sharding
  /// executor dispatches the whole batch at once). Session only routes
  /// batches to executors that opt in, so the default serial semantics
  /// -- item i fully finishes before item i+1 starts -- are preserved
  /// everywhere else.
  virtual bool supports_batching() const { return false; }

  /// Runs every request, results index-aligned with `reqs`. The default
  /// is the serial loop (in order, stops at the first failure); a
  /// failure is rethrown as BatchItemError carrying the failing index.
  /// Overrides may execute items concurrently but must keep the
  /// index-aligned results and first-failing-index error contract.
  virtual std::vector<Result> run_batch(const std::vector<Request>& reqs);
};

/// The in-process engine wiring (the only executor that computes).
class LocalExecutor final : public Executor {
 public:
  FindDesignResult run(const FindDesignRequest& req) override;
  SweepResult run(const SweepRequest& req) override;
  GridResult run(const GridRequest& req) override;
  InjectResult run(const InjectRequest& req) override;
  RankGatesResult run(const RankGatesRequest& req) override;
  StaResult run(const StaRequest& req) override;
};

}  // namespace rchls::api

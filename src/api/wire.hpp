// The api wire protocol: deterministic JSON encode/decode for every
// request and result kind, making them first-class objects on the wire.
//
// Everything the facade can execute -- and everything it can answer --
// serializes to one self-describing JSON envelope:
//
//   { "format_version": "rchls.wire.v1",
//     "kind": "sweep",
//     "request": { ... } }      // or "result": { ... }
//
// Three consumers share this format (full schema: docs/wire-protocol.md):
//
//  * api::SubprocessExecutor ships sharded child requests to
//    `rchls exec-request` worker processes and reads their results back;
//  * api::DiskCache persists results under `.rchls-cache/<digest>.json`
//    so separate CLI invocations share one warm cache;
//  * embedders that want to queue or route engine work out of process.
//
// Determinism contract: encoding is canonical -- fixed key order, 2-space
// indent, shortest-round-trip doubles (util/json), graphs and libraries
// embedded as their own text formats (dfg/io, library/io), 64-bit seeds
// as decimal strings. encode(decode(encode(x))) == encode(x) for every
// request and result (a randomized property test pins this), so a wire
// payload's bytes are themselves content-addressable.
//
// The wire format_version is its own version (separate from the cache-key
// header in api/cache.cpp and the report writer's format_version): bump it
// whenever a field is added, removed or re-interpreted. Decoders reject
// any other version outright -- cross-version negotiation is a non-goal;
// a stale cache entry or worker simply re-executes.
//
// Errors: decode_* throws rchls::Error ("wire: ...") on any malformed,
// incomplete or version-mismatched document. Encoding never throws for
// values produced by the engines.
#pragma once

#include <string>

#include "api/request.hpp"
#include "api/result.hpp"

namespace rchls::api::wire {

/// The wire envelope version accepted by the decoders below.
inline constexpr const char* kFormatVersion = "rchls.wire.v1";

/// The "kind" tag of a request/result pair ("find_design", "sweep",
/// "grid", "inject", "rank_gates") -- the same spelling the cache-key
/// header and scenario reports use.
const char* kind_of(const Request& req);
const char* kind_of(const Result& res);

/// Canonical JSON envelope (ends with a trailing newline, so wire files
/// are valid "text files" for diff tools).
std::string encode(const Request& req);
std::string encode(const Result& res);

/// Strict inverses of encode(). Throw rchls::Error on malformed JSON, a
/// missing/unknown field, a wrong format_version or an unknown kind.
Request decode_request(const std::string& text);
Result decode_result(const std::string& text);

}  // namespace rchls::api::wire

// The rchls command-line interface as a library function.
//
// Every subcommand (`run`, `synth`, `sweep`, `inject`, `bench`) is a
// thin client of the api facade: parse arguments, build the matching
// typed request (request.hpp), execute it through one api::Session, and
// render the result with the shared scenario::report writers -- so
// `rchls synth ... --format json` is byte-identical to `rchls run` on
// the equivalent one-action scenario (pinned by tests/api_cli_test.cpp).
//
// Living in the core library (instead of src/tools/) makes the CLI
// testable in-process: tests drive cli_main with string streams and
// assert on exit codes and rendered bytes without spawning the binary.
// src/tools/rchls_cli.cpp is the 10-line executable wrapper.
//
// Error contract (the CLI-wide convention, tested): every failure path
// prints one diagnostic line starting with "error: " to `err`. Exit
// codes: 0 success; 1 usage, parse or I/O error (argument errors also
// print the usage text); 2 `synth` found no solution within the bounds.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rchls::api {

/// Runs the CLI on `args` (argv without the program name), writing
/// reports to `out` and diagnostics to `err`. Returns the process exit
/// code; never throws.
int cli_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);

}  // namespace rchls::api

#include "api/session.hpp"

#include "parallel/config.hpp"

namespace rchls::api {

namespace {

// disk_stats() needs something to reference when no disk cache exists.
const DiskCacheStats kNoDiskStats{};

}  // namespace

Session::Session(SessionOptions options) : options_(std::move(options)) {
  if (options_.jobs != 0) parallel::set_global_jobs(options_.jobs);
  if (!options_.cache_dir.empty()) {
    disk_ = std::make_unique<DiskCache>(options_.cache_dir);
  }
  executor_ = options_.executor ? options_.executor
                                : std::make_shared<LocalExecutor>();
}

const DiskCacheStats& Session::disk_stats() const {
  return disk_ ? disk_->stats() : kNoDiskStats;
}

template <typename ResultT, typename RequestT>
ResultT Session::cached(const RequestT& req) {
  if (!options_.enable_cache) {
    ++executions_;
    return executor_->run(req);
  }
  CacheKey key = key_of(req);
  if (const Result* hit = cache_.find(key)) {
    return std::get<ResultT>(*hit);
  }
  if (disk_) {
    if (std::optional<Result> hit = disk_->find(key)) {
      // Promote to the memory layer so repeated lookups in this process
      // stop touching the filesystem.
      ResultT r = std::get<ResultT>(std::move(*hit));
      cache_.store(key, r);
      return r;
    }
  }
  ++executions_;
  ResultT r = executor_->run(req);
  cache_.store(key, r);
  if (disk_) disk_->store(key, r);
  return r;
}

FindDesignResult Session::run(const FindDesignRequest& req) {
  return cached<FindDesignResult>(req);
}

SweepResult Session::run(const SweepRequest& req) {
  return cached<SweepResult>(req);
}

GridResult Session::run(const GridRequest& req) {
  return cached<GridResult>(req);
}

InjectResult Session::run(const InjectRequest& req) {
  return cached<InjectResult>(req);
}

RankGatesResult Session::run(const RankGatesRequest& req) {
  return cached<RankGatesResult>(req);
}

StaResult Session::run(const StaRequest& req) {
  return cached<StaResult>(req);
}

Result Session::run(const Request& req) {
  return std::visit([this](const auto& r) -> Result { return run(r); }, req);
}

std::vector<Result> Session::run_batch(const std::vector<Request>& reqs) {
  std::vector<Result> out(reqs.size());
  if (!executor_->supports_batching()) {
    // Exactly the run() path, item by item: same caching, same stats
    // (one cache consult per item), same partial-progress behavior.
    // Duplicate requests hit the entry their first occurrence stored.
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      try {
        out[i] = run(reqs[i]);
      } catch (const Error& e) {
        throw BatchItemError(i, e.what());
      }
    }
    return out;
  }

  // Batching executor: consult the cache layers once per item, then
  // hand every miss to the executor in one call.
  std::vector<std::size_t> missed;  // original indices, in order
  std::vector<CacheKey> keys(reqs.size());
  if (options_.enable_cache) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      keys[i] = key_of(reqs[i]);
      if (const Result* hit = cache_.find(keys[i])) {
        out[i] = *hit;
        continue;
      }
      if (disk_) {
        if (std::optional<Result> hit = disk_->find(keys[i])) {
          cache_.store(keys[i], *hit);
          out[i] = std::move(*hit);
          continue;
        }
      }
      missed.push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < reqs.size(); ++i) missed.push_back(i);
  }
  if (missed.empty()) return out;

  std::vector<Request> pending;
  pending.reserve(missed.size());
  for (std::size_t i : missed) pending.push_back(reqs[i]);
  executions_ += pending.size();
  std::vector<Result> results;
  try {
    results = executor_->run_batch(pending);
  } catch (const BatchItemError& e) {
    // Re-map the executor's miss-relative index onto `reqs`.
    throw BatchItemError(missed[e.index()], e.what());
  } catch (const Error& e) {
    // A whole-batch failure has no better index than the first miss.
    throw BatchItemError(missed.front(), e.what());
  }
  for (std::size_t j = 0; j < missed.size(); ++j) {
    const std::size_t i = missed[j];
    if (options_.enable_cache) {
      cache_.store(keys[i], results[j]);
      if (disk_) disk_->store(keys[i], results[j]);
    }
    out[i] = std::move(results[j]);
  }
  return out;
}

}  // namespace rchls::api

#include "api/session.hpp"

#include "circuits/components.hpp"
#include "hls/baseline.hpp"
#include "hls/combined.hpp"
#include "hls/explore.hpp"
#include "hls/find_design.hpp"
#include "netlist/stats.hpp"
#include "parallel/config.hpp"
#include "ser/characterize.hpp"
#include "util/error.hpp"

namespace rchls::api {

namespace {

FindDesignResult execute(const FindDesignRequest& req) {
  FindDesignResult r;
  r.engine = req.engine;
  r.latency_bound = req.latency_bound;
  r.area_bound = req.area_bound;
  try {
    if (req.engine == "centric") {
      r.design = hls::find_design(req.graph, req.library, req.latency_bound,
                                  req.area_bound, req.options);
    } else if (req.engine == "baseline") {
      hls::BaselineOptions bo;
      if (req.baseline_versions) {
        bo.fixed_versions = {
            {req.library.find(req.baseline_versions->first),
             req.library.find(req.baseline_versions->second)}};
      }
      r.design = hls::nmr_baseline(req.graph, req.library, req.latency_bound,
                                   req.area_bound, bo);
    } else if (req.engine == "combined") {
      hls::CombinedOptions co;
      co.find_design = req.options;
      r.design = hls::combined_design(req.graph, req.library,
                                      req.latency_bound, req.area_bound, co);
    } else {
      throw Error("unknown engine '" + req.engine +
                  "' (expected centric, baseline or combined)");
    }
    r.solved = true;
  } catch (const NoSolutionError& e) {
    r.solved = false;
    r.no_solution_reason = e.what();
  }
  return r;
}

SweepResult execute(const SweepRequest& req) {
  SweepResult r;
  r.axis = req.axis;
  if (req.latency_bounds.empty() || req.area_bounds.empty()) {
    throw Error("sweep request needs at least one bound on each axis");
  }
  if (req.axis == SweepAxis::kLatency) {
    r.points = hls::latency_sweep(req.graph, req.library, req.latency_bounds,
                                  req.area_bounds.front(), req.options);
  } else {
    r.points = hls::area_sweep(req.graph, req.library,
                               req.latency_bounds.front(), req.area_bounds,
                               req.options);
  }
  return r;
}

GridResult execute(const GridRequest& req) {
  hls::GridOptions go;
  go.find_design = req.options;
  go.combined.find_design = req.options;
  if (req.baseline_versions) {
    go.baseline.fixed_versions = {
        {req.library.find(req.baseline_versions->first),
         req.library.find(req.baseline_versions->second)}};
  }
  GridResult r;
  r.rows = hls::comparison_grid(req.graph, req.library, req.latency_bounds,
                                req.area_bounds, go);
  r.averages = hls::grid_averages(r.rows);
  return r;
}

InjectResult execute(const InjectRequest& req) {
  netlist::Netlist nl = circuits::component_by_name(req.component, req.width);
  netlist::Stats stats = netlist::compute_stats(nl);

  ser::InjectionConfig cfg;
  cfg.trials = req.trials;
  cfg.seed = req.seed;

  InjectResult r;
  r.component = req.component;
  r.width = req.width;
  r.gate_count = nl.gate_count();
  r.logic_gates = stats.logic_gates;
  r.gate = req.gate;
  r.result = req.gate ? ser::inject_gate(
                            nl, static_cast<netlist::GateId>(*req.gate), cfg)
                      : ser::inject_campaign(nl, cfg);
  return r;
}

RankGatesResult execute(const RankGatesRequest& req) {
  netlist::Netlist nl = circuits::component_by_name(req.component, req.width);

  ser::InjectionConfig cfg;
  cfg.trials = req.trials;
  cfg.seed = req.seed;

  RankGatesResult r;
  r.component = req.component;
  r.width = req.width;
  r.gates = ser::rank_gate_sensitivities(nl, cfg);
  if (req.top > 0 &&
      r.gates.size() > static_cast<std::size_t>(req.top)) {
    r.gates.resize(static_cast<std::size_t>(req.top));
  }
  for (const auto& gs : r.gates) {
    r.kinds.emplace_back(netlist::to_string(nl.gate(gs.gate).kind));
  }
  return r;
}

}  // namespace

Session::Session(SessionOptions options) : options_(options) {
  if (options_.jobs != 0) parallel::set_global_jobs(options_.jobs);
}

template <typename ResultT, typename RequestT, typename Fn>
ResultT Session::cached(const RequestT& req, Fn execute_fn) {
  if (!options_.enable_cache) return execute_fn(req);
  CacheKey key = key_of(req);
  if (const Result* hit = cache_.find(key)) {
    return std::get<ResultT>(*hit);
  }
  ResultT r = execute_fn(req);
  cache_.store(key, r);
  return r;
}

FindDesignResult Session::run(const FindDesignRequest& req) {
  return cached<FindDesignResult>(
      req, [](const FindDesignRequest& r) { return execute(r); });
}

SweepResult Session::run(const SweepRequest& req) {
  return cached<SweepResult>(
      req, [](const SweepRequest& r) { return execute(r); });
}

GridResult Session::run(const GridRequest& req) {
  return cached<GridResult>(
      req, [](const GridRequest& r) { return execute(r); });
}

InjectResult Session::run(const InjectRequest& req) {
  return cached<InjectResult>(
      req, [](const InjectRequest& r) { return execute(r); });
}

RankGatesResult Session::run(const RankGatesRequest& req) {
  return cached<RankGatesResult>(
      req, [](const RankGatesRequest& r) { return execute(r); });
}

}  // namespace rchls::api

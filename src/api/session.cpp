#include "api/session.hpp"

#include "parallel/config.hpp"

namespace rchls::api {

namespace {

// disk_stats() needs something to reference when no disk cache exists.
const DiskCacheStats kNoDiskStats{};

}  // namespace

Session::Session(SessionOptions options) : options_(std::move(options)) {
  if (options_.jobs != 0) parallel::set_global_jobs(options_.jobs);
  if (!options_.cache_dir.empty()) {
    disk_ = std::make_unique<DiskCache>(options_.cache_dir);
  }
  executor_ = options_.executor ? options_.executor
                                : std::make_shared<LocalExecutor>();
}

const DiskCacheStats& Session::disk_stats() const {
  return disk_ ? disk_->stats() : kNoDiskStats;
}

template <typename ResultT, typename RequestT>
ResultT Session::cached(const RequestT& req) {
  if (!options_.enable_cache) {
    ++executions_;
    return executor_->run(req);
  }
  CacheKey key = key_of(req);
  if (const Result* hit = cache_.find(key)) {
    return std::get<ResultT>(*hit);
  }
  if (disk_) {
    if (std::optional<Result> hit = disk_->find(key)) {
      // Promote to the memory layer so repeated lookups in this process
      // stop touching the filesystem.
      ResultT r = std::get<ResultT>(std::move(*hit));
      cache_.store(key, r);
      return r;
    }
  }
  ++executions_;
  ResultT r = executor_->run(req);
  cache_.store(key, r);
  if (disk_) disk_->store(key, r);
  return r;
}

FindDesignResult Session::run(const FindDesignRequest& req) {
  return cached<FindDesignResult>(req);
}

SweepResult Session::run(const SweepRequest& req) {
  return cached<SweepResult>(req);
}

GridResult Session::run(const GridRequest& req) {
  return cached<GridResult>(req);
}

InjectResult Session::run(const InjectRequest& req) {
  return cached<InjectResult>(req);
}

RankGatesResult Session::run(const RankGatesRequest& req) {
  return cached<RankGatesResult>(req);
}

Result Session::run(const Request& req) {
  return std::visit([this](const auto& r) -> Result { return run(r); }, req);
}

}  // namespace rchls::api
